package pdm

import (
	"errors"
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestNewValid(t *testing.T) {
	p, err := New(1<<20, 1<<14, 1<<8, 1, 4)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if p.N != 1<<20 || p.M != 1<<14 || p.B != 1<<8 || p.D != 1 || p.P != 4 {
		t.Fatalf("fields not stored: %+v", p)
	}
}

func TestValidateRejections(t *testing.T) {
	cases := []struct {
		name string
		p    Params
	}{
		{"zero N", Params{N: 0, M: 8, B: 2, D: 1, P: 1}},
		{"negative N", Params{N: -5, M: 8, B: 2, D: 1, P: 1}},
		{"zero M", Params{N: 100, M: 0, B: 2, D: 1, P: 1}},
		{"zero B", Params{N: 100, M: 8, B: 0, D: 1, P: 1}},
		{"zero D", Params{N: 100, M: 8, B: 2, D: 0, P: 1}},
		{"zero P", Params{N: 100, M: 8, B: 2, D: 1, P: 0}},
		{"in-core M=N", Params{N: 100, M: 100, B: 2, D: 1, P: 1}},
		{"in-core M>N", Params{N: 100, M: 200, B: 2, D: 1, P: 1}},
		{"DB too large", Params{N: 100, M: 8, B: 8, D: 1, P: 1}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if err := c.p.Validate(); !errors.Is(err, ErrInvalidParams) {
				t.Fatalf("want ErrInvalidParams, got %v", err)
			}
		})
	}
}

func TestBlocksRounding(t *testing.T) {
	p := Params{N: 1001, M: 100, B: 10, D: 1, P: 1}
	if got := p.BlocksN(); got != 101 {
		t.Fatalf("BlocksN=%d want 101 (ceil)", got)
	}
	if got := p.BlocksM(); got != 10 {
		t.Fatalf("BlocksM=%d want 10 (floor)", got)
	}
}

func TestLogCeil(t *testing.T) {
	cases := []struct {
		x, base, want int64
	}{
		{1, 10, 0},
		{0, 10, 0},
		{2, 2, 1},
		{3, 2, 2},
		{4, 2, 2},
		{5, 2, 3},
		{1000, 10, 3},
		{1001, 10, 4},
		{9, 3, 2},
		{10, 3, 3},
		{7, 1, 3}, // base clamped to 2
	}
	for _, c := range cases {
		if got := LogCeil(c.x, c.base); got != c.want {
			t.Errorf("LogCeil(%d,%d)=%d want %d", c.x, c.base, got, c.want)
		}
	}
}

func TestLogCeilOverflowGuard(t *testing.T) {
	if got := LogCeil(math.MaxInt64, 2); got != 63 {
		t.Fatalf("LogCeil(MaxInt64,2)=%d want 63", got)
	}
}

func TestLogCeilProperty(t *testing.T) {
	// base^(k-1) < x <= base^k for the returned k (x>1).
	f := func(xs uint32, bs uint8) bool {
		x := int64(xs%1_000_000) + 2
		base := int64(bs%30) + 2
		k := LogCeil(x, base)
		lo := int64(1)
		for i := int64(0); i < k-1; i++ {
			lo *= base
		}
		hi := lo
		if k > 0 {
			hi = lo * base
		}
		return (k == 0 && x <= 1) || (lo < x && x <= hi)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSortBoundSinglePass(t *testing.T) {
	// n <= m means one pass over the data.  (Such parameters are in-core
	// and fail Validate, but SortBound must still degrade gracefully.)
	p := Params{N: 1 << 10, M: 1 << 12, B: 1 << 5, D: 1, P: 1}
	if got, want := p.SortBound(), p.BlocksN(); got != want {
		t.Fatalf("SortBound=%d want %d for single pass", got, want)
	}
}

func TestSortBoundGrowsWithN(t *testing.T) {
	small := Params{N: 1 << 16, M: 1 << 10, B: 1 << 4, D: 1, P: 1}
	big := Params{N: 1 << 24, M: 1 << 10, B: 1 << 4, D: 1, P: 1}
	if small.SortBound() >= big.SortBound() {
		t.Fatalf("bound must grow with N: %d vs %d", small.SortBound(), big.SortBound())
	}
}

func TestSortBoundDividesByD(t *testing.T) {
	one := Params{N: 1 << 20, M: 1 << 12, B: 1 << 4, D: 1, P: 1}
	four := Params{N: 1 << 20, M: 1 << 12, B: 1 << 4, D: 4, P: 4}
	if one.SortBound() < 3*four.SortBound() {
		t.Fatalf("D=4 should cut I/Os ~4x: D1=%d D4=%d", one.SortBound(), four.SortBound())
	}
}

func TestStepBudgets(t *testing.T) {
	p := Params{N: 1 << 20, M: 1 << 12, B: 1 << 6, D: 1, P: 4}
	l := int64(1 << 18)
	lb := l / p.B
	wantSeq := 2 * lb * (1 + LogCeil(lb, p.BlocksM()))
	if got := p.SequentialSortIOs(l); got != wantSeq {
		t.Errorf("SequentialSortIOs=%d want %d", got, wantSeq)
	}
	if got := p.PartitionIOs(l); got != 2*lb {
		t.Errorf("PartitionIOs=%d want %d", got, 2*lb)
	}
	if got := p.RedistributionIOs(l); got != 2*lb {
		t.Errorf("RedistributionIOs=%d want %d", got, 2*lb)
	}
}

func TestStepBudgetsRoundUp(t *testing.T) {
	p := Params{N: 1000, M: 64, B: 7, D: 1, P: 2}
	if got := p.PartitionIOs(8); got != 4 { // ceil(8/7)=2, doubled
		t.Fatalf("PartitionIOs(8)=%d want 4", got)
	}
}

func TestCounterBasics(t *testing.T) {
	var c Counter
	c.AddRead(3)
	c.AddWrite(2)
	c.AddSeek(1)
	if c.Reads() != 3 || c.Writes() != 2 || c.Seeks() != 1 || c.Total() != 5 {
		t.Fatalf("unexpected counter state: %+v", c.Snapshot())
	}
	s := c.Snapshot()
	c.Reset()
	if c.Total() != 0 {
		t.Fatal("Reset did not zero")
	}
	if s.Total() != 5 {
		t.Fatal("snapshot must be immune to Reset")
	}
}

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	done := make(chan struct{})
	for i := 0; i < 8; i++ {
		go func() {
			for j := 0; j < 1000; j++ {
				c.AddRead(1)
				c.AddWrite(1)
			}
			done <- struct{}{}
		}()
	}
	for i := 0; i < 8; i++ {
		<-done
	}
	if c.Reads() != 8000 || c.Writes() != 8000 {
		t.Fatalf("lost updates: %v", c.Snapshot())
	}
}

func TestIOStatsArithmetic(t *testing.T) {
	a := IOStats{Reads: 10, Writes: 5, Seeks: 2}
	b := IOStats{Reads: 4, Writes: 1, Seeks: 1}
	if got := a.Add(b); got != (IOStats{14, 6, 3}) {
		t.Fatalf("Add=%v", got)
	}
	if got := a.Sub(b); got != (IOStats{6, 4, 1}) {
		t.Fatalf("Sub=%v", got)
	}
}

func TestOrganizationStrings(t *testing.T) {
	if !strings.Contains(SingleCPU.String(), "P=1") {
		t.Error("SingleCPU string")
	}
	if !strings.Contains(PerProcessorDisk.String(), "P=D") {
		t.Error("PerProcessorDisk string")
	}
	if Striped.String() != "striped" || Independent.String() != "independent" {
		t.Error("access mode strings")
	}
}

func TestStripedPenaltyAtLeastOne(t *testing.T) {
	p := Params{N: 1 << 26, M: 1 << 12, B: 1 << 4, D: 16, P: 16}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if pen := p.StripedPenalty(); pen < 1 {
		t.Fatalf("striped penalty %v < 1", pen)
	}
}

func TestStripedPenaltyGrowsWithD(t *testing.T) {
	// With many disks the striped logical memory m=M/(DB) collapses and
	// the striped sort needs more passes.
	base := Params{N: 1 << 30, M: 1 << 14, B: 1 << 4, D: 2, P: 2}
	wide := Params{N: 1 << 30, M: 1 << 14, B: 1 << 4, D: 256, P: 256}
	if base.StripedPenalty() > wide.StripedPenalty() {
		t.Fatalf("penalty should not shrink with D: D2=%v D256=%v",
			base.StripedPenalty(), wide.StripedPenalty())
	}
}

func TestSortIOsStripedDegenerate(t *testing.T) {
	// M < D*B: the striped logical block D*B does not fit in memory at
	// all, so m = M/(D*B) is 0 and the old code handed LogCeil a zero
	// radix.  The guard clamps the merge degree to a binary merge; the
	// step count must stay finite, positive, and no better than the
	// healthy-memory configuration.
	deg := Params{N: 1 << 20, M: 1 << 6, B: 1 << 5, D: 8, P: 8} // M=64 < D*B=256
	got := deg.SortIOs(Striped)
	if got <= 0 {
		t.Fatalf("degenerate SortIOs(Striped)=%d, want positive", got)
	}
	n := ceilDiv(deg.N, deg.D*deg.B)
	if want := n * LogCeil(n, 2); got != want {
		t.Fatalf("degenerate SortIOs(Striped)=%d, want binary-merge bound %d", got, want)
	}
	healthy := deg
	healthy.M = 1 << 14 // m = 64 blocks
	if h := healthy.SortIOs(Striped); h > got {
		t.Fatalf("more memory made striped sort slower: M=%d -> %d steps, M=%d -> %d steps",
			healthy.M, h, deg.M, got)
	}
}

func TestSortIOsStripedSingleLogicalBlock(t *testing.T) {
	// m = 1 (exactly one logical block of memory) is just as degenerate
	// as m = 0: log base 1 diverges.  The clamp must cover it too.
	p := Params{N: 1 << 18, M: 1 << 8, B: 1 << 4, D: 16, P: 16} // M = D*B = 256, m = 1
	n := ceilDiv(p.N, p.D*p.B)
	if got, want := p.SortIOs(Striped), n*LogCeil(n, 2); got != want {
		t.Fatalf("m=1 SortIOs(Striped)=%d want %d", got, want)
	}
}

func TestStripedPenaltyDegenerate(t *testing.T) {
	// The penalty must stay finite and positive even where the striped
	// model degenerates (M < D*B) — these parameters fail Validate, but
	// the analytical helpers are documented to degrade gracefully.  (The
	// >= 1 property is only claimed for validated parameters: here both
	// bounds are clamped approximations and their ratio can dip below 1.)
	p := Params{N: 1 << 22, M: 1 << 6, B: 1 << 5, D: 8, P: 8}
	pen := p.StripedPenalty()
	if math.IsNaN(pen) || math.IsInf(pen, 0) || pen <= 0 {
		t.Fatalf("penalty not finite and positive: %v", pen)
	}
}

func TestStripedPenaltyTinyInput(t *testing.T) {
	// N <= D*B: one stripe holds everything.  A single parallel step
	// suffices under striping, so the ratio can legitimately drop below
	// one here — the test only pins down that it stays finite and
	// positive instead of dividing by zero.
	p := Params{N: 16, M: 8, B: 4, D: 8, P: 1}
	if pen := p.StripedPenalty(); pen <= 0 || math.IsInf(pen, 0) || math.IsNaN(pen) {
		t.Fatalf("tiny-input penalty %v", pen)
	}
}

func TestStringContainsDerived(t *testing.T) {
	p := Params{N: 100, M: 10, B: 2, D: 1, P: 1}
	s := p.String()
	for _, frag := range []string{"N=100", "M=10", "B=2", "n=50", "m=5"} {
		if !strings.Contains(s, frag) {
			t.Errorf("String()=%q missing %q", s, frag)
		}
	}
}

func TestCounterPhaseAttribution(t *testing.T) {
	var c Counter
	if c.CurrentPhase() != 0 {
		t.Fatalf("zero counter starts in phase %d", c.CurrentPhase())
	}
	c.AddRead(2) // unattributed setup I/O
	c.SetPhase(1)
	c.AddRead(3)
	c.AddWrite(4)
	c.SetPhase(5)
	c.AddSeek(7)
	ps := c.PhaseSnapshot()
	if ps[0].Reads != 2 || ps[1].Reads != 3 || ps[1].Writes != 4 || ps[5].Seeks != 7 {
		t.Fatalf("phase snapshot %+v", ps)
	}
	// Per-phase attribution must sum to the run totals.
	var sum IOStats
	for _, s := range ps {
		sum = sum.Add(s)
	}
	if sum != c.Snapshot() {
		t.Fatalf("phase sum %+v != totals %+v", sum, c.Snapshot())
	}
}

func TestCounterPhaseClampAndReset(t *testing.T) {
	var c Counter
	c.SetPhase(99) // out of range clamps to 0
	if c.CurrentPhase() != 0 {
		t.Fatalf("phase 99 clamped to %d, want 0", c.CurrentPhase())
	}
	c.SetPhase(-3)
	if c.CurrentPhase() != 0 {
		t.Fatalf("phase -3 clamped to %d, want 0", c.CurrentPhase())
	}
	c.SetPhase(2)
	c.AddWrite(5)
	c.Reset()
	if c.CurrentPhase() != 0 || c.Total() != 0 {
		t.Fatalf("reset left phase=%d total=%d", c.CurrentPhase(), c.Total())
	}
	for i, s := range c.PhaseSnapshot() {
		if s.Total() != 0 || s.Seeks != 0 {
			t.Fatalf("reset left phase %d with %+v", i, s)
		}
	}
}

// Package vtime defines the virtual-time accounting interface shared by
// the disk layer, the sequential sorts and the simulated cluster.
//
// The reproduction replaces the paper's wall-clock measurements on a real
// Alpha cluster with deterministic virtual time: every elementary unit of
// work (a comparison/move, a block transfer, a seek) is charged to a
// Meter, and the cluster's nodes advance their clocks by the charged cost
// scaled by the node's load factor.  This mirrors the paper's model of
// heterogeneity — "processors of the homogeneous cluster are loaded
// differently but the initial loads stay constant during the experiment".
package vtime

import "fmt"

// Meter receives work charges.  Implementations decide how charges map
// to time (the cluster node multiplies by its cost model and slowdown).
type Meter interface {
	// ChargeCompute charges n elementary CPU operations (comparisons,
	// moves, heap adjustments).
	ChargeCompute(n int64)
	// ChargeIOBlocks charges the transfer of n disk blocks.
	ChargeIOBlocks(n int64)
	// ChargeSeek charges n random disk repositionings.
	ChargeSeek(n int64)
}

// DiskMeter extends Meter for implementations that model D > 1 disks
// per node with independent per-disk queues: the disk index says which
// member device performs the transfer, so the meter can overlap charges
// to distinct disks into one parallel I/O step and serialize charges to
// the same disk.  cluster.Node implements it; the disk layer falls back
// to the plain Meter charges when the meter does not.
type DiskMeter interface {
	Meter
	// ChargeDiskIOBlocks charges the transfer of n blocks performed by
	// member disk d of the node.
	ChargeDiskIOBlocks(disk int, n int64)
	// ChargeDiskSeek charges n random repositionings of member disk d.
	ChargeDiskSeek(disk int, n int64)
}

// Category classifies where a slice of virtual time went.  Every clock
// advance of a simulated node is attributed to exactly one category, so
// the per-category totals sum to the node's clock (the invariant
// CheckAttribution verifies).
type Category int

const (
	// Compute is processor work: comparisons, moves, tree adjustments.
	Compute Category = iota
	// Disk is block transfers and seeks on the node's private disk.
	Disk
	// Network is messaging occupancy and protocol processing.
	Network
	// Idle is time spent waiting: blocking on a peer's message,
	// retry-backoff delays, and replayed clock time on a resumed run.
	Idle

	// NumCategories counts the attribution categories.
	NumCategories
)

func (c Category) String() string {
	switch c {
	case Compute:
		return "compute"
	case Disk:
		return "disk"
	case Network:
		return "network"
	case Idle:
		return "idle"
	default:
		return fmt.Sprintf("category(%d)", int(c))
	}
}

// TimeMeter extends Meter for implementations that also account raw
// categorized time — the network and idle-wait slices that do not come
// from work-unit charges.  cluster.Node implements it.
type TimeMeter interface {
	Meter
	// ChargeTime advances the clock by sec unscaled virtual seconds
	// attributed to cat.
	ChargeTime(cat Category, sec float64)
}

// OverlapMeter extends TimeMeter for meters that can hide disk transfer
// time behind concurrent compute — the accounting model of asynchronous
// prefetch and write-behind, where the drive transfers while the CPU
// merges (the PDM's D parameter assumes exactly this).
//
// The model is windowed: between BeginOverlap and the matching
// EndOverlap, compute charges accrue an overlap credit (bounded by the
// window's in-flight capacity, depthBlocks block-times), and every block
// charged through ChargeOverlappedIOBlocks spends credit first.  The
// spent (hidden) portion advances the clock by nothing and is recorded
// in Breakdown.Overlapped; only the remainder is charged as exposed Disk
// time.  Per window the exposed disk time is therefore
// max(0, disk − overlappable compute): the disk's I/O *count* is
// unchanged, only its virtual *time* hides.  Windows nest; credit dies
// with the last window.
type OverlapMeter interface {
	TimeMeter
	// BeginOverlap opens an overlap window whose device can keep up to
	// depthBlocks block transfers in flight (<= 0 means 2,
	// double-buffering).
	BeginOverlap(depthBlocks int)
	// EndOverlap closes the innermost window opened by BeginOverlap.
	EndOverlap()
	// ChargeOverlappedIOBlocks charges the transfer of n disk blocks
	// issued asynchronously inside an overlap window.
	ChargeOverlappedIOBlocks(n int64)
}

// Breakdown splits a span of virtual time over the categories.
//
// Overlapped is disk transfer time that an overlap window hid behind
// concurrent compute (see OverlapMeter): it advanced the clock by
// nothing, so it is reported as its own column and excluded from Total —
// the four wall-clock categories alone sum to the clock.
type Breakdown struct {
	Compute    float64 `json:"compute"`
	Disk       float64 `json:"disk"`
	Network    float64 `json:"network"`
	Idle       float64 `json:"idle"`
	Overlapped float64 `json:"overlapped,omitempty"`
}

// Charge adds sec seconds to the category.
func (b *Breakdown) Charge(cat Category, sec float64) {
	switch cat {
	case Compute:
		b.Compute += sec
	case Disk:
		b.Disk += sec
	case Network:
		b.Network += sec
	default:
		b.Idle += sec
	}
}

// Total returns the sum of the four wall-clock categories (Overlapped
// excluded: hidden disk time never advanced the clock).
func (b Breakdown) Total() float64 { return b.Compute + b.Disk + b.Network + b.Idle }

// Add returns the element-wise sum.
func (b Breakdown) Add(o Breakdown) Breakdown {
	return Breakdown{
		Compute:    b.Compute + o.Compute,
		Disk:       b.Disk + o.Disk,
		Network:    b.Network + o.Network,
		Idle:       b.Idle + o.Idle,
		Overlapped: b.Overlapped + o.Overlapped,
	}
}

// Sub returns the element-wise difference b-o; useful to attribute one
// algorithm step with a shared accumulator.
func (b Breakdown) Sub(o Breakdown) Breakdown {
	return Breakdown{
		Compute:    b.Compute - o.Compute,
		Disk:       b.Disk - o.Disk,
		Network:    b.Network - o.Network,
		Idle:       b.Idle - o.Idle,
		Overlapped: b.Overlapped - o.Overlapped,
	}
}

func (b Breakdown) String() string {
	return fmt.Sprintf("Breakdown{compute=%.6f disk=%.6f network=%.6f idle=%.6f overlapped=%.6f}",
		b.Compute, b.Disk, b.Network, b.Idle, b.Overlapped)
}

// Validate checks that every category of the breakdown is non-negative
// (within AttributionTolerance below zero, for accumulated float
// error).  A negative category means a Sub pairing snapshotted
// mismatched spans, or a meter double-credited hidden time.
func (b Breakdown) Validate() error {
	for _, c := range [...]struct {
		name string
		v    float64
	}{
		{"compute", b.Compute}, {"disk", b.Disk}, {"network", b.Network},
		{"idle", b.Idle}, {"overlapped", b.Overlapped},
	} {
		if c.v < -AttributionTolerance {
			return fmt.Errorf("vtime: negative %s time %g in %v", c.name, c.v, b)
		}
	}
	return nil
}

// AttributionTolerance bounds the float drift the invariant check
// accepts between a clock and its attribution: the clock and the four
// category accumulators add the same charges in different groupings, so
// they may disagree by a few ulps after millions of additions.
const AttributionTolerance = 1e-9

// CheckAttribution verifies the attribution invariant: the breakdown's
// wall-clock categories (compute, disk, network, idle — Overlapped is
// hidden time and deliberately outside the sum) must sum to the clock
// within AttributionTolerance (relative, with an absolute floor of one
// tolerance for tiny clocks).
func CheckAttribution(clock float64, b Breakdown) error {
	tol := AttributionTolerance
	if clock > 1 {
		tol *= clock
	}
	if diff := b.Total() - clock; diff > tol || diff < -tol {
		return fmt.Errorf("vtime: attribution %v sums to %.12f but clock is %.12f (diff %g, tol %g)",
			b, b.Total(), clock, diff, tol)
	}
	return nil
}

// Nop discards all charges.  Useful in tests and for callers that only
// want I/O counts.
type Nop struct{}

// ChargeCompute implements Meter.
func (Nop) ChargeCompute(int64) {}

// ChargeIOBlocks implements Meter.
func (Nop) ChargeIOBlocks(int64) {}

// ChargeSeek implements Meter.
func (Nop) ChargeSeek(int64) {}

// ChargeTime implements TimeMeter.
func (Nop) ChargeTime(Category, float64) {}

// BeginOverlap implements OverlapMeter.
func (Nop) BeginOverlap(int) {}

// EndOverlap implements OverlapMeter.
func (Nop) EndOverlap() {}

// ChargeOverlappedIOBlocks implements OverlapMeter.
func (Nop) ChargeOverlappedIOBlocks(int64) {}

// ChargeDiskIOBlocks implements DiskMeter.
func (Nop) ChargeDiskIOBlocks(int, int64) {}

// ChargeDiskSeek implements DiskMeter.
func (Nop) ChargeDiskSeek(int, int64) {}

// CostModel converts work units into virtual seconds.  The defaults are
// calibrated (see DefaultCostModel) so that a speed-1 node external-sorts
// 2^21 integers in roughly the 23 virtual seconds the paper's fastest
// node (helmvige) needed, which keeps reproduced tables directly
// comparable to the paper's.
type CostModel struct {
	// ComputeSec is the cost of one elementary CPU operation.
	ComputeSec float64
	// IOBlockSecPerKey is the transfer cost per key in a block
	// (so a block of B keys costs B*IOBlockSecPerKey).
	IOBlockSecPerKey float64
	// SeekSec is the cost of one random repositioning.
	SeekSec float64
}

// DefaultCostModel returns the calibrated cost model.  Calibration
// rationale: sorting 2^21 keys with polyphase merge sort does about
// 2^21*21 ≈ 44e6 comparisons plus ~3 read+write passes over 8 MiB.
// Year-2000 hardware in the paper needed ≈23 s for this; splitting that
// roughly 40/60 between compute and I/O gives the constants below.
func DefaultCostModel() CostModel {
	return CostModel{
		ComputeSec:       1.6e-7, // ≈6M elementary ops per second
		IOBlockSecPerKey: 9.0e-7, // ≈4.4 MB/s effective disk streaming
		SeekSec:          8.0e-3, // 8 ms per random seek
	}
}

package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"

	"hetsort/internal/record"
	"hetsort/internal/storage"
)

// apiError is the machine-readable error object every non-2xx response
// carries (cmd/hetsort's -json flag emits the same shape for parity).
type apiError struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, apiError{Error: err.Error()})
}

// Handler returns the hetsortd HTTP API:
//
//	POST /jobs               submit a JobSpec, returns {"id": ...}
//	GET  /jobs               list all job statuses
//	GET  /jobs/{id}          one job's status (includes the Merkle root)
//	POST /jobs/{id}/cancel   cancel a queued or running job
//	GET  /jobs/{id}/result   the sorted output, concatenated, as bytes
//	GET  /jobs/{id}/trace    the job's Chrome trace_event JSON (Perfetto)
//	GET  /metrics            service counters, text exposition
//	PUT  /objects/{name...}  upload an input object (names under inputs/)
//	GET  /objects/{name...}  download any backend object
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", s.handleSubmit)
	mux.HandleFunc("GET /jobs", s.handleList)
	mux.HandleFunc("GET /jobs/{id}", s.handleStatus)
	mux.HandleFunc("POST /jobs/{id}/cancel", s.handleCancel)
	mux.HandleFunc("GET /jobs/{id}/result", s.handleResult)
	mux.HandleFunc("GET /jobs/{id}/trace", s.handleTrace)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("PUT /objects/{name...}", s.handlePutObject)
	mux.HandleFunc("GET /objects/{name...}", s.handleGetObject)
	return mux
}

func (s *Service) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decoding spec: %w", err))
		return
	}
	id, err := s.Submit(spec)
	switch {
	case errors.Is(err, ErrQueueFull):
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, err)
	case errors.Is(err, ErrBudget):
		writeError(w, http.StatusUnprocessableEntity, err)
	case errors.Is(err, ErrClosed):
		writeError(w, http.StatusServiceUnavailable, err)
	case err != nil:
		writeError(w, http.StatusBadRequest, err)
	default:
		writeJSON(w, http.StatusAccepted, map[string]string{"id": id})
	}
}

func (s *Service) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.List())
}

func (s *Service) handleStatus(w http.ResponseWriter, r *http.Request) {
	st, err := s.Status(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Service) handleCancel(w http.ResponseWriter, r *http.Request) {
	if err := s.Cancel(r.PathValue("id")); err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "canceling"})
}

func (s *Service) handleResult(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	st, err := s.Status(id)
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	if st.State != StateDone {
		writeError(w, http.StatusConflict, fmt.Errorf("job %s is %s, not done", id, st.State))
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", fmt.Sprint(st.Keys*record.KeySize))
	for i := range st.Partitions {
		body, err := s.store.Get(fmt.Sprintf("jobs/%s/node%d/output", id, i))
		if err != nil {
			// Headers are gone; the short body tells the client.
			return
		}
		if _, err := w.Write(body); err != nil {
			return
		}
	}
}

func (s *Service) handleTrace(w http.ResponseWriter, r *http.Request) {
	body, err := s.store.Get(traceName(r.PathValue("id")))
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(body)
}

func (s *Service) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	running, queued := s.running, len(s.queue)
	s.mu.Unlock()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	fmt.Fprintf(w, "hetsortd_jobs_running %d\n", running)
	fmt.Fprintf(w, "hetsortd_jobs_queued %d\n", queued)
	fmt.Fprintf(w, "hetsortd_jobs_submitted_total %d\n", s.nSubmitted.Load())
	fmt.Fprintf(w, "hetsortd_jobs_done_total %d\n", s.nDone.Load())
	fmt.Fprintf(w, "hetsortd_jobs_failed_total %d\n", s.nFailed.Load())
	fmt.Fprintf(w, "hetsortd_jobs_canceled_total %d\n", s.nCanceled.Load())
	fmt.Fprintf(w, "hetsortd_jobs_rejected_queue_total %d\n", s.nRejectedQueue.Load())
	fmt.Fprintf(w, "hetsortd_jobs_rejected_budget_total %d\n", s.nRejectedBudget.Load())
	fmt.Fprintf(w, "hetsortd_jobs_recovered_total %d\n", s.nRecovered.Load())
	fmt.Fprintf(w, "hetsortd_jobs_resumed_total %d\n", s.nResumed.Load())
	fmt.Fprintf(w, "hetsortd_jobs_resume_fallback_total %d\n", s.nResumedFallback.Load())
}

func (s *Service) handlePutObject(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	// Uploads are confined to inputs/ so a client cannot clobber job
	// artifacts (the Merkle anchor would catch it, but why allow it).
	if !strings.HasPrefix(name, "inputs/") {
		writeError(w, http.StatusForbidden, fmt.Errorf("uploads must be under inputs/, got %q", name))
		return
	}
	body, err := io.ReadAll(r.Body)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if err := s.store.Put(name, body); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusCreated, map[string]any{"name": name, "bytes": len(body)})
}

func (s *Service) handleGetObject(w http.ResponseWriter, r *http.Request) {
	body, err := s.store.Get(r.PathValue("name"))
	if err != nil {
		code := http.StatusInternalServerError
		if errors.Is(err, storage.ErrNotExist) {
			code = http.StatusNotFound
		}
		writeError(w, code, err)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Write(body)
}

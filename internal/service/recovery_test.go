package service

import (
	"bytes"
	"fmt"
	"testing"

	"hetsort/internal/storage"
)

// readOutputs concatenates a job's node outputs from the backend.
func readOutputs(t *testing.T, store storage.Backend, id string, p int) []byte {
	t.Helper()
	var buf bytes.Buffer
	for i := 0; i < p; i++ {
		body, err := store.Get(fmt.Sprintf("jobs/%s/node%d/output", id, i))
		if err != nil {
			t.Fatalf("output of %s node %d: %v", id, i, err)
		}
		buf.Write(body)
	}
	return buf.Bytes()
}

// TestDaemonKillAndRecovery is the acceptance scenario: a job dies
// mid-run (injected node crash = the daemon-death model: the durable
// status stays "running"), a fresh Service over the same backend
// resumes it from its checkpoint manifests, and the resumed job's
// output bytes and Merkle root equal an uninterrupted run's.
func TestDaemonKillAndRecovery(t *testing.T) {
	for phase := 1; phase <= 5; phase++ {
		t.Run(fmt.Sprintf("crash-after-phase-%d", phase), func(t *testing.T) {
			spec := testSpec(4000, 11)

			// Reference: the same job, uninterrupted, on its own backend.
			refStore := storage.NewObject()
			ref, err := New(testConfig(), refStore)
			if err != nil {
				t.Fatal(err)
			}
			refID, err := ref.Submit(spec)
			if err != nil {
				t.Fatal(err)
			}
			ref.Wait(refID)
			refSt, _ := ref.Status(refID)
			if refSt.State != StateDone {
				t.Fatalf("reference job: %s (%s)", refSt.State, refSt.Error)
			}
			ref.Stop()

			// Victim: same spec with an injected node death after the
			// given phase.
			store := storage.NewObject()
			s1, err := New(testConfig(), store)
			if err != nil {
				t.Fatal(err)
			}
			crashed := spec
			crashed.CrashNode = 2
			crashed.CrashPhase = phase
			id, err := s1.Submit(crashed)
			if err != nil {
				t.Fatal(err)
			}
			s1.Wait(id)
			if st, _ := s1.Status(id); st.State != StateFailed {
				t.Fatalf("crashed job in memory: %s", st.State)
			}
			// The daemon "died": durably the job is still running.
			if st, err := loadStatus(store, id); err != nil || st.State != StateRunning {
				t.Fatalf("durable state: %+v, %v", st, err)
			}
			s1.Stop()

			// Restart: a new service over the same backend must resume
			// the job to completion.
			s2, err := New(testConfig(), store)
			if err != nil {
				t.Fatal(err)
			}
			if err := s2.Wait(id); err != nil {
				t.Fatal(err)
			}
			st, _ := s2.Status(id)
			if st.State != StateDone {
				t.Fatalf("recovered job: %s (%s)", st.State, st.Error)
			}
			if !st.Resumed {
				t.Fatal("recovered job not marked resumed")
			}
			s2.Stop()

			// Byte-identical outputs and equal Merkle roots.
			p := len(testConfig().Machine.Perf)
			if !bytes.Equal(readOutputs(t, store, id, p), readOutputs(t, refStore, refID, p)) {
				t.Fatal("resumed output bytes differ from uninterrupted run")
			}
			if st.Root != refSt.Root {
				t.Fatalf("resumed root %s != uninterrupted root %s", st.Root, refSt.Root)
			}
			if _, err := VerifyJob(store, id); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestRecoveryQueuedJob: a job that never started (durably "queued")
// restarts fresh on the next daemon.
func TestRecoveryQueuedJob(t *testing.T) {
	store := storage.NewObject()
	// Fabricate the durable state of a queued job (as a crashed daemon
	// would leave it: spec + queued status, no node trees).
	spec := testSpec(2000, 3)
	if err := saveSpec(store, "job-0007", &spec); err != nil {
		t.Fatal(err)
	}
	if err := saveStatus(store, &JobStatus{ID: "job-0007", State: StateQueued}); err != nil {
		t.Fatal(err)
	}
	s, err := New(testConfig(), store)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Wait("job-0007"); err != nil {
		t.Fatal(err)
	}
	st, _ := s.Status("job-0007")
	if st.State != StateDone {
		t.Fatalf("recovered queued job: %s (%s)", st.State, st.Error)
	}
	if st.Resumed {
		t.Fatal("fresh restart wrongly marked resumed")
	}
	// New submissions continue the ID sequence past the recovered one.
	id, err := s.Submit(testSpec(2000, 4))
	if err != nil {
		t.Fatal(err)
	}
	if id != "job-0008" {
		t.Fatalf("next id %s, want job-0008", id)
	}
	s.Wait(id)
	s.Stop()
}

// TestRecoveryBeforeFirstCommit: the daemon died after marking the job
// running but before any node committed a manifest — resume has nothing
// to plan from and must fall back to a fresh run.
func TestRecoveryBeforeFirstCommit(t *testing.T) {
	store := storage.NewObject()
	spec := testSpec(2000, 5)
	if err := saveSpec(store, "job-0001", &spec); err != nil {
		t.Fatal(err)
	}
	if err := saveStatus(store, &JobStatus{ID: "job-0001", State: StateRunning}); err != nil {
		t.Fatal(err)
	}
	s, err := New(testConfig(), store)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Wait("job-0001"); err != nil {
		t.Fatal(err)
	}
	st, _ := s.Status("job-0001")
	if st.State != StateDone {
		t.Fatalf("fallback job: %s (%s)", st.State, st.Error)
	}
	if s.nResumedFallback.Load() != 1 {
		t.Fatalf("fallback counter %d", s.nResumedFallback.Load())
	}
	if _, err := VerifyJob(store, "job-0001"); err != nil {
		t.Fatal(err)
	}
	s.Stop()
}

package trace

import (
	"strings"
	"sync"
	"testing"
)

func TestKindStrings(t *testing.T) {
	for k, want := range map[Kind]string{
		PhaseBegin: "phase-begin", PhaseEnd: "phase-end",
		MessageSent: "send", MessageReceived: "recv", Mark: "mark",
	} {
		if k.String() != want {
			t.Errorf("%d -> %q want %q", k, k.String(), want)
		}
	}
	if Kind(99).String() == "" {
		t.Error("unknown kind")
	}
}

func TestAddAndEventsSorted(t *testing.T) {
	var l Log
	l.Add(Event{Node: 1, Clock: 2.0, Kind: Mark, Label: "b"})
	l.Add(Event{Node: 0, Clock: 1.0, Kind: Mark, Label: "a"})
	l.Add(Event{Node: 0, Clock: 2.0, Kind: Mark, Label: "c"})
	ev := l.Events()
	if len(ev) != 3 || l.Len() != 3 {
		t.Fatalf("events %v", ev)
	}
	if ev[0].Label != "a" || ev[1].Label != "c" || ev[2].Label != "b" {
		t.Fatalf("order %v", ev)
	}
}

func TestConcurrentAdd(t *testing.T) {
	var l Log
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				l.Add(Event{Node: n, Clock: float64(j)})
			}
		}(i)
	}
	wg.Wait()
	if l.Len() != 800 {
		t.Fatalf("lost events: %d", l.Len())
	}
}

func TestSpans(t *testing.T) {
	var l Log
	l.Add(Event{Node: 0, Clock: 1, Kind: PhaseBegin, Label: "sort"})
	l.Add(Event{Node: 1, Clock: 2, Kind: PhaseBegin, Label: "sort"})
	l.Add(Event{Node: 0, Clock: 5, Kind: PhaseEnd, Label: "sort"})
	l.Add(Event{Node: 1, Clock: 7, Kind: PhaseEnd, Label: "sort"})
	l.Add(Event{Node: 0, Clock: 9, Kind: PhaseBegin, Label: "dangling"})
	l.Add(Event{Node: 1, Clock: 11, Kind: Mark, Label: "last"})
	spans := l.Spans()
	if len(spans) != 3 {
		t.Fatalf("spans %v", spans)
	}
	if spans[0].Duration() != 4 || spans[1].Duration() != 5 {
		t.Fatalf("durations %v", spans)
	}
	if spans[0].Open || spans[1].Open {
		t.Fatalf("closed spans flagged open: %v", spans)
	}
	// The unclosed phase is emitted as an open span ending at the log's
	// last event clock, not dropped.
	d := spans[2]
	if !d.Open || d.Label != "dangling" || d.Begin != 9 || d.End != 11 {
		t.Fatalf("dangling span %+v", d)
	}
}

func TestOpenSpanFlaggedInRenderers(t *testing.T) {
	var l Log
	l.Add(Event{Node: 0, Clock: 0, Kind: PhaseBegin, Label: "done"})
	l.Add(Event{Node: 0, Clock: 4, Kind: PhaseEnd, Label: "done"})
	l.Add(Event{Node: 1, Clock: 2, Kind: PhaseBegin, Label: "crashed"})
	if out := l.Timeline(); !strings.Contains(out, "phase-open") || !strings.Contains(out, "crashed") {
		t.Errorf("timeline does not flag the open phase:\n%s", out)
	}
	if out := l.Gantt(40); !strings.Contains(out, "(open)") || !strings.Contains(out, "-") {
		t.Errorf("gantt does not flag the open phase:\n%s", out)
	}
}

func TestEventSeqTiebreak(t *testing.T) {
	var l Log
	// Same clock, same node: insertion order must be preserved by Seq.
	l.Add(Event{Node: 0, Clock: 1, Kind: Mark, Label: "first"})
	l.Add(Event{Node: 0, Clock: 1, Kind: Mark, Label: "second"})
	l.Add(Event{Node: 0, Clock: 1, Kind: Mark, Label: "third"})
	ev := l.Events()
	if ev[0].Label != "first" || ev[1].Label != "second" || ev[2].Label != "third" {
		t.Fatalf("order %v", ev)
	}
	if !(ev[0].Seq < ev[1].Seq && ev[1].Seq < ev[2].Seq) {
		t.Fatalf("seqs not monotonic: %v", ev)
	}
	l.Reset()
	l.Add(Event{Node: 0, Clock: 0, Kind: Mark})
	if l.Events()[0].Seq != 1 {
		t.Fatalf("reset did not restart numbering: %v", l.Events())
	}
}

func TestGanttRoundingBounds(t *testing.T) {
	var l Log
	// A span ending exactly at max must not overflow the chart width,
	// and a tiny span near the right edge must still get >= 1 column.
	l.Add(Event{Node: 0, Clock: 0, Kind: PhaseBegin, Label: "big"})
	l.Add(Event{Node: 0, Clock: 99.9, Kind: PhaseEnd, Label: "big"})
	l.Add(Event{Node: 1, Clock: 99.9, Kind: PhaseBegin, Label: "tiny"})
	l.Add(Event{Node: 1, Clock: 100, Kind: PhaseEnd, Label: "tiny"})
	width := 40
	out := l.Gantt(width)
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		open, close := strings.IndexByte(line, '|'), strings.LastIndexByte(line, '|')
		if close-open-1 != width {
			t.Fatalf("chart row is %d columns, want %d:\n%s", close-open-1, width, out)
		}
		if !strings.Contains(line, "=") {
			t.Fatalf("span rendered with no bar:\n%s", out)
		}
	}
}

func TestReset(t *testing.T) {
	var l Log
	l.Add(Event{})
	l.Reset()
	if l.Len() != 0 {
		t.Fatal("reset failed")
	}
}

func TestTimelineRendering(t *testing.T) {
	var l Log
	l.Add(Event{Node: 2, Clock: 0.5, Kind: MessageSent, Label: "tag7", Detail: "to:1 keys:10"})
	out := l.Timeline()
	for _, frag := range []string{"node2", "send", "tag7", "to:1 keys:10"} {
		if !strings.Contains(out, frag) {
			t.Errorf("timeline missing %q:\n%s", frag, out)
		}
	}
}

func TestGanttRendering(t *testing.T) {
	var l Log
	if !strings.Contains(l.Gantt(40), "no phases") {
		t.Error("empty gantt")
	}
	l.Add(Event{Node: 0, Clock: 0, Kind: PhaseBegin, Label: "a"})
	l.Add(Event{Node: 0, Clock: 5, Kind: PhaseEnd, Label: "a"})
	l.Add(Event{Node: 1, Clock: 5, Kind: PhaseBegin, Label: "b"})
	l.Add(Event{Node: 1, Clock: 10, Kind: PhaseEnd, Label: "b"})
	out := l.Gantt(40)
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 2 {
		t.Fatalf("gantt:\n%s", out)
	}
	// The two equal-length phases should render equal-length bars.
	c0 := strings.Count(lines[0], "=")
	c1 := strings.Count(lines[1], "=")
	if c0 == 0 || c1 == 0 || c0-c1 > 1 || c1-c0 > 1 {
		t.Fatalf("bars %d vs %d:\n%s", c0, c1, out)
	}
}

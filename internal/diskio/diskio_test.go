package diskio

import (
	"errors"
	"io"
	"os"
	"testing"
	"testing/quick"

	"hetsort/internal/pdm"
	"hetsort/internal/record"
)

// fsFactories lets every test run against both filesystem backends.
func fsFactories(t *testing.T) map[string]func() FS {
	return map[string]func() FS{
		"mem": func() FS { return NewMemFS() },
		"dir": func() FS {
			d, err := NewDirFS(t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			return d
		},
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	for name, mk := range fsFactories(t) {
		t.Run(name, func(t *testing.T) {
			fs := mk()
			keys := record.Uniform.Generate(1000, 1, 1)
			var c pdm.Counter
			acct := Accounting{Counter: &c}
			if err := WriteFile(fs, "a.keys", keys, 64, acct); err != nil {
				t.Fatal(err)
			}
			got, err := ReadFileAll(fs, "a.keys", 64, acct)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(keys) {
				t.Fatalf("read %d keys want %d", len(got), len(keys))
			}
			for i := range keys {
				if got[i] != keys[i] {
					t.Fatalf("key %d mismatch", i)
				}
			}
		})
	}
}

func TestWriterBlockAccounting(t *testing.T) {
	fs := NewMemFS()
	f, _ := fs.Create("x")
	var c pdm.Counter
	w := NewWriter(f, 10, Accounting{Counter: &c})
	// 25 keys at block 10 = 2 full + 1 partial = 3 block writes.
	if err := w.WriteKeys(make([]record.Key, 25)); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if c.Writes() != 3 {
		t.Fatalf("writes=%d want 3", c.Writes())
	}
	if w.KeysWritten() != 25 {
		t.Fatalf("KeysWritten=%d", w.KeysWritten())
	}
}

func TestReaderBlockAccounting(t *testing.T) {
	fs := NewMemFS()
	var c pdm.Counter
	acct := Accounting{Counter: &c}
	if err := WriteFile(fs, "x", make([]record.Key, 25), 10, acct); err != nil {
		t.Fatal(err)
	}
	c.Reset()
	if _, err := ReadFileAll(fs, "x", 10, acct); err != nil {
		t.Fatal(err)
	}
	if c.Reads() != 3 {
		t.Fatalf("reads=%d want 3", c.Reads())
	}
}

func TestWriterEmptyClose(t *testing.T) {
	fs := NewMemFS()
	f, _ := fs.Create("x")
	var c pdm.Counter
	w := NewWriter(f, 8, Accounting{Counter: &c})
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if c.Writes() != 0 {
		t.Fatal("empty writer must not write blocks")
	}
}

func TestReadKeyByKey(t *testing.T) {
	fs := NewMemFS()
	keys := []record.Key{10, 20, 30}
	if err := WriteFile(fs, "x", keys, 2, Accounting{}); err != nil {
		t.Fatal(err)
	}
	f, _ := fs.Open("x")
	r := NewReader(f, 2, Accounting{})
	for _, want := range keys {
		k, err := r.ReadKey()
		if err != nil || k != want {
			t.Fatalf("ReadKey=%d,%v want %d", k, err, want)
		}
	}
	if _, err := r.ReadKey(); err != io.EOF {
		t.Fatalf("want EOF, got %v", err)
	}
}

func TestReadKeyAt(t *testing.T) {
	fs := NewMemFS()
	keys := []record.Key{5, 6, 7, 8, 9}
	if err := WriteFile(fs, "x", keys, 2, Accounting{}); err != nil {
		t.Fatal(err)
	}
	f, _ := fs.Open("x")
	defer f.Close()
	var c pdm.Counter
	acct := Accounting{Counter: &c}
	for idx, want := range []record.Key{5, 6, 7, 8, 9} {
		k, err := ReadKeyAt(f, int64(idx), acct)
		if err != nil || k != want {
			t.Fatalf("ReadKeyAt(%d)=%d,%v want %d", idx, k, err, want)
		}
	}
	if c.Seeks() != 5 || c.Reads() != 5 {
		t.Fatalf("accounting: %v", c.Snapshot())
	}
}

func TestCountKeys(t *testing.T) {
	fs := NewMemFS()
	if err := WriteFile(fs, "x", make([]record.Key, 123), 16, Accounting{}); err != nil {
		t.Fatal(err)
	}
	n, err := CountKeys(fs, "x")
	if err != nil || n != 123 {
		t.Fatalf("CountKeys=%d,%v", n, err)
	}
}

func TestCountKeysRagged(t *testing.T) {
	fs := NewMemFS()
	f, _ := fs.Create("x")
	f.Write([]byte{1, 2, 3})
	f.Close()
	if _, err := CountKeys(fs, "x"); err == nil {
		t.Fatal("expected ragged-size error")
	}
}

func TestRoundTripProperty(t *testing.T) {
	fs := NewMemFS()
	i := 0
	f := func(keys []record.Key, blockRaw uint8) bool {
		i++
		block := int(blockRaw%32) + 1
		name := "prop"
		if err := WriteFile(fs, name, keys, block, Accounting{}); err != nil {
			return false
		}
		got, err := ReadFileAll(fs, name, block, Accounting{})
		if err != nil || len(got) != len(keys) {
			return false
		}
		for j := range keys {
			if got[j] != keys[j] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDirFSRejectsEscapingNames(t *testing.T) {
	d, err := NewDirFS(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for _, bad := range []string{"", "/abs", "../escape", "a/../../b"} {
		if _, err := d.Create(bad); err == nil {
			t.Errorf("Create(%q) should fail", bad)
		}
	}
}

func TestDirFSSubdirectories(t *testing.T) {
	d, err := NewDirFS(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	f, err := d.Create("node0/run1")
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte{1})
	f.Close()
	names, err := d.Names()
	if err != nil || len(names) != 1 {
		t.Fatalf("Names=%v,%v", names, err)
	}
}

func TestFSRemove(t *testing.T) {
	for name, mk := range fsFactories(t) {
		t.Run(name, func(t *testing.T) {
			fs := mk()
			if err := WriteFile(fs, "x", []record.Key{1}, 4, Accounting{}); err != nil {
				t.Fatal(err)
			}
			if err := fs.Remove("x"); err != nil {
				t.Fatal(err)
			}
			if _, err := fs.Open("x"); err == nil {
				t.Fatal("file still present after Remove")
			}
		})
	}
}

func TestMemFSOpenMissing(t *testing.T) {
	fs := NewMemFS()
	if _, err := fs.Open("missing"); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("want ErrNotExist, got %v", err)
	}
	if err := fs.Remove("missing"); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("want ErrNotExist, got %v", err)
	}
}

func TestMemFSSeekWhence(t *testing.T) {
	fs := NewMemFS()
	f, _ := fs.Create("x")
	f.Write([]byte{0, 1, 2, 3, 4, 5, 6, 7})
	if pos, err := f.Seek(2, io.SeekStart); err != nil || pos != 2 {
		t.Fatalf("SeekStart: %d %v", pos, err)
	}
	if pos, err := f.Seek(2, io.SeekCurrent); err != nil || pos != 4 {
		t.Fatalf("SeekCurrent: %d %v", pos, err)
	}
	if pos, err := f.Seek(-1, io.SeekEnd); err != nil || pos != 7 {
		t.Fatalf("SeekEnd: %d %v", pos, err)
	}
	if _, err := f.Seek(-100, io.SeekStart); err == nil {
		t.Fatal("negative seek should fail")
	}
	if _, err := f.Seek(0, 99); err == nil {
		t.Fatal("bad whence should fail")
	}
}

func TestMemFSReadOnlyOpen(t *testing.T) {
	fs := NewMemFS()
	WriteFile(fs, "x", []record.Key{1}, 4, Accounting{})
	f, _ := fs.Open("x")
	if _, err := f.Write([]byte{1}); err == nil {
		t.Fatal("write to read-only handle should fail")
	}
}

func TestMemFSClosedHandle(t *testing.T) {
	fs := NewMemFS()
	f, _ := fs.Create("x")
	f.Close()
	if _, err := f.Write([]byte{1}); err == nil {
		t.Fatal("write after close")
	}
	if _, err := f.Read(make([]byte, 1)); err == nil {
		t.Fatal("read after close")
	}
	if _, err := f.Seek(0, io.SeekStart); err == nil {
		t.Fatal("seek after close")
	}
}

func TestMemFSTotalBytes(t *testing.T) {
	fs := NewMemFS()
	WriteFile(fs, "a", make([]record.Key, 10), 4, Accounting{})
	WriteFile(fs, "b", make([]record.Key, 5), 4, Accounting{})
	if got := fs.TotalBytes(); got != 15*record.KeySize {
		t.Fatalf("TotalBytes=%d", got)
	}
}

func TestFaultFSFailsAfterBudget(t *testing.T) {
	inner := NewMemFS()
	ffs := NewFaultFS(inner, 3)
	f, err := ffs.Create("x") // op 1
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{1}); err != nil { // op 2
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{2}); err != nil { // op 3
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{3}); !errors.Is(err, ErrInjected) { // op 4: fails
		t.Fatalf("want ErrInjected, got %v", err)
	}
	if _, err := ffs.Open("x"); !errors.Is(err, ErrInjected) {
		t.Fatal("subsequent ops must keep failing")
	}
}

func TestFaultFSNeverFailsWhenNegative(t *testing.T) {
	ffs := NewFaultFS(NewMemFS(), -1)
	if err := WriteFile(ffs, "x", make([]record.Key, 100), 8, Accounting{}); err != nil {
		t.Fatal(err)
	}
}

func TestWriterSurfacesInjectedFault(t *testing.T) {
	ffs := NewFaultFS(NewMemFS(), 1) // allow Create only
	f, err := ffs.Create("x")
	if err != nil {
		t.Fatal(err)
	}
	w := NewWriter(f, 2, Accounting{})
	err = w.WriteKeys(make([]record.Key, 10))
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("want ErrInjected, got %v", err)
	}
	// The writer must stay failed.
	if err := w.Close(); !errors.Is(err, ErrInjected) {
		t.Fatalf("Close after failure: %v", err)
	}
}

func TestReaderTruncatedKey(t *testing.T) {
	fs := NewMemFS()
	f, _ := fs.Create("x")
	f.Write([]byte{1, 2, 3, 4, 5}) // 1 key + 1 stray byte
	f.Close()
	g, _ := fs.Open("x")
	r := NewReader(g, 4, Accounting{})
	_, err := r.ReadKey() // block read picks up ragged tail
	if err == nil {
		t.Fatal("expected truncated-key error")
	}
}

func TestNamesSorted(t *testing.T) {
	fs := NewMemFS()
	for _, n := range []string{"c", "a", "b"} {
		WriteFile(fs, n, nil, 4, Accounting{})
	}
	names, err := fs.Names()
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 3 || names[0] != "a" || names[2] != "c" {
		t.Fatalf("Names=%v", names)
	}
}

func TestFaultFSFullInterface(t *testing.T) {
	inner := NewMemFS()
	WriteFile(inner, "x", []record.Key{1, 2}, 4, Accounting{})
	ffs := NewFaultFS(inner, 100)
	f, err := ffs.Open("x") // op 1
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4)
	if _, err := f.Read(buf); err != nil { // op 2
		t.Fatal(err)
	}
	if _, err := f.Seek(0, io.SeekStart); err != nil { // op 3
		t.Fatal(err)
	}
	if err := ffs.Rename("x", "y"); err != nil { // op 4
		t.Fatal(err)
	}
	if err := ffs.Remove("y"); err != nil { // op 5
		t.Fatal(err)
	}
	if names, err := ffs.Names(); err != nil || len(names) != 0 {
		t.Fatalf("Names=%v,%v", names, err)
	}
	if ffs.Ops() != 5 {
		t.Fatalf("Ops=%d", ffs.Ops())
	}
}

func TestWriterWriteKeySingle(t *testing.T) {
	fs := NewMemFS()
	f, _ := fs.Create("x")
	var c pdm.Counter
	w := NewWriter(f, 2, Accounting{Counter: &c})
	for _, k := range []record.Key{3, 1, 2} {
		if err := w.WriteKey(k); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	f.Close()
	got, _ := ReadFileAll(fs, "x", 2, Accounting{})
	if len(got) != 3 || got[0] != 3 || got[2] != 2 {
		t.Fatalf("got %v", got)
	}
	if c.Writes() != 2 { // 2 blocks: [3,1] and [2]
		t.Fatalf("writes=%d", c.Writes())
	}
}

func TestDirFSRootAndName(t *testing.T) {
	dir := t.TempDir()
	d, err := NewDirFS(dir)
	if err != nil {
		t.Fatal(err)
	}
	if d.Root() != dir {
		t.Fatalf("Root=%q", d.Root())
	}
	f, err := d.Create("file")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if f.Name() != "file" {
		t.Fatalf("Name=%q", f.Name())
	}
}

func TestNewWriterReaderPanicOnBadBlock(t *testing.T) {
	fs := NewMemFS()
	f, _ := fs.Create("x")
	defer f.Close()
	for _, fn := range []func(){
		func() { NewWriter(f, 0, Accounting{}) },
		func() { NewReader(f, -1, Accounting{}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestPoolStatsCountReuse(t *testing.T) {
	ResetPoolStats()
	// A fresh block size misses; round-tripping the same buffer through
	// the pool should then hit (sync.Pool may drop entries under GC
	// pressure, so only the miss side is asserted exactly).
	b := getByteBuf(1 << 12)
	_, misses0 := PoolStats()
	if misses0 == 0 {
		t.Fatal("first allocation did not count as a miss")
	}
	putByteBuf(b)
	getByteBuf(1 << 12)
	hits, misses := PoolStats()
	if hits+misses <= misses0 {
		t.Fatalf("second acquisition unaccounted: hits=%d misses=%d", hits, misses)
	}
	ResetPoolStats()
	if h, m := PoolStats(); h != 0 || m != 0 {
		t.Fatalf("reset left hits=%d misses=%d", h, m)
	}
}

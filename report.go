package hetsort

import (
	"fmt"
	"strings"

	"hetsort/internal/cluster"
	"hetsort/internal/extsort"
	"hetsort/internal/pdm"
	"hetsort/internal/perf"
	"hetsort/internal/progress"
	"hetsort/internal/sampling"
	"hetsort/internal/trace"
	"hetsort/internal/vtime"
)

// TimeBreakdown splits a node's virtual clock into the four activity
// categories the simulator attributes every clock advance to.  The
// categories sum to the node's clock.
type TimeBreakdown struct {
	// Compute is time spent in local computation (sorting, merging,
	// partitioning comparisons).
	Compute float64 `json:"compute"`
	// Disk is time spent in block transfers and seeks.
	Disk float64 `json:"disk"`
	// Network is time spent occupying links: send occupancy plus the
	// receiver's share of message latency.
	Network float64 `json:"network"`
	// Idle is time spent waiting — blocked receives, barrier waits,
	// retry backoff, and a resumed run's replayed clock.
	Idle float64 `json:"idle"`
	// Overlapped is disk transfer time hidden behind concurrent compute
	// by Config.Overlap.  It advanced the clock by nothing, so it is
	// informational and excluded from Total.
	Overlapped float64 `json:"overlapped,omitempty"`
}

// Total returns the sum of the four wall-clock categories (Overlapped
// excluded: hidden disk time never advanced the clock).
func (t TimeBreakdown) Total() float64 { return t.Compute + t.Disk + t.Network + t.Idle }

func toBreakdown(b vtime.Breakdown) TimeBreakdown {
	return TimeBreakdown{Compute: b.Compute, Disk: b.Disk, Network: b.Network, Idle: b.Idle,
		Overlapped: b.Overlapped}
}

// Report describes one sort run: virtual time, per-step breakdown,
// final load balance, and I/O counts — the quantities the paper's
// evaluation tables report.
type Report struct {
	// Time is the virtual execution time in seconds (the makespan of
	// the simulated cluster).
	Time float64
	// StepTimes breaks Time down over the five steps of Algorithm 1,
	// in order: sequential sort, pivot selection, partitioning,
	// redistribution, final merge.
	StepTimes [5]float64
	// StepNames labels StepTimes.
	StepNames [5]string
	// PartitionSizes is the final number of keys on each node.
	PartitionSizes []int64
	// SublistExpansion is the paper's S(max) load-balance metric: the
	// worst ratio of a node's final partition to its optimal
	// perf-proportional share (1.0 = perfect).
	SublistExpansion float64
	// ReadBlocks and WriteBlocks total the PDM block transfers over
	// all nodes.
	ReadBlocks, WriteBlocks int64
	// NodeIO is each node's total PDM I/O (block transfers and seeks).
	NodeIO []pdm.IOStats
	// DiskIO[i][d] is node i's I/O on member disk d when the node has
	// D > 1 disks (Config.Disks); nil per node at D = 1.  The per-disk
	// entries of a node sum to its NodeIO entry.
	DiskIO [][]pdm.IOStats
	// StepIO[s][i] is node i's PDM I/O during step s of Algorithm 1
	// (empty per-node entries for algorithms without a step structure).
	// Checkpoint-manifest and setup I/O is attributed to no step, so
	// the step cells sum to at most NodeIO.
	StepIO [5][]pdm.IOStats
	// NodeClocks is each node's final virtual clock.
	NodeClocks []float64
	// Perf echoes the vector the run used.
	Perf []int
	// NodeBreakdown attributes each node's clock to compute, disk,
	// network and idle-wait time.
	NodeBreakdown []TimeBreakdown
	// StepBreakdown attributes each node's time within each of the five
	// steps (barrier to barrier; empty per-node entries for algorithms
	// without a step structure).
	StepBreakdown [5][]TimeBreakdown
	// PivotRounds is the number of step-2 collective rounds (1 for the
	// one-shot pivot strategies, the refinement round count for
	// PivotHistogram).
	PivotRounds int
	// PivotSampleKeys is the number of key-valued samples shipped
	// through the step-2 collectives (see extsort.Result).
	PivotSampleKeys int64
	// NodeMetrics is each node's metrics-registry snapshot: link
	// traffic, merge-kernel counters, queue depths, checkpoint commit
	// latencies (see internal/metrics).
	NodeMetrics []map[string]float64
	// Timeline and Gantt hold the rendered virtual-time trace when
	// Config.Trace was set.
	Timeline string
	Gantt    string
	// TraceLog is the raw event log when Config.Trace was set; export
	// it with trace.WriteChromeTrace or trace.WriteJSONL.
	TraceLog *trace.Log `json:"-"`
}

// attachTrace renders tl into the report (no-op for nil).
func (r *Report) attachTrace(tl *trace.Log) {
	if tl == nil {
		return
	}
	r.TraceLog = tl
	r.Timeline = tl.Timeline()
	r.Gantt = tl.Gantt(60)
}

// attachMetrics snapshots every node's metrics registry into the report.
func (r *Report) attachMetrics(c *cluster.Cluster) {
	r.NodeMetrics = make([]map[string]float64, c.P())
	for i := 0; i < c.P(); i++ {
		r.NodeMetrics[i] = c.Node(i).Metrics().Snapshot()
	}
}

func newReport(res *extsort.Result, v perf.Vector) *Report {
	r := &Report{
		Time:            res.Time,
		StepTimes:       res.StepTimes,
		StepNames:       extsort.StepNames,
		PartitionSizes:  res.PartitionSizes,
		NodeClocks:      res.NodeClocks,
		Perf:            append([]int(nil), v...),
		PivotRounds:     res.PivotRounds,
		PivotSampleKeys: res.PivotSampleKeys,
	}
	if e, err := sampling.WeightedExpansion(res.PartitionSizes, v); err == nil {
		r.SublistExpansion = e
	}
	for _, io := range res.NodeIO {
		r.ReadBlocks += io.Reads
		r.WriteBlocks += io.Writes
	}
	r.NodeIO = append([]pdm.IOStats(nil), res.NodeIO...)
	for _, dio := range res.DiskIO {
		if dio != nil {
			r.DiskIO = append([][]pdm.IOStats(nil), res.DiskIO...)
			break
		}
	}
	for s := range res.StepIO {
		r.StepIO[s] = append([]pdm.IOStats(nil), res.StepIO[s]...)
	}
	if len(res.NodeAttr) > 0 {
		r.NodeBreakdown = make([]TimeBreakdown, len(res.NodeAttr))
		for i, b := range res.NodeAttr {
			r.NodeBreakdown[i] = toBreakdown(b)
		}
	}
	for s := range res.StepAttr {
		if len(res.StepAttr[s]) == 0 {
			continue
		}
		r.StepBreakdown[s] = make([]TimeBreakdown, len(res.StepAttr[s]))
		for i, b := range res.StepAttr[s] {
			r.StepBreakdown[s][i] = toBreakdown(b)
		}
	}
	return r
}

// Stragglers runs the perf-model divergence analysis over the report:
// each node's observed throughput (block transfers per non-idle virtual
// second) against its declared perf entry, and its final partition
// against its Theorem-1 share.  Nodes come back ranked worst first,
// classified as slow-node (mis-calibrated perf or contention) or
// overloaded-partition (pivot skew).  Requires the per-node attribution
// (always present for external PSRS runs).
func (r *Report) Stragglers() (*progress.StragglerReport, error) {
	if len(r.NodeBreakdown) != len(r.Perf) {
		return nil, fmt.Errorf("hetsort: report has no per-node attribution (%d breakdowns for %d nodes)",
			len(r.NodeBreakdown), len(r.Perf))
	}
	busy := make([]float64, len(r.NodeBreakdown))
	for i, b := range r.NodeBreakdown {
		busy[i] = b.Compute + b.Disk + b.Network
	}
	return progress.Analyze(progress.RunStats{
		Perf:           r.Perf,
		Busy:           busy,
		IO:             r.NodeIO,
		PartitionSizes: r.PartitionSizes,
	})
}

// String renders a human-readable summary.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "hetsort: %.3f virtual s, perf=%v, S(max)=%.4f\n",
		r.Time, r.Perf, r.SublistExpansion)
	for i, name := range r.StepNames {
		fmt.Fprintf(&b, "  %-20s %10.3fs\n", name, r.StepTimes[i])
	}
	fmt.Fprintf(&b, "  partitions: %v\n", r.PartitionSizes)
	fmt.Fprintf(&b, "  block I/O: %d reads, %d writes\n", r.ReadBlocks, r.WriteBlocks)
	if len(r.DiskIO) > 0 {
		fmt.Fprintf(&b, "  per-disk I/O (node: r/w per member disk):\n")
		for i, dio := range r.DiskIO {
			if len(dio) == 0 {
				continue
			}
			fmt.Fprintf(&b, "    %-6d", i)
			for _, io := range dio {
				fmt.Fprintf(&b, " %6d/%-6d", io.Reads, io.Writes)
			}
			fmt.Fprintf(&b, "\n")
		}
	}
	if len(r.NodeBreakdown) > 0 {
		fmt.Fprintf(&b, "  where the time went (per node, virtual s):\n")
		fmt.Fprintf(&b, "    %-6s %10s %10s %10s %10s %10s %10s\n", "node", "compute", "disk", "network", "idle", "clock", "overlapped")
		for i, t := range r.NodeBreakdown {
			fmt.Fprintf(&b, "    %-6d %10.3f %10.3f %10.3f %10.3f %10.3f %10.3f\n",
				i, t.Compute, t.Disk, t.Network, t.Idle, t.Total(), t.Overlapped)
		}
	}
	return b.String()
}

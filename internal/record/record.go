// Package record defines the data items the sorter operates on and the
// benchmark input distributions used by the paper's evaluation.
//
// The paper sorts 32-bit integers (4 bytes each: "an input size of
// 33554432 integers corresponds to 134217728 bytes").  We follow it and
// use uint32 keys with a fixed little-endian 4-byte on-disk encoding.
// The paper's public benchmark suite contains "eight different
// benchmarks corresponding to eight different inputs"; the exact
// distributions are not listed in the text, so we provide the eight
// distributions canonical in the parallel-sorting literature the paper
// builds on (Blelloch et al., Li & Sevcik, Shi & Schaeffer).
package record

import (
	"encoding/binary"
	"fmt"
	"math/rand"
	"sort"
)

// Key is one data item: a 32-bit unsigned integer, 4 bytes on disk.
type Key = uint32

// KeySize is the on-disk size of a Key in bytes.
const KeySize = 4

// PutKey encodes k into buf (little endian).  buf must have at least
// KeySize bytes.
func PutKey(buf []byte, k Key) { binary.LittleEndian.PutUint32(buf, k) }

// GetKey decodes a key from buf (little endian).
func GetKey(buf []byte) Key { return binary.LittleEndian.Uint32(buf) }

// EncodeKeys appends the encoding of keys to dst and returns it.
func EncodeKeys(dst []byte, keys []Key) []byte {
	off := len(dst)
	dst = append(dst, make([]byte, KeySize*len(keys))...)
	for i, k := range keys {
		PutKey(dst[off+i*KeySize:], k)
	}
	return dst
}

// DecodeKeys decodes len(buf)/KeySize keys from buf, appending to dst.
// It panics if len(buf) is not a multiple of KeySize.
func DecodeKeys(dst []Key, buf []byte) []Key {
	if len(buf)%KeySize != 0 {
		panic(fmt.Sprintf("record: buffer length %d not a multiple of %d", len(buf), KeySize))
	}
	for i := 0; i < len(buf); i += KeySize {
		dst = append(dst, GetKey(buf[i:]))
	}
	return dst
}

// IsSorted reports whether keys is non-decreasing.
func IsSorted(keys []Key) bool {
	return sort.SliceIsSorted(keys, func(i, j int) bool { return keys[i] < keys[j] })
}

// Checksum is an order-insensitive fingerprint of a multiset of keys,
// used to verify that sorting permuted the input without losing or
// inventing items.  Sum and xor together detect any realistic corruption;
// Count catches duplication/loss that cancels in both.
type Checksum struct {
	Count int64
	Sum   uint64
	Xor   uint32
}

// Update folds the keys into the checksum.
func (c *Checksum) Update(keys []Key) {
	for _, k := range keys {
		c.Count++
		c.Sum += uint64(k)
		c.Xor ^= k
	}
}

// Combine merges another checksum into c (disjoint multiset union).
func (c *Checksum) Combine(o Checksum) {
	c.Count += o.Count
	c.Sum += o.Sum
	c.Xor ^= o.Xor
}

// Equal reports whether two checksums describe the same multiset
// fingerprint.
func (c Checksum) Equal(o Checksum) bool { return c == o }

func (c Checksum) String() string {
	return fmt.Sprintf("Checksum{n=%d sum=%d xor=%08x}", c.Count, c.Sum, c.Xor)
}

// ChecksumOf computes the checksum of keys.
func ChecksumOf(keys []Key) Checksum {
	var c Checksum
	c.Update(keys)
	return c
}

// rng returns a deterministic source for a seed; all generators in this
// package are reproducible given the seed.
func rng(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

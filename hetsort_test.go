package hetsort

import (
	"bufio"
	"encoding/binary"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func TestSortDefaultConfig(t *testing.T) {
	keys := make([]Key, 20000)
	for i := range keys {
		keys[i] = Key(1664525*uint32(i) + 1013904223)
	}
	sorted, rep, err := Sort(keys, Config{MemoryKeys: 4096, BlockKeys: 128, Tapes: 5, MessageKeys: 512})
	if err != nil {
		t.Fatal(err)
	}
	if len(sorted) != len(keys) {
		t.Fatalf("length %d", len(sorted))
	}
	if !sort.SliceIsSorted(sorted, func(i, j int) bool { return sorted[i] < sorted[j] }) {
		t.Fatal("not sorted")
	}
	if rep.Time <= 0 {
		t.Fatal("no time in report")
	}
	if rep.SublistExpansion < 0.99 {
		t.Fatalf("expansion %v", rep.SublistExpansion)
	}
	if len(rep.PartitionSizes) != 4 {
		t.Fatalf("partitions %v", rep.PartitionSizes)
	}
}

func TestSortHeterogeneous(t *testing.T) {
	perfV := []int{1, 1, 4, 4}
	n, err := ValidSize(perfV, 20000)
	if err != nil {
		t.Fatal(err)
	}
	keys := make([]Key, n)
	for i := range keys {
		keys[i] = Key(2654435761 * uint32(i+1))
	}
	sorted, rep, err := Sort(keys, Config{
		Perf: perfV, MemoryKeys: 4096, BlockKeys: 128, Tapes: 5, MessageKeys: 512,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !sort.SliceIsSorted(sorted, func(i, j int) bool { return sorted[i] < sorted[j] }) {
		t.Fatal("not sorted")
	}
	// Fast nodes carry about 4x the slow nodes' final partitions.
	slow := rep.PartitionSizes[0] + rep.PartitionSizes[1]
	fast := rep.PartitionSizes[2] + rep.PartitionSizes[3]
	if fast < 3*slow {
		t.Fatalf("fast/slow imbalance: %v", rep.PartitionSizes)
	}
	if rep.String() == "" {
		t.Fatal("empty report string")
	}
}

func TestSortOverlapReport(t *testing.T) {
	keys := make([]Key, 20000)
	for i := range keys {
		keys[i] = Key(1664525*uint32(i) + 1013904223)
	}
	cfg := Config{MemoryKeys: 4096, BlockKeys: 128, Tapes: 5, MessageKeys: 512}
	_, syncRep, err := Sort(keys, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Overlap = true
	sorted, rep, err := Sort(keys, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !sort.SliceIsSorted(sorted, func(i, j int) bool { return sorted[i] < sorted[j] }) {
		t.Fatal("not sorted")
	}
	if rep.Time >= syncRep.Time {
		t.Fatalf("overlapped %v virtual s not below synchronous %v", rep.Time, syncRep.Time)
	}
	if rep.ReadBlocks != syncRep.ReadBlocks || rep.WriteBlocks != syncRep.WriteBlocks {
		t.Fatalf("overlap changed I/O counts: %d/%d vs %d/%d",
			rep.ReadBlocks, rep.WriteBlocks, syncRep.ReadBlocks, syncRep.WriteBlocks)
	}
	var hidden float64
	for _, b := range rep.NodeBreakdown {
		hidden += b.Overlapped
	}
	if hidden <= 0 {
		t.Fatal("no disk time hidden in the node breakdown")
	}
	for i, m := range rep.NodeMetrics {
		if m["disk.prefetch.blocks"] <= 0 {
			t.Errorf("node %d metrics missing prefetch counters: %v", i, m)
		}
		if m["disk.writebehind.blocks"] <= 0 {
			t.Errorf("node %d metrics missing write-behind counters: %v", i, m)
		}
	}
	if !strings.Contains(rep.String(), "overlapped") {
		t.Fatal("report table lost the overlapped column")
	}
}

func TestSortDoesNotMutateInput(t *testing.T) {
	keys := []Key{5, 3, 1, 4, 2, 9, 8, 7, 6, 0}
	orig := append([]Key(nil), keys...)
	if _, _, err := Sort(keys, Config{Nodes: 2, MemoryKeys: 64, BlockKeys: 4, Tapes: 3, MessageKeys: 8}); err != nil {
		t.Fatal(err)
	}
	for i := range keys {
		if keys[i] != orig[i] {
			t.Fatal("input mutated")
		}
	}
}

func TestSortConfigErrors(t *testing.T) {
	keys := []Key{1, 2}
	if _, _, err := Sort(keys, Config{Perf: []int{1, 0}}); err == nil {
		t.Fatal("bad perf accepted")
	}
	if _, _, err := Sort(keys, Config{Network: "token-ring"}); err == nil {
		t.Fatal("bad network accepted")
	}
	if _, _, err := Sort(keys, Config{RunFormation: "bogosort"}); err == nil {
		t.Fatal("bad run formation accepted")
	}
	if _, _, err := Sort(keys, Config{Nodes: 2, Loads: []float64{1}}); err == nil {
		t.Fatal("mismatched loads accepted")
	}
}

func TestSortRejectsBadTuningValues(t *testing.T) {
	// NaN compares false against everything, so a plain `eps <= 0`
	// guard waves it through; the config validation must reject it
	// before it reaches the sketch.
	keys := []Key{3, 1, 2}
	for _, eps := range []float64{math.NaN(), math.Inf(1), -0.5, 1, 2} {
		if _, _, err := Sort(keys, Config{PivotStrategy: PivotQuantileSketch, QuantileEps: eps}); err == nil {
			t.Errorf("QuantileEps=%v accepted", eps)
		} else if !strings.Contains(err.Error(), "QuantileEps") {
			t.Errorf("QuantileEps=%v error does not name the field: %v", eps, err)
		}
	}
	for _, tol := range []float64{math.NaN(), math.Inf(1), -0.1, 1, 1.5} {
		if _, _, err := Sort(keys, Config{PivotStrategy: PivotHistogram, HistTolerance: tol}); err == nil {
			t.Errorf("HistTolerance=%v accepted", tol)
		} else if !strings.Contains(err.Error(), "HistTolerance") {
			t.Errorf("HistTolerance=%v error does not name the field: %v", tol, err)
		}
	}
	// The zero value still means "use the default".
	if _, _, err := Sort(keys, Config{PivotStrategy: PivotHistogram}); err != nil {
		t.Fatalf("default tolerance rejected: %v", err)
	}
}

func TestSortProperty(t *testing.T) {
	cfg := Config{Nodes: 3, MemoryKeys: 512, BlockKeys: 16, Tapes: 4, MessageKeys: 64}
	f := func(keys []Key) bool {
		sorted, _, err := Sort(keys, cfg)
		if err != nil || len(sorted) != len(keys) {
			return false
		}
		if !sort.SliceIsSorted(sorted, func(i, j int) bool { return sorted[i] < sorted[j] }) {
			return false
		}
		var a, b uint64
		for i := range keys {
			a += uint64(keys[i])
			b += uint64(sorted[i])
		}
		return a == b
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestCalibrateRecoversLoads(t *testing.T) {
	vec, times, err := Calibrate(Config{
		Perf: []int{1, 1, 4, 4}, MemoryKeys: 4096, BlockKeys: 128, Tapes: 5,
	}, 8192)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{1, 1, 4, 4}
	for i := range want {
		if vec[i] != want[i] {
			t.Fatalf("calibrated %v (times %v) want %v", vec, times, want)
		}
	}
	if _, _, err := Calibrate(Config{}, 0); err == nil {
		t.Fatal("zero keys accepted")
	}
}

func TestValidSize(t *testing.T) {
	n, err := ValidSize([]int{1, 1, 4, 4}, 1<<24)
	if err != nil || n != 16777220 {
		t.Fatalf("ValidSize=%d,%v", n, err)
	}
	if _, err := ValidSize([]int{0}, 10); err == nil {
		t.Fatal("bad vector accepted")
	}
}

func TestSortFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	inPath := filepath.Join(dir, "in.u32")
	outPath := filepath.Join(dir, "out.u32")

	const n = 50000
	f, err := os.Create(inPath)
	if err != nil {
		t.Fatal(err)
	}
	w := bufio.NewWriter(f)
	var buf [4]byte
	for i := 0; i < n; i++ {
		binary.LittleEndian.PutUint32(buf[:], 2654435761*uint32(i+7))
		w.Write(buf[:])
	}
	w.Flush()
	f.Close()

	rep, err := SortFile(inPath, outPath, Config{
		Perf: []int{1, 2, 2}, WorkDir: filepath.Join(dir, "work"),
		MemoryKeys: 4096, BlockKeys: 128, Tapes: 5, MessageKeys: 512,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Time <= 0 {
		t.Fatal("no report time")
	}
	out, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != n*4 {
		t.Fatalf("output %d bytes", len(out))
	}
	prev := uint32(0)
	for i := 0; i < n; i++ {
		k := binary.LittleEndian.Uint32(out[i*4:])
		if k < prev {
			t.Fatalf("output unsorted at %d", i)
		}
		prev = k
	}
	// The node work directories must exist on real disk.
	if _, err := os.Stat(filepath.Join(dir, "work", "node0")); err != nil {
		t.Fatal("work dir missing")
	}
}

func TestSortFileErrors(t *testing.T) {
	dir := t.TempDir()
	if _, err := SortFile(filepath.Join(dir, "missing"), filepath.Join(dir, "out"), Config{}); err == nil {
		t.Fatal("missing input accepted")
	}
	ragged := filepath.Join(dir, "ragged")
	os.WriteFile(ragged, []byte{1, 2, 3}, 0o644)
	if _, err := SortFile(ragged, filepath.Join(dir, "out"), Config{}); err == nil {
		t.Fatal("ragged input accepted")
	}
}

func TestSortWithTrace(t *testing.T) {
	keys := make([]Key, 8000)
	for i := range keys {
		keys[i] = Key(2246822519 * uint32(i+3))
	}
	_, rep, err := Sort(keys, Config{
		Nodes: 2, MemoryKeys: 1024, BlockKeys: 64, Tapes: 4, MessageKeys: 128, Trace: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Timeline == "" || rep.Gantt == "" {
		t.Fatal("trace requested but not attached")
	}
	for _, frag := range []string{"1:sequential-sort", "4:redistribution", "send", "recv"} {
		if !strings.Contains(rep.Timeline+rep.Gantt, frag) {
			t.Errorf("trace missing %q", frag)
		}
	}
}

func TestSortWithoutTraceHasNoTimeline(t *testing.T) {
	keys := []Key{3, 1, 2, 5, 4, 9, 0, 8}
	_, rep, err := Sort(keys, Config{Nodes: 2, MemoryKeys: 64, BlockKeys: 4, Tapes: 3, MessageKeys: 8})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Timeline != "" || rep.Gantt != "" {
		t.Fatal("trace attached without being requested")
	}
}

func TestSortPivotStrategies(t *testing.T) {
	keys := make([]Key, 24000)
	for i := range keys {
		keys[i] = Key(2654435761 * uint32(i+13))
	}
	for _, strat := range []string{PivotRegularSampling, PivotOverpartitioning, PivotRandom, PivotQuantileSketch, PivotHistogram} {
		t.Run(strat, func(t *testing.T) {
			sorted, rep, err := Sort(keys, Config{
				PivotStrategy: strat, MemoryKeys: 4096, BlockKeys: 128, Tapes: 5, MessageKeys: 512,
			})
			if err != nil {
				t.Fatal(err)
			}
			if !sort.SliceIsSorted(sorted, func(i, j int) bool { return sorted[i] < sorted[j] }) {
				t.Fatal("not sorted")
			}
			if rep.SublistExpansion <= 0 {
				t.Fatal("no expansion metric")
			}
		})
	}
	if _, _, err := Sort(keys, Config{PivotStrategy: "bogopivot"}); err == nil {
		t.Fatal("bad pivot strategy accepted")
	}
}

func TestSortDeWittAlgorithm(t *testing.T) {
	keys := make([]Key, 20000)
	for i := range keys {
		keys[i] = Key(40503*uint32(i+1) + 12345)
	}
	sorted, rep, err := Sort(keys, Config{
		Algorithm: AlgorithmDeWitt, Perf: []int{1, 1, 4, 4},
		MemoryKeys: 4096, BlockKeys: 128, Tapes: 5, MessageKeys: 512,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !sort.SliceIsSorted(sorted, func(i, j int) bool { return sorted[i] < sorted[j] }) {
		t.Fatal("not sorted")
	}
	if rep.Time <= 0 {
		t.Fatal("no time")
	}
	// The baseline reports no per-step breakdown.
	var stepSum float64
	for _, s := range rep.StepTimes {
		stepSum += s
	}
	if stepSum != 0 {
		t.Fatalf("DeWitt should have no step breakdown, got %v", rep.StepTimes)
	}
	if _, _, err := Sort(keys, Config{Algorithm: "bogosort"}); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
}

func TestParsePerf(t *testing.T) {
	v, err := ParsePerf(" 1, 1,4,4 ")
	if err != nil || len(v) != 4 || v[2] != 4 {
		t.Fatalf("ParsePerf: %v %v", v, err)
	}
	for _, bad := range []string{"", "a", "1,0", "1,-2", "1,,2"} {
		if _, err := ParsePerf(bad); err == nil {
			t.Errorf("ParsePerf(%q) accepted", bad)
		}
	}
}

func TestParseLoads(t *testing.T) {
	l, err := ParseLoads("4,4,1,1.5")
	if err != nil || len(l) != 4 || l[3] != 1.5 {
		t.Fatalf("ParseLoads: %v %v", l, err)
	}
	for _, bad := range []string{"x", "0.5", "1,0.99"} {
		if _, err := ParseLoads(bad); err == nil {
			t.Errorf("ParseLoads(%q) accepted", bad)
		}
	}
}

package experiments

import (
	"fmt"

	"hetsort/internal/cluster"
	"hetsort/internal/extsort"
	"hetsort/internal/record"
	"hetsort/internal/stats"
)

// DistributionRow is one input distribution's behaviour under external
// PSRS on the heterogeneous cluster.
type DistributionRow struct {
	Distribution record.Distribution
	Time         stats.Summary
	SMax         float64 // worst weighted expansion over the trials
}

// DistributionSweep reproduces the paper's section-3 claim (E10) that
// one-step merge-based sorting with regular sampling has "regular
// communication requirements invariant with respect to the input
// distribution": external PSRS is run over the full eight-benchmark
// input suite on the loaded {1,1,4,4} cluster, reporting time and load
// balance per distribution.  Times should vary only mildly (sorted
// inputs make step 1 cheaper); the duplicate-heavy zipf input is the
// one legitimate balance outlier (the U+d bound).
func DistributionSweep(o Options) ([]DistributionRow, error) {
	o = o.withDefaults()
	v := PaperVector
	n := v.NearestValidSize(o.scale(1 << 22))
	var rows []DistributionRow
	for _, d := range record.PaperDistributions() {
		c, err := o.newCluster(cluster.FastEthernet())
		if err != nil {
			return nil, err
		}
		var smax float64
		sum, err := o.trialSummary(func(seed int64) (float64, error) {
			c.ResetClocks()
			cfg := o.extsortConfig(v)
			isum, derr := extsort.DistributeInput(c, v, d, n, seed, o.BlockKeys, "input")
			if derr != nil {
				return 0, derr
			}
			res, serr := extsort.Sort(c, cfg, "input", "output")
			if serr != nil {
				return 0, serr
			}
			if verr := extsort.VerifyOutput(c, "output", o.BlockKeys, isum); verr != nil {
				return 0, verr
			}
			if e := res.SublistExpansion(v); e > smax {
				smax = e
			}
			return res.Time, nil
		})
		if err != nil {
			return nil, fmt.Errorf("experiments: distribution sweep %v: %w", d, err)
		}
		rows = append(rows, DistributionRow{Distribution: d, Time: sum, SMax: smax})
	}
	return rows, nil
}

// DistributionSweepString renders the sweep.
func DistributionSweepString(rows []DistributionRow) string {
	t := &stats.Table{
		Title:   "Distribution sensitivity: external PSRS on perf {1,1,4,4} across the benchmark suite",
		Headers: []string{"Input", "Time(s)", "Dev", "S(max)"},
	}
	for _, r := range rows {
		t.AddRow(r.Distribution.String(), r.Time.Mean, r.Time.StdDev, r.SMax)
	}
	return t.String()
}

// Package extsort is the paper's primary contribution: Algorithm 1, a
// PSRS scheme for external sorting on heterogeneous clusters.  Each node
// owns a disk-resident portion sized by the perf vector; the five steps
// are
//
//  1. sequential external sort of the portion (polyphase merge sort);
//  2. regularly spaced pivot candidates read from the sorted file
//     (perf-proportional counts), gathered on node 0, which selects and
//     broadcasts p-1 pivots;
//  3. partitioning of the sorted file into p contiguous segment files;
//  4. redistribution: segment j travels to node j in fixed-size
//     messages (a multiple of the block size);
//  5. final merge of the p received sorted files with the external
//     merge of step 1's sorter.
//
// The concatenation of the nodes' output files in rank order is the
// globally sorted sequence, and the PSRS theorem bounds every node's
// final load by twice its optimal share.
package extsort

import (
	"fmt"
	"io"

	"hetsort/internal/cluster"
	"hetsort/internal/diskio"
	"hetsort/internal/pdm"
	"hetsort/internal/perf"
	"hetsort/internal/polyphase"
	"hetsort/internal/record"
	"hetsort/internal/sampling"
)

// Message tags.
const (
	tagSamples = 200 + iota
	tagPivots
	tagData
	tagDone
	tagOverSizes
	tagBarrierBase = 300 // barriers use tagBarrierBase + 2*step
)

// Step names index the per-step metrics in Result.
var StepNames = [5]string{
	"1:sequential-sort",
	"2:pivot-selection",
	"3:partitioning",
	"4:redistribution",
	"5:final-merge",
}

// Config parameterises Algorithm 1.
type Config struct {
	// Perf is the performance vector; data shares, sample counts and
	// pivot quantiles all follow it.  All ones = homogeneous external
	// PSRS.
	Perf perf.Vector
	// BlockKeys is the disk block size B in keys (default 2048 = 8 KiB).
	BlockKeys int
	// MemoryKeys is each node's internal memory M in keys (default 1<<16).
	MemoryKeys int
	// Tapes is the polyphase file count (default 15, the paper's
	// "15 intermediate files").
	Tapes int
	// MessageKeys is the redistribution message size in keys (default
	// 8192, the paper's best-performing 32 Kb packets).
	MessageKeys int
	// RunFormation selects the run former for step 1.
	RunFormation polyphase.RunFormation
	// Strategy selects the pivot scheme for step 2 (default
	// RegularSampling, the paper's Algorithm 1).
	Strategy Strategy
	// OverFactor is the sublists-per-processor factor k when Strategy
	// is Overpartitioning (default 4).
	OverFactor int
	// QuantileEps is the sketch error bound for QuantileSketch
	// (default 0.01).
	QuantileEps float64
	// Seed feeds the random samplers of the non-regular strategies.
	Seed int64
	// KeepIntermediates retains segment and received files for
	// debugging when true.
	KeepIntermediates bool
}

// ApplyDefaults fills zero-valued fields with the paper's defaults for
// a p-node cluster (8 KiB blocks, 2^16-key memory, 15 tapes, 8K-integer
// messages, homogeneous perf).
func (c *Config) ApplyDefaults(p int) { c.applyDefaults(p) }

func (c *Config) applyDefaults(p int) {
	if len(c.Perf) == 0 {
		c.Perf = perf.Homogeneous(p)
	}
	if c.BlockKeys <= 0 {
		c.BlockKeys = 2048
	}
	if c.MemoryKeys <= 0 {
		c.MemoryKeys = 1 << 16
	}
	if c.Tapes <= 0 {
		c.Tapes = 15
	}
	if c.MessageKeys <= 0 {
		c.MessageKeys = 8192
	}
}

// Validate checks the configuration against cluster size p.
func (c Config) Validate(p int) error {
	if err := c.Perf.Validate(); err != nil {
		return err
	}
	if len(c.Perf) != p {
		return fmt.Errorf("extsort: perf vector length %d != cluster size %d", len(c.Perf), p)
	}
	if c.Tapes < 3 {
		return fmt.Errorf("extsort: Tapes=%d must be >= 3", c.Tapes)
	}
	if c.MemoryKeys < c.Tapes*c.BlockKeys {
		return fmt.Errorf("extsort: MemoryKeys=%d < Tapes*BlockKeys=%d", c.MemoryKeys, c.Tapes*c.BlockKeys)
	}
	if c.MessageKeys <= 0 {
		return fmt.Errorf("extsort: MessageKeys=%d must be positive", c.MessageKeys)
	}
	// The paper recommends message sizes that are multiples of the
	// block size (step 4), but its own packet-size experiment goes down
	// to 8-integer messages, so smaller values are permitted.
	return nil
}

// Result reports one Algorithm-1 run.
type Result struct {
	// Time is the virtual makespan.
	Time float64
	// NodeClocks is each node's final clock.
	NodeClocks []float64
	// PartitionSizes is the final number of keys per node.
	PartitionSizes []int64
	// StepTimes[s] is the cluster-wide duration of step s (barrier to
	// barrier, max over nodes).
	StepTimes [5]float64
	// NodeIO is each node's total I/O.
	NodeIO []pdm.IOStats
	// StepIO[s][i] is node i's I/O during step s.
	StepIO [5][]pdm.IOStats
	// Pivots are the broadcast pivots (diagnostics).
	Pivots []record.Key
}

// SublistExpansion returns the Table-3 S(max) metric for the run: the
// worst ratio of a node's final partition to its perf-optimal share.
func (r *Result) SublistExpansion(v perf.Vector) float64 {
	e, err := sampling.WeightedExpansion(r.PartitionSizes, v)
	if err != nil {
		return 0
	}
	return e
}

// MeanPartition returns the mean final partition size over the nodes
// with the given perf value (the paper's "Mean" column reports the fast
// nodes' mean in the heterogeneous rows).
func (r *Result) MeanPartition(v perf.Vector, class int) float64 {
	var sum, cnt int64
	for i, s := range r.PartitionSizes {
		if v[i] == class {
			sum += s
			cnt++
		}
	}
	if cnt == 0 {
		return 0
	}
	return float64(sum) / float64(cnt)
}

// MaxPartition returns the largest final partition among nodes of the
// given perf class.
func (r *Result) MaxPartition(v perf.Vector, class int) int64 {
	var max int64
	for i, s := range r.PartitionSizes {
		if v[i] == class && s > max {
			max = s
		}
	}
	return max
}

// Sort runs Algorithm 1.  Every node must already hold its portion in
// the file inputName on its private FS; on success every node holds its
// sorted partition in outputName.
func Sort(c *cluster.Cluster, cfg Config, inputName, outputName string) (*Result, error) {
	p := c.P()
	cfg.applyDefaults(p)
	if err := cfg.Validate(p); err != nil {
		return nil, err
	}
	res := &Result{
		NodeClocks:     make([]float64, p),
		PartitionSizes: make([]int64, p),
		NodeIO:         make([]pdm.IOStats, p),
	}
	for s := range res.StepIO {
		res.StepIO[s] = make([]pdm.IOStats, p)
	}
	stepEnds := make([][5]float64, p) // per node, clock at each barrier
	pivotsOut := make([][]record.Key, p)

	err := c.Run(func(n *cluster.Node) error {
		w := worker{n: n, cfg: cfg, input: inputName, output: outputName}
		return w.run(&stepEnds[n.ID()], &res.StepIO, &pivotsOut[n.ID()])
	})
	if err != nil {
		return nil, err
	}

	for i := 0; i < p; i++ {
		res.NodeClocks[i] = c.Node(i).Clock()
		res.NodeIO[i] = c.Node(i).IOStats()
		sz, err := diskio.CountKeys(c.Node(i).FS(), outputName)
		if err != nil {
			return nil, fmt.Errorf("extsort: counting node %d output: %w", i, err)
		}
		res.PartitionSizes[i] = sz
	}
	res.Time = c.MaxClock()
	res.Pivots = pivotsOut[0]
	// Step durations: max end over nodes, minus max previous end.
	prev := 0.0
	for s := 0; s < 5; s++ {
		var end float64
		for i := 0; i < p; i++ {
			if stepEnds[i][s] > end {
				end = stepEnds[i][s]
			}
		}
		res.StepTimes[s] = end - prev
		prev = end
	}
	return res, nil
}

// worker carries one node's state through the five steps.
type worker struct {
	n      *cluster.Node
	cfg    Config
	input  string
	output string
}

func (w *worker) run(stepEnds *[5]float64, stepIO *[5][]pdm.IOStats, pivotsOut *[]record.Key) error {
	n := w.n
	id := n.ID()
	mark := func(step int, before pdm.IOStats) error {
		if err := n.Barrier(tagBarrierBase + 2*step); err != nil {
			return err
		}
		stepEnds[step] = n.Clock()
		stepIO[step][id] = n.IOStats().Sub(before)
		return nil
	}

	// Step 1: sequential external sort.
	before := n.IOStats()
	endPhase := n.TracePhase(StepNames[0])
	if err := w.sequentialSort(); err != nil {
		return fmt.Errorf("step 1 on node %d: %w", id, err)
	}
	endPhase()
	if err := mark(0, before); err != nil {
		return err
	}

	// Step 2: pivot selection.
	before = n.IOStats()
	endPhase = n.TracePhase(StepNames[1])
	li, err := diskio.CountKeys(n.FS(), w.sortedName())
	if err != nil {
		return fmt.Errorf("step 2 on node %d: %w", id, err)
	}
	var pivots []record.Key
	switch w.cfg.Strategy {
	case RegularSampling:
		pivots, err = w.selectPivots(li)
	case Overpartitioning:
		pivots, err = w.selectPivotsOver(li)
	case RandomPivots:
		pivots, err = w.selectPivotsRandom(li)
	case QuantileSketch:
		pivots, err = w.selectPivotsQuantile(li)
	default:
		err = fmt.Errorf("unknown strategy %d", w.cfg.Strategy)
	}
	if err != nil {
		return fmt.Errorf("step 2 on node %d: %w", id, err)
	}
	endPhase()
	*pivotsOut = pivots
	if err := mark(1, before); err != nil {
		return err
	}

	// Step 3: partitioning.
	before = n.IOStats()
	endPhase = n.TracePhase(StepNames[2])
	segSizes, err := w.partition(pivots)
	if err != nil {
		return fmt.Errorf("step 3 on node %d: %w", id, err)
	}
	endPhase()
	if err := mark(2, before); err != nil {
		return err
	}

	// Step 4: redistribution.
	before = n.IOStats()
	endPhase = n.TracePhase(StepNames[3])
	recvNames, err := w.redistribute(segSizes)
	if err != nil {
		return fmt.Errorf("step 4 on node %d: %w", id, err)
	}
	endPhase()
	if err := mark(3, before); err != nil {
		return err
	}

	// Step 5: final merge.
	before = n.IOStats()
	endPhase = n.TracePhase(StepNames[4])
	if err := w.finalMerge(recvNames); err != nil {
		return fmt.Errorf("step 5 on node %d: %w", id, err)
	}
	endPhase()
	return mark(4, before)
}

func (w *worker) sortedName() string { return "hetsort.sorted" }

func (w *worker) polyCfg(prefix string) polyphase.Config {
	return polyphase.Config{
		FS:           w.n.FS(),
		BlockKeys:    w.cfg.BlockKeys,
		MemoryKeys:   w.cfg.MemoryKeys,
		Tapes:        w.cfg.Tapes,
		RunFormation: w.cfg.RunFormation,
		Acct:         w.n.Acct(),
		TempPrefix:   prefix,
	}
}

func (w *worker) sequentialSort() error {
	_, err := polyphase.Sort(w.polyCfg("hetsort.s1."), w.input, w.sortedName())
	return err
}

// selectPivots implements step 2: sample the sorted file at regular
// positions (perf-proportional count), gather on node 0, select the
// p-1 weighted pivots, broadcast.
func (w *worker) selectPivots(li int64) ([]record.Key, error) {
	n, cfg := w.n, w.cfg
	p, id := n.P(), n.ID()
	if p == 1 {
		return nil, nil
	}
	var samples []record.Key
	if li > 0 {
		spacing, _, serr := sampling.HeteroSpacing(li, cfg.Perf[id], p)
		if serr != nil {
			// Portion too small for regular spacing: sample everything.
			samples, serr = diskio.ReadFileAll(n.FS(), w.sortedName(), cfg.BlockKeys, n.Acct())
			if serr != nil {
				return nil, serr
			}
		} else {
			f, err := n.FS().Open(w.sortedName())
			if err != nil {
				return nil, err
			}
			for _, idx := range sampling.RegularSampleIndices(li, spacing) {
				k, err := diskio.ReadKeyAt(f, idx, n.Acct())
				if err != nil {
					f.Close()
					return nil, err
				}
				samples = append(samples, k)
			}
			if err := f.Close(); err != nil {
				return nil, err
			}
		}
	}
	gathered, err := n.Gather(0, tagSamples, samples)
	if err != nil {
		return nil, err
	}
	var pivots []record.Key
	if id == 0 {
		var cands []record.Key
		for _, g := range gathered {
			cands = append(cands, g...)
		}
		n.ChargeCompute(int64(len(cands)) * 16) // in-core sort of a small sample
		pivots, err = sampling.SelectPivotsRegular(cands, cfg.Perf)
		if err != nil {
			return nil, err
		}
	}
	return n.Bcast(0, tagPivots, pivots)
}

// partition implements step 3: one streaming pass over the sorted file,
// splitting it into p contiguous segment files at the pivots.
func (w *worker) partition(pivots []record.Key) ([]int64, error) {
	n, cfg := w.n, w.cfg
	p := n.P()
	in, err := n.FS().Open(w.sortedName())
	if err != nil {
		return nil, err
	}
	defer in.Close()
	r := diskio.NewReader(in, cfg.BlockKeys, n.Acct())

	sizes := make([]int64, p)
	seg := 0
	outFile, err := n.FS().Create(w.segName(0))
	if err != nil {
		return nil, err
	}
	out := diskio.NewWriter(outFile, cfg.BlockKeys, n.Acct())
	closeSeg := func() error {
		if err := out.Close(); err != nil {
			return err
		}
		return outFile.Close()
	}
	buf := make([]record.Key, cfg.BlockKeys)
	for {
		cnt, rerr := r.ReadKeys(buf)
		for _, k := range buf[:cnt] {
			for seg < len(pivots) && k > pivots[seg] {
				if err := closeSeg(); err != nil {
					return nil, err
				}
				seg++
				outFile, err = n.FS().Create(w.segName(seg))
				if err != nil {
					return nil, err
				}
				out = diskio.NewWriter(outFile, cfg.BlockKeys, n.Acct())
			}
			if err := out.WriteKey(k); err != nil {
				return nil, err
			}
			sizes[seg]++
		}
		n.ChargeCompute(int64(cnt)) // one comparison per key against the current pivot
		if rerr == io.EOF || cnt == 0 {
			break
		}
		if rerr != nil {
			return nil, rerr
		}
	}
	if err := closeSeg(); err != nil {
		return nil, err
	}
	// Create the remaining (empty) segment files.
	for s := seg + 1; s < p; s++ {
		f, err := n.FS().Create(w.segName(s))
		if err != nil {
			return nil, err
		}
		if err := f.Close(); err != nil {
			return nil, err
		}
	}
	if !w.cfg.KeepIntermediates {
		if err := n.FS().Remove(w.sortedName()); err != nil {
			return nil, err
		}
	}
	return sizes, nil
}

func (w *worker) segName(j int) string  { return fmt.Sprintf("hetsort.seg%d", j) }
func (w *worker) recvName(i int) string { return fmt.Sprintf("hetsort.recv%d", i) }

// redistribute implements step 4: segment j is shipped to node j in
// MessageKeys-sized messages; each node writes what it receives from
// node i into a separate (sorted) file recv_i.  A zero-length sentinel
// message terminates each stream.
func (w *worker) redistribute(segSizes []int64) ([]string, error) {
	n, cfg := w.n, w.cfg
	p, id := n.P(), n.ID()

	// Send loop: stream every segment out in message-sized chunks.
	// Buffered links make the sends non-blocking, so a simple
	// send-all-then-receive-all order cannot deadlock.
	buf := make([]record.Key, cfg.MessageKeys)
	for j := 0; j < p; j++ {
		f, err := n.FS().Open(w.segName(j))
		if err != nil {
			return nil, err
		}
		r := diskio.NewReader(f, cfg.BlockKeys, n.Acct())
		for {
			cnt, rerr := r.ReadKeys(buf)
			if cnt > 0 {
				if err := n.Send(j, tagData, buf[:cnt]); err != nil {
					f.Close()
					return nil, err
				}
			}
			if rerr == io.EOF || cnt == 0 {
				break
			}
			if rerr != nil {
				f.Close()
				return nil, rerr
			}
		}
		if err := f.Close(); err != nil {
			return nil, err
		}
		// Zero-length message with the data tag terminates the stream.
		if err := n.Send(j, tagData, nil); err != nil {
			return nil, err
		}
		if !cfg.KeepIntermediates {
			if err := n.FS().Remove(w.segName(j)); err != nil {
				return nil, err
			}
		}
	}
	_ = segSizes
	_ = id

	// Receive loop: drain each peer in rank order, writing its stream
	// to a private file.  Keys from one peer arrive sorted (the
	// segment was a slice of a sorted file), so recv_i is sorted.
	names := make([]string, p)
	for i := 0; i < p; i++ {
		name := w.recvName(i)
		names[i] = name
		f, err := n.FS().Create(name)
		if err != nil {
			return nil, err
		}
		wr := diskio.NewWriter(f, cfg.BlockKeys, n.Acct())
		for {
			keys, err := n.Recv(i, tagData)
			if err != nil {
				f.Close()
				return nil, err
			}
			if len(keys) == 0 {
				break
			}
			if err := wr.WriteKeys(keys); err != nil {
				f.Close()
				return nil, err
			}
		}
		if err := wr.Close(); err != nil {
			f.Close()
			return nil, err
		}
		if err := f.Close(); err != nil {
			return nil, err
		}
	}
	return names, nil
}

// finalMerge implements step 5: external merge of the p received files.
func (w *worker) finalMerge(recvNames []string) error {
	if err := polyphase.MergeFiles(w.polyCfg("hetsort.s5."), recvNames, w.output); err != nil {
		return err
	}
	if !w.cfg.KeepIntermediates {
		for _, name := range recvNames {
			if err := w.n.FS().Remove(name); err != nil {
				return err
			}
		}
	}
	return nil
}

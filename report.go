package hetsort

import (
	"fmt"
	"strings"

	"hetsort/internal/extsort"
	"hetsort/internal/perf"
	"hetsort/internal/sampling"
	"hetsort/internal/trace"
)

// Report describes one sort run: virtual time, per-step breakdown,
// final load balance, and I/O counts — the quantities the paper's
// evaluation tables report.
type Report struct {
	// Time is the virtual execution time in seconds (the makespan of
	// the simulated cluster).
	Time float64
	// StepTimes breaks Time down over the five steps of Algorithm 1,
	// in order: sequential sort, pivot selection, partitioning,
	// redistribution, final merge.
	StepTimes [5]float64
	// StepNames labels StepTimes.
	StepNames [5]string
	// PartitionSizes is the final number of keys on each node.
	PartitionSizes []int64
	// SublistExpansion is the paper's S(max) load-balance metric: the
	// worst ratio of a node's final partition to its optimal
	// perf-proportional share (1.0 = perfect).
	SublistExpansion float64
	// ReadBlocks and WriteBlocks total the PDM block transfers over
	// all nodes.
	ReadBlocks, WriteBlocks int64
	// NodeClocks is each node's final virtual clock.
	NodeClocks []float64
	// Perf echoes the vector the run used.
	Perf []int
	// Timeline and Gantt hold the rendered virtual-time trace when
	// Config.Trace was set.
	Timeline string
	Gantt    string
}

// attachTrace renders tl into the report (no-op for nil).
func (r *Report) attachTrace(tl *trace.Log) {
	if tl == nil {
		return
	}
	r.Timeline = tl.Timeline()
	r.Gantt = tl.Gantt(60)
}

func newReport(res *extsort.Result, v perf.Vector) *Report {
	r := &Report{
		Time:           res.Time,
		StepTimes:      res.StepTimes,
		StepNames:      extsort.StepNames,
		PartitionSizes: res.PartitionSizes,
		NodeClocks:     res.NodeClocks,
		Perf:           append([]int(nil), v...),
	}
	if e, err := sampling.WeightedExpansion(res.PartitionSizes, v); err == nil {
		r.SublistExpansion = e
	}
	for _, io := range res.NodeIO {
		r.ReadBlocks += io.Reads
		r.WriteBlocks += io.Writes
	}
	return r
}

// String renders a human-readable summary.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "hetsort: %.3f virtual s, perf=%v, S(max)=%.4f\n",
		r.Time, r.Perf, r.SublistExpansion)
	for i, name := range r.StepNames {
		fmt.Fprintf(&b, "  %-20s %10.3fs\n", name, r.StepTimes[i])
	}
	fmt.Fprintf(&b, "  partitions: %v\n", r.PartitionSizes)
	fmt.Fprintf(&b, "  block I/O: %d reads, %d writes\n", r.ReadBlocks, r.WriteBlocks)
	return b.String()
}

package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"hetsort/internal/metrics"
	"hetsort/internal/progress"
	"hetsort/internal/record"
	"hetsort/internal/storage"
)

// apiError is the machine-readable error object every non-2xx response
// carries (cmd/hetsort's -json flag emits the same shape for parity).
type apiError struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, apiError{Error: err.Error()})
}

// Handler returns the hetsortd HTTP API:
//
//	POST /jobs               submit a JobSpec, returns {"id": ...}
//	GET  /jobs               list all job statuses
//	GET  /jobs/{id}          one job's status (includes the Merkle root)
//	POST /jobs/{id}/cancel   cancel a queued or running job
//	GET  /jobs/{id}/result   the sorted output, concatenated, as bytes
//	GET  /jobs/{id}/trace    the job's Chrome trace_event JSON (Perfetto)
//	GET  /jobs/{id}/progress live per-node progress snapshot (JSON); with
//	                         Accept: text/event-stream (or ?stream=1), an
//	                         SSE stream of snapshots until the job ends
//	GET  /metrics            Prometheus text exposition (0.0.4)
//	PUT  /objects/{name...}  upload an input object (names under inputs/)
//	GET  /objects/{name...}  download any backend object
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", s.handleSubmit)
	mux.HandleFunc("GET /jobs", s.handleList)
	mux.HandleFunc("GET /jobs/{id}", s.handleStatus)
	mux.HandleFunc("POST /jobs/{id}/cancel", s.handleCancel)
	mux.HandleFunc("GET /jobs/{id}/result", s.handleResult)
	mux.HandleFunc("GET /jobs/{id}/trace", s.handleTrace)
	mux.HandleFunc("GET /jobs/{id}/progress", s.handleProgress)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("PUT /objects/{name...}", s.handlePutObject)
	mux.HandleFunc("GET /objects/{name...}", s.handleGetObject)
	return mux
}

func (s *Service) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decoding spec: %w", err))
		return
	}
	id, err := s.Submit(spec)
	switch {
	case errors.Is(err, ErrQueueFull):
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, err)
	case errors.Is(err, ErrBudget):
		writeError(w, http.StatusUnprocessableEntity, err)
	case errors.Is(err, ErrClosed):
		writeError(w, http.StatusServiceUnavailable, err)
	case err != nil:
		writeError(w, http.StatusBadRequest, err)
	default:
		writeJSON(w, http.StatusAccepted, map[string]string{"id": id})
	}
}

func (s *Service) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.List())
}

func (s *Service) handleStatus(w http.ResponseWriter, r *http.Request) {
	st, err := s.Status(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Service) handleCancel(w http.ResponseWriter, r *http.Request) {
	if err := s.Cancel(r.PathValue("id")); err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "canceling"})
}

func (s *Service) handleResult(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	st, err := s.Status(id)
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	if st.State != StateDone {
		writeError(w, http.StatusConflict, fmt.Errorf("job %s is %s, not done", id, st.State))
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", fmt.Sprint(st.Keys*record.KeySize))
	for i := range st.Partitions {
		body, err := s.store.Get(fmt.Sprintf("jobs/%s/node%d/output", id, i))
		if err != nil {
			// Headers are gone; the short body tells the client.
			return
		}
		if _, err := w.Write(body); err != nil {
			return
		}
	}
}

func (s *Service) handleTrace(w http.ResponseWriter, r *http.Request) {
	body, err := s.store.Get(traceName(r.PathValue("id")))
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(body)
}

// progressResponse is the GET /jobs/{id}/progress body (and each SSE
// data payload).  Snapshot is null until the job's run has started.
type progressResponse struct {
	ID       string             `json:"id"`
	State    string             `json:"state"`
	Snapshot *progress.Snapshot `json:"snapshot,omitempty"`
}

func (j *job) progressResponse() progressResponse {
	resp := progressResponse{ID: j.id, State: j.State()}
	if tr := j.tracker(); tr != nil {
		resp.Snapshot = tr.Snapshot()
	}
	return resp
}

// terminal reports whether a job state can no longer change.
func terminal(state string) bool {
	return state == StateDone || state == StateFailed || state == StateCanceled
}

func (s *Service) handleProgress(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobByID(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("service: unknown job %q", r.PathValue("id")))
		return
	}
	stream := r.URL.Query().Get("stream") == "1" ||
		strings.Contains(r.Header.Get("Accept"), "text/event-stream")
	if !stream {
		writeJSON(w, http.StatusOK, j.progressResponse())
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, errors.New("service: response writer cannot stream"))
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	emit := func(event string, resp progressResponse) bool {
		body, err := json.Marshal(resp)
		if err != nil {
			return false
		}
		if event != "" {
			fmt.Fprintf(w, "event: %s\n", event)
		}
		if _, err := fmt.Fprintf(w, "data: %s\n\n", body); err != nil {
			return false
		}
		fl.Flush()
		return true
	}
	tick := time.NewTicker(100 * time.Millisecond)
	defer tick.Stop()
	for {
		resp := j.progressResponse()
		if terminal(resp.State) {
			emit("done", resp)
			return
		}
		if !emit("", resp) {
			return
		}
		select {
		case <-r.Context().Done():
			return
		case <-j.done:
			emit("done", j.progressResponse())
			return
		case <-tick.C:
		}
	}
}

func (s *Service) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	running, queued := s.running, len(s.queue)
	s.mu.Unlock()
	e := metrics.NewExposition("hetsortd")
	e.Gauge("jobs_running", "Jobs currently executing on the shared machine.", float64(running), nil)
	e.Gauge("jobs_queued", "Jobs admitted and waiting for a running slot.", float64(queued), nil)
	e.Gauge("tenants", "Tenants sharing the machine right now (the disk/network contention factor).", float64(s.tenants.Load()), nil)
	e.Counter("jobs_submitted_total", "Jobs accepted by the admission controller.", float64(s.nSubmitted.Load()), nil)
	e.Counter("jobs_done_total", "Jobs that completed successfully.", float64(s.nDone.Load()), nil)
	e.Counter("jobs_failed_total", "Jobs that ended in an error.", float64(s.nFailed.Load()), nil)
	e.Counter("jobs_canceled_total", "Jobs canceled by the client.", float64(s.nCanceled.Load()), nil)
	e.Counter("jobs_rejected_queue_total", "Submissions rejected because the queue was full (429).", float64(s.nRejectedQueue.Load()), nil)
	e.Counter("jobs_rejected_budget_total", "Submissions rejected by the memory/disk budget (422).", float64(s.nRejectedBudget.Load()), nil)
	e.Counter("jobs_recovered_total", "Jobs re-admitted from the backend after a daemon restart.", float64(s.nRecovered.Load()), nil)
	e.Counter("jobs_resumed_total", "Recovered jobs resumed from their checkpoint manifests.", float64(s.nResumed.Load()), nil)
	e.Counter("jobs_resume_fallback_total", "Recovered jobs re-run fresh because no manifest had committed.", float64(s.nResumedFallback.Load()), nil)
	e.Histogram("job_vsec", "Virtual makespan of completed jobs in seconds.", &s.jobVsec, nil)
	// Per-running-job series: bounded by MaxJobs, so the `job` label's
	// cardinality stays small.
	for _, j := range s.runningJobs() {
		tr := j.tracker()
		if tr == nil {
			continue
		}
		snap := tr.Snapshot()
		if snap == nil {
			continue
		}
		lbl := []metrics.Label{{Name: "job", Value: j.id}}
		var moved int64
		maxStep := 0
		for i := range snap.Nodes {
			moved += snap.Nodes[i].KeysMoved
			if snap.Nodes[i].Step > maxStep {
				maxStep = snap.Nodes[i].Step
			}
		}
		e.Gauge("job_clock_vsec", "Running job's max node virtual clock.", snap.Time, lbl)
		e.Gauge("job_keys_moved", "Running job's keys moved through disk so far.", float64(moved), lbl)
		e.Gauge("job_eta_vsec", "Running job's projected remaining virtual seconds.", snap.ETA, lbl)
		e.Gauge("job_step", "Running job's furthest current Algorithm-1 step across nodes.", float64(maxStep), lbl)
	}
	w.Header().Set("Content-Type", metrics.ExpositionContentType)
	e.WriteTo(w)
}

func (s *Service) handlePutObject(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	// Uploads are confined to inputs/ so a client cannot clobber job
	// artifacts (the Merkle anchor would catch it, but why allow it).
	if !strings.HasPrefix(name, "inputs/") {
		writeError(w, http.StatusForbidden, fmt.Errorf("uploads must be under inputs/, got %q", name))
		return
	}
	body, err := io.ReadAll(r.Body)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if err := s.store.Put(name, body); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusCreated, map[string]any{"name": name, "bytes": len(body)})
}

func (s *Service) handleGetObject(w http.ResponseWriter, r *http.Request) {
	body, err := s.store.Get(r.PathValue("name"))
	if err != nil {
		code := http.StatusInternalServerError
		if errors.Is(err, storage.ErrNotExist) {
			code = http.StatusNotFound
		}
		writeError(w, code, err)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Write(body)
}

package experiments

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"hetsort/internal/stats"
)

// The regression gate re-runs the deterministic experiments behind the
// committed BENCH_*.json baselines and diffs the new numbers against
// the committed ones.  Virtual-time metrics (vsec) get a percentage
// tolerance; protocol-integer metrics (block I/Os, peak open streams,
// link queue high-water marks, redistribution rounds, links created)
// regress on ANY increase, because the simulator is deterministic and
// an extra block I/O is a real algorithmic change, not noise.  Host
// wall-clock (wallms) and output hashes are not compared: the former
// depends on the machine running the gate, the latter is a correctness
// property already asserted in-experiment.

// RegressFinding is one compared metric.
type RegressFinding struct {
	// Key identifies the measurement, e.g. "pipeline/pipelined" or
	// "scaling/p=64/tree".
	Key      string  `json:"key"`
	Metric   string  `json:"metric"`
	Baseline float64 `json:"baseline"`
	Current  float64 `json:"current"`
	// DeltaPct is the relative change in percent ((cur-base)/base·100);
	// 0 when the baseline is 0.
	DeltaPct  float64 `json:"delta_pct"`
	Regressed bool    `json:"regressed"`
}

// RegressReport is the gate's full result (also the BENCH_regress.json
// artifact CI uploads).
type RegressReport struct {
	TolerancePct float64          `json:"tolerance_pct"`
	Findings     []RegressFinding `json:"findings"`
	// Skipped records baselines or rows the gate could not compare
	// (missing file, row beyond the -maxp cap) so a silently absent
	// baseline never reads as a pass.
	Skipped []string `json:"skipped,omitempty"`
}

// Regressions counts the findings that breached the gate.
func (r *RegressReport) Regressions() int {
	n := 0
	for _, f := range r.Findings {
		if f.Regressed {
			n++
		}
	}
	return n
}

// String renders the ranked findings table (regressions first).
func (r *RegressReport) String() string {
	t := &stats.Table{
		Title:   fmt.Sprintf("Perf-regression gate (vsec tolerance ±%.1f%%, integer metrics exact)", r.TolerancePct),
		Headers: []string{"Measurement", "Metric", "Baseline", "Current", "Delta", "Verdict"},
	}
	emit := func(wantRegressed bool) {
		for _, f := range r.Findings {
			if f.Regressed != wantRegressed {
				continue
			}
			verdict := "ok"
			if f.Regressed {
				verdict = "REGRESSED"
			}
			t.AddRow(f.Key, f.Metric,
				fmt.Sprintf("%.6g", f.Baseline), fmt.Sprintf("%.6g", f.Current),
				fmt.Sprintf("%+.2f%%", f.DeltaPct), verdict)
		}
	}
	emit(true)
	emit(false)
	out := t.String()
	for _, s := range r.Skipped {
		out += fmt.Sprintf("  skipped: %s\n", s)
	}
	return out
}

// compare appends a finding for one metric.  Tolerance applies
// only to vsec; integer protocol metrics regress on any increase.
func (r *RegressReport) compare(key, metric string, baseline, current float64) {
	f := RegressFinding{Key: key, Metric: metric, Baseline: baseline, Current: current}
	if baseline != 0 {
		f.DeltaPct = (current - baseline) / baseline * 100
	}
	switch metric {
	case "vsec":
		f.Regressed = baseline != 0 && f.DeltaPct > r.TolerancePct
	default:
		f.Regressed = current > baseline
	}
	r.Findings = append(r.Findings, f)
}

// benchPipelineFile mirrors benchtab's BENCH_pipeline.json shape.
type benchPipelineFile struct {
	Experiment string        `json:"experiment"`
	SizeShift  uint          `json:"size_shift"`
	Rows       []AblationRow `json:"rows"`
}

// benchPDMFile mirrors benchtab's BENCH_pdm.json shape.
type benchPDMFile struct {
	Experiment string   `json:"experiment"`
	SizeShift  uint     `json:"size_shift"`
	Rows       []PDMRow `json:"rows"`
}

// benchHistsortFile mirrors benchtab's BENCH_histsort.json shape.
type benchHistsortFile struct {
	Experiment string        `json:"experiment"`
	SizeShift  uint          `json:"size_shift"`
	Rows       []HistsortRow `json:"rows"`
}

// benchScalingFile mirrors benchtab's BENCH_scaling.json shape.
type benchScalingFile struct {
	Experiment string       `json:"experiment"`
	MaxP       int          `json:"max_p"`
	Rows       []ScalingRow `json:"rows"`
}

// RegressionGate loads the committed baselines from dir (pipeline, pdm,
// histsort and scaling), re-runs the experiments behind them at the
// baseline's own scale, and diffs.  A
// missing baseline file is recorded in Skipped, not an error; maxP
// caps how far the scaling re-run sweeps (baseline rows beyond the cap
// are skipped with a note).
func RegressionGate(o Options, dir string, tolerancePct float64, maxP int) (*RegressReport, error) {
	rep := &RegressReport{TolerancePct: tolerancePct}
	if err := rep.gatePipeline(o, filepath.Join(dir, "BENCH_pipeline.json")); err != nil {
		return nil, err
	}
	if err := rep.gatePDM(o, filepath.Join(dir, "BENCH_pdm.json")); err != nil {
		return nil, err
	}
	if err := rep.gateHistsort(o, filepath.Join(dir, "BENCH_histsort.json")); err != nil {
		return nil, err
	}
	if err := rep.gateScaling(o, filepath.Join(dir, "BENCH_scaling.json"), maxP); err != nil {
		return nil, err
	}
	return rep, nil
}

// gateHistsort re-runs the adversarial pivot ablation and diffs vsec
// (tolerance) plus the deterministic pivot-protocol metrics exactly:
// the simulator is seeded, so a larger expansion, an extra refinement
// round or an extra shipped sample is an algorithmic change, not noise.
// The in-experiment gates (byte-identical output across strategies,
// histogram no worse than regular sampling) re-fire on the re-run.
func (r *RegressReport) gateHistsort(o Options, path string) error {
	var base benchHistsortFile
	ok, err := loadBench(path, &base)
	if err != nil {
		return err
	}
	if !ok {
		r.Skipped = append(r.Skipped, fmt.Sprintf("%s: no baseline committed", path))
		return nil
	}
	o.SizeShift = base.SizeShift
	rows, err := HistsortAblation(o)
	if err != nil {
		return fmt.Errorf("regress: re-running histsort ablation: %w", err)
	}
	cur := make(map[string]HistsortRow, len(rows))
	rowKey := func(row HistsortRow) string {
		return fmt.Sprintf("p=%d/%s/%s", row.P, row.Generator, row.Strategy)
	}
	for _, row := range rows {
		cur[rowKey(row)] = row
	}
	for _, b := range base.Rows {
		key := "histsort/" + rowKey(b)
		c, found := cur[rowKey(b)]
		if !found {
			r.Skipped = append(r.Skipped, fmt.Sprintf("%s: point gone from the re-run", key))
			continue
		}
		r.compare(key, "vsec", b.VSec, c.VSec)
		r.compare(key, "expansion", b.Expansion, c.Expansion)
		r.compare(key, "sample_keys", float64(b.SampleKeys), float64(c.SampleKeys))
		r.compare(key, "rounds", float64(b.Rounds), float64(c.Rounds))
	}
	return nil
}

// gatePDM re-runs the A10 ablation at the baseline's committed scale
// and diffs vsec (tolerance) and block I/Os (exact — the simulator is
// deterministic, an extra block is an algorithmic change).  Output
// hashes are not compared across machines; byte-identity is asserted
// inside the experiment itself.
func (r *RegressReport) gatePDM(o Options, path string) error {
	var base benchPDMFile
	ok, err := loadBench(path, &base)
	if err != nil {
		return err
	}
	if !ok {
		r.Skipped = append(r.Skipped, fmt.Sprintf("%s: no baseline committed", path))
		return nil
	}
	o.SizeShift = base.SizeShift
	rows, err := PDMAblation(o)
	if err != nil {
		return fmt.Errorf("regress: re-running pdm ablation: %w", err)
	}
	cur := make(map[string]PDMRow, len(rows))
	for _, row := range rows {
		cur[row.Part+"/"+row.Variant] = row
	}
	for _, b := range base.Rows {
		key := "pdm/" + b.Part + "/" + b.Variant
		c, found := cur[b.Part+"/"+b.Variant]
		if !found {
			r.Skipped = append(r.Skipped, fmt.Sprintf("%s: variant gone from the re-run", key))
			continue
		}
		r.compare(key, "vsec", b.VSec, c.VSec)
		r.compare(key, "block_ios", float64(b.BlockIOs), float64(c.BlockIOs))
	}
	return nil
}

func (r *RegressReport) gatePipeline(o Options, path string) error {
	var base benchPipelineFile
	ok, err := loadBench(path, &base)
	if err != nil {
		return err
	}
	if !ok {
		r.Skipped = append(r.Skipped, fmt.Sprintf("%s: no baseline committed", path))
		return nil
	}
	// Re-run at the committed scale so the numbers are comparable.
	o.SizeShift = base.SizeShift
	rows, err := PipelineAblation(o)
	if err != nil {
		return fmt.Errorf("regress: re-running pipeline ablation: %w", err)
	}
	cur := make(map[string]float64, len(rows))
	for _, row := range rows {
		cur[row.Variant+"/"+row.Metric] = row.Value
	}
	for _, b := range base.Rows {
		if b.Metric == "wallms" { // host-dependent: never gated
			continue
		}
		c, found := cur[b.Variant+"/"+b.Metric]
		if !found {
			r.Skipped = append(r.Skipped, fmt.Sprintf("pipeline/%s: metric %s gone from the re-run", b.Variant, b.Metric))
			continue
		}
		r.compare("pipeline/"+b.Variant, b.Metric, b.Value, c)
	}
	return nil
}

func (r *RegressReport) gateScaling(o Options, path string, maxP int) error {
	var base benchScalingFile
	ok, err := loadBench(path, &base)
	if err != nil {
		return err
	}
	if !ok {
		r.Skipped = append(r.Skipped, fmt.Sprintf("%s: no baseline committed", path))
		return nil
	}
	capP := base.MaxP
	if maxP > 0 && maxP < capP {
		capP = maxP
	}
	rows, err := ScalingSweep(o, capP)
	if err != nil {
		return fmt.Errorf("regress: re-running scaling sweep: %w", err)
	}
	type pt struct {
		p    int
		topo string
	}
	cur := make(map[pt]ScalingRow, len(rows))
	for _, row := range rows {
		cur[pt{row.P, row.Topology}] = row
	}
	for _, b := range base.Rows {
		key := fmt.Sprintf("scaling/p=%d/%s", b.P, b.Topology)
		c, found := cur[pt{b.P, b.Topology}]
		if !found {
			if b.P > capP {
				r.Skipped = append(r.Skipped, fmt.Sprintf("%s: beyond the -maxp cap %d", key, capP))
			} else {
				r.Skipped = append(r.Skipped, fmt.Sprintf("%s: point gone from the re-run", key))
			}
			continue
		}
		r.compare(key, "vsec", b.VSec, c.VSec)
		r.compare(key, "peak_open_streams", float64(b.PeakOpenStreams), float64(c.PeakOpenStreams))
		r.compare(key, "max_link_queue_hwm", float64(b.MaxLinkQueueHWM), float64(c.MaxLinkQueueHWM))
		r.compare(key, "rounds", float64(b.Rounds), float64(c.Rounds))
		r.compare(key, "links_created", float64(b.LinksCreated), float64(c.LinksCreated))
	}
	return nil
}

// loadBench reads a baseline file; (false, nil) means it's absent.
func loadBench(path string, v any) (bool, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return false, nil
	}
	if err != nil {
		return false, err
	}
	if err := json.Unmarshal(data, v); err != nil {
		return false, fmt.Errorf("regress: parsing %s: %w", path, err)
	}
	return true, nil
}

// Package histsort implements the splitter refinement at the heart of
// Histogram Sort with Sampling (Harsh, Kale & Solomonik, SPAA 2019):
// instead of one-shot regular sampling, the root keeps a bracketing
// interval around every pivot's target global rank and iteratively
// proposes candidate splitters, narrowing each interval with the exact
// global histogram counts the cluster reports back, until every pivot's
// rank is provably within a tolerance of its heterogeneous perf-share
// target.
//
// Convergence is deterministic even on hostile inputs: a candidate is
// normally placed by rank interpolation (fast on smooth regions), but
// whenever an interval fails to halve between two consecutive proposals
// the refiner falls back to midpoint subdivision, so every interval's
// key-space width at least halves every two rounds and the refinement
// finishes in at most 2·log2(keyspace) ≈ 64 rounds regardless of the
// distribution.  An interval that collapses to zero key-space width
// (all remaining mass is one duplicated key) resolves to its nearer
// endpoint, which bounds that pivot's rank error by the key's
// multiplicity — the best any splitter-based partitioner can do.
package histsort

import (
	"fmt"

	"hetsort/internal/record"
)

// maxKey is the top of the 32-bit key space.
const maxKey = int64(^record.Key(0))

// DefaultMaxRounds caps the refinement loop.  Midpoint fallback halves
// every interval's width at least every second round, so 2·32 rounds
// always suffice for the 32-bit key space; the few extra rounds are
// slack for the interpolation steps that precede a fallback.
const DefaultMaxRounds = 72

// Config parameterises a refinement.
type Config struct {
	// Targets are the wanted global ranks of the p-1 pivots, in
	// non-decreasing order: Targets[j] is the number of keys that
	// should land at or below pivot j (the cumulative perf shares).
	Targets []int64
	// Total is the global key count.
	Total int64
	// Tolerance is the acceptable |rank - target| slack in keys
	// (minimum 1: ranks are integers).
	Tolerance int64
	// MaxRounds caps the loop (0 = DefaultMaxRounds).
	MaxRounds int
}

// bracket tracks one pivot's search state: the invariant is
// rank(lo) = loRank ≤ target ≤ hiRank = rank(hi), with lo = -1 playing
// -∞ (rank 0).  Candidates are drawn from the open key interval
// (lo, hi).
type bracket struct {
	lo, hi         int64 // key-space endpoints; lo = -1 means -∞
	loRank, hiRank int64
	target         int64
	prevWidth      int64 // width at the previous proposal (0 = none yet)
	proposal       int64 // candidate in flight (-1 = none)
	resolved       bool
	pivot          record.Key
}

// Refiner runs the root side of the histogram protocol: call
// Candidates, count the returned splitters over the global data, and
// feed the aggregated ranks to Observe; repeat until Done.
type Refiner struct {
	brackets []bracket
	tol      int64
	maxR     int
	rounds   int
}

// NewRefiner validates cfg and builds the initial brackets.  With no
// targets (p = 1) or an empty input the refinement is immediately done
// and the pivots are trivial.
func NewRefiner(cfg Config) (*Refiner, error) {
	if cfg.Total < 0 {
		return nil, fmt.Errorf("histsort: negative total %d", cfg.Total)
	}
	tol := cfg.Tolerance
	if tol < 1 {
		tol = 1
	}
	maxR := cfg.MaxRounds
	if maxR <= 0 {
		maxR = DefaultMaxRounds
	}
	r := &Refiner{tol: tol, maxR: maxR}
	prev := int64(0)
	for j, t := range cfg.Targets {
		if t < 0 || t > cfg.Total {
			return nil, fmt.Errorf("histsort: target[%d]=%d outside [0,%d]", j, t, cfg.Total)
		}
		if t < prev {
			return nil, fmt.Errorf("histsort: target[%d]=%d decreases below %d", j, t, prev)
		}
		prev = t
		b := bracket{lo: -1, hi: maxKey, loRank: 0, hiRank: cfg.Total,
			target: t, proposal: -1}
		if cfg.Total == 0 {
			b.resolved = true // no keys: every pivot is trivially exact
		}
		r.brackets = append(r.brackets, b)
	}
	return r, nil
}

// Done reports whether every pivot is resolved.
func (r *Refiner) Done() bool {
	for i := range r.brackets {
		if !r.brackets[i].resolved {
			return false
		}
	}
	return true
}

// Rounds returns the number of completed Candidates/Observe rounds.
func (r *Refiner) Rounds() int { return r.rounds }

// Candidates returns the next round's candidate splitters, sorted and
// deduplicated (several brackets may propose the same key), or nil when
// the refinement is done.
func (r *Refiner) Candidates() []record.Key {
	if r.Done() {
		return nil
	}
	if r.rounds >= r.maxR {
		// Safety valve: accept the nearer endpoint everywhere.  The
		// midpoint fallback makes this unreachable in practice.
		for i := range r.brackets {
			if !r.brackets[i].resolved {
				r.brackets[i].collapse()
			}
		}
		return nil
	}
	var cands []record.Key
	seen := make(map[record.Key]bool)
	for i := range r.brackets {
		b := &r.brackets[i]
		if b.resolved {
			continue
		}
		if b.hi-b.lo <= 1 {
			// Zero key-space width left: everything between the
			// endpoints is one duplicated key value.
			b.collapse()
			continue
		}
		c := b.propose()
		b.proposal = c
		if k := record.Key(c); !seen[k] {
			seen[k] = true
			cands = append(cands, k)
		}
	}
	if len(cands) == 0 {
		return nil // every unresolved bracket collapsed this round
	}
	sortKeys(cands)
	return cands
}

// propose picks the bracket's next candidate in (lo, hi): rank
// interpolation when the interval has been halving, the exact midpoint
// when it stalled (duplicate plateaus defeat interpolation).
func (b *bracket) propose() int64 {
	width := b.hi - b.lo
	defer func() { b.prevWidth = width }()
	if b.prevWidth > 0 && 2*width > b.prevWidth {
		return b.lo + width/2 // stalled: deterministic midpoint subdivision
	}
	span := b.hiRank - b.loRank
	if span <= 0 {
		return b.lo + width/2
	}
	c := b.lo + 1 + (width-1)*(b.target-b.loRank)/span
	if c <= b.lo {
		c = b.lo + 1
	}
	if c >= b.hi {
		c = b.hi - 1
	}
	return c
}

// collapse resolves a bracket whose key-space interval is exhausted (or
// whose round budget ran out) to the endpoint with the nearer rank.
// The lo = -1 endpoint cannot be expressed as a key; key 0 routes at
// most rank(0) extra keys below, which the duplicate bound absorbs.
func (b *bracket) collapse() {
	b.resolved = true
	if b.lo >= 0 && b.target-b.loRank <= b.hiRank-b.target {
		b.pivot = record.Key(b.lo)
		return
	}
	if b.lo < 0 && b.target-b.loRank <= b.hiRank-b.target {
		b.pivot = 0
		return
	}
	b.pivot = record.Key(b.hi)
}

// Observe completes a round: ranks[j] must be the global rank of
// cands[j] — the number of keys ≤ cands[j] over the whole input — for
// the exact slice the preceding Candidates call returned.
func (r *Refiner) Observe(cands []record.Key, ranks []int64) error {
	if len(cands) != len(ranks) {
		return fmt.Errorf("histsort: %d ranks for %d candidates", len(ranks), len(cands))
	}
	rank := make(map[record.Key]int64, len(cands))
	for j, c := range cands {
		rank[c] = ranks[j]
	}
	r.rounds++
	for i := range r.brackets {
		b := &r.brackets[i]
		if b.resolved || b.proposal < 0 {
			continue
		}
		c := b.proposal
		b.proposal = -1
		rk, ok := rank[record.Key(c)]
		if !ok {
			return fmt.Errorf("histsort: no rank reported for candidate %d", c)
		}
		switch {
		case abs64(rk-b.target) <= r.tol:
			b.resolved = true
			b.pivot = record.Key(c)
		case rk < b.target:
			b.lo, b.loRank = c, rk
		default:
			b.hi, b.hiRank = c, rk
		}
	}
	return nil
}

// Pivots returns the refined splitters, forced non-decreasing: within
// the tolerance two adjacent brackets can resolve in crossed order, and
// the partitioner requires monotone pivots.  Valid only once Done.
func (r *Refiner) Pivots() []record.Key {
	out := make([]record.Key, len(r.brackets))
	var run record.Key
	for i := range r.brackets {
		if p := r.brackets[i].pivot; p > run {
			run = p
		}
		out[i] = run
	}
	return out
}

// EncodeCounts packs int64 counters into key pairs (hi word, lo word)
// so count vectors ride the cluster's record.Key collectives.  The
// combining reduction decodes, adds and re-encodes — exact 64-bit
// arithmetic, associative and commutative, so tree and flat
// aggregations agree byte for byte.
func EncodeCounts(vals []int64) []record.Key {
	out := make([]record.Key, 0, 2*len(vals))
	for _, v := range vals {
		out = append(out, record.Key(uint64(v)>>32), record.Key(uint64(v)))
	}
	return out
}

// DecodeCounts unpacks EncodeCounts' pairs.
func DecodeCounts(enc []record.Key) []int64 {
	out := make([]int64, 0, len(enc)/2)
	for i := 0; i+1 < len(enc); i += 2 {
		out = append(out, int64(uint64(enc[i])<<32|uint64(enc[i+1])))
	}
	return out
}

// AddCounts element-wise adds two encoded count vectors (the collective
// combiner).
func AddCounts(acc, child []record.Key) []record.Key {
	a, b := DecodeCounts(acc), DecodeCounts(child)
	if len(b) > len(a) {
		a, b = b, a
	}
	for i := range b {
		a[i] += b[i]
	}
	return EncodeCounts(a)
}

func abs64(v int64) int64 {
	if v < 0 {
		return -v
	}
	return v
}

// sortKeys is an insertion sort: candidate sets are O(p) and nearly
// sorted (brackets are ordered by target).
func sortKeys(keys []record.Key) {
	for i := 1; i < len(keys); i++ {
		k := keys[i]
		j := i - 1
		for j >= 0 && keys[j] > k {
			keys[j+1] = keys[j]
			j--
		}
		keys[j+1] = k
	}
}

// Command calibrate runs the paper's perf-vector calibration protocol:
// every node of the (simulated) cluster externally sorts the same
// number of keys, and the ratio of the slowest time to each node's time
// becomes its perf entry.
//
// Usage:
//
//	calibrate -loads 4,4,1,1 -keys 262144
//
// -loads describes the machine being calibrated (the slowdown factor of
// each node); the output is the perf vector a user would then pass to
// hetsort.  With the paper's loaded cluster (-loads 4,4,1,1) the result
// is {1,1,4,4}.
package main

import (
	"flag"
	"fmt"
	"os"

	"hetsort"
)

func main() {
	var (
		loadsStr  = flag.String("loads", "4,4,1,1", "comma-separated node slowdown factors (>= 1)")
		keys      = flag.Int64("keys", 262144, "keys each node sorts during calibration (paper: N/P = 2^22)")
		block     = flag.Int("block", 2048, "disk block size in keys")
		memory    = flag.Int("memory", 1<<16, "per-node memory in keys")
		tapes     = flag.Int("tapes", 15, "polyphase file count")
		showGantt = flag.Bool("trace", false, "print a virtual-time Gantt chart of the calibration sorts")
	)
	flag.Parse()

	loads, err := hetsort.ParseLoads(*loadsStr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "calibrate:", err)
		os.Exit(1)
	}
	cfg := hetsort.Config{
		Nodes:      len(loads),
		Loads:      loads,
		BlockKeys:  *block,
		MemoryKeys: *memory,
		Tapes:      *tapes,
		Trace:      *showGantt,
	}
	cal, err := hetsort.CalibrateReport(cfg, *keys)
	if err != nil {
		fmt.Fprintln(os.Stderr, "calibrate:", err)
		os.Exit(1)
	}
	fmt.Printf("per-node sequential external sort of %d keys:\n", *keys)
	for i, t := range cal.Times {
		fmt.Printf("  node %d (load %.1fx): %10.3f virtual s\n", i, loads[i], t)
	}
	fmt.Printf("derived perf vector: %v\n", cal.Perf)
	if *showGantt {
		fmt.Print(cal.Gantt)
	}
}

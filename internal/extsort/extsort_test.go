package extsort

import (
	"strings"
	"testing"
	"testing/quick"

	"hetsort/internal/cluster"
	"hetsort/internal/diskio"
	"hetsort/internal/pdm"
	"hetsort/internal/perf"
	"hetsort/internal/polyphase"
	"hetsort/internal/record"
)

func testConfig(v perf.Vector) Config {
	return Config{
		Perf:        v,
		BlockKeys:   64,
		MemoryKeys:  1024,
		Tapes:       6,
		MessageKeys: 256,
	}
}

func newCluster(t *testing.T, v perf.Vector) *cluster.Cluster {
	t.Helper()
	c, err := cluster.New(cluster.Config{Slowdowns: v.Slowdowns(), BlockKeys: 64})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func runSort(t *testing.T, c *cluster.Cluster, v perf.Vector, cfg Config,
	dist record.Distribution, n int64, seed int64) *Result {
	t.Helper()
	sum, err := DistributeInput(c, v, dist, n, seed, cfg.BlockKeys, "input")
	if err != nil {
		t.Fatal(err)
	}
	res, err := Sort(c, cfg, "input", "output")
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyOutput(c, "output", cfg.BlockKeys, sum); err != nil {
		t.Fatal(err)
	}
	return res
}

func TestHomogeneousSort(t *testing.T) {
	v := perf.Homogeneous(4)
	c := newCluster(t, v)
	res := runSort(t, c, v, testConfig(v), record.Uniform, 40000, 1)
	if res.Time <= 0 {
		t.Fatal("no virtual time elapsed")
	}
	var total int64
	for _, s := range res.PartitionSizes {
		total += s
	}
	if total != 40000 {
		t.Fatalf("partitions sum to %d", total)
	}
	if exp := res.SublistExpansion(v); exp > 1.25 {
		t.Fatalf("expansion %v too high for uniform input", exp)
	}
}

func TestHeterogeneousSort(t *testing.T) {
	v := perf.Vector{1, 1, 4, 4}
	c := newCluster(t, v)
	n := v.NearestValidSize(40000)
	res := runSort(t, c, v, testConfig(v), record.Uniform, n, 2)
	if exp := res.SublistExpansion(v); exp > 1.3 {
		t.Fatalf("weighted expansion %v too high", exp)
	}
	// Fast nodes must hold roughly 4x the slow nodes' data.
	slow := float64(res.PartitionSizes[0]+res.PartitionSizes[1]) / 2
	fast := float64(res.PartitionSizes[2]+res.PartitionSizes[3]) / 2
	if ratio := fast / slow; ratio < 3 || ratio > 5 {
		t.Fatalf("fast/slow partition ratio %v far from 4 (%v)", ratio, res.PartitionSizes)
	}
}

func TestAllDistributions(t *testing.T) {
	v := perf.Vector{1, 2}
	for _, d := range record.Distributions() {
		t.Run(d.String(), func(t *testing.T) {
			c := newCluster(t, v)
			runSort(t, c, v, testConfig(v), d, v.NearestValidSize(12000), 5)
		})
	}
}

func TestSingleNodeDegeneratesToSequential(t *testing.T) {
	v := perf.Homogeneous(1)
	c := newCluster(t, v)
	res := runSort(t, c, v, testConfig(v), record.Uniform, 10000, 3)
	if res.PartitionSizes[0] != 10000 {
		t.Fatalf("single node holds %d", res.PartitionSizes[0])
	}
}

func TestSmallInputs(t *testing.T) {
	v := perf.Homogeneous(2)
	cfg := testConfig(v)
	// Must be large enough per node for step-2 sampling (l_i >= perf*p
	// spacing), but exercise the small end.
	for _, n := range []int64{512, 1000, 2048} {
		c := newCluster(t, v)
		runSort(t, c, v, cfg, record.Uniform, n, 7)
	}
}

func TestStepTimesSumToTotal(t *testing.T) {
	v := perf.Homogeneous(2)
	c := newCluster(t, v)
	res := runSort(t, c, v, testConfig(v), record.Uniform, 20000, 9)
	var sum float64
	for _, st := range res.StepTimes {
		if st < 0 {
			t.Fatalf("negative step time: %v", res.StepTimes)
		}
		sum += st
	}
	diff := res.Time - sum
	if diff < 0 {
		diff = -diff
	}
	if diff > 1e-9+1e-6*res.Time {
		t.Fatalf("step times %v do not sum to total %v", res.StepTimes, res.Time)
	}
	if res.StepTimes[0] < res.StepTimes[1] {
		t.Fatalf("step 1 (external sort, %v) should dominate step 2 (sampling, %v)",
			res.StepTimes[0], res.StepTimes[1])
	}
}

func TestIOBudgetsPerStep(t *testing.T) {
	v := perf.Homogeneous(2)
	cfg := testConfig(v)
	c := newCluster(t, v)
	const n = 32768
	res := runSort(t, c, v, cfg, record.Uniform, n, 11)
	params := pdm.Params{N: n, M: int64(cfg.MemoryKeys), B: int64(cfg.BlockKeys), D: 1, P: 2}
	li := int64(n / 2)
	for i := 0; i < 2; i++ {
		// Step 1 within 2x of the paper's polyphase budget.
		if got, budget := res.StepIO[0][i].Total(), params.SequentialSortIOs(li); got > 2*budget {
			t.Errorf("node %d step 1: %d I/Os > 2x budget %d", i, got, budget)
		}
		// Step 2 reads only the samples: p*perf-1 = 1 key... tiny.
		if got := res.StepIO[1][i].Total(); got > 16 {
			t.Errorf("node %d step 2: %d I/Os for sampling", i, got)
		}
		// Step 3: read everything once, write everything once.
		if got, budget := res.StepIO[2][i].Total(), params.PartitionIOs(li); got > budget+4 {
			t.Errorf("node %d step 3: %d I/Os > budget %d", i, got, budget)
		}
		// Step 4: read sender side + write receiver side ~ 2*l/B.
		if got, budget := res.StepIO[3][i].Total(), params.RedistributionIOs(2*li); got > budget+8 {
			t.Errorf("node %d step 4: %d I/Os > budget %d", i, got, budget)
		}
		// Step 5: merge of p sorted files: one pass when p <= fan-in.
		if got, budget := res.StepIO[4][i].Total(), params.PartitionIOs(2*li); got > budget+8 {
			t.Errorf("node %d step 5: %d I/Os > budget %d", i, got, budget)
		}
	}
}

func TestMessageSizeAffectsTimeNotResult(t *testing.T) {
	v := perf.Homogeneous(4)
	small, big := testConfig(v), testConfig(v)
	small.MessageKeys = 64 // tiny packets
	big.MessageKeys = 4096

	cSmall := newCluster(t, v)
	resSmall := runSort(t, cSmall, v, small, record.Uniform, 40000, 13)
	cBig := newCluster(t, v)
	resBig := runSort(t, cBig, v, big, record.Uniform, 40000, 13)

	for i := range resSmall.PartitionSizes {
		if resSmall.PartitionSizes[i] != resBig.PartitionSizes[i] {
			t.Fatal("message size changed the partitioning")
		}
	}
	if resSmall.StepTimes[3] <= resBig.StepTimes[3] {
		t.Fatalf("small messages should slow redistribution: %v vs %v",
			resSmall.StepTimes[3], resBig.StepTimes[3])
	}
}

func TestHeterogeneousConfigBeatsHomogeneousOnLoadedCluster(t *testing.T) {
	// The paper's central claim (Table 3): on a cluster with two 4x
	// loaded nodes, perf={1,1,4,4} halves the execution time compared
	// to perf={1,1,1,1}.
	hetero := perf.Vector{1, 1, 4, 4}
	slowdowns := hetero.Slowdowns()
	const n = 41000 // close to hetero.NearestValidSize

	runWith := func(v perf.Vector) float64 {
		c, err := cluster.New(cluster.Config{Slowdowns: slowdowns, BlockKeys: 64})
		if err != nil {
			t.Fatal(err)
		}
		cfg := testConfig(v)
		size := v.NearestValidSize(n)
		sum, err := DistributeInput(c, v, record.Uniform, size, 17, cfg.BlockKeys, "input")
		if err != nil {
			t.Fatal(err)
		}
		res, err := Sort(c, cfg, "input", "output")
		if err != nil {
			t.Fatal(err)
		}
		if err := VerifyOutput(c, "output", cfg.BlockKeys, sum); err != nil {
			t.Fatal(err)
		}
		return res.Time
	}
	tHomo := runWith(perf.Homogeneous(4))
	tHet := runWith(hetero)
	if tHet >= tHomo {
		t.Fatalf("heterogeneous config %.3fs should beat homogeneous %.3fs", tHet, tHomo)
	}
	if ratio := tHomo / tHet; ratio < 1.4 {
		t.Fatalf("improvement ratio %.2f below the paper's ~2x shape", ratio)
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	v := perf.Vector{1, 3}
	run := func() *Result {
		c := newCluster(t, v)
		return runSort(t, c, v, testConfig(v), record.Uniform, v.NearestValidSize(16000), 19)
	}
	a, b := run(), run()
	if a.Time != b.Time {
		t.Fatalf("virtual time not deterministic: %v vs %v", a.Time, b.Time)
	}
	for i := range a.PartitionSizes {
		if a.PartitionSizes[i] != b.PartitionSizes[i] {
			t.Fatal("partitions not deterministic")
		}
	}
}

func TestMyrinetBarelyChangesTime(t *testing.T) {
	// Paper: "executions with Myrinet do not improve performance"
	// because the algorithm moves each key at most once.
	v := perf.Vector{1, 1, 4, 4}
	n := v.NearestValidSize(40000)
	run := func(net cluster.NetModel) float64 {
		c, err := cluster.New(cluster.Config{Slowdowns: v.Slowdowns(), Net: net, BlockKeys: 64})
		if err != nil {
			t.Fatal(err)
		}
		cfg := testConfig(v)
		sum, err := DistributeInput(c, v, record.Uniform, n, 23, cfg.BlockKeys, "input")
		if err != nil {
			t.Fatal(err)
		}
		res, err := Sort(c, cfg, "input", "output")
		if err != nil {
			t.Fatal(err)
		}
		if err := VerifyOutput(c, "output", cfg.BlockKeys, sum); err != nil {
			t.Fatal(err)
		}
		return res.Time
	}
	fe := run(cluster.FastEthernet())
	my := run(cluster.Myrinet())
	if my > fe {
		t.Fatalf("Myrinet (%v) slower than Fast Ethernet (%v)?", my, fe)
	}
	if (fe-my)/fe > 0.25 {
		t.Fatalf("network change moved time by %v%% — algorithm should be communication-light",
			100*(fe-my)/fe)
	}
}

func TestConfigValidation(t *testing.T) {
	v := perf.Homogeneous(2)
	c := newCluster(t, v)
	bad := []Config{
		{Perf: perf.Vector{1}, BlockKeys: 64, MemoryKeys: 1024, Tapes: 4, MessageKeys: 128},
		{Perf: perf.Vector{1, 0}, BlockKeys: 64, MemoryKeys: 1024, Tapes: 4, MessageKeys: 128},
		{Perf: v, BlockKeys: 64, MemoryKeys: 1024, Tapes: 2, MessageKeys: 128},
		{Perf: v, BlockKeys: 64, MemoryKeys: 64, Tapes: 4, MessageKeys: 128},
	}
	for i, cfg := range bad {
		if _, err := Sort(c, cfg, "in", "out"); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestMissingInputSurfacesError(t *testing.T) {
	v := perf.Homogeneous(2)
	c := newCluster(t, v)
	_, err := Sort(c, testConfig(v), "nope", "out")
	if err == nil || !strings.Contains(err.Error(), "step 1") {
		t.Fatalf("want step-1 error, got %v", err)
	}
}

func TestDiskFaultSurfaced(t *testing.T) {
	v := perf.Homogeneous(2)
	budget := int64(0)
	c, err := cluster.New(cluster.Config{
		Slowdowns: v.Slowdowns(),
		BlockKeys: 64,
		Disks: func(id int) diskio.FS {
			inner := diskio.NewMemFS()
			if id == 1 {
				ffs := diskio.NewFaultFS(inner, -1)
				budget = 400
				ffs.FailAfter = budget
				return ffs
			}
			return inner
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig(v)
	if _, err := DistributeInput(c, v, record.Uniform, 8192, 3, cfg.BlockKeys, "input"); err != nil {
		// Input distribution may itself hit the fault budget; that is
		// fine for this test as long as an error surfaces somewhere.
		return
	}
	if _, err := Sort(c, cfg, "input", "output"); err == nil {
		t.Fatal("injected disk fault did not surface")
	}
}

func TestIntermediateFilesCleaned(t *testing.T) {
	v := perf.Homogeneous(2)
	c := newCluster(t, v)
	runSort(t, c, v, testConfig(v), record.Uniform, 8192, 29)
	for i := 0; i < 2; i++ {
		names, err := c.Node(i).FS().Names()
		if err != nil {
			t.Fatal(err)
		}
		for _, name := range names {
			if name != "input" && name != "output" {
				t.Errorf("node %d leftover %q", i, name)
			}
		}
	}
}

func TestKeepIntermediates(t *testing.T) {
	v := perf.Homogeneous(2)
	c := newCluster(t, v)
	cfg := testConfig(v)
	cfg.KeepIntermediates = true
	runSort(t, c, v, cfg, record.Uniform, 8192, 31)
	names, err := c.Node(0).FS().Names()
	if err != nil {
		t.Fatal(err)
	}
	if len(names) <= 2 {
		t.Fatalf("expected intermediates kept, only %v", names)
	}
}

func TestRunFormationVariants(t *testing.T) {
	v := perf.Homogeneous(2)
	for _, rf := range []polyphase.RunFormation{polyphase.ReplacementSelection, polyphase.LoadSort} {
		c := newCluster(t, v)
		cfg := testConfig(v)
		cfg.RunFormation = rf
		runSort(t, c, v, cfg, record.Uniform, 16384, 37)
	}
}

func TestOnRealDisk(t *testing.T) {
	v := perf.Vector{1, 2}
	root := t.TempDir()
	c, err := cluster.New(cluster.Config{
		Slowdowns: v.Slowdowns(),
		BlockKeys: 64,
		Disks: func(id int) diskio.FS {
			d, derr := diskio.NewDirFS(root + "/node" + string(rune('0'+id)))
			if derr != nil {
				t.Fatal(derr)
			}
			return d
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	runSort(t, c, v, testConfig(v), record.Uniform, v.NearestValidSize(20000), 41)
}

func TestSortProperty(t *testing.T) {
	v := perf.Vector{1, 2, 1}
	cfg := testConfig(v)
	f := func(seed int64, distRaw uint8) bool {
		d := record.Distribution(int(distRaw) % record.NumDistributions)
		n := v.NearestValidSize(9000)
		c, err := cluster.New(cluster.Config{Slowdowns: v.Slowdowns(), BlockKeys: 64})
		if err != nil {
			return false
		}
		sum, err := DistributeInput(c, v, d, n, seed, cfg.BlockKeys, "input")
		if err != nil {
			return false
		}
		if _, err := Sort(c, cfg, "input", "output"); err != nil {
			return false
		}
		return VerifyOutput(c, "output", cfg.BlockKeys, sum) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}

func TestResultHelpers(t *testing.T) {
	v := perf.Vector{1, 1, 4, 4}
	res := &Result{PartitionSizes: []int64{100, 120, 400, 420}}
	if got := res.MeanPartition(v, 4); got != 410 {
		t.Fatalf("MeanPartition=%v", got)
	}
	if got := res.MaxPartition(v, 4); got != 420 {
		t.Fatalf("MaxPartition=%v", got)
	}
	if got := res.MaxPartition(v, 9); got != 0 {
		t.Fatalf("missing class MaxPartition=%v", got)
	}
	if res.SublistExpansion(perf.Vector{1}) != 0 {
		t.Fatal("mismatched vector should give 0")
	}
}

package cluster

import (
	"testing"
	"testing/quick"

	"hetsort/internal/record"
)

// TestConservativeClockProperty: for random point-to-point schedules,
// a receiver's clock after Recv is never earlier than the sender's
// clock at send time plus the wire latency — the conservative rule that
// makes the virtual times causally consistent.
func TestConservativeClockProperty(t *testing.T) {
	f := func(workRaw [2]uint16, payloadRaw uint16) bool {
		c, err := New(Config{Slowdowns: []float64{1, 1}})
		if err != nil {
			return false
		}
		payload := make([]record.Key, int(payloadRaw)%5000)
		var sendClock float64
		err = c.Run(func(n *Node) error {
			n.ChargeCompute(int64(workRaw[n.ID()]))
			if n.ID() == 0 {
				if err := n.Send(1, 1, payload); err != nil {
					return err
				}
				sendClock = n.Clock()
				return nil
			}
			_, err := n.Recv(0, 1)
			return err
		})
		if err != nil {
			return false
		}
		// Receiver must be at or past the arrival time.
		return c.Node(1).Clock() >= sendClock+c.Net().LatencySec
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestFIFOPerLink: messages between a fixed pair arrive in send order
// with non-decreasing arrival stamps.
func TestFIFOPerLink(t *testing.T) {
	c := mustNew(t, 1, 1)
	const msgs = 50
	err := c.Run(func(n *Node) error {
		if n.ID() == 0 {
			for i := 0; i < msgs; i++ {
				if err := n.Send(1, 1, []record.Key{record.Key(i)}); err != nil {
					return err
				}
			}
			return nil
		}
		prevClock := -1.0
		for i := 0; i < msgs; i++ {
			got, err := n.Recv(0, 1)
			if err != nil {
				return err
			}
			if got[0] != record.Key(i) {
				t.Errorf("message %d out of order: %v", i, got)
			}
			if n.Clock() < prevClock {
				t.Errorf("clock went backwards: %v after %v", n.Clock(), prevClock)
			}
			prevClock = n.Clock()
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestBandwidthProportionalOccupancy: doubling the payload roughly
// doubles the sender occupancy beyond the fixed overhead.
func TestBandwidthProportionalOccupancy(t *testing.T) {
	occupancy := func(keys int) float64 {
		c := mustNew(t, 1, 1)
		err := c.Run(func(n *Node) error {
			if n.ID() == 0 {
				return n.Send(1, 1, make([]record.Key, keys))
			}
			_, err := n.Recv(0, 1)
			return err
		})
		if err != nil {
			t.Fatal(err)
		}
		return c.Node(0).Clock()
	}
	small := occupancy(10000)
	big := occupancy(20000)
	fixed := occupancy(0)
	ratio := (big - fixed) / (small - fixed)
	if ratio < 1.9 || ratio > 2.1 {
		t.Fatalf("occupancy not bandwidth-proportional: ratio %v", ratio)
	}
}

package diskio

import (
	"errors"
	"io"
	"testing"

	"hetsort/internal/record"
)

func TestTransientFaultFSRecovers(t *testing.T) {
	ffs := NewTransientFaultFS(NewMemFS(), 2, 3)
	f, err := ffs.Create("x") // op 1
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{1, 2, 3, 4}); err != nil { // op 2
		t.Fatal(err)
	}
	// Ops 3..5 are the transient window: all must fail.
	for i := 0; i < 3; i++ {
		if _, err := f.Write([]byte{9}); !errors.Is(err, ErrInjected) {
			t.Fatalf("op %d: want injected fault, got %v", 3+i, err)
		}
	}
	// The device has recovered.
	if _, err := f.Write([]byte{5, 6, 7, 8}); err != nil {
		t.Fatalf("post-recovery write: %v", err)
	}
	if got := ffs.Injected(); got != 3 {
		t.Fatalf("Injected() = %d, want 3", got)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestPermanentFaultFSInjectedCounter(t *testing.T) {
	ffs := NewFaultFS(NewMemFS(), 0)
	if _, err := ffs.Create("x"); !errors.Is(err, ErrInjected) {
		t.Fatalf("want injected fault, got %v", err)
	}
	if _, err := ffs.Open("x"); !errors.Is(err, ErrInjected) {
		t.Fatalf("want injected fault, got %v", err)
	}
	if got := ffs.Injected(); got != 2 {
		t.Fatalf("Injected() = %d, want 2", got)
	}
}

func TestRetryFSAbsorbsTransientFault(t *testing.T) {
	ffs := NewTransientFaultFS(NewMemFS(), 3, 2)
	var waited float64
	rfs := NewRetryFS(ffs, DefaultRetryPolicy(), func(sec float64) { waited += sec })

	keys := []record.Key{5, 3, 8, 1}
	if err := WriteFile(rfs, "k", keys, 2, Accounting{}); err != nil {
		t.Fatalf("write through transient fault: %v", err)
	}
	got, err := ReadFileAll(rfs, "k", 2, Accounting{})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(keys) {
		t.Fatalf("read back %d keys, want %d", len(got), len(keys))
	}
	for i := range keys {
		if got[i] != keys[i] {
			t.Fatalf("got[%d] = %d, want %d", i, got[i], keys[i])
		}
	}
	if rfs.Retries() == 0 {
		t.Fatal("no retries recorded despite injected faults")
	}
	if ffs.Injected() == 0 {
		t.Fatal("no faults injected")
	}
	if waited <= 0 {
		t.Fatal("backoff delays not reported to Wait")
	}
}

func TestRetryFSGivesUpOnPermanentFault(t *testing.T) {
	ffs := NewFaultFS(NewMemFS(), 0)
	rfs := NewRetryFS(ffs, RetryPolicy{MaxRetries: 2, BackoffSec: 0.001}, nil)
	if _, err := rfs.Create("x"); !errors.Is(err, ErrInjected) {
		t.Fatalf("want exhausted retries to surface the fault, got %v", err)
	}
	// First attempt + 2 retries.
	if got := ffs.Injected(); got != 3 {
		t.Fatalf("Injected() = %d, want 3", got)
	}
	if got := rfs.Retries(); got != 2 {
		t.Fatalf("Retries() = %d, want 2", got)
	}
}

func TestRetryFSDoesNotRetryEOF(t *testing.T) {
	inner := NewMemFS()
	if err := WriteFile(inner, "k", []record.Key{1}, 1, Accounting{}); err != nil {
		t.Fatal(err)
	}
	rfs := NewRetryFS(inner, DefaultRetryPolicy(), nil)
	f, err := rfs.Open("k")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	buf := make([]byte, 16)
	if _, err := f.Read(buf); err != nil && err != io.EOF {
		t.Fatal(err)
	}
	if _, err := f.Read(buf); err != io.EOF {
		t.Fatalf("want EOF, got %v", err)
	}
	if got := rfs.Retries(); got != 0 {
		t.Fatalf("EOF was retried %d times", got)
	}
}

func TestRetryFSDoesNotRetryMissingFile(t *testing.T) {
	rfs := NewRetryFS(NewMemFS(), DefaultRetryPolicy(), nil)
	if _, err := rfs.Open("nope"); err == nil {
		t.Fatal("want not-exist error")
	}
	if got := rfs.Retries(); got != 0 {
		t.Fatalf("not-exist was retried %d times", got)
	}
}

package experiments

import (
	"fmt"
	"time"

	"hetsort/internal/cluster"
	"hetsort/internal/diskio"
	"hetsort/internal/extsort"
	"hetsort/internal/record"
)

// PipelineAblation runs A8: the fused redistribution→merge pipeline
// against the barrier path on the paper's loaded cluster.  Three
// variants of the same uniform sort on perf {1,1,4,4}: barrier (steps 4
// and 5 separated by the received files on disk), pipelined (streams
// merged straight into the output), and pipelined with checkpointing
// (spill-while-merging: streams teed to durable receive files for the
// phase-4 manifest).  Reported per variant: virtual time, total PDM
// block I/Os, and host wall-clock.  The ablation is self-checking — it
// fails unless every variant's per-node outputs are byte-identical to
// the barrier run's and the pipelined variant performs strictly fewer
// block I/Os (it eliminates up to 2·l_i/B per node).
func PipelineAblation(o Options) ([]AblationRow, error) {
	o = o.withDefaults()
	var rows []AblationRow
	add := func(variant, metric string, val float64) {
		rows = append(rows, AblationRow{ID: "A8", Variant: variant, Metric: metric, Value: val})
	}
	v := PaperVector
	n := v.NearestValidSize(o.scale(1 << 22))

	variants := []struct {
		name           string
		pipeline, ckpt bool
	}{
		{"barrier", false, false},
		{"pipelined", true, false},
		{"pipelined+ckpt", true, true},
	}
	var reference [][]record.Key
	var barrierIO, pipelinedIO int64
	for _, vt := range variants {
		c, err := o.newCluster(cluster.FastEthernet())
		if err != nil {
			return nil, err
		}
		c.ResetClocks()
		sum, err := extsort.DistributeInput(c, v, record.Uniform, n, o.Seed, o.BlockKeys, "input")
		if err != nil {
			return nil, err
		}
		cfg := o.extsortConfig(v)
		cfg.Pipeline = vt.pipeline
		cfg.Checkpoint = vt.ckpt
		cfg.InputSum = sum
		start := time.Now()
		res, err := extsort.Sort(c, cfg, "input", "output")
		if err != nil {
			return nil, fmt.Errorf("A8 %s: %w", vt.name, err)
		}
		wall := time.Since(start)
		if err := extsort.VerifyOutput(c, "output", o.BlockKeys, sum); err != nil {
			return nil, fmt.Errorf("A8 %s verify: %w", vt.name, err)
		}
		var io int64
		for _, s := range res.NodeIO {
			io += s.Total()
		}
		outs := make([][]record.Key, c.P())
		for i := range outs {
			if outs[i], err = diskio.ReadFileAll(c.Node(i).FS(), "output", o.BlockKeys, diskio.Accounting{}); err != nil {
				return nil, err
			}
		}
		switch vt.name {
		case "barrier":
			reference = outs
			barrierIO = io
		default:
			if vt.name == "pipelined" {
				pipelinedIO = io
			}
			for i := range outs {
				if len(outs[i]) != len(reference[i]) {
					return nil, fmt.Errorf("A8 %s: node %d holds %d keys, barrier run %d",
						vt.name, i, len(outs[i]), len(reference[i]))
				}
				for j := range outs[i] {
					if outs[i][j] != reference[i][j] {
						return nil, fmt.Errorf("A8 %s: node %d output diverges from the barrier run at key %d",
							vt.name, i, j)
					}
				}
			}
		}
		add(vt.name, "vsec", res.Time)
		add(vt.name, "blockIOs", float64(io))
		add(vt.name, "wallms", float64(wall.Microseconds())/1000)
	}
	if pipelinedIO >= barrierIO {
		return nil, fmt.Errorf("A8: pipelined path did %d block I/Os, not strictly below the barrier's %d",
			pipelinedIO, barrierIO)
	}
	return rows, nil
}

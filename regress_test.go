package hetsort

// Regression tests for the bugs the cross-configuration harness work
// flushed out: silent WorkDir errors, non-finite load vectors, and the
// calibration trace that was silently dropped.

import (
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestWorkDirErrorSurfaces pins the newCluster fix: a WorkDir whose
// node directories cannot be created must fail the sort, not silently
// fall back to in-memory disks.  The test nests the WorkDir under a
// regular file so MkdirAll fails with ENOTDIR even when running as
// root (chmod-based permission tests are no-ops for uid 0).
func TestWorkDirErrorSurfaces(t *testing.T) {
	dir := t.TempDir()
	blocker := filepath.Join(dir, "blocker")
	if err := os.WriteFile(blocker, []byte("not a directory"), 0o644); err != nil {
		t.Fatal(err)
	}
	keys := []Key{3, 1, 4, 1, 5, 9, 2, 6}
	_, _, err := Sort(keys, Config{
		Nodes: 2, WorkDir: filepath.Join(blocker, "work"),
		MemoryKeys: 256, BlockKeys: 16, Tapes: 4,
	})
	if err == nil {
		t.Fatal("Sort succeeded with a WorkDir nested under a regular file")
	}
	if !strings.Contains(err.Error(), "work dir") {
		t.Fatalf("error does not identify the work dir: %v", err)
	}
}

// TestLoadsValidation pins the ValidateLoads fix: NaN slips past a
// naive `v < 1` check (all NaN comparisons are false), and +Inf passes
// it outright; both must be rejected, by ParseLoads and by the
// Config.Loads path alike.
func TestLoadsValidation(t *testing.T) {
	cases := []struct {
		name  string
		loads []float64
		ok    bool
	}{
		{"valid", []float64{1, 2.5, 4}, true},
		{"below-one", []float64{1, 0.5}, false},
		{"nan", []float64{1, math.NaN()}, false},
		{"plus-inf", []float64{1, math.Inf(1)}, false},
		{"minus-inf", []float64{math.Inf(-1), 1}, false},
		{"empty", nil, false},
	}
	for _, tc := range cases {
		t.Run("config/"+tc.name, func(t *testing.T) {
			cfg := Config{Loads: tc.loads, MemoryKeys: 256, BlockKeys: 16, Tapes: 4}
			if tc.loads != nil {
				cfg.Nodes = len(tc.loads)
			}
			_, _, err := Sort([]Key{2, 1}, cfg)
			if tc.ok && err != nil {
				t.Fatalf("valid loads rejected: %v", err)
			}
			if !tc.ok && tc.loads != nil && err == nil {
				t.Fatalf("invalid loads %v accepted", tc.loads)
			}
		})
	}

	parse := []struct {
		in string
		ok bool
	}{
		{"1,2.5,4", true},
		{"1, 1", true},
		{"0.5,1", false},
		{"NaN,1", false},
		{"1,nan", false},
		{"+Inf,1", false},
		{"1,Infinity", false},
		{"-Inf,1", false},
		{"", false},
		{"1,bogus", false},
	}
	for _, tc := range parse {
		t.Run("parse/"+tc.in, func(t *testing.T) {
			got, err := ParseLoads(tc.in)
			if tc.ok && err != nil {
				t.Fatalf("ParseLoads(%q) rejected valid input: %v", tc.in, err)
			}
			if !tc.ok {
				if err == nil {
					t.Fatalf("ParseLoads(%q) = %v, want error", tc.in, got)
				}
			}
		})
	}
}

// TestCalibrateTrace pins the Calibrate trace fix: the old code built a
// trace log when Config.Trace was set and then discarded it.  Calibrate
// now refuses the combination explicitly, and CalibrateReport returns
// the rendered trace.
func TestCalibrateTrace(t *testing.T) {
	cfg := Config{Nodes: 2, Loads: []float64{1, 2}, MemoryKeys: 256, BlockKeys: 16, Tapes: 4}

	if _, _, err := Calibrate(withTrace(cfg), 512); err == nil {
		t.Fatal("Calibrate accepted Config.Trace and would have dropped the trace")
	} else if !strings.Contains(err.Error(), "CalibrateReport") {
		t.Fatalf("refusal does not point at CalibrateReport: %v", err)
	}

	perf, times, err := Calibrate(cfg, 512)
	if err != nil {
		t.Fatalf("Calibrate: %v", err)
	}
	if len(perf) != 2 || len(times) != 2 {
		t.Fatalf("Calibrate returned perf=%v times=%v, want 2 entries each", perf, times)
	}
	if perf[1] >= perf[0] {
		t.Fatalf("load-2 node should calibrate slower (perf is a speed, slowest=1): perf=%v", perf)
	}

	cal, err := CalibrateReport(withTrace(cfg), 512)
	if err != nil {
		t.Fatalf("CalibrateReport: %v", err)
	}
	if cal.TraceLog == nil || cal.Timeline == "" || cal.Gantt == "" {
		t.Fatalf("CalibrateReport dropped the trace: log=%v timeline=%d bytes gantt=%d bytes",
			cal.TraceLog != nil, len(cal.Timeline), len(cal.Gantt))
	}
	if !strings.Contains(cal.Timeline, "calibrate") {
		t.Fatalf("trace timeline does not mention the calibrate phase:\n%s", cal.Timeline)
	}

	if _, err := CalibrateReport(cfg, 0); err == nil {
		t.Fatal("CalibrateReport accepted perNodeKeys=0")
	}
}

func withTrace(cfg Config) Config {
	cfg.Trace = true
	return cfg
}

// TestDegenerateInputs pins the degenerate sizes across every pivot
// strategy directly at the public API (the harness corner list covers
// the same ground; this keeps the guarantee even with the harness
// filtered out).
func TestDegenerateInputs(t *testing.T) {
	strategies := []string{"", PivotOverpartitioning, PivotRandom, PivotQuantileSketch}
	inputs := []struct {
		name string
		keys []Key
	}{
		{"empty", nil},
		{"single", []Key{7}},
		{"n<p", []Key{9, 1, 5}},
		{"all-dup", func() []Key {
			keys := make([]Key, 400)
			for i := range keys {
				keys[i] = 42
			}
			return keys
		}()},
	}
	for _, strat := range strategies {
		for _, in := range inputs {
			name := strat
			if name == "" {
				name = "regular-sampling"
			}
			t.Run(name+"/"+in.name, func(t *testing.T) {
				out, rep, err := Sort(in.keys, Config{
					Nodes: 4, PivotStrategy: strat,
					MemoryKeys: 256, BlockKeys: 16, Tapes: 4, MessageKeys: 32,
				})
				if err != nil {
					t.Fatalf("Sort: %v", err)
				}
				if len(out) != len(in.keys) {
					t.Fatalf("got %d keys, want %d", len(out), len(in.keys))
				}
				for i := 1; i < len(out); i++ {
					if out[i] < out[i-1] {
						t.Fatalf("output not sorted at %d", i)
					}
				}
				if rep == nil {
					t.Fatal("nil report")
				}
			})
		}
	}
}

package extsort

import (
	"bytes"
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"hetsort/internal/cluster"
	"hetsort/internal/perf"
	"hetsort/internal/record"
	"hetsort/internal/trace"
	"hetsort/internal/vtime"
)

// checkRunAttribution asserts the tentpole invariant on a finished run:
// every node's compute+disk+network+idle equals its clock.  The step
// windows must tile the run up to the pre-step-1 setup (a Checkpoint
// run's phase-0 manifest commit happens before step 1's window): each
// category's residual is non-negative, and on a plain run (exact=true)
// the windows account for the whole clock.
func checkRunAttribution(t *testing.T, res *Result, exact bool) {
	t.Helper()
	for i, b := range res.NodeAttr {
		if err := vtime.CheckAttribution(res.NodeClocks[i], b); err != nil {
			t.Errorf("node %d: %v", i, err)
		}
		var steps vtime.Breakdown
		for s := range res.StepAttr {
			steps = steps.Add(res.StepAttr[s][i])
		}
		resid := b.Sub(steps)
		for cat, v := range map[string]float64{"compute": resid.Compute, "disk": resid.Disk,
			"network": resid.Network, "idle": resid.Idle} {
			if v < -vtime.AttributionTolerance {
				t.Errorf("node %d: step windows over-count %s by %v", i, cat, -v)
			}
		}
		if exact {
			if err := vtime.CheckAttribution(b.Total(), steps); err != nil {
				t.Errorf("node %d: step windows do not tile the run: %v", i, err)
			}
		}
	}
}

func TestAttributionSumsToClock(t *testing.T) {
	v := perf.Vector{1, 1, 4, 4}
	c := newCluster(t, v)
	res := runSort(t, c, v, testConfig(v), record.Uniform, v.NearestValidSize(40000), 3)
	checkRunAttribution(t, res, true)
	// A heterogeneous run must show real work and real waiting: the
	// fast nodes wait at barriers for the loaded ones.
	var idle, busy float64
	for _, b := range res.NodeAttr {
		idle += b.Idle
		busy += b.Compute + b.Disk + b.Network
	}
	if busy == 0 || idle == 0 {
		t.Fatalf("degenerate attribution: busy=%v idle=%v", busy, idle)
	}
}

// TestAttributionRandomConfigs is the property test: across random
// cluster shapes, perf vectors, block/message/memory geometries and
// feature toggles, the four categories always sum to each node's clock.
func TestAttributionRandomConfigs(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 8; trial++ {
		p := 2 + rng.Intn(4)
		v := make(perf.Vector, p)
		for i := range v {
			v[i] = 1 + rng.Intn(4)
		}
		block := 16 << rng.Intn(3) // 16, 32, 64
		tapes := 4 + rng.Intn(4)
		cfg := Config{
			Perf:        v,
			BlockKeys:   block,
			Tapes:       tapes,
			MemoryKeys:  tapes*block + (1+rng.Intn(8))*block*4,
			MessageKeys: block * (1 + rng.Intn(4)),
			Pipeline:    rng.Intn(2) == 1,
			Checkpoint:  rng.Intn(2) == 1,
			Seed:        int64(trial),
		}
		n := v.NearestValidSize(int64(4000 + rng.Intn(20000)))
		name := fmt.Sprintf("trial%d_p%d_B%d_pipe%v_ckpt%v", trial, p, block, cfg.Pipeline, cfg.Checkpoint)
		t.Run(name, func(t *testing.T) {
			c := newCluster(t, v)
			res := runSort(t, c, v, cfg, record.Uniform, n, int64(100+trial))
			checkRunAttribution(t, res, !cfg.Checkpoint)
		})
	}
}

// TestTracedRunExportsValidChromeTrace is the acceptance test: a traced
// run exports Chrome trace_event JSON that passes the schema validator,
// with one named track per node and all five Algorithm-1 phases.
func TestTracedRunExportsValidChromeTrace(t *testing.T) {
	v := perf.Vector{1, 2, 2}
	var tl trace.Log
	c, err := cluster.New(cluster.Config{Slowdowns: v.Slowdowns(), BlockKeys: 64, Trace: &tl})
	if err != nil {
		t.Fatal(err)
	}
	runSort(t, c, v, testConfig(v), record.Uniform, v.NearestValidSize(20000), 4)

	var buf bytes.Buffer
	if err := trace.WriteChromeTrace(&buf, &tl); err != nil {
		t.Fatal(err)
	}
	if err := trace.ValidateChromeTrace(buf.Bytes()); err != nil {
		t.Fatalf("exported trace invalid: %v", err)
	}
	out := buf.String()
	for i := range v {
		track := fmt.Sprintf(`"name": "node %d"`, i)
		if !strings.Contains(out, track) {
			t.Errorf("missing track metadata %s", track)
		}
	}
	for _, step := range StepNames {
		if !strings.Contains(out, fmt.Sprintf("%q", step)) {
			t.Errorf("missing phase span for %q", step)
		}
	}
	if !strings.Contains(out, `"ph": "s"`) || !strings.Contains(out, `"ph": "f"`) {
		t.Error("no message flow arrows in the trace")
	}

	var jl bytes.Buffer
	if err := trace.WriteJSONL(&jl, &tl); err != nil {
		t.Fatal(err)
	}
	if jl.Len() == 0 || !strings.Contains(jl.String(), `"kind":"phase-begin"`) {
		t.Error("JSONL stream empty or missing phase events")
	}
}

// TestPhaseIOAttribution checks the pdm phase dimension: per-phase block
// I/O recorded by the counters matches the bracketed StepIO snapshots.
func TestPhaseIOAttribution(t *testing.T) {
	v := perf.Homogeneous(3)
	c := newCluster(t, v)
	res := runSort(t, c, v, testConfig(v), record.Uniform, v.NearestValidSize(30000), 5)
	for i := 0; i < c.P(); i++ {
		ps := c.Node(i).Counter().PhaseSnapshot()
		for s := 0; s < 5; s++ {
			// StepIO is bracketed barrier to barrier, while the phase
			// cells are only charged between begin(step) and the
			// barrier — the same window, so they must agree exactly on
			// a run without checkpointing.
			if ps[s+1] != res.StepIO[s][i] {
				t.Errorf("node %d step %d: phase cell %+v != StepIO %+v", i, s, ps[s+1], res.StepIO[s][i])
			}
		}
		if ps[0].Total() != 0 {
			t.Errorf("node %d: unattributed I/O %+v on a checkpoint-free run", i, ps[0])
		}
	}
}

func TestMergeMetricsObserved(t *testing.T) {
	v := perf.Homogeneous(2)
	c := newCluster(t, v)
	runSort(t, c, v, testConfig(v), record.Uniform, v.NearestValidSize(20000), 6)
	for i := 0; i < c.P(); i++ {
		snap := c.Node(i).Metrics().Snapshot()
		if snap["merge.keys"] == 0 || snap["merge.comparisons"] == 0 {
			t.Errorf("node %d: merge kernel metrics not observed: %v", i, snap)
		}
		if snap["net.sent.msgs"] == 0 || snap["net.recv.keys"] == 0 {
			t.Errorf("node %d: link metrics not observed: %v", i, snap)
		}
	}
}

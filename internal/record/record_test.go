package record

import (
	"sort"
	"testing"
	"testing/quick"
)

func TestKeyRoundTrip(t *testing.T) {
	buf := make([]byte, KeySize)
	for _, k := range []Key{0, 1, 0xdeadbeef, 0xffffffff} {
		PutKey(buf, k)
		if got := GetKey(buf); got != k {
			t.Fatalf("round trip %x -> %x", k, got)
		}
	}
}

func TestEncodeDecodeKeys(t *testing.T) {
	keys := []Key{5, 0, 42, 0xffffffff, 7}
	buf := EncodeKeys(nil, keys)
	if len(buf) != KeySize*len(keys) {
		t.Fatalf("encoded length %d", len(buf))
	}
	got := DecodeKeys(nil, buf)
	if len(got) != len(keys) {
		t.Fatalf("decoded %d keys", len(got))
	}
	for i := range keys {
		if got[i] != keys[i] {
			t.Fatalf("key %d: %d != %d", i, got[i], keys[i])
		}
	}
}

func TestEncodeAppendsToDst(t *testing.T) {
	buf := EncodeKeys([]byte{0xaa}, []Key{1})
	if len(buf) != 1+KeySize || buf[0] != 0xaa {
		t.Fatalf("EncodeKeys must append: %v", buf)
	}
}

func TestDecodePanicsOnRaggedBuffer(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	DecodeKeys(nil, make([]byte, 5))
}

func TestEncodeDecodeProperty(t *testing.T) {
	f := func(keys []Key) bool {
		got := DecodeKeys(nil, EncodeKeys(nil, keys))
		if len(got) != len(keys) {
			return false
		}
		for i := range keys {
			if got[i] != keys[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIsSorted(t *testing.T) {
	if !IsSorted(nil) || !IsSorted([]Key{1}) || !IsSorted([]Key{1, 1, 2}) {
		t.Fatal("sorted inputs misclassified")
	}
	if IsSorted([]Key{2, 1}) {
		t.Fatal("unsorted input classified sorted")
	}
}

func TestChecksumPermutationInvariant(t *testing.T) {
	f := func(keys []Key) bool {
		a := ChecksumOf(keys)
		shuffled := append([]Key(nil), keys...)
		for i := len(shuffled) - 1; i > 0; i-- {
			j := int(shuffled[i]) % (i + 1)
			shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
		}
		return a.Equal(ChecksumOf(shuffled))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestChecksumDetectsLoss(t *testing.T) {
	a := ChecksumOf([]Key{1, 2, 3})
	b := ChecksumOf([]Key{1, 2})
	if a.Equal(b) {
		t.Fatal("checksum missed dropped key")
	}
}

func TestChecksumDetectsMutation(t *testing.T) {
	a := ChecksumOf([]Key{1, 2, 3})
	b := ChecksumOf([]Key{1, 2, 4})
	if a.Equal(b) {
		t.Fatal("checksum missed mutated key")
	}
}

func TestChecksumCombineMatchesUnion(t *testing.T) {
	x := []Key{9, 9, 1}
	y := []Key{7, 0}
	var c Checksum
	c.Update(x)
	c.Combine(ChecksumOf(y))
	if !c.Equal(ChecksumOf(append(append([]Key{}, x...), y...))) {
		t.Fatal("Combine != union")
	}
}

func TestDistributionsSuiteSize(t *testing.T) {
	ds := Distributions()
	if len(ds) != NumDistributions || NumDistributions != 12 {
		t.Fatalf("suite size %d", len(ds))
	}
	seen := map[string]bool{}
	for _, d := range ds {
		s := d.String()
		if seen[s] {
			t.Fatalf("duplicate name %q", s)
		}
		seen[s] = true
	}
}

func TestParseDistributionRoundTrip(t *testing.T) {
	for _, d := range Distributions() {
		got, err := ParseDistribution(d.String())
		if err != nil || got != d {
			t.Fatalf("parse %q: %v %v", d.String(), got, err)
		}
	}
	if _, err := ParseDistribution("nope"); err == nil {
		t.Fatal("expected error for unknown name")
	}
}

func TestGenerateLengthAndDeterminism(t *testing.T) {
	for _, d := range Distributions() {
		a := d.Generate(1000, 42, 4)
		b := d.Generate(1000, 42, 4)
		if len(a) != 1000 {
			t.Fatalf("%v: length %d", d, len(a))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%v: not deterministic at %d", d, i)
			}
		}
	}
}

func TestGenerateSeedChangesOutput(t *testing.T) {
	a := Uniform.Generate(1000, 1, 4)
	b := Uniform.Generate(1000, 2, 4)
	same := true
	for i := range a {
		if a[i] != b[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical uniform input")
	}
}

func TestSortedAndReverseShapes(t *testing.T) {
	s := Sorted.Generate(500, 0, 4)
	if !IsSorted(s) {
		t.Fatal("Sorted not sorted")
	}
	r := Reverse.Generate(500, 0, 4)
	for i := 1; i < len(r); i++ {
		if r[i] > r[i-1] {
			t.Fatal("Reverse not non-increasing")
		}
	}
}

func TestNearlySortedIsMostlySorted(t *testing.T) {
	a := NearlySorted.Generate(10000, 3, 4)
	inversions := 0
	for i := 1; i < len(a); i++ {
		if a[i] < a[i-1] {
			inversions++
		}
	}
	if inversions == 0 {
		t.Fatal("nearly-sorted should have some disorder")
	}
	if inversions > len(a)/10 {
		t.Fatalf("nearly-sorted too disordered: %d inversions", inversions)
	}
}

func TestZipfHasManyDuplicates(t *testing.T) {
	a := Zipf.Generate(10000, 7, 4)
	distinct := map[Key]bool{}
	for _, k := range a {
		distinct[k] = true
	}
	if len(distinct) > len(a)/2 {
		t.Fatalf("zipf not duplicate-heavy: %d distinct of %d", len(distinct), len(a))
	}
}

func countDistinct(a []Key) int {
	distinct := map[Key]bool{}
	for _, k := range a {
		distinct[k] = true
	}
	return len(distinct)
}

func TestHeavyDupHasFewDistinctValues(t *testing.T) {
	a := HeavyDup.Generate(10000, 11, 4)
	if d := countDistinct(a); d > 5 {
		t.Fatalf("heavy-dup has %d distinct values, want <= 5", d)
	}
}

func TestZipfS2SkewExceedsZipf(t *testing.T) {
	mode := func(a []Key) int {
		counts := map[Key]int{}
		best := 0
		for _, k := range a {
			counts[k]++
			if counts[k] > best {
				best = counts[k]
			}
		}
		return best
	}
	const n = 20000
	s2 := mode(ZipfS2.Generate(n, 13, 4))
	s12 := mode(Zipf.Generate(n, 13, 4))
	if s2 <= s12 {
		t.Fatalf("zipf-s2 mode %d not heavier than zipf's %d", s2, s12)
	}
	if s2 < n/2 {
		t.Fatalf("zipf-s2 mode holds %d of %d keys, want a majority", s2, n)
	}
}

func TestStaircaseLeavesWideGaps(t *testing.T) {
	const parts = 4
	a := Staircase.Generate(10000, 17, parts)
	width := uint64(1<<32-1) / parts
	for i, k := range a {
		off := uint64(k) % width
		if off < width/2 || off > width/2+width/4096 {
			t.Fatalf("key %d (%d) off the plateau: offset %d", i, k, off)
		}
	}
}

func TestSamplerKillerHidesHalfTheMass(t *testing.T) {
	const parts = 8
	a := SamplerKiller.Generate(10000, 19, parts)
	width := uint64(1<<32-1) / parts
	magnets, hidden := 0, 0
	for _, k := range a {
		if uint64(k)%width == 0 {
			magnets++
		} else {
			hidden++
		}
	}
	if magnets < len(a)/3 || hidden < len(a)/3 {
		t.Fatalf("magnet/hidden split %d/%d not near half-and-half", magnets, hidden)
	}
	// The hidden mass sits in a hair-thin spike above each magnet.
	for _, k := range a {
		if off := uint64(k) % width; off > width/1024+1 {
			t.Fatalf("key %d outside magnet+spike band (offset %d)", k, off)
		}
	}
}

func TestBucketRangesDisjoint(t *testing.T) {
	const n, parts = 8000, 4
	a := Bucket.Generate(n, 5, parts)
	// Each quarter of the input must stay in its own value range.
	for q := 0; q < parts; q++ {
		lo, hi := ^Key(0), Key(0)
		for _, k := range a[q*n/parts : (q+1)*n/parts] {
			if k < lo {
				lo = k
			}
			if k > hi {
				hi = k
			}
		}
		width := uint64(^uint32(0)) / parts
		if uint64(lo) < uint64(q)*width || uint64(hi) > uint64(q+1)*width {
			t.Fatalf("bucket %d leaked outside its range [%d,%d]", q, lo, hi)
		}
	}
}

func TestStaggeredBlocksAreDistant(t *testing.T) {
	const n, parts = 8000, 8
	a := Staggered.Generate(n, 5, parts)
	blockLen := n / parts
	medians := make([]Key, parts)
	for b := 0; b < parts; b++ {
		blk := append([]Key{}, a[b*blockLen:(b+1)*blockLen]...)
		sort.Slice(blk, func(i, j int) bool { return blk[i] < blk[j] })
		medians[b] = blk[len(blk)/2]
	}
	// Adjacent blocks should not be in adjacent value ranges everywhere.
	adjacentClose := 0
	width := uint64(^uint32(0)) / parts
	for b := 1; b < parts; b++ {
		diff := int64(medians[b]) - int64(medians[b-1])
		if diff < 0 {
			diff = -diff
		}
		if uint64(diff) <= width {
			adjacentClose++
		}
	}
	if adjacentClose == parts-1 {
		t.Fatal("staggered blocks look contiguous, not staggered")
	}
}

func TestGenerateZeroAndPanics(t *testing.T) {
	if got := Uniform.Generate(0, 1, 4); len(got) != 0 {
		t.Fatal("zero-length generation")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on negative n")
		}
	}()
	Uniform.Generate(-1, 1, 4)
}

package experiments

import (
	"fmt"
	"strings"

	"hetsort/internal/cluster"
	"hetsort/internal/extsort"
	"hetsort/internal/stats"
	"hetsort/internal/vtime"
)

// AttributionNode is one node's share of the attribution report.
type AttributionNode struct {
	Node int `json:"node"`
	Perf int `json:"perf"`
	// Clock is the node's final virtual clock; Breakdown splits it into
	// compute/disk/network/idle (the categories sum to Clock).
	Clock     float64         `json:"clock"`
	Breakdown vtime.Breakdown `json:"breakdown"`
	// StepBusy[s] is the node's busy time (compute+disk+network,
	// excluding barrier and receive waits) inside step s's window.
	StepBusy [5]float64 `json:"step_busy"`
	// StepSkew[s] is StepBusy[s] divided by the step's mean busy time
	// over the nodes.  The perf-proportional distribution predicts every
	// node finishes each step together, i.e. skew 1.0; a node's skew
	// above 1 marks it as the step's straggler relative to the
	// perf-vector prediction.
	StepSkew [5]float64 `json:"step_skew"`
}

// AttributionReport is the run-observability experiment's result: where
// each node's virtual time went, per Algorithm-1 step, with the skew of
// observed step times against the perf-vector prediction.
type AttributionReport struct {
	Keys      int64             `json:"keys"`
	Time      float64           `json:"time"`
	StepTimes [5]float64        `json:"step_times"`
	Nodes     []AttributionNode `json:"nodes"`
}

// RunAttribution sorts one paper-vector input with full attribution and
// verifies the tentpole invariant (categories sum to each node's clock)
// before reporting.
func RunAttribution(o Options) (*AttributionReport, error) {
	o = o.withDefaults()
	v := PaperVector
	c, err := o.newCluster(cluster.FastEthernet())
	if err != nil {
		return nil, err
	}
	n := v.NearestValidSize(o.scale(1 << 24))
	res, err := o.runParallel(c, v, n, o.Seed)
	if err != nil {
		return nil, err
	}
	rep := &AttributionReport{Keys: n, Time: res.Time, StepTimes: res.StepTimes}
	var meanBusy [5]float64
	for s := 0; s < 5; s++ {
		for i := range v {
			b := res.StepAttr[s][i]
			meanBusy[s] += b.Compute + b.Disk + b.Network
		}
		meanBusy[s] /= float64(len(v))
	}
	for i := range v {
		if err := vtime.CheckAttribution(res.NodeClocks[i], res.NodeAttr[i]); err != nil {
			return nil, fmt.Errorf("attribution invariant violated on node %d: %w", i, err)
		}
		an := AttributionNode{
			Node: i, Perf: v[i],
			Clock:     res.NodeClocks[i],
			Breakdown: res.NodeAttr[i],
		}
		for s := 0; s < 5; s++ {
			b := res.StepAttr[s][i]
			an.StepBusy[s] = b.Compute + b.Disk + b.Network
			if meanBusy[s] > 0 {
				an.StepSkew[s] = an.StepBusy[s] / meanBusy[s]
			}
		}
		rep.Nodes = append(rep.Nodes, an)
	}
	return rep, nil
}

// AttributionString renders the report: the per-node time split and the
// per-step skew table.
func AttributionString(r *AttributionReport) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Run observability (%d keys, %.3f virtual s):\n\n", r.Keys, r.Time)
	split := &stats.Table{
		Title:   "Where the virtual time went (per node, s)",
		Headers: []string{"Node", "Perf", "Compute", "Disk", "Network", "Idle", "Clock"},
	}
	for _, n := range r.Nodes {
		split.AddRow(fmt.Sprintf("%d", n.Node), fmt.Sprintf("%d", n.Perf),
			fmt.Sprintf("%.3f", n.Breakdown.Compute), fmt.Sprintf("%.3f", n.Breakdown.Disk),
			fmt.Sprintf("%.3f", n.Breakdown.Network), fmt.Sprintf("%.3f", n.Breakdown.Idle),
			fmt.Sprintf("%.3f", n.Clock))
	}
	b.WriteString(split.String())
	b.WriteByte('\n')
	skew := &stats.Table{
		Title: "Step skew: busy time vs perf-vector prediction (1.00 = balanced)",
		Headers: []string{"Node", extsort.StepNames[0], extsort.StepNames[1],
			extsort.StepNames[2], extsort.StepNames[3], extsort.StepNames[4]},
	}
	for _, n := range r.Nodes {
		skew.AddRow(fmt.Sprintf("%d", n.Node),
			fmt.Sprintf("%.2f", n.StepSkew[0]), fmt.Sprintf("%.2f", n.StepSkew[1]),
			fmt.Sprintf("%.2f", n.StepSkew[2]), fmt.Sprintf("%.2f", n.StepSkew[3]),
			fmt.Sprintf("%.2f", n.StepSkew[4]))
	}
	b.WriteString(skew.String())
	return b.String()
}

package experiments

import (
	"fmt"

	"hetsort/internal/cluster"
	"hetsort/internal/perf"
	"hetsort/internal/stats"
)

// Table3Paper holds the paper's Table 3 for side-by-side reporting.
type Table3PaperRow struct {
	Label     string
	InputSize int64
	ExeTime   float64
	Deviation float64
	Mean      float64
	Max       float64
	SMax      float64
}

// Table3PaperRows are the three rows the paper reports (message size
// 32 Kb, 15 intermediate files, 30 experiments).
var Table3PaperRows = []Table3PaperRow{
	{"perf {1,1,1,1}; Fast-Ethernet", 16777216, 303.94, 9.173, 4193043.8, 4204494, 1.00273},
	{"perf {1,1,4,4}; Fast-Ethernet", 16777220, 155.41, 3.645, 6816502.4, 7342910, 1.094},
	{"perf {1,1,4,4}; Myrinet", 16777220, 155.43, 3.465, 6293368.5, 7341545, 1.093},
}

// Table3Row is one measured row of the reproduced Table 3.
type Table3Row struct {
	Label     string
	Perf      perf.Vector
	Net       string
	InputSize int64
	Time      stats.Summary
	// MeanPartition is the mean final partition size of the fastest
	// class (all nodes in the homogeneous row).
	MeanPartition float64
	// MaxPartition is the largest final partition of that class.
	MaxPartition int64
	// SMax is the sublist expansion: MaxPartition over the class
	// optimum.
	SMax float64
	// Paper is the corresponding paper row.
	Paper Table3PaperRow
}

// Table3 reproduces Table 3: external PSRS on the loaded 4-node
// cluster under the three configurations.
func Table3(o Options) ([]Table3Row, error) {
	o = o.withDefaults()
	homogeneous := perf.Homogeneous(4)
	type spec struct {
		v     perf.Vector
		net   cluster.NetModel
		size  int64
		paper Table3PaperRow
	}
	specs := []spec{
		{homogeneous, cluster.FastEthernet(), o.scale(1 << 24), Table3PaperRows[0]},
		{PaperVector, cluster.FastEthernet(), PaperVector.NearestValidSize(o.scale(1 << 24)), Table3PaperRows[1]},
		{PaperVector, cluster.Myrinet(), PaperVector.NearestValidSize(o.scale(1 << 24)), Table3PaperRows[2]},
	}
	var rows []Table3Row
	for _, s := range specs {
		c, err := o.newCluster(s.net)
		if err != nil {
			return nil, err
		}
		fastClass := s.v.Max()
		// The paper's S(max) column reports the expansion "for the two
		// fastest processors": max fast-class partition over the fast
		// optimum.
		optFast := float64(s.size) * float64(fastClass) / float64(s.v.Sum())
		var meanSum float64
		var trials int
		var maxPart int64
		var smax float64
		sum, err := o.trialSummary(func(seed int64) (float64, error) {
			res, rerr := o.runParallel(c, s.v, s.size, seed)
			if rerr != nil {
				return 0, rerr
			}
			meanSum += res.MeanPartition(s.v, fastClass)
			trials++
			if mp := res.MaxPartition(s.v, fastClass); mp > maxPart {
				maxPart = mp
			}
			if sm := float64(res.MaxPartition(s.v, fastClass)) / optFast; sm > smax {
				smax = sm
			}
			return res.Time, nil
		})
		meanPart := meanSum / float64(trials)
		if err != nil {
			return nil, fmt.Errorf("experiments: table 3 %q: %w", s.paper.Label, err)
		}
		rows = append(rows, Table3Row{
			Label:         s.paper.Label,
			Perf:          s.v,
			Net:           s.net.Name,
			InputSize:     s.size,
			Time:          sum,
			MeanPartition: meanPart,
			MaxPartition:  maxPart,
			SMax:          smax,
			Paper:         s.paper,
		})
	}
	return rows, nil
}

// Table3String renders the reproduced table next to the paper values.
func Table3String(rows []Table3Row) string {
	t := &stats.Table{
		Title:   "Table 3: external PSRS on the loaded cluster (virtual seconds)",
		Headers: []string{"Config", "Input", "Time(s)", "Dev", "Mean", "Max", "S(max)", "PaperTime", "PaperS(max)"},
	}
	for _, r := range rows {
		t.AddRow(r.Label, r.InputSize, r.Time.Mean, r.Time.StdDev,
			r.MeanPartition, r.MaxPartition, r.SMax, r.Paper.ExeTime, r.Paper.SMax)
	}
	return t.String()
}

// Speedups reproduces the gains the paper derives in section 5 (E8).
type Speedups struct {
	// HomogeneousGain is sequential-on-slow / parallel-homogeneous
	// ("the gain with four processors is 3" vs Siegrune's 909s).
	HomogeneousGain float64
	// HeteroVsFastSeq is sequential-on-fastest / parallel-hetero
	// (paper: 212s / 155s = 1.37).
	HeteroVsFastSeq float64
	// HeteroVsSlowSeq is sequential-on-slowest / parallel-hetero
	// (paper: 951s / 155s = 6.13).
	HeteroVsSlowSeq float64
	// HeteroVsHomo is parallel-homogeneous / parallel-hetero
	// (paper: 303.94/155.41 ≈ 1.96).
	HeteroVsHomo float64
	// Paper values for comparison.
	PaperHomogeneousGain, PaperHeteroVsFastSeq, PaperHeteroVsSlowSeq, PaperHeteroVsHomo float64
}

// ComputeSpeedups measures the four gains at the Table-3 input size.
func ComputeSpeedups(o Options) (*Speedups, error) {
	o = o.withDefaults()
	n := o.scale(1 << 24)

	seqFast, err := sequentialSortTime(o, 1, n, o.Seed)
	if err != nil {
		return nil, err
	}
	seqSlow, err := sequentialSortTime(o, 4, n, o.Seed)
	if err != nil {
		return nil, err
	}

	homog := perf.Homogeneous(4)
	cH, err := o.newCluster(cluster.FastEthernet())
	if err != nil {
		return nil, err
	}
	resH, err := o.runParallel(cH, homog, n, o.Seed)
	if err != nil {
		return nil, err
	}
	cX, err := o.newCluster(cluster.FastEthernet())
	if err != nil {
		return nil, err
	}
	resX, err := o.runParallel(cX, PaperVector, PaperVector.NearestValidSize(n), o.Seed)
	if err != nil {
		return nil, err
	}

	return &Speedups{
		HomogeneousGain:      seqSlow / resH.Time,
		HeteroVsFastSeq:      seqFast / resX.Time,
		HeteroVsSlowSeq:      seqSlow / resX.Time,
		HeteroVsHomo:         resH.Time / resX.Time,
		PaperHomogeneousGain: 3.0,
		PaperHeteroVsFastSeq: 1.37,
		PaperHeteroVsSlowSeq: 6.13,
		PaperHeteroVsHomo:    303.94 / 155.41,
	}, nil
}

func (s *Speedups) String() string {
	t := &stats.Table{
		Title:   "Section-5 speedups (measured vs paper)",
		Headers: []string{"Gain", "Measured", "Paper"},
	}
	t.AddRow("parallel homogeneous vs slow sequential", s.HomogeneousGain, s.PaperHomogeneousGain)
	t.AddRow("heterogeneous vs fastest sequential", s.HeteroVsFastSeq, s.PaperHeteroVsFastSeq)
	t.AddRow("heterogeneous vs slowest sequential", s.HeteroVsSlowSeq, s.PaperHeteroVsSlowSeq)
	t.AddRow("heterogeneous vs homogeneous config", s.HeteroVsHomo, s.PaperHeteroVsHomo)
	return t.String()
}

// Package storage abstracts where a hetsortd deployment keeps its
// durable state: job specs and statuses, uploaded inputs, the nodes'
// working trees (with their checkpoint manifests), and finished
// artifacts.  A Backend exposes two views of one namespace:
//
//   - a flat object API (Put/Get/Stat/List/Delete) for whole artifacts,
//     with atomic Put so a crashed daemon never leaves a half-written
//     spec or status visible; and
//   - a diskio.FS view rooted at a prefix, so the sort's block-granular
//     working files — input portions, polyphase tapes, segment files,
//     checkpoint manifests — live on the same backend and survive a
//     daemon restart with it.
//
// Two implementations ship: Dir, rooted at a local directory (the
// production shape for single-box deployments), and Object, an
// in-memory S3-style store for tests and ephemeral daemons, with an
// operation-budget fault injector (Faulty) mirroring diskio.FaultFS.
package storage

import (
	"errors"
	"fmt"
	"path"
	"strings"

	"hetsort/internal/diskio"
)

// ErrNotExist reports a missing object.  Implementations wrap it (or
// os.ErrNotExist) so callers can errors.Is either way.
var ErrNotExist = errors.New("storage: object does not exist")

// Backend stores named objects and exposes filesystem views over
// prefixes of the same namespace.  Object names are slash-separated
// relative paths.  Implementations must be safe for concurrent use.
type Backend interface {
	// Put atomically creates or replaces the named object; a reader can
	// never observe a partial write.
	Put(name string, data []byte) error
	// Get returns the object's full content.
	Get(name string) ([]byte, error)
	// Stat returns the object's size in bytes.
	Stat(name string) (int64, error)
	// List returns the names with the given prefix, lexically sorted.
	List(prefix string) ([]string, error)
	// Delete removes the named object; deleting a missing object is an
	// error wrapping ErrNotExist.
	Delete(name string) error
	// FS returns a diskio.FS view rooted at prefix: files created
	// through it are objects named prefix + "/" + filename.
	FS(prefix string) (diskio.FS, error)
}

// ValidName reports whether name is an acceptable object name: a clean,
// non-empty, slash-separated relative path that cannot escape the
// backend's namespace.
func ValidName(name string) error {
	if name == "" {
		return errors.New("storage: empty object name")
	}
	if strings.HasPrefix(name, "/") || path.Clean(name) != name ||
		name == "." || name == ".." || strings.HasPrefix(name, "../") {
		return fmt.Errorf("storage: invalid object name %q", name)
	}
	return nil
}

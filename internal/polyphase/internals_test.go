package polyphase

import (
	"io"
	"sort"
	"testing"
	"testing/quick"

	"hetsort/internal/diskio"
	"hetsort/internal/record"
	"hetsort/internal/vtime"
)

// sliceSource serves a sorted key slice through MergeSource in blocks of
// blk keys, mimicking a file-backed reader.
type sliceSource struct {
	keys []record.Key
	blk  int
	buf  []record.Key
}

func (s *sliceSource) Buffered() []record.Key { return s.buf }
func (s *sliceSource) Discard(n int)          { s.buf = s.buf[n:] }
func (s *sliceSource) Fill() error {
	if len(s.buf) > 0 {
		return nil
	}
	if len(s.keys) == 0 {
		return io.EOF
	}
	n := s.blk
	if n > len(s.keys) {
		n = len(s.keys)
	}
	s.buf, s.keys = s.keys[:n], s.keys[n:]
	return nil
}

func mergeAll(t *testing.T, srcs []MergeSource, meter vtime.Meter) []record.Key {
	t.Helper()
	var out []record.Key
	if err := Merge(srcs, meter, func(chunk []record.Key) error {
		out = append(out, chunk...)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return out
}

func TestLoserTreeOrdering(t *testing.T) {
	runs := [][]record.Key{
		{1, 3, 5, 0xffffffff},
		{0, 2, 2, 9},
		{},
		{7},
		{2, 4},
	}
	var srcs []MergeSource
	var want []record.Key
	for _, r := range runs {
		srcs = append(srcs, &sliceSource{keys: r, blk: 2})
		want = append(want, r...)
	}
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	out := mergeAll(t, srcs, vtime.Nop{})
	if len(out) != len(want) {
		t.Fatalf("merged %d keys, want %d", len(out), len(want))
	}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("out[%d] = %d, want %d", i, out[i], want[i])
		}
	}
}

func TestLoserTreeSingleSourceAndEmpty(t *testing.T) {
	if out := mergeAll(t, nil, nil); len(out) != 0 {
		t.Fatalf("empty merge produced %v", out)
	}
	one := []MergeSource{&sliceSource{keys: []record.Key{4, 4, 8}, blk: 2}}
	out := mergeAll(t, one, nil)
	if len(out) != 3 || out[0] != 4 || out[2] != 8 {
		t.Fatalf("single-source merge = %v", out)
	}
}

func TestLoserTreeProperty(t *testing.T) {
	f := func(raw [][]record.Key, blk uint8) bool {
		b := int(blk%7) + 1
		var srcs []MergeSource
		var want []record.Key
		for _, r := range raw {
			r := append([]record.Key(nil), r...)
			sort.Slice(r, func(i, j int) bool { return r[i] < r[j] })
			srcs = append(srcs, &sliceSource{keys: r, blk: b})
			want = append(want, r...)
		}
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		out := mergeAll(t, srcs, nil)
		if len(out) != len(want) {
			return false
		}
		for i := range want {
			if out[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLoserTreeChunkedEmit(t *testing.T) {
	// Non-overlapping sources must be emitted block-at-a-time, not
	// key-at-a-time: source 0's whole buffer is below source 1's head.
	srcs := []MergeSource{
		&sliceSource{keys: []record.Key{1, 2, 3, 4, 5, 6, 7, 8}, blk: 4},
		&sliceSource{keys: []record.Key{100, 101, 102, 103}, blk: 4},
	}
	var chunks int
	if err := Merge(srcs, nil, func(chunk []record.Key) error {
		chunks++
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	// 2 blocks from source 0, 1 block from source 1 (plus at most one
	// extra boundary chunk): far fewer than the 12 per-key emits.
	if chunks > 4 {
		t.Fatalf("expected block-copy fast path, got %d chunks for 12 keys", chunks)
	}
}

func TestSelectionHeapRunOrdering(t *testing.T) {
	// Items of run r must all come out before any item of run r+1,
	// regardless of key values.
	h := newSelectionHeap(8, vtime.Nop{})
	h.push(selectionItem{key: 1, run: 1})
	h.push(selectionItem{key: 100, run: 0})
	h.push(selectionItem{key: 50, run: 0})
	h.push(selectionItem{key: 0, run: 1})
	want := []selectionItem{{50, 0}, {100, 0}, {0, 1}, {1, 1}}
	for i, w := range want {
		got := h.pop()
		if got != w {
			t.Fatalf("pop %d = %+v want %+v", i, got, w)
		}
	}
}

func TestSelectionHeapReplaceTop(t *testing.T) {
	h := newSelectionHeap(4, nil)
	h.push(selectionItem{key: 10, run: 0})
	h.push(selectionItem{key: 20, run: 0})
	h.replaceTop(selectionItem{key: 5, run: 1}) // demoted to next run
	if got := h.pop(); got.key != 20 || got.run != 0 {
		t.Fatalf("pop = %+v", got)
	}
	if got := h.pop(); got.key != 5 || got.run != 1 {
		t.Fatalf("pop = %+v", got)
	}
}

func TestMergeKernelChargesCompute(t *testing.T) {
	var charged int64
	m := &captureMeter{compute: &charged}
	srcs := []MergeSource{
		&sliceSource{keys: []record.Key{1, 4, 9, 12}, blk: 2},
		&sliceSource{keys: []record.Key{2, 3, 10, 11}, blk: 2},
	}
	out := mergeAll(t, srcs, m)
	if charged < int64(len(out)) {
		t.Fatalf("merge of %d keys charged only %d compute ops", len(out), charged)
	}
}

type captureMeter struct{ compute *int64 }

func (c *captureMeter) ChargeCompute(n int64) { *c.compute += n }
func (c *captureMeter) ChargeIOBlocks(int64)  {}
func (c *captureMeter) ChargeSeek(int64)      {}

func TestDistributorPlacesAllRunsWithinTargets(t *testing.T) {
	for _, tapes := range []int{2, 3, 5} {
		inputs := make([]*tape, tapes)
		for i := range inputs {
			inputs[i] = &tape{}
		}
		d := newDistributor(inputs)
		// Place 100 runs via the public-ish path (pick/placed).
		for r := 0; r < 100; r++ {
			i := d.pick()
			d.placed[i]++
		}
		d.finalize()
		var placed, total int64
		for i, tp := range inputs {
			if d.placed[i] > d.target[i] {
				t.Fatalf("tape %d overfilled: %d > %d", i, d.placed[i], d.target[i])
			}
			if tp.dummies != d.target[i]-d.placed[i] {
				t.Fatalf("tape %d dummies %d inconsistent", i, tp.dummies)
			}
			placed += d.placed[i]
			total += d.target[i]
		}
		if placed != 100 {
			t.Fatalf("placed %d runs", placed)
		}
		if total < 100 {
			t.Fatalf("targets %d below run count", total)
		}
	}
}

func TestDistributorTwoTapeFibonacci(t *testing.T) {
	// T=3 means two input tapes: the classic Fibonacci distribution.
	inputs := []*tape{{}, {}}
	d := newDistributor(inputs)
	sums := []int64{}
	for l := 0; l < 8; l++ {
		sums = append(sums, d.target[0]+d.target[1])
		d.levelUp()
	}
	want := []int64{2, 3, 5, 8, 13, 21, 34, 55}
	for i := range want {
		if sums[i] != want[i] {
			t.Fatalf("fibonacci totals %v want %v", sums, want)
		}
	}
}

func TestRunFormationEmitsSortedRuns(t *testing.T) {
	// Collect runs from the replacement-selection former and check
	// each is sorted and their union is the input.
	fs := newMemInput(t, record.Uniform.Generate(3000, 5, 1))
	var runs [][]record.Key
	sink := &collectSink{runs: &runs}
	n, total, err := formRuns(fs, "input", 16, 64, ReplacementSelection, accounting(), diskio.Overlap{}, sink)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(len(runs)) || total != 3000 {
		t.Fatalf("n=%d runs=%d total=%d", n, len(runs), total)
	}
	var all []record.Key
	for _, r := range runs {
		if !record.IsSorted(r) {
			t.Fatal("run not sorted")
		}
		all = append(all, r...)
	}
	want := record.ChecksumOf(record.Uniform.Generate(3000, 5, 1))
	if !record.ChecksumOf(all).Equal(want) {
		t.Fatal("runs lost keys")
	}
}

func TestReplacementSelectionAverageRunLength(t *testing.T) {
	// Knuth: expected run length 2M on random input.
	fs := newMemInput(t, record.Uniform.Generate(50000, 9, 1))
	var runs [][]record.Key
	sink := &collectSink{runs: &runs}
	n, total, err := formRuns(fs, "input", 64, 256, ReplacementSelection, accounting(), diskio.Overlap{}, sink)
	if err != nil {
		t.Fatal(err)
	}
	avg := float64(total) / float64(n)
	if avg < 1.6*256 || avg > 2.4*256 {
		t.Fatalf("average run length %v keys, want ~2M=512", avg)
	}
}

func TestLoadSortRunLengthExactlyM(t *testing.T) {
	fs := newMemInput(t, record.Uniform.Generate(1000, 3, 1))
	var runs [][]record.Key
	sink := &collectSink{runs: &runs}
	_, _, err := formRuns(fs, "input", 16, 256, LoadSort, accounting(), diskio.Overlap{}, sink)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range runs[:len(runs)-1] {
		if len(r) != 256 {
			t.Fatalf("run %d length %d, want M=256", i, len(r))
		}
	}
	if last := runs[len(runs)-1]; len(last) != 1000%256 {
		t.Fatalf("last run %d keys", len(last))
	}
}

// Helpers.

func newMemInput(t *testing.T, keys []record.Key) diskio.FS {
	t.Helper()
	fs := diskio.NewMemFS()
	if err := diskio.WriteFile(fs, "input", keys, 64, diskio.Accounting{}); err != nil {
		t.Fatal(err)
	}
	return fs
}

func accounting() diskio.Accounting { return diskio.Accounting{} }

type collectSink struct {
	runs *[][]record.Key
	cur  []record.Key
}

func (c *collectSink) beginRun() error { c.cur = nil; return nil }
func (c *collectSink) emit(k record.Key) error {
	c.cur = append(c.cur, k)
	return nil
}
func (c *collectSink) endRun() error {
	*c.runs = append(*c.runs, c.cur)
	return nil
}

// Quickstart: sort a million integers out of core on a simulated
// 4-node cluster with the library defaults (homogeneous nodes, Fast
// Ethernet, the paper's 8 KiB blocks / 15 tapes / 8K-integer messages).
package main

import (
	"fmt"
	"log"
	"math/rand"

	"hetsort"
)

func main() {
	const n = 1 << 20
	r := rand.New(rand.NewSource(1))
	keys := make([]hetsort.Key, n)
	for i := range keys {
		keys[i] = r.Uint32()
	}

	sorted, report, err := hetsort.Sort(keys, hetsort.Config{})
	if err != nil {
		log.Fatal(err)
	}

	for i := 1; i < len(sorted); i++ {
		if sorted[i] < sorted[i-1] {
			log.Fatal("output not sorted — this should be impossible")
		}
	}
	fmt.Printf("sorted %d keys\n", len(sorted))
	fmt.Print(report.String())
}

package metrics

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// LintExposition validates data against the Prometheus text exposition
// format 0.0.4 the way a promtool-style linter would: metric-name and
// label syntax, float-parsable values, HELP/TYPE placement (at most one
// TYPE per family, before the family's samples), and histogram
// consistency (cumulative buckets, mandatory +Inf equal to `_count`).
// It returns the first violation found, with its line number.
func LintExposition(data []byte) error {
	type familyState struct {
		typ       string
		sawSample bool
		sawHelp   bool
		sawType   bool
	}
	families := make(map[string]*familyState)
	// histogram bookkeeping: per family, per non-le label set, the
	// bucket series and the _count value.
	type histSeries struct {
		buckets []struct {
			le  float64
			cum float64
		}
		count    float64
		hasCount bool
	}
	hists := make(map[string]map[string]*histSeries)

	get := func(name string) *familyState {
		f, ok := families[name]
		if !ok {
			f = &familyState{}
			families[name] = f
		}
		return f
	}

	lines := strings.Split(string(data), "\n")
	for ln, line := range lines {
		lineNo := ln + 1
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			rest := strings.TrimPrefix(line, "#")
			rest = strings.TrimPrefix(rest, " ")
			switch {
			case strings.HasPrefix(rest, "HELP "):
				fields := strings.SplitN(rest[len("HELP "):], " ", 2)
				name := fields[0]
				if !validMetricName(name) {
					return fmt.Errorf("line %d: invalid metric name %q in HELP", lineNo, name)
				}
				f := get(name)
				if f.sawHelp {
					return fmt.Errorf("line %d: second HELP for %s", lineNo, name)
				}
				f.sawHelp = true
			case strings.HasPrefix(rest, "TYPE "):
				fields := strings.Fields(rest[len("TYPE "):])
				if len(fields) != 2 {
					return fmt.Errorf("line %d: malformed TYPE line", lineNo)
				}
				name, typ := fields[0], fields[1]
				if !validMetricName(name) {
					return fmt.Errorf("line %d: invalid metric name %q in TYPE", lineNo, name)
				}
				switch typ {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					return fmt.Errorf("line %d: unknown metric type %q", lineNo, typ)
				}
				f := get(name)
				if f.sawType {
					return fmt.Errorf("line %d: second TYPE for %s", lineNo, name)
				}
				if f.sawSample {
					return fmt.Errorf("line %d: TYPE for %s after its samples", lineNo, name)
				}
				f.sawType = true
				f.typ = typ
			}
			continue // other comments are legal and ignored
		}

		name, labels, value, err := parseSampleLine(line)
		if err != nil {
			return fmt.Errorf("line %d: %v", lineNo, err)
		}
		// Resolve the family: histogram/summary children belong to the
		// base name when a matching TYPE was declared.
		base := name
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			b := strings.TrimSuffix(name, suffix)
			if b != name {
				if f, ok := families[b]; ok && (f.typ == "histogram" || f.typ == "summary") {
					base = b
					break
				}
			}
		}
		f := get(base)
		f.sawSample = true

		if f.typ == "histogram" {
			hs, ok := hists[base]
			if !ok {
				hs = make(map[string]*histSeries)
				hists[base] = hs
			}
			var le string
			var rest []string
			hasLE := false
			for _, l := range labels {
				if l.Name == "le" {
					le, hasLE = l.Value, true
				} else {
					rest = append(rest, l.Name+"="+l.Value)
				}
			}
			sort.Strings(rest)
			key := strings.Join(rest, ",")
			s, ok := hs[key]
			if !ok {
				s = &histSeries{}
				hs[key] = s
			}
			switch {
			case strings.HasSuffix(name, "_bucket"):
				if !hasLE {
					return fmt.Errorf("line %d: %s without an le label", lineNo, name)
				}
				bound, err := parseLE(le)
				if err != nil {
					return fmt.Errorf("line %d: bad le %q: %v", lineNo, le, err)
				}
				s.buckets = append(s.buckets, struct{ le, cum float64 }{bound, value})
			case strings.HasSuffix(name, "_count"):
				s.count, s.hasCount = value, true
			}
		}
	}

	// Post-pass: every histogram label set must have cumulative buckets
	// ending in +Inf that agrees with _count.
	for fam, hs := range hists {
		for key, s := range hs {
			where := fam
			if key != "" {
				where = fam + "{" + key + "}"
			}
			if len(s.buckets) == 0 {
				return fmt.Errorf("histogram %s has no buckets", where)
			}
			sort.Slice(s.buckets, func(a, b int) bool { return s.buckets[a].le < s.buckets[b].le })
			last := s.buckets[len(s.buckets)-1]
			if !isInf(last.le) {
				return fmt.Errorf("histogram %s lacks the +Inf bucket", where)
			}
			prev := -1.0
			for _, b := range s.buckets {
				if b.cum < prev {
					return fmt.Errorf("histogram %s buckets are not cumulative at le=%g", where, b.le)
				}
				prev = b.cum
			}
			if s.hasCount && last.cum != s.count {
				return fmt.Errorf("histogram %s +Inf bucket %g != count %g", where, last.cum, s.count)
			}
		}
	}
	return nil
}

func isInf(v float64) bool { return math.IsInf(v, +1) }

func parseLE(s string) (float64, error) {
	if s == "+Inf" {
		return math.Inf(+1), nil
	}
	return strconv.ParseFloat(s, 64)
}

func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_' || c == ':' ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

func validLabelName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_' ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

// parseSampleLine parses `name{l="v",...} value [timestamp]`.
func parseSampleLine(line string) (string, []Label, float64, error) {
	i := 0
	for i < len(line) && line[i] != '{' && line[i] != ' ' && line[i] != '\t' {
		i++
	}
	name := line[:i]
	if !validMetricName(name) {
		return "", nil, 0, fmt.Errorf("invalid metric name %q", name)
	}
	var labels []Label
	if i < len(line) && line[i] == '{' {
		i++
		for {
			for i < len(line) && (line[i] == ' ' || line[i] == ',') {
				i++
			}
			if i < len(line) && line[i] == '}' {
				i++
				break
			}
			start := i
			for i < len(line) && line[i] != '=' {
				i++
			}
			if i == len(line) {
				return "", nil, 0, fmt.Errorf("unterminated label list")
			}
			lname := line[start:i]
			if !validLabelName(lname) {
				return "", nil, 0, fmt.Errorf("invalid label name %q", lname)
			}
			i++ // '='
			if i >= len(line) || line[i] != '"' {
				return "", nil, 0, fmt.Errorf("label %s: value is not quoted", lname)
			}
			i++
			var val strings.Builder
			closed := false
			for i < len(line) {
				c := line[i]
				if c == '\\' {
					if i+1 >= len(line) {
						return "", nil, 0, fmt.Errorf("label %s: dangling escape", lname)
					}
					switch line[i+1] {
					case '\\':
						val.WriteByte('\\')
					case '"':
						val.WriteByte('"')
					case 'n':
						val.WriteByte('\n')
					default:
						return "", nil, 0, fmt.Errorf("label %s: invalid escape \\%c", lname, line[i+1])
					}
					i += 2
					continue
				}
				if c == '"' {
					closed = true
					i++
					break
				}
				val.WriteByte(c)
				i++
			}
			if !closed {
				return "", nil, 0, fmt.Errorf("label %s: unterminated value", lname)
			}
			labels = append(labels, Label{Name: lname, Value: val.String()})
		}
	}
	rest := strings.Fields(line[i:])
	if len(rest) < 1 || len(rest) > 2 {
		return "", nil, 0, fmt.Errorf("expected value [timestamp] after %s, got %q", name, line[i:])
	}
	v, err := strconv.ParseFloat(rest[0], 64)
	if err != nil {
		return "", nil, 0, fmt.Errorf("bad value %q: %v", rest[0], err)
	}
	if len(rest) == 2 {
		if _, err := strconv.ParseInt(rest[1], 10, 64); err != nil {
			return "", nil, 0, fmt.Errorf("bad timestamp %q: %v", rest[1], err)
		}
	}
	return name, labels, v, nil
}

package merkle

import (
	"crypto/sha256"
	"fmt"
	"testing"
)

func leaf(name, content string) Leaf {
	return Leaf{Name: name, Sum: sha256.Sum256([]byte(content))}
}

func mustTree(t *testing.T, leaves []Leaf) *Tree {
	t.Helper()
	tr, err := New(leaves)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestRootDeterministicAndOrderIndependent(t *testing.T) {
	a := mustTree(t, []Leaf{leaf("a", "1"), leaf("b", "2"), leaf("c", "3")})
	b := mustTree(t, []Leaf{leaf("c", "3"), leaf("a", "1"), leaf("b", "2")})
	if a.Root() != b.Root() {
		t.Fatal("root depends on input order")
	}
}

func TestRootSensitivity(t *testing.T) {
	base := mustTree(t, []Leaf{leaf("a", "1"), leaf("b", "2")}).Root()
	cases := map[string]*Tree{
		"content changed": mustTree(t, []Leaf{leaf("a", "1"), leaf("b", "2!")}),
		"name changed":    mustTree(t, []Leaf{leaf("a", "1"), leaf("z", "2")}),
		"leaf added":      mustTree(t, []Leaf{leaf("a", "1"), leaf("b", "2"), leaf("c", "3")}),
		"leaf removed":    mustTree(t, []Leaf{leaf("a", "1")}),
		"names swapped":   mustTree(t, []Leaf{leaf("a", "2"), leaf("b", "1")}),
	}
	for what, tr := range cases {
		if tr.Root() == base {
			t.Errorf("%s: root unchanged", what)
		}
	}
}

func TestDuplicateNameRejected(t *testing.T) {
	if _, err := New([]Leaf{leaf("a", "1"), leaf("a", "2")}); err == nil {
		t.Fatal("duplicate leaf name accepted")
	}
}

func TestEmptyAndSingle(t *testing.T) {
	e := mustTree(t, nil)
	if e.Root() != EmptyRoot() {
		t.Fatal("empty tree root != EmptyRoot")
	}
	s := mustTree(t, []Leaf{leaf("only", "x")})
	if s.Root() != LeafHash(leaf("only", "x")) {
		t.Fatal("single-leaf root should be the leaf hash")
	}
	if s.Root() == e.Root() {
		t.Fatal("single-leaf root collides with empty root")
	}
}

func TestLeafVsInteriorDomainSeparation(t *testing.T) {
	// A two-leaf root must not equal any single leaf hash built from the
	// concatenated children (tagLeaf vs tagNode prefixes).
	l1, l2 := leaf("a", "1"), leaf("b", "2")
	tr := mustTree(t, []Leaf{l1, l2})
	h1, h2 := LeafHash(l1), LeafHash(l2)
	var concat []byte
	concat = append(concat, h1[:]...)
	concat = append(concat, h2[:]...)
	if tr.Root() == sha256.Sum256(concat) {
		t.Fatal("interior hash lacks domain separation")
	}
}

func TestProofsAllSizes(t *testing.T) {
	for n := 1; n <= 17; n++ {
		var leaves []Leaf
		for i := 0; i < n; i++ {
			leaves = append(leaves, leaf(fmt.Sprintf("f%03d", i), fmt.Sprintf("content-%d", i)))
		}
		tr := mustTree(t, leaves)
		root := tr.Root()
		for _, l := range leaves {
			proof, err := tr.Proof(l.Name)
			if err != nil {
				t.Fatalf("n=%d proof(%s): %v", n, l.Name, err)
			}
			if !VerifyProof(root, l, proof) {
				t.Fatalf("n=%d: valid proof for %s rejected", n, l.Name)
			}
			bad := l
			bad.Sum[0] ^= 1
			if VerifyProof(root, bad, proof) {
				t.Fatalf("n=%d: corrupted leaf %s verified", n, l.Name)
			}
		}
	}
}

func TestProofMissingLeaf(t *testing.T) {
	tr := mustTree(t, []Leaf{leaf("a", "1")})
	if _, err := tr.Proof("ghost"); err == nil {
		t.Fatal("proof for missing leaf accepted")
	}
}

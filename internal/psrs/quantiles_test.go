package psrs

import (
	"testing"

	"hetsort/internal/perf"
	"hetsort/internal/record"
	"hetsort/internal/sampling"
)

func TestQuantilesSortHomogeneous(t *testing.T) {
	v := perf.Homogeneous(4)
	c := newCluster(t, v)
	keys := record.Uniform.Generate(40000, 21, 4)
	res, err := Sort(c, Config{Perf: v, Strategy: Quantiles}, splitPortions(keys, v))
	if err != nil {
		t.Fatal(err)
	}
	verifyGlobalSort(t, res, keys)
	// Quantile pivots should balance within the sketch error band.
	if exp := sampling.SublistExpansion(res.PartitionSizes); exp > 1.15 {
		t.Fatalf("expansion %v too high for eps=0.01 sketches", exp)
	}
}

func TestQuantilesSortHeterogeneous(t *testing.T) {
	v := perf.Vector{1, 1, 4, 4}
	c := newCluster(t, v)
	n := v.NearestValidSize(40000)
	keys := record.Uniform.Generate(int(n), 22, 4)
	res, err := Sort(c, Config{Perf: v, Strategy: Quantiles, QuantileEps: 0.005},
		splitPortions(keys, v))
	if err != nil {
		t.Fatal(err)
	}
	verifyGlobalSort(t, res, keys)
	exp, err := sampling.WeightedExpansion(res.PartitionSizes, v)
	if err != nil {
		t.Fatal(err)
	}
	// Quantile pivots are not grid-limited like regular sampling, so
	// the weighted expansion should beat the 1.25 quantization band.
	if exp > 1.15 {
		t.Fatalf("weighted expansion %v — quantile pivots should balance better", exp)
	}
}

func TestQuantilesAllDistributions(t *testing.T) {
	v := perf.Vector{1, 2}
	for _, d := range record.Distributions() {
		t.Run(d.String(), func(t *testing.T) {
			c := newCluster(t, v)
			n := v.NearestValidSize(9000)
			keys := d.Generate(int(n), 23, 2)
			res, err := Sort(c, Config{Perf: v, Strategy: Quantiles}, splitPortions(keys, v))
			if err != nil {
				t.Fatal(err)
			}
			verifyGlobalSort(t, res, keys)
		})
	}
}

func TestQuantilesStrategyString(t *testing.T) {
	if Quantiles.String() != "quantiles" {
		t.Fatal("strategy string")
	}
	if Strategy(99).String() == "" {
		t.Fatal("unknown strategy string empty")
	}
}

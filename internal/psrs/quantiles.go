package psrs

import (
	"fmt"

	"hetsort/internal/cluster"
	"hetsort/internal/quantile"
	"hetsort/internal/record"
	"hetsort/internal/sampling"
)

// sortQuantiles is the variant of [29] (Cérin & Gaudiot, HiPC 2000)
// the paper references in section 3.2: pivots come from ε-approximate
// quantile summaries instead of regular samples of the sorted portions.
// Each node streams its *unsorted* portion through a Greenwald-Khanna
// sketch (so pivot selection does not depend on the local sort), ships
// the compressed sketch to node 0, which merges them and reads the
// p-1 pivots off the cumulative-performance quantiles.  The remaining
// phases are identical to PSRS.
func sortQuantiles(n *cluster.Node, cfg Config, portion []record.Key) ([]record.Key, error) {
	p, id := n.P(), n.ID()

	// Build the sketch over the unsorted data (one streaming pass).
	// Only the exact zero value means "unset": the old `eps <= 0` test
	// silently defaulted negatives but waved NaN through to the sketch
	// (NaN comparisons are false).  Now every other value — NaN
	// included — reaches quantile.New, whose range check rejects it.
	eps := cfg.QuantileEps
	if eps == 0 {
		eps = 0.01
	}
	sk, err := quantile.New(eps)
	if err != nil {
		return nil, err
	}
	sk.InsertAll(portion)
	n.ChargeCompute(int64(len(portion))) // ~O(1) amortised per insert

	// Serialise as (values, weights) and gather on node 0.  Weights
	// normally fit a key (portions are < 2^32); a wider weight is a
	// surfaced error, never a silent clamp.
	vals, weights := sk.Export()
	wk, err := quantile.WeightsToKeys(weights)
	if err != nil {
		return nil, fmt.Errorf("psrs: exporting sketch weights: %w", err)
	}
	gv, err := n.Gather(0, tagQVals, vals)
	if err != nil {
		return nil, err
	}
	gw, err := n.Gather(0, tagQWeights, wk)
	if err != nil {
		return nil, err
	}

	var pivots []record.Key
	if id == 0 {
		merged, err := quantile.New(eps)
		if err != nil {
			return nil, err
		}
		for i := range gv {
			ws := make([]int64, len(gw[i]))
			for j, w := range gw[i] {
				ws[j] = int64(w)
			}
			s, err := quantile.FromExport(eps, gv[i], ws)
			if err != nil {
				return nil, fmt.Errorf("psrs: node %d sketch: %w", i, err)
			}
			merged.Merge(s)
		}
		n.ChargeCompute(int64(merged.TupleCount()) * 8)
		sum := cfg.Perf.Sum()
		pivots = make([]record.Key, p-1)
		var cum int64
		for j := 0; j < p-1; j++ {
			cum += int64(cfg.Perf[j])
			pv, err := merged.Query(float64(cum) / float64(sum))
			if err != nil {
				return nil, err
			}
			pivots[j] = pv
		}
	}
	pivots, err = n.Bcast(0, tagPivots, pivots)
	if err != nil {
		return nil, err
	}

	// Local sort happens after pivot selection in this variant.
	local := localSort(n, portion)
	cuts := sampling.Boundaries(local, pivots)
	return exchangeAndMerge(n, local, cuts)
}

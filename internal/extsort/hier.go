package extsort

import (
	"errors"
	"fmt"
	"io"
	"os"

	"hetsort/internal/cluster"
	"hetsort/internal/diskio"
	"hetsort/internal/polyphase"
	"hetsort/internal/record"
	"hetsort/internal/trace"
)

// tagRoundBase tags the hierarchical redistribution traffic: round t
// uses tagRoundBase + t, so late rounds queue behind earlier ones on a
// shared link (per-link FIFO) without inter-round barriers.
const tagRoundBase = 400

// hier reports whether this run takes the hierarchical steps 2+4.
func (w *worker) hier() bool {
	return w.cfg.Topology != TopologyFlat && w.n.P() > 1
}

// collRadix is the fan-in of this run's collective tree.
func (w *worker) collRadix() int {
	return collectiveRadix(w.n.P(), w.cfg.Topology, w.cfg.Radix)
}

// The step-2 collectives and the inter-step barriers dispatch on the
// topology: hierarchical runs route every collective through the
// radix-r tree so no node's fan-in exceeds r−1, flat runs keep
// Algorithm 1's star.  TreeGather delivers the root the exact per-rank
// slices of the flat Gather, so the strategies built on these wrappers
// produce bit-identical pivots on either topology.

func (w *worker) barrier(tag int) error {
	if w.hier() {
		return w.n.TreeBarrier(w.collRadix(), tag)
	}
	return w.n.Barrier(tag)
}

func (w *worker) gather(tag int, keys []record.Key) ([][]record.Key, error) {
	if w.hier() {
		return w.n.TreeGather(w.collRadix(), tag, keys)
	}
	return w.n.Gather(0, tag, keys)
}

func (w *worker) bcast(tag int, keys []record.Key) ([]record.Key, error) {
	if w.hier() {
		return w.n.TreeBcast(w.collRadix(), tag, keys)
	}
	return w.n.Bcast(0, tag, keys)
}

func (w *worker) allGather(tag int, keys []record.Key) ([]record.Key, error) {
	if w.hier() {
		return w.n.TreeAllGather(w.collRadix(), tag, keys)
	}
	return w.n.AllGather(tag, keys)
}

// bucketName is the file holding this node's round-t bucket for
// destination d: round 0 reads straight from the step-3 segment files,
// later rounds from the merged intermediates.
func (w *worker) bucketName(t, d int) string {
	if t == 0 {
		return w.segName(d)
	}
	return fmt.Sprintf("hetsort.rt%d.d%d", t, d)
}

// hierRoundPrefix prefixes every intermediate bucket file, for the
// phase-5 sweep that clears stale intermediates a recovered run may
// have left behind.
const hierRoundPrefix = "hetsort.rt"

// hierLevels returns this run's refinement levels.
func (w *worker) hierLevels() []int {
	return topoLevels(w.n.P(), w.cfg.Topology, w.cfg.Radix)
}

// hierFinalFanIn is the final round's stream fan-in at this node (its
// in-neighbors plus its own bucket).
func (w *worker) hierFinalFanIn() int {
	lv := w.hierLevels()
	return len(roundInNeighbors(w.n.ID(), lv[len(lv)-2], 1, w.n.P())) + 1
}

// hierFinalInputs recomputes the final-merge input files — the node's
// own last-round bucket plus one receive file per final-round
// in-neighbor — without executing any round.  A resumed node that
// already committed phase 4 uses this to locate the durable inputs its
// manifest listed.
func (w *worker) hierFinalInputs() []string {
	lv := w.hierLevels()
	T := len(lv) - 1
	names := []string{w.bucketName(T-1, w.n.ID())}
	for _, i := range roundInNeighbors(w.n.ID(), lv[T-1], 1, w.n.P()) {
		names = append(names, w.recvName(i))
	}
	return names
}

// hierPipelineFits reports whether the fused final round fits memory:
// one message buffer and one spill-writer block per incoming stream,
// plus the own-bucket reader's and the output writer's blocks.  The
// hierarchical fan-in is O(r), so at large p this fits where the flat
// path's p-way fan-in cannot.
func (c Config) hierPipelineFits(fanIn int) bool {
	return (c.MessageKeys+c.BlockKeys)*fanIn+2*c.BlockKeys <= c.MemoryKeys
}

// redistributeHier is step 4 on a tree or grid topology: ⌈log_r p⌉
// rounds of r-way exchanges in place of the flat all-to-all.  Round t
// refines rank blocks of lv[t] nodes into sub-blocks of lv[t+1]: every
// node streams each of its buckets to the representative of the
// destination's sub-block (routeStep) and merges the incoming streams
// per destination with its own bucket, so after the last round (sub-
// blocks of 1) node d holds exactly partition d.  Each round is
// send-all-then-receive-all on its own tag; buffered links make sends
// non-blocking and per-link FIFO keeps rounds ordered, so no
// inter-round barrier is needed and no node ever holds more than its
// round in-degree of open streams.
//
// All nodes run all rounds — on a resumed run the nodes already past
// phase 4 act as pure forwarders, re-routing the needy destinations'
// data from their retained segment files — and both senders and
// receivers apply the same needy filter, so only lost partitions flow.
// Returns the final-merge input files and their key counts (for the
// phase-4 manifest), and whether the output was already merged
// in-stream (Pipeline).
func (w *worker) redistributeHier(needy []bool, pipelined bool) (inputs []string, counts []int64, merged bool, err error) {
	n := w.n
	p, id := n.P(), n.ID()
	lv := w.hierLevels()
	T := len(lv) - 1
	n.Metrics().Gauge("redist.rounds").Set(float64(T))
	maxFan := 1
	for t := 0; t < T; t++ {
		s, sub := lv[t], lv[t+1]
		tag := tagRoundBase + t
		endRound := n.TracePhase(fmt.Sprintf("%s/round%d", StepNames[3], t))

		// Send half: every bucket whose destination's sub-block is led
		// elsewhere streams to that sub-block's representative,
		// destinations in ascending order (the receivers drain in the
		// same order; per-link FIFO aligns the frames).
		bs := id / s * s
		hi := bs + s
		if hi > p {
			hi = p
		}
		var sent int64
		for lo := bs; lo < hi; lo += sub {
			subEnd := lo + sub
			if subEnd > hi {
				subEnd = hi
			}
			rep := routeStep(id, lo, s, sub, p)
			if rep == id {
				continue // own sub-block: buckets stay local
			}
			for d := lo; d < subEnd; d++ {
				if !needy[d] {
					continue
				}
				k, serr := w.sendBucket(rep, tag, t, d)
				if serr != nil {
					endRound()
					return nil, nil, false, serr
				}
				sent += k
			}
		}
		n.Metrics().Counter(fmt.Sprintf("redist.r%d.sent.keys", t)).Add(sent)

		// Receive half: merge own bucket with the in-neighbors' streams
		// for every needy destination of the node's new sub-block.
		nbrs := roundInNeighbors(id, s, sub, p)
		if f := len(nbrs) + 1; f > maxFan {
			maxFan = f
		}
		n.Metrics().Gauge(fmt.Sprintf("redist.r%d.fanin", t)).Set(float64(len(nbrs) + 1))
		if sub == 1 {
			// Final round: the destination is the node itself.
			if needy[id] {
				if pipelined {
					inputs, counts, err = w.fuseFinal(t, tag, nbrs)
					merged = err == nil
				} else {
					inputs, counts, err = w.spoolFinal(t, tag, nbrs)
				}
				if err != nil {
					endRound()
					return nil, nil, false, err
				}
			}
		} else {
			slo := id / sub * sub
			sEnd := slo + sub
			if sEnd > hi {
				sEnd = hi
			}
			for d := slo; d < sEnd; d++ {
				if !needy[d] {
					continue
				}
				if err := w.mergeRoundDest(t, tag, d, nbrs); err != nil {
					endRound()
					return nil, nil, false, err
				}
			}
		}
		n.Metrics().Gauge(fmt.Sprintf("redist.r%d.queue.hwm", t)).Set(float64(n.MaxInQueueHWM()))
		endRound()
	}
	n.Metrics().Gauge("redist.fanin.streams").Set(float64(maxFan))
	if !needy[id] {
		// A forwarder's final-merge inputs are the durable files its
		// earlier phase-4 manifest listed.
		inputs = w.hierFinalInputs()
	}
	return inputs, counts, merged, nil
}

// removeBucket applies the retention rules after a bucket was consumed
// (sent or merged forward): intermediates go unless debugging keeps
// them; round-0 buckets are the step-3 segments, retained under
// Checkpoint for peers' recoveries exactly like the flat path.
func (w *worker) removeBucket(t, d int) error {
	if w.cfg.KeepIntermediates || (t == 0 && w.cfg.Checkpoint) {
		return nil
	}
	if err := w.n.FS().Remove(w.bucketName(t, d)); err != nil && !errors.Is(err, os.ErrNotExist) {
		return err
	}
	return nil
}

// sendBucket streams this node's round-t bucket for destination d to
// node `to` in MessageKeys-sized pooled messages, terminated by the
// zero-length sentinel, and returns the key count sent.  Mirrors the
// flat sendSegments framing, per destination.
func (w *worker) sendBucket(to, tag, t, d int) (int64, error) {
	n, cfg := w.n, w.cfg
	name := w.bucketName(t, d)
	f, err := n.FS().Open(name)
	if err != nil {
		return 0, err
	}
	r := diskio.NewBlockReader(f, cfg.BlockKeys, n.Acct(), w.overlap())
	var sent int64
	for {
		buf := n.AcquireBuf(cfg.MessageKeys)
		cnt, rerr := r.ReadKeys(buf)
		if cnt > 0 {
			if err := n.SendOwned(to, tag, buf[:cnt]); err != nil {
				r.Release()
				f.Close()
				return sent, err
			}
			sent += int64(cnt)
		} else {
			n.ReleaseBuf(buf)
		}
		if rerr == io.EOF || cnt == 0 {
			break
		}
		if rerr != nil {
			r.Release()
			f.Close()
			return sent, rerr
		}
	}
	r.Release()
	if err := f.Close(); err != nil {
		return sent, err
	}
	if err := n.SendOwned(to, tag, nil); err != nil {
		return sent, err
	}
	return sent, w.removeBucket(t, d)
}

// mergeRoundDest merges this node's round-t bucket for destination d
// with the per-neighbor incoming streams into the round-(t+1) bucket.
// With no in-neighbors the bucket advances by rename — except a
// round-0 segment that checkpointing must retain, which is copied with
// counted I/O instead.
func (w *worker) mergeRoundDest(t, tag, d int, nbrs []int) error {
	n, cfg := w.n, w.cfg
	old, next := w.bucketName(t, d), w.bucketName(t+1, d)
	if len(nbrs) == 0 {
		if t == 0 && (cfg.Checkpoint || cfg.KeepIntermediates) {
			return polyphase.MergeFiles(w.polyCfg("hetsort.s4."), []string{old}, next)
		}
		return n.FS().Rename(old, next)
	}
	f, err := n.FS().Open(old)
	if err != nil {
		return err
	}
	r := diskio.NewBlockReader(f, cfg.BlockKeys, n.Acct(), w.overlap())
	streams := make([]*cluster.Stream, len(nbrs))
	srcs := make([]polyphase.MergeSource, 0, len(nbrs)+1)
	srcs = append(srcs, r)
	for i, nb := range nbrs {
		streams[i] = n.OpenStream(nb, tag)
		srcs = append(srcs, streams[i])
	}
	closeAll := func() {
		for _, s := range streams {
			s.Close()
		}
		r.Release()
		f.Close()
	}
	outFile, err := n.FS().Create(next)
	if err != nil {
		closeAll()
		return err
	}
	out := diskio.NewBlockWriter(outFile, cfg.BlockKeys, n.Acct(), w.overlap())
	if err := polyphase.MergeOpt(srcs, n, out.WriteKeys, polyphase.MergeOptions{NoGallop: w.cfg.NoGalloping}); err != nil {
		out.Close()
		outFile.Close()
		closeAll()
		return err
	}
	closeAll()
	if err := out.Close(); err != nil {
		outFile.Close()
		return err
	}
	if err := outFile.Close(); err != nil {
		return err
	}
	return w.removeBucket(t, d)
}

// fuseFinal is the pipelined final round: the own-bucket reader and
// the in-neighbor streams merge straight into the output file (steps
// 4+5 fused), teeing the streams to durable receive files when
// checkpointing, exactly like the flat pipelineMerge but with O(r)
// fan-in.  Returns the manifest inputs and counts.
func (w *worker) fuseFinal(t, tag int, nbrs []int) (inputs []string, counts []int64, err error) {
	n, cfg := w.n, w.cfg
	own := w.bucketName(t, n.ID())
	ownKeys, err := diskio.CountKeys(n.FS(), own)
	if err != nil {
		return nil, nil, err
	}
	f, err := n.FS().Open(own)
	if err != nil {
		return nil, nil, err
	}
	r := diskio.NewBlockReader(f, cfg.BlockKeys, n.Acct(), w.overlap())
	streams := make([]*cluster.Stream, len(nbrs))
	spillFiles := make([]diskio.File, len(nbrs))
	spillW := make([]diskio.BlockWriter, len(nbrs))
	defer func() {
		for _, s := range streams {
			if s != nil {
				s.Close()
			}
		}
		r.Release()
		f.Close()
		for i := range spillW {
			if spillW[i] != nil {
				if cerr := spillW[i].Close(); cerr != nil && err == nil {
					err = cerr
				}
			}
			if spillFiles[i] != nil {
				if cerr := spillFiles[i].Close(); cerr != nil && err == nil {
					err = cerr
				}
			}
		}
	}()
	srcs := make([]polyphase.MergeSource, 0, len(nbrs)+1)
	srcs = append(srcs, r)
	for i, nb := range nbrs {
		s := n.OpenStream(nb, tag)
		if cfg.Checkpoint {
			sf, cerr := n.FS().Create(w.recvName(nb))
			if cerr != nil {
				return nil, nil, cerr
			}
			wr := diskio.NewBlockWriter(sf, cfg.BlockKeys, n.Acct(), w.overlap())
			spillFiles[i], spillW[i] = sf, wr
			s.Tee = wr.WriteKeys
		}
		streams[i] = s
		srcs = append(srcs, s)
	}
	mode := "fused"
	if cfg.Checkpoint {
		mode = "spill"
	}
	n.TraceEvent(trace.Pipeline, mode, fmt.Sprintf("fan-in:%d msg:%d", len(nbrs)+1, cfg.MessageKeys))
	outFile, err := n.FS().Create(w.output)
	if err != nil {
		return nil, nil, err
	}
	out := diskio.NewBlockWriter(outFile, cfg.BlockKeys, n.Acct(), w.overlap())
	if err := polyphase.MergeOpt(srcs, n, out.WriteKeys, polyphase.MergeOptions{NoGallop: w.cfg.NoGalloping}); err != nil {
		out.Close()
		outFile.Close()
		return nil, nil, err
	}
	if err := out.Close(); err != nil {
		outFile.Close()
		return nil, nil, err
	}
	if err := outFile.Close(); err != nil {
		return nil, nil, err
	}
	inputs = []string{own}
	counts = []int64{ownKeys}
	for i, s := range streams {
		inputs = append(inputs, w.recvName(nbrs[i]))
		counts = append(counts, s.Received())
	}
	return inputs, counts, nil
}

// spoolFinal is the barrier-path final round: each in-neighbor's
// stream spools to its receive file; the own bucket stays on disk.
// Step 5 merges them all.
func (w *worker) spoolFinal(t, tag int, nbrs []int) (inputs []string, counts []int64, err error) {
	n, cfg := w.n, w.cfg
	own := w.bucketName(t, n.ID())
	ownKeys, err := diskio.CountKeys(n.FS(), own)
	if err != nil {
		return nil, nil, err
	}
	inputs = []string{own}
	counts = []int64{ownKeys}
	for _, nb := range nbrs {
		f, err := n.FS().Create(w.recvName(nb))
		if err != nil {
			return nil, nil, err
		}
		wr := diskio.NewBlockWriter(f, cfg.BlockKeys, n.Acct(), w.overlap())
		for {
			keys, err := n.Recv(nb, tag)
			if err != nil {
				wr.Close()
				f.Close()
				return nil, nil, err
			}
			if len(keys) == 0 {
				break
			}
			werr := wr.WriteKeys(keys)
			n.ReleaseBuf(keys)
			if werr != nil {
				wr.Close()
				f.Close()
				return nil, nil, werr
			}
		}
		inputs = append(inputs, w.recvName(nb))
		counts = append(counts, wr.KeysWritten())
		if err := wr.Close(); err != nil {
			f.Close()
			return nil, nil, err
		}
		if err := f.Close(); err != nil {
			return nil, nil, err
		}
	}
	return inputs, counts, nil
}

// cleanStaleRounds removes any leftover intermediate bucket files —
// a crashed hierarchical run can orphan rt files for destinations that
// were no longer needy on the retry.  Swept once, after phase 5
// commits.
func (w *worker) cleanStaleRounds() error {
	names, err := w.n.FS().Names()
	if err != nil {
		return err
	}
	for _, name := range names {
		if len(name) >= len(hierRoundPrefix) && name[:len(hierRoundPrefix)] == hierRoundPrefix {
			if err := w.n.FS().Remove(name); err != nil && !errors.Is(err, os.ErrNotExist) {
				return err
			}
		}
	}
	return nil
}

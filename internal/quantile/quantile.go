// Package quantile implements an ε-approximate streaming quantile
// summary (Greenwald & Khanna, SIGMOD 2001).  The paper cites its own
// companion work [29] showing that "the notion of quantiles can be used
// to partition the inputs in chunks of almost equal sizes and lead to
// an algorithm that is less memory consuming than the original PSRS":
// instead of sorting locally before sampling, each node streams its
// portion through a small summary and the pivot quantiles are answered
// from the merged summaries.
//
// A summary over n inserted keys answers any rank query within ε·n of
// the true rank while storing O((1/ε)·log(ε·n)) tuples.
package quantile

import (
	"errors"
	"fmt"
	"math"
	"slices"

	"hetsort/internal/record"
)

// tuple is one GK entry: value v covers g ranks ending at rmin(v), with
// uncertainty delta.
type tuple struct {
	v     record.Key
	g     int64
	delta int64
}

// Summary is an ε-approximate quantile sketch.  Not safe for concurrent
// use.
type Summary struct {
	eps    float64
	tuples []tuple
	n      int64
	// buffer batches inserts so compression amortises.
	buffer []record.Key
}

// New returns an empty summary with error bound eps in (0, 1).  The
// range check is written in negated form so NaN — for which both
// eps <= 0 and eps >= 1 are false — is rejected rather than producing a
// summary that never compresses.
func New(eps float64) (*Summary, error) {
	if !(eps > 0 && eps < 1) {
		return nil, fmt.Errorf("quantile: eps=%v out of (0,1)", eps)
	}
	return &Summary{eps: eps}, nil
}

// Epsilon returns the summary's error bound.
func (s *Summary) Epsilon() float64 { return s.eps }

// Count returns the number of keys inserted.
func (s *Summary) Count() int64 { return s.n + int64(len(s.buffer)) }

// Insert adds one key to the stream.
func (s *Summary) Insert(k record.Key) {
	s.buffer = append(s.buffer, k)
	if len(s.buffer) >= s.batchSize() {
		s.flush()
	}
}

// InsertAll adds all keys.
func (s *Summary) InsertAll(keys []record.Key) {
	for _, k := range keys {
		s.Insert(k)
	}
}

func (s *Summary) batchSize() int {
	b := int(1 / (2 * s.eps))
	if b < 16 {
		b = 16
	}
	return b
}

// flush merges the buffered keys into the tuple list and compresses.
func (s *Summary) flush() {
	if len(s.buffer) == 0 {
		return
	}
	slices.Sort(s.buffer)
	merged := make([]tuple, 0, len(s.tuples)+len(s.buffer))
	ti := 0
	for _, v := range s.buffer {
		for ti < len(s.tuples) && s.tuples[ti].v <= v {
			merged = append(merged, s.tuples[ti])
			ti++
		}
		var delta int64
		if s.n > 0 && len(merged) > 0 && ti < len(s.tuples) {
			// Interior insertion inherits the local uncertainty.
			delta = int64(2*s.eps*float64(s.n+int64(len(s.buffer)))) - 1
			if delta < 0 {
				delta = 0
			}
		}
		merged = append(merged, tuple{v: v, g: 1, delta: delta})
	}
	merged = append(merged, s.tuples[ti:]...)
	s.tuples = merged
	s.n += int64(len(s.buffer))
	s.buffer = s.buffer[:0]
	s.compress()
}

// compress removes tuples whose combined span stays within the error
// bound 2*eps*n.
func (s *Summary) compress() {
	if len(s.tuples) < 3 {
		return
	}
	limit := int64(2 * s.eps * float64(s.n))
	out := s.tuples[:0]
	out = append(out, s.tuples[0])
	for i := 1; i < len(s.tuples)-1; i++ {
		t := s.tuples[i]
		last := &out[len(out)-1]
		// Try to merge t into its successor by accumulating g; GK
		// merges into the next tuple, we merge into the previous for
		// a simpler scan with the same bound.
		if len(out) > 1 && last.g+t.g+t.delta <= limit {
			// Absorb the previous tuple into t.
			t.g += last.g
			out[len(out)-1] = t
		} else {
			out = append(out, t)
		}
	}
	out = append(out, s.tuples[len(s.tuples)-1])
	s.tuples = out
}

// Query returns a key whose rank is within eps*Count of phi*Count, for
// phi in [0, 1].  It errors on an empty summary.
func (s *Summary) Query(phi float64) (record.Key, error) {
	s.flush()
	if s.n == 0 {
		return 0, errors.New("quantile: empty summary")
	}
	if phi < 0 {
		phi = 0
	}
	if phi > 1 {
		phi = 1
	}
	target := int64(math.Ceil(phi * float64(s.n)))
	if target < 1 {
		target = 1
	}
	bound := int64(s.eps * float64(s.n))
	var rmin int64
	for i, t := range s.tuples {
		rmin += t.g
		rmax := rmin + t.delta
		if target-rmin <= bound && rmax-target <= bound {
			return t.v, nil
		}
		if i == len(s.tuples)-1 {
			return t.v, nil
		}
	}
	return s.tuples[len(s.tuples)-1].v, nil
}

// TupleCount returns the current sketch size (for memory assertions).
func (s *Summary) TupleCount() int {
	s.flush()
	return len(s.tuples)
}

// Merge folds other into s.  The resulting summary answers queries over
// the union with error at most eps_s + eps_other (we keep s.eps and the
// caller should size epsilons accordingly).
func (s *Summary) Merge(other *Summary) {
	other.flush()
	s.flush()
	if other.n == 0 {
		return
	}
	merged := make([]tuple, 0, len(s.tuples)+len(other.tuples))
	i, j := 0, 0
	for i < len(s.tuples) && j < len(other.tuples) {
		if s.tuples[i].v <= other.tuples[j].v {
			merged = append(merged, s.tuples[i])
			i++
		} else {
			merged = append(merged, other.tuples[j])
			j++
		}
	}
	merged = append(merged, s.tuples[i:]...)
	merged = append(merged, other.tuples[j:]...)
	s.tuples = merged
	s.n += other.n
	s.compress()
}

// Export serialises the summary as (value, weight) pairs whose weights
// sum to Count.  Used to ship summaries between nodes as plain keys.
func (s *Summary) Export() (values []record.Key, weights []int64) {
	s.flush()
	values = make([]record.Key, len(s.tuples))
	weights = make([]int64, len(s.tuples))
	for i, t := range s.tuples {
		values[i] = t.v
		weights[i] = t.g
	}
	return values, weights
}

// WeightsToKeys converts exported weights to wire keys for the
// key-slice collectives, surfacing overflow as an error: a weight wider
// than the 32-bit wire format would otherwise truncate silently and
// corrupt every rank the merged sketch answers.
func WeightsToKeys(weights []int64) ([]record.Key, error) {
	out := make([]record.Key, len(weights))
	for i, w := range weights {
		if w < 0 || w > int64(^record.Key(0)) {
			return nil, fmt.Errorf("quantile: weight %d overflows the 32-bit wire format", w)
		}
		out[i] = record.Key(w)
	}
	return out, nil
}

// FromExport rebuilds a summary from Export output.
func FromExport(eps float64, values []record.Key, weights []int64) (*Summary, error) {
	if len(values) != len(weights) {
		return nil, errors.New("quantile: ragged export")
	}
	s, err := New(eps)
	if err != nil {
		return nil, err
	}
	s.tuples = make([]tuple, len(values))
	for i := range values {
		if i > 0 && values[i] < values[i-1] {
			return nil, errors.New("quantile: export not sorted")
		}
		if weights[i] <= 0 {
			return nil, errors.New("quantile: non-positive weight")
		}
		s.tuples[i] = tuple{v: values[i], g: weights[i]}
		s.n += weights[i]
	}
	return s, nil
}

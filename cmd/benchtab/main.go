// Command benchtab regenerates every table, figure and in-text result
// of the paper's evaluation and prints the measured (virtual-time)
// values side by side with the paper's numbers.
//
// Usage:
//
//	benchtab                     # whole suite at the default 1/64 scale
//	benchtab -shift 0 -trials 30 # the paper's full input sizes and repetitions (slow)
//	benchtab -experiment table3  # a single experiment
//	benchtab -experiment pipeline -cpuprofile cpu.pprof
//
// Experiments: table1, table2, calibration, packets, table3, speedups,
// figure1, distributions, ablations, checkpoint, pipeline, pdm, overlap,
// attribution, scaling, histsort, regress, all.
//
// The regress experiment (not part of "all") is the perf-regression
// gate: it re-runs the pipeline, pdm and histsort ablations and the
// scaling sweep at the scales recorded in the committed
// BENCH_pipeline.json, BENCH_pdm.json, BENCH_histsort.json and
// BENCH_scaling.json, diffs vsec within -tolerance percent and the
// protocol-integer metrics exactly, writes BENCH_regress.json, and
// exits non-zero if anything regressed.
//
// The histsort experiment (not part of "all": 16 full sorts at p up to
// 256) is the adversarial pivot ablation: the four hostile generators
// crossed with the four pivot strategies, self-checked for
// byte-identical output across strategies, histogram expansion no worse
// than regular sampling's, and fewer sample keys shipped.  It writes
// BENCH_histsort.json.
//
// The pipeline experiment (ablation A8) additionally writes its rows to
// BENCH_pipeline.json, the pdm experiment (ablation A10: the multi-disk
// D sweep plus the sequential-phase run-formation and galloping-merge
// kernels, self-checked for byte-identical output and equal block I/O
// where the change is timing- or compute-only) writes BENCH_pdm.json,
// the overlap experiment (ablation A9: prefetch +
// write-behind against the synchronous I/O path) writes
// BENCH_overlap.json, and the attribution experiment — where each
// node's virtual time went (compute/disk/network/idle) and the per-step
// skew against the perf-vector prediction — writes
// BENCH_attribution.json.  The scaling experiment sweeps the cluster
// size p=4..1024 (capped by -maxp) across the flat, tree and grid
// redistribution topologies, asserts byte-identical output at every
// point, and writes BENCH_scaling.json (virtual time, peak open
// streams, per-link queue high-water marks vs p).
// -cpuprofile/-memprofile write pprof profiles of
// the selected experiments, and every run ends with a host-side cost
// table (wall clock, allocations, allocs per sorted key).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"hetsort/internal/experiments"
	"hetsort/internal/stats"
)

func main() {
	var (
		shift   = flag.Uint("shift", 6, "right-shift applied to the paper's input sizes (0 = full scale)")
		trials  = flag.Int("trials", 5, "repetitions per measurement (paper: 30)")
		onDisk  = flag.Bool("ondisk", false, "use real temporary directories for node disks")
		tmp     = flag.String("tmpdir", "", "root directory for -ondisk")
		which   = flag.String("experiment", "all", "experiment to run: table1, table2, calibration, packets, table3, speedups, figure1, distributions, ablations, checkpoint, pipeline, pdm, overlap, attribution, scaling, histsort, regress, all")
		maxP    = flag.Int("maxp", 1024, "largest cluster size the scaling experiment sweeps to")
		tolPct  = flag.Float64("tolerance", 5, "regress gate: allowed vsec increase in percent before failing")
		benchD  = flag.String("bench-dir", ".", "regress gate: directory holding the committed BENCH_*.json baselines")
		seed    = flag.Int64("seed", 1, "base input seed")
		cpuProf = flag.String("cpuprofile", "", "write a CPU profile of the selected experiments to this file")
		memProf = flag.String("memprofile", "", "write an allocation profile to this file at exit")
	)
	flag.Parse()

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer pprof.StopCPUProfile()
	}

	o := experiments.Options{
		SizeShift: *shift,
		Trials:    *trials,
		OnDisk:    *onDisk,
		TempDir:   *tmp,
		Seed:      *seed,
	}
	fmt.Printf("hetsort benchtab: size shift 2^-%d, %d trials per point\n\n", *shift, *trials)

	cost := &stats.Table{
		Title:   "Host cost per experiment",
		Headers: []string{"Experiment", "Wall", "Allocs", "Allocs/op"},
	}
	run := func(name string, f func() error) {
		if *which != "all" && *which != name {
			return
		}
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		start := time.Now()
		if err := f(); err != nil {
			fmt.Fprintf(os.Stderr, "benchtab: %s: %v\n", name, err)
			os.Exit(1)
		}
		wall := time.Since(start)
		runtime.ReadMemStats(&after)
		allocs := after.Mallocs - before.Mallocs
		opKeys := float64(int64(1<<22) >> *shift) // the suite's reference sort size
		cost.AddRow(name, wall.Round(time.Millisecond).String(),
			fmt.Sprintf("%d", allocs), fmt.Sprintf("%.2f", float64(allocs)/opKeys))
		fmt.Println()
	}

	run("table1", func() error {
		fmt.Print(experiments.Table1String(experiments.Table1(o)))
		return nil
	})
	run("table2", func() error {
		rows, err := experiments.Table2(o)
		if err != nil {
			return err
		}
		fmt.Print(experiments.Table2String(rows))
		return nil
	})
	run("calibration", func() error {
		cal, err := experiments.Calibrate(o)
		if err != nil {
			return err
		}
		fmt.Printf("Calibration (paper section 5 protocol):\n  per-node times: %.3f s\n  derived perf vector: %v (paper: [1 1 4 4])\n",
			cal.Times, cal.Vector)
		return nil
	})
	run("packets", func() error {
		rows, err := experiments.RunPacketSweep(o)
		if err != nil {
			return err
		}
		fmt.Print(experiments.PacketSweepString(rows))
		return nil
	})
	run("table3", func() error {
		rows, err := experiments.Table3(o)
		if err != nil {
			return err
		}
		fmt.Print(experiments.Table3String(rows))
		return nil
	})
	run("speedups", func() error {
		s, err := experiments.ComputeSpeedups(o)
		if err != nil {
			return err
		}
		fmt.Print(s.String())
		return nil
	})
	run("figure1", func() error {
		rows, err := experiments.Figure1PDM(o)
		if err != nil {
			return err
		}
		fmt.Print(experiments.Figure1String(rows))
		return nil
	})
	run("distributions", func() error {
		rows, err := experiments.DistributionSweep(o)
		if err != nil {
			return err
		}
		fmt.Print(experiments.DistributionSweepString(rows))
		return nil
	})
	run("ablations", func() error {
		rows, err := experiments.Ablations(o)
		if err != nil {
			return err
		}
		fmt.Print(experiments.AblationsString(rows))
		return nil
	})
	run("checkpoint", func() error {
		rows, err := experiments.CheckpointAblation(o)
		if err != nil {
			return err
		}
		fmt.Print(experiments.AblationsString(rows))
		return nil
	})
	run("pipeline", func() error {
		rows, err := experiments.PipelineAblation(o)
		if err != nil {
			return err
		}
		fmt.Print(experiments.AblationsString(rows))
		if err := writeJSON("BENCH_pipeline.json", struct {
			Experiment string                    `json:"experiment"`
			SizeShift  uint                      `json:"size_shift"`
			Rows       []experiments.AblationRow `json:"rows"`
		}{"pipeline", *shift, rows}); err != nil {
			return err
		}
		fmt.Println("wrote BENCH_pipeline.json")
		return nil
	})
	run("pdm", func() error {
		rows, err := experiments.PDMAblation(o)
		if err != nil {
			return err
		}
		fmt.Print(experiments.PDMString(rows))
		if err := writeJSON("BENCH_pdm.json", struct {
			Experiment string               `json:"experiment"`
			SizeShift  uint                 `json:"size_shift"`
			Rows       []experiments.PDMRow `json:"rows"`
		}{"pdm", *shift, rows}); err != nil {
			return err
		}
		fmt.Println("wrote BENCH_pdm.json")
		return nil
	})
	run("overlap", func() error {
		rows, err := experiments.OverlapAblation(o)
		if err != nil {
			return err
		}
		fmt.Print(experiments.AblationsString(rows))
		if err := writeJSON("BENCH_overlap.json", struct {
			Experiment string                    `json:"experiment"`
			SizeShift  uint                      `json:"size_shift"`
			Rows       []experiments.AblationRow `json:"rows"`
		}{"overlap", *shift, rows}); err != nil {
			return err
		}
		fmt.Println("wrote BENCH_overlap.json")
		return nil
	})
	// Not part of "all": the p=1024 points simulate a thousand nodes and
	// dominate the suite's wall clock.  Run explicitly, capping with -maxp.
	if *which == "scaling" {
		run("scaling", func() error {
			rows, err := experiments.ScalingSweep(o, *maxP)
			if err != nil {
				return err
			}
			fmt.Print(experiments.ScalingString(rows))
			if err := writeJSON("BENCH_scaling.json", struct {
				Experiment string                   `json:"experiment"`
				MaxP       int                      `json:"max_p"`
				Rows       []experiments.ScalingRow `json:"rows"`
			}{"scaling", *maxP, rows}); err != nil {
				return err
			}
			fmt.Println("wrote BENCH_scaling.json")
			return nil
		})
	}

	// Not part of "all": 16 full sorts at p up to 256.  Run explicitly.
	if *which == "histsort" {
		run("histsort", func() error {
			rows, err := experiments.HistsortAblation(o)
			if err != nil {
				return err
			}
			fmt.Print(experiments.HistsortString(rows))
			if err := writeJSON("BENCH_histsort.json", struct {
				Experiment string                    `json:"experiment"`
				SizeShift  uint                      `json:"size_shift"`
				Rows       []experiments.HistsortRow `json:"rows"`
			}{"histsort", *shift, rows}); err != nil {
				return err
			}
			fmt.Println("wrote BENCH_histsort.json")
			return nil
		})
	}

	// Not part of "all" either: the gate re-runs pipeline and scaling at
	// the baselines' committed scales, so it is a CI step, not a table.
	if *which == "regress" {
		run("regress", func() error {
			rep, err := experiments.RegressionGate(o, *benchD, *tolPct, *maxP)
			if err != nil {
				return err
			}
			fmt.Print(rep.String())
			if err := writeJSON("BENCH_regress.json", rep); err != nil {
				return err
			}
			fmt.Println("wrote BENCH_regress.json")
			if n := rep.Regressions(); n > 0 {
				return fmt.Errorf("%d metric(s) regressed beyond the gate (vsec tolerance %.1f%%)", n, *tolPct)
			}
			return nil
		})
	}

	run("attribution", func() error {
		rep, err := experiments.RunAttribution(o)
		if err != nil {
			return err
		}
		fmt.Print(experiments.AttributionString(rep))
		if err := writeJSON("BENCH_attribution.json", struct {
			Experiment string                         `json:"experiment"`
			SizeShift  uint                           `json:"size_shift"`
			Report     *experiments.AttributionReport `json:"report"`
		}{"attribution", *shift, rep}); err != nil {
			return err
		}
		fmt.Println("wrote BENCH_attribution.json")
		return nil
	})

	fmt.Print(cost.String())

	if *memProf != "" {
		f, err := os.Create(*memProf)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fatal(err)
		}
	}
}

func writeJSON(name string, v any) error {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(name, append(data, '\n'), 0o644)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchtab:", err)
	os.Exit(1)
}

package cluster

import (
	"fmt"
	"sort"
	"sync"
	"testing"

	"hetsort/internal/record"
)

// nodeKeys gives node i a distinct, recognisable contribution.
func nodeKeys(i int) []record.Key {
	out := make([]record.Key, i%3+1)
	for j := range out {
		out[j] = record.Key(100*i + j)
	}
	return out
}

// TestTreeGatherMatchesFlat checks the root's view is identical to the
// flat Gather for a spread of cluster sizes and radices, including
// sizes that are not radix powers.
func TestTreeGatherMatchesFlat(t *testing.T) {
	for _, p := range []int{1, 2, 3, 5, 8, 16, 17} {
		for _, r := range []int{2, 3, 4, 16} {
			t.Run(fmt.Sprintf("p%d.r%d", p, r), func(t *testing.T) {
				slow := make([]float64, p)
				for i := range slow {
					slow[i] = 1
				}
				c := mustNew(t, slow...)
				flat := make([][][]record.Key, p)
				tree := make([][][]record.Key, p)
				err := c.Run(func(n *Node) error {
					var err error
					if flat[n.ID()], err = n.Gather(0, 1, nodeKeys(n.ID())); err != nil {
						return err
					}
					tree[n.ID()], err = n.TreeGather(r, 2, nodeKeys(n.ID()))
					return err
				})
				if err != nil {
					t.Fatal(err)
				}
				for i := 0; i < p; i++ {
					if i != 0 {
						if tree[i] != nil {
							t.Fatalf("non-root %d returned a gather result", i)
						}
						continue
					}
					if len(tree[i]) != len(flat[i]) {
						t.Fatalf("root got %d parts, want %d", len(tree[i]), len(flat[i]))
					}
					for rank := range tree[i] {
						if fmt.Sprint(tree[i][rank]) != fmt.Sprint(flat[i][rank]) {
							t.Fatalf("rank %d: tree %v, flat %v", rank, tree[i][rank], flat[i][rank])
						}
					}
				}
			})
		}
	}
}

func TestTreeBcastAllGatherBarrier(t *testing.T) {
	for _, p := range []int{1, 2, 5, 9, 16} {
		for _, r := range []int{2, 4} {
			t.Run(fmt.Sprintf("p%d.r%d", p, r), func(t *testing.T) {
				slow := make([]float64, p)
				for i := range slow {
					slow[i] = 1
				}
				c := mustNew(t, slow...)
				payload := []record.Key{7, 8, 9}
				bcast := make([][]record.Key, p)
				allg := make([][]record.Key, p)
				err := c.Run(func(n *Node) error {
					var err error
					var in []record.Key
					if n.ID() == 0 {
						in = payload
					}
					if bcast[n.ID()], err = n.TreeBcast(r, 10, in); err != nil {
						return err
					}
					if allg[n.ID()], err = n.TreeAllGather(r, 20, nodeKeys(n.ID())); err != nil {
						return err
					}
					return n.TreeBarrier(r, 30)
				})
				if err != nil {
					t.Fatal(err)
				}
				var wantAll []record.Key
				for i := 0; i < p; i++ {
					wantAll = append(wantAll, nodeKeys(i)...)
				}
				for i := 0; i < p; i++ {
					if fmt.Sprint(bcast[i]) != fmt.Sprint(payload) {
						t.Fatalf("node %d bcast %v", i, bcast[i])
					}
					if fmt.Sprint(allg[i]) != fmt.Sprint(wantAll) {
						t.Fatalf("node %d allgather %v, want %v", i, allg[i], wantAll)
					}
				}
			})
		}
	}
}

// TestTreeReduceSortedMerge folds sorted per-node slices with a 2-way
// merge; the root must see the sorted multiset union regardless of
// radix or cluster size.
func TestTreeReduceSortedMerge(t *testing.T) {
	merge := func(a, b []record.Key) ([]record.Key, error) {
		out := make([]record.Key, 0, len(a)+len(b))
		out = append(out, a...)
		out = append(out, b...)
		sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
		return out, nil
	}
	for _, p := range []int{1, 2, 3, 7, 16} {
		for _, r := range []int{2, 5} {
			t.Run(fmt.Sprintf("p%d.r%d", p, r), func(t *testing.T) {
				slow := make([]float64, p)
				for i := range slow {
					slow[i] = 1
				}
				c := mustNew(t, slow...)
				got := make([][]record.Key, p)
				err := c.Run(func(n *Node) error {
					var err error
					got[n.ID()], err = n.TreeReduce(r, 40, nodeKeys(n.ID()), merge)
					return err
				})
				if err != nil {
					t.Fatal(err)
				}
				var want []record.Key
				for i := 0; i < p; i++ {
					want = append(want, nodeKeys(i)...)
				}
				sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
				if fmt.Sprint(got[0]) != fmt.Sprint(want) {
					t.Fatalf("root reduce %v, want %v", got[0], want)
				}
				for i := 1; i < p; i++ {
					if got[i] != nil {
						t.Fatalf("non-root %d returned %v", i, got[i])
					}
				}
			})
		}
	}
}

// TestTreeCollectivesBoundFanIn is the point of the exercise: at p=16
// the flat gather funnels 15 concurrent senders into node 0, while the
// radix-2 tree never queues more than node 0's ⌈log₂p⌉ children into
// it, whatever the goroutine schedule.  The flat half synchronises the
// senders with a real barrier so all 15 messages are provably queued
// at once (without it the root may drain early senders first).
func TestTreeCollectivesBoundFanIn(t *testing.T) {
	const p = 16
	slow := make([]float64, p)
	for i := range slow {
		slow[i] = 1
	}
	flat := mustNew(t, slow...)
	var sent sync.WaitGroup
	sent.Add(p - 1)
	if err := flat.Run(func(n *Node) error {
		if n.ID() != 0 {
			if err := n.Send(0, 1, nodeKeys(n.ID())); err != nil {
				return err
			}
			sent.Done()
			return nil
		}
		sent.Wait()
		for from := 1; from < p; from++ {
			if _, err := n.Recv(from, 1); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	tree := mustNew(t, slow...)
	if err := tree.Run(func(n *Node) error {
		_, err := n.TreeGather(2, 1, nodeKeys(n.ID()))
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if flat.FanInHWM(0) != p-1 {
		t.Fatalf("flat root fan-in HWM = %d, want %d", flat.FanInHWM(0), p-1)
	}
	var treeMax int64
	for i := 0; i < p; i++ {
		if h := tree.FanInHWM(i); h > treeMax {
			treeMax = h
		}
	}
	if treeMax >= flat.FanInHWM(0) {
		t.Fatalf("tree fan-in HWM %d not below flat %d", treeMax, flat.FanInHWM(0))
	}
	// Lazy links: the tree run must materialize far fewer than p² links.
	if created := tree.LinksCreated(); created >= p*p/2 {
		t.Fatalf("tree gather created %d links, expected well under %d", created, p*p)
	}
}

// TestLazyLinkCapacityHints checks per-link hints apply at creation and
// that EnsureLinkCapacity grows already-created channels in place.
func TestLazyLinkCapacityHints(t *testing.T) {
	c := mustNew(t, 1, 1)
	c.EnsureLinkCapacityFunc(func(from, to int) int {
		if from == 0 && to == 1 {
			return 9000
		}
		return 0
	})
	if got := cap(c.link(0, 1)); got != 9000 {
		t.Fatalf("hinted link capacity %d, want 9000", got)
	}
	// With a hint function installed, the hint replaces the default for
	// unhinted links too (clamped to the control-traffic floor).
	if got := cap(c.link(1, 0)); got != 16 {
		t.Fatalf("unhinted link capacity %d, want 16", got)
	}
	// Growth preserves queued messages (white-box: enqueue directly).
	c.link(1, 0) <- message{tag: 5, keys: []record.Key{1, 2, 3}}
	c.EnsureLinkCapacity(1 << 14)
	if got := cap(c.link(1, 0)); got != 1<<14 {
		t.Fatalf("grown link capacity %d, want %d", got, 1<<14)
	}
	msg := <-c.link(1, 0)
	if msg.tag != 5 || len(msg.keys) != 3 {
		t.Fatalf("message lost in growth: %+v", msg)
	}
}

package experiments

import (
	"fmt"

	"hetsort/internal/cluster"
	"hetsort/internal/diskio"
	"hetsort/internal/perf"
	"hetsort/internal/polyphase"
	"hetsort/internal/record"
	"hetsort/internal/stats"
)

// Table2PaperSizes are the input sizes of the paper's Table 2.
var Table2PaperSizes = []int64{1 << 21, 1 << 22, 1 << 23, 1 << 24, 1 << 25}

// Table2Paper holds the paper's measured sequential external sort times
// (seconds) per node and size, for side-by-side reporting.
var Table2Paper = map[string][]float64{
	"helmvige":   {22.92146, 51.17832, 111.40898, 235.74163, 492.02380},
	"grimgerde":  {24.88658, 44.55758, 96.29102, 212.82059, 443.86681},
	"siegrune":   {88.94593, 188.71978, 409.09711, 909.34783, 1910.8261},
	"rossweisse": {95.40269, 204.66360, 428.42470, 951.22738, 1998.72261},
}

// Table2Row is one (node, size) cell of Table 2.
type Table2Row struct {
	Node      string  // paper node name for the class
	Slowdown  float64 // simulated load factor
	InputSize int64   // keys actually sorted (scaled)
	PaperSize int64   // the paper's size this row reproduces
	Time      stats.Summary
	PaperTime float64 // the paper's seconds for this cell (0 if n/a)
}

// table2Nodes maps paper machines to simulated load factors: helmvige
// and grimgerde are the fast class; siegrune and rossweisse carry the
// forked load (4x).
var table2Nodes = []struct {
	name     string
	slowdown float64
}{
	{"helmvige", 1},
	{"grimgerde", 1},
	{"siegrune", 4},
	{"rossweisse", 4},
}

// Table2 reproduces Table 2: the sequential external sort (polyphase
// merge sort) timed on every node class across the five input sizes.
// This is also the measurement that feeds the perf-vector calibration.
func Table2(o Options) ([]Table2Row, error) {
	o = o.withDefaults()
	var rows []Table2Row
	for _, node := range table2Nodes {
		for si, paperSize := range Table2PaperSizes {
			n := o.scale(paperSize)
			sum, err := o.trialSummary(func(seed int64) (float64, error) {
				return sequentialSortTime(o, node.slowdown, n, seed)
			})
			if err != nil {
				return nil, fmt.Errorf("experiments: table 2 %s/%d: %w", node.name, paperSize, err)
			}
			rows = append(rows, Table2Row{
				Node:      node.name,
				Slowdown:  node.slowdown,
				InputSize: n,
				PaperSize: paperSize,
				Time:      sum,
				PaperTime: Table2Paper[node.name][si],
			})
		}
	}
	return rows, nil
}

// sequentialSortTime runs the polyphase external sort of n uniform keys
// on a single simulated node with the given load factor and returns the
// virtual time.
func sequentialSortTime(o Options, slowdown float64, n int64, seed int64) (float64, error) {
	disks, err := o.disks()
	if err != nil {
		return 0, err
	}
	c, err := cluster.New(cluster.Config{
		Slowdowns: []float64{slowdown},
		BlockKeys: o.BlockKeys,
		Disks:     disks,
	})
	if err != nil {
		return 0, err
	}
	keys := record.Uniform.Generate(int(n), seed, 1)
	if err := diskio.WriteFile(c.Node(0).FS(), "input", keys, o.BlockKeys, diskio.Accounting{}); err != nil {
		return 0, err
	}
	err = c.Run(func(node *cluster.Node) error {
		_, serr := polyphase.Sort(o.polyCfg(node.FS(), node.Acct()), "input", "output")
		return serr
	})
	if err != nil {
		return 0, err
	}
	return c.MaxClock(), nil
}

// Calibration reproduces the paper's protocol for filling the perf
// vector (E3): time the sequential external sort of N/P keys on every
// node, take ratios to the slowest.  The paper concludes {1,1,4,4}.
type Calibration struct {
	Times  []float64   // per node, virtual seconds
	Vector perf.Vector // derived perf vector
}

// Calibrate runs the calibration at the paper's N=2^24 (scaled), using
// the cluster's node order (nodes 0,1 loaded, 2,3 fast) so the derived
// vector reads {1,1,4,4} exactly as the paper configures it.
func Calibrate(o Options) (*Calibration, error) {
	o = o.withDefaults()
	nPerNode := o.scale(1 << 24 / 4)
	slowdowns := PaperVector.Slowdowns()
	times := make([]float64, len(slowdowns))
	for i, sd := range slowdowns {
		t, err := sequentialSortTime(o, sd, nPerNode, o.Seed+int64(i))
		if err != nil {
			return nil, err
		}
		times[i] = t
	}
	v, err := perf.FromTimes(times)
	if err != nil {
		return nil, err
	}
	return &Calibration{Times: times, Vector: v}, nil
}

// Table2String renders rows in the paper's layout.
func Table2String(rows []Table2Row) string {
	t := &stats.Table{
		Title:   "Table 2: sequential external sorting (polyphase merge sort), virtual seconds",
		Headers: []string{"Node", "Load", "Input", "Time(s)", "Dev", "Paper@full", "PaperTime(s)"},
	}
	for _, r := range rows {
		t.AddRow(r.Node, r.Slowdown, r.InputSize, r.Time.Mean, r.Time.StdDev, r.PaperSize, r.PaperTime)
	}
	return t.String()
}

package hetsort

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"os"

	"hetsort/internal/cluster"
	"hetsort/internal/diskio"
	"hetsort/internal/extsort"
	"hetsort/internal/record"
)

// SortFile sorts a host file of little-endian uint32 values into
// outputPath using the configured cluster.  The input is streamed onto
// the node disks in perf-proportional contiguous portions, Algorithm 1
// runs, and the nodes' sorted partitions are concatenated in rank order
// into the output file.  When cfg.WorkDir is empty the node disks live
// in memory, so the input must fit in RAM; set WorkDir for genuinely
// out-of-core runs.
func SortFile(inputPath, outputPath string, cfg Config) (*Report, error) {
	v, err := cfg.vector()
	if err != nil {
		return nil, err
	}
	c, tl, err := cfg.newCluster(v)
	if err != nil {
		return nil, err
	}
	block := cfg.blockKeys()

	in, err := os.Open(inputPath)
	if err != nil {
		return nil, err
	}
	defer in.Close()
	st, err := in.Stat()
	if err != nil {
		return nil, err
	}
	if st.Size()%record.KeySize != 0 {
		return nil, fmt.Errorf("hetsort: input size %d is not a multiple of %d bytes", st.Size(), record.KeySize)
	}
	total := st.Size() / record.KeySize
	shares := v.Shares(total)

	// Stream each node's contiguous portion onto its disk, folding the
	// checksum as we go.
	var want record.Checksum
	br := bufio.NewReaderSize(in, 1<<20)
	keyBuf := make([]record.Key, block)
	byteBuf := make([]byte, block*record.KeySize)
	for i := 0; i < c.P(); i++ {
		f, err := c.Node(i).FS().Create("input")
		if err != nil {
			return nil, err
		}
		w := diskio.NewWriter(f, block, diskio.Accounting{})
		remaining := shares[i]
		for remaining > 0 {
			chunk := int64(block)
			if chunk > remaining {
				chunk = remaining
			}
			bb := byteBuf[:chunk*record.KeySize]
			if _, err := io.ReadFull(br, bb); err != nil {
				f.Close()
				return nil, fmt.Errorf("hetsort: reading input: %w", err)
			}
			keys := record.DecodeKeys(keyBuf[:0], bb)
			want.Update(keys)
			if err := w.WriteKeys(keys); err != nil {
				f.Close()
				return nil, err
			}
			remaining -= chunk
		}
		if err := w.Close(); err != nil {
			f.Close()
			return nil, err
		}
		if err := f.Close(); err != nil {
			return nil, err
		}
	}

	res, err := cfg.sortOnCluster(c, v, want)
	if err != nil {
		return nil, err
	}

	if err := concatOutput(c, block, outputPath); err != nil {
		return nil, err
	}
	rep := newReport(res, v)
	rep.attachTrace(tl)
	rep.attachMetrics(c)
	return rep, nil
}

// concatOutput concatenates the nodes' sorted partitions in rank order
// into the host file outputPath.
func concatOutput(c *cluster.Cluster, block int, outputPath string) error {
	out, err := os.Create(outputPath)
	if err != nil {
		return err
	}
	bw := bufio.NewWriterSize(out, 1<<20)
	keyBuf := make([]record.Key, block)
	byteBuf := make([]byte, block*record.KeySize)
	for i := 0; i < c.P(); i++ {
		f, err := c.Node(i).FS().Open("output")
		if err != nil {
			out.Close()
			return err
		}
		r := diskio.NewReader(f, block, diskio.Accounting{})
		for {
			n, rerr := r.ReadKeys(keyBuf)
			if n > 0 {
				bb := record.EncodeKeys(byteBuf[:0], keyBuf[:n])
				if _, werr := bw.Write(bb); werr != nil {
					f.Close()
					out.Close()
					return werr
				}
			}
			if rerr == io.EOF || n == 0 {
				break
			}
			if rerr != nil {
				f.Close()
				out.Close()
				return rerr
			}
		}
		if err := f.Close(); err != nil {
			out.Close()
			return err
		}
	}
	if err := bw.Flush(); err != nil {
		out.Close()
		return err
	}
	return out.Close()
}

// Resume continues a SortFile run that was interrupted after being
// started with Checkpoint.Enabled and a WorkDir: the per-node manifests
// under cfg.WorkDir say which phases each node committed, and only the
// missing work is re-run.  On success the completed sorted output is
// written to outputPath and the report covers the resumed run (virtual
// clocks replayed from the last commits, recovery I/O included in the
// block counts).  The configuration must match the interrupted run's.
func Resume(outputPath string, cfg Config) (*Report, error) {
	if cfg.WorkDir == "" {
		return nil, errors.New("hetsort: Resume requires Config.WorkDir (manifests and node disks must be durable)")
	}
	if cfg.Algorithm != "" && cfg.Algorithm != AlgorithmExternalPSRS {
		return nil, fmt.Errorf("hetsort: cannot resume algorithm %q (checkpointing is external-psrs only)", cfg.Algorithm)
	}
	v, err := cfg.vector()
	if err != nil {
		return nil, err
	}
	c, tl, err := cfg.newCluster(v)
	if err != nil {
		return nil, err
	}
	ecfg, err := cfg.extsortConfig(v)
	if err != nil {
		return nil, err
	}
	ecfg.Checkpoint = true
	res, want, err := extsort.Resume(c, ecfg, "input", "output")
	if err != nil {
		return nil, err
	}
	if err := extsort.VerifyOutput(c, "output", cfg.blockKeys(), want); err != nil {
		return nil, err
	}
	if err := concatOutput(c, cfg.blockKeys(), outputPath); err != nil {
		return nil, err
	}
	rep := newReport(res, v)
	rep.attachTrace(tl)
	rep.attachMetrics(c)
	return rep, nil
}

// IsCrash reports whether err was caused by an injected node crash (see
// CheckpointConfig): the run died mid-sort but its checkpoints survive,
// so Resume can finish it.
func IsCrash(err error) bool { return cluster.IsCrash(err) }

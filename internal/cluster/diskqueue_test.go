package cluster

import (
	"math"
	"testing"

	"hetsort/internal/diskio"
	"hetsort/internal/pdm"
	"hetsort/internal/record"
	"hetsort/internal/vtime"
)

// queueCluster builds a 1-node cluster with a unit cost model (1 key =
// 1 second of transfer) so expected times are exact small integers.
func queueCluster(t *testing.T, disks int, access pdm.AccessMode) *Cluster {
	t.Helper()
	c, err := New(Config{
		Slowdowns:    []float64{1},
		Cost:         vtime.CostModel{ComputeSec: 1, IOBlockSecPerKey: 1, SeekSec: 100},
		BlockKeys:    2, // blockSec = 2
		DisksPerNode: disks,
		DiskAccess:   access,
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func runOn(t *testing.T, c *Cluster, fn func(n *Node)) {
	t.Helper()
	if err := c.Run(func(n *Node) error { fn(n); return nil }); err != nil {
		t.Fatal(err)
	}
}

// TestDiskQueueParallelStep: a round-robin scan over D disks coalesces
// D blocks into one parallel step of one blockSec.
func TestDiskQueueParallelStep(t *testing.T) {
	c := queueCluster(t, 4, pdm.Striped)
	runOn(t, c, func(n *Node) {
		for i := 0; i < 8; i++ { // two full stripes
			n.ChargeDiskIOBlocks(i%4, 1)
		}
	})
	if got, want := c.MaxClock(), 2*2.0; got != want {
		t.Fatalf("8-block scan over 4 disks took %v, want %v (2 steps)", got, want)
	}
	n := c.Node(0)
	steps, blocks := n.IOSteps()
	if steps != 2 || blocks != 8 {
		t.Fatalf("steps=%d blocks=%d, want 2 and 8", steps, blocks)
	}
	for d, busy := range n.DiskBusySec() {
		if busy != 4 { // 2 blocks * blockSec each
			t.Fatalf("disk %d busy %v, want 4", d, busy)
		}
	}
}

// TestDiskQueueSameDiskSerializes: blocks hammering one disk get no
// parallelism at all.
func TestDiskQueueSameDiskSerializes(t *testing.T) {
	c := queueCluster(t, 4, pdm.Independent)
	runOn(t, c, func(n *Node) {
		n.ChargeDiskIOBlocks(2, 5)
	})
	if got, want := c.MaxClock(), 5*2.0; got != want {
		t.Fatalf("5 same-disk blocks took %v, want %v", got, want)
	}
}

// TestDiskQueueAccessModes: skipping a disk breaks a striped step but
// not an independent one — the simulation-level analogue of Theorem 1's
// striped-vs-independent gap.
func TestDiskQueueAccessModes(t *testing.T) {
	charge := func(mode pdm.AccessMode) float64 {
		c := queueCluster(t, 4, mode)
		runOn(t, c, func(n *Node) {
			n.ChargeDiskIOBlocks(0, 1)
			n.ChargeDiskIOBlocks(2, 1) // out of round-robin order
		})
		return c.MaxClock()
	}
	if got := charge(pdm.Independent); got != 2 {
		t.Fatalf("independent out-of-order pair took %v, want 2 (one step)", got)
	}
	if got := charge(pdm.Striped); got != 4 {
		t.Fatalf("striped out-of-order pair took %v, want 4 (two steps)", got)
	}
}

// TestDiskQueueSeekClosesStep: a seek breaks the streaming pattern and
// serializes against its own disk.
func TestDiskQueueSeekClosesStep(t *testing.T) {
	c := queueCluster(t, 2, pdm.Independent)
	runOn(t, c, func(n *Node) {
		n.ChargeDiskIOBlocks(0, 1) // opens a step
		n.ChargeDiskSeek(1, 1)     // closes it, occupies disk 1 for 100s
		n.ChargeDiskIOBlocks(1, 1) // must queue behind the seek
	})
	// block(2) + seek(100) + block(2): nothing overlaps.
	if got, want := c.MaxClock(), 104.0; got != want {
		t.Fatalf("clock %v, want %v", got, want)
	}
}

// TestDiskQueueD1Numerics: at D=1 the queue model is bypassed and the
// charges are bit-identical to the flat synchronous model.
func TestDiskQueueD1Numerics(t *testing.T) {
	c := queueCluster(t, 1, pdm.Striped)
	runOn(t, c, func(n *Node) {
		n.ChargeDiskIOBlocks(0, 3)
		n.ChargeIOBlocks(2)
		n.ChargeDiskSeek(0, 1)
	})
	if got, want := c.MaxClock(), float64(3)*2+float64(2)*2+100; got != want {
		t.Fatalf("D=1 clock %v, want %v", got, want)
	}
	if io := c.Node(0).DiskIO(); io != nil {
		t.Fatalf("DiskIO() at D=1 = %v, want nil", io)
	}
}

// TestDiskQueueComputeDoesNotReopenStep: compute between stripes does
// not hide the next stripe (the synchronous model only overlaps blocks
// within one stripe's readahead).
func TestDiskQueueComputeDoesNotReopenStep(t *testing.T) {
	c := queueCluster(t, 2, pdm.Striped)
	runOn(t, c, func(n *Node) {
		n.ChargeDiskIOBlocks(0, 1)
		n.ChargeDiskIOBlocks(1, 1) // same step, free
		n.ChargeCompute(10)        // 10s of compute
		n.ChargeDiskIOBlocks(0, 1) // new step at clock 12
		n.ChargeDiskIOBlocks(1, 1)
	})
	if got, want := c.MaxClock(), 2+10+2.0; got != want {
		t.Fatalf("clock %v, want %v", got, want)
	}
}

// TestDiskQueueAttribution: the queue model charges only real waits, so
// the attribution invariant must keep holding.
func TestDiskQueueAttribution(t *testing.T) {
	c := queueCluster(t, 4, pdm.Striped)
	runOn(t, c, func(n *Node) {
		for i := 0; i < 13; i++ {
			n.ChargeDiskIOBlocks(i%3, 1) // deliberately ragged pattern
			if i%5 == 0 {
				n.ChargeCompute(1)
			}
		}
		n.ChargeDiskSeek(2, 1)
	})
	n := c.Node(0)
	if err := vtime.CheckAttribution(n.Clock(), n.Attribution()); err != nil {
		t.Fatal(err)
	}
}

// TestDiskQueueEndToEnd drives real striped files through the node's
// accounting: a D=4 scan must cost about a quarter of the D=1 scan at
// identical I/O counts, per-disk counters must sum to the node counter,
// and the step width must approach D.
func TestDiskQueueEndToEnd(t *testing.T) {
	const blockKeys = 64
	const nKeys = 64 * blockKeys
	keys := make([]record.Key, nKeys)
	for i := range keys {
		keys[i] = record.Key(i * 7)
	}
	run := func(d int) (clock float64, node *Node) {
		c, err := New(Config{
			Slowdowns:    []float64{1},
			BlockKeys:    blockKeys,
			DisksPerNode: d,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := c.Run(func(n *Node) error {
			if err := diskio.WriteFile(n.FS(), "f", keys, blockKeys, n.Acct()); err != nil {
				return err
			}
			got, err := diskio.ReadFileAll(n.FS(), "f", blockKeys, n.Acct())
			if err != nil {
				return err
			}
			if len(got) != nKeys {
				t.Errorf("D=%d: read %d keys, want %d", d, len(got), nKeys)
			}
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		return c.MaxClock(), c.Node(0)
	}
	c1, n1 := run(1)
	c4, n4 := run(4)
	if n1.IOStats() != n4.IOStats() {
		t.Fatalf("I/O counts differ: D=1 %v, D=4 %v", n1.IOStats(), n4.IOStats())
	}
	if ratio := c1 / c4; math.Abs(ratio-4) > 0.1 {
		t.Fatalf("D=4 scan speedup %v, want ~4 (D=1 %v, D=4 %v)", ratio, c1, c4)
	}
	var sum pdm.IOStats
	for _, s := range n4.DiskIO() {
		sum = sum.Add(s)
	}
	if sum != n4.IOStats() {
		t.Fatalf("per-disk sum %v != node %v", sum, n4.IOStats())
	}
	steps, blocks := n4.IOSteps()
	if width := float64(blocks) / float64(steps); width < 3.9 {
		t.Fatalf("step width %v, want ~4 for a sequential scan", width)
	}
}

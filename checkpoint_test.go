package hetsort

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"os"
	"path/filepath"
	"testing"
)

func writeKeyFile(t *testing.T, path string, n int) {
	t.Helper()
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	w := bufio.NewWriter(f)
	var buf [4]byte
	for i := 0; i < n; i++ {
		binary.LittleEndian.PutUint32(buf[:], 2654435761*uint32(i+13))
		w.Write(buf[:])
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestSortFileCrashAndResume is the end-to-end fault-tolerance check:
// a checkpointed on-disk sort is killed mid-run, a fresh Resume — with
// nothing but the configuration and the work directory, as after a real
// process restart — finishes it, and the final file is byte-identical
// to an uninterrupted run's.
func TestSortFileCrashAndResume(t *testing.T) {
	dir := t.TempDir()
	inPath := filepath.Join(dir, "in.u32")
	const n = 40000
	writeKeyFile(t, inPath, n)

	cfg := Config{
		Perf: []int{1, 1, 4, 4}, MemoryKeys: 4096, BlockKeys: 128, Tapes: 5, MessageKeys: 512,
	}

	// Reference: uninterrupted checkpointed run.
	refCfg := cfg
	refCfg.WorkDir = filepath.Join(dir, "ref")
	refCfg.Checkpoint.Enabled = true
	refOut := filepath.Join(dir, "ref.u32")
	if _, err := SortFile(inPath, refOut, refCfg); err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile(refOut)
	if err != nil {
		t.Fatal(err)
	}

	// Crashed run: node 2 dies at the end of the redistribution phase.
	runCfg := cfg
	runCfg.WorkDir = filepath.Join(dir, "work")
	runCfg.Checkpoint.Enabled = true
	runCfg.Checkpoint.CrashNode = 2
	runCfg.Checkpoint.CrashPhase = 4
	outPath := filepath.Join(dir, "out.u32")
	_, err = SortFile(inPath, outPath, runCfg)
	if !IsCrash(err) {
		t.Fatalf("want an injected crash, got %v", err)
	}

	// Resume in a fresh configuration value (no crash scheduled), as a
	// restarted process would.
	resCfg := cfg
	resCfg.WorkDir = filepath.Join(dir, "work")
	resCfg.Checkpoint.Enabled = true
	rep, err := Resume(outPath, resCfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Time <= 0 {
		t.Fatal("no report time")
	}
	got, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("resumed output differs from the uninterrupted run")
	}
}

func TestResumeRequiresWorkDir(t *testing.T) {
	if _, err := Resume(filepath.Join(t.TempDir(), "out"), Config{Checkpoint: CheckpointConfig{Enabled: true}}); err == nil {
		t.Fatal("resume without a work directory accepted")
	}
}

func TestSortFileCrashPhaseValidation(t *testing.T) {
	dir := t.TempDir()
	inPath := filepath.Join(dir, "in.u32")
	writeKeyFile(t, inPath, 1024)
	cfg := Config{
		Perf: []int{1, 1}, MemoryKeys: 4096, BlockKeys: 128, Tapes: 5, MessageKeys: 512,
		Checkpoint: CheckpointConfig{Enabled: true, CrashPhase: 6},
	}
	if _, err := SortFile(inPath, filepath.Join(dir, "out"), cfg); err == nil {
		t.Fatal("CrashPhase 6 accepted")
	}
}

func TestCheckpointRejectedForDeWitt(t *testing.T) {
	keys := make([]Key, 4096)
	for i := range keys {
		keys[i] = Key(len(keys) - i)
	}
	_, _, err := Sort(keys, Config{
		Algorithm: AlgorithmDeWitt, MemoryKeys: 4096, BlockKeys: 128, Tapes: 5, MessageKeys: 512,
		Checkpoint: CheckpointConfig{Enabled: true},
	})
	if err == nil {
		t.Fatal("DeWitt + checkpointing accepted")
	}
}

// TestSortCheckpointInMemory: checkpointing also works on the in-memory
// cluster used by Sort (manifests just do not survive the process).
func TestSortCheckpointInMemory(t *testing.T) {
	keys := make([]Key, 20000)
	for i := range keys {
		keys[i] = 2654435761 * Key(i+3)
	}
	out, rep, err := Sort(keys, Config{
		Perf: []int{1, 1, 4, 4}, MemoryKeys: 4096, BlockKeys: 128, Tapes: 5, MessageKeys: 512,
		Checkpoint: CheckpointConfig{Enabled: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(keys) || rep.Time <= 0 {
		t.Fatalf("bad result: %d keys, %.3f vsec", len(out), rep.Time)
	}
	for i := 1; i < len(out); i++ {
		if out[i] < out[i-1] {
			t.Fatalf("unsorted at %d", i)
		}
	}
}

package service

import (
	"bufio"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"hetsort/internal/metrics"
	"hetsort/internal/progress"
	"hetsort/internal/storage"
)

// TestProgressEndpoint drives the live-introspection API: JSON by
// default, an SSE stream on request, 404 for unknown jobs, and a final
// snapshot that is marked done with every node's I/O settled.
func TestProgressEndpoint(t *testing.T) {
	s, err := New(testConfig(), storage.NewObject())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Stop()
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	id, err := s.Submit(testSpec(2000, 9))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Wait(id); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get(srv.URL + "/jobs/" + id + "/progress")
	if err != nil {
		t.Fatal(err)
	}
	var pr struct {
		ID       string             `json:"id"`
		State    string             `json:"state"`
		Snapshot *progress.Snapshot `json:"snapshot"`
	}
	json.NewDecoder(resp.Body).Decode(&pr)
	resp.Body.Close()
	if pr.ID != id || pr.State != StateDone {
		t.Fatalf("progress: %+v", pr)
	}
	if pr.Snapshot == nil || !pr.Snapshot.Done || len(pr.Snapshot.Nodes) == 0 {
		t.Fatalf("snapshot: %+v", pr.Snapshot)
	}
	for _, np := range pr.Snapshot.Nodes {
		if np.IO.Total() == 0 {
			t.Errorf("node %d finished with zero I/O", np.Node)
		}
	}

	// SSE on a terminal job: one `event: done` frame, then EOF.
	resp, err = http.Get(srv.URL + "/jobs/" + id + "/progress?stream=1")
	if err != nil {
		t.Fatal(err)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("SSE Content-Type %q", ct)
	}
	sc := bufio.NewScanner(resp.Body)
	var sawDone, sawData bool
	for sc.Scan() {
		line := sc.Text()
		if line == "event: done" {
			sawDone = true
		}
		if strings.HasPrefix(line, "data: ") {
			sawData = true
		}
	}
	resp.Body.Close()
	if !sawDone || !sawData {
		t.Fatalf("SSE stream missing done event (%v) or data frame (%v)", sawDone, sawData)
	}

	resp, _ = http.Get(srv.URL + "/jobs/no-such-job/progress")
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job progress: %s", resp.Status)
	}
}

// TestMetricsExposition asserts the /metrics page is valid Prometheus
// 0.0.4 text exposition, with the right Content-Type and a histogram
// family for completed-job makespans.
func TestMetricsExposition(t *testing.T) {
	s, err := New(testConfig(), storage.NewObject())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Stop()
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	id, err := s.Submit(testSpec(2000, 21))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Wait(id); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	page, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != metrics.ExpositionContentType {
		t.Fatalf("Content-Type %q, want %q", ct, metrics.ExpositionContentType)
	}
	if err := metrics.LintExposition(page); err != nil {
		t.Fatalf("/metrics fails exposition lint: %v\n%s", err, page)
	}
	for _, want := range []string{
		"# TYPE hetsortd_jobs_done_total counter",
		"hetsortd_jobs_done_total 1\n",
		"# TYPE hetsortd_job_vsec histogram",
		`hetsortd_job_vsec_bucket{le="+Inf"} 1`,
	} {
		if !strings.Contains(string(page), want) {
			t.Errorf("/metrics missing %q:\n%s", want, page)
		}
	}
}

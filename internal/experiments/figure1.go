package experiments

import (
	"hetsort/internal/pdm"
	"hetsort/internal/stats"
)

// Figure 1 of the paper depicts the two PDM organisations: (a) one CPU
// driving D disks, (b) one disk per processor — "this last organization
// is realistic for a cluster system".  The figure itself is a diagram;
// the quantitative content behind it is the PDM's claim that
// independent disks retain the full Theorem-1 bound while naive
// striping pays an extra log factor once M/(D*B) collapses.  Figure1PDM
// regenerates that comparison as a table over D.

// Figure1Row compares striped and independent access for one disk
// count.
type Figure1Row struct {
	D                int64
	StripedIOs       int64
	IndependentIOs   int64
	Penalty          float64
	Organization     string
	PracticalCluster bool // D == P, one disk per node (organisation b)
}

// Figure1PDM evaluates the PDM sorting I/Os for the paper's parameters
// (scaled) across disk counts.
func Figure1PDM(o Options) ([]Figure1Row, error) {
	o = o.withDefaults()
	n := o.scale(1 << 24)
	var rows []Figure1Row
	for _, d := range []int64{1, 2, 4, 8, 16, 32, 64} {
		p := pdm.Params{
			N: n,
			M: int64(o.MemoryKeys),
			B: int64(o.BlockKeys),
			D: d,
			P: d,
		}
		if p.D*p.B > p.M/2 {
			break // beyond the PDM's D*B <= M/2 validity range
		}
		org := pdm.SingleCPU
		if d > 1 {
			org = pdm.PerProcessorDisk
		}
		rows = append(rows, Figure1Row{
			D:                d,
			StripedIOs:       p.SortIOs(pdm.Striped),
			IndependentIOs:   p.SortIOs(pdm.Independent),
			Penalty:          p.StripedPenalty(),
			Organization:     org.String(),
			PracticalCluster: d > 1,
		})
	}
	return rows, nil
}

// Figure1String renders the comparison.
func Figure1String(rows []Figure1Row) string {
	t := &stats.Table{
		Title:   "Figure 1 (PDM organisations): parallel I/O steps for sorting, striped vs independent disks",
		Headers: []string{"D", "Striped", "Independent", "Penalty"},
	}
	for _, r := range rows {
		t.AddRow(r.D, r.StripedIOs, r.IndependentIOs, r.Penalty)
	}
	return t.String()
}

// Package trace records structured events from a simulated cluster run
// — phase transitions, messages, per-node progress — with virtual
// timestamps, and renders them as a readable timeline.  It exists for
// debugging the algorithms and for inspecting where virtual time goes;
// the experiment harness can attach a tracer to any run.
package trace

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Kind classifies an event.
type Kind int

const (
	// PhaseBegin marks a node entering a named phase.
	PhaseBegin Kind = iota
	// PhaseEnd marks a node leaving a named phase.
	PhaseEnd
	// MessageSent records a point-to-point send (Detail = "to:N keys:K").
	MessageSent
	// MessageReceived records a receive (Detail = "from:N keys:K").
	MessageReceived
	// Mark is a free-form annotation.
	Mark
	// Checkpoint records a durable phase-manifest commit (Detail
	// describes the committed phase and clock).
	Checkpoint
	// Recovery records a recovery action during a resumed run: a
	// skipped (already committed) phase, a clock replay, or a re-sent
	// redistribution segment.
	Recovery
	// Pipeline records a fused redistribution→merge decision: the node
	// merged incoming streams directly into its output ("fused"), teed
	// them to durable receive files for the checkpoint manifest
	// ("spill"), or fell back to the barrier path ("fallback").
	Pipeline
)

func (k Kind) String() string {
	switch k {
	case PhaseBegin:
		return "phase-begin"
	case PhaseEnd:
		return "phase-end"
	case MessageSent:
		return "send"
	case MessageReceived:
		return "recv"
	case Mark:
		return "mark"
	case Checkpoint:
		return "checkpoint"
	case Recovery:
		return "recovery"
	case Pipeline:
		return "pipeline"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Event is one recorded occurrence.
type Event struct {
	Node   int
	Clock  float64 // virtual time at which it happened
	Kind   Kind
	Label  string // phase name or annotation
	Detail string
	// Seq is a monotonic sequence number assigned by Log.Add, the final
	// ordering tiebreaker: virtual clocks carry no sub-event resolution,
	// so same-clock same-node events (a send and the phase-end right
	// after it) would otherwise shuffle under a non-stable sort.
	Seq int64
}

// Log collects events from concurrently running nodes.  The zero value
// is ready to use.
type Log struct {
	mu     sync.Mutex
	seq    int64
	events []Event
}

// Add records an event, stamping it with the next sequence number.
func (l *Log) Add(e Event) {
	l.mu.Lock()
	l.seq++
	e.Seq = l.seq
	l.events = append(l.events, e)
	l.mu.Unlock()
}

// Len returns the number of recorded events.
func (l *Log) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.events)
}

// Events returns a copy of the events sorted by (clock, node, seq).
func (l *Log) Events() []Event {
	l.mu.Lock()
	out := append([]Event(nil), l.events...)
	l.mu.Unlock()
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Clock != out[j].Clock {
			return out[i].Clock < out[j].Clock
		}
		if out[i].Node != out[j].Node {
			return out[i].Node < out[j].Node
		}
		return out[i].Seq < out[j].Seq
	})
	return out
}

// Reset clears the log and restarts the sequence numbering.
func (l *Log) Reset() {
	l.mu.Lock()
	l.events = l.events[:0]
	l.seq = 0
	l.mu.Unlock()
}

// PhaseSpan is a phase on one node.  Open spans are phases whose
// PhaseEnd was never recorded (the node crashed or the run was cut
// short); their End is the clock of the last event in the log.
type PhaseSpan struct {
	Node       int
	Label      string
	Begin, End float64
	Open       bool
}

// Duration returns the span length.
func (s PhaseSpan) Duration() float64 { return s.End - s.Begin }

// Spans pairs PhaseBegin/PhaseEnd events per node and label, in begin
// order.  A phase with no matching end — a crashed node's last phase —
// is emitted as an open span ending at the log's final event clock,
// rather than silently dropped.
func (l *Log) Spans() []PhaseSpan {
	type key struct {
		node  int
		label string
	}
	open := map[key]float64{}
	var spans []PhaseSpan
	var last float64
	for _, e := range l.Events() {
		if e.Clock > last {
			last = e.Clock
		}
		k := key{e.Node, e.Label}
		switch e.Kind {
		case PhaseBegin:
			open[k] = e.Clock
		case PhaseEnd:
			if b, ok := open[k]; ok {
				spans = append(spans, PhaseSpan{Node: e.Node, Label: e.Label, Begin: b, End: e.Clock})
				delete(open, k)
			}
		}
	}
	for k, b := range open {
		end := last
		if end < b {
			end = b
		}
		spans = append(spans, PhaseSpan{Node: k.node, Label: k.label, Begin: b, End: end, Open: true})
	}
	sort.SliceStable(spans, func(i, j int) bool {
		if spans[i].Begin != spans[j].Begin {
			return spans[i].Begin < spans[j].Begin
		}
		if spans[i].Node != spans[j].Node {
			return spans[i].Node < spans[j].Node
		}
		return spans[i].Label < spans[j].Label
	})
	return spans
}

// Timeline renders the event log as one line per event, with a trailing
// line per phase that never closed (a crashed node's final phase).
func (l *Log) Timeline() string {
	var b strings.Builder
	for _, e := range l.Events() {
		fmt.Fprintf(&b, "%12.6fs  node%-2d  %-11s %s", e.Clock, e.Node, e.Kind, e.Label)
		if e.Detail != "" {
			fmt.Fprintf(&b, " (%s)", e.Detail)
		}
		b.WriteByte('\n')
	}
	for _, s := range l.Spans() {
		if s.Open {
			fmt.Fprintf(&b, "%12.6fs  node%-2d  %-11s %s (unclosed)\n", s.End, s.Node, "phase-open", s.Label)
		}
	}
	return b.String()
}

// Gantt renders the phase spans as a proportional text chart, one row
// per (node, phase), width columns wide.
func (l *Log) Gantt(width int) string {
	spans := l.Spans()
	if len(spans) == 0 {
		return "(no phases recorded)\n"
	}
	if width < 20 {
		width = 20
	}
	var max float64
	for _, s := range spans {
		if s.End > max {
			max = s.End
		}
	}
	if max == 0 {
		max = 1
	}
	var b strings.Builder
	labelW := 0
	for _, s := range spans {
		if n := len(s.Label); n > labelW {
			labelW = n
		}
	}
	for _, s := range spans {
		// Half-up rounding keeps adjacent spans visually contiguous (a
		// truncating cast left one-column gaps); the clamps guarantee
		// 0 <= begin < end <= width for every span, including ones that
		// round to the right edge.
		begin := int(s.Begin/max*float64(width) + 0.5)
		end := int(s.End/max*float64(width) + 0.5)
		if begin >= width {
			begin = width - 1
		}
		if end > width {
			end = width
		}
		if end <= begin {
			end = begin + 1
		}
		fill, note := "=", ""
		if s.Open {
			fill, note = "-", " (open)"
		}
		fmt.Fprintf(&b, "node%-2d %-*s |%s%s%s| %8.3fs%s\n",
			s.Node, labelW, s.Label,
			strings.Repeat(" ", begin),
			strings.Repeat(fill, end-begin),
			strings.Repeat(" ", width-end),
			s.Duration(), note)
	}
	return b.String()
}

package cluster

import "hetsort/internal/record"

// Collectives built on Send/Recv.  All nodes must call the same
// collective with consistent arguments (the usual SPMD contract).  Each
// uses fixed peer ordering, so the virtual clocks are deterministic.

// Gather sends each node's keys to root; root returns the per-node
// slices indexed by rank (its own contribution included), others return
// nil.
func (n *Node) Gather(root, tag int, keys []record.Key) ([][]record.Key, error) {
	if n.id != root {
		return nil, n.Send(root, tag, keys)
	}
	out := make([][]record.Key, n.P())
	out[root] = append([]record.Key(nil), keys...)
	for from := 0; from < n.P(); from++ {
		if from == root {
			continue
		}
		got, err := n.Recv(from, tag)
		if err != nil {
			return nil, err
		}
		out[from] = got
	}
	return out, nil
}

// Bcast distributes keys from root to every node; every node returns
// the broadcast payload.
func (n *Node) Bcast(root, tag int, keys []record.Key) ([]record.Key, error) {
	if n.id == root {
		for to := 0; to < n.P(); to++ {
			if to == root {
				continue
			}
			if err := n.Send(to, tag, keys); err != nil {
				return nil, err
			}
		}
		return append([]record.Key(nil), keys...), nil
	}
	return n.Recv(root, tag)
}

// Barrier synchronises all nodes: no node returns before every node has
// entered, and all clocks advance to at least the global maximum at
// entry (plus the messaging cost of the synchronisation itself).
// Implemented as a zero-payload gather to node 0 followed by a
// broadcast.
func (n *Node) Barrier(tag int) error {
	if _, err := n.Gather(0, tag, nil); err != nil {
		return err
	}
	_, err := n.Bcast(0, tag+1, nil)
	return err
}

// AllGather performs a Gather to node 0 followed by a broadcast of the
// concatenation; every node returns the same concatenated slice, in
// rank order.
func (n *Node) AllGather(tag int, keys []record.Key) ([]record.Key, error) {
	parts, err := n.Gather(0, tag, keys)
	if err != nil {
		return nil, err
	}
	var flat []record.Key
	if n.id == 0 {
		for _, p := range parts {
			flat = append(flat, p...)
		}
	}
	return n.Bcast(0, tag+1, flat)
}

package extsort

import (
	"errors"
	"os"
	"strings"
	"testing"

	"hetsort/internal/cluster"
	"hetsort/internal/diskio"
	"hetsort/internal/perf"
	"hetsort/internal/record"
	"hetsort/internal/trace"
)

// collectOutput concatenates the node output files in rank order.
func collectOutput(t *testing.T, c *cluster.Cluster, block int) []record.Key {
	t.Helper()
	var all []record.Key
	for i := 0; i < c.P(); i++ {
		part, err := diskio.ReadFileAll(c.Node(i).FS(), "output", block, diskio.Accounting{})
		if err != nil {
			t.Fatal(err)
		}
		all = append(all, part...)
	}
	return all
}

func totalIO(c *cluster.Cluster) int64 {
	var io int64
	for i := 0; i < c.P(); i++ {
		io += c.Node(i).IOStats().Total()
	}
	return io
}

// TestCrashAtEveryPhaseResumesIdentically is the acceptance property of
// the checkpoint subsystem: kill a node at any of the five phase
// boundaries — just before its commit, or just after it (mixed-phase
// cluster state) — and the resumed run must produce output identical to
// an uninterrupted run of the same configuration and seed.
func TestCrashAtEveryPhaseResumesIdentically(t *testing.T) {
	v := perf.Vector{1, 1, 4, 4}
	n := v.NearestValidSize(1 << 14)
	base := testConfig(v)
	base.Checkpoint = true
	const seed = 42

	// Reference: the same checkpointed sort, uninterrupted.
	refC := newCluster(t, v)
	refSum, err := DistributeInput(refC, v, record.Uniform, n, seed, base.BlockKeys, "input")
	if err != nil {
		t.Fatal(err)
	}
	refCfg := base
	refCfg.InputSum = refSum
	if _, err := Sort(refC, refCfg, "input", "output"); err != nil {
		t.Fatal(err)
	}
	want := collectOutput(t, refC, base.BlockKeys)

	var points []string
	for _, s := range StepNames {
		points = append(points, s)              // after the phase's work, before its commit
		points = append(points, "committed:"+s) // after the commit, before the barrier
	}
	points = append(points, "committed:start") // right after the phase-0 manifest

	for pi, point := range points {
		point := point
		crashNode := pi % len(v)
		t.Run(point, func(t *testing.T) {
			c := newCluster(t, v)
			sum, err := DistributeInput(c, v, record.Uniform, n, seed, base.BlockKeys, "input")
			if err != nil {
				t.Fatal(err)
			}
			cfg := base
			cfg.InputSum = sum
			if err := c.ScheduleCrash(crashNode, -1, point); err != nil {
				t.Fatal(err)
			}
			_, err = Sort(c, cfg, "input", "output")
			if !cluster.IsCrash(err) {
				t.Fatalf("crash at %q did not surface: %v", point, err)
			}
			crashedIO := totalIO(c)

			res, got, err := Resume(c, cfg, "input", "output")
			if err != nil {
				t.Fatalf("resume after crash at %q: %v", point, err)
			}
			if !got.Equal(sum) {
				t.Error("manifest input checksum differs from the distributed input's")
			}
			if err := VerifyOutput(c, "output", cfg.BlockKeys, sum); err != nil {
				t.Fatalf("resumed output: %v", err)
			}
			out := collectOutput(t, c, cfg.BlockKeys)
			if len(out) != len(want) {
				t.Fatalf("resumed output has %d keys, reference %d", len(out), len(want))
			}
			for i := range out {
				if out[i] != want[i] {
					t.Fatalf("resumed output diverges from the uninterrupted run at key %d: %d != %d",
						i, out[i], want[i])
				}
			}
			// The redone work is real, accounted I/O.  The one point
			// with nothing to redo is a crash after the final commit:
			// there the resume legitimately performs no new I/O.
			var resumedIO int64
			for _, s := range res.NodeIO {
				resumedIO += s.Total()
			}
			if crashedIO == 0 {
				t.Error("crashed run performed no accounted I/O")
			}
			if resumedIO == 0 && point != "committed:"+StepNames[4] {
				t.Errorf("recovery I/O not accounted after crash at %q", point)
			}
			if res.Time <= 0 {
				t.Errorf("resumed run reports no virtual time")
			}
		})
	}
}

// TestResumeTraceAndResend checks the observability contract: a resumed
// run traces its recovery decisions, and a node that died during
// redistribution gets its lost segments re-sent from the peers'
// retained partition files (visible as "resend" recovery events).
func TestResumeTraceAndResend(t *testing.T) {
	v := perf.Vector{1, 1, 4, 4}
	n := v.NearestValidSize(1 << 14)
	tl := new(trace.Log)
	c, err := cluster.New(cluster.Config{Slowdowns: v.Slowdowns(), BlockKeys: 64, Trace: tl})
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig(v)
	cfg.Checkpoint = true
	sum, err := DistributeInput(c, v, record.Uniform, n, 7, cfg.BlockKeys, "input")
	if err != nil {
		t.Fatal(err)
	}
	cfg.InputSum = sum
	// Die after receiving but before committing phase 4: the node's
	// in-flight state is lost while its peers commit and move on.
	if err := c.ScheduleCrash(1, -1, StepNames[3]); err != nil {
		t.Fatal(err)
	}
	if _, err := Sort(c, cfg, "input", "output"); !cluster.IsCrash(err) {
		t.Fatalf("want crash, got %v", err)
	}
	if _, _, err := Resume(c, cfg, "input", "output"); err != nil {
		t.Fatal(err)
	}
	if err := VerifyOutput(c, "output", cfg.BlockKeys, sum); err != nil {
		t.Fatal(err)
	}
	var commits, recoveries, resends int
	for _, e := range tl.Events() {
		switch e.Kind {
		case trace.Checkpoint:
			commits++
		case trace.Recovery:
			recoveries++
			if e.Label == "resend" {
				resends++
			}
		}
	}
	if commits == 0 {
		t.Error("no checkpoint commit events traced")
	}
	if recoveries == 0 {
		t.Error("no recovery events traced")
	}
	if resends == 0 {
		t.Error("no resend events: lost redistribution segments were not re-sent")
	}
}

func TestResumeRejectsChangedConfig(t *testing.T) {
	v := perf.Vector{1, 1}
	n := v.NearestValidSize(1 << 12)
	c := newCluster(t, v)
	cfg := testConfig(v)
	cfg.Checkpoint = true
	sum, err := DistributeInput(c, v, record.Uniform, n, 3, cfg.BlockKeys, "input")
	if err != nil {
		t.Fatal(err)
	}
	cfg.InputSum = sum
	if err := c.ScheduleCrash(0, -1, StepNames[2]); err != nil {
		t.Fatal(err)
	}
	if _, err := Sort(c, cfg, "input", "output"); !cluster.IsCrash(err) {
		t.Fatalf("want crash, got %v", err)
	}
	changed := cfg
	changed.MessageKeys = cfg.MessageKeys * 2
	if _, _, err := Resume(c, changed, "input", "output"); err == nil {
		t.Fatal("resume with a different message size accepted")
	} else if !strings.Contains(err.Error(), "different configuration") {
		t.Fatalf("unhelpful error: %v", err)
	}
	// The original configuration still resumes.
	if _, _, err := Resume(c, cfg, "input", "output"); err != nil {
		t.Fatal(err)
	}
	if err := VerifyOutput(c, "output", cfg.BlockKeys, sum); err != nil {
		t.Fatal(err)
	}
}

func TestResumeWithoutManifests(t *testing.T) {
	v := perf.Vector{1, 1}
	c := newCluster(t, v)
	cfg := testConfig(v)
	if _, err := DistributeInput(c, v, record.Uniform, 1<<10, 1, cfg.BlockKeys, "input"); err != nil {
		t.Fatal(err)
	}
	// Not checkpointed, so there is nothing to resume from.
	if _, err := Sort(c, cfg, "input", "output"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Resume(c, cfg, "input", "output"); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("want a no-manifest error, got %v", err)
	}
}

// TestCheckpointedSortCleansIntermediates: after an uninterrupted
// checkpointed run, the retained segment and received files are gone —
// retention ends at the phase-5 commit — and only input, output and the
// manifest remain.
func TestCheckpointedSortCleansIntermediates(t *testing.T) {
	v := perf.Vector{1, 1, 4, 4}
	n := v.NearestValidSize(1 << 13)
	c := newCluster(t, v)
	cfg := testConfig(v)
	cfg.Checkpoint = true
	sum, err := DistributeInput(c, v, record.Uniform, n, 5, cfg.BlockKeys, "input")
	if err != nil {
		t.Fatal(err)
	}
	cfg.InputSum = sum
	if _, err := Sort(c, cfg, "input", "output"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < c.P(); i++ {
		names, err := c.Node(i).FS().Names()
		if err != nil {
			t.Fatal(err)
		}
		for _, name := range names {
			switch name {
			case "input", "output", "hetsort.ckpt":
			default:
				t.Errorf("node %d: leftover intermediate %q", i, name)
			}
		}
	}
}

// TestCrashMidPhaseByClock kills a node by virtual-time trigger (inside
// a phase, not at a boundary) and resumes.
func TestCrashMidPhaseByClock(t *testing.T) {
	v := perf.Vector{1, 1, 4, 4}
	n := v.NearestValidSize(1 << 14)
	c := newCluster(t, v)
	cfg := testConfig(v)
	cfg.Checkpoint = true
	sum, err := DistributeInput(c, v, record.Uniform, n, 9, cfg.BlockKeys, "input")
	if err != nil {
		t.Fatal(err)
	}
	cfg.InputSum = sum
	// First, measure an uninterrupted run to pick a mid-run clock.
	probe := newCluster(t, v)
	if _, err := DistributeInput(probe, v, record.Uniform, n, 9, cfg.BlockKeys, "input"); err != nil {
		t.Fatal(err)
	}
	res, err := Sort(probe, cfg, "input", "output")
	if err != nil {
		t.Fatal(err)
	}
	if err := c.ScheduleCrash(2, res.Time/2, ""); err != nil {
		t.Fatal(err)
	}
	if _, err := Sort(c, cfg, "input", "output"); !cluster.IsCrash(err) {
		t.Fatalf("want crash, got %v", err)
	}
	if _, _, err := Resume(c, cfg, "input", "output"); err != nil {
		t.Fatal(err)
	}
	if err := VerifyOutput(c, "output", cfg.BlockKeys, sum); err != nil {
		t.Fatal(err)
	}
}

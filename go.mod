module hetsort

go 1.22

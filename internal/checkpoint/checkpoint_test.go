package checkpoint

import (
	"errors"
	"io"
	"os"
	"strings"
	"testing"

	"hetsort/internal/diskio"
	"hetsort/internal/pdm"
	"hetsort/internal/record"
)

func sampleManifest(node, p, phase int) *Manifest {
	return &Manifest{
		Node:   node,
		P:      p,
		Phase:  phase,
		Clock:  3.25,
		Sig:    "test-sig",
		Pivots: []record.Key{100, 200, 300},
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	fs := diskio.NewMemFS()
	m := sampleManifest(1, 4, 2)
	m.Input.Update([]record.Key{7, 8, 9})
	var ctr pdm.Counter
	if err := Save(fs, m, diskio.Accounting{Counter: &ctr}); err != nil {
		t.Fatal(err)
	}
	got, err := Load(fs)
	if err != nil {
		t.Fatal(err)
	}
	if got.Node != 1 || got.P != 4 || got.Phase != 2 || got.Clock != 3.25 || got.Sig != "test-sig" {
		t.Fatalf("round trip mangled manifest: %+v", got)
	}
	if len(got.Pivots) != 3 || got.Pivots[1] != 200 {
		t.Fatalf("pivots %v", got.Pivots)
	}
	if !got.Input.Equal(m.Input) {
		t.Fatal("input checksum mangled")
	}
	if s := ctr.Snapshot(); s.Writes != 1 || s.Seeks != 1 {
		t.Fatalf("commit not charged: %+v", s)
	}
	// The temp file must not linger after a successful commit.
	names, _ := fs.Names()
	for _, n := range names {
		if n == manifestTemp {
			t.Fatal("temp manifest left behind")
		}
	}
}

func TestSaveOverwritesPrevious(t *testing.T) {
	fs := diskio.NewMemFS()
	for phase := 1; phase <= Phases; phase++ {
		if err := Save(fs, sampleManifest(0, 2, phase), diskio.Accounting{}); err != nil {
			t.Fatal(err)
		}
	}
	m, err := Load(fs)
	if err != nil {
		t.Fatal(err)
	}
	if m.Phase != Phases {
		t.Fatalf("latest commit not visible: phase %d", m.Phase)
	}
}

func TestLoadMissing(t *testing.T) {
	_, err := Load(diskio.NewMemFS())
	if !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("want not-exist, got %v", err)
	}
}

func TestLoadTornWrite(t *testing.T) {
	fs := diskio.NewMemFS()
	if err := Save(fs, sampleManifest(0, 2, 3), diskio.Accounting{}); err != nil {
		t.Fatal(err)
	}
	// Truncate the manifest mid-body, as a crash during a non-atomic
	// write would.
	f, err := fs.Open(ManifestName)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(f)
	f.Close()
	if err != nil {
		t.Fatal(err)
	}
	torn, err := fs.Create(ManifestName)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := torn.Write(raw[:len(raw)-7]); err != nil {
		t.Fatal(err)
	}
	torn.Close()
	if _, err := Load(fs); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("torn manifest not detected: %v", err)
	}
}

func TestLoadFlippedBit(t *testing.T) {
	fs := diskio.NewMemFS()
	if err := Save(fs, sampleManifest(0, 2, 3), diskio.Accounting{}); err != nil {
		t.Fatal(err)
	}
	f, _ := fs.Open(ManifestName)
	raw, _ := io.ReadAll(f)
	f.Close()
	raw[len(raw)-5] ^= 0x40
	g, _ := fs.Create(ManifestName)
	g.Write(raw)
	g.Close()
	if _, err := Load(fs); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("bit flip not detected: %v", err)
	}
}

func TestLoadBadMagic(t *testing.T) {
	fs := diskio.NewMemFS()
	f, _ := fs.Create(ManifestName)
	io.WriteString(f, "some other file format\n{}")
	f.Close()
	if _, err := Load(fs); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("bad magic not detected: %v", err)
	}
}

func TestRemoveIdempotent(t *testing.T) {
	fs := diskio.NewMemFS()
	if err := Remove(fs); err != nil {
		t.Fatalf("removing absent manifest: %v", err)
	}
	if err := Save(fs, sampleManifest(0, 1, 1), diskio.Accounting{}); err != nil {
		t.Fatal(err)
	}
	if err := Remove(fs); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(fs); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("manifest survived Remove: %v", err)
	}
}

func TestValidateFileDeps(t *testing.T) {
	fs := diskio.NewMemFS()
	if err := diskio.WriteFile(fs, "sorted", []record.Key{1, 2, 3}, 2, diskio.Accounting{}); err != nil {
		t.Fatal(err)
	}
	m := sampleManifest(0, 1, 1)
	m.Files = []FileInfo{{Name: "sorted", Keys: 3}}
	if err := m.Validate(fs); err != nil {
		t.Fatalf("valid deps rejected: %v", err)
	}
	m.Files[0].Keys = 4
	if err := m.Validate(fs); err == nil {
		t.Fatal("truncated dependency accepted")
	}
	m.Files[0] = FileInfo{Name: "missing", Keys: 1}
	if err := m.Validate(fs); err == nil {
		t.Fatal("missing dependency accepted")
	}
}

func planDisks(t *testing.T, phases ...int) []diskio.FS {
	t.Helper()
	disks := make([]diskio.FS, len(phases))
	for i, ph := range phases {
		disks[i] = diskio.NewMemFS()
		m := sampleManifest(i, len(phases), ph)
		if err := Save(disks[i], m, diskio.Accounting{}); err != nil {
			t.Fatal(err)
		}
	}
	return disks
}

func TestPlanAggregates(t *testing.T) {
	disks := planDisks(t, 1, 3, 2, 5)
	r, err := Plan(disks, "test-sig")
	if err != nil {
		t.Fatal(err)
	}
	if r.MinDone() != 1 {
		t.Fatalf("MinDone = %d", r.MinDone())
	}
	if r.Complete() {
		t.Fatal("plan claims completion at phase 1")
	}
	// A node at phase >= 2 carried the pivots.
	if len(r.Pivots) != 3 {
		t.Fatalf("pivots not recovered: %v", r.Pivots)
	}
	if r.Clocks[2] != 3.25 {
		t.Fatalf("clocks %v", r.Clocks)
	}
}

func TestPlanComplete(t *testing.T) {
	r, err := Plan(planDisks(t, 5, 5), "test-sig")
	if err != nil {
		t.Fatal(err)
	}
	if !r.Complete() {
		t.Fatal("all phases committed but Complete() is false")
	}
}

func TestPlanRejectsSigMismatch(t *testing.T) {
	if _, err := Plan(planDisks(t, 1, 1), "other-sig"); err == nil {
		t.Fatal("configuration change accepted")
	} else if !strings.Contains(err.Error(), "different configuration") {
		t.Fatalf("unhelpful error: %v", err)
	}
}

func TestPlanRejectsMissingManifest(t *testing.T) {
	disks := planDisks(t, 2, 2)
	disks[1] = diskio.NewMemFS() // node 1 lost its disk
	if _, err := Plan(disks, "test-sig"); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("missing manifest accepted: %v", err)
	}
}

func TestPlanRejectsWrongCluster(t *testing.T) {
	disks := planDisks(t, 2, 2)
	// A 2-node run resumed on 3 nodes.
	disks = append(disks, diskio.NewMemFS())
	if err := Save(disks[2], sampleManifest(2, 3, 2), diskio.Accounting{}); err != nil {
		t.Fatal(err)
	}
	if _, err := Plan(disks, "test-sig"); err == nil {
		t.Fatal("cluster size change accepted")
	}
}

func TestPlanRejectsSwappedDisks(t *testing.T) {
	disks := planDisks(t, 2, 2)
	disks[0], disks[1] = disks[1], disks[0]
	if _, err := Plan(disks, "test-sig"); err == nil {
		t.Fatal("swapped node disks accepted")
	}
}

func TestPlanRejectsInputMismatch(t *testing.T) {
	disks := planDisks(t, 2, 2)
	m := sampleManifest(1, 2, 2)
	m.Input.Update([]record.Key{42}) // different input on node 1
	if err := Save(disks[1], m, diskio.Accounting{}); err != nil {
		t.Fatal(err)
	}
	if _, err := Plan(disks, "test-sig"); err == nil {
		t.Fatal("diverging input checksums accepted")
	}
}

func TestSaveSurvivesDirFS(t *testing.T) {
	dir := t.TempDir()
	fs, err := diskio.NewDirFS(dir)
	if err != nil {
		t.Fatal(err)
	}
	m := sampleManifest(0, 1, 4)
	if err := Save(fs, m, diskio.Accounting{}); err != nil {
		t.Fatal(err)
	}
	// A fresh FS over the same directory (a new process) sees the commit.
	fs2, err := diskio.NewDirFS(dir)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Load(fs2)
	if err != nil {
		t.Fatal(err)
	}
	if got.Phase != 4 {
		t.Fatalf("phase %d after reopen", got.Phase)
	}
}

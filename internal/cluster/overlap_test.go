package cluster

import (
	"math"
	"testing"

	"hetsort/internal/vtime"
)

// newOverlapNode builds a 1-node cluster with a unit-cost model so the
// windowed-credit arithmetic is easy to state exactly: 1 s per compute
// op, 1 s per key transferred, block = 1 key → 1 s per block.
func newOverlapNode(t *testing.T) *Node {
	t.Helper()
	c, err := New(Config{
		Slowdowns: []float64{1},
		BlockKeys: 1,
		Cost:      vtime.CostModel{ComputeSec: 1, IOBlockSecPerKey: 1, SeekSec: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	return c.Node(0)
}

func approx(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestOverlapHidesDiskBehindCompute(t *testing.T) {
	n := newOverlapNode(t)
	n.BeginOverlap(2) // capacity: 2 block-seconds of credit
	n.ChargeCompute(3)
	// Credit is capped at the window capacity (2), so of 3 async blocks
	// 2 hide and 1 is exposed as disk time.
	n.ChargeOverlappedIOBlocks(3)
	n.EndOverlap()
	b := n.Attribution()
	if !approx(b.Compute, 3) || !approx(b.Disk, 1) || !approx(b.Overlapped, 2) {
		t.Fatalf("got %v, want compute=3 disk=1 overlapped=2", b)
	}
	if !approx(n.Clock(), 4) {
		t.Fatalf("clock=%f, want 4 (overlapped time must not advance it)", n.Clock())
	}
	if err := vtime.CheckAttribution(n.Clock(), b); err != nil {
		t.Fatal(err)
	}
}

func TestOverlapDiskWithoutComputeStaysExposed(t *testing.T) {
	n := newOverlapNode(t)
	n.BeginOverlap(2)
	n.ChargeOverlappedIOBlocks(5) // no compute yet: nothing to hide behind
	n.EndOverlap()
	b := n.Attribution()
	if !approx(b.Disk, 5) || b.Overlapped != 0 {
		t.Fatalf("got %v, want disk=5 overlapped=0", b)
	}
}

func TestOverlapCreditDiesWithWindow(t *testing.T) {
	n := newOverlapNode(t)
	n.BeginOverlap(4)
	n.ChargeCompute(4)
	n.EndOverlap()
	// Window closed: the accrued credit must not leak into later charges.
	n.BeginOverlap(4)
	n.ChargeOverlappedIOBlocks(2)
	n.EndOverlap()
	b := n.Attribution()
	if !approx(b.Disk, 2) || b.Overlapped != 0 {
		t.Fatalf("credit leaked across windows: %v", b)
	}
	// And compute outside any window accrues nothing.
	n.ChargeCompute(4)
	n.BeginOverlap(4)
	n.ChargeOverlappedIOBlocks(1)
	n.EndOverlap()
	if b = n.Attribution(); !approx(b.Disk, 3) || b.Overlapped != 0 {
		t.Fatalf("out-of-window compute accrued credit: %v", b)
	}
}

func TestOverlapNestedWindows(t *testing.T) {
	n := newOverlapNode(t)
	n.BeginOverlap(2) // reader window: cap 2
	n.BeginOverlap(2) // writer window: cap 2 more → combined 4
	n.ChargeCompute(10)
	n.ChargeOverlappedIOBlocks(3) // all 3 hide (credit 4 → 1)
	n.EndOverlap()
	// Inner window closed: the remaining credit (1) survives because it
	// fits under the outer cap (2).
	n.ChargeOverlappedIOBlocks(3) // 1 hides, 2 exposed
	n.EndOverlap()
	b := n.Attribution()
	if !approx(b.Overlapped, 4) || !approx(b.Disk, 2) {
		t.Fatalf("got %v, want overlapped=4 disk=2", b)
	}
	if err := vtime.CheckAttribution(n.Clock(), b); err != nil {
		t.Fatal(err)
	}
}

func TestOverlapSynchronousChargesUnaffected(t *testing.T) {
	n := newOverlapNode(t)
	n.BeginOverlap(8)
	n.ChargeCompute(10)
	n.ChargeIOBlocks(4) // synchronous charge inside a window: full price
	n.EndOverlap()
	b := n.Attribution()
	if !approx(b.Disk, 4) || b.Overlapped != 0 {
		t.Fatalf("synchronous charge was overlapped: %v", b)
	}
}

func TestResetClocksClearsOverlapState(t *testing.T) {
	n := newOverlapNode(t)
	n.BeginOverlap(4)
	n.ChargeCompute(4)
	n.cluster.ResetClocks()
	// The stale window and credit must be gone: a fresh async charge has
	// nothing to hide behind.
	n.ChargeOverlappedIOBlocks(2)
	b := n.Attribution()
	if !approx(b.Disk, 2) || b.Overlapped != 0 {
		t.Fatalf("ResetClocks left overlap state behind: %v", b)
	}
}

func TestObserveOverlapFeedsMetrics(t *testing.T) {
	n := newOverlapNode(t)
	n.ObserveOverlap(10, 7, 3, 0, 0)
	n.ObserveOverlap(0, 0, 0, 5, 2)
	snap := n.Metrics().Snapshot()
	for name, want := range map[string]float64{
		"disk.prefetch.blocks":           10,
		"disk.prefetch.hits":             7,
		"disk.prefetch.stalls":           3,
		"disk.writebehind.blocks":        5,
		"disk.writebehind.queue.hwm.max": 2,
	} {
		if snap[name] != want {
			t.Fatalf("%s = %v, want %v", name, snap[name], want)
		}
	}
}

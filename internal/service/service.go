// Package service implements hetsortd: a long-running multi-tenant
// sort service in front of the simulated cluster.  Jobs are submitted
// over HTTP (see http.go), admitted against the machine's memory and
// disk budgets, queued when the machine is saturated, and executed as
// Algorithm-1 runs that genuinely contend for the shared machine — with
// k jobs running, every tenant's disk transfers and link occupancy
// stretch by k (cluster.Config.Contention), so multiprogramming costs
// show up in the virtual times exactly as they would on real shared
// drives.  Contention never touches data: a job's output bytes are
// identical at any multiprogramming level.
//
// Every job's artifacts — spec, per-node working files, checkpoint
// manifests, status, trace — live on a storage.Backend under the prefix
// jobs/<id>/, so the whole service state survives a daemon crash: on
// restart, Recover re-admits every job whose durable status is still
// "queued" or "running", resuming the running ones from their
// checkpoint manifests (extsort.Resume) and falling back to a fresh run
// when a job died before its first commit.  Completed jobs are anchored
// by a Merkle root over their artifact set (spec + sorted outputs);
// `hetsortd verify` recomputes the root from the backend alone.
package service

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"hetsort/internal/cluster"
	"hetsort/internal/extsort"
	"hetsort/internal/metrics"
	"hetsort/internal/record"
	"hetsort/internal/storage"
)

// Errors the admission controller returns from Submit; the HTTP layer
// maps them to status codes (429 for backpressure, 422 for budget).
var (
	// ErrQueueFull reports that both the running slots and the wait
	// queue are at capacity — the client should back off and retry.
	ErrQueueFull = errors.New("service: job queue full")
	// ErrBudget reports that the job's memory or disk demand does not
	// fit the machine's remaining budget alongside the admitted jobs.
	ErrBudget = errors.New("service: job exceeds machine budget")
	// ErrClosed reports a submission to a stopped service.
	ErrClosed = errors.New("service: stopped")
)

// MachineConfig describes the one simulated machine all tenants share.
// The perf vector and network are machine properties — jobs choose their
// data and sort parameters, not their hardware.
type MachineConfig struct {
	// Perf is the machine's performance vector (default {1,1,1,1}).
	Perf []int
	// Network is the interconnect name as in hetsort.Config.Network
	// (default fast-ethernet).
	Network string
	// BlockKeys is the disk block size B in keys (default 2048).
	BlockKeys int
	// MemoryBytes bounds the summed per-job memory demand
	// (P·MemoryKeys·4 bytes per admitted job).  Default 256 MiB.
	MemoryBytes int64
	// DiskBytes bounds the summed per-job disk demand (4× the input
	// size: input + runs + received + output).  Default 4 GiB.
	DiskBytes int64
}

func (m *MachineConfig) applyDefaults() {
	if len(m.Perf) == 0 {
		m.Perf = []int{1, 1, 1, 1}
	}
	if m.BlockKeys <= 0 {
		m.BlockKeys = 2048
	}
	if m.MemoryBytes <= 0 {
		m.MemoryBytes = 256 << 20
	}
	if m.DiskBytes <= 0 {
		m.DiskBytes = 4 << 30
	}
}

// Config parameterises a Service.
type Config struct {
	// Machine is the shared virtual machine.
	Machine MachineConfig
	// MaxJobs bounds the concurrently running jobs (default 2).
	MaxJobs int
	// MaxQueue bounds the jobs waiting behind the running ones
	// (default 8); a submission past both bounds gets ErrQueueFull.
	MaxQueue int
}

// Service is the hetsortd daemon core: an admission-controlled job
// queue over one shared simulated machine and one storage backend.
type Service struct {
	cfg   Config
	store storage.Backend

	// tenants counts the currently running jobs; every tenant's
	// cluster samples it as the contention factor on each disk and
	// network charge.
	tenants atomic.Int64

	mu      sync.Mutex
	jobs    map[string]*job
	order   []string // submission order, for List
	queue   []*job
	running int
	resMem  int64 // memory bytes reserved by admitted (queued+running) jobs
	resDisk int64 // disk bytes reserved by admitted jobs
	nextID  int
	closed  bool
	wg      sync.WaitGroup

	// Lifetime counters for /metrics.
	nSubmitted, nDone, nFailed, nCanceled  atomic.Int64
	nRejectedQueue, nRejectedBudget        atomic.Int64
	nRecovered, nResumed, nResumedFallback atomic.Int64

	// jobVsec observes every completed job's virtual makespan; /metrics
	// exposes it as a Prometheus histogram (the bucket-exposition path).
	jobVsec metrics.Histogram
}

// New builds a service over the given backend and recovers every job
// the backend says was queued or in flight when the previous daemon
// died (see Recover).
func New(cfg Config, store storage.Backend) (*Service, error) {
	cfg.Machine.applyDefaults()
	if cfg.MaxJobs <= 0 {
		cfg.MaxJobs = 2
	}
	if cfg.MaxQueue <= 0 {
		cfg.MaxQueue = 8
	}
	s := &Service{cfg: cfg, store: store, jobs: make(map[string]*job), nextID: 1}
	if err := s.recover(); err != nil {
		return nil, err
	}
	return s, nil
}

// Store returns the service's storage backend.
func (s *Service) Store() storage.Backend { return s.store }

// jobByID returns the in-memory job handle, if the id is known.
func (s *Service) jobByID(id string) (*job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// runningJobs returns the handles of currently running jobs in
// submission order (for the per-job /metrics series — bounded by
// MaxJobs, so the label cardinality stays small).
func (s *Service) runningJobs() []*job {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []*job
	for _, id := range s.order {
		if j := s.jobs[id]; j != nil && j.State() == StateRunning {
			out = append(out, j)
		}
	}
	return out
}

// Machine returns the shared machine configuration.
func (s *Service) Machine() MachineConfig { return s.cfg.Machine }

// recover scans the backend for jobs a previous daemon left behind and
// re-admits them: durable state "queued" restarts fresh, "running"
// resumes from the job's checkpoint manifests.  Job IDs continue after
// the highest recovered one.
func (s *Service) recover() error {
	names, err := s.store.List("jobs/")
	if err != nil {
		return fmt.Errorf("service: scanning backend: %w", err)
	}
	var ids []string
	seen := make(map[string]bool)
	for _, n := range names {
		rest, ok := strings.CutPrefix(n, "jobs/")
		if !ok {
			continue
		}
		id, _, ok := strings.Cut(rest, "/")
		if ok && !seen[id] {
			seen[id] = true
			ids = append(ids, id)
		}
	}
	sort.Strings(ids)
	for _, id := range ids {
		if num, ok := strings.CutPrefix(id, "job-"); ok {
			if v, err := strconv.Atoi(num); err == nil && v >= s.nextID {
				s.nextID = v + 1
			}
		}
		st, err := loadStatus(s.store, id)
		if err != nil {
			continue // no durable status yet: the job never started
		}
		j := &job{id: id, status: *st, done: make(chan struct{})}
		if spec, err := loadSpec(s.store, id); err == nil {
			j.spec = *spec
		}
		j.memBytes, j.diskBytes = s.demand(&j.spec)
		switch st.State {
		case StateQueued:
			s.adopt(j, false)
		case StateRunning:
			// The daemon died mid-job; the checkpoint manifests on the
			// job's node trees are the resume point.
			s.adopt(j, true)
			s.nRecovered.Add(1)
		default:
			// Terminal states just become visible again.
			close(j.done)
			s.jobs[id] = j
			s.order = append(s.order, id)
		}
	}
	return nil
}

// adopt re-admits a recovered job (lock not required: only called from
// recover, before the service is shared).
func (s *Service) adopt(j *job, resume bool) {
	j.resume = resume
	s.jobs[j.id] = j
	s.order = append(s.order, j.id)
	s.resMem += j.memBytes
	s.resDisk += j.diskBytes
	if s.running < s.cfg.MaxJobs {
		s.running++
		s.start(j)
	} else {
		j.status.State = StateQueued
		s.queue = append(s.queue, j)
	}
}

// demand estimates a job's machine footprint for admission: memory is
// each node's sort workspace plus the topology's resident link-buffer
// footprint — every node buffers up to its peak redistribution fan-in
// of in-flight messages, p per node for the flat all-to-all versus
// O(r) for tree/grid, so a flat job at large p or message size is
// rejected with 422 here instead of OOM-ing the host mid-run — and
// disk is 4× the input (input + initial runs + received segments +
// output).  Products saturate at MaxInt64 so an absurd spec reads as
// an infinite demand, not an overflowed small (or negative) one that
// slips past the budget check.
func (s *Service) demand(spec *JobSpec) (mem, disk int64) {
	p := len(s.cfg.Machine.Perf)
	mk := spec.MemoryKeys
	if mk <= 0 {
		mk = 1 << 16
	}
	mem = satMul(satMul(int64(p), int64(mk)), record.KeySize)
	links := extsort.Config{
		MessageKeys: spec.MessageKeys,
		Topology:    spec.topology(),
		Radix:       spec.Radix,
	}.LinkMemoryBytes(p)
	if mem += links; mem < 0 {
		mem = math.MaxInt64 // saturate the sum like the products
	}
	disk = satMul(4, spec.inputBytes(s.store))
	return mem, disk
}

// Submit validates and admits a job, returning its ID.  The job starts
// immediately when a running slot is free, otherwise waits in the
// queue; ErrQueueFull and ErrBudget reject it outright.
func (s *Service) Submit(spec JobSpec) (string, error) {
	if err := spec.validate(s.store, &s.cfg.Machine); err != nil {
		if errors.Is(err, ErrBudget) {
			s.nRejectedBudget.Add(1)
		}
		return "", err
	}
	mem, disk := s.demand(&spec)
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return "", ErrClosed
	}
	if s.running+len(s.queue) >= s.cfg.MaxJobs+s.cfg.MaxQueue {
		s.nRejectedQueue.Add(1)
		return "", ErrQueueFull
	}
	// Compare against the remaining headroom (never negative: resMem and
	// resDisk only hold admitted demands) so a saturated demand cannot
	// overflow the sum back into range.
	if mem > s.cfg.Machine.MemoryBytes-s.resMem || disk > s.cfg.Machine.DiskBytes-s.resDisk {
		s.nRejectedBudget.Add(1)
		return "", fmt.Errorf("%w: needs %d B memory / %d B disk, %d / %d available", ErrBudget,
			mem, disk, s.cfg.Machine.MemoryBytes-s.resMem, s.cfg.Machine.DiskBytes-s.resDisk)
	}
	id := fmt.Sprintf("job-%04d", s.nextID)
	s.nextID++
	j := &job{
		id:        id,
		spec:      spec,
		status:    JobStatus{ID: id, State: StateQueued},
		memBytes:  mem,
		diskBytes: disk,
		done:      make(chan struct{}),
	}
	// Durably record the job before acknowledging it, so a submission
	// the client saw accepted is never lost to a daemon crash.
	if err := saveSpec(s.store, id, &spec); err != nil {
		return "", err
	}
	if err := saveStatus(s.store, &j.status); err != nil {
		return "", err
	}
	s.jobs[id] = j
	s.order = append(s.order, id)
	s.resMem += mem
	s.resDisk += disk
	s.nSubmitted.Add(1)
	if s.running < s.cfg.MaxJobs {
		s.running++
		s.start(j)
	} else {
		s.queue = append(s.queue, j)
	}
	return id, nil
}

// start launches j's executor goroutine.  Caller holds s.mu (or has
// exclusive access during recovery).
func (s *Service) start(j *job) {
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		s.tenants.Add(1)
		s.execute(j)
		s.tenants.Add(-1)
		close(j.done)
		s.finish(j)
	}()
}

// finish releases j's reservations and promotes the next queued job.
func (s *Service) finish(j *job) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.resMem -= j.memBytes
	s.resDisk -= j.diskBytes
	s.running--
	switch j.State() {
	case StateDone:
		s.nDone.Add(1)
		s.jobVsec.Observe(j.Status().Time)
	case StateCanceled:
		s.nCanceled.Add(1)
	default:
		s.nFailed.Add(1)
	}
	if s.closed || len(s.queue) == 0 {
		return
	}
	next := s.queue[0]
	s.queue = s.queue[1:]
	s.running++
	s.start(next)
}

// Cancel aborts the named job: a queued job is dequeued immediately, a
// running one is interrupted (its nodes notice at their next blocking
// receive).  Terminal jobs are left alone.
func (s *Service) Cancel(id string) error {
	s.mu.Lock()
	j, ok := s.jobs[id]
	if !ok {
		s.mu.Unlock()
		return fmt.Errorf("service: no job %s", id)
	}
	// Queue membership, not the status string, decides whether the job
	// has an executor goroutine: finish() dequeues a promoted job before
	// its goroutine flips the state to running, so a job can read as
	// "queued" while an executor owns it — closing done here for such a
	// job would collide with the executor's own close.
	dequeued := false
	for i, q := range s.queue {
		if q == j {
			s.queue = append(s.queue[:i], s.queue[i+1:]...)
			s.resMem -= j.memBytes
			s.resDisk -= j.diskBytes
			dequeued = true
			break
		}
	}
	j.statusMu.Lock()
	state := j.status.State
	if state == StateQueued || state == StateRunning {
		j.canceled = true
	}
	cl := j.cl
	j.statusMu.Unlock()
	if dequeued {
		j.setState(StateCanceled, "canceled while queued")
		saveStatus(s.store, j.Status())
		s.nCanceled.Add(1)
		close(j.done)
	}
	s.mu.Unlock()
	// For jobs an executor owns the Interrupt is best-effort (it only
	// lands while the cluster is inside Run); run() and execute() also
	// check j.canceled directly, so a cancel the interrupt misses is
	// still honored.
	if !dequeued && cl != nil {
		cl.Interrupt()
	}
	return nil
}

// Status returns a copy of the named job's status.
func (s *Service) Status(id string) (*JobStatus, error) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("service: no job %s", id)
	}
	st := *j.Status()
	return &st, nil
}

// List returns every known job's status in submission order.
func (s *Service) List() []JobStatus {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]JobStatus, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, *s.jobs[id].Status())
	}
	return out
}

// Wait blocks until the named job reaches a terminal state.
func (s *Service) Wait(id string) error {
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return fmt.Errorf("service: no job %s", id)
	}
	<-j.done
	return nil
}

// Stop refuses new work, interrupts the running jobs and waits for
// their executors to return.  Interrupted jobs keep durable state
// "running", so the next daemon resumes them — Stop is a crash the
// service shuts down politely through.
func (s *Service) Stop() {
	s.mu.Lock()
	s.closed = true
	// Still-queued jobs have no executor goroutine to close their done
	// channel: drain the queue and close them here so Wait returns.
	// Durable status stays "queued" — the next daemon re-admits them.
	queued := s.queue
	s.queue = nil
	for _, j := range queued {
		s.resMem -= j.memBytes
		s.resDisk -= j.diskBytes
	}
	var running []*cluster.Cluster
	for _, j := range s.jobs {
		j.statusMu.Lock()
		if j.status.State == StateRunning && j.cl != nil {
			j.stopping = true
			running = append(running, j.cl)
		}
		j.statusMu.Unlock()
	}
	s.mu.Unlock()
	for _, j := range queued {
		close(j.done)
	}
	for _, cl := range running {
		cl.Interrupt()
	}
	s.wg.Wait()
}

// Tenants returns the number of currently running jobs (the contention
// factor co-tenants observe).
func (s *Service) Tenants() int64 { return s.tenants.Load() }

package extsort

import (
	"fmt"

	"hetsort/internal/histsort"
	"hetsort/internal/record"
)

// selectPivotsHistogram implements the Histogram strategy for step 2:
// iterative splitter refinement (Histogram Sort with Sampling).  Node 0
// drives a histsort.Refiner; each round it broadcasts the candidate
// splitters, every node histograms its sorted file against them in one
// scan (the counting charged to compute, the scan to the PDM counters),
// the per-candidate global ranks reduce up the collective tree, and the
// refinement narrows until every pivot's rank is within the tolerance
// of its heterogeneous perf-share target.  An empty candidate broadcast
// terminates the loop; a final broadcast distributes the agreed pivots.
//
// The count aggregation is exact 64-bit addition — associative and
// commutative — so the flat gather and the radix-r TreeReduce deliver
// the root identical totals and the pivots are bit-identical across
// topologies.  Per-link traffic is O(p) encoded counters per round and
// no node's fan-in exceeds the collective radix, so the strategy holds
// up at p=1024 where the flat sample gather's O(p²) keys collapse.
func (w *worker) selectPivotsHistogram(li int64) ([]record.Key, error) {
	n, cfg := w.n, w.cfg
	p, id := n.P(), n.ID()
	if p == 1 {
		return nil, nil
	}

	// reduce sums an int64 vector over the nodes; only the root sees
	// the totals.  ChargeCompute covers the decode-add-encode combine.
	reduce := func(vals []int64) ([]int64, error) {
		enc := histsort.EncodeCounts(vals)
		if w.hier() {
			agg, err := n.TreeReduce(w.collRadix(), tagSamples, enc,
				func(acc, child []record.Key) ([]record.Key, error) {
					n.ChargeCompute(int64(len(acc)))
					return histsort.AddCounts(acc, child), nil
				})
			if err != nil || id != 0 {
				return nil, err
			}
			return histsort.DecodeCounts(agg), nil
		}
		gathered, err := n.Gather(0, tagSamples, enc)
		if err != nil || id != 0 {
			return nil, err
		}
		sum := make([]int64, len(vals))
		for _, g := range gathered {
			gv := histsort.DecodeCounts(g)
			for i := range sum {
				sum[i] += gv[i]
			}
			n.ChargeCompute(int64(len(gv)))
		}
		return sum, nil
	}

	// Agree on the global key count so the root can set rank targets.
	totals, err := reduce([]int64{li})
	if err != nil {
		return nil, err
	}

	var ref *histsort.Refiner
	if id == 0 {
		total := totals[0]
		shares := cfg.Perf.Shares(total)
		minShare := shares[0]
		targets := make([]int64, p-1)
		var cum int64
		for i, s := range shares {
			if s < minShare {
				minShare = s
			}
			if i < p-1 {
				cum += s
				targets[i] = cum
			}
		}
		tol := int64(cfg.HistTolerance * float64(minShare))
		if tol < 1 {
			tol = 1
		}
		ref, err = histsort.NewRefiner(histsort.Config{
			Targets: targets, Total: total, Tolerance: tol})
		if err != nil {
			return nil, err
		}
	}

	rounds := 0
	for {
		var cands []record.Key
		if id == 0 {
			cands = ref.Candidates()
		}
		cands, err = w.bcast(tagPivots, cands)
		if err != nil {
			return nil, err
		}
		if len(cands) == 0 {
			break
		}
		rounds++
		if id == 0 {
			// The candidates are the only key-valued samples this
			// strategy ships; count them once, at the source.
			w.pstats.SampleKeys += int64(len(cands))
		}
		// One scan of the sorted file: the sublist sizes' prefix sums
		// are exactly the local ranks rank(c_j) = |{k : k <= c_j}|.
		sizes, err := w.countSublists(cands)
		if err != nil {
			return nil, fmt.Errorf("strategy %s round %d: %w", cfg.Strategy, rounds, err)
		}
		ranks := make([]int64, len(cands))
		var run int64
		for j := range cands {
			run += sizes[j]
			ranks[j] = run
		}
		agg, err := reduce(ranks)
		if err != nil {
			return nil, err
		}
		if id == 0 {
			if err := ref.Observe(cands, agg); err != nil {
				return nil, err
			}
		}
	}
	w.pstats.Rounds = rounds

	var pivots []record.Key
	if id == 0 {
		pivots = ref.Pivots()
	}
	return w.bcast(tagPivots, pivots)
}

package polyphase

import (
	"testing"
	"testing/quick"

	"hetsort/internal/diskio"
	"hetsort/internal/record"
	"hetsort/internal/vtime"
)

func TestMergeHeapOrdering(t *testing.T) {
	h := newMergeHeap(8, vtime.Nop{})
	keys := []record.Key{5, 3, 9, 1, 7, 1, 0xffffffff, 0}
	for i, k := range keys {
		h.push(mergeItem{key: k, src: i})
	}
	var out []record.Key
	for h.len() > 0 {
		out = append(out, h.pop().key)
	}
	if !record.IsSorted(out) {
		t.Fatalf("heap pops out of order: %v", out)
	}
	if len(out) != len(keys) {
		t.Fatalf("lost items: %v", out)
	}
}

func TestMergeHeapReplaceTop(t *testing.T) {
	h := newMergeHeap(4, vtime.Nop{})
	for _, k := range []record.Key{10, 20, 30} {
		h.push(mergeItem{key: k})
	}
	h.replaceTop(mergeItem{key: 25})
	if got := h.pop().key; got != 20 {
		t.Fatalf("min after replaceTop = %d, want 20", got)
	}
	if got := h.pop().key; got != 25 {
		t.Fatalf("second pop = %d, want 25", got)
	}
}

func TestMergeHeapProperty(t *testing.T) {
	f := func(keys []record.Key) bool {
		h := newMergeHeap(len(keys), nil)
		for i, k := range keys {
			h.push(mergeItem{key: k, src: i})
		}
		var out []record.Key
		for h.len() > 0 {
			out = append(out, h.pop().key)
		}
		if len(out) != len(keys) {
			return false
		}
		return record.IsSorted(out)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSelectionHeapRunOrdering(t *testing.T) {
	// Items of run r must all come out before any item of run r+1,
	// regardless of key values.
	h := newSelectionHeap(8, vtime.Nop{})
	h.push(selectionItem{key: 1, run: 1})
	h.push(selectionItem{key: 100, run: 0})
	h.push(selectionItem{key: 50, run: 0})
	h.push(selectionItem{key: 0, run: 1})
	want := []selectionItem{{50, 0}, {100, 0}, {0, 1}, {1, 1}}
	for i, w := range want {
		got := h.pop()
		if got != w {
			t.Fatalf("pop %d = %+v want %+v", i, got, w)
		}
	}
}

func TestSelectionHeapReplaceTop(t *testing.T) {
	h := newSelectionHeap(4, nil)
	h.push(selectionItem{key: 10, run: 0})
	h.push(selectionItem{key: 20, run: 0})
	h.replaceTop(selectionItem{key: 5, run: 1}) // demoted to next run
	if got := h.pop(); got.key != 20 || got.run != 0 {
		t.Fatalf("pop = %+v", got)
	}
	if got := h.pop(); got.key != 5 || got.run != 1 {
		t.Fatalf("pop = %+v", got)
	}
}

func TestHeapsChargeCompute(t *testing.T) {
	var charged int64
	m := &captureMeter{compute: &charged}
	h := newMergeHeap(16, m)
	for i := 0; i < 16; i++ {
		h.push(mergeItem{key: record.Key(16 - i)})
	}
	for h.len() > 0 {
		h.pop()
	}
	if charged == 0 {
		t.Fatal("heap operations charged no compute")
	}
}

type captureMeter struct{ compute *int64 }

func (c *captureMeter) ChargeCompute(n int64) { *c.compute += n }
func (c *captureMeter) ChargeIOBlocks(int64)  {}
func (c *captureMeter) ChargeSeek(int64)      {}

func TestDistributorPlacesAllRunsWithinTargets(t *testing.T) {
	for _, tapes := range []int{2, 3, 5} {
		inputs := make([]*tape, tapes)
		for i := range inputs {
			inputs[i] = &tape{}
		}
		d := newDistributor(inputs)
		// Place 100 runs via the public-ish path (pick/placed).
		for r := 0; r < 100; r++ {
			i := d.pick()
			d.placed[i]++
		}
		d.finalize()
		var placed, total int64
		for i, tp := range inputs {
			if d.placed[i] > d.target[i] {
				t.Fatalf("tape %d overfilled: %d > %d", i, d.placed[i], d.target[i])
			}
			if tp.dummies != d.target[i]-d.placed[i] {
				t.Fatalf("tape %d dummies %d inconsistent", i, tp.dummies)
			}
			placed += d.placed[i]
			total += d.target[i]
		}
		if placed != 100 {
			t.Fatalf("placed %d runs", placed)
		}
		if total < 100 {
			t.Fatalf("targets %d below run count", total)
		}
	}
}

func TestDistributorTwoTapeFibonacci(t *testing.T) {
	// T=3 means two input tapes: the classic Fibonacci distribution.
	inputs := []*tape{{}, {}}
	d := newDistributor(inputs)
	sums := []int64{}
	for l := 0; l < 8; l++ {
		sums = append(sums, d.target[0]+d.target[1])
		d.levelUp()
	}
	want := []int64{2, 3, 5, 8, 13, 21, 34, 55}
	for i := range want {
		if sums[i] != want[i] {
			t.Fatalf("fibonacci totals %v want %v", sums, want)
		}
	}
}

func TestRunFormationEmitsSortedRuns(t *testing.T) {
	// Collect runs from the replacement-selection former and check
	// each is sorted and their union is the input.
	fs := newMemInput(t, record.Uniform.Generate(3000, 5, 1))
	var runs [][]record.Key
	sink := &collectSink{runs: &runs}
	n, total, err := formRuns(fs, "input", 16, 64, ReplacementSelection, accounting(), sink)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(len(runs)) || total != 3000 {
		t.Fatalf("n=%d runs=%d total=%d", n, len(runs), total)
	}
	var all []record.Key
	for _, r := range runs {
		if !record.IsSorted(r) {
			t.Fatal("run not sorted")
		}
		all = append(all, r...)
	}
	want := record.ChecksumOf(record.Uniform.Generate(3000, 5, 1))
	if !record.ChecksumOf(all).Equal(want) {
		t.Fatal("runs lost keys")
	}
}

func TestReplacementSelectionAverageRunLength(t *testing.T) {
	// Knuth: expected run length 2M on random input.
	fs := newMemInput(t, record.Uniform.Generate(50000, 9, 1))
	var runs [][]record.Key
	sink := &collectSink{runs: &runs}
	n, total, err := formRuns(fs, "input", 64, 256, ReplacementSelection, accounting(), sink)
	if err != nil {
		t.Fatal(err)
	}
	avg := float64(total) / float64(n)
	if avg < 1.6*256 || avg > 2.4*256 {
		t.Fatalf("average run length %v keys, want ~2M=512", avg)
	}
}

func TestLoadSortRunLengthExactlyM(t *testing.T) {
	fs := newMemInput(t, record.Uniform.Generate(1000, 3, 1))
	var runs [][]record.Key
	sink := &collectSink{runs: &runs}
	_, _, err := formRuns(fs, "input", 16, 256, LoadSort, accounting(), sink)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range runs[:len(runs)-1] {
		if len(r) != 256 {
			t.Fatalf("run %d length %d, want M=256", i, len(r))
		}
	}
	if last := runs[len(runs)-1]; len(last) != 1000%256 {
		t.Fatalf("last run %d keys", len(last))
	}
}

// Helpers.

func newMemInput(t *testing.T, keys []record.Key) diskio.FS {
	t.Helper()
	fs := diskio.NewMemFS()
	if err := diskio.WriteFile(fs, "input", keys, 64, diskio.Accounting{}); err != nil {
		t.Fatal(err)
	}
	return fs
}

func accounting() diskio.Accounting { return diskio.Accounting{} }

type collectSink struct {
	runs *[][]record.Key
	cur  []record.Key
}

func (c *collectSink) beginRun() error { c.cur = nil; return nil }
func (c *collectSink) emit(k record.Key) error {
	c.cur = append(c.cur, k)
	return nil
}
func (c *collectSink) endRun() error {
	*c.runs = append(*c.runs, c.cur)
	return nil
}

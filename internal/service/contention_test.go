package service

import (
	"bytes"
	"sync"
	"testing"

	"hetsort/internal/storage"
)

// TestContentionDeterminism is the multi-tenant determinism contract:
// two jobs run concurrently on the shared machine — their disk and
// network charges stretched by the live tenant count — must produce
// byte-identical outputs and equal Merkle roots to the same jobs run
// serially on a dedicated machine.  Contention is a virtual-time
// effect only.  (Per-node vtime attribution consistency is enforced by
// the service itself: execute fails any job whose categories stop
// summing to its clock, so a Done state certifies CheckAttribution.)
func TestContentionDeterminism(t *testing.T) {
	specs := []JobSpec{testSpec(4000, 21), testSpec(6000, 22)}

	// Serial reference: MaxJobs=1 forces one tenant at a time.
	serialStore := storage.NewObject()
	serialCfg := testConfig()
	serialCfg.MaxJobs = 1
	serial, err := New(serialCfg, serialStore)
	if err != nil {
		t.Fatal(err)
	}
	serialIDs := make([]string, len(specs))
	for i, sp := range specs {
		id, err := serial.Submit(sp)
		if err != nil {
			t.Fatal(err)
		}
		serialIDs[i] = id
		serial.Wait(id) // strictly one at a time
	}
	serial.Stop()

	// Concurrent: both jobs share the machine and contend.
	concStore := storage.NewObject()
	conc, err := New(testConfig(), concStore) // MaxJobs=2
	if err != nil {
		t.Fatal(err)
	}
	concIDs := make([]string, len(specs))
	var wg sync.WaitGroup
	for i, sp := range specs {
		id, err := conc.Submit(sp)
		if err != nil {
			t.Fatal(err)
		}
		concIDs[i] = id
		wg.Add(1)
		go func() { defer wg.Done(); conc.Wait(id) }()
	}
	wg.Wait()
	conc.Stop()

	p := len(testConfig().Machine.Perf)
	for i := range specs {
		sst, err := serial.Status(serialIDs[i])
		if err != nil {
			t.Fatal(err)
		}
		cst, err := conc.Status(concIDs[i])
		if err != nil {
			t.Fatal(err)
		}
		if sst.State != StateDone {
			t.Fatalf("serial job %d: %s (%s)", i, sst.State, sst.Error)
		}
		if cst.State != StateDone {
			t.Fatalf("concurrent job %d: %s (%s)", i, cst.State, cst.Error)
		}
		// Outputs byte-identical at any multiprogramming level.
		so := readOutputs(t, serialStore, serialIDs[i], p)
		co := readOutputs(t, concStore, concIDs[i], p)
		if !bytes.Equal(so, co) {
			t.Fatalf("job %d: concurrent output differs from serial", i)
		}
		// Identical artifacts hash to identical roots.
		if sst.Root != cst.Root {
			t.Fatalf("job %d: roots differ (serial %s, concurrent %s)", i, sst.Root, cst.Root)
		}
		// Both verify end to end from their backends.
		if _, err := VerifyJob(serialStore, serialIDs[i]); err != nil {
			t.Fatal(err)
		}
		if _, err := VerifyJob(concStore, concIDs[i]); err != nil {
			t.Fatal(err)
		}
		// Contention can only cost virtual time, never save it.  (The
		// deterministic proof that a fixed factor stretches disk and
		// network charges exactly lives in internal/cluster's
		// contention tests; how much these two tenants overlapped is up
		// to host scheduling, so only the inequality is stable here.)
		if cst.Time < sst.Time {
			t.Fatalf("job %d: contended makespan %.4f below dedicated %.4f", i, cst.Time, sst.Time)
		}
	}
}

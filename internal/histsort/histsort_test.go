package histsort

import (
	"math/rand"
	"sort"
	"testing"

	"hetsort/internal/record"
)

// drive runs the full protocol against an in-memory sorted key slice,
// returning the pivots and the round count.
func drive(t *testing.T, keys []record.Key, targets []int64, tol int64) ([]record.Key, int) {
	t.Helper()
	r, err := NewRefiner(Config{Targets: targets, Total: int64(len(keys)), Tolerance: tol})
	if err != nil {
		t.Fatal(err)
	}
	for {
		cands := r.Candidates()
		if cands == nil {
			break
		}
		ranks := make([]int64, len(cands))
		for j, c := range cands {
			ranks[j] = int64(sort.Search(len(keys), func(i int) bool { return keys[i] > c }))
		}
		if err := r.Observe(cands, ranks); err != nil {
			t.Fatal(err)
		}
	}
	if !r.Done() {
		t.Fatal("refiner stopped issuing candidates while not done")
	}
	return r.Pivots(), r.Rounds()
}

// rank returns |{k in keys : k <= c}|.
func rank(keys []record.Key, c record.Key) int64 {
	return int64(sort.Search(len(keys), func(i int) bool { return keys[i] > c }))
}

// maxMult returns the largest key multiplicity.
func maxMult(keys []record.Key) int64 {
	var best, run int64
	for i := range keys {
		if i > 0 && keys[i] == keys[i-1] {
			run++
		} else {
			run = 1
		}
		if run > best {
			best = run
		}
	}
	return best
}

// checkBound asserts every pivot's achieved rank is within
// tolerance + multiplicity of its target — the refinement guarantee.
func checkBound(t *testing.T, keys []record.Key, targets []int64, pivots []record.Key, tol int64) {
	t.Helper()
	dup := maxMult(keys)
	for j, pv := range pivots {
		got := rank(keys, pv)
		if d := got - targets[j]; d > tol+dup || d < -(tol+dup) {
			t.Fatalf("pivot %d rank %d misses target %d by %d (tol %d, dup %d)",
				j, got, targets[j], d, tol, dup)
		}
	}
}

func uniformKeys(n int, seed int64) []record.Key {
	rng := rand.New(rand.NewSource(seed))
	keys := make([]record.Key, n)
	for i := range keys {
		keys[i] = record.Key(rng.Uint32())
	}
	sort.Slice(keys, func(a, b int) bool { return keys[a] < keys[b] })
	return keys
}

func evenTargets(n int64, p int) []int64 {
	out := make([]int64, p-1)
	for j := range out {
		out[j] = n * int64(j+1) / int64(p)
	}
	return out
}

func TestUniformConverges(t *testing.T) {
	keys := uniformKeys(100000, 1)
	targets := evenTargets(int64(len(keys)), 16)
	pivots, rounds := drive(t, keys, targets, 100)
	checkBound(t, keys, targets, pivots, 100)
	if rounds == 0 || rounds > DefaultMaxRounds {
		t.Fatalf("rounds = %d", rounds)
	}
	// Interpolation should land fast on a smooth distribution.
	if rounds > 12 {
		t.Fatalf("uniform input took %d rounds; interpolation is not working", rounds)
	}
}

func TestHeterogeneousTargets(t *testing.T) {
	keys := uniformKeys(60000, 2)
	// Perf {1,1,4,4}: cumulative shares 1/10, 2/10, 6/10.
	n := int64(len(keys))
	targets := []int64{n / 10, 2 * n / 10, 6 * n / 10}
	pivots, _ := drive(t, keys, targets, 50)
	checkBound(t, keys, targets, pivots, 50)
}

func TestAllDuplicatesCollapses(t *testing.T) {
	keys := make([]record.Key, 5000)
	for i := range keys {
		keys[i] = 42
	}
	targets := evenTargets(5000, 8)
	pivots, rounds := drive(t, keys, targets, 1)
	if rounds > DefaultMaxRounds {
		t.Fatalf("rounds = %d", rounds)
	}
	// Every pivot must be 41 or 42: the single key's rank jumps from 0
	// to 5000, so each bracket collapses to an endpoint.
	for j, pv := range pivots {
		if pv != 41 && pv != 42 {
			t.Fatalf("pivot %d = %d; want the duplicate plateau boundary", j, pv)
		}
	}
}

func TestDuplicatePlateauBound(t *testing.T) {
	// Half the mass on one key, the rest uniform: the plateau pivot's
	// error is bounded by the multiplicity, everything else is tight.
	keys := uniformKeys(20000, 3)
	for i := 0; i < 20000; i++ {
		keys = append(keys, 1<<30)
	}
	sort.Slice(keys, func(a, b int) bool { return keys[a] < keys[b] })
	targets := evenTargets(int64(len(keys)), 16)
	pivots, _ := drive(t, keys, targets, 40)
	checkBound(t, keys, targets, pivots, 40)
}

func TestEmptyInput(t *testing.T) {
	r, err := NewRefiner(Config{Targets: []int64{0, 0, 0}, Total: 0, Tolerance: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !r.Done() || r.Candidates() != nil || r.Rounds() != 0 {
		t.Fatal("empty input should resolve in zero rounds")
	}
	for _, pv := range r.Pivots() {
		if pv != 0 {
			t.Fatalf("empty-input pivot %d", pv)
		}
	}
}

func TestSingleNode(t *testing.T) {
	r, err := NewRefiner(Config{Targets: nil, Total: 100, Tolerance: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !r.Done() || len(r.Pivots()) != 0 {
		t.Fatal("p=1 should need no refinement")
	}
}

func TestPivotsMonotone(t *testing.T) {
	keys := make([]record.Key, 0, 30000)
	rng := rand.New(rand.NewSource(7))
	// Staircase-ish: a few fat plateaus force endpoint collapses whose
	// raw brackets can cross within tolerance.
	for i := 0; i < 30000; i++ {
		keys = append(keys, record.Key(rng.Intn(4)*1000))
	}
	sort.Slice(keys, func(a, b int) bool { return keys[a] < keys[b] })
	targets := evenTargets(int64(len(keys)), 64)
	pivots, _ := drive(t, keys, targets, 5)
	for j := 1; j < len(pivots); j++ {
		if pivots[j] < pivots[j-1] {
			t.Fatalf("pivots not monotone at %d: %d < %d", j, pivots[j], pivots[j-1])
		}
	}
}

func TestRejectsBadConfig(t *testing.T) {
	if _, err := NewRefiner(Config{Targets: []int64{5}, Total: 3}); err == nil {
		t.Fatal("target beyond total accepted")
	}
	if _, err := NewRefiner(Config{Targets: []int64{3, 1}, Total: 5}); err == nil {
		t.Fatal("decreasing targets accepted")
	}
	if _, err := NewRefiner(Config{Total: -1}); err == nil {
		t.Fatal("negative total accepted")
	}
}

func TestObserveValidation(t *testing.T) {
	r, err := NewRefiner(Config{Targets: []int64{50}, Total: 100, Tolerance: 1})
	if err != nil {
		t.Fatal(err)
	}
	cands := r.Candidates()
	if err := r.Observe(cands, nil); err == nil {
		t.Fatal("mismatched rank slice accepted")
	}
	if err := r.Observe([]record.Key{^record.Key(0) - 1}, []int64{10}); err == nil {
		t.Fatal("ranks for the wrong candidates accepted")
	}
}

func TestCountCodecRoundTrip(t *testing.T) {
	vals := []int64{0, 1, 1 << 31, 1<<40 + 12345, 1<<62 - 1}
	got := DecodeCounts(EncodeCounts(vals))
	if len(got) != len(vals) {
		t.Fatalf("len %d != %d", len(got), len(vals))
	}
	for i := range vals {
		if got[i] != vals[i] {
			t.Fatalf("vals[%d]: %d != %d", i, got[i], vals[i])
		}
	}
	sum := DecodeCounts(AddCounts(EncodeCounts([]int64{1 << 33, 7}), EncodeCounts([]int64{1 << 33, 5})))
	if sum[0] != 1<<34 || sum[1] != 12 {
		t.Fatalf("AddCounts = %v", sum)
	}
}

// TestWorstCaseRounds drives an adversarial plateau structure and
// asserts the midpoint-fallback round bound holds with tolerance 1.
func TestWorstCaseRounds(t *testing.T) {
	keys := make([]record.Key, 0, 1<<16)
	// Exponentially spaced singleton keys: interpolation overshoots
	// every round until the fallback kicks in.
	for i := 0; i < 31; i++ {
		for j := 0; j < 1<<11; j++ {
			keys = append(keys, record.Key(1)<<i)
		}
	}
	sort.Slice(keys, func(a, b int) bool { return keys[a] < keys[b] })
	targets := evenTargets(int64(len(keys)), 32)
	_, rounds := drive(t, keys, targets, 1)
	if rounds > DefaultMaxRounds {
		t.Fatalf("refinement needed %d rounds (cap %d)", rounds, DefaultMaxRounds)
	}
}

package diskio

import (
	"errors"
	"fmt"
	"io"
	"strings"
)

// This file makes D > 1 real at the filesystem layer: a StripedFS
// presents one logical namespace whose files are striped round-robin, in
// fixed units, across D member filesystems (one per simulated disk).
// The bytes a logical file yields are identical to a plain FS — only
// placement changes — so every sort produces byte-identical output at
// any D.  The accounting layer learns which member disk served a block
// through the Placed interface, and the cluster's per-disk virtual-time
// queues turn that placement into parallel I/O steps (a step completes
// when the slowest involved disk does).

// Placed is implemented by files that know which member disk serves a
// given byte offset.  The keyio layer consults it to attribute each
// block transfer to the disk that physically performs it; plain files
// are treated as living on disk 0.
type Placed interface {
	// DiskAt returns the member disk index serving the byte at off.
	DiskAt(off int64) int
}

// StripedFS is an FS that stripes every file across D member
// filesystems in round-robin units of unit bytes: logical unit u of a
// file lives on member u%D, at member offset (u/D)*unit.  Metadata
// operations (Rename, Remove, Names) apply to all members; no data
// moves, so they stay free of I/O charges like their plain-FS
// counterparts.  Callers should pick unit = BlockKeys*record.KeySize so
// one PDM block transfer maps to exactly one member-disk request.
type StripedFS struct {
	members []FS
	unit    int64
}

// NewStripedFS returns a StripedFS over the given member filesystems.
func NewStripedFS(members []FS, unitBytes int64) (*StripedFS, error) {
	if len(members) == 0 {
		return nil, errors.New("diskio: striped FS needs at least one member")
	}
	if unitBytes <= 0 {
		return nil, fmt.Errorf("diskio: invalid stripe unit %d", unitBytes)
	}
	return &StripedFS{members: members, unit: unitBytes}, nil
}

// StripeOver returns an FS striping files across disks prefix-scoped
// views ("d0/", "d1/", ...) of one base filesystem.  With disks <= 1 the
// base is returned unchanged — a single disk needs no striping.  This is
// how the cluster turns a node's scratch FS into its D member disks: on
// a DirFS each member becomes a subdirectory, on a MemFS a name prefix.
func StripeOver(base FS, disks int, unitBytes int64) (FS, error) {
	if disks <= 1 {
		return base, nil
	}
	members := make([]FS, disks)
	for d := range members {
		members[d] = &prefixFS{base: base, prefix: fmt.Sprintf("d%d/", d)}
	}
	return NewStripedFS(members, unitBytes)
}

// Disks returns the number of member filesystems.
func (s *StripedFS) Disks() int { return len(s.members) }

// Create implements FS: the file is created (or truncated) on every
// member, so a logical file always has exactly one chunk per disk, even
// when some chunks stay empty.
func (s *StripedFS) Create(name string) (File, error) {
	f := &stripedFile{fs: s, name: name, writable: true,
		members: make([]File, len(s.members)), mpos: make([]int64, len(s.members))}
	for d, m := range s.members {
		mf, err := m.Create(name)
		if err != nil {
			f.closeAll()
			return nil, fmt.Errorf("diskio: striped create %s on disk %d: %w", name, d, err)
		}
		f.members[d] = mf
	}
	return f, nil
}

// Open implements FS.
func (s *StripedFS) Open(name string) (File, error) {
	f := &stripedFile{fs: s, name: name,
		members: make([]File, len(s.members)), mpos: make([]int64, len(s.members))}
	for d, m := range s.members {
		mf, err := m.Open(name)
		if err != nil {
			f.closeAll()
			return nil, err
		}
		f.members[d] = mf
		sz, err := mf.Seek(0, io.SeekEnd)
		if err != nil {
			f.closeAll()
			return nil, err
		}
		f.mpos[d] = sz
		f.size += sz
	}
	return f, nil
}

// Remove implements FS: the chunk is removed from every member.
func (s *StripedFS) Remove(name string) error {
	var first error
	for _, m := range s.members {
		if err := m.Remove(name); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Rename implements FS: every member chunk moves, no data blocks do.
func (s *StripedFS) Rename(oldName, newName string) error {
	for d, m := range s.members {
		if err := m.Rename(oldName, newName); err != nil {
			return fmt.Errorf("diskio: striped rename on disk %d: %w", d, err)
		}
	}
	return nil
}

// Names implements FS.  Every logical file has a chunk on every member,
// so member 0 is authoritative.
func (s *StripedFS) Names() ([]string, error) {
	return s.members[0].Names()
}

// stripedFile is one logical file handle over the per-member chunks.
// Reads may follow any Seek; writes must be sequential appends (the
// access pattern of every sorter writer), which keeps each member chunk
// a plain sequential file.
type stripedFile struct {
	fs       *StripedFS
	name     string
	members  []File
	mpos     []int64 // current position of each member handle
	off      int64   // logical position
	size     int64   // logical size (bytes written so far when writable)
	writable bool
	closed   bool
}

func (f *stripedFile) Name() string { return f.name }

// DiskAt implements Placed.
func (f *stripedFile) DiskAt(off int64) int {
	if off < 0 {
		off = 0
	}
	return int((off / f.fs.unit) % int64(len(f.members)))
}

// span locates the logical offset: the member disk, the offset inside
// that member's chunk, and how many bytes remain in the current unit.
func (f *stripedFile) span(off int64) (disk int, memberOff, unitLeft int64) {
	u := f.fs.unit
	unit := off / u
	within := off % u
	disk = int(unit % int64(len(f.members)))
	memberOff = (unit/int64(len(f.members)))*u + within
	return disk, memberOff, u - within
}

func (f *stripedFile) Read(p []byte) (int, error) {
	if f.closed {
		return 0, errors.New("diskio: read on closed striped file")
	}
	if f.off >= f.size {
		return 0, io.EOF
	}
	n := 0
	for n < len(p) && f.off < f.size {
		d, mo, left := f.span(f.off)
		want := int64(len(p) - n)
		if want > left {
			want = left
		}
		if rest := f.size - f.off; want > rest {
			want = rest
		}
		if f.mpos[d] != mo {
			if _, err := f.members[d].Seek(mo, io.SeekStart); err != nil {
				return n, err
			}
			f.mpos[d] = mo
		}
		r, err := io.ReadFull(f.members[d], p[n:n+int(want)])
		f.mpos[d] += int64(r)
		f.off += int64(r)
		n += r
		if err != nil {
			return n, fmt.Errorf("diskio: striped read %s disk %d: %w", f.name, d, err)
		}
	}
	return n, nil
}

func (f *stripedFile) Write(p []byte) (int, error) {
	if f.closed {
		return 0, errors.New("diskio: write on closed striped file")
	}
	if !f.writable {
		return 0, errors.New("diskio: striped file opened read-only")
	}
	if f.off != f.size {
		return 0, fmt.Errorf("diskio: non-sequential striped write to %s (off %d, size %d)", f.name, f.off, f.size)
	}
	n := 0
	for n < len(p) {
		d, mo, left := f.span(f.off)
		want := int64(len(p) - n)
		if want > left {
			want = left
		}
		if f.mpos[d] != mo {
			if _, err := f.members[d].Seek(mo, io.SeekStart); err != nil {
				return n, err
			}
			f.mpos[d] = mo
		}
		w, err := f.members[d].Write(p[n : n+int(want)])
		f.mpos[d] += int64(w)
		f.off += int64(w)
		f.size = f.off
		n += w
		if err != nil {
			return n, fmt.Errorf("diskio: striped write %s disk %d: %w", f.name, d, err)
		}
	}
	return n, nil
}

func (f *stripedFile) Seek(offset int64, whence int) (int64, error) {
	if f.closed {
		return 0, errors.New("diskio: seek on closed striped file")
	}
	var base int64
	switch whence {
	case io.SeekStart:
		base = 0
	case io.SeekCurrent:
		base = f.off
	case io.SeekEnd:
		base = f.size
	default:
		return 0, fmt.Errorf("diskio: bad whence %d", whence)
	}
	np := base + offset
	if np < 0 {
		return 0, errors.New("diskio: negative seek position")
	}
	f.off = np
	return np, nil
}

func (f *stripedFile) Close() error {
	if f.closed {
		return nil
	}
	f.closed = true
	return f.closeAll()
}

func (f *stripedFile) closeAll() error {
	var first error
	for _, m := range f.members {
		if m == nil {
			continue
		}
		if err := m.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// prefixFS scopes an FS to a name prefix, giving each striped member its
// own namespace ("d0/", ...) inside one backing store: a subdirectory on
// a DirFS, a key prefix on a MemFS.
type prefixFS struct {
	base   FS
	prefix string
}

func (p *prefixFS) Create(name string) (File, error) { return p.base.Create(p.prefix + name) }
func (p *prefixFS) Open(name string) (File, error)   { return p.base.Open(p.prefix + name) }
func (p *prefixFS) Remove(name string) error         { return p.base.Remove(p.prefix + name) }
func (p *prefixFS) Rename(oldName, newName string) error {
	return p.base.Rename(p.prefix+oldName, p.prefix+newName)
}

func (p *prefixFS) Names() ([]string, error) {
	all, err := p.base.Names()
	if err != nil {
		return nil, err
	}
	var names []string
	for _, n := range all {
		if strings.HasPrefix(n, p.prefix) {
			names = append(names, strings.TrimPrefix(n, p.prefix))
		}
	}
	return names, nil
}

package storage

import (
	"errors"
	"sync/atomic"

	"hetsort/internal/diskio"
)

// ErrInjected is the sentinel a Faulty backend returns once its
// operation budget is exhausted.
var ErrInjected = errors.New("storage: injected fault")

// Faulty wraps a Backend and fails object operations after a fixed
// number of successful ones, mirroring diskio.FaultFS: by default every
// operation past the budget fails forever (a dead object store);
// FailCount > 0 selects the transient mode, where only the next
// FailCount operations fail and the store then recovers — the model of
// a flapping network path to the object store.
//
// Only the object API (Put/Get/Stat/List/Delete) is counted; the FS
// view passes through untouched so the fault scope stays at the
// storage-service boundary.  To fault the block layer too, wrap the
// returned FS in diskio.FaultFS.
type Faulty struct {
	Inner Backend
	// FailAfter is the number of object operations allowed before
	// injection starts.  Zero fails immediately; negative never fails.
	FailAfter int64
	// FailCount, when positive, bounds the number of injected failures
	// (transient fault); zero or negative fails forever.
	FailCount int64

	ops      atomic.Int64
	injected atomic.Int64
}

// NewFaulty wraps inner so that object operations start failing after n
// successful ones (permanently; set FailCount for a transient fault).
func NewFaulty(inner Backend, n int64) *Faulty {
	return &Faulty{Inner: inner, FailAfter: n}
}

// Ops returns the number of object operations observed so far.
func (f *Faulty) Ops() int64 { return f.ops.Load() }

// Injected returns how many operations failed with an injected error.
func (f *Faulty) Injected() int64 { return f.injected.Load() }

func (f *Faulty) allow() error {
	if f.FailAfter < 0 {
		return nil
	}
	over := f.ops.Add(1) - f.FailAfter
	if over <= 0 {
		return nil
	}
	if f.FailCount > 0 && over > f.FailCount {
		return nil // transient fault has passed
	}
	f.injected.Add(1)
	return ErrInjected
}

// Put implements Backend.
func (f *Faulty) Put(name string, data []byte) error {
	if err := f.allow(); err != nil {
		return err
	}
	return f.Inner.Put(name, data)
}

// Get implements Backend.
func (f *Faulty) Get(name string) ([]byte, error) {
	if err := f.allow(); err != nil {
		return nil, err
	}
	return f.Inner.Get(name)
}

// Stat implements Backend.
func (f *Faulty) Stat(name string) (int64, error) {
	if err := f.allow(); err != nil {
		return 0, err
	}
	return f.Inner.Stat(name)
}

// List implements Backend.
func (f *Faulty) List(prefix string) ([]string, error) {
	if err := f.allow(); err != nil {
		return nil, err
	}
	return f.Inner.List(prefix)
}

// Delete implements Backend.
func (f *Faulty) Delete(name string) error {
	if err := f.allow(); err != nil {
		return err
	}
	return f.Inner.Delete(name)
}

// FS implements Backend, passing through to the inner store.
func (f *Faulty) FS(prefix string) (diskio.FS, error) {
	return f.Inner.FS(prefix)
}

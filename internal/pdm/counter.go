package pdm

import (
	"fmt"
	"sync/atomic"
)

// PhaseCount is the number of I/O attribution phases a Counter tracks:
// phase 0 collects unattributed transfers (setup, checkpoint manifests,
// recovery), phases 1..5 map to Algorithm 1's five steps.
const PhaseCount = 6

// Counter accumulates I/O operations in PDM units (block transfers).  It
// is safe for concurrent use; the disk layer charges it from every node
// goroutine.  The zero value is ready to use.
//
// Besides the run totals, every operation is also attributed to the
// current phase (SetPhase), so observability consumers can split block
// I/O by Algorithm-1 step without bracketing snapshots.
type Counter struct {
	readBlocks  atomic.Int64
	writeBlocks atomic.Int64
	seeks       atomic.Int64

	phase  atomic.Int32
	phases [PhaseCount]phaseCell
}

type phaseCell struct {
	reads, writes, seeks atomic.Int64
}

// SetPhase selects the phase (0..PhaseCount-1) subsequent operations are
// attributed to.  Out-of-range values clamp to phase 0.
func (c *Counter) SetPhase(p int) {
	if p < 0 || p >= PhaseCount {
		p = 0
	}
	c.phase.Store(int32(p))
}

// CurrentPhase returns the phase operations are being attributed to.
func (c *Counter) CurrentPhase() int { return int(c.phase.Load()) }

// AddRead records n block reads.
func (c *Counter) AddRead(n int64) {
	c.readBlocks.Add(n)
	c.phases[c.phase.Load()].reads.Add(n)
}

// AddWrite records n block writes.
func (c *Counter) AddWrite(n int64) {
	c.writeBlocks.Add(n)
	c.phases[c.phase.Load()].writes.Add(n)
}

// AddSeek records n random repositionings (not counted in PDM transfers
// but useful to observe access patterns).
func (c *Counter) AddSeek(n int64) {
	c.seeks.Add(n)
	c.phases[c.phase.Load()].seeks.Add(n)
}

// Reads returns the number of block reads recorded so far.
func (c *Counter) Reads() int64 { return c.readBlocks.Load() }

// Writes returns the number of block writes recorded so far.
func (c *Counter) Writes() int64 { return c.writeBlocks.Load() }

// Seeks returns the number of seeks recorded so far.
func (c *Counter) Seeks() int64 { return c.seeks.Load() }

// Total returns reads+writes, the PDM I/O complexity measure.
func (c *Counter) Total() int64 { return c.Reads() + c.Writes() }

// Reset zeroes the counter, including the per-phase attribution and the
// current phase.
func (c *Counter) Reset() {
	c.readBlocks.Store(0)
	c.writeBlocks.Store(0)
	c.seeks.Store(0)
	c.phase.Store(0)
	for i := range c.phases {
		c.phases[i].reads.Store(0)
		c.phases[i].writes.Store(0)
		c.phases[i].seeks.Store(0)
	}
}

// Snapshot returns an immutable copy of the current values.
func (c *Counter) Snapshot() IOStats {
	return IOStats{Reads: c.Reads(), Writes: c.Writes(), Seeks: c.Seeks()}
}

// PhaseSnapshot returns an immutable copy of the per-phase attribution:
// index 0 is unattributed I/O, 1..5 are Algorithm 1's steps.
func (c *Counter) PhaseSnapshot() [PhaseCount]IOStats {
	var out [PhaseCount]IOStats
	for i := range c.phases {
		out[i] = IOStats{
			Reads:  c.phases[i].reads.Load(),
			Writes: c.phases[i].writes.Load(),
			Seeks:  c.phases[i].seeks.Load(),
		}
	}
	return out
}

// IOStats is an immutable snapshot of a Counter.
type IOStats struct {
	Reads  int64
	Writes int64
	Seeks  int64
}

// Total returns reads+writes.
func (s IOStats) Total() int64 { return s.Reads + s.Writes }

// Add returns the element-wise sum of two snapshots.
func (s IOStats) Add(t IOStats) IOStats {
	return IOStats{Reads: s.Reads + t.Reads, Writes: s.Writes + t.Writes, Seeks: s.Seeks + t.Seeks}
}

// Sub returns the element-wise difference s-t; useful to measure one
// algorithm step with a shared counter.
func (s IOStats) Sub(t IOStats) IOStats {
	return IOStats{Reads: s.Reads - t.Reads, Writes: s.Writes - t.Writes, Seeks: s.Seeks - t.Seeks}
}

func (s IOStats) String() string {
	return fmt.Sprintf("IO{reads=%d writes=%d seeks=%d total=%d}", s.Reads, s.Writes, s.Seeks, s.Total())
}

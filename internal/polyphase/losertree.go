package polyphase

import (
	"errors"
	"io"

	"hetsort/internal/record"
	"hetsort/internal/vtime"
)

// MergeSource is a sorted key stream that exposes its current in-memory
// block to the merge kernel, so the kernel can move whole chunks instead
// of single keys.  diskio.Reader implements it for file-backed runs and
// cluster.Stream for in-flight redistribution messages.
type MergeSource interface {
	// Buffered returns the keys decoded and not yet consumed.  The
	// slice stays valid until the next Discard or Fill call.
	Buffered() []record.Key
	// Discard consumes the first n buffered keys; the keys that remain
	// buffered are exactly Buffered()[n:] from before the call.
	Discard(n int)
	// Fill makes at least one key available when the buffer is empty.
	// It returns io.EOF once the source is exhausted.  The kernel only
	// calls it with an empty buffer.
	Fill() error
}

// MergeObserver is an optional extension of vtime.Meter: a meter that
// also implements it receives the merge kernel's counters when a Merge
// finishes — emitted keys, emitted chunks, chunks that took the
// block-copy fast path (more than one key moved per tree replay), and
// tournament-tree comparisons.  cluster.Node implements it to feed the
// per-node metrics registry; the int64-only signature keeps this package
// free of a metrics dependency.
type MergeObserver interface {
	ObserveMerge(keys, chunks, fastChunks, comparisons int64)
}

// exhausted is the sentinel head for a drained source; it compares
// greater than any 32-bit key, so a drained source never wins a match.
const exhausted = ^uint64(0)

var errEmptyFill = errors.New("polyphase: merge source Fill made no keys available")

// Merge streams the sorted sources into emit in ascending key order
// using a tournament ("loser") tree: tree[j] holds the loser of the
// match at internal node j, tree[0] the overall winner, so advancing
// the winner replays exactly one leaf-to-root path — ceil(log2 k)
// comparisons, against ~2·log2 k for a binary heap's sift.
//
// The kernel also has a block-copy fast path.  In a min-tournament the
// runner-up must have lost its match directly against the winner, so it
// sits on the winner's root path; every buffered winner key ≤ that
// runner-up can be emitted as one chunk with no per-key tree work.  With
// k sources over B-key blocks the expected chunk is B/k keys, turning
// per-key heap traffic into per-chunk traffic.
//
// Compute is charged per chunk: the emitted keys (the copy/scan work)
// plus one replayed path (~2 ops per level for compare+swap).  emit
// receives chunks that alias the sources' buffers and must not retain
// them.  A nil meter charges nothing.
//
// Merge runs with multi-block galloping enabled; use MergeOpt to turn
// it off (e.g. as an ablation baseline).
func Merge(srcs []MergeSource, meter vtime.Meter, emit func([]record.Key) error) error {
	return MergeOpt(srcs, meter, emit, MergeOptions{})
}

// MergeOptions tunes the merge kernel without changing its output.
type MergeOptions struct {
	// NoGallop disables the multi-block galloping extension of the
	// block-copy fast path.  The emitted byte stream and the PDM I/O
	// schedule are identical either way; only the compute charge per
	// winner run changes (galloping replaces one tree replay per extra
	// block with a single guide comparison).
	NoGallop bool
}

// MergeOpt is Merge with explicit kernel options.
func MergeOpt(srcs []MergeSource, meter vtime.Meter, emit func([]record.Key) error, opt MergeOptions) error {
	if meter == nil {
		meter = vtime.Nop{}
	}
	k := len(srcs)
	if k == 0 {
		return nil
	}
	// Kernel statistics, flushed once per Merge to the optional
	// observer (no per-chunk interface calls on the hot path).
	var oKeys, oChunks, oFast, oComps int64
	if obs, ok := meter.(MergeObserver); ok {
		defer func() { obs.ObserveMerge(oKeys, oChunks, oFast, oComps) }()
	}

	// k2 leaves, the smallest power of two ≥ k; padding leaves are
	// permanently exhausted ghosts.
	k2, levels := 1, 0
	for k2 < k {
		k2 *= 2
		levels++
	}
	// bases/pos mirror each source's Buffered() locally: bases[i] is
	// only rewritten after a Fill, and per-chunk consumption advances
	// the integer pos[i] — an int store, so the hot loop never writes a
	// pointer (no GC write barriers).
	heads := make([]uint64, k2)
	bases := make([][]record.Key, k)
	pos := make([]int, k)
	active := 0
	for i := range heads {
		heads[i] = exhausted
		if i >= k {
			continue
		}
		if len(srcs[i].Buffered()) == 0 {
			switch err := srcs[i].Fill(); err {
			case nil:
			case io.EOF:
				continue
			default:
				return err
			}
		}
		if bases[i] = srcs[i].Buffered(); len(bases[i]) > 0 {
			heads[i] = uint64(bases[i][0])
			active++
		}
	}
	if active == 0 {
		return nil
	}

	// Build: play every match once, recording losers.
	winner := make([]int, 2*k2)
	tree := make([]int, k2) // tree[j]: loser at node j; tree[0]: winner
	for i := 0; i < k2; i++ {
		winner[k2+i] = i
	}
	for j := k2 - 1; j >= 1; j-- {
		a, b := winner[2*j], winner[2*j+1]
		if heads[a] <= heads[b] {
			winner[j], tree[j] = a, b
		} else {
			winner[j], tree[j] = b, a
		}
	}
	tree[0] = winner[1]
	meter.ChargeCompute(int64(k2))
	oComps += int64(k2 - 1) // one match per internal node to build

	// Compute charges are batched in pending and flushed before every
	// Fill call and on return: the virtual clock is only observed at
	// those interaction points (Fill may Recv or do charged I/O), so
	// batching between them cannot change any cross-node timing.
	var pending int64
	for {
		w := tree[0]
		if heads[w] == exhausted {
			meter.ChargeCompute(pending)
			return nil
		}
		// The runner-up is the least head among the losers stored on
		// the winner's root path (it lost directly to the winner).
		second := exhausted
		for j := (k2 + w) >> 1; j >= 1; j >>= 1 {
			if h := heads[tree[j]]; h < second {
				second = h
			}
		}
		buf := bases[w][pos[w]:]
		var cnt int
		switch {
		case len(buf) == 1 || uint64(buf[1]) > second:
			cnt = 1 // tight interleaving: the winner yields one key
		case uint64(buf[len(buf)-1]) <= second:
			cnt = len(buf) // whole block below the contender
		default:
			// buf[1] <= second < buf[len-1]: first index > second.
			lo, hi := 2, len(buf)-1
			for lo < hi {
				mid := int(uint(lo+hi) >> 1)
				if uint64(buf[mid]) <= second {
					lo = mid + 1
				} else {
					hi = mid
				}
			}
			cnt = lo
		}
		if err := emit(buf[:cnt]); err != nil {
			meter.ChargeCompute(pending)
			return err
		}
		srcs[w].Discard(cnt)
		pending += int64(cnt) + int64(2*levels) + 1
		oKeys += int64(cnt)
		oChunks++
		if cnt > 1 {
			oFast++ // block-copy fast path: a multi-key chunk per replay
		}
		oComps += int64(2 * levels) // runner-up scan + path replay
		pos[w] += cnt
		if pos[w] == len(bases[w]) {
			meter.ChargeCompute(pending)
			pending = 0
			switch err := srcs[w].Fill(); err {
			case nil:
				if bases[w] = srcs[w].Buffered(); len(bases[w]) == 0 {
					return errEmptyFill
				}
				pos[w] = 0
			case io.EOF:
			default:
				return err
			}
		}
		// Multi-block galloping: while the freshly filled block still
		// sits entirely at or below the runner-up, it can be emitted
		// whole for a single guide comparison — an exponential-search
		// style winner run that moves several blocks per tree replay.
		// The Fill sequence (and hence the PDM I/O schedule) is exactly
		// what the chunk-at-a-time path would have issued.
		for !opt.NoGallop && pos[w] < len(bases[w]) &&
			uint64(bases[w][len(bases[w])-1]) <= second {
			gbuf := bases[w][pos[w]:]
			if err := emit(gbuf); err != nil {
				meter.ChargeCompute(pending)
				return err
			}
			srcs[w].Discard(len(gbuf))
			pending += int64(len(gbuf)) + 1 // copy work + the guide comparison
			oKeys += int64(len(gbuf))
			oChunks++
			oFast++
			oComps++
			pos[w] += len(gbuf)
			meter.ChargeCompute(pending)
			pending = 0
			switch err := srcs[w].Fill(); err {
			case nil:
				if bases[w] = srcs[w].Buffered(); len(bases[w]) == 0 {
					return errEmptyFill
				}
				pos[w] = 0
			case io.EOF:
			default:
				return err
			}
		}
		if pos[w] < len(bases[w]) {
			heads[w] = uint64(bases[w][pos[w]])
		} else {
			heads[w] = exhausted
		}
		// Replay the winner's path with its new head.
		x := w
		for j := (k2 + w) >> 1; j >= 1; j >>= 1 {
			if heads[tree[j]] < heads[x] {
				tree[j], x = x, tree[j]
			}
		}
		tree[0] = x
	}
}

package experiments

import (
	"hetsort/internal/cluster"
	"hetsort/internal/stats"
)

// Table 1 of the paper is the static description of the testbed: four
// Alpha 21164 EV56 533 MHz nodes with SCSI /work partitions on Fast
// Ethernet.  Table1 reproduces it as the description of the simulated
// cluster: which paper machine each simulated node stands in for, its
// load factor, and the modelled interconnects.

// Table1Row describes one simulated node.
type Table1Row struct {
	Node      int
	PaperNode string
	Slowdown  float64
	Perf      int
	Disk      string
}

// Table1 returns the simulated testbed description.  Node order follows
// PaperVector: nodes 0,1 are the loaded machines (siegrune, rossweisse),
// nodes 2,3 the fast ones (helmvige, grimgerde).
func Table1(o Options) []Table1Row {
	o = o.withDefaults()
	names := []string{"siegrune", "rossweisse", "helmvige", "grimgerde"}
	slow := PaperVector.Slowdowns()
	rows := make([]Table1Row, len(PaperVector))
	for i := range rows {
		disk := "in-memory FS"
		if o.OnDisk {
			disk = "directory-backed FS"
		}
		rows[i] = Table1Row{
			Node:      i,
			PaperNode: names[i],
			Slowdown:  slow[i],
			Perf:      PaperVector[i],
			Disk:      disk,
		}
	}
	return rows
}

// Table1String renders the configuration including the two network
// models.
func Table1String(rows []Table1Row) string {
	t := &stats.Table{
		Title:   "Table 1: simulated cluster configuration (stand-ins for the paper's Alpha nodes)",
		Headers: []string{"Node", "Paper machine", "Load", "perf[i]", "Disk"},
	}
	for _, r := range rows {
		t.AddRow(r.Node, r.PaperNode, r.Slowdown, r.Perf, r.Disk)
	}
	out := t.String()
	out += "Networks: " + cluster.FastEthernet().String() + ", " + cluster.Myrinet().String() + "\n"
	return out
}

// Package pdm implements the Parallel Disk Model (PDM) of Vitter and
// Shriver as used by the paper: problem sizes are measured in data items,
// I/O complexity is measured in block transfers, and the model is
// parameterised by
//
//	N = problem size (items)
//	M = internal memory size (items)
//	B = block transfer size (items)
//	D = number of independent disk drives
//	P = number of CPUs
//
// with M < N and 1 <= D*B <= M/2.  The package provides parameter
// validation, the theoretical sorting bound
//
//	Sort(N) = Theta((n/D) * log_m(n))    where n = N/B, m = M/B,
//
// and thread-safe I/O counters that the disk layer charges so algorithms
// can be checked against their per-step I/O budgets.
package pdm

import (
	"errors"
	"fmt"
	"math"
)

// Params holds the five PDM parameters.  The zero value is not valid; use
// New or fill the fields and call Validate.
type Params struct {
	N int64 // problem size in items
	M int64 // internal memory size in items
	B int64 // block size in items
	D int64 // independent disks
	P int64 // CPUs
}

// New builds a Params and validates it.
func New(n, m, b, d, p int64) (Params, error) {
	pr := Params{N: n, M: m, B: b, D: d, P: p}
	if err := pr.Validate(); err != nil {
		return Params{}, err
	}
	return pr, nil
}

// ErrInvalidParams wraps all parameter-validation failures.
var ErrInvalidParams = errors.New("pdm: invalid parameters")

// Validate checks the PDM well-formedness constraints: all parameters
// positive, M < N (the problem is out of core), and 1 <= D*B <= M/2 so
// that at least two stripes fit in memory (required by merge- and
// distribution-based methods).
func (p Params) Validate() error {
	switch {
	case p.N <= 0:
		return fmt.Errorf("%w: N=%d must be positive", ErrInvalidParams, p.N)
	case p.M <= 0:
		return fmt.Errorf("%w: M=%d must be positive", ErrInvalidParams, p.M)
	case p.B <= 0:
		return fmt.Errorf("%w: B=%d must be positive", ErrInvalidParams, p.B)
	case p.D <= 0:
		return fmt.Errorf("%w: D=%d must be positive", ErrInvalidParams, p.D)
	case p.P <= 0:
		return fmt.Errorf("%w: P=%d must be positive", ErrInvalidParams, p.P)
	case p.M >= p.N:
		return fmt.Errorf("%w: M=%d must be smaller than N=%d (problem must be out of core)", ErrInvalidParams, p.M, p.N)
	case p.D*p.B > p.M/2:
		return fmt.Errorf("%w: D*B=%d exceeds M/2=%d", ErrInvalidParams, p.D*p.B, p.M/2)
	}
	return nil
}

// BlocksN returns n = ceil(N/B), the problem size in blocks.
func (p Params) BlocksN() int64 { return ceilDiv(p.N, p.B) }

// BlocksM returns m = floor(M/B), the memory size in blocks.
func (p Params) BlocksM() int64 { return p.M / p.B }

// SortBound returns the PDM sorting bound (n/D)*ceil(log_m n) in block
// I/Os (Theorem 1 of the paper, constants dropped).  For n <= m a single
// pass suffices and the bound degenerates to n/D.
func (p Params) SortBound() int64 {
	n := p.BlocksN()
	m := p.BlocksM()
	passes := LogCeil(n, m)
	if passes < 1 {
		passes = 1
	}
	return ceilDiv(n, p.D) * passes
}

// ScanBound returns the number of block I/Os needed to read the input
// once: ceil(n/D).
func (p Params) ScanBound() int64 { return ceilDiv(p.BlocksN(), p.D) }

// SequentialSortIOs returns the paper's step-1 budget for one node
// holding l items: 2*ceil(l/B)*(1+ceil(log_m ceil(l/B))) block transfers
// (the paper states it in item terms; we use block terms throughout).
func (p Params) SequentialSortIOs(l int64) int64 {
	lb := ceilDiv(l, p.B)
	return 2 * lb * (1 + LogCeil(lb, p.BlocksM()))
}

// PartitionIOs returns the paper's step-3 budget for one node holding q
// items: 2*ceil(q/B) block transfers (read everything once, write
// everything once).
func (p Params) PartitionIOs(q int64) int64 { return 2 * ceilDiv(q, p.B) }

// RedistributionIOs returns the paper's step-4 budget for one node that
// ends up holding l items: 2*ceil(l/B) (read on the sender side, write on
// the receiver side).
func (p Params) RedistributionIOs(l int64) int64 { return 2 * ceilDiv(l, p.B) }

// MergeIOs returns the step-5 budget for one node externally merging
// fanin sorted files totaling q items with a t-tape merger: each pass
// reads and writes every block once, and with fan-in t-1 per pass,
// ceil(log_{t-1} fanin) passes suffice.  Partial tail blocks cost up to
// one extra transfer per input file per pass, covered by the fanin term.
func (p Params) MergeIOs(q, fanin, tapes int64) int64 {
	if fanin <= 0 {
		return 0
	}
	fan := tapes - 1
	if fan < 2 {
		fan = 2
	}
	passes := LogCeil(fanin, fan)
	if passes < 1 {
		passes = 1
	}
	return (2*ceilDiv(q, p.B) + fanin) * passes
}

// LogCeil returns ceil(log_base(x)) for x >= 1 and base >= 2, computed
// with integer arithmetic to avoid float rounding surprises.
func LogCeil(x, base int64) int64 {
	if x <= 1 {
		return 0
	}
	if base < 2 {
		base = 2
	}
	var k int64
	v := int64(1)
	for v < x {
		// Guard against overflow: if v*base would overflow it is
		// certainly >= x for any realistic x.
		if v > math.MaxInt64/base {
			return k + 1
		}
		v *= base
		k++
	}
	return k
}

func ceilDiv(a, b int64) int64 {
	if b <= 0 {
		panic("pdm: division by non-positive block size")
	}
	return (a + b - 1) / b
}

// String renders the parameters in the paper's notation.
func (p Params) String() string {
	return fmt.Sprintf("PDM{N=%d M=%d B=%d D=%d P=%d n=%d m=%d}",
		p.N, p.M, p.B, p.D, p.P, p.BlocksN(), p.BlocksM())
}

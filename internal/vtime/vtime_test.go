package vtime

import "testing"

func TestNopImplementsMeter(t *testing.T) {
	var m Meter = Nop{}
	// Must be callable without effect or panic.
	m.ChargeCompute(1 << 40)
	m.ChargeIOBlocks(-5)
	m.ChargeSeek(0)
}

func TestDefaultCostModelCalibration(t *testing.T) {
	cm := DefaultCostModel()
	if cm.ComputeSec <= 0 || cm.IOBlockSecPerKey <= 0 || cm.SeekSec <= 0 {
		t.Fatalf("non-positive costs: %+v", cm)
	}
	// The calibration target: polyphase-sorting 2^21 keys costs about
	// 2^21*21 comparisons worth of compute plus ~3 read+write passes,
	// and must land in the paper's ~23 s ballpark.
	n := float64(1 << 21)
	est := n*21*cm.ComputeSec + 6*n*cm.IOBlockSecPerKey
	if est < 10 || est > 40 {
		t.Fatalf("calibration estimate %v s far from the paper's 22.92 s", est)
	}
	// A seek must cost orders of magnitude more than one key transfer
	// (the premise of out-of-core algorithm design).
	if cm.SeekSec < 100*cm.IOBlockSecPerKey {
		t.Fatal("seeks should dwarf streaming transfers")
	}
}

type capture struct {
	compute, blocks, seeks int64
}

func (c *capture) ChargeCompute(n int64)  { c.compute += n }
func (c *capture) ChargeIOBlocks(n int64) { c.blocks += n }
func (c *capture) ChargeSeek(n int64)     { c.seeks += n }

func TestMeterInterfaceContract(t *testing.T) {
	var m Meter = &capture{}
	m.ChargeCompute(3)
	m.ChargeIOBlocks(2)
	m.ChargeSeek(1)
	c := m.(*capture)
	if c.compute != 3 || c.blocks != 2 || c.seeks != 1 {
		t.Fatalf("capture %+v", c)
	}
}

func TestBreakdownArithmetic(t *testing.T) {
	var b Breakdown
	b.Charge(Compute, 1)
	b.Charge(Disk, 2)
	b.Charge(Network, 3)
	b.Charge(Idle, 4)
	if b.Total() != 10 {
		t.Fatalf("total = %v, want 10", b.Total())
	}
	sum := b.Add(b)
	if sum.Total() != 20 || sum.Disk != 4 {
		t.Fatalf("add = %+v", sum)
	}
	if d := sum.Sub(b); d != b {
		t.Fatalf("sub = %+v, want %+v", d, b)
	}
	// Unknown categories fall into idle so no time is ever dropped.
	b.Charge(Category(99), 5)
	if b.Idle != 9 {
		t.Fatalf("idle = %v, want 9", b.Idle)
	}
}

func TestCategoryStrings(t *testing.T) {
	want := map[Category]string{Compute: "compute", Disk: "disk", Network: "network", Idle: "idle"}
	for c, s := range want {
		if c.String() != s {
			t.Fatalf("Category(%d).String() = %q, want %q", c, c.String(), s)
		}
	}
}

func TestCheckAttribution(t *testing.T) {
	b := Breakdown{Compute: 1, Disk: 2, Network: 3, Idle: 4}
	if err := CheckAttribution(10, b); err != nil {
		t.Fatalf("exact attribution rejected: %v", err)
	}
	// Within tolerance of a large clock.
	if err := CheckAttribution(10+5e-9, b); err != nil {
		t.Fatalf("tolerable drift rejected: %v", err)
	}
	if err := CheckAttribution(11, b); err == nil {
		t.Fatal("a missing second passed the invariant check")
	}
	if err := CheckAttribution(0, Breakdown{Idle: 1e-6}); err == nil {
		t.Fatal("unattributed time on a zero clock passed")
	}
}

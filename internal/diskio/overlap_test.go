package diskio

import (
	"bytes"
	"errors"
	"io"
	"testing"

	"hetsort/internal/pdm"
	"hetsort/internal/record"
	"hetsort/internal/vtime"
)

// overlapMeter records OverlapMeter and OverlapObserver traffic so the
// tests can check the consumer-side accounting protocol.
type overlapMeter struct {
	vtime.Nop
	begins, ends       int
	overlapped, direct int64
	prefetched, hits   int64
	stalls, wbBlocks   int64
	wbHWM              int64
}

func (m *overlapMeter) BeginOverlap(int)                 { m.begins++ }
func (m *overlapMeter) EndOverlap()                      { m.ends++ }
func (m *overlapMeter) ChargeOverlappedIOBlocks(n int64) { m.overlapped += n }
func (m *overlapMeter) ChargeIOBlocks(n int64)           { m.direct += n }
func (m *overlapMeter) ObserveOverlap(pf, hits, stalls, wb, hwm int64) {
	m.prefetched += pf
	m.hits += hits
	m.stalls += stalls
	m.wbBlocks += wb
	if hwm > m.wbHWM {
		m.wbHWM = hwm
	}
}

func TestPrefetchReaderMatchesReader(t *testing.T) {
	for name, mk := range fsFactories(t) {
		t.Run(name, func(t *testing.T) {
			fs := mk()
			keys := record.Uniform.Generate(1000, 7, 1) // 15 full blocks + 1 partial at 64
			if err := WriteFile(fs, "x", keys, 64, Accounting{}); err != nil {
				t.Fatal(err)
			}
			var syncC, pfC pdm.Counter
			sf, _ := fs.Open("x")
			sr := NewReader(sf, 64, Accounting{Counter: &syncC})
			want, err := readAll(sr)
			if err != nil {
				t.Fatal(err)
			}
			sr.Release()
			sf.Close()

			pf, _ := fs.Open("x")
			m := &overlapMeter{}
			pr := NewPrefetchReader(pf, 64, Accounting{Counter: &pfC, Meter: m}, 4)
			got, err := readAll(pr)
			if err != nil {
				t.Fatal(err)
			}
			pr.Release()
			pf.Close()

			if len(got) != len(want) {
				t.Fatalf("prefetch read %d keys, sync read %d", len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("key %d: prefetch %d sync %d", i, got[i], want[i])
				}
			}
			if pfC.Reads() != syncC.Reads() {
				t.Fatalf("prefetch charged %d block reads, sync %d", pfC.Reads(), syncC.Reads())
			}
			if m.overlapped != pfC.Reads() {
				t.Fatalf("overlap meter saw %d blocks, counter %d", m.overlapped, pfC.Reads())
			}
			if m.begins != 1 || m.ends != 1 {
				t.Fatalf("window begins=%d ends=%d, want 1/1", m.begins, m.ends)
			}
			if m.prefetched != pfC.Reads() {
				t.Fatalf("observer saw %d prefetched blocks, counter %d", m.prefetched, pfC.Reads())
			}
			if m.hits+m.stalls == 0 {
				t.Fatal("no fill outcomes observed")
			}
		})
	}
}

func readAll(r BlockReader) ([]record.Key, error) {
	var out []record.Key
	buf := make([]record.Key, 50)
	for {
		n, err := r.ReadKeys(buf)
		out = append(out, buf[:n]...)
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
		if n == 0 {
			return out, nil
		}
	}
}

// TestPrefetchReaderEarlyRelease checks the count-preservation rule:
// blocks the producer read ahead but the consumer never took are not
// charged, exactly as a synchronous reader would never have read them.
func TestPrefetchReaderEarlyRelease(t *testing.T) {
	fs := NewMemFS()
	if err := WriteFile(fs, "x", make([]record.Key, 1000), 10, Accounting{}); err != nil {
		t.Fatal(err)
	}
	var c pdm.Counter
	f, _ := fs.Open("x")
	m := &overlapMeter{}
	r := NewPrefetchReader(f, 10, Accounting{Counter: &c, Meter: m}, 4)
	for i := 0; i < 15; i++ { // 1.5 blocks consumed
		if _, err := r.ReadKey(); err != nil {
			t.Fatal(err)
		}
	}
	r.Release()
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if c.Reads() != 2 {
		t.Fatalf("charged %d block reads after 15 keys, want 2", c.Reads())
	}
	if m.ends != 1 {
		t.Fatalf("window not closed on early release (ends=%d)", m.ends)
	}
	if _, err := r.ReadKey(); err == nil {
		t.Fatal("read on released PrefetchReader succeeded")
	}
	r.Release() // idempotent
}

func TestAsyncWriterMatchesWriter(t *testing.T) {
	for name, mk := range fsFactories(t) {
		t.Run(name, func(t *testing.T) {
			fs := mk()
			keys := record.Uniform.Generate(777, 3, 1)
			var syncC, asC pdm.Counter
			sf, _ := fs.Create("sync")
			sw := NewWriter(sf, 64, Accounting{Counter: &syncC})
			if err := sw.WriteKeys(keys); err != nil {
				t.Fatal(err)
			}
			if err := sw.Close(); err != nil {
				t.Fatal(err)
			}
			sf.Close()

			af, _ := fs.Create("async")
			m := &overlapMeter{}
			aw := NewAsyncWriter(af, 64, Accounting{Counter: &asC, Meter: m}, 3)
			// Dribble in odd-sized slices to exercise block splitting.
			for off := 0; off < len(keys); off += 13 {
				end := off + 13
				if end > len(keys) {
					end = len(keys)
				}
				if err := aw.WriteKeys(keys[off:end]); err != nil {
					t.Fatal(err)
				}
			}
			if err := aw.Close(); err != nil {
				t.Fatal(err)
			}
			af.Close()

			want, err := ReadFileAll(fs, "sync", 64, Accounting{})
			if err != nil {
				t.Fatal(err)
			}
			got, err := ReadFileAll(fs, "async", 64, Accounting{})
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(record.EncodeKeys(nil, want), record.EncodeKeys(nil, got)) {
				t.Fatal("write-behind output differs from synchronous output")
			}
			if asC.Writes() != syncC.Writes() {
				t.Fatalf("write-behind charged %d block writes, sync %d", asC.Writes(), syncC.Writes())
			}
			if m.overlapped != asC.Writes() {
				t.Fatalf("overlap meter saw %d blocks, counter %d", m.overlapped, asC.Writes())
			}
			if aw.KeysWritten() != int64(len(keys)) {
				t.Fatalf("KeysWritten=%d want %d", aw.KeysWritten(), len(keys))
			}
			if m.begins != 1 || m.ends != 1 {
				t.Fatalf("window begins=%d ends=%d, want 1/1", m.begins, m.ends)
			}
			if m.wbBlocks != asC.Writes() {
				t.Fatalf("observer saw %d write-behind blocks, counter %d", m.wbBlocks, asC.Writes())
			}
			if m.wbHWM < 1 {
				t.Fatalf("queue high-water %d, want >= 1", m.wbHWM)
			}
		})
	}
}

// failAfterFile fails every Write after the first n.
type failAfterFile struct {
	File
	n int
}

func (f *failAfterFile) Write(p []byte) (int, error) {
	if f.n <= 0 {
		return 0, errors.New("boom")
	}
	f.n--
	return f.File.Write(p)
}

func TestAsyncWriterSurfacesWriteError(t *testing.T) {
	fs := NewMemFS()
	inner, _ := fs.Create("x")
	f := &failAfterFile{File: inner, n: 1}
	w := NewAsyncWriter(f, 10, Accounting{}, 2)
	// Enough blocks that the drainer hits the failure and must keep
	// draining (discarding) so this loop cannot deadlock.
	if err := w.WriteKeys(make([]record.Key, 200)); err != nil {
		t.Fatal(err)
	}
	err := w.Close()
	if err == nil {
		t.Fatal("Close did not surface the drainer's write error")
	}
	if w.Close() != err {
		t.Fatal("Close is not idempotent on the error")
	}
	if werr := w.WriteKeys(make([]record.Key, 1)); werr == nil {
		t.Fatal("write after failed Close succeeded")
	}
}

func TestNewBlockReaderWriterFallThrough(t *testing.T) {
	fs := NewMemFS()
	f, _ := fs.Create("x")
	sw := NewBlockWriter(f, 10, Accounting{}, Overlap{})
	if _, ok := sw.(*Writer); !ok {
		t.Fatal("disabled Overlap did not yield the synchronous Writer")
	}
	sw.Close()
	aw := NewBlockWriter(f, 10, Accounting{}, Overlap{Enabled: true})
	if _, ok := aw.(*AsyncWriter); !ok {
		t.Fatal("enabled Overlap did not yield the write-behind AsyncWriter")
	}
	aw.Close()
	f.Close()
	if err := WriteFile(fs, "y", make([]record.Key, 5), 10, Accounting{}); err != nil {
		t.Fatal(err)
	}
	rf, _ := fs.Open("y")
	if _, ok := NewBlockReader(rf, 10, Accounting{}, Overlap{}).(*Reader); !ok {
		t.Fatal("disabled Overlap did not yield the synchronous Reader")
	}
	r := NewBlockReader(rf, 10, Accounting{}, Overlap{Enabled: true})
	pr, ok := r.(*PrefetchReader)
	if !ok {
		t.Fatal("enabled Overlap did not yield the PrefetchReader")
	}
	pr.Release()
	rf.Close()
}

// diskCountMeter is a meter that reports a disk count, standing in for
// cluster.Node in the depth-default tests.
type diskCountMeter struct {
	vtime.Nop
	disks int
}

func (m diskCountMeter) Disks() int { return m.disks }

// TestOverlapDepthDefault checks depth resolution: explicit depths win,
// <= 1 means double buffering, and Depth == 0 asks the meter for its
// disk count — the regression test for prefetch depth defaulting to the
// node's DisksPerNode.
func TestOverlapDepthDefault(t *testing.T) {
	for _, d := range []int{-1, 0, 1} {
		if got := (Overlap{Depth: d}).DepthFor(nil); got != 2 {
			t.Fatalf("Overlap{Depth: %d}.DepthFor(nil) = %d, want 2", d, got)
		}
	}
	if got := (Overlap{Depth: 5}).DepthFor(nil); got != 5 {
		t.Fatalf("Overlap{Depth: 5}.DepthFor(nil) = %d", got)
	}
	// Depth 0 + a meter with D disks → depth D (floored at 2).
	if got := (Overlap{}).DepthFor(diskCountMeter{disks: 4}); got != 4 {
		t.Fatalf("DepthFor(4-disk meter) = %d, want 4", got)
	}
	if got := (Overlap{}).DepthFor(diskCountMeter{disks: 1}); got != 2 {
		t.Fatalf("DepthFor(1-disk meter) = %d, want 2", got)
	}
	// An explicit depth is never overridden by the meter.
	if got := (Overlap{Depth: 3}).DepthFor(diskCountMeter{disks: 8}); got != 3 {
		t.Fatalf("DepthFor(explicit 3, 8-disk meter) = %d, want 3", got)
	}
	// A plain meter without a disk count still double-buffers.
	if got := (Overlap{}).DepthFor(vtime.Nop{}); got != 2 {
		t.Fatalf("DepthFor(Nop) = %d, want 2", got)
	}
}

// Package progress provides live, non-perturbing introspection of a
// running sort.  A Tracker is handed to the executor (extsort binds it
// to the cluster at the top of every run) and can then be sampled from
// any goroutine: snapshots read only atomically published state — each
// node's live clock, its pdm phase counters, and the current
// Algorithm-1 step — so sampling never takes a simulation lock and
// never perturbs virtual-time attribution.
//
// The package also houses the post-run straggler analytics (see
// straggler.go), which compare each node's observed throughput against
// its declared perf entry and its partition against the Theorem-1
// balance expectation.
package progress

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"

	"hetsort/internal/cluster"
	"hetsort/internal/pdm"
	"hetsort/internal/perf"
)

// stepNames labels pdm phases: phase 0 collects setup/checkpoint I/O,
// phases 1..5 mirror extsort.StepNames (Algorithm 1's five steps).
var stepNames = [pdm.PhaseCount]string{
	"0:setup",
	"1:sequential-sort",
	"2:pivot-selection",
	"3:partitioning",
	"4:redistribution",
	"5:final-merge",
}

// StepName returns the label for a pdm phase (0 = setup/checkpoint,
// 1..5 = Algorithm-1 steps).
func StepName(phase int) string {
	if phase < 0 || phase >= pdm.PhaseCount {
		return fmt.Sprintf("%d:?", phase)
	}
	return stepNames[phase]
}

// Tracker samples progress from a running cluster.  Create one, set it
// on the sort configuration, and call Snapshot from any goroutine while
// the sort runs (and after it finishes, for the settled totals).  The
// zero state before the executor binds it yields nil snapshots.
type Tracker struct {
	mu        sync.Mutex
	c         *cluster.Cluster
	shares    []int64
	totalKeys int64
	blockKeys int

	seq  atomic.Int64
	run  atomic.Int64
	done atomic.Bool
}

// NewTracker returns an unbound tracker.
func NewTracker() *Tracker { return &Tracker{} }

// Bind attaches the tracker to a cluster about to execute Algorithm 1.
// The executor calls it at the top of every run, including the re-run
// behind Resume: rebinding bumps the run generation and keeps the
// snapshot sequence, so sequence numbers stay monotonic across a resume
// boundary while the per-run I/O cells restart with the cluster's
// counters (committed phases are skipped on resume, never re-counted).
func (t *Tracker) Bind(c *cluster.Cluster, v perf.Vector, totalKeys int64, blockKeys int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.c = c
	t.shares = v.Shares(totalKeys)
	t.totalKeys = totalKeys
	t.blockKeys = blockKeys
	t.run.Add(1)
	t.done.Store(false)
}

// MarkDone records that the bound run completed; subsequent snapshots
// report Done with Fraction 1 and ETA 0.
func (t *Tracker) MarkDone() { t.done.Store(true) }

// Done reports whether the bound run completed.
func (t *Tracker) Done() bool { return t.done.Load() }

// NodeProgress is one node's slice of a Snapshot.
type NodeProgress struct {
	Node     int    `json:"node"`
	Step     int    `json:"step"` // 0 = setup/between steps, 1..5 = Algorithm-1 step
	StepName string `json:"step_name"`
	// Clock is the node's virtual time as last published by its own
	// goroutine; it may trail the true clock by one in-flight charge.
	Clock float64 `json:"clock_vsec"`
	// IO sums the per-step cells below (always internally consistent:
	// both come from the same per-phase atomics).
	IO     pdm.IOStats                 `json:"io"`
	StepIO [pdm.PhaseCount]pdm.IOStats `json:"step_io"`
	// KeysMoved converts the node's block transfers to keys; Expected
	// is its perf share of the cluster-wide figure, so Skew =
	// KeysMoved/ExpectedKeys reads 1.0 when reality tracks the model.
	KeysMoved    int64   `json:"keys_moved"`
	ExpectedKeys int64   `json:"expected_keys"`
	Skew         float64 `json:"skew"`
	// Fraction estimates how much of the node's modelled total I/O is
	// done (capped at 1); ETA projects the remaining virtual seconds
	// from the node's own average rate so far.
	Fraction float64 `json:"fraction"`
	ETA      float64 `json:"eta_vsec"`
}

// Snapshot is one observation of a run.  Seq increases by one per
// Snapshot call over the tracker's lifetime (including across Resume);
// Run is the bind generation, bumping when a resumed run rebinds.
type Snapshot struct {
	Seq       int64          `json:"seq"`
	Run       int64          `json:"run"`
	Done      bool           `json:"done"`
	Time      float64        `json:"time_vsec"` // max published node clock
	TotalKeys int64          `json:"total_keys"`
	ETA       float64        `json:"eta_vsec"` // max node ETA
	Nodes     []NodeProgress `json:"nodes"`
}

// Snapshot samples the bound cluster.  It returns nil before Bind.
// Safe to call concurrently with the run from any goroutine.
func (t *Tracker) Snapshot() *Snapshot {
	t.mu.Lock()
	c, shares, blockKeys, total := t.c, t.shares, t.blockKeys, t.totalKeys
	run := t.run.Load()
	t.mu.Unlock()
	if c == nil {
		return nil
	}
	s := &Snapshot{
		Seq:       t.seq.Add(1),
		Run:       run,
		Done:      t.done.Load(),
		TotalKeys: total,
		Nodes:     make([]NodeProgress, c.P()),
	}
	var movedTotal int64
	for i := 0; i < c.P(); i++ {
		n := c.Node(i)
		np := &s.Nodes[i]
		np.Node = i
		np.Clock = n.LiveClock()
		np.Step = n.Counter().CurrentPhase()
		np.StepName = StepName(np.Step)
		np.StepIO = n.Counter().PhaseSnapshot()
		for _, cell := range np.StepIO {
			np.IO = np.IO.Add(cell)
		}
		np.KeysMoved = np.IO.Total() * int64(blockKeys)
		movedTotal += np.KeysMoved
		if np.Clock > s.Time {
			s.Time = np.Clock
		}
	}
	for i := range s.Nodes {
		np := &s.Nodes[i]
		if total > 0 && i < len(shares) {
			np.ExpectedKeys = int64(float64(shares[i]) / float64(total) * float64(movedTotal))
		}
		if np.ExpectedKeys > 0 {
			np.Skew = float64(np.KeysMoved) / float64(np.ExpectedKeys)
		}
		var est int64
		if i < len(shares) {
			est = expectedBlocks(shares[i], blockKeys)
		}
		if s.Done {
			np.Fraction, np.ETA = 1, 0
		} else if est > 0 {
			f := float64(np.IO.Total()) / float64(est)
			if f > 1 {
				f = 1
			}
			np.Fraction = f
			if f > 0 && f < 1 {
				np.ETA = np.Clock * (1 - f) / f
			}
		}
		if np.ETA > s.ETA {
			s.ETA = np.ETA
		}
	}
	return s
}

// expectedBlocks is the perf-model estimate of a node's total accounted
// block transfers across Algorithm 1: run formation streams the
// l_i-key portion through disk twice (4·l/B transfers), partitioning
// rescans it (2·l/B), redistribution writes the received partition
// (≈l/B at perfect balance), and the final merge streams it once more
// (2·l/B) — ≈9·l/B.  The constant is the same for every node, so
// Fraction is comparable across nodes; pipelined or hierarchical runs
// shift the true total a little, which only skews the advisory ETA.
func expectedBlocks(share int64, blockKeys int) int64 {
	if blockKeys <= 0 {
		return 0
	}
	b := int64(blockKeys)
	return 9 * ((share + b - 1) / b)
}

// Table renders the snapshot as an aligned text table, one row per
// node — what `hetsort -progress` repaints on stderr.
func (s *Snapshot) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "t=%.3fvs  seq=%d", s.Time, s.Seq)
	if s.Done {
		b.WriteString("  done")
	} else if s.ETA > 0 {
		fmt.Fprintf(&b, "  eta=%.3fvs", s.ETA)
	}
	b.WriteByte('\n')
	fmt.Fprintf(&b, "%-5s %-18s %10s %12s %12s %6s %5s\n",
		"node", "step", "clock", "keys", "expected", "skew", "done")
	for i := range s.Nodes {
		np := &s.Nodes[i]
		fmt.Fprintf(&b, "%-5d %-18s %10.3f %12d %12d %6.2f %4.0f%%\n",
			np.Node, np.StepName, np.Clock, np.KeysMoved, np.ExpectedKeys,
			np.Skew, np.Fraction*100)
	}
	return b.String()
}

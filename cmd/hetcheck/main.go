// Command hetcheck runs the cross-configuration correctness harness:
// a deterministic randomized sweep of the Config cross-product that
// checks every registered invariant (sortedness, permutation checksum,
// execution-strategy equivalence, the Theorem-1 balance bound, per-step
// PDM I/O budgets, virtual-time attribution) and shrinks any failure to
// a minimal ready-to-paste repro.
//
// Usage:
//
//	hetcheck                 full sweep, 32 random seeds
//	hetcheck -quick          PR-gate sweep (8 seeds, smaller inputs)
//	hetcheck -seeds 256      nightly-scale sweep
//	hetcheck -invariant balance,step-io
//	hetcheck -json           machine-readable summary on stdout
//
// Exit status is 0 when every invariant held, 1 on any violation.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"hetsort/internal/check"
)

func main() {
	var (
		seeds     = flag.Int("seeds", 0, "number of randomized cases beyond the corner list (0 = default: 32, or 8 with -quick)")
		baseSeed  = flag.Int64("base-seed", 1, "first seed of the sequence (nightlies vary this to explore fresh cases)")
		quick     = flag.Bool("quick", false, "PR-gate mode: fewer seeds, smaller inputs, crash/resume on a subset")
		invariant = flag.String("invariant", "", "comma-separated invariant name filter (substring match; empty = all)")
		jsonOut   = flag.Bool("json", false, "print the summary as JSON on stdout")
		verbose   = flag.Bool("v", false, "print one line per case")
		noCrash   = flag.Bool("no-crash", false, "skip the durable crash/resume variant (no scratch directory)")
		list      = flag.Bool("list", false, "list the invariant registry and exit")
	)
	flag.Parse()

	if *list {
		for _, inv := range check.Registry() {
			fmt.Printf("%-12s %s\n", inv.Name, inv.Doc)
		}
		return
	}

	scratch := ""
	if !*noCrash {
		dir, err := os.MkdirTemp("", "hetcheck")
		if err != nil {
			fmt.Fprintf(os.Stderr, "hetcheck: %v\n", err)
			os.Exit(2)
		}
		defer os.RemoveAll(dir)
		scratch = dir
	}

	var progress io.Writer
	if *verbose {
		progress = os.Stderr
	}
	sum := check.Sweep(check.Options{
		Seeds:      *seeds,
		BaseSeed:   *baseSeed,
		Quick:      *quick,
		Invariants: *invariant,
		Scratch:    scratch,
		Progress:   progress,
	})

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(sum); err != nil {
			fmt.Fprintf(os.Stderr, "hetcheck: %v\n", err)
			os.Exit(2)
		}
	} else {
		fmt.Printf("hetcheck: %d cases, %d runs, %d failure(s)\n", sum.Cases, sum.Runs, sum.FailCount)
	}
	for _, f := range sum.Failures {
		fmt.Fprintln(os.Stderr, f.String())
		fmt.Fprintln(os.Stderr, f.Repro)
	}
	if sum.FailCount > 0 {
		os.Exit(1)
	}
}

package experiments

import (
	"fmt"

	"hetsort/internal/cluster"
	"hetsort/internal/dewitt"
	"hetsort/internal/diskio"
	"hetsort/internal/extsort"
	"hetsort/internal/perf"
	"hetsort/internal/polyphase"
	"hetsort/internal/psrs"
	"hetsort/internal/record"
	"hetsort/internal/sampling"
	"hetsort/internal/stats"
)

// AblationRow is one line of the ablation report.
type AblationRow struct {
	ID      string
	Variant string
	Metric  string
	Value   float64
}

// Ablations runs the design-choice studies A1-A6 from DESIGN.md and
// returns the rows.  These are the experiments the paper argues
// qualitatively (PSRS vs overpartitioning, duplicates, file counts,
// quantiles, multiple disks, the DeWitt baseline) backed by
// measurements on the simulator.
func Ablations(o Options) ([]AblationRow, error) {
	o = o.withDefaults()
	var rows []AblationRow
	add := func(id, variant, metric string, v float64) {
		rows = append(rows, AblationRow{ID: id, Variant: variant, Metric: metric, Value: v})
	}

	// A1: in-core pivot strategies, homogeneous p=8.
	{
		v := perf.Homogeneous(8)
		n := int(o.scale(1 << 22))
		keys := record.Uniform.Generate(n, o.Seed, 8)
		portions := make([][]record.Key, 8)
		share := n / 8
		for i := range portions {
			portions[i] = keys[i*share : (i+1)*share]
		}
		for _, strat := range []psrs.Strategy{psrs.RegularSampling, psrs.Overpartitioning} {
			c, err := cluster.New(cluster.Config{Slowdowns: v.Slowdowns()})
			if err != nil {
				return nil, err
			}
			res, err := psrs.Sort(c, psrs.Config{Perf: v, Strategy: strat, Seed: o.Seed, OverFactor: 2}, portions)
			if err != nil {
				return nil, fmt.Errorf("A1 %v: %w", strat, err)
			}
			add("A1", strat.String(), "expansion", sampling.SublistExpansion(res.PartitionSizes))
		}
	}

	// A2: duplicates, perf {1,1,4,4}.
	for _, d := range []record.Distribution{record.Uniform, record.Zipf} {
		c, err := o.newCluster(cluster.FastEthernet())
		if err != nil {
			return nil, err
		}
		v := PaperVector
		n := v.NearestValidSize(o.scale(1 << 22))
		c.ResetClocks()
		cfg := o.extsortConfig(v)
		sum, err := extsort.DistributeInput(c, v, d, n, o.Seed, o.BlockKeys, "input")
		if err != nil {
			return nil, err
		}
		res, err := extsort.Sort(c, cfg, "input", "output")
		if err != nil {
			return nil, fmt.Errorf("A2 %v: %w", d, err)
		}
		if err := extsort.VerifyOutput(c, "output", o.BlockKeys, sum); err != nil {
			return nil, err
		}
		add("A2", d.String(), "weighted-expansion", res.SublistExpansion(v))
	}

	// A3: polyphase tape counts.
	for _, tapes := range []int{3, 4, 8, 15} {
		keys := record.Uniform.Generate(int(o.scale(1<<22)), o.Seed, 1)
		c, err := cluster.New(cluster.Config{Slowdowns: []float64{1}, BlockKeys: o.BlockKeys})
		if err != nil {
			return nil, err
		}
		fs := c.Node(0).FS()
		if err := diskio.WriteFile(fs, "in", keys, o.BlockKeys, diskio.Accounting{}); err != nil {
			return nil, err
		}
		var phases int64
		err = c.Run(func(n *cluster.Node) error {
			cfg := polyphase.Config{FS: fs, BlockKeys: o.BlockKeys,
				MemoryKeys: o.MemoryKeys, Tapes: tapes, Acct: n.Acct(), TempPrefix: "a3."}
			st, serr := polyphase.Sort(cfg, "in", "out")
			phases = st.Phases
			return serr
		})
		if err != nil {
			return nil, fmt.Errorf("A3 tapes=%d: %w", tapes, err)
		}
		add("A3", fmt.Sprintf("tapes=%d", tapes), "vsec", c.MaxClock())
		add("A3", fmt.Sprintf("tapes=%d", tapes), "phases", float64(phases))
	}

	// A4: quantile pivots vs regular sampling, perf {1,1,4,4}.
	{
		v := PaperVector
		n := v.NearestValidSize(o.scale(1 << 22))
		keys := record.Uniform.Generate(int(n), o.Seed, 4)
		shares := v.Shares(n)
		portions := make([][]record.Key, len(v))
		off := int64(0)
		for i, s := range shares {
			portions[i] = keys[off : off+s]
			off += s
		}
		for _, strat := range []psrs.Strategy{psrs.RegularSampling, psrs.Quantiles} {
			c, err := cluster.New(cluster.Config{Slowdowns: v.Slowdowns()})
			if err != nil {
				return nil, err
			}
			res, err := psrs.Sort(c, psrs.Config{Perf: v, Strategy: strat, Seed: o.Seed}, portions)
			if err != nil {
				return nil, fmt.Errorf("A4 %v: %w", strat, err)
			}
			we, err := sampling.WeightedExpansion(res.PartitionSizes, v)
			if err != nil {
				return nil, err
			}
			add("A4", strat.String(), "weighted-expansion", we)
		}
	}

	// A5: disks per node.
	for _, d := range []int{1, 2, 4} {
		v := perf.Homogeneous(4)
		c, err := cluster.New(cluster.Config{
			Slowdowns: v.Slowdowns(), BlockKeys: o.BlockKeys, DisksPerNode: d,
		})
		if err != nil {
			return nil, err
		}
		cfg := o.extsortConfig(v)
		n := o.scale(1 << 22)
		if _, err := extsort.DistributeInput(c, v, record.Uniform, n, o.Seed, o.BlockKeys, "input"); err != nil {
			return nil, err
		}
		res, err := extsort.Sort(c, cfg, "input", "output")
		if err != nil {
			return nil, fmt.Errorf("A5 D=%d: %w", d, err)
		}
		add("A5", fmt.Sprintf("D=%d", d), "vsec", res.Time)
	}

	// A6: DeWitt baseline vs Algorithm 1.
	{
		v := PaperVector
		n := v.NearestValidSize(o.scale(1 << 22))
		for _, algo := range []string{"algorithm1", "dewitt"} {
			c, err := o.newCluster(cluster.FastEthernet())
			if err != nil {
				return nil, err
			}
			c.ResetClocks()
			sum, err := extsort.DistributeInput(c, v, record.Uniform, n, o.Seed, o.BlockKeys, "input")
			if err != nil {
				return nil, err
			}
			var vsec float64
			var io int64
			switch algo {
			case "algorithm1":
				res, err := extsort.Sort(c, o.extsortConfig(v), "input", "output")
				if err != nil {
					return nil, fmt.Errorf("A6 %s: %w", algo, err)
				}
				vsec = res.Time
				for _, s := range res.NodeIO {
					io += s.Total()
				}
			case "dewitt":
				res, err := dewitt.Sort(c, dewitt.Config{
					Perf: v, BlockKeys: o.BlockKeys, MemoryKeys: o.MemoryKeys,
					Tapes: o.Tapes, MessageKeys: o.MessageKeys,
					SampleFactor: 8, Seed: o.Seed,
				}, "input", "output")
				if err != nil {
					return nil, fmt.Errorf("A6 %s: %w", algo, err)
				}
				vsec = res.Time
				for _, s := range res.NodeIO {
					io += s.Total()
				}
			}
			if err := extsort.VerifyOutput(c, "output", o.BlockKeys, sum); err != nil {
				return nil, fmt.Errorf("A6 %s verify: %w", algo, err)
			}
			add("A6", algo, "vsec", vsec)
			add("A6", algo, "blockIOs", float64(io))
		}
	}
	return rows, nil
}

// AblationsString renders the rows.
func AblationsString(rows []AblationRow) string {
	t := &stats.Table{
		Title:   "Ablations (see DESIGN.md)",
		Headers: []string{"Id", "Variant", "Metric", "Value"},
	}
	for _, r := range rows {
		t.AddRow(r.ID, r.Variant, r.Metric, r.Value)
	}
	return t.String()
}

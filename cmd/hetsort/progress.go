package main

import (
	"fmt"
	"os"
	"strings"
	"time"

	"hetsort/internal/progress"
)

// progressRenderer repaints a tracker's snapshot table in place on
// stderr on a host-time cadence while the sort runs.  Sampling reads
// only atomics, so the repaints never perturb the run's virtual-time
// attribution or its output.
type progressRenderer struct {
	tr   *progress.Tracker
	stop chan struct{}
	done chan struct{}
	last int // lines painted by the previous frame
}

func startProgressRenderer(tr *progress.Tracker) *progressRenderer {
	r := &progressRenderer{tr: tr, stop: make(chan struct{}), done: make(chan struct{})}
	go r.loop()
	return r
}

func (r *progressRenderer) loop() {
	defer close(r.done)
	tick := time.NewTicker(200 * time.Millisecond)
	defer tick.Stop()
	for {
		select {
		case <-r.stop:
			return
		case <-tick.C:
			r.paint()
		}
	}
}

// paint redraws the table over the previous frame (cursor-up + clear),
// so the table stays in place instead of scrolling.
func (r *progressRenderer) paint() {
	s := r.tr.Snapshot()
	if s == nil {
		return
	}
	table := s.Table()
	if r.last > 0 {
		fmt.Fprintf(os.Stderr, "\x1b[%dA\x1b[J", r.last)
	}
	fmt.Fprint(os.Stderr, table)
	r.last = strings.Count(table, "\n")
}

// finish stops the repaint loop and leaves the final table on screen.
func (r *progressRenderer) finish() {
	close(r.stop)
	<-r.done
	r.paint()
}

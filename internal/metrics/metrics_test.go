package metrics

import (
	"math"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("io.reads")
	c.Add(3)
	c.Inc()
	if got := c.Value(); got != 4 {
		t.Fatalf("counter = %d, want 4", got)
	}
	if r.Counter("io.reads") != c {
		t.Fatal("Counter is not idempotent per name")
	}
	g := r.Gauge("queue.depth")
	g.Set(7.5)
	if got := g.Value(); got != 7.5 {
		t.Fatalf("gauge = %v, want 7.5", got)
	}
	snap := r.Snapshot()
	if snap["io.reads"] != 4 || snap["queue.depth"] != 7.5 {
		t.Fatalf("snapshot = %v", snap)
	}
}

func TestHistogram(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat")
	for _, v := range []float64{0.001, 0.002, 0.004, 0.1, 1.5} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	if got, want := h.Sum(), 1.607; math.Abs(got-want) > 1e-12 {
		t.Fatalf("sum = %v, want %v", got, want)
	}
	if h.Min() != 0.001 || h.Max() != 1.5 {
		t.Fatalf("min/max = %v/%v", h.Min(), h.Max())
	}
	if q := h.Quantile(0.5); q < 0.002 || q > 0.1 {
		t.Fatalf("p50 = %v outside [0.002, 0.1]", q)
	}
	if q := h.Quantile(1); q != 1.5 {
		t.Fatalf("p100 = %v, want clamped to max 1.5", q)
	}
	snap := r.Snapshot()
	for _, k := range []string{"lat.count", "lat.sum", "lat.min", "lat.max", "lat.p50", "lat.p99"} {
		if _, ok := snap[k]; !ok {
			t.Fatalf("snapshot missing %s: %v", k, snap)
		}
	}
}

func TestHistogramZeroAndNegative(t *testing.T) {
	var h Histogram
	h.Observe(0)
	h.Observe(-3)
	if h.Count() != 2 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Min() != -3 || h.Max() != 0 {
		t.Fatalf("min/max = %v/%v", h.Min(), h.Max())
	}
}

func TestReset(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	c.Add(10)
	h := r.Histogram("h")
	h.Observe(2)
	g := r.Gauge("g")
	g.Set(1)
	r.Reset()
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 || h.Max() != 0 {
		t.Fatalf("reset left state: c=%d g=%v h.count=%d", c.Value(), g.Value(), h.Count())
	}
	// Handles survive a reset.
	c.Inc()
	if r.Snapshot()["c"] != 1 {
		t.Fatal("handle dead after Reset")
	}
}

// TestConcurrentUpdates exercises the registry from many goroutines so
// `go test -race` verifies the lock-cheap paths are data-race free.
func TestConcurrentUpdates(t *testing.T) {
	r := NewRegistry()
	const workers = 8
	const perWorker = 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := r.Counter("shared.counter")
			h := r.Histogram("shared.hist")
			g := r.Gauge("shared.gauge")
			for i := 0; i < perWorker; i++ {
				c.Inc()
				h.Observe(float64(i%17) / 16)
				g.Set(float64(i))
				if i%64 == 0 {
					// Concurrent registration and snapshots must be safe too.
					r.Counter("shared.counter").Add(0)
					_ = r.Snapshot()
				}
			}
		}(w)
	}
	wg.Wait()
	if got := r.Counter("shared.counter").Value(); got != workers*perWorker {
		t.Fatalf("counter = %d, want %d", got, workers*perWorker)
	}
	if got := r.Histogram("shared.hist").Count(); got != workers*perWorker {
		t.Fatalf("hist count = %d, want %d", got, workers*perWorker)
	}
}

func TestFormatValue(t *testing.T) {
	if got := FormatValue(42); got != "42" {
		t.Fatalf("FormatValue(42) = %q", got)
	}
	if got := FormatValue(0.125); got != "0.125" {
		t.Fatalf("FormatValue(0.125) = %q", got)
	}
}

package service

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"os"
	"sync"

	"hetsort/internal/checkpoint"
	"hetsort/internal/cluster"
	"hetsort/internal/diskio"
	"hetsort/internal/extsort"
	"hetsort/internal/merkle"
	"hetsort/internal/perf"
	"hetsort/internal/progress"
	"hetsort/internal/record"
	"hetsort/internal/storage"
	"hetsort/internal/trace"
	"hetsort/internal/vtime"
)

// Job states, as persisted in status.json.
const (
	StateQueued   = "queued"
	StateRunning  = "running"
	StateDone     = "done"
	StateFailed   = "failed"
	StateCanceled = "canceled"
)

// GenSpec asks the service to generate the job's input instead of
// reading an uploaded object — the self-contained mode used by tests
// and smoke runs.  Generation is deterministic in (Count, Dist, Seed).
type GenSpec struct {
	Count int64  `json:"count"`
	Dist  string `json:"dist"` // record distribution name (default uniform)
	Seed  int64  `json:"seed"`
}

// JobSpec is a sort-job submission.  The machine (perf vector, network)
// is the service's; the spec chooses the data and sort parameters.
type JobSpec struct {
	// Input names the backend object holding the input keys as
	// little-endian uint32 bytes (uploaded via PUT /objects/...).
	// Exactly one of Input and Gen must be set.
	Input string `json:"input,omitempty"`
	// Gen generates the input instead.
	Gen *GenSpec `json:"gen,omitempty"`

	// Sort parameters (zero = extsort defaults).
	MemoryKeys  int   `json:"memory_keys,omitempty"`
	Tapes       int   `json:"tapes,omitempty"`
	MessageKeys int   `json:"message_keys,omitempty"`
	Pipeline    bool  `json:"pipeline,omitempty"`
	Overlap     bool  `json:"overlap,omitempty"`
	Seed        int64 `json:"seed,omitempty"`
	// Topology selects the redistribution structure ("flat", "tree" or
	// "grid"; empty = flat) and Radix the tree fan-in.  Besides changing
	// the job's communication pattern, the topology changes its
	// admission footprint: the flat all-to-all pins O(p²) link-buffer
	// memory, which demand() charges against the machine budget — an
	// over-subscribed flat job is rejected with 422 where the tree
	// variant of the same spec fits.
	Topology string `json:"topology,omitempty"`
	Radix    int    `json:"radix,omitempty"`

	// CrashNode/CrashPhase inject a node death at the end of phase
	// CrashPhase (1..5) on fresh runs — the test hook that models the
	// daemon dying mid-job: the injected crash aborts the run without
	// updating the durable status, so the job stays "running" on the
	// backend and the next daemon instance resumes it from its
	// checkpoint manifests.  Zero disables injection; resumed runs
	// never re-arm it.
	CrashNode  int `json:"crash_node,omitempty"`
	CrashPhase int `json:"crash_phase,omitempty"`
}

// satMul returns a·b for non-negative operands, saturating at MaxInt64
// instead of wrapping — demand estimates must never overflow into a
// small (or negative) value that slips past the admission budgets.
func satMul(a, b int64) int64 {
	if a == 0 || b == 0 {
		return 0
	}
	if a > math.MaxInt64/b {
		return math.MaxInt64
	}
	return a * b
}

// inputBytes estimates the input size for admission (0 when unknown —
// validate rejects those specs anyway).
func (sp *JobSpec) inputBytes(store storage.Backend) int64 {
	if sp.Gen != nil {
		return satMul(sp.Gen.Count, record.KeySize)
	}
	if sp.Input != "" {
		if n, err := store.Stat(sp.Input); err == nil {
			return n
		}
	}
	return 0
}

func (sp *JobSpec) validate(store storage.Backend, m *MachineConfig) error {
	switch {
	case sp.Input == "" && sp.Gen == nil:
		return errors.New("service: spec needs input or gen")
	case sp.Input != "" && sp.Gen != nil:
		return errors.New("service: spec has both input and gen")
	case sp.Gen != nil:
		if sp.Gen.Count <= 0 {
			return errors.New("service: gen.count must be positive")
		}
		// Bound the count before anything multiplies by it or allocates
		// for it: a job needs 4·count·KeySize disk, so counts past the
		// machine's whole disk budget can never be admitted — reject
		// them here instead of risking an overflowed demand estimate or
		// an astronomical generation allocation later.
		if maxKeys := m.DiskBytes / (4 * record.KeySize); sp.Gen.Count > maxKeys {
			return fmt.Errorf("%w: gen.count %d exceeds the machine's capacity of %d keys", ErrBudget, sp.Gen.Count, maxKeys)
		}
		if sp.Gen.Dist != "" {
			if _, err := record.ParseDistribution(sp.Gen.Dist); err != nil {
				return fmt.Errorf("service: %w", err)
			}
		}
	default:
		n, err := store.Stat(sp.Input)
		if err != nil {
			return fmt.Errorf("service: input object %s: %w", sp.Input, err)
		}
		if n == 0 || n%record.KeySize != 0 {
			return fmt.Errorf("service: input object %s is %d bytes, not a positive multiple of %d", sp.Input, n, record.KeySize)
		}
	}
	if sp.CrashPhase < 0 || sp.CrashPhase > checkpoint.Phases {
		return fmt.Errorf("service: crash_phase %d out of range 0..%d", sp.CrashPhase, checkpoint.Phases)
	}
	if _, err := extsort.ParseTopology(sp.Topology); err != nil {
		return fmt.Errorf("service: %w", err)
	}
	if sp.Radix < 0 {
		return fmt.Errorf("service: radix %d must be non-negative", sp.Radix)
	}
	return nil
}

// topology parses the spec's (already validated) topology name.
func (sp *JobSpec) topology() extsort.Topology {
	t, _ := extsort.ParseTopology(sp.Topology)
	return t
}

// JobStatus is the durable and API-visible record of one job.
type JobStatus struct {
	ID    string `json:"id"`
	State string `json:"state"`
	Error string `json:"error,omitempty"`
	// Keys is the input size; Time the virtual makespan; Partitions
	// the final per-node key counts — all set when the job completes.
	Keys       int64     `json:"keys,omitempty"`
	Time       float64   `json:"time,omitempty"`
	Partitions []int64   `json:"partitions,omitempty"`
	NodeClocks []float64 `json:"node_clocks,omitempty"`
	// Root is the hex Merkle root anchoring the job's artifact set
	// (spec.json and every node's sorted output, names bound into the
	// leaves).  `hetsortd verify` recomputes it from the backend.
	Root string `json:"root,omitempty"`
	// Resumed marks a job that was recovered from checkpoints by a
	// restarted daemon.
	Resumed bool `json:"resumed,omitempty"`
}

// job is the in-memory handle around a JobStatus.
type job struct {
	id   string
	spec JobSpec

	statusMu sync.Mutex
	status   JobStatus
	cl       *cluster.Cluster  // non-nil while running
	prog     *progress.Tracker // live sampling handle, set when the run starts
	canceled bool              // Cancel was called
	stopping bool              // Stop interrupted it (keep durable "running")
	resume   bool              // recovered job: resume from checkpoints

	memBytes, diskBytes int64
	done                chan struct{}
}

func (j *job) Status() *JobStatus {
	j.statusMu.Lock()
	defer j.statusMu.Unlock()
	st := j.status
	return &st
}

func (j *job) State() string {
	j.statusMu.Lock()
	defer j.statusMu.Unlock()
	return j.status.State
}

// tracker returns the job's progress tracker: nil before the run
// starts, and the settled final state after it ends (the tracker stays
// sampleable once set, so a late GET /jobs/{id}/progress still sees the
// completed totals).
func (j *job) tracker() *progress.Tracker {
	j.statusMu.Lock()
	defer j.statusMu.Unlock()
	return j.prog
}

func (j *job) setState(state, errMsg string) {
	j.statusMu.Lock()
	j.status.State = state
	j.status.Error = errMsg
	j.statusMu.Unlock()
}

// Backend object names of a job's artifacts.
func specName(id string) string   { return "jobs/" + id + "/spec.json" }
func statusName(id string) string { return "jobs/" + id + "/status.json" }
func traceName(id string) string  { return "jobs/" + id + "/trace.json" }
func nodePrefix(id string, i int) string {
	return fmt.Sprintf("jobs/%s/node%d", id, i)
}

func saveSpec(store storage.Backend, id string, sp *JobSpec) error {
	// The crash injection models the daemon dying, not the job itself:
	// it is scrubbed from the durable spec so (a) a recovered job does
	// not re-arm its own death and loop forever, and (b) a crashed-and-
	// resumed job's spec.json — a Merkle leaf — stays byte-identical to
	// an uninterrupted run's.
	scrubbed := *sp
	scrubbed.CrashNode = 0
	scrubbed.CrashPhase = 0
	body, err := json.Marshal(&scrubbed)
	if err != nil {
		return err
	}
	return store.Put(specName(id), body)
}

func loadSpec(store storage.Backend, id string) (*JobSpec, error) {
	body, err := store.Get(specName(id))
	if err != nil {
		return nil, err
	}
	var sp JobSpec
	if err := json.Unmarshal(body, &sp); err != nil {
		return nil, fmt.Errorf("service: job %s spec: %w", id, err)
	}
	return &sp, nil
}

func saveStatus(store storage.Backend, st *JobStatus) error {
	body, err := json.Marshal(st)
	if err != nil {
		return err
	}
	return store.Put(statusName(st.ID), body)
}

func loadStatus(store storage.Backend, id string) (*JobStatus, error) {
	body, err := store.Get(statusName(id))
	if err != nil {
		return nil, err
	}
	var st JobStatus
	if err := json.Unmarshal(body, &st); err != nil {
		return nil, fmt.Errorf("service: job %s status: %w", id, err)
	}
	st.ID = id
	return &st, nil
}

// loadInput materialises the job's input keys (uploaded object or
// deterministic generation).
func (sp *JobSpec) loadInput(store storage.Backend, parts int) ([]record.Key, error) {
	if sp.Gen != nil {
		dist := sp.Gen.Dist
		if dist == "" {
			dist = "uniform"
		}
		d, err := record.ParseDistribution(dist)
		if err != nil {
			return nil, err
		}
		return d.Generate(int(sp.Gen.Count), sp.Gen.Seed, parts), nil
	}
	body, err := store.Get(sp.Input)
	if err != nil {
		return nil, fmt.Errorf("service: input object %s: %w", sp.Input, err)
	}
	if len(body) == 0 || len(body)%record.KeySize != 0 {
		return nil, fmt.Errorf("service: input object %s is %d bytes, not a positive multiple of %d", sp.Input, len(body), record.KeySize)
	}
	return record.DecodeKeys(nil, body), nil
}

// extsortConfig maps a job onto the shared machine's sort parameters.
func (s *Service) extsortConfig(spec *JobSpec) extsort.Config {
	return extsort.Config{
		Perf:        perf.Vector(s.cfg.Machine.Perf),
		BlockKeys:   s.cfg.Machine.BlockKeys,
		MemoryKeys:  spec.MemoryKeys,
		Tapes:       spec.Tapes,
		MessageKeys: spec.MessageKeys,
		Seed:        spec.Seed,
		Pipeline:    spec.Pipeline,
		Overlap:     spec.Overlap,
		Topology:    spec.topology(),
		Radix:       spec.Radix,
		Checkpoint:  true,
		Merkle:      true,
	}
}

// newJobCluster assembles a tenant's view of the shared machine: the
// machine's perf vector and network, the job's node trees on the
// storage backend, and the service-wide contention hook that stretches
// disk and network charges by the number of running tenants.
func (s *Service) newJobCluster(id string) (*cluster.Cluster, *trace.Log, error) {
	m := s.cfg.Machine
	v := perf.Vector(m.Perf)
	var net cluster.NetModel
	switch m.Network {
	case "", "fast-ethernet":
		net = cluster.FastEthernet()
	case "myrinet":
		net = cluster.Myrinet()
	case "ideal":
		net = cluster.Ideal()
	default:
		return nil, nil, fmt.Errorf("service: unknown network %q", m.Network)
	}
	var ferr error
	disks := func(i int) diskio.FS {
		fs, err := s.store.FS(nodePrefix(id, i))
		if err != nil {
			if ferr == nil {
				ferr = err
			}
			return diskio.NewMemFS()
		}
		return fs
	}
	tl := new(trace.Log)
	cl, err := cluster.New(cluster.Config{
		Slowdowns: v.Slowdowns(),
		Net:       net,
		BlockKeys: m.BlockKeys,
		Disks:     disks,
		Contention: func() float64 {
			return float64(s.tenants.Load())
		},
		Trace: tl,
	})
	if err != nil {
		return nil, nil, err
	}
	if ferr != nil {
		return nil, nil, ferr
	}
	return cl, tl, nil
}

// execute runs one job to a terminal state.  Crash-injected failures
// (the daemon-death model) leave the durable status "running" so a
// restarted service resumes the job; every other outcome is persisted.
func (s *Service) execute(j *job) {
	err := s.run(j)
	j.statusMu.Lock()
	j.cl = nil
	switch {
	case err == nil && !j.canceled:
		j.status.State = StateDone
		j.status.Error = ""
	case err == nil:
		// The cancel was acknowledged but its interrupt landed too late
		// (or before the cluster entered Run, where Interrupt is a
		// no-op) and the run completed anyway; honor the
		// acknowledgement over the result.
		j.status.State = StateCanceled
		j.status.Error = "canceled"
	case j.stopping && !j.canceled:
		// Stop() interrupted the job: in memory it is failed, on the
		// backend it stays "running" for the next daemon to resume.
		j.status.State = StateFailed
		j.status.Error = err.Error()
		j.statusMu.Unlock()
		return
	case j.canceled:
		j.status.State = StateCanceled
		j.status.Error = err.Error()
	case cluster.IsCrash(err):
		// Injected node death — the daemon-kill model.  Durable state
		// stays "running"; recovery resumes from the manifests.
		j.status.State = StateFailed
		j.status.Error = err.Error()
		j.statusMu.Unlock()
		return
	default:
		j.status.State = StateFailed
		j.status.Error = err.Error()
	}
	st := j.status
	j.statusMu.Unlock()
	saveStatus(s.store, &st)
}

func (s *Service) run(j *job) error {
	cl, tl, err := s.newJobCluster(j.id)
	if err != nil {
		return err
	}
	tr := progress.NewTracker()
	j.statusMu.Lock()
	j.cl = cl
	j.prog = tr
	j.status.State = StateRunning
	resume := j.resume
	canceled := j.canceled
	st := j.status
	j.statusMu.Unlock()
	// A cancel that arrived before j.cl was installed had no cluster to
	// interrupt — and one that arrives before the sort enters
	// cluster.Run is a no-op there too.  Don't start work the tenant
	// already abandoned.
	if canceled {
		return errors.New("service: canceled before start")
	}
	if err := saveStatus(s.store, &st); err != nil {
		return err
	}

	ecfg := s.extsortConfig(&j.spec)
	ecfg.Progress = tr
	var res *extsort.Result
	var want record.Checksum
	if resume {
		res, want, err = extsort.Resume(cl, ecfg, "input", "output")
		if err != nil && errors.Is(err, os.ErrNotExist) {
			// The daemon died before the first commit: no manifests to
			// resume from, but the spec regenerates the input — run
			// fresh.
			s.nResumedFallback.Add(1)
			res, want, err = s.runFresh(cl, j, ecfg)
		} else if err == nil {
			s.nResumed.Add(1)
		}
		if err == nil {
			j.statusMu.Lock()
			j.status.Resumed = true
			j.statusMu.Unlock()
		}
	} else {
		res, want, err = s.runFresh(cl, j, ecfg)
	}
	if err != nil {
		return err
	}
	if err := extsort.VerifyOutput(cl, "output", s.cfg.Machine.BlockKeys, want); err != nil {
		return err
	}
	for i := 0; i < cl.P(); i++ {
		n := cl.Node(i)
		if err := vtime.CheckAttribution(n.Clock(), n.Attribution()); err != nil {
			return fmt.Errorf("service: job %s node %d: %w", j.id, i, err)
		}
	}
	if err := s.saveTrace(j.id, tl); err != nil {
		return err
	}
	root, err := JobRoot(s.store, j.id, cl.P())
	if err != nil {
		return err
	}
	var keys int64
	for _, p := range res.PartitionSizes {
		keys += p
	}
	j.statusMu.Lock()
	j.status.Keys = keys
	j.status.Time = res.Time
	j.status.Partitions = res.PartitionSizes
	j.status.NodeClocks = res.NodeClocks
	j.status.Root = root
	j.statusMu.Unlock()
	return nil
}

// runFresh loads the input, distributes perf-proportional shares onto
// the job's node trees, arms any injected crash, and sorts.
func (s *Service) runFresh(cl *cluster.Cluster, j *job, ecfg extsort.Config) (*extsort.Result, record.Checksum, error) {
	keys, err := j.spec.loadInput(s.store, cl.P())
	if err != nil {
		return nil, record.Checksum{}, err
	}
	v := perf.Vector(s.cfg.Machine.Perf)
	shares := v.Shares(int64(len(keys)))
	var off int64
	for i := 0; i < cl.P(); i++ {
		portion := keys[off : off+shares[i]]
		off += shares[i]
		if err := diskio.WriteFile(cl.Node(i).FS(), "input", portion, s.cfg.Machine.BlockKeys, diskio.Accounting{}); err != nil {
			return nil, record.Checksum{}, err
		}
	}
	want := record.ChecksumOf(keys)
	ecfg.InputSum = want
	if ph := j.spec.CrashPhase; ph >= 1 && ph <= checkpoint.Phases {
		if err := cl.ScheduleCrash(j.spec.CrashNode, -1, extsort.StepNames[ph-1]); err != nil {
			return nil, record.Checksum{}, err
		}
	}
	res, err := extsort.Sort(cl, ecfg, "input", "output")
	if err != nil {
		return nil, record.Checksum{}, err
	}
	return res, want, nil
}

// saveTrace renders the job's event log as Chrome trace_event JSON into
// the backend (outside the Merkle leaf set: a resumed run's trace
// legitimately differs from an uninterrupted one's).
func (s *Service) saveTrace(id string, tl *trace.Log) error {
	var buf jsonBuffer
	if err := trace.WriteChromeTrace(&buf, tl); err != nil {
		return err
	}
	return s.store.Put(traceName(id), buf.b)
}

type jsonBuffer struct{ b []byte }

func (w *jsonBuffer) Write(p []byte) (int, error) {
	w.b = append(w.b, p...)
	return len(p), nil
}

// JobRoot computes the Merkle root anchoring a completed job: the
// leaves are the job's spec and every node's sorted output, each hashed
// from the backend and bound to its job-relative name.  Deterministic
// artifacts only — the trace is excluded, because a resumed run's trace
// differs from an uninterrupted one's while its outputs must not.
func JobRoot(store storage.Backend, id string, p int) (string, error) {
	names := []string{"spec.json"}
	for i := 0; i < p; i++ {
		names = append(names, fmt.Sprintf("node%d/output", i))
	}
	leaves := make([]merkle.Leaf, 0, len(names))
	for _, n := range names {
		body, err := store.Get("jobs/" + id + "/" + n)
		if err != nil {
			return "", fmt.Errorf("service: job %s artifact %s: %w", id, n, err)
		}
		leaves = append(leaves, merkle.Leaf{Name: n, Sum: sha256.Sum256(body)})
	}
	t, err := merkle.New(leaves)
	if err != nil {
		return "", err
	}
	root := t.Root()
	return hex.EncodeToString(root[:]), nil
}

// VerifyJob recomputes a completed job's Merkle root from the backend
// and checks the concatenated node outputs are globally sorted — the
// `hetsortd verify` core.  It returns the recomputed root.
func VerifyJob(store storage.Backend, id string) (string, error) {
	st, err := loadStatus(store, id)
	if err != nil {
		return "", err
	}
	if st.State != StateDone {
		return "", fmt.Errorf("service: job %s is %s, not done", id, st.State)
	}
	if st.Root == "" {
		return "", fmt.Errorf("service: job %s has no recorded root", id)
	}
	p := len(st.Partitions)
	root, err := JobRoot(store, id, p)
	if err != nil {
		return "", err
	}
	if root != st.Root {
		return "", fmt.Errorf("service: job %s root mismatch: recomputed %s, recorded %s", id, root, st.Root)
	}
	// Sortedness across the concatenated partitions, in node order.
	var last record.Key
	var total int64
	for i := 0; i < p; i++ {
		body, err := store.Get(fmt.Sprintf("jobs/%s/node%d/output", id, i))
		if err != nil {
			return "", err
		}
		keys := record.DecodeKeys(nil, body)
		for _, k := range keys {
			if total > 0 && k < last {
				return "", fmt.Errorf("service: job %s output not sorted at node %d (key %d after %d)", id, i, k, last)
			}
			last = k
			total++
		}
		if int64(len(keys)) != st.Partitions[i] {
			return "", fmt.Errorf("service: job %s node %d output has %d keys, status says %d", id, i, len(keys), st.Partitions[i])
		}
	}
	if total != st.Keys {
		return "", fmt.Errorf("service: job %s outputs hold %d keys, status says %d", id, total, st.Keys)
	}
	return root, nil
}

// Package metrics is a lock-cheap per-node metrics registry for the
// simulated cluster: counters, gauges and histograms with typed handles.
//
// Registration (looking a name up in the registry) takes a mutex once;
// the returned handle is a pointer to atomics, so the hot paths — block
// I/O, message sends, merge-kernel chunks — update metrics with a single
// atomic add and no locks.  Snapshot flattens the whole registry into a
// sorted name→value map for reports and the -metrics-out exporter.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing integer metric.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a last-value-wins float metric (queue depths, fan-ins).
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the last stored value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// histBuckets is the number of power-of-two histogram buckets: bucket b
// collects observations in (2^(b-histZero-1), 2^(b-histZero)], covering
// 2^-32 .. 2^31 — wide enough for virtual-second latencies and queue
// depths alike.
const (
	histBuckets = 64
	histZero    = 32
)

// Histogram accumulates observations into power-of-two buckets, with
// exact count, sum, min and max.  All updates are atomic; concurrent
// Observe calls never lock.
type Histogram struct {
	count   atomic.Int64
	sumBits atomic.Uint64
	minBits atomic.Uint64
	maxBits atomic.Uint64
	first   atomic.Bool
	buckets [histBuckets]atomic.Int64
}

func bucketOf(v float64) int {
	if v <= 0 || math.IsNaN(v) {
		return 0
	}
	b := math.Ilogb(v) + histZero + 1
	if b < 0 {
		b = 0
	}
	if b >= histBuckets {
		b = histBuckets - 1
	}
	return b
}

// bucketUpper returns the inclusive upper bound of bucket b.
func bucketUpper(b int) float64 {
	if b == 0 {
		return 0
	}
	return math.Ldexp(1, b-histZero)
}

// Observe records one sample.  NaN is recorded as 0: letting it
// through would make Sum NaN forever (addFloat propagates it on every
// later observation) and wedge min/max when it seeds them (casFloat's
// comparisons against NaN are always false), leaking NaN into every
// Snapshot.
func (h *Histogram) Observe(v float64) {
	if math.IsNaN(v) {
		v = 0
	}
	h.count.Add(1)
	h.buckets[bucketOf(v)].Add(1)
	addFloat(&h.sumBits, v)
	if h.first.CompareAndSwap(false, true) {
		// First observer seeds min/max; racing observers fix them up
		// with the CAS loops below, so no sample is ever lost.
		h.minBits.Store(math.Float64bits(v))
		h.maxBits.Store(math.Float64bits(v))
	}
	casFloat(&h.minBits, v, func(cur, v float64) bool { return v < cur })
	casFloat(&h.maxBits, v, func(cur, v float64) bool { return v > cur })
}

func addFloat(bits *atomic.Uint64, v float64) {
	for {
		old := bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if bits.CompareAndSwap(old, next) {
			return
		}
	}
}

func casFloat(bits *atomic.Uint64, v float64, better func(cur, v float64) bool) {
	for {
		old := bits.Load()
		if !better(math.Float64frombits(old), v) {
			return
		}
		if bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observations.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// Min returns the smallest observation (0 before any Observe).
func (h *Histogram) Min() float64 {
	if !h.first.Load() {
		return 0
	}
	return math.Float64frombits(h.minBits.Load())
}

// Max returns the largest observation (0 before any Observe).
func (h *Histogram) Max() float64 {
	if !h.first.Load() {
		return 0
	}
	return math.Float64frombits(h.maxBits.Load())
}

// Mean returns the mean observation (0 before any Observe).
func (h *Histogram) Mean() float64 {
	n := h.Count()
	if n == 0 {
		return 0
	}
	return h.Sum() / float64(n)
}

// Quantile returns an upper bound on the q-quantile (0 <= q <= 1) from
// the power-of-two buckets — exact to within one bucket width.
func (h *Histogram) Quantile(q float64) float64 {
	total := h.Count()
	if total == 0 {
		return 0
	}
	rank := int64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	var seen int64
	for b := 0; b < histBuckets; b++ {
		seen += h.buckets[b].Load()
		if seen >= rank {
			up := bucketUpper(b)
			if max := h.Max(); up > max {
				up = max
			}
			return up
		}
	}
	return h.Max()
}

// BucketCount is one non-empty histogram bucket: the inclusive upper
// bound of its value range and the number of observations in it.
type BucketCount struct {
	UpperBound float64
	Count      int64
}

// BucketCounts returns the histogram's non-empty buckets in ascending
// bound order — the raw (non-cumulative) counts the Prometheus
// exposition accumulates into `_bucket{le=...}` series.
func (h *Histogram) BucketCounts() []BucketCount {
	var out []BucketCount
	for b := 0; b < histBuckets; b++ {
		if n := h.buckets[b].Load(); n > 0 {
			out = append(out, BucketCount{UpperBound: bucketUpper(b), Count: n})
		}
	}
	return out
}

// Registry holds a node's named metrics.  The zero value is not usable;
// call NewRegistry.  Handle lookup locks; handle use does not.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the counter registered under name, creating it on
// first use.  The handle stays valid for the registry's lifetime.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = new(Counter)
		r.counters[name] = c
	}
	return c
}

// Gauge returns the gauge registered under name, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = new(Gauge)
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the histogram registered under name, creating it on
// first use.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = new(Histogram)
		r.hists[name] = h
	}
	return h
}

// Snapshot flattens the registry into a name→value map: counters and
// gauges appear under their own names; a histogram h appears as
// h.count, h.sum, h.min, h.max, h.p50 and h.p99.
func (r *Registry) Snapshot() map[string]float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]float64, len(r.counters)+len(r.gauges)+6*len(r.hists))
	for name, c := range r.counters {
		out[name] = float64(c.Value())
	}
	for name, g := range r.gauges {
		out[name] = g.Value()
	}
	for name, h := range r.hists {
		out[name+".count"] = float64(h.Count())
		out[name+".sum"] = h.Sum()
		out[name+".min"] = h.Min()
		out[name+".max"] = h.Max()
		out[name+".p50"] = h.Quantile(0.50)
		out[name+".p99"] = h.Quantile(0.99)
	}
	return out
}

// Names returns every registered metric name in lexical order (handle
// names, not the flattened snapshot keys).
func (r *Registry) Names() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.counters)+len(r.gauges)+len(r.hists))
	for n := range r.counters {
		names = append(names, n)
	}
	for n := range r.gauges {
		names = append(names, n)
	}
	for n := range r.hists {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Reset zeroes every registered metric in place; existing handles stay
// valid (the experiment harness resets between repetitions).
func (r *Registry) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, c := range r.counters {
		c.v.Store(0)
	}
	for _, g := range r.gauges {
		g.bits.Store(0)
	}
	for _, h := range r.hists {
		h.count.Store(0)
		h.sumBits.Store(0)
		h.minBits.Store(0)
		h.maxBits.Store(0)
		h.first.Store(false)
		for i := range h.buckets {
			h.buckets[i].Store(0)
		}
	}
}

// FormatValue renders a snapshot value the way reports print it:
// integers without a fraction, floats with six significant digits.
func FormatValue(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%.6g", v)
}

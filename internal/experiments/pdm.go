package experiments

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"

	"hetsort/internal/cluster"
	"hetsort/internal/diskio"
	"hetsort/internal/extsort"
	"hetsort/internal/pdm"
	"hetsort/internal/polyphase"
	"hetsort/internal/record"
	"hetsort/internal/stats"
)

// PDMAblation runs A10: saturating the per-node PDM.  Two parts, both
// self-checking.
//
// Part 1 (disks) sweeps the PDM D parameter over the full parallel sort
// on the paper's loaded cluster: D=1, D=2, D=4 striped, D=4 under the
// independent access model, and D=4 under each execution strategy
// (Pipeline, Overlap, and a checkpointed crash+resume).  D is
// timing-only, so the ablation fails unless the base variants move
// exactly the same number of blocks, every variant's output hashes
// identically, each node's per-disk counters sum to its node counters,
// and every multi-disk variant finishes in strictly less virtual time
// than the single-disk run.
//
// Part 2 (run-formation) measures the sequential-phase kernels on one
// node sorting a banded input (12 disjoint key ranges, each one memory
// load): the polyphase baseline (load-sort, galloping off), the
// galloping merge kernel, the guidesort run former, and replacement
// selection.  Galloping is compute-only, so its block I/Os must equal
// the baseline's exactly while its virtual time is strictly lower;
// guidesort coalesces the banded loads into long runs, so it must beat
// the baseline strictly too.  All four outputs must hash identically.
func PDMAblation(o Options) ([]PDMRow, error) {
	o = o.withDefaults()
	rows, err := pdmDisks(o)
	if err != nil {
		return nil, err
	}
	formers, err := pdmRunFormers(o)
	if err != nil {
		return nil, err
	}
	return append(rows, formers...), nil
}

// PDMRow is one measured variant of the A10 ablation (the
// BENCH_pdm.json row shape).
type PDMRow struct {
	// Part is "disks" (part 1) or "run-formation" (part 2).
	Part    string `json:"part"`
	Variant string `json:"variant"`
	// D and Access describe the node disk configuration (part 1).
	D      int    `json:"d,omitempty"`
	Access string `json:"access,omitempty"`
	// RunFormer names the sequential run former (part 2).
	RunFormer string  `json:"run_former,omitempty"`
	VSec      float64 `json:"vsec"`
	BlockIOs  int64   `json:"block_ios"`
	// OutputSHA is the SHA-256 of the sorted output bytes; the ablation
	// demands it be identical across every variant of a part.
	OutputSHA string `json:"output_sha256"`
}

// PDMString renders the rows.
func PDMString(rows []PDMRow) string {
	t := &stats.Table{
		Title:   "A10: per-node PDM saturation (multi-disk striping + sequential-phase kernels)",
		Headers: []string{"Part", "Variant", "vsec", "blockIOs", "output sha256"},
	}
	for _, r := range rows {
		t.AddRow(r.Part, r.Variant, fmt.Sprintf("%.4f", r.VSec),
			fmt.Sprintf("%d", r.BlockIOs), r.OutputSHA[:12])
	}
	return t.String()
}

// pdmDisks is part 1: the D sweep over the full parallel sort.
func pdmDisks(o Options) ([]PDMRow, error) {
	v := PaperVector
	n := v.NearestValidSize(o.scale(1 << 22))
	variants := []struct {
		name              string
		d                 int
		access            pdm.AccessMode
		pipeline, overlap bool
		crash             bool
	}{
		{name: "d1", d: 1},
		{name: "d2", d: 2},
		{name: "d4", d: 4},
		{name: "d4-independent", d: 4, access: pdm.Independent},
		{name: "d4-pipeline", d: 4, pipeline: true},
		{name: "d4-overlap", d: 4, overlap: true},
		{name: "d4-crash-resume", d: 4, crash: true},
	}
	var rows []PDMRow
	vsec := map[string]float64{}
	ios := map[string]int64{}
	for _, vt := range variants {
		c, err := cluster.New(cluster.Config{
			Slowdowns:    v.Slowdowns(),
			Net:          cluster.FastEthernet(),
			BlockKeys:    o.BlockKeys,
			DisksPerNode: vt.d,
			DiskAccess:   vt.access,
		})
		if err != nil {
			return nil, err
		}
		c.ResetClocks()
		sum, err := extsort.DistributeInput(c, v, record.Uniform, n, o.Seed, o.BlockKeys, "input")
		if err != nil {
			return nil, err
		}
		cfg := o.extsortConfig(v)
		cfg.Pipeline = vt.pipeline
		cfg.Overlap = vt.overlap
		cfg.InputSum = sum
		var res *extsort.Result
		var extra int64 // the crashed attempt's I/O, for the resume variant
		if vt.crash {
			cfg.Checkpoint = true
			if err := c.ScheduleCrash(1, -1, extsort.StepNames[3]); err != nil {
				return nil, err
			}
			if _, err := extsort.Sort(c, cfg, "input", "output"); err == nil {
				return nil, fmt.Errorf("A10 %s: injected crash did not interrupt the sort", vt.name)
			} else if !cluster.IsCrash(err) {
				return nil, fmt.Errorf("A10 %s: sort failed for a non-crash reason: %w", vt.name, err)
			}
			for i := 0; i < c.P(); i++ {
				extra += c.Node(i).IOStats().Total()
			}
			c.ClearCrashes()
			if res, _, err = extsort.Resume(c, cfg, "input", "output"); err != nil {
				return nil, fmt.Errorf("A10 %s resume: %w", vt.name, err)
			}
		} else if res, err = extsort.Sort(c, cfg, "input", "output"); err != nil {
			return nil, fmt.Errorf("A10 %s: %w", vt.name, err)
		}
		if err := extsort.VerifyOutput(c, "output", o.BlockKeys, sum); err != nil {
			return nil, fmt.Errorf("A10 %s verify: %w", vt.name, err)
		}
		var io int64
		for i, s := range res.NodeIO {
			io += s.Total()
			if dio := res.DiskIO[i]; vt.d > 1 {
				var dsum pdm.IOStats
				for _, ds := range dio {
					dsum = dsum.Add(ds)
				}
				if dsum != s {
					return nil, fmt.Errorf("A10 %s: node %d per-disk counters %+v do not sum to node counters %+v",
						vt.name, i, dsum, s)
				}
			} else if dio != nil {
				return nil, fmt.Errorf("A10 %s: node %d reports per-disk counters at D=1", vt.name, i)
			}
		}
		sha, err := clusterOutputSHA(c, o.BlockKeys)
		if err != nil {
			return nil, err
		}
		rows = append(rows, PDMRow{Part: "disks", Variant: vt.name, D: vt.d,
			Access: accessName(vt.access), VSec: res.Time, BlockIOs: io + extra, OutputSHA: sha})
		vsec[vt.name] = res.Time
		ios[vt.name] = io
	}
	// Gates.  The base variants move identical blocks (D and the access
	// model are timing-only; Pipeline/Overlap/resume legitimately change
	// the count), every output hashes identically, and virtual time
	// strictly improves with each doubling of D.
	for _, name := range []string{"d2", "d4", "d4-independent"} {
		if ios[name] != ios["d1"] {
			return nil, fmt.Errorf("A10: %s moved %d blocks, d1 moved %d — D must be timing-only",
				name, ios[name], ios["d1"])
		}
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].OutputSHA != rows[0].OutputSHA {
			return nil, fmt.Errorf("A10: %s output hash %s differs from d1's %s",
				rows[i].Variant, rows[i].OutputSHA, rows[0].OutputSHA)
		}
	}
	if !(vsec["d4"] < vsec["d1"] && vsec["d2"] < vsec["d1"]) {
		return nil, fmt.Errorf("A10: multi-disk nodes not strictly faster: d1=%.4f d2=%.4f d4=%.4f",
			vsec["d1"], vsec["d2"], vsec["d4"])
	}
	return rows, nil
}

// pdmRunFormers is part 2: the sequential-phase kernels on one node.
func pdmRunFormers(o Options) ([]PDMRow, error) {
	// A banded input: 12 disjoint key ranges, each exactly one memory
	// load, so load-sort forms 12 runs while guidesort coalesces them
	// into one already-sorted stream.
	const bands = 12
	n := bands * o.MemoryKeys
	keys := make([]record.Key, 0, n)
	state := uint64(o.Seed)*2862933555777941757 + 3037000493
	for b := 0; b < bands; b++ {
		base := record.Key(b) << 24
		for i := 0; i < o.MemoryKeys; i++ {
			state = state*6364136223846793005 + 1442695040888963407
			keys = append(keys, base+record.Key(state>>40)&0xffffff)
		}
	}

	// The baseline forms one run per memory load (12 disjoint-range
	// runs, a real merge) with galloping off; the galloping variant
	// differs only in the merge kernel; guidesort replaces the former
	// entirely; replacement selection rides along as the default
	// former's number on the same input.
	variants := []struct {
		name     string
		former   polyphase.RunFormation
		noGallop bool
	}{
		{name: "baseline", former: polyphase.LoadSort, noGallop: true},
		{name: "galloping", former: polyphase.LoadSort},
		{name: "guidesort", former: polyphase.Guidesort},
		{name: "replacement-selection", former: polyphase.ReplacementSelection},
	}
	var rows []PDMRow
	vsec := map[string]float64{}
	ios := map[string]int64{}
	for _, vt := range variants {
		c, err := cluster.New(cluster.Config{Slowdowns: []float64{1}, BlockKeys: o.BlockKeys})
		if err != nil {
			return nil, err
		}
		fs := c.Node(0).FS()
		if err := diskio.WriteFile(fs, "in", keys, o.BlockKeys, diskio.Accounting{}); err != nil {
			return nil, err
		}
		err = c.Run(func(nd *cluster.Node) error {
			cfg := polyphase.Config{FS: fs, BlockKeys: o.BlockKeys,
				MemoryKeys: o.MemoryKeys, Tapes: o.Tapes, Acct: nd.Acct(),
				TempPrefix: "a10.", RunFormation: vt.former, NoGallop: vt.noGallop}
			_, serr := polyphase.Sort(cfg, "in", "out")
			return serr
		})
		if err != nil {
			return nil, fmt.Errorf("A10 %s: %w", vt.name, err)
		}
		out, err := diskio.ReadFileAll(fs, "out", o.BlockKeys, diskio.Accounting{})
		if err != nil {
			return nil, err
		}
		h := sha256.Sum256(record.EncodeKeys(nil, out))
		rows = append(rows, PDMRow{Part: "run-formation", Variant: vt.name,
			RunFormer: vt.former.String(), VSec: c.MaxClock(),
			BlockIOs: c.Node(0).IOStats().Total(), OutputSHA: hex.EncodeToString(h[:])})
		vsec[vt.name] = c.MaxClock()
		ios[vt.name] = c.Node(0).IOStats().Total()
	}
	// Gates.  Galloping is compute-only (same blocks, strictly less
	// time); guidesort coalesces the banded runs (no more blocks than
	// the baseline, strictly less time); all outputs hash identically.
	for _, r := range rows[1:] {
		if r.OutputSHA != rows[0].OutputSHA {
			return nil, fmt.Errorf("A10: %s output hash differs from the baseline's", r.Variant)
		}
	}
	if ios["galloping"] != ios["baseline"] {
		return nil, fmt.Errorf("A10: galloping moved %d blocks, baseline moved %d — galloping must be compute-only",
			ios["galloping"], ios["baseline"])
	}
	if vsec["galloping"] >= vsec["baseline"] {
		return nil, fmt.Errorf("A10: galloping (%.4f vsec) not strictly below the baseline (%.4f)",
			vsec["galloping"], vsec["baseline"])
	}
	if ios["guidesort"] > ios["baseline"] {
		return nil, fmt.Errorf("A10: guidesort moved %d blocks, more than the baseline's %d",
			ios["guidesort"], ios["baseline"])
	}
	if vsec["guidesort"] >= vsec["baseline"] {
		return nil, fmt.Errorf("A10: guidesort (%.4f vsec) not strictly below the baseline (%.4f)",
			vsec["guidesort"], vsec["baseline"])
	}
	return rows, nil
}

// clusterOutputSHA hashes the concatenated per-node sorted outputs.
func clusterOutputSHA(c *cluster.Cluster, blockKeys int) (string, error) {
	h := sha256.New()
	for i := 0; i < c.P(); i++ {
		keys, err := diskio.ReadFileAll(c.Node(i).FS(), "output", blockKeys, diskio.Accounting{})
		if err != nil {
			return "", err
		}
		h.Write(record.EncodeKeys(nil, keys))
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}

func accessName(m pdm.AccessMode) string {
	if m == pdm.Independent {
		return "independent"
	}
	return "striped"
}

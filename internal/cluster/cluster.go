package cluster

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"hetsort/internal/diskio"
	"hetsort/internal/metrics"
	"hetsort/internal/pdm"
	"hetsort/internal/record"
	"hetsort/internal/trace"
	"hetsort/internal/vtime"
)

// message is one point-to-point transfer.  Send copies the payload so
// the sender may reuse its buffer; SendOwned transfers ownership of a
// (typically pooled) buffer without copying.
type message struct {
	tag     int
	keys    []record.Key
	arrival float64 // virtual time at which the message reaches the receiver
	remote  bool    // false for self-sends, which are free
}

// Config describes a cluster to build.
type Config struct {
	// Slowdowns has one entry per node: the factor by which the
	// node's local work is slower than the fastest class (>= 1).
	// {1,1,4,4} models the paper's cluster with two loaded nodes.
	Slowdowns []float64
	// Net is the interconnect model (default FastEthernet).
	Net NetModel
	// Cost converts work units to virtual seconds (default
	// vtime.DefaultCostModel).
	Cost vtime.CostModel
	// BlockKeys is the disk block size B in keys, used to price block
	// transfers (default 2048 keys = 8 KiB).
	BlockKeys int
	// Disks returns the private filesystem of node id.  Default: a
	// fresh MemFS per node.
	Disks func(id int) diskio.FS
	// DisksPerNode is the PDM D parameter per node.  With D > 1 the
	// node's filesystem is striped round-robin across D member disks
	// (diskio.StripeOver) and each disk gets its own virtual-time
	// queue: block transfers to distinct disks coalesce into one
	// parallel I/O step that completes when the slowest involved disk
	// does, while transfers hitting the same disk serialize.  The I/O
	// *count* (the PDM complexity measure) is unchanged — only time
	// parallelizes, and only as far as the access pattern actually
	// spreads over the disks.  Default 1, the paper's configuration
	// ("we have one disk attached per processor").
	DisksPerNode int
	// DiskAccess selects how a node's D disks are driven (pdm.Striped,
	// the default, or pdm.Independent).  Striped mode additionally
	// requires round-robin disk order within a parallel step — the
	// "one logical disk with block size D*B" discipline — so an access
	// pattern that skips around closes steps early and loses
	// parallelism; independent mode lets any set of distinct disks
	// share a step.  Irrelevant at D=1.
	DiskAccess pdm.AccessMode
	// Contention, when non-nil, is sampled on every disk and network
	// charge and multiplies the virtual time by the returned factor
	// (values below 1, NaN, or Inf are treated as 1).  The hetsortd
	// service shares one simulated machine between tenant jobs this
	// way: with k jobs running, each sees its disk transfers, seeks and
	// link occupancy stretched by k — fair time-slicing of the shared
	// drives and links.  Message latency (the wire's propagation delay)
	// is not stretched, and data is never touched: contention is purely
	// a virtual-time effect, so outputs stay byte-identical at any
	// multiprogramming level.  nil means a dedicated machine.
	Contention func() float64
	// LinkBuffer is the per-link message queue capacity (default 4096
	// messages) for clusters whose users never declare a bound.  The
	// sorts' send-all-then-receive-all exchange can queue a whole
	// segment per link, so a sort declares its own bound —
	// ceil(l_i/MessageKeys) messages for the largest portion l_i,
	// plus the end-of-stream sentinel — via EnsureLinkCapacity before
	// Run (extsort and dewitt do; see LinkBound).  A declared bound
	// replaces this default: at scale the default is the dominant
	// memory cost (4096 slots on each of p² links), while the
	// in-flight *data* volume is bounded by the dataset either way.
	LinkBuffer int
	// Trace, when non-nil, receives message and phase events with
	// virtual timestamps.
	Trace *trace.Log
}

// linkState is one directed link: a lazily created message channel
// plus queue-depth accounting.  Channels materialize on first use, so
// an idle link costs one small struct rather than a buffered channel —
// a flat all-to-all still touches all p² links, but tree and grid
// topologies touch O(p·r·log_r p) and the rest stay unallocated.
type linkState struct {
	ch     atomic.Pointer[chan message]
	queued atomic.Int64 // messages in flight (incremented by the sender before enqueue)
	hwm    atomic.Int64 // high-water mark of queued since the last Run started
}

// casMax raises a to at least v.
func casMax(a *atomic.Int64, v int64) {
	for {
		cur := a.Load()
		if cur >= v || a.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Cluster is a simulated machine of P nodes.
type Cluster struct {
	nodes []*Node
	net   NetModel
	trace *trace.Log

	links    []linkState            // row-major [from*p+to], channels created lazily
	linkMu   sync.Mutex             // guards channel creation and capacity growth
	linkDef  int                    // Config.LinkBuffer: capacity for links with no hint
	linkCap  int                    // uniform minimum set by EnsureLinkCapacity
	linkCapF func(from, to int) int // per-link hint set by EnsureLinkCapacityFunc

	// payloads recycles message payload buffers across the whole
	// cluster (senders acquire, receivers release), eliminating the
	// per-message allocation of the redistribution exchange.
	payloads sync.Pool

	abortMu   sync.Mutex    // guards abort/abortOnce against Interrupt
	abort     chan struct{} // closed when any node fails during Run
	abortOnce *sync.Once
}

// Interrupt aborts a Run in progress from outside the node goroutines:
// every node blocked in a receive, collective or barrier returns an
// error, exactly as if a peer had failed.  Interruption is best-effort
// — a node deep in a compute or disk phase notices only at its next
// blocking receive.  Safe to call concurrently with Run; a no-op when
// no Run is active.  The hetsortd service uses it to cancel running
// jobs and to shut down.
func (c *Cluster) Interrupt() {
	c.abortMu.Lock()
	defer c.abortMu.Unlock()
	if c.abort == nil || c.abortOnce == nil {
		return
	}
	c.abortOnce.Do(func() { close(c.abort) })
}

// LinkBound returns the per-link queue capacity a send-all-then-
// receive-all exchange needs so sends never block: one message per
// MessageKeys-sized packet of the largest per-node portion (maxKeys),
// the zero-length end-of-stream sentinel, and a small margin for
// control traffic and collectives.  Sorts pass the result to
// EnsureLinkCapacity before Run.
func LinkBound(maxKeys int64, messageKeys int) int {
	if messageKeys <= 0 {
		messageKeys = 1
	}
	b := int((maxKeys+int64(messageKeys)-1)/int64(messageKeys)) + 1 + 16
	// A low floor matters at scale: the bound applies per link, and a
	// flat exchange touches all p² of them, so every slot of floor here
	// is p²·sizeof(message) bytes of resident buffer at p=1024.
	if b < 16 {
		b = 16
	}
	return b
}

// EnsureLinkCapacity declares msgs as the uniform queue capacity for
// every link, replacing the Config.LinkBuffer default (calls keep the
// largest bound declared so far; a small floor leaves room for control
// traffic).  Channels created later are sized to the bound, and
// already-created channels are grown in place (never shrunk), with
// queued messages preserved.  Must not be called while Run is
// executing.
func (c *Cluster) EnsureLinkCapacity(msgs int) {
	c.linkMu.Lock()
	defer c.linkMu.Unlock()
	if msgs > c.linkCap {
		c.linkCap = msgs
	}
	c.growCreatedLocked()
}

// EnsureLinkCapacityFunc installs a per-link capacity hint: the
// channel for from→to is created with f(from, to) messages of
// capacity (replacing the Config.LinkBuffer default, subject to the
// EnsureLinkCapacity uniform minimum and a small control-traffic
// floor).  The hint is evaluated lazily, so only links that actually
// carry traffic pay for their bound — this is what keeps a tree
// topology's resident buffer memory O(p·r·log_r p) instead of the
// flat path's O(p²).  Already-created channels are grown to their
// hint immediately (never shrunk).  Pass nil to restore the default.
// Must not be called while Run is executing.
func (c *Cluster) EnsureLinkCapacityFunc(f func(from, to int) int) {
	c.linkMu.Lock()
	defer c.linkMu.Unlock()
	c.linkCapF = f
	c.growCreatedLocked()
}

// growCreatedLocked grows every already-created channel to the current
// capacity bound for its link.  Caller holds linkMu.
func (c *Cluster) growCreatedLocked() {
	p := len(c.nodes)
	for i := range c.links {
		ls := &c.links[i]
		chp := ls.ch.Load()
		if chp == nil {
			continue
		}
		want := c.linkCapLocked(i/p, i%p)
		if cap(*chp) >= want {
			continue
		}
		grown := make(chan message, want)
		for len(*chp) > 0 {
			grown <- <-*chp
		}
		ls.ch.Store(&grown)
	}
}

// linkCapLocked returns the creation capacity for link from→to.  With
// a hint function installed the hint replaces the Config.LinkBuffer
// default (that is the point: the default is sized for arbitrary flat
// traffic, far above what a structured topology needs per link), while
// the uniform minimum from EnsureLinkCapacity still applies, and a
// small floor keeps room for stray control traffic.  Caller holds
// linkMu.
func (c *Cluster) linkCapLocked(from, to int) int {
	if c.linkCapF != nil {
		capMsgs := c.linkCapF(from, to)
		if c.linkCap > capMsgs {
			capMsgs = c.linkCap
		}
		if capMsgs < 16 {
			capMsgs = 16
		}
		return capMsgs
	}
	// A declared bound replaces the Config.LinkBuffer default rather
	// than raising it: the default is sized for arbitrary traffic from
	// callers that never declare anything, and letting it win would
	// keep every link at 4096 slots (~190 KiB of buffer) when the
	// sort's own bound is a couple dozen.  A flat exchange at p=1024
	// touches all 2^20 links, so that is the difference between ~1 GiB
	// and ~200 GiB of resident channel buffers.
	if c.linkCap > 0 {
		capMsgs := c.linkCap
		if capMsgs < 16 {
			capMsgs = 16
		}
		return capMsgs
	}
	return c.linkDef
}

// linkAt returns the link state for from→to.
func (c *Cluster) linkAt(from, to int) *linkState {
	return &c.links[from*len(c.nodes)+to]
}

// link returns the channel for from→to, creating it on first use at
// the capacity bound in force.  Safe to call from any node goroutine.
func (c *Cluster) link(from, to int) chan message {
	ls := c.linkAt(from, to)
	if chp := ls.ch.Load(); chp != nil {
		return *chp
	}
	c.linkMu.Lock()
	defer c.linkMu.Unlock()
	if chp := ls.ch.Load(); chp != nil {
		return *chp
	}
	ch := make(chan message, c.linkCapLocked(from, to))
	ls.ch.Store(&ch)
	return ch
}

// LinksCreated returns the number of links whose channel has been
// materialized — the measure of resident link-buffer state.
func (c *Cluster) LinksCreated() int {
	created := 0
	for i := range c.links {
		if c.links[i].ch.Load() != nil {
			created++
		}
	}
	return created
}

// FanInHWM returns node id's peak count of distinct in-links with
// queued messages during the last Run — the peak number of concurrently
// open incoming streams the node had to buffer.
func (c *Cluster) FanInHWM(id int) int64 { return c.nodes[id].faninHWM.Load() }

// LinkQueueHWM returns the worst per-link queue high-water mark over
// node id's incoming links during the last Run.
func (c *Cluster) LinkQueueHWM(id int) int64 {
	var m int64
	for from := 0; from < len(c.nodes); from++ {
		if h := c.linkAt(from, id).hwm.Load(); h > m {
			m = h
		}
	}
	return m
}

// CrashError is the failure a scheduled crash injects: the node stops
// mid-run exactly as if its process had died, leaving peers to abort.
type CrashError struct {
	Node  int
	Clock float64 // virtual time of death
	Point string  // the crash point that fired ("" for clock-triggered)
}

func (e *CrashError) Error() string {
	if e.Point != "" {
		return fmt.Sprintf("cluster: node %d crashed (injected) at %.6fs, point %q", e.Node, e.Clock, e.Point)
	}
	return fmt.Sprintf("cluster: node %d crashed (injected) at %.6fs", e.Node, e.Clock)
}

// IsCrash reports whether err contains an injected CrashError (possibly
// joined with peer abort errors).
func IsCrash(err error) bool {
	var ce *CrashError
	return errors.As(err, &ce)
}

// ScheduleCrash arranges for node id to die during the next Run: when
// its virtual clock reaches atClock (>= 0), or when it executes the
// crash point named atPoint (see Node.CrashPoint), whichever triggers
// first.  Pass atClock < 0 to disable the clock trigger and atPoint ""
// to disable the point trigger.  The schedule is one-shot: it clears
// once fired, so a subsequent (recovery) Run proceeds normally.
func (c *Cluster) ScheduleCrash(id int, atClock float64, atPoint string) error {
	if id < 0 || id >= len(c.nodes) {
		return fmt.Errorf("cluster: cannot schedule crash on invalid rank %d", id)
	}
	n := c.nodes[id]
	n.crashClock = atClock
	n.crashPoint = atPoint
	n.crashArmed = atClock >= 0 || atPoint != ""
	return nil
}

// ClearCrashes disarms every scheduled crash (between a failed run and
// its recovery run).
func (c *Cluster) ClearCrashes() {
	for _, n := range c.nodes {
		n.crashArmed = false
		n.crashClock = -1
		n.crashPoint = ""
	}
}

// New builds a cluster from cfg.
func New(cfg Config) (*Cluster, error) {
	p := len(cfg.Slowdowns)
	if p == 0 {
		return nil, errors.New("cluster: need at least one node")
	}
	for i, s := range cfg.Slowdowns {
		// !(s >= 1) rather than s < 1: NaN compares false either way
		// and must be rejected, not admitted.
		if !(s >= 1) || math.IsInf(s, 1) {
			return nil, fmt.Errorf("cluster: slowdown[%d]=%v must be a finite value >= 1", i, s)
		}
	}
	if cfg.Net == (NetModel{}) {
		cfg.Net = FastEthernet()
	}
	if cfg.Cost == (vtime.CostModel{}) {
		cfg.Cost = vtime.DefaultCostModel()
	}
	if cfg.BlockKeys <= 0 {
		cfg.BlockKeys = 2048
	}
	if cfg.Disks == nil {
		cfg.Disks = func(int) diskio.FS { return diskio.NewMemFS() }
	}
	if cfg.LinkBuffer <= 0 {
		cfg.LinkBuffer = 1 << 12
	}
	if cfg.DisksPerNode <= 0 {
		cfg.DisksPerNode = 1
	}
	c := &Cluster{net: cfg.Net, trace: cfg.Trace, linkDef: cfg.LinkBuffer}
	c.links = make([]linkState, p*p)
	c.nodes = make([]*Node, p)
	for i := 0; i < p; i++ {
		fs := cfg.Disks(i)
		if cfg.DisksPerNode > 1 {
			sfs, err := diskio.StripeOver(fs, cfg.DisksPerNode, int64(cfg.BlockKeys)*record.KeySize)
			if err != nil {
				return nil, fmt.Errorf("cluster: striping node %d over %d disks: %w", i, cfg.DisksPerNode, err)
			}
			fs = sfs
		}
		n := &Node{
			id:       i,
			cluster:  c,
			slowdown: cfg.Slowdowns[i],
			cost:     cfg.Cost,
			block:    cfg.BlockKeys,
			disks:    cfg.DisksPerNode,
			access:   cfg.DiskAccess,
			fs:       fs,
			contend:  cfg.Contention,
			metrics:  metrics.NewRegistry(),
		}
		n.initDiskQueues()
		n.initMetricHandles(p)
		c.nodes[i] = n
	}
	return c, nil
}

// P returns the number of nodes.
func (c *Cluster) P() int { return len(c.nodes) }

// Node returns node id (for inspection after a run).
func (c *Cluster) Node(id int) *Node { return c.nodes[id] }

// Net returns the interconnect model.
func (c *Cluster) Net() NetModel { return c.net }

// MaxClock returns the makespan: the maximum node clock, i.e. the
// virtual execution time of the last parallel section run.
func (c *Cluster) MaxClock() float64 {
	var m float64
	for _, n := range c.nodes {
		if n.clock > m {
			m = n.clock
		}
	}
	return m
}

// ResetClocks zeroes every node clock, I/O counter, time attribution
// and metrics registry (between repetitions of an experiment).
func (c *Cluster) ResetClocks() {
	for _, n := range c.nodes {
		n.clock = 0
		n.liveClock.Store(0)
		n.attr = vtime.Breakdown{}
		n.overlapCaps = nil
		n.overlapCap = 0
		n.overlapCredit = 0
		n.counter.Reset()
		n.metrics.Reset()
		for d := range n.diskCounters {
			n.diskCounters[d].Reset()
			n.diskDone[d] = 0
			n.diskBusy[d] = 0
			n.stripeUsed[d] = false
		}
		n.stripeOpen = false
		n.stripeIssue = 0
		n.prevDisk = n.disks - 1
		n.ioSteps = 0
		n.stepBlocks = 0
	}
}

// Run executes fn concurrently on every node and waits for all to
// finish.  Errors from all nodes are joined; the virtual clocks remain
// readable afterwards.
func (c *Cluster) Run(fn func(*Node) error) error {
	errs := make([]error, len(c.nodes))
	c.abortMu.Lock()
	c.abort = make(chan struct{})
	c.abortOnce = new(sync.Once)
	c.abortMu.Unlock()
	// Drain any messages a previous aborted run left in the links, so
	// the cluster is reusable after a failure, and zero the per-run
	// queue accounting.
	for i := range c.links {
		ls := &c.links[i]
		if chp := ls.ch.Load(); chp != nil {
			for len(*chp) > 0 {
				<-*chp
			}
		}
		ls.queued.Store(0)
		ls.hwm.Store(0)
	}
	for _, n := range c.nodes {
		n.fanin.Store(0)
		n.faninHWM.Store(0)
	}
	var wg sync.WaitGroup
	for i, n := range c.nodes {
		wg.Add(1)
		go func(i int, n *Node) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					if ce, ok := r.(*CrashError); ok {
						errs[i] = ce
					} else {
						errs[i] = fmt.Errorf("cluster: node %d panicked: %v", i, r)
					}
				}
				if errs[i] != nil {
					// Unblock peers waiting on this node forever.
					c.abortOnce.Do(func() { close(c.abort) })
				}
			}()
			errs[i] = fn(n)
		}(i, n)
	}
	wg.Wait()
	// Fold the per-run contention accounting into each node's metrics:
	// peak concurrently backed-up in-links (≈ peak open incoming
	// streams) and the worst per-link queue depth.
	for i, n := range c.nodes {
		n.metrics.Gauge("net.fanin.hwm").Set(float64(n.faninHWM.Load()))
		n.metrics.Gauge("net.link.queue.hwm").Set(float64(c.LinkQueueHWM(i)))
		if n.disks > 1 {
			n.metrics.Gauge("disk.parallel.steps").Set(float64(n.ioSteps))
			if n.ioSteps > 0 {
				n.metrics.Gauge("disk.step.width.avg").Set(float64(n.stepBlocks) / float64(n.ioSteps))
			}
			for d, busy := range n.diskBusy {
				n.metrics.Gauge(fmt.Sprintf("disk.%d.busy.sec", d)).Set(busy)
			}
		}
	}
	var nonNil []error
	for i, err := range errs {
		if err != nil {
			nonNil = append(nonNil, fmt.Errorf("node %d: %w", i, err))
		}
	}
	if nonNil != nil {
		return fmt.Errorf("cluster: %w", errors.Join(nonNil...))
	}
	return nil
}

// Node is one simulated machine: processor + private disk + clock.
// A Node's methods must only be called from the goroutine running it
// inside Cluster.Run (except the read-only inspection methods, which are
// safe once Run has returned).
type Node struct {
	id       int
	cluster  *Cluster
	slowdown float64
	cost     vtime.CostModel
	block    int
	disks    int
	access   pdm.AccessMode
	fs       diskio.FS
	contend  func() float64
	clock    float64
	counter  pdm.Counter

	// Per-disk virtual-time queues (D > 1 only; at D=1 the fast paths
	// below bypass them so single-disk numerics are bit-identical to
	// the pre-striping model).  diskDone[d] is the absolute virtual
	// time at which member disk d finishes its last accepted request;
	// the invariant diskDone[d] <= clock holds between charges because
	// the node always waits for the completion it is charged.  A
	// "parallel I/O step" groups consecutive block charges to distinct
	// disks: the step opens at the current clock (stripeIssue), each
	// involved disk serves its block from max(its cursor, the issue
	// time), and the node's clock only advances by the wait for the
	// slowest involved disk.  A step closes when a disk repeats within
	// it, when a seek intervenes, or — in striped access mode — when
	// the round-robin disk order breaks.
	diskDone     []float64
	diskBusy     []float64 // per-disk busy seconds (queue-depth metric)
	stripeUsed   []bool
	stripeOpen   bool
	stripeIssue  float64
	prevDisk     int
	ioSteps      int64 // parallel I/O steps issued
	stepBlocks   int64 // blocks issued through the step model
	diskCounters []pdm.Counter
	diskCtrPtrs  []*pdm.Counter

	// liveClock mirrors clock as atomically published float bits so
	// progress samplers in other goroutines can read a node's virtual
	// time mid-run.  Only the node goroutine writes it (in ChargeTime);
	// it is a pure observation channel and never feeds back into the
	// simulation, so vtime attribution is unperturbed.
	liveClock atomic.Uint64

	// attr splits the clock into compute/disk/network/idle: every
	// clock advance charges exactly one category, so the categories
	// always sum to the clock (vtime.CheckAttribution).
	attr vtime.Breakdown

	// metrics is the node's registry; the typed handles below cache the
	// hot-path metrics so sends and receives never take the registry
	// lock.
	metrics    *metrics.Registry
	mSentMsgs  *metrics.Counter
	mSentKeys  *metrics.Counter
	mRecvMsgs  *metrics.Counter
	mRecvKeys  *metrics.Counter
	mSentTo    []*metrics.Counter // keys sent per outgoing link
	mQueueHist *metrics.Histogram // queue depth sampled after each send
	mQueueLast *metrics.Gauge

	// Overlap-window state (vtime.OverlapMeter): while windows are
	// open, compute charges accrue credit (capped by the windows'
	// combined in-flight capacity) and asynchronously issued disk blocks
	// spend it — spent disk time hides behind the compute that already
	// advanced the clock and lands in attr.Overlapped instead of
	// attr.Disk.  overlapCaps stacks each open window's capacity in
	// seconds so EndOverlap can retire exactly its own contribution.
	overlapCaps   []float64
	overlapCap    float64
	overlapCredit float64

	// Fan-in accounting: fanin counts in-links that currently hold
	// queued messages (senders increment on a link's 0→1 transition,
	// the receiver decrements on 1→0); faninHWM is its per-Run peak.
	fanin    atomic.Int64
	faninHWM atomic.Int64

	// Scheduled fault injection (see Cluster.ScheduleCrash).
	crashArmed bool
	crashClock float64
	crashPoint string
}

// FanInHWM returns the node's peak count of in-links with queued
// messages so far — readable mid-run by the node's own goroutine for
// per-round snapshots, or after Run for the whole-run peak.
func (n *Node) FanInHWM() int64 { return n.faninHWM.Load() }

// MaxInQueueHWM returns the worst queue high-water mark over the node's
// incoming links so far.
func (n *Node) MaxInQueueHWM() int64 { return n.cluster.LinkQueueHWM(n.id) }

// initDiskQueues allocates the per-disk queue and counter state for a
// multi-disk node (no-op at D=1, which keeps the single-disk fast
// paths allocation-free).
func (n *Node) initDiskQueues() {
	if n.disks <= 1 {
		return
	}
	n.diskDone = make([]float64, n.disks)
	n.diskBusy = make([]float64, n.disks)
	n.stripeUsed = make([]bool, n.disks)
	n.prevDisk = n.disks - 1 // so the first round-robin block lands on disk 0
	n.diskCounters = make([]pdm.Counter, n.disks)
	n.diskCtrPtrs = make([]*pdm.Counter, n.disks)
	for d := range n.diskCounters {
		n.diskCtrPtrs[d] = &n.diskCounters[d]
	}
}

// initMetricHandles pre-registers the hot-path metrics for a p-node
// cluster, so Send/Recv only touch atomics.
func (n *Node) initMetricHandles(p int) {
	n.mSentMsgs = n.metrics.Counter("net.sent.msgs")
	n.mSentKeys = n.metrics.Counter("net.sent.keys")
	n.mRecvMsgs = n.metrics.Counter("net.recv.msgs")
	n.mRecvKeys = n.metrics.Counter("net.recv.keys")
	// Per-peer traffic counters are p entries per node — p² strings and
	// atomics cluster-wide — so they stay off above the sizes where
	// anyone reads them one by one.
	if p <= 128 {
		n.mSentTo = make([]*metrics.Counter, p)
		for j := 0; j < p; j++ {
			n.mSentTo[j] = n.metrics.Counter(fmt.Sprintf("net.sent.keys.to.%d", j))
		}
	}
	n.mQueueHist = n.metrics.Histogram("net.queue.depth")
	n.mQueueLast = n.metrics.Gauge("net.queue.depth.last")
}

// crashIfDue panics with a CrashError when the node's scheduled
// clock-triggered crash has come due.  Called from every clock-advancing
// method so a node can die mid-phase, exactly like a real process.
func (n *Node) crashIfDue() {
	if n.crashArmed && n.crashClock >= 0 && n.clock >= n.crashClock {
		n.crashArmed = false
		panic(&CrashError{Node: n.id, Clock: n.clock})
	}
}

// CrashPoint is a named fault-injection hook: if a crash was scheduled
// at this point (Cluster.ScheduleCrash with atPoint == name), the node
// dies here.  The sorts place crash points at their phase boundaries so
// tests can kill a node at any commit point.
func (n *Node) CrashPoint(name string) {
	if n.crashArmed && n.crashPoint == name {
		n.crashArmed = false
		panic(&CrashError{Node: n.id, Clock: n.clock, Point: name})
	}
}

// ID returns the node's rank in [0, P).
func (n *Node) ID() int { return n.id }

// P returns the cluster size.
func (n *Node) P() int { return len(n.cluster.nodes) }

// FS returns the node's private disk.
func (n *Node) FS() diskio.FS { return n.fs }

// Slowdown returns the node's load factor (1 = fastest class).
func (n *Node) Slowdown() float64 { return n.slowdown }

// Clock returns the node's virtual time in seconds.
func (n *Node) Clock() float64 { return n.clock }

// AdvanceClock adds dt virtual seconds of unscaled time, attributed to
// idle-wait (its callers are waits: retry backoff delays and the
// replayed clock of a resumed run).
func (n *Node) AdvanceClock(dt float64) {
	n.ChargeTime(vtime.Idle, dt)
}

// ChargeTime implements vtime.TimeMeter: it advances the clock by sec
// unscaled virtual seconds attributed to cat.
func (n *Node) ChargeTime(cat vtime.Category, sec float64) {
	n.clock += sec
	n.liveClock.Store(math.Float64bits(n.clock))
	n.attr.Charge(cat, sec)
	n.crashIfDue()
}

// LiveClock returns the node's virtual time as last published by
// ChargeTime.  Unlike Clock it is safe to call from any goroutine while
// the cluster is running, which is what the progress sampler needs; it
// may lag Clock by at most the charge currently being applied.
func (n *Node) LiveClock() float64 {
	return math.Float64frombits(n.liveClock.Load())
}

// Attribution returns the node's clock split into compute / disk /
// network / idle-wait.  The categories sum to Clock() (within
// vtime.AttributionTolerance of float drift).
func (n *Node) Attribution() vtime.Breakdown { return n.attr }

// Metrics returns the node's metrics registry.
func (n *Node) Metrics() *metrics.Registry { return n.metrics }

// Counter returns the node's PDM I/O counter.
func (n *Node) Counter() *pdm.Counter { return &n.counter }

// IOStats returns a snapshot of the node's I/O counter.
func (n *Node) IOStats() pdm.IOStats { return n.counter.Snapshot() }

// Acct returns the accounting handle (counter + meter) to pass to the
// disk layer and the sorts.
func (n *Node) Acct() diskio.Accounting {
	return diskio.Accounting{Counter: &n.counter, Meter: n, Disks: n.diskCtrPtrs}
}

// ChargeCompute implements vtime.Meter.  Inside an overlap window the
// compute time also accrues overlap credit: the node's disks can
// transfer while this computation runs, so disk blocks later charged
// through ChargeOverlappedIOBlocks may hide behind it.
func (n *Node) ChargeCompute(ops int64) {
	sec := float64(ops) * n.cost.ComputeSec * n.slowdown
	if len(n.overlapCaps) > 0 {
		n.overlapCredit += sec
		if n.overlapCredit > n.overlapCap {
			n.overlapCredit = n.overlapCap
		}
	}
	n.ChargeTime(vtime.Compute, sec)
}

// contention samples the cluster's tenancy factor (1 when dedicated or
// when the hook returns a degenerate value).
func (n *Node) contention() float64 {
	if n.contend == nil {
		return 1
	}
	f := n.contend()
	if !(f >= 1) || math.IsInf(f, 1) { // NaN compares false: treated as 1
		return 1
	}
	return f
}

// blockSec is the virtual transfer time of one block on a single member
// drive of this node, stretched by the tenancy contention factor when
// the machine is shared.  D no longer discounts this uniformly: at
// D > 1 the per-disk queues decide how much of each block's time
// overlaps with the other disks' (chargeDiskBlock).
func (n *Node) blockSec() float64 {
	return float64(n.block) * n.cost.IOBlockSecPerKey * n.slowdown * n.contention()
}

// BeginOverlap implements vtime.OverlapMeter: it opens an overlap window
// whose device keeps up to depthBlocks transfers in flight (<= 0 means 2,
// double-buffering).  The overlap layer in diskio opens one window per
// prefetching reader or write-behind writer.
func (n *Node) BeginOverlap(depthBlocks int) {
	if depthBlocks <= 0 {
		depthBlocks = 2
	}
	// The window's credit is capped per disk: each in-flight slot hides
	// at most one block served at the array's parallel rate, so depth
	// slots cap at depth * blockSec/D regardless of which member disks
	// the stream lands on.
	cap := float64(depthBlocks) * n.blockSec() / float64(n.disks)
	n.overlapCaps = append(n.overlapCaps, cap)
	n.overlapCap += cap
}

// EndOverlap implements vtime.OverlapMeter, closing the innermost open
// window.  Credit is clamped to the remaining windows' capacity and dies
// entirely with the last window: compute can only hide transfers that
// are actually in flight.
func (n *Node) EndOverlap() {
	if len(n.overlapCaps) == 0 {
		return
	}
	last := len(n.overlapCaps) - 1
	n.overlapCap -= n.overlapCaps[last]
	n.overlapCaps = n.overlapCaps[:last]
	if n.overlapCredit > n.overlapCap {
		n.overlapCredit = n.overlapCap
	}
}

// ChargeOverlappedIOBlocks implements vtime.OverlapMeter: the blocks
// were transferred by the drive while the CPU worked, so their time is
// hidden up to the accrued credit — max(0, disk − overlappable compute)
// per window — and only the exposed remainder advances the clock as
// Disk.  The hidden share is recorded in the Overlapped attribution
// column (and the node metrics), never silently dropped.
func (n *Node) ChargeOverlappedIOBlocks(blocks int64) {
	// Asynchronously issued blocks stream at the array's parallel rate:
	// the prefetch/write-behind queue keeps all D member disks fed, so
	// a block's exposed time is the single-disk time over D.
	sec := float64(blocks) * n.blockSec() / float64(n.disks)
	hidden := sec
	if hidden > n.overlapCredit {
		hidden = n.overlapCredit
	}
	n.overlapCredit -= hidden
	n.attr.Overlapped += hidden
	if exposed := sec - hidden; exposed > 0 {
		n.ChargeTime(vtime.Disk, exposed)
	} else {
		n.crashIfDue()
	}
}

// Disks returns the node's PDM D parameter.
func (n *Node) Disks() int { return n.disks }

// DiskAccess returns the node's disk access discipline.
func (n *Node) DiskAccess() pdm.AccessMode { return n.access }

// DiskIO returns one I/O snapshot per member disk (nil at D=1, where
// the node counter is the only drive).  The per-disk counts always sum
// exactly to the node counter: the disk layer bumps both on every
// transfer.
func (n *Node) DiskIO() []pdm.IOStats {
	if n.disks <= 1 {
		return nil
	}
	out := make([]pdm.IOStats, n.disks)
	for d := range n.diskCounters {
		out[d] = n.diskCounters[d].Snapshot()
	}
	return out
}

// DiskBusySec returns each member disk's busy seconds through the
// queue model (nil at D=1).
func (n *Node) DiskBusySec() []float64 {
	if n.disks <= 1 {
		return nil
	}
	out := make([]float64, n.disks)
	copy(out, n.diskBusy)
	return out
}

// IOSteps returns the number of parallel I/O steps issued and the
// blocks they carried; blocks/steps is the achieved step width in
// [1, D] — the queue-depth measure of how well the access pattern kept
// the member disks busy.  Zero at D=1.
func (n *Node) IOSteps() (steps, blocks int64) { return n.ioSteps, n.stepBlocks }

// SetIOPhase selects the PDM phase subsequent block transfers are
// attributed to, on the node counter and every per-disk counter (so
// per-phase per-disk counts keep summing to the per-phase node counts).
func (n *Node) SetIOPhase(p int) {
	n.counter.SetPhase(p)
	for d := range n.diskCounters {
		n.diskCounters[d].SetPhase(p)
	}
}

// closeStep ends the open parallel I/O step: the next block charge
// opens a fresh step at the then-current clock.
func (n *Node) closeStep() {
	if !n.stripeOpen {
		return
	}
	for i := range n.stripeUsed {
		n.stripeUsed[i] = false
	}
	n.stripeOpen = false
}

// chargeDiskBlock runs one block transfer on member disk d through the
// per-disk queues (D > 1 only).  Consecutive charges to distinct disks
// share a parallel I/O step: the step opens at the clock of its first
// block, every involved disk serves from max(its cursor, the step's
// issue time), and the node waits only for each block's completion —
// so within a step the later disks' transfers hide behind the first
// wait, and a full-width step of D blocks costs one blockSec.  Reusing
// a disk inside a step (and, under striped access, breaking round-robin
// order) closes it; the next charge then starts a new step at the
// current clock, which is exactly the old synchronous behaviour when
// every block lands on the same disk.
func (n *Node) chargeDiskBlock(d int) {
	if d < 0 || d >= n.disks {
		d = 0
	}
	if n.stripeOpen && (n.stripeUsed[d] ||
		(n.access == pdm.Striped && d != (n.prevDisk+1)%n.disks)) {
		n.closeStep()
	}
	if !n.stripeOpen {
		n.stripeOpen = true
		n.stripeIssue = n.clock
		n.ioSteps++
	}
	start := n.diskDone[d]
	if start < n.stripeIssue {
		start = n.stripeIssue
	}
	done := start + n.blockSec()
	n.diskDone[d] = done
	n.diskBusy[d] += n.blockSec()
	n.stripeUsed[d] = true
	n.prevDisk = d
	n.stepBlocks++
	if wait := done - n.clock; wait > 0 {
		n.ChargeTime(vtime.Disk, wait)
	} else {
		n.crashIfDue()
	}
}

// ChargeDiskIOBlocks implements vtime.DiskMeter: the disk layer names
// the member disk that physically serves each block of a striped file.
func (n *Node) ChargeDiskIOBlocks(disk int, blocks int64) {
	if n.disks == 1 {
		n.ChargeTime(vtime.Disk, float64(blocks)*n.blockSec())
		return
	}
	for i := int64(0); i < blocks; i++ {
		n.chargeDiskBlock(disk)
	}
}

// ChargeDiskSeek implements vtime.DiskMeter.  A seek closes the open
// parallel step — a repositioning is precisely a break in the streaming
// pattern the step models — and occupies its member disk for the full
// seek time.
func (n *Node) ChargeDiskSeek(disk int, seeks int64) {
	sec := float64(seeks) * n.cost.SeekSec * n.slowdown * n.contention()
	if n.disks == 1 {
		n.ChargeTime(vtime.Disk, sec)
		return
	}
	d := disk
	if d < 0 || d >= n.disks {
		d = 0
	}
	n.closeStep()
	start := n.diskDone[d]
	if start < n.clock {
		start = n.clock
	}
	done := start + sec
	n.diskDone[d] = done
	n.diskBusy[d] += sec
	if wait := done - n.clock; wait > 0 {
		n.ChargeTime(vtime.Disk, wait)
	} else {
		n.crashIfDue()
	}
}

// ChargeIOBlocks implements vtime.Meter for transfers with no placement
// information (plain un-striped files, checkpoint metadata, direct
// charges).  At D > 1 they are modeled as perfectly striped: blocks
// round-robin over the member disks continuing from the last disk
// touched, so a bulk charge of n blocks coalesces into ceil(n/D)
// parallel steps.
func (n *Node) ChargeIOBlocks(blocks int64) {
	if n.disks == 1 {
		n.ChargeTime(vtime.Disk, float64(blocks)*n.blockSec())
		return
	}
	for i := int64(0); i < blocks; i++ {
		n.chargeDiskBlock((n.prevDisk + 1) % n.disks)
	}
}

// ChargeSeek implements vtime.Meter (no placement: disk 0).
func (n *Node) ChargeSeek(seeks int64) {
	n.ChargeDiskSeek(0, seeks)
}

// ObserveMerge implements polyphase's merge-kernel observer: the loser
// tree reports its tree comparisons and block-copy fast-path hits here,
// and the node folds them into its metrics registry.
func (n *Node) ObserveMerge(keys, chunks, fastChunks, comparisons int64) {
	n.metrics.Counter("merge.keys").Add(keys)
	n.metrics.Counter("merge.chunks").Add(chunks)
	n.metrics.Counter("merge.fastpath.chunks").Add(fastChunks)
	n.metrics.Counter("merge.comparisons").Add(comparisons)
}

// ObserveOverlap implements diskio's overlap observer: each prefetching
// reader and write-behind writer reports its lifetime counters when it
// is released, and the node folds them into the metrics registry.  The
// write-behind queue high-water mark is kept as the worst over all
// writers (histogram + last gauge), mirroring the link-queue metrics.
func (n *Node) ObserveOverlap(prefetched, hits, stalls, writeBehind, queueHighWater int64) {
	n.metrics.Counter("disk.prefetch.blocks").Add(prefetched)
	n.metrics.Counter("disk.prefetch.hits").Add(hits)
	n.metrics.Counter("disk.prefetch.stalls").Add(stalls)
	n.metrics.Counter("disk.writebehind.blocks").Add(writeBehind)
	if writeBehind > 0 {
		n.metrics.Histogram("disk.writebehind.queue.hwm").Observe(float64(queueHighWater))
	}
}

// AcquireBuf returns a payload buffer of the given length from the
// cluster-wide pool (allocating when the pool is empty).  Fill it and
// hand it to SendOwned; the receiver returns it with ReleaseBuf.
func (n *Node) AcquireBuf(size int) []record.Key {
	if v := n.cluster.payloads.Get(); v != nil {
		if b := v.([]record.Key); cap(b) >= size {
			return b[:size]
		}
	}
	return make([]record.Key, size)
}

// ReleaseBuf returns a payload buffer to the pool.  Release a buffer at
// most once, and do not touch it afterwards.
func (n *Node) ReleaseBuf(buf []record.Key) {
	if cap(buf) == 0 {
		return
	}
	n.cluster.payloads.Put(buf[:0]) //nolint:staticcheck // slice header alloc is fine
}

// Send transfers keys to node `to` with the given tag.  The payload is
// copied, so the sender may reuse its buffer.  The sender's clock
// advances by the transmit occupancy (size/bandwidth); the message
// arrives at sender-completion + latency.  Sending to self is a cheap
// local enqueue with no network cost.
func (n *Node) Send(to, tag int, keys []record.Key) error {
	return n.send(to, tag, keys, true)
}

// SendOwned transfers keys without copying: ownership of the buffer
// (typically from AcquireBuf) passes to the receiver, which releases it
// via ReleaseBuf once consumed.  Self-sends are true zero-copy local
// enqueues.  Virtual-time cost is identical to Send — the copy it
// eliminates is real host work, not simulated work.
func (n *Node) SendOwned(to, tag int, keys []record.Key) error {
	return n.send(to, tag, keys, false)
}

func (n *Node) send(to, tag int, keys []record.Key, copyPayload bool) error {
	if to < 0 || to >= n.P() {
		return fmt.Errorf("cluster: node %d sending to invalid rank %d", n.id, to)
	}
	payload := keys
	if copyPayload {
		payload = append([]record.Key(nil), keys...)
	}
	var arrival float64
	remote := to != n.id
	if !remote {
		arrival = n.clock
	} else {
		// The sender pays the per-message software overhead (one
		// latency's worth of protocol processing, as in LogP's "o")
		// plus the transmit occupancy; the wire adds another latency
		// before arrival.  This is what makes tiny messages expensive
		// and reproduces the paper's 8-int vs 8K-int packet finding.
		// Under tenancy contention the shared link's effective
		// bandwidth (and per-message software processing) divides among
		// the running jobs, so occupancy stretches; the wire's
		// propagation delay does not.
		bytes := int64(len(keys)) * record.KeySize
		occupancy := n.cluster.net.LatencySec
		if n.cluster.net.BytesPerSec > 0 {
			occupancy += float64(bytes) / n.cluster.net.BytesPerSec
		}
		n.ChargeTime(vtime.Network, occupancy*n.contention())
		arrival = n.clock + n.cluster.net.LatencySec
	}
	ch := n.cluster.link(n.id, to)
	ls := n.cluster.linkAt(n.id, to)
	rn := n.cluster.nodes[to]
	// Count the message before it enters the channel so the receiver's
	// view of queued never undershoots; a failed enqueue backs the count
	// out.  Only this node sends on this link, so a 0→1 transition here
	// pairs with exactly one 1→0 transition at the receiver (or with the
	// back-out below).
	q := ls.queued.Add(1)
	if q == 1 {
		casMax(&rn.faninHWM, rn.fanin.Add(1))
	}
	select {
	case ch <- message{tag: tag, keys: payload, arrival: arrival, remote: remote}:
		casMax(&ls.hwm, q)
		n.mSentMsgs.Inc()
		n.mSentKeys.Add(int64(len(keys)))
		if n.mSentTo != nil {
			n.mSentTo[to].Add(int64(len(keys)))
		}
		depth := float64(len(ch))
		n.mQueueHist.Observe(depth)
		n.mQueueLast.Set(depth)
		if tl := n.cluster.trace; tl != nil {
			tl.Add(trace.Event{Node: n.id, Clock: n.clock, Kind: trace.MessageSent,
				Label: fmt.Sprintf("tag%d", tag), Detail: fmt.Sprintf("to:%d keys:%d", to, len(keys))})
		}
		return nil
	default:
		if ls.queued.Add(-1) == 0 && q == 1 {
			rn.fanin.Add(-1)
		}
		return fmt.Errorf("cluster: link %d->%d full (deadlock-prone receive order?)", n.id, to)
	}
}

// Recv receives the next message from node `from`, asserting its tag.
// It blocks until the message is available and advances the receiver's
// clock to at least the message's arrival time.  Receives are
// deterministic: callers name the peer, and per-link delivery is FIFO.
// The returned slice is the message payload itself (never a copy); if
// the sender used SendOwned with a pooled buffer, pass it to ReleaseBuf
// when done to recycle it.
func (n *Node) Recv(from, wantTag int) ([]record.Key, error) {
	if from < 0 || from >= n.P() {
		return nil, fmt.Errorf("cluster: node %d receiving from invalid rank %d", n.id, from)
	}
	ch := n.cluster.link(from, n.id)
	var msg message
	select {
	case msg = <-ch:
	default:
		// Slow path: block on the message or on a cluster abort (a
		// peer failed and will never send).
		select {
		case msg = <-ch:
		case <-n.cluster.abort:
			return nil, fmt.Errorf("cluster: node %d receive from %d aborted (peer failed)", n.id, from)
		}
	}
	if n.cluster.linkAt(from, n.id).queued.Add(-1) == 0 {
		n.fanin.Add(-1)
	}
	if msg.tag != wantTag {
		return nil, fmt.Errorf("cluster: node %d expected tag %d from %d, got %d",
			n.id, wantTag, from, msg.tag)
	}
	if msg.arrival > n.clock {
		// The gap until the message arrives is time spent blocked on
		// the peer: idle-wait, not network occupancy.
		n.ChargeTime(vtime.Idle, msg.arrival-n.clock)
	}
	if msg.remote {
		// Receive-side protocol processing (shared with co-tenants).
		n.ChargeTime(vtime.Network, n.cluster.net.LatencySec*n.contention())
	}
	n.mRecvMsgs.Inc()
	n.mRecvKeys.Add(int64(len(msg.keys)))
	if tl := n.cluster.trace; tl != nil {
		tl.Add(trace.Event{Node: n.id, Clock: n.clock, Kind: trace.MessageReceived,
			Label: fmt.Sprintf("tag%d", wantTag), Detail: fmt.Sprintf("from:%d keys:%d", from, len(msg.keys))})
	}
	return msg.keys, nil
}

// TracePhase records a phase-begin event (no-op without a trace log)
// and returns a function recording the matching phase-end.
func (n *Node) TracePhase(label string) func() {
	tl := n.cluster.trace
	if tl == nil {
		return func() {}
	}
	tl.Add(trace.Event{Node: n.id, Clock: n.clock, Kind: trace.PhaseBegin, Label: label})
	return func() {
		tl.Add(trace.Event{Node: n.id, Clock: n.clock, Kind: trace.PhaseEnd, Label: label})
	}
}

// TraceMark records a free-form annotation (no-op without a trace log).
func (n *Node) TraceMark(label, detail string) {
	n.TraceEvent(trace.Mark, label, detail)
}

// TraceEvent records an event of an arbitrary kind at the node's current
// clock (no-op without a trace log).  The checkpoint subsystem uses it
// for commit and recovery events.
func (n *Node) TraceEvent(k trace.Kind, label, detail string) {
	if tl := n.cluster.trace; tl != nil {
		tl.Add(trace.Event{Node: n.id, Clock: n.clock, Kind: k, Label: label, Detail: detail})
	}
}

package extsort

import (
	"fmt"
	"math/rand"
	"testing"

	"hetsort/internal/cluster"
	"hetsort/internal/diskio"
	"hetsort/internal/perf"
	"hetsort/internal/record"
	"hetsort/internal/trace"
)

func diskioReadAll(c *cluster.Cluster, node, block int) ([]record.Key, error) {
	return diskio.ReadFileAll(c.Node(node).FS(), "output", block, diskio.Accounting{})
}

// runOnce sorts a fresh cluster with cfg and returns the per-node
// outputs and the total accounted block I/O.
func runOnce(t *testing.T, v perf.Vector, cfg Config, dist record.Distribution,
	n int64, seed int64) ([][]record.Key, int64) {
	t.Helper()
	c := newCluster(t, v)
	sum, err := DistributeInput(c, v, dist, n, seed, cfg.BlockKeys, "input")
	if err != nil {
		t.Fatal(err)
	}
	cfg.InputSum = sum
	if _, err := Sort(c, cfg, "input", "output"); err != nil {
		t.Fatal(err)
	}
	if err := VerifyOutput(c, "output", cfg.BlockKeys, sum); err != nil {
		t.Fatal(err)
	}
	outs := make([][]record.Key, c.P())
	for i := 0; i < c.P(); i++ {
		part, err := diskioReadAll(c, i, cfg.BlockKeys)
		if err != nil {
			t.Fatal(err)
		}
		outs[i] = part
	}
	return outs, totalIO(c)
}

// TestPipelineMatchesBarrierProperty is the acceptance property of the
// fused steps 4+5: for random perf vectors, pivot strategies, message
// sizes and distributions, the pipelined run's per-node output files are
// byte-identical to the barrier run's, and — whenever the fan-in fits in
// memory so the pipeline actually engages — the pipelined run performs
// strictly fewer total block I/Os.
func TestPipelineMatchesBarrierProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	vectors := []perf.Vector{{1, 1}, {1, 1, 4, 4}, {1, 2, 4}, {1, 1, 1, 1}, {1, 3}}
	strategies := []Strategy{RegularSampling, Overpartitioning, RandomPivots, QuantileSketch}
	messageSizes := []int{64, 256, 1024, 8192}
	dists := []record.Distribution{record.Uniform, record.Zipf, record.Gaussian}

	for trial := 0; trial < 10; trial++ {
		v := vectors[trial%len(vectors)]
		strat := strategies[trial%len(strategies)]
		msg := messageSizes[rng.Intn(len(messageSizes))]
		dist := dists[rng.Intn(len(dists))]
		n := v.NearestValidSize(int64(1) << (12 + rng.Intn(3)))
		seed := rng.Int63()

		cfg := testConfig(v)
		cfg.MemoryKeys = 8192 // enough for most fan-ins; 8192-key messages still overflow
		cfg.Strategy = strat
		cfg.MessageKeys = msg

		name := fmt.Sprintf("p%d_strat%d_msg%d_%v", len(v), strat, msg, dist)
		t.Run(name, func(t *testing.T) {
			barrier, barrierIO := runOnce(t, v, cfg, dist, n, seed)
			pcfg := cfg
			pcfg.Pipeline = true
			piped, pipedIO := runOnce(t, v, pcfg, dist, n, seed)

			for i := range barrier {
				if len(barrier[i]) != len(piped[i]) {
					t.Fatalf("node %d: %d keys pipelined vs %d barrier", i, len(piped[i]), len(barrier[i]))
				}
				for j := range barrier[i] {
					if barrier[i][j] != piped[i][j] {
						t.Fatalf("node %d key %d: pipelined %d != barrier %d", i, j, piped[i][j], barrier[i][j])
					}
				}
			}
			if cfg.pipelineFits(len(v)) {
				if pipedIO >= barrierIO {
					t.Errorf("pipelined I/O %d not strictly below barrier %d", pipedIO, barrierIO)
				}
			} else if pipedIO != barrierIO {
				t.Errorf("fallback path I/O %d differs from barrier %d", pipedIO, barrierIO)
			}
		})
	}
}

// TestPipelineFallbackTraced: an oversized fan-in must fall back to the
// barrier path and say so in the trace.
func TestPipelineFallbackTraced(t *testing.T) {
	v := perf.Vector{1, 1, 4, 4}
	tl := new(trace.Log)
	c, err := cluster.New(cluster.Config{Slowdowns: v.Slowdowns(), BlockKeys: 64, Trace: tl})
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig(v) // MemoryKeys 1024 < 4*(256+64)+64: cannot pipeline
	cfg.Pipeline = true
	sum, err := DistributeInput(c, v, record.Uniform, v.NearestValidSize(1<<12), 3, cfg.BlockKeys, "input")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Sort(c, cfg, "input", "output"); err != nil {
		t.Fatal(err)
	}
	if err := VerifyOutput(c, "output", cfg.BlockKeys, sum); err != nil {
		t.Fatal(err)
	}
	var fallbacks, fused int
	for _, e := range tl.Events() {
		if e.Kind == trace.Pipeline {
			switch e.Label {
			case "fallback":
				fallbacks++
			case "fused", "spill":
				fused++
			}
		}
	}
	if fallbacks == 0 {
		t.Error("no Pipeline fallback events traced for an oversized fan-in")
	}
	if fused != 0 {
		t.Errorf("%d nodes fused despite the memory bound", fused)
	}
}

// TestPipelineCheckpointCrashResume is the crash property of the
// spill-while-merging fallback: with Pipeline and Checkpoint both on,
// kill a node at every phase boundary (before and after each commit)
// and the resumed run must produce output byte-identical to an
// uninterrupted *barrier* checkpointed run — the strongest form of the
// byte-identity claim, since recovery replays mix pipelined and barrier
// merges over the spilled receive files.
func TestPipelineCheckpointCrashResume(t *testing.T) {
	v := perf.Vector{1, 1, 4, 4}
	n := v.NearestValidSize(1 << 14)
	base := testConfig(v)
	base.MemoryKeys = 8192 // let the pipeline engage (spill mode under Checkpoint)
	base.Checkpoint = true
	const seed = 42

	// Reference: an uninterrupted checkpointed *barrier* run.
	want, _ := runOnce(t, v, base, record.Uniform, n, seed)

	var points []string
	for _, s := range StepNames {
		points = append(points, s)
		points = append(points, "committed:"+s)
	}
	points = append(points, "committed:start")

	for pi, point := range points {
		point := point
		crashNode := pi % len(v)
		t.Run(point, func(t *testing.T) {
			c := newCluster(t, v)
			sum, err := DistributeInput(c, v, record.Uniform, n, seed, base.BlockKeys, "input")
			if err != nil {
				t.Fatal(err)
			}
			cfg := base
			cfg.Pipeline = true
			cfg.InputSum = sum
			if err := c.ScheduleCrash(crashNode, -1, point); err != nil {
				t.Fatal(err)
			}
			if _, err := Sort(c, cfg, "input", "output"); !cluster.IsCrash(err) {
				t.Fatalf("crash at %q did not surface: %v", point, err)
			}
			// Resume alternates the mode to prove Pipeline is a pure
			// execution strategy: even-numbered points resume pipelined,
			// odd ones resume through the barrier path.
			rcfg := cfg
			rcfg.Pipeline = pi%2 == 0
			if _, got, err := Resume(c, rcfg, "input", "output"); err != nil {
				t.Fatalf("resume after crash at %q: %v", point, err)
			} else if !got.Equal(sum) {
				t.Error("manifest input checksum differs from the distributed input's")
			}
			if err := VerifyOutput(c, "output", cfg.BlockKeys, sum); err != nil {
				t.Fatalf("resumed output: %v", err)
			}
			for i := 0; i < c.P(); i++ {
				part, err := diskioReadAll(c, i, cfg.BlockKeys)
				if err != nil {
					t.Fatal(err)
				}
				if len(part) != len(want[i]) {
					t.Fatalf("node %d: resumed %d keys, reference %d", i, len(part), len(want[i]))
				}
				for j := range part {
					if part[j] != want[i][j] {
						t.Fatalf("node %d key %d: resumed %d != reference %d", i, j, part[j], want[i][j])
					}
				}
			}
		})
	}
}

package record

import (
	"fmt"
	"math"
	"math/rand"
)

// Distribution identifies one of the eight benchmark inputs ("benchmark
// 0" in the paper's tables is the uniform-random one; the suite has
// eight).
type Distribution int

const (
	// Uniform draws keys uniformly at random over the full 32-bit
	// range.  This is "benchmark 0", the input of Tables 2 and 3.
	Uniform Distribution = iota
	// Gaussian sums four uniform draws, concentrating mass around the
	// middle of the key range.
	Gaussian
	// Zipf draws from a heavily skewed distribution producing many
	// duplicates of small keys (tests the duplicate-handling claims of
	// paper section 3.1).
	Zipf
	// Sorted is already non-decreasing (best case for sampling, worst
	// case for naive pivot choice).
	Sorted
	// Reverse is strictly decreasing.
	Reverse
	// NearlySorted is sorted with 1% of positions randomly perturbed.
	NearlySorted
	// Bucket concentrates each p-th of the input into its own value
	// range (the "bucket sorted" input of Blelloch et al.).
	Bucket
	// Staggered is the staggered distribution of Li & Sevcik: block i
	// holds values that interleave adversarially for naive splitters.
	Staggered
	// HeavyDup draws from only a handful of distinct values, so almost
	// every key is a duplicate and rank intervals around the pivots
	// cannot shrink (the histogram refiner's plateau case).
	HeavyDup
	// ZipfS2 is Zipf with exponent s=2: far heavier skew than Zipf,
	// a majority of the input collapses onto the smallest key.
	ZipfS2
	// Staircase concentrates the input on p narrow plateaus separated
	// by wide empty gaps, so interpolation between histogram bounds
	// repeatedly lands in empty space.
	Staircase
	// SamplerKiller hides half the mass in narrow spikes placed just
	// after the positions a regular sampler probes, so regular samples
	// systematically miss it while rank histograms cannot.
	SamplerKiller

	// NumDistributions is the size of the benchmark suite: the paper's
	// eight plus the four adversarial pivot-stress inputs.
	NumDistributions = 12
	// NumPaperDistributions is the size of the paper's original suite
	// (Uniform through Staggered).
	NumPaperDistributions = 8
)

// Distributions lists the whole suite in benchmark order.
func Distributions() []Distribution {
	ds := make([]Distribution, NumDistributions)
	for i := range ds {
		ds[i] = Distribution(i)
	}
	return ds
}

// PaperDistributions lists the paper's original eight-benchmark suite,
// excluding the adversarial pivot-stress inputs; the section-3
// invariance claim (experiment E10) is stated over these.
func PaperDistributions() []Distribution {
	return Distributions()[:NumPaperDistributions]
}

func (d Distribution) String() string {
	switch d {
	case Uniform:
		return "uniform"
	case Gaussian:
		return "gaussian"
	case Zipf:
		return "zipf"
	case Sorted:
		return "sorted"
	case Reverse:
		return "reverse"
	case NearlySorted:
		return "nearly-sorted"
	case Bucket:
		return "bucket"
	case Staggered:
		return "staggered"
	case HeavyDup:
		return "heavy-dup"
	case ZipfS2:
		return "zipf-s2"
	case Staircase:
		return "staircase"
	case SamplerKiller:
		return "sampler-killer"
	default:
		return fmt.Sprintf("distribution(%d)", int(d))
	}
}

// ParseDistribution maps a name (as produced by String) back to a
// Distribution.
func ParseDistribution(name string) (Distribution, error) {
	for _, d := range Distributions() {
		if d.String() == name {
			return d, nil
		}
	}
	return 0, fmt.Errorf("record: unknown distribution %q", name)
}

// Generate produces n keys of distribution d using the given seed.  The
// parts parameter is the number of cluster nodes the input will be
// partitioned over; it shapes Bucket and Staggered (which are defined
// relative to the processor count) and is ignored by the others.  parts
// must be >= 1.
func (d Distribution) Generate(n int, seed int64, parts int) []Key {
	if n < 0 {
		panic("record: negative input size")
	}
	if parts < 1 {
		parts = 1
	}
	r := rng(seed)
	out := make([]Key, n)
	switch d {
	case Uniform:
		for i := range out {
			out[i] = Key(r.Uint32())
		}
	case Gaussian:
		for i := range out {
			s := uint64(r.Uint32()) + uint64(r.Uint32()) + uint64(r.Uint32()) + uint64(r.Uint32())
			out[i] = Key(s / 4)
		}
	case Zipf:
		// Discrete zipf over 2^16 distinct values, s=1.2, scaled to
		// spread over the key range so ordering is still meaningful.
		z := rand.NewZipf(r, 1.2, 1, 1<<16-1)
		for i := range out {
			out[i] = Key(z.Uint64() << 12)
		}
	case Sorted:
		step := math.MaxUint32 / float64(max(n, 1))
		for i := range out {
			out[i] = Key(float64(i) * step)
		}
	case Reverse:
		step := math.MaxUint32 / float64(max(n, 1))
		for i := range out {
			out[i] = Key(float64(n-1-i) * step)
		}
	case NearlySorted:
		step := math.MaxUint32 / float64(max(n, 1))
		for i := range out {
			out[i] = Key(float64(i) * step)
		}
		swaps := n / 100
		for s := 0; s < swaps; s++ {
			i, j := r.Intn(n), r.Intn(n)
			out[i], out[j] = out[j], out[i]
		}
	case Bucket:
		// parts ranges; element i belongs to range i*parts/n.
		width := uint64(math.MaxUint32) / uint64(parts)
		for i := range out {
			b := uint64(i * parts / max(n, 1))
			out[i] = Key(b*width + uint64(r.Uint32())%max64(width, 1))
		}
	case Staggered:
		// Li & Sevcik staggered: block i gets values from range
		// (2i+1) mod parts — adjacent blocks hold distant ranges.
		width := uint64(math.MaxUint32) / uint64(parts)
		blockLen := max(n/parts, 1)
		for i := range out {
			blk := i / blockLen
			if blk >= parts {
				blk = parts - 1
			}
			rangeIdx := uint64((2*blk + 1) % parts)
			out[i] = Key(rangeIdx*width + uint64(r.Uint32())%max64(width, 1))
		}
	case HeavyDup:
		// Five distinct values spread over the range: ~n/5 copies
		// each, so no pivot interval between two of them can shrink.
		const distinct = 5
		step := uint64(math.MaxUint32) / distinct
		for i := range out {
			out[i] = Key(uint64(r.Intn(distinct)) * step)
		}
	case ZipfS2:
		// Exponent 2 instead of 1.2: the mode alone holds a majority
		// of the keys.
		z := rand.NewZipf(r, 2.0, 1, 1<<16-1)
		for i := range out {
			out[i] = Key(z.Uint64() << 12)
		}
	case Staircase:
		// parts narrow plateaus separated by wide empty gaps; an
		// interpolating splitter search keeps landing in the gaps.
		pp := max(parts, 2)
		width := uint64(math.MaxUint32) / uint64(pp)
		band := max64(width/4096, 1)
		for i := range out {
			b := uint64(r.Intn(pp))
			out[i] = Key(b*width + width/2 + uint64(r.Uint32())%band)
		}
	case SamplerKiller:
		// Half the keys repeat parts "magnet" values that regular
		// samples of the sorted portions cluster on; the other half
		// hides in a hair-thin spike just above each magnet, so
		// position-based samplers undercount it while value-domain
		// rank histograms see it exactly.
		pp := max(parts, 2)
		width := uint64(math.MaxUint32) / uint64(pp)
		spike := max64(width/1024, 1)
		for i := range out {
			b := uint64(r.Intn(pp))
			if i%2 == 0 {
				out[i] = Key(b * width)
			} else {
				out[i] = Key(b*width + 1 + uint64(r.Uint32())%spike)
			}
		}
	default:
		panic(fmt.Sprintf("record: unknown distribution %d", int(d)))
	}
	return out
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func max64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

// Mixedgeneration models the paper's other customer: "those who cannot
// replace instantaneously whole the components of its cluster with a
// new processor or disk generation but shall compose with old and new
// processors".  It uses the paper's worked Equation-2 example,
// perf = {8,5,3,1}: one node 8x the slowest, one 5x, one 3x, one
// baseline — four hardware generations in one cluster.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"hetsort"
)

func main() {
	perf := []int{8, 5, 3, 1}

	// Equation 2: the smallest valid size for k=1 is
	// lcm(8,5,3,1)=120 times the vector sum 17 -> 2040, the paper's
	// example.  Scale it up to a real workload.
	small, err := hetsort.ValidSize(perf, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("perf %v: smallest Equation-2 input is %d keys (paper's example: 2040)\n", perf, small)

	n, err := hetsort.ValidSize(perf, 2_000_000)
	if err != nil {
		log.Fatal(err)
	}
	r := rand.New(rand.NewSource(3))
	keys := make([]hetsort.Key, n)
	for i := range keys {
		keys[i] = r.Uint32()
	}

	_, rep, err := hetsort.Sort(keys, hetsort.Config{
		Perf:       perf,
		MemoryKeys: 1 << 15,
		BlockKeys:  1024,
		Tapes:      10,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sorted %d keys in %.2f virtual s\n", n, rep.Time)
	fmt.Printf("final partitions:    %v\n", rep.PartitionSizes)
	optimal := make([]int64, len(perf))
	var sum int64
	for _, p := range perf {
		sum += int64(p)
	}
	for i, p := range perf {
		optimal[i] = n * int64(p) / sum
	}
	fmt.Printf("optimal shares:      %v\n", optimal)
	fmt.Printf("sublist expansion:   %.4f (1.0 = perfect balance; PSRS guarantees <= 2)\n",
		rep.SublistExpansion)
}

package cluster

import (
	"math"
	"testing"

	"hetsort/internal/record"
	"hetsort/internal/vtime"
)

// TestContentionStretchesDiskAndNetwork pins the tenancy model: a fixed
// factor k multiplies block transfer time, seek time, send occupancy
// and receive-side processing — but not compute, not the wire's
// propagation delay, and never the data.
func TestContentionStretchesDiskAndNetwork(t *testing.T) {
	run := func(factor func() float64) (clock float64, attr vtime.Breakdown, payload []record.Key) {
		c, err := New(Config{Slowdowns: []float64{1, 1}, Contention: factor})
		if err != nil {
			t.Fatal(err)
		}
		err = c.Run(func(n *Node) error {
			if n.ID() == 0 {
				n.ChargeIOBlocks(10)
				n.ChargeSeek(4)
				n.ChargeCompute(1000)
				return n.Send(1, 7, []record.Key{3, 1, 2})
			}
			var rerr error
			payload, rerr = n.Recv(0, 7)
			return rerr
		})
		if err != nil {
			t.Fatal(err)
		}
		return c.Node(0).Clock(), c.Node(0).Attribution(), payload
	}

	base, battr, bkeys := run(nil)
	cont, cattr, ckeys := run(func() float64 { return 3 })

	// Disk: blocks and seeks stretch exactly 3×.
	if got, want := cattr.Disk, 3*battr.Disk; math.Abs(got-want) > 1e-12 {
		t.Fatalf("contended disk %.9f, want %.9f", got, want)
	}
	// Network occupancy on the sender stretches 3×.
	if got, want := cattr.Network, 3*battr.Network; math.Abs(got-want) > 1e-12 {
		t.Fatalf("contended network %.9f, want %.9f", got, want)
	}
	// Compute is the tenant's own CPU: untouched.
	if cattr.Compute != battr.Compute {
		t.Fatalf("contended compute %.9f != %.9f", cattr.Compute, battr.Compute)
	}
	if cont <= base {
		t.Fatalf("contended clock %.9f not above dedicated %.9f", cont, base)
	}
	// Attribution still sums to the clock under contention.
	if err := vtime.CheckAttribution(cont, cattr); err != nil {
		t.Fatal(err)
	}
	// Data is untouched at any factor.
	if len(bkeys) != 3 || len(ckeys) != 3 || bkeys[0] != ckeys[0] || bkeys[2] != ckeys[2] {
		t.Fatalf("payloads differ: %v vs %v", bkeys, ckeys)
	}
}

// TestContentionDegenerateFactors: factors below 1, NaN and +Inf are
// clamped to 1 (a misbehaving hook must not corrupt the clock).
func TestContentionDegenerateFactors(t *testing.T) {
	charge := func(factor func() float64) float64 {
		c, err := New(Config{Slowdowns: []float64{1}, Contention: factor})
		if err != nil {
			t.Fatal(err)
		}
		if err := c.Run(func(n *Node) error {
			n.ChargeIOBlocks(5)
			n.ChargeSeek(2)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		return c.Node(0).Clock()
	}
	base := charge(nil)
	for name, f := range map[string]func() float64{
		"half": func() float64 { return 0.5 },
		"zero": func() float64 { return 0 },
		"neg":  func() float64 { return -2 },
		"nan":  func() float64 { return math.NaN() },
		"inf":  func() float64 { return math.Inf(1) },
	} {
		if got := charge(f); got != base {
			t.Errorf("%s factor: clock %.9f, want dedicated %.9f", name, got, base)
		}
	}
}

// TestInterruptAbortsRun: an external Interrupt unblocks a node stuck
// in a receive, and the cluster is reusable afterwards.
func TestInterruptAbortsRun(t *testing.T) {
	c, err := New(Config{Slowdowns: []float64{1, 1}})
	if err != nil {
		t.Fatal(err)
	}
	started := make(chan struct{})
	errc := make(chan error, 1)
	go func() {
		errc <- c.Run(func(n *Node) error {
			if n.ID() == 0 {
				close(started)
				_, rerr := n.Recv(1, 1) // node 1 never sends
				return rerr
			}
			<-started
			return nil
		})
	}()
	<-started
	c.Interrupt()
	if err := <-errc; err == nil {
		t.Fatal("interrupted run returned nil")
	}
	// Interrupt with no active run is a no-op...
	var idle Cluster
	idle.Interrupt()
	// ...and the cluster still runs fine after an interrupt.
	c.ClearCrashes()
	if err := c.Run(func(n *Node) error { return nil }); err != nil {
		t.Fatal(err)
	}
}

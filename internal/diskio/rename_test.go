package diskio

import (
	"errors"
	"os"
	"testing"

	"hetsort/internal/record"
)

func TestRenameBothBackends(t *testing.T) {
	for name, mk := range fsFactories(t) {
		t.Run(name, func(t *testing.T) {
			fs := mk()
			keys := []record.Key{9, 8, 7}
			if err := WriteFile(fs, "old", keys, 4, Accounting{}); err != nil {
				t.Fatal(err)
			}
			if err := fs.Rename("old", "new"); err != nil {
				t.Fatal(err)
			}
			if _, err := fs.Open("old"); err == nil {
				t.Fatal("old name still opens")
			}
			got, err := ReadFileAll(fs, "new", 4, Accounting{})
			if err != nil || len(got) != 3 || got[0] != 9 {
				t.Fatalf("renamed content: %v %v", got, err)
			}
		})
	}
}

func TestRenameReplacesTarget(t *testing.T) {
	for name, mk := range fsFactories(t) {
		t.Run(name, func(t *testing.T) {
			fs := mk()
			WriteFile(fs, "a", []record.Key{1}, 4, Accounting{})
			WriteFile(fs, "b", []record.Key{2, 2}, 4, Accounting{})
			if err := fs.Rename("a", "b"); err != nil {
				t.Fatal(err)
			}
			got, _ := ReadFileAll(fs, "b", 4, Accounting{})
			if len(got) != 1 || got[0] != 1 {
				t.Fatalf("target not replaced: %v", got)
			}
		})
	}
}

func TestRenameMissingSource(t *testing.T) {
	fs := NewMemFS()
	if err := fs.Rename("ghost", "x"); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("want ErrNotExist, got %v", err)
	}
	d, err := NewDirFS(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Rename("ghost", "x"); err == nil {
		t.Fatal("DirFS rename of missing source accepted")
	}
}

func TestRenameChargesNoIO(t *testing.T) {
	// Rename must be a metadata operation: the tests in polyphase rely
	// on it not inflating the PDM I/O counts.
	fs := NewMemFS()
	WriteFile(fs, "a", make([]record.Key, 100), 8, Accounting{})
	if err := fs.Rename("a", "b"); err != nil {
		t.Fatal(err)
	}
	// Nothing to assert on a Counter because Rename takes none — the
	// signature itself guarantees it.  Assert content integrity.
	n, err := CountKeys(fs, "b")
	if err != nil || n != 100 {
		t.Fatalf("CountKeys=%d,%v", n, err)
	}
}

func TestFaultFSRenameBudget(t *testing.T) {
	ffs := NewFaultFS(NewMemFS(), 0)
	if err := ffs.Rename("a", "b"); !errors.Is(err, ErrInjected) {
		t.Fatalf("want ErrInjected, got %v", err)
	}
}

func TestDirFSRenameIntoSubdir(t *testing.T) {
	d, err := NewDirFS(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteFile(d, "f", []record.Key{5}, 4, Accounting{}); err != nil {
		t.Fatal(err)
	}
	if err := d.Rename("f", "sub/dir/f"); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFileAll(d, "sub/dir/f", 4, Accounting{})
	if err != nil || len(got) != 1 {
		t.Fatalf("%v %v", got, err)
	}
}

func TestDirFSRenameRejectsEscape(t *testing.T) {
	d, err := NewDirFS(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	WriteFile(d, "f", []record.Key{5}, 4, Accounting{})
	if err := d.Rename("f", "../escape"); err == nil {
		t.Fatal("escaping rename accepted")
	}
	if err := d.Rename("../escape", "f"); err == nil {
		t.Fatal("escaping source accepted")
	}
}

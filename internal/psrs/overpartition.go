package psrs

import (
	"hetsort/internal/cluster"
	"hetsort/internal/record"
	"hetsort/internal/sampling"
)

// sortOver is the Li & Sevcik overpartitioning scheme on the cluster:
// no initial sort is needed for pivot selection — k*p-1 random samples
// define k*p sublists, which are assigned to processors in consecutive
// blocks proportional to the perf vector.  Each node still sorts its
// own portion locally (once) before partitioning, mirroring the
// one-sequential-sort structure of the original algorithm.
func sortOver(n *cluster.Node, cfg Config, portion []record.Key) ([]record.Key, error) {
	p, id := n.P(), n.ID()
	local := localSort(n, portion)

	// Random candidates, perf-proportional counts per node so the
	// sample represents the data layout.
	count := cfg.OverFactor * p * cfg.Perf[id]
	if count > len(local) {
		count = len(local)
	}
	idxs := sampling.RandomSampleIndices(int64(len(local)), count, cfg.Seed+int64(id))
	samples := make([]record.Key, len(idxs))
	for i, ix := range idxs {
		samples[i] = local[ix]
	}
	gathered, err := n.Gather(0, tagSamples, samples)
	if err != nil {
		return nil, err
	}

	// Node 0 picks k*p-1 pivots and broadcasts them.
	var pivots []record.Key
	if id == 0 {
		var cands []record.Key
		for _, g := range gathered {
			cands = append(cands, g...)
		}
		n.ChargeCompute(nLogN(int64(len(cands))))
		pivots, err = sampling.OverpartitionPivots(cands, p, cfg.OverFactor)
		if err != nil {
			return nil, err
		}
	}
	pivots, err = n.Bcast(0, tagPivots, pivots)
	if err != nil {
		return nil, err
	}

	// Every node cuts its portion into k*p sublists and shares the
	// sizes so all nodes agree on the sublist->processor assignment.
	cuts := sampling.Boundaries(local, pivots)
	sizes := sampling.SegmentSizes(cuts, len(local))
	sizeKeys := make([]record.Key, len(sizes))
	for i, s := range sizes {
		sizeKeys[i] = record.Key(s)
	}
	allSizes, err := n.AllGather(tagOver, sizeKeys)
	if err != nil {
		return nil, err
	}
	global := make([]int64, len(sizes))
	for i := range allSizes {
		global[i%len(sizes)] += int64(allSizes[i])
	}
	assign, err := sampling.AssignSublists(global, cfg.Perf)
	if err != nil {
		return nil, err
	}
	// owner[s] = processor receiving sublist s.
	owner := make([]int, len(sizes))
	for proc, list := range assign {
		for _, s := range list {
			owner[s] = proc
		}
	}

	// Exchange: this node's sublist s goes to owner[s].  Group the
	// consecutive sublists per owner into one message.
	procCuts := make([]int, p-1)
	prev := 0
	seg := 0
	for proc := 0; proc < p-1; proc++ {
		for seg < len(sizes) && owner[seg] == proc {
			prev += int(sizes[seg])
			seg++
		}
		procCuts[proc] = prev
	}
	return exchangeAndMerge(n, local, procCuts)
}

package hetsort_test

import (
	"fmt"

	"hetsort"
)

// ExampleSort sorts a small reversed sequence on a 2-node cluster.
func ExampleSort() {
	keys := []hetsort.Key{9, 8, 7, 6, 5, 4, 3, 2, 1, 0}
	sorted, _, err := hetsort.Sort(keys, hetsort.Config{
		Nodes: 2, MemoryKeys: 64, BlockKeys: 4, Tapes: 3, MessageKeys: 8,
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println(sorted)
	// Output: [0 1 2 3 4 5 6 7 8 9]
}

// ExampleValidSize rounds a desired input size up to the nearest size
// the perf vector divides exactly — the paper's Equation-2 practice.
func ExampleValidSize() {
	n, _ := hetsort.ValidSize([]int{1, 1, 4, 4}, 1<<24)
	fmt.Println(n)
	// Output: 16777220
}

// ExampleParsePerf parses the CLI form of a perf vector.
func ExampleParsePerf() {
	v, _ := hetsort.ParsePerf("1,1,4,4")
	fmt.Println(v)
	// Output: [1 1 4 4]
}

// ExampleCalibrate recovers the perf vector of a cluster with two
// nodes loaded 4x.
func ExampleCalibrate() {
	vec, _, err := hetsort.Calibrate(hetsort.Config{
		Nodes:      4,
		Loads:      []float64{4, 4, 1, 1},
		MemoryKeys: 2048,
		BlockKeys:  64,
		Tapes:      4,
	}, 8192)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println(vec)
	// Output: [1 1 4 4]
}

// Benchmarks regenerating the paper's evaluation.  Each benchmark runs
// one experiment end to end per iteration at a reduced input scale
// (SizeShift 8 = 1/256 of the paper's sizes) and reports the measured
// *virtual* time as "vsec" custom metrics next to the usual wall-clock
// ns/op.  cmd/benchtab prints the same experiments as paper-style
// tables, including at full scale with -shift 0.
package hetsort

import (
	"fmt"
	"testing"

	"hetsort/internal/cluster"
	"hetsort/internal/dewitt"
	"hetsort/internal/diskio"
	"hetsort/internal/experiments"
	"hetsort/internal/extsort"
	"hetsort/internal/perf"
	"hetsort/internal/polyphase"
	"hetsort/internal/psrs"
	"hetsort/internal/record"
	"hetsort/internal/sampling"
)

func benchOptions() experiments.Options {
	return experiments.Options{SizeShift: 8, Trials: 1, Tapes: 6}
}

// BenchmarkTable1Config regenerates Table 1 (E1): the simulated testbed
// description.
func BenchmarkTable1Config(b *testing.B) {
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		rows := experiments.Table1(o)
		if len(rows) != 4 {
			b.Fatal("bad table 1")
		}
	}
}

// BenchmarkTable2Sequential regenerates Table 2 (E2): the sequential
// external sort on both node classes across the five paper sizes.
func BenchmarkTable2Sequential(b *testing.B) {
	o := benchOptions()
	var vsec float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table2(o)
		if err != nil {
			b.Fatal(err)
		}
		vsec = rows[len(rows)-1].Time.Mean
	}
	b.ReportMetric(vsec, "vsec-largest-loaded")
}

// BenchmarkCalibration regenerates E3: the perf-vector calibration
// protocol, which must recover {1,1,4,4}.
func BenchmarkCalibration(b *testing.B) {
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		cal, err := experiments.Calibrate(o)
		if err != nil {
			b.Fatal(err)
		}
		for j, want := range experiments.PaperVector {
			if cal.Vector[j] != want {
				b.Fatalf("calibrated %v", cal.Vector)
			}
		}
	}
}

// BenchmarkPacketSize regenerates E4: the packet-size sweep, one
// sub-benchmark per message size (paper: 133.61 s at 8 ints vs 32.6 s
// at 8K ints for 2^21 keys).
func BenchmarkPacketSize(b *testing.B) {
	o := benchOptions()
	for _, msg := range experiments.PacketSizes {
		b.Run(fmt.Sprintf("msg=%d", msg), func(b *testing.B) {
			o := o
			o.MessageKeys = msg >> o.SizeShift
			if o.MessageKeys < 1 {
				o.MessageKeys = 1
			}
			var vsec float64
			for i := 0; i < b.N; i++ {
				v := perf.Homogeneous(4)
				c, err := cluster.New(cluster.Config{
					Slowdowns: experiments.PaperVector.Slowdowns(),
					BlockKeys: 64,
				})
				if err != nil {
					b.Fatal(err)
				}
				cfg := extsort.Config{Perf: v, BlockKeys: 64, MemoryKeys: 4096,
					Tapes: 6, MessageKeys: o.MessageKeys}
				n := int64(1<<21) >> o.SizeShift
				sum, err := extsort.DistributeInput(c, v, record.Uniform, n, int64(i), 64, "in")
				if err != nil {
					b.Fatal(err)
				}
				res, err := extsort.Sort(c, cfg, "in", "out")
				if err != nil {
					b.Fatal(err)
				}
				if err := extsort.VerifyOutput(c, "out", 64, sum); err != nil {
					b.Fatal(err)
				}
				vsec = res.Time
			}
			b.ReportMetric(vsec, "vsec")
		})
	}
}

// table3Bench runs one Table-3 row (E5/E6/E7) per iteration.
func table3Bench(b *testing.B, v perf.Vector, net cluster.NetModel) {
	o := benchOptions()
	var vsec, smax float64
	for i := 0; i < b.N; i++ {
		c, err := cluster.New(cluster.Config{
			Slowdowns: experiments.PaperVector.Slowdowns(),
			Net:       net,
			BlockKeys: 64,
		})
		if err != nil {
			b.Fatal(err)
		}
		n := v.NearestValidSize(int64(1<<24) >> o.SizeShift)
		cfg := extsort.Config{Perf: v, BlockKeys: 64, MemoryKeys: 4096, Tapes: 6, MessageKeys: 512}
		sum, err := extsort.DistributeInput(c, v, record.Uniform, n, int64(i), 64, "in")
		if err != nil {
			b.Fatal(err)
		}
		res, err := extsort.Sort(c, cfg, "in", "out")
		if err != nil {
			b.Fatal(err)
		}
		if err := extsort.VerifyOutput(c, "out", 64, sum); err != nil {
			b.Fatal(err)
		}
		vsec = res.Time
		smax = res.SublistExpansion(v)
	}
	b.ReportMetric(vsec, "vsec")
	b.ReportMetric(smax, "smax")
}

// BenchmarkTable3HomogeneousFE is E5: perf {1,1,1,1} on the loaded
// cluster over Fast Ethernet (paper: 303.94 s, S(max)=1.00273).
func BenchmarkTable3HomogeneousFE(b *testing.B) {
	table3Bench(b, perf.Homogeneous(4), cluster.FastEthernet())
}

// BenchmarkTable3HeterogeneousFE is E6: perf {1,1,4,4} over Fast
// Ethernet (paper: 155.41 s, S(max)=1.094).
func BenchmarkTable3HeterogeneousFE(b *testing.B) {
	table3Bench(b, experiments.PaperVector, cluster.FastEthernet())
}

// BenchmarkTable3HeterogeneousMyrinet is E7: perf {1,1,4,4} over
// Myrinet (paper: 155.43 s — no improvement over Fast Ethernet).
func BenchmarkTable3HeterogeneousMyrinet(b *testing.B) {
	table3Bench(b, experiments.PaperVector, cluster.Myrinet())
}

// BenchmarkSpeedups regenerates E8: the section-5 gain figures.
func BenchmarkSpeedups(b *testing.B) {
	o := benchOptions()
	var het float64
	for i := 0; i < b.N; i++ {
		s, err := experiments.ComputeSpeedups(o)
		if err != nil {
			b.Fatal(err)
		}
		het = s.HeteroVsHomo
	}
	b.ReportMetric(het, "hetero-vs-homo-gain")
}

// BenchmarkFigure1PDM regenerates E9: striped vs independent disk I/O
// counts under the PDM.
func BenchmarkFigure1PDM(b *testing.B) {
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Figure1PDM(o)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) == 0 {
			b.Fatal("no rows")
		}
	}
}

// BenchmarkAblationPivotStrategy is A1: regular sampling vs
// overpartitioning load balance (sublist expansion) on the in-core
// foundation, the comparison behind the paper's section-3.3 argument.
func BenchmarkAblationPivotStrategy(b *testing.B) {
	for _, strat := range []psrs.Strategy{psrs.RegularSampling, psrs.Overpartitioning} {
		b.Run(strat.String(), func(b *testing.B) {
			v := perf.Homogeneous(8)
			keys := record.Uniform.Generate(1<<16, 5, 8)
			portions := make([][]record.Key, 8)
			share := len(keys) / 8
			for i := range portions {
				portions[i] = keys[i*share : (i+1)*share]
			}
			var exp float64
			for i := 0; i < b.N; i++ {
				c, err := cluster.New(cluster.Config{Slowdowns: v.Slowdowns()})
				if err != nil {
					b.Fatal(err)
				}
				res, err := psrs.Sort(c, psrs.Config{Perf: v, Strategy: strat, Seed: int64(i)}, portions)
				if err != nil {
					b.Fatal(err)
				}
				exp = sampling.SublistExpansion(res.PartitionSizes)
			}
			b.ReportMetric(exp, "expansion")
		})
	}
}

// BenchmarkAblationDuplicates is A2: the effect of duplicate-heavy
// inputs on load balance (the paper's U+d bound discussion, §3.1).
func BenchmarkAblationDuplicates(b *testing.B) {
	for _, d := range []record.Distribution{record.Uniform, record.Zipf} {
		b.Run(d.String(), func(b *testing.B) {
			v := perf.Vector{1, 1, 4, 4}
			var exp float64
			for i := 0; i < b.N; i++ {
				c, err := cluster.New(cluster.Config{Slowdowns: v.Slowdowns(), BlockKeys: 64})
				if err != nil {
					b.Fatal(err)
				}
				cfg := extsort.Config{Perf: v, BlockKeys: 64, MemoryKeys: 4096, Tapes: 6, MessageKeys: 512}
				n := v.NearestValidSize(1 << 16)
				sum, err := extsort.DistributeInput(c, v, d, n, int64(i), 64, "in")
				if err != nil {
					b.Fatal(err)
				}
				res, err := extsort.Sort(c, cfg, "in", "out")
				if err != nil {
					b.Fatal(err)
				}
				if err := extsort.VerifyOutput(c, "out", 64, sum); err != nil {
					b.Fatal(err)
				}
				exp = res.SublistExpansion(v)
			}
			b.ReportMetric(exp, "expansion")
		})
	}
}

// BenchmarkAblationFileCount is A3: polyphase tape-count sweep (the
// paper fixed 15 intermediate files; fewer tapes mean more phases).
func BenchmarkAblationFileCount(b *testing.B) {
	for _, tapes := range []int{3, 4, 6, 8, 15} {
		b.Run(fmt.Sprintf("tapes=%d", tapes), func(b *testing.B) {
			keys := record.Uniform.Generate(1<<16, 9, 1)
			var vsec float64
			var phases int64
			for i := 0; i < b.N; i++ {
				c, err := cluster.New(cluster.Config{Slowdowns: []float64{1}, BlockKeys: 64})
				if err != nil {
					b.Fatal(err)
				}
				fs := c.Node(0).FS()
				if err := diskio.WriteFile(fs, "in", keys, 64, diskio.Accounting{}); err != nil {
					b.Fatal(err)
				}
				err = c.Run(func(n *cluster.Node) error {
					cfg := polyphase.Config{FS: fs, BlockKeys: 64, MemoryKeys: 4096,
						Tapes: tapes, Acct: n.Acct(), TempPrefix: "t."}
					st, serr := polyphase.Sort(cfg, "in", "out")
					phases = st.Phases
					return serr
				})
				if err != nil {
					b.Fatal(err)
				}
				vsec = c.MaxClock()
			}
			b.ReportMetric(vsec, "vsec")
			b.ReportMetric(float64(phases), "phases")
		})
	}
}

// BenchmarkPolyphaseWallClock measures the real (host) throughput of
// the sequential external sort on an in-memory filesystem.
func BenchmarkPolyphaseWallClock(b *testing.B) {
	keys := record.Uniform.Generate(1<<18, 3, 1)
	b.SetBytes(int64(len(keys)) * record.KeySize)
	for i := 0; i < b.N; i++ {
		fs := diskio.NewMemFS()
		if err := diskio.WriteFile(fs, "in", keys, 1024, diskio.Accounting{}); err != nil {
			b.Fatal(err)
		}
		cfg := polyphase.Config{FS: fs, BlockKeys: 1024, MemoryKeys: 1 << 15, Tapes: 8,
			Acct: diskio.Accounting{}, TempPrefix: "t."}
		if _, err := polyphase.Sort(cfg, "in", "out"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExternalPSRSWallClock measures the real throughput of the
// full parallel pipeline.
func BenchmarkExternalPSRSWallClock(b *testing.B) {
	v := perf.Vector{1, 1, 4, 4}
	n := v.NearestValidSize(1 << 18)
	b.SetBytes(n * record.KeySize)
	for i := 0; i < b.N; i++ {
		c, err := cluster.New(cluster.Config{Slowdowns: v.Slowdowns(), BlockKeys: 1024})
		if err != nil {
			b.Fatal(err)
		}
		cfg := extsort.Config{Perf: v, BlockKeys: 1024, MemoryKeys: 1 << 15, Tapes: 8, MessageKeys: 8192}
		if _, err := extsort.DistributeInput(c, v, record.Uniform, n, int64(i), 1024, "in"); err != nil {
			b.Fatal(err)
		}
		if _, err := extsort.Sort(c, cfg, "in", "out"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationQuantilePivots is A4: PSRS pivots from merged
// Greenwald-Khanna sketches (the variant of the paper's reference [29])
// vs regular sampling, compared on weighted sublist expansion.
func BenchmarkAblationQuantilePivots(b *testing.B) {
	for _, strat := range []psrs.Strategy{psrs.RegularSampling, psrs.Quantiles} {
		b.Run(strat.String(), func(b *testing.B) {
			v := perf.Vector{1, 1, 4, 4}
			n := v.NearestValidSize(1 << 17)
			keys := record.Uniform.Generate(int(n), 11, 4)
			shares := v.Shares(n)
			portions := make([][]record.Key, len(v))
			off := int64(0)
			for i, s := range shares {
				portions[i] = keys[off : off+s]
				off += s
			}
			var exp float64
			for i := 0; i < b.N; i++ {
				c, err := cluster.New(cluster.Config{Slowdowns: v.Slowdowns()})
				if err != nil {
					b.Fatal(err)
				}
				res, err := psrs.Sort(c, psrs.Config{Perf: v, Strategy: strat, Seed: int64(i)}, portions)
				if err != nil {
					b.Fatal(err)
				}
				exp, err = sampling.WeightedExpansion(res.PartitionSizes, v)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(exp, "weighted-expansion")
		})
	}
}

// BenchmarkAblationMultiDisk is A5: the PDM D parameter — nodes with
// 1, 2 or 4 independent disks running the same Algorithm-1 workload.
func BenchmarkAblationMultiDisk(b *testing.B) {
	for _, d := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("D=%d", d), func(b *testing.B) {
			v := perf.Homogeneous(4)
			var vsec float64
			for i := 0; i < b.N; i++ {
				c, err := cluster.New(cluster.Config{
					Slowdowns: v.Slowdowns(), BlockKeys: 64, DisksPerNode: d,
				})
				if err != nil {
					b.Fatal(err)
				}
				cfg := extsort.Config{Perf: v, BlockKeys: 64, MemoryKeys: 4096, Tapes: 6, MessageKeys: 512}
				if _, err := extsort.DistributeInput(c, v, record.Uniform, 1<<16, int64(i), 64, "in"); err != nil {
					b.Fatal(err)
				}
				res, err := extsort.Sort(c, cfg, "in", "out")
				if err != nil {
					b.Fatal(err)
				}
				vsec = res.Time
			}
			b.ReportMetric(vsec, "vsec")
		})
	}
}

// BenchmarkAblationBaselineDeWitt is A6: Algorithm 1 vs the DeWitt
// et al. probabilistic-splitting distribution sort (the closest prior
// algorithm per the paper's section 2) — virtual time and total I/O.
func BenchmarkAblationBaselineDeWitt(b *testing.B) {
	v := perf.Vector{1, 1, 4, 4}
	n := v.NearestValidSize(1 << 16)
	run := func(b *testing.B, algo string) (vsec float64, io int64) {
		c, err := cluster.New(cluster.Config{Slowdowns: v.Slowdowns(), BlockKeys: 64})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := extsort.DistributeInput(c, v, record.Uniform, n, 1, 64, "in"); err != nil {
			b.Fatal(err)
		}
		switch algo {
		case "algorithm1":
			res, err := extsort.Sort(c, extsort.Config{
				Perf: v, BlockKeys: 64, MemoryKeys: 4096, Tapes: 6, MessageKeys: 512,
			}, "in", "out")
			if err != nil {
				b.Fatal(err)
			}
			vsec = res.Time
			for _, s := range res.NodeIO {
				io += s.Total()
			}
		case "dewitt":
			// SampleFactor scaled down with the input so the sampling
			// seeks (8 ms each) do not dominate at bench scale.
			res, err := dewitt.Sort(c, dewitt.Config{
				Perf: v, BlockKeys: 64, MemoryKeys: 4096, Tapes: 6, MessageKeys: 512,
				SampleFactor: 2,
			}, "in", "out")
			if err != nil {
				b.Fatal(err)
			}
			vsec = res.Time
			for _, s := range res.NodeIO {
				io += s.Total()
			}
		}
		return vsec, io
	}
	for _, algo := range []string{"algorithm1", "dewitt"} {
		b.Run(algo, func(b *testing.B) {
			var vsec float64
			var io int64
			for i := 0; i < b.N; i++ {
				vsec, io = run(b, algo)
			}
			b.ReportMetric(vsec, "vsec")
			b.ReportMetric(float64(io), "blockIOs")
		})
	}
}

// BenchmarkAblationCheckpoint is A7: the price of crash tolerance —
// the same sort with checkpointing off, on, and on with a node killed
// during redistribution and the run resumed from its manifests.
func BenchmarkAblationCheckpoint(b *testing.B) {
	o := benchOptions()
	var rows []experiments.AblationRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.CheckpointAblation(o)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		if r.Metric == "vsec" {
			b.ReportMetric(r.Value, "vsec-"+r.Variant)
		}
	}
}

// BenchmarkAblationPipeline is A8: the fused redistribution→merge
// pipeline vs the barrier path, run separately per variant so ns/op and
// allocs/op are directly comparable; vsec and blockIOs come from the
// simulator's accounting.
func BenchmarkAblationPipeline(b *testing.B) {
	v := experiments.PaperVector
	n := v.NearestValidSize(1 << 16)
	for _, variant := range []struct {
		name     string
		pipeline bool
	}{{"barrier", false}, {"pipelined", true}} {
		b.Run(variant.name, func(b *testing.B) {
			b.ReportAllocs()
			var vsec float64
			var io int64
			for i := 0; i < b.N; i++ {
				c, err := cluster.New(cluster.Config{Slowdowns: v.Slowdowns(), BlockKeys: 64})
				if err != nil {
					b.Fatal(err)
				}
				cfg := extsort.Config{Perf: v, BlockKeys: 64, MemoryKeys: 16384,
					Tapes: 6, MessageKeys: 512, Pipeline: variant.pipeline}
				sum, err := extsort.DistributeInput(c, v, record.Uniform, n, 1, 64, "in")
				if err != nil {
					b.Fatal(err)
				}
				res, err := extsort.Sort(c, cfg, "in", "out")
				if err != nil {
					b.Fatal(err)
				}
				if err := extsort.VerifyOutput(c, "out", 64, sum); err != nil {
					b.Fatal(err)
				}
				vsec = res.Time
				io = 0
				for _, s := range res.NodeIO {
					io += s.Total()
				}
			}
			b.ReportMetric(vsec, "vsec")
			b.ReportMetric(float64(io), "blockIOs")
		})
	}
}

// BenchmarkAblationOverlap is A9: overlapped disk I/O (prefetch +
// write-behind) vs the synchronous path, run separately per variant so
// ns/op and allocs/op are directly comparable; vsec and blockIOs come
// from the simulator's accounting and blockIOs must match exactly
// across the two variants.
func BenchmarkAblationOverlap(b *testing.B) {
	v := experiments.PaperVector
	n := v.NearestValidSize(1 << 16)
	for _, variant := range []struct {
		name    string
		overlap bool
	}{{"synchronous", false}, {"overlapped", true}} {
		b.Run(variant.name, func(b *testing.B) {
			b.ReportAllocs()
			var vsec float64
			var io int64
			for i := 0; i < b.N; i++ {
				c, err := cluster.New(cluster.Config{Slowdowns: v.Slowdowns(), BlockKeys: 64})
				if err != nil {
					b.Fatal(err)
				}
				cfg := extsort.Config{Perf: v, BlockKeys: 64, MemoryKeys: 16384,
					Tapes: 6, MessageKeys: 512, Overlap: variant.overlap}
				sum, err := extsort.DistributeInput(c, v, record.Uniform, n, 1, 64, "in")
				if err != nil {
					b.Fatal(err)
				}
				res, err := extsort.Sort(c, cfg, "in", "out")
				if err != nil {
					b.Fatal(err)
				}
				if err := extsort.VerifyOutput(c, "out", 64, sum); err != nil {
					b.Fatal(err)
				}
				vsec = res.Time
				io = 0
				for _, s := range res.NodeIO {
					io += s.Total()
				}
			}
			b.ReportMetric(vsec, "vsec")
			b.ReportMetric(float64(io), "blockIOs")
		})
	}
}

// BenchmarkDistributionSweep is E10: external PSRS across the eight
// benchmark input distributions (the paper's input-invariance claim).
func BenchmarkDistributionSweep(b *testing.B) {
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.DistributionSweep(o)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 8 {
			b.Fatal("incomplete sweep")
		}
	}
}

// Package hetsort is an out-of-core parallel sorting library for
// clusters whose processors run at different speeds, reproducing
// C. Cérin, "An Out-of-Core Sorting Algorithm for Clusters with
// Processors at Different Speed" (IPPS 2002).
//
// The library sorts 32-bit unsigned integers that do not fit in memory
// by running external PSRS (Parallel Sorting by Regular Sampling over
// polyphase merge sort) across a simulated cluster: one goroutine per
// node, a private disk per node (in-memory or directory-backed), a
// latency/bandwidth network model, and deterministic virtual time.
// Heterogeneity is expressed as the paper's perf vector: perf[i] is the
// relative speed of node i, and node i receives perf[i]/Σperf of the
// data, ending — by the PSRS theorem — with no more than twice that
// share after sorting.
//
// Quick use:
//
//	sorted, report, err := hetsort.Sort(keys, hetsort.Config{Perf: []int{1, 1, 4, 4}})
//
// For disk-resident data, see SortFile; for reproducing the paper's
// evaluation, see cmd/benchtab.
package hetsort

import (
	"errors"
	"fmt"

	"hetsort/internal/cluster"
	"hetsort/internal/dewitt"
	"hetsort/internal/diskio"
	"hetsort/internal/extsort"
	"hetsort/internal/pdm"
	"hetsort/internal/perf"
	"hetsort/internal/polyphase"
	"hetsort/internal/progress"
	"hetsort/internal/record"
	"hetsort/internal/trace"
	"hetsort/internal/vtime"
)

// Key is the record type the library sorts: a 32-bit unsigned integer,
// 4 bytes on disk, exactly the paper's data items.
type Key = uint32

// Network names accepted by Config.Network.
const (
	NetworkFastEthernet = "fast-ethernet" // the paper's default interconnect
	NetworkMyrinet      = "myrinet"       // the paper's second interconnect
	NetworkIdeal        = "ideal"         // zero-cost network
)

// Run-formation names accepted by Config.RunFormation.
const (
	RunReplacementSelection = "replacement-selection"
	RunLoadSort             = "load-sort"
	RunGuidesort            = "guidesort"
)

// Disk-access names accepted by Config.DiskAccess.
const (
	// DiskAccessStriped schedules multi-disk I/O in lockstep stripes
	// (the PDM's striped model, default): a parallel I/O step completes
	// when the slowest involved member disk does, and breaking the
	// round-robin order costs a new step.
	DiskAccessStriped = "striped"
	// DiskAccessIndependent lets each member disk serve requests
	// independently (the PDM's independent model): any D distinct disks
	// can transfer concurrently regardless of order.
	DiskAccessIndependent = "independent"
)

// Algorithm names accepted by Config.Algorithm.
const (
	// AlgorithmExternalPSRS is the paper's Algorithm 1 (default).
	AlgorithmExternalPSRS = "external-psrs"
	// AlgorithmDeWitt is the randomized two-step distribution sort of
	// DeWitt, Naughton & Schneider (PDIS 1991), the prior work the
	// paper's section 2 identifies as closest in spirit.  It skips the
	// up-front external sort (fewer I/Os) but balances load only as
	// well as its random sample.
	AlgorithmDeWitt = "dewitt"
)

// Pivot-strategy names accepted by Config.PivotStrategy.
const (
	// PivotRegularSampling is the paper's Algorithm 1 (default).
	PivotRegularSampling = "regular-sampling"
	// PivotOverpartitioning is the Li & Sevcik scheme adapted to
	// heterogeneous clusters (the paper's Cluster-2000 companion).
	PivotOverpartitioning = "overpartitioning"
	// PivotRandom picks pivots from unstructured random samples (the
	// strawman the regular-position discipline improves on).
	PivotRandom = "random-pivots"
	// PivotQuantileSketch answers the pivot quantiles from merged
	// ε-approximate sketches (the variant of the paper's reference
	// [29]): one extra read pass, grid-free balance.
	PivotQuantileSketch = "quantile-sketch"
	// PivotHistogram iteratively refines candidate splitters against
	// exact global histogram counts (Harsh, Kale & Solomonik's
	// Histogram Sort with Sampling): provable balance within
	// HistTolerance of every node's perf share, robust on the
	// duplicate-heavy and adversarial inputs that defeat one-shot
	// sampling, shipping only O(p) candidate keys per round.
	PivotHistogram = "histogram"
)

// Topology names accepted by Config.Topology.
const (
	// TopologyFlat is Algorithm 1 as written: star collectives for the
	// pivots and one all-to-all redistribution round (default).
	TopologyFlat = "flat"
	// TopologyTree aggregates pivot samples up a radix-r reduction tree
	// and redistributes through ⌈log_r p⌉ rounds of r-way exchanges, so
	// no node holds more than O(r) open streams — the structure that
	// scales the cluster to p=1024.
	TopologyTree = "tree"
	// TopologyGrid is the 2-round √p×√p special case of the tree.
	TopologyGrid = "grid"
)

// Config parameterises a sort.  The zero value is a valid homogeneous
// 4-node configuration with the paper's parameters (8 KiB blocks, 15
// intermediate files, 8K-integer messages, Fast Ethernet).
type Config struct {
	// Perf is the performance vector: one positive integer per node,
	// larger = faster (e.g. {1,1,4,4} for two nodes four times
	// faster).  Empty means Nodes homogeneous nodes.
	Perf []int
	// Nodes is the cluster size when Perf is empty (default 4).
	Nodes int
	// BlockKeys is the disk block size B in keys (default 2048).
	BlockKeys int
	// MemoryKeys is each node's internal memory M in keys (default 65536).
	MemoryKeys int
	// Tapes is the polyphase merge file count (default 15).
	Tapes int
	// MessageKeys is the redistribution message size in keys (default 8192).
	MessageKeys int
	// Disks is the PDM D parameter: the number of member disks per node
	// (default 1).  With D > 1 every node file is striped block-by-block
	// across D disks, sequential scans complete up to D times faster
	// (per-disk queues overlap the member transfers), and per-disk I/O
	// counters appear in Report.DiskIO.  I/O counts and output bytes are
	// independent of D.
	Disks int
	// DiskAccess selects the multi-disk scheduling model by name:
	// DiskAccessStriped (default) or DiskAccessIndependent.  Timing
	// only; ignored at D = 1.
	DiskAccess string
	// Network selects the interconnect model by name (default
	// NetworkFastEthernet).
	Network string
	// RunFormation selects the initial run former by name (default
	// RunReplacementSelection).
	RunFormation string
	// Algorithm selects the sorting algorithm by name (default
	// AlgorithmExternalPSRS).
	Algorithm string
	// PivotStrategy selects the step-2 pivot scheme by name (default
	// PivotRegularSampling); only meaningful for AlgorithmExternalPSRS.
	PivotStrategy string
	// QuantileEps is the sketch error bound when PivotStrategy is
	// PivotQuantileSketch (default 0.01).  Must be a finite value in
	// (0, 1) when set.
	QuantileEps float64
	// HistTolerance is the refinement tolerance when PivotStrategy is
	// PivotHistogram, as a fraction of the smallest perf share
	// (default 0.05).  Must be a finite value in (0, 1) when set.
	HistTolerance float64
	// WorkDir, when non-empty, backs each node's disk with a real
	// directory WorkDir/node<i> instead of an in-memory filesystem.
	WorkDir string
	// Loads optionally overrides the simulated slowdown of each node
	// (>= 1).  By default the loads are derived from Perf, modelling
	// the paper's cluster where the perf vector reflects real machine
	// load.  Setting Loads decouples the machine from the perf vector
	// — e.g. to measure a mis-calibrated vector.
	Loads []float64
	// Seed feeds input generation in the convenience helpers.
	Seed int64
	// Trace, when true, records a virtual-time event trace of the run
	// into Report.Timeline and Report.Gantt.
	Trace bool
	// Pipeline fuses Algorithm 1's steps 4 and 5: incoming
	// redistribution streams are merged directly into each node's
	// output file as messages arrive, skipping the received files'
	// write and re-read.  Output is byte-identical to the barrier
	// path.  Only meaningful for AlgorithmExternalPSRS; with
	// Checkpoint enabled the streams are still spilled to durable
	// receive files for the phase-4 manifest.
	Pipeline bool
	// Overlap turns on asynchronous disk I/O: readers prefetch blocks
	// ahead of the consumer and writers flush behind it, hiding disk
	// transfer time behind concurrent compute (up to the node's disk
	// parallelism per stream).  PDM I/O counts and output bytes are
	// identical to the synchronous path; only virtual time changes.
	// Only meaningful for AlgorithmExternalPSRS.
	Overlap bool
	// Topology selects the communication structure for pivot
	// aggregation and redistribution: TopologyFlat (default),
	// TopologyTree or TopologyGrid.  The hierarchical topologies keep
	// every node's fan-in at O(Radix) per round instead of O(p), at the
	// cost of ⌈log_r p⌉ redistribution rounds; output is byte-identical
	// to flat except under PivotQuantileSketch, where per-node
	// partition boundaries may shift (the global sorted sequence is
	// identical either way).  Only meaningful for AlgorithmExternalPSRS.
	Topology string
	// Radix is the tree fan-in r (default 4); ignored for flat and grid.
	Radix int
	// Checkpoint controls the fault-tolerance subsystem.
	Checkpoint CheckpointConfig
	// Progress, when set, lets other goroutines sample live per-node,
	// per-step snapshots while the sort runs (see internal/progress):
	// create a tracker with NewProgressTracker, set it here, and call
	// its Snapshot method concurrently with Sort/SortFile/Resume.
	// Sampling reads only atomically published state, so it never
	// perturbs virtual-time attribution or the output.  Only meaningful
	// for AlgorithmExternalPSRS.
	Progress *progress.Tracker
}

// NewProgressTracker returns a tracker to set on Config.Progress; see
// the internal/progress package for the snapshot shape.
func NewProgressTracker() *progress.Tracker { return progress.NewTracker() }

// CheckpointConfig controls crash tolerance.  With Enabled, every node
// durably commits a checkpoint manifest to its disk at each of the five
// phase boundaries of Algorithm 1; a run interrupted by a node failure
// can then be continued with Resume, re-running only the phases that
// did not commit.  Manifests live on the node disks, so genuine
// crash-restart recovery needs Config.WorkDir (in-memory disks only
// survive within one process).
type CheckpointConfig struct {
	// Enabled turns the phase boundaries into durable commit points.
	Enabled bool
	// CrashPhase, when 1..5, schedules an injected failure of node
	// CrashNode at the end of that phase, just before its commit —
	// the fault-injection hook for tests, demos and experiments.
	// Zero disables injection.
	CrashPhase int
	// CrashNode is the node the injected failure kills.
	CrashNode int
}

func (c Config) vector() (perf.Vector, error) {
	if len(c.Perf) > 0 {
		v := perf.Vector(c.Perf)
		return v, v.Validate()
	}
	n := c.Nodes
	if n <= 0 {
		n = 4
	}
	return perf.Homogeneous(n), nil
}

func (c Config) network() (cluster.NetModel, error) {
	switch c.Network {
	case "", NetworkFastEthernet:
		return cluster.FastEthernet(), nil
	case NetworkMyrinet:
		return cluster.Myrinet(), nil
	case NetworkIdeal:
		return cluster.Ideal(), nil
	default:
		return cluster.NetModel{}, fmt.Errorf("hetsort: unknown network %q", c.Network)
	}
}

func (c Config) runFormation() (polyphase.RunFormation, error) {
	switch c.RunFormation {
	case "", RunReplacementSelection:
		return polyphase.ReplacementSelection, nil
	case RunLoadSort:
		return polyphase.LoadSort, nil
	case RunGuidesort:
		return polyphase.Guidesort, nil
	default:
		return 0, fmt.Errorf("hetsort: unknown run formation %q", c.RunFormation)
	}
}

func (c Config) diskAccess() (pdm.AccessMode, error) {
	switch c.DiskAccess {
	case "", DiskAccessStriped:
		return pdm.Striped, nil
	case DiskAccessIndependent:
		return pdm.Independent, nil
	default:
		return 0, fmt.Errorf("hetsort: unknown disk access mode %q", c.DiskAccess)
	}
}

func (c Config) blockKeys() int {
	if c.BlockKeys > 0 {
		return c.BlockKeys
	}
	return 2048
}

// newCluster assembles the simulated machine for this configuration,
// returning the optional trace log alongside it.
func (c Config) newCluster(v perf.Vector) (*cluster.Cluster, *trace.Log, error) {
	net, err := c.network()
	if err != nil {
		return nil, nil, err
	}
	access, err := c.diskAccess()
	if err != nil {
		return nil, nil, err
	}
	var tl *trace.Log
	if c.Trace {
		tl = new(trace.Log)
	}
	loads := c.Loads
	if loads == nil {
		loads = v.Slowdowns()
	} else if err := perf.ValidateLoads(loads); err != nil {
		return nil, nil, fmt.Errorf("hetsort: %w", err)
	}
	if len(loads) != len(v) {
		return nil, nil, fmt.Errorf("hetsort: %d loads for %d nodes", len(loads), len(v))
	}
	var disks func(int) diskio.FS
	var derr error
	if c.WorkDir != "" {
		disks = func(id int) diskio.FS {
			fs, e := diskio.NewDirFS(fmt.Sprintf("%s/node%d", c.WorkDir, id))
			if e != nil {
				// Remember the failure; newCluster surfaces it below.
				// The placeholder MemFS is never used.
				if derr == nil {
					derr = e
				}
				return diskio.NewMemFS()
			}
			return fs
		}
	}
	cl, err := cluster.New(cluster.Config{
		Slowdowns:    loads,
		Net:          net,
		BlockKeys:    c.blockKeys(),
		Disks:        disks,
		DisksPerNode: c.Disks,
		DiskAccess:   access,
		Trace:        tl,
	})
	if err != nil {
		return nil, nil, err
	}
	if derr != nil {
		return nil, nil, fmt.Errorf("hetsort: work dir %q: %w", c.WorkDir, derr)
	}
	return cl, tl, err
}

func (c Config) pivotStrategy() (extsort.Strategy, error) {
	switch c.PivotStrategy {
	case "", PivotRegularSampling:
		return extsort.RegularSampling, nil
	case PivotOverpartitioning:
		return extsort.Overpartitioning, nil
	case PivotRandom:
		return extsort.RandomPivots, nil
	case PivotQuantileSketch:
		return extsort.QuantileSketch, nil
	case PivotHistogram:
		return extsort.Histogram, nil
	default:
		return 0, fmt.Errorf("hetsort: unknown pivot strategy %q", c.PivotStrategy)
	}
}

func (c Config) extsortConfig(v perf.Vector) (extsort.Config, error) {
	rf, err := c.runFormation()
	if err != nil {
		return extsort.Config{}, err
	}
	strat, err := c.pivotStrategy()
	if err != nil {
		return extsort.Config{}, err
	}
	topo, err := extsort.ParseTopology(c.Topology)
	if err != nil {
		return extsort.Config{}, fmt.Errorf("hetsort: %w", err)
	}
	// NaN-rejecting range checks (every comparison against NaN is
	// false, so the conditions are negated in-range tests): a NaN eps
	// used to slip past the zero-value defaulting and reach the sketch.
	if c.QuantileEps != 0 && !(c.QuantileEps > 0 && c.QuantileEps < 1) {
		return extsort.Config{}, fmt.Errorf("hetsort: QuantileEps=%v must be a finite value in (0, 1)", c.QuantileEps)
	}
	if c.HistTolerance != 0 && !(c.HistTolerance > 0 && c.HistTolerance < 1) {
		return extsort.Config{}, fmt.Errorf("hetsort: HistTolerance=%v must be a finite value in (0, 1)", c.HistTolerance)
	}
	return extsort.Config{
		Perf:          v,
		BlockKeys:     c.blockKeys(),
		MemoryKeys:    c.MemoryKeys,
		Tapes:         c.Tapes,
		MessageKeys:   c.MessageKeys,
		Disks:         c.Disks,
		RunFormation:  rf,
		Strategy:      strat,
		QuantileEps:   c.QuantileEps,
		HistTolerance: c.HistTolerance,
		Seed:          c.Seed,
		Pipeline:      c.Pipeline,
		Overlap:       c.Overlap,
		Topology:      topo,
		Radix:         c.Radix,
		Progress:      c.Progress,
	}, nil
}

// Sort sorts keys out of core on the configured simulated cluster and
// returns the sorted copy plus a Report.  The input slice is not
// modified.  Data still flows through real (node-private) files in
// blocks; only the orchestration is in-process.
func Sort(keys []Key, cfg Config) ([]Key, *Report, error) {
	v, err := cfg.vector()
	if err != nil {
		return nil, nil, err
	}
	c, tl, err := cfg.newCluster(v)
	if err != nil {
		return nil, nil, err
	}
	// Distribute perf-proportional portions onto the node disks.
	shares := v.Shares(int64(len(keys)))
	var off int64
	for i := 0; i < c.P(); i++ {
		portion := keys[off : off+shares[i]]
		off += shares[i]
		if err := diskio.WriteFile(c.Node(i).FS(), "input", portion, cfg.blockKeys(), diskio.Accounting{}); err != nil {
			return nil, nil, err
		}
	}
	want := record.ChecksumOf(keys)

	res, err := cfg.sortOnCluster(c, v, want)
	if err != nil {
		return nil, nil, err
	}
	out := make([]Key, 0, len(keys))
	for i := 0; i < c.P(); i++ {
		part, err := diskio.ReadFileAll(c.Node(i).FS(), "output", cfg.blockKeys(), diskio.Accounting{})
		if err != nil {
			return nil, nil, err
		}
		out = append(out, part...)
	}
	rep := newReport(res, v)
	rep.attachTrace(tl)
	rep.attachMetrics(c)
	return out, rep, nil
}

// sortOnCluster runs the selected algorithm on an already-loaded
// cluster (every node holds "input") and verifies the "output" files
// against the expected checksum.  The result is normalised to an
// extsort.Result (the DeWitt baseline reports no per-step breakdown).
func (c Config) sortOnCluster(cl *cluster.Cluster, v perf.Vector, want record.Checksum) (*extsort.Result, error) {
	if ph := c.Checkpoint.CrashPhase; ph != 0 {
		if ph < 1 || ph > 5 {
			return nil, fmt.Errorf("hetsort: Checkpoint.CrashPhase %d out of range 1..5", ph)
		}
		if err := cl.ScheduleCrash(c.Checkpoint.CrashNode, -1, extsort.StepNames[ph-1]); err != nil {
			return nil, err
		}
	}
	switch c.Algorithm {
	case "", AlgorithmExternalPSRS:
		ecfg, err := c.extsortConfig(v)
		if err != nil {
			return nil, err
		}
		ecfg.Checkpoint = c.Checkpoint.Enabled
		ecfg.InputSum = want
		res, err := extsort.Sort(cl, ecfg, "input", "output")
		if err != nil {
			return nil, err
		}
		if err := extsort.VerifyOutput(cl, "output", c.blockKeys(), want); err != nil {
			return nil, err
		}
		return res, nil
	case AlgorithmDeWitt:
		if c.Checkpoint.Enabled {
			return nil, errors.New("hetsort: checkpointing is only implemented for the external-psrs algorithm")
		}
		res, err := dewitt.Sort(cl, dewitt.Config{
			Perf:        v,
			BlockKeys:   c.blockKeys(),
			MemoryKeys:  c.MemoryKeys,
			Tapes:       c.Tapes,
			MessageKeys: c.MessageKeys,
			Seed:        c.Seed,
		}, "input", "output")
		if err != nil {
			return nil, err
		}
		if err := extsort.VerifyOutput(cl, "output", c.blockKeys(), want); err != nil {
			return nil, err
		}
		attr := make([]vtime.Breakdown, cl.P())
		for i := range attr {
			attr[i] = cl.Node(i).Attribution()
		}
		return &extsort.Result{
			Time:           res.Time,
			NodeClocks:     res.NodeClocks,
			PartitionSizes: res.PartitionSizes,
			NodeIO:         res.NodeIO,
			NodeAttr:       attr,
			Pivots:         res.Splitters,
		}, nil
	default:
		return nil, fmt.Errorf("hetsort: unknown algorithm %q", c.Algorithm)
	}
}

// Calibration reports one run of the paper's perf-vector calibration
// protocol: the derived vector, the per-node sequential sort times it
// was computed from, and — when Config.Trace was set — the rendered
// virtual-time trace of the calibration sorts.
type Calibration struct {
	// Perf is the derived perf vector (slowest node = 1).
	Perf []int
	// Times is each node's virtual time for the calibration sort.
	Times []float64
	// Timeline and Gantt hold the rendered trace when Config.Trace was
	// set.
	Timeline string
	Gantt    string
	// TraceLog is the raw event log when Config.Trace was set.
	TraceLog *trace.Log `json:"-"`
}

// Calibrate runs the paper's protocol for filling the perf vector on
// the configured cluster: each node externally sorts perNodeKeys keys;
// the ratios of the slowest time to each node's time become the vector.
// Config.Loads (or the perf-derived defaults) determine the machine
// being calibrated.  Config.Trace is rejected here because this
// signature has nowhere to return the timeline; use CalibrateReport.
func Calibrate(cfg Config, perNodeKeys int64) ([]int, []float64, error) {
	if cfg.Trace {
		return nil, nil, errors.New("hetsort: Calibrate cannot return a trace; use CalibrateReport for Config.Trace")
	}
	cal, err := CalibrateReport(cfg, perNodeKeys)
	if err != nil {
		return nil, nil, err
	}
	return cal.Perf, cal.Times, nil
}

// CalibrateReport is Calibrate with the full report: it additionally
// honours Config.Trace, attaching the virtual-time timeline and Gantt
// chart of the calibration sorts.
func CalibrateReport(cfg Config, perNodeKeys int64) (*Calibration, error) {
	if perNodeKeys <= 0 {
		return nil, errors.New("hetsort: perNodeKeys must be positive")
	}
	v, err := cfg.vector()
	if err != nil {
		return nil, err
	}
	c, tl, err := cfg.newCluster(v)
	if err != nil {
		return nil, err
	}
	ecfg, err := cfg.extsortConfig(v)
	if err != nil {
		return nil, err
	}
	ecfg.ApplyDefaults(c.P())
	for i := 0; i < c.P(); i++ {
		keys := record.Uniform.Generate(int(perNodeKeys), cfg.Seed+int64(i), 1)
		if err := diskio.WriteFile(c.Node(i).FS(), "calinput", keys, cfg.blockKeys(), diskio.Accounting{}); err != nil {
			return nil, err
		}
	}
	err = c.Run(func(n *cluster.Node) error {
		endPhase := n.TracePhase("calibrate")
		defer endPhase()
		pcfg := polyphase.Config{
			FS:         n.FS(),
			BlockKeys:  ecfg.BlockKeys,
			MemoryKeys: ecfg.MemoryKeys,
			Tapes:      ecfg.Tapes,
			Acct:       n.Acct(),
			TempPrefix: "cal.",
		}
		_, serr := polyphase.Sort(pcfg, "calinput", "caloutput")
		return serr
	})
	if err != nil {
		return nil, err
	}
	times := make([]float64, c.P())
	for i := range times {
		times[i] = c.Node(i).Clock()
	}
	vec, err := perf.FromTimes(times)
	if err != nil {
		return nil, err
	}
	cal := &Calibration{Perf: []int(vec), Times: times}
	if tl != nil {
		cal.TraceLog = tl
		cal.Timeline = tl.Timeline()
		cal.Gantt = tl.Gantt(60)
	}
	return cal, nil
}

// ValidSize rounds n up to the nearest input size for which the perf
// vector divides the data exactly (the paper's Equation-2 practice —
// e.g. {1,1,4,4} turns 2^24 into 16777220).
func ValidSize(perfVector []int, n int64) (int64, error) {
	v := perf.Vector(perfVector)
	if err := v.Validate(); err != nil {
		return 0, err
	}
	return v.NearestValidSize(n), nil
}

package extsort

import (
	"fmt"

	"hetsort/internal/diskio"
	"hetsort/internal/quantile"
	"hetsort/internal/record"
	"hetsort/internal/sampling"
)

// Strategy selects how step 2 chooses the partitioning pivots.  The
// paper's Algorithm 1 uses heterogeneous regular sampling; the
// companion overpartitioning scheme (Cérin & Gaudiot, Cluster 2000) and
// a naive random-pivot baseline are provided for the ablation benches.
type Strategy int

const (
	// RegularSampling is Algorithm 1's scheme: regularly spaced
	// samples from the sorted files, perf-proportional counts,
	// weighted pivot quantiles.
	RegularSampling Strategy = iota
	// Overpartitioning draws k*p random samples per unit of perf,
	// cuts the data into k*p sublists and assigns consecutive
	// sublists to processors in perf proportion (Li & Sevcik adapted
	// to heterogeneous clusters).
	Overpartitioning
	// RandomPivots picks the p-1 pivots directly from random samples
	// without the regular-position discipline — the strawman whose
	// poor balance motivates sampling "in a regular way".
	RandomPivots
	// QuantileSketch streams each sorted file through a
	// Greenwald-Khanna summary and picks pivots from the merged
	// sketches (the variant of the paper's reference [29]): one extra
	// sequential read pass, but the designated node receives compact
	// sketches instead of p^2 samples, and the pivots are not limited
	// to the regular-sample grid.
	QuantileSketch
	// Histogram is iterative splitter refinement (Harsh, Kale &
	// Solomonik's Histogram Sort with Sampling): node 0 broadcasts
	// candidate splitters each round, every node histograms its sorted
	// file against them in one scan, the counts reduce up the
	// collective tree, and the candidates narrow until every pivot's
	// global rank is within HistTolerance of its perf-share target —
	// provable balance on adversarial and duplicate-heavy inputs where
	// one-shot sampling degrades, with only O(p) keys shipped per
	// round instead of O(p²) samples (see internal/histsort).
	Histogram
)

func (s Strategy) String() string {
	switch s {
	case RegularSampling:
		return "regular-sampling"
	case Overpartitioning:
		return "overpartitioning"
	case RandomPivots:
		return "random-pivots"
	case QuantileSketch:
		return "quantile-sketch"
	case Histogram:
		return "histogram"
	default:
		return fmt.Sprintf("strategy(%d)", int(s))
	}
}

// sampleRandom reads `count` keys at distinct random positions of the
// node's sorted file (charging a seek + block read each, like the
// regular sampler).
func (w *worker) sampleRandom(li int64, count int, seed int64) ([]record.Key, error) {
	n := w.n
	if li <= 0 || count <= 0 {
		return nil, nil
	}
	f, err := n.FS().Open(w.sortedName())
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var out []record.Key
	for _, idx := range sampling.RandomSampleIndices(li, count, seed) {
		k, err := diskio.ReadKeyAt(f, idx, n.Acct())
		if err != nil {
			return nil, err
		}
		out = append(out, k)
	}
	return out, nil
}

// selectPivotsRandom implements the RandomPivots strategy: each node
// contributes perf-proportional random samples; node 0 picks the p-1
// weighted pivots from them without any regular-position structure.
func (w *worker) selectPivotsRandom(li int64) ([]record.Key, error) {
	n, cfg := w.n, w.cfg
	p, id := n.P(), n.ID()
	if p == 1 {
		return nil, nil
	}
	count := (p - 1) * cfg.Perf[id]
	samples, err := w.sampleRandom(li, count, cfg.Seed+int64(id)*101)
	if err != nil {
		return nil, err
	}
	w.pstats.Rounds = 1
	w.pstats.SampleKeys = int64(len(samples))
	// TreeGather presents the root the same per-rank slices as the flat
	// gather, so the hierarchical dispatch changes no pivot byte.
	gathered, err := w.gather(tagSamples, samples)
	if err != nil {
		return nil, err
	}
	var pivots []record.Key
	if id == 0 {
		var cands []record.Key
		for _, g := range gathered {
			cands = append(cands, g...)
		}
		n.ChargeCompute(int64(len(cands)) * 16)
		pivots, err = sampling.SelectPivotsWeighted(cands, cfg.Perf)
		if err != nil {
			return nil, err
		}
	}
	return w.bcast(tagPivots, pivots)
}

// selectPivotsOver implements the Overpartitioning strategy for the
// external sorter: k*p-1 pivots define k*p sublists; all nodes agree on
// a consecutive-range assignment of sublists to processors weighted by
// perf, and the returned p-1 "processor pivots" are the sublist
// boundaries at the assignment cuts.  Converting the assignment back to
// p-1 pivots keeps steps 3-5 identical across strategies.
func (w *worker) selectPivotsOver(li int64) ([]record.Key, error) {
	n, cfg := w.n, w.cfg
	p, id := n.P(), n.ID()
	if p == 1 {
		return nil, nil
	}
	k := cfg.OverFactor
	if k <= 0 {
		k = 4
	}
	count := k * p * cfg.Perf[id]
	samples, err := w.sampleRandom(li, count, cfg.Seed+int64(id)*211)
	if err != nil {
		return nil, err
	}
	w.pstats.Rounds = 1
	w.pstats.SampleKeys = int64(len(samples))
	gathered, err := w.gather(tagSamples, samples)
	if err != nil {
		return nil, err
	}
	// Node 0 selects the fine pivots.
	var fine []record.Key
	if id == 0 {
		var cands []record.Key
		for _, g := range gathered {
			cands = append(cands, g...)
		}
		n.ChargeCompute(int64(len(cands)) * 16)
		fine, err = sampling.OverpartitionPivots(cands, p, k)
		if err != nil {
			return nil, err
		}
	}
	fine, err = w.bcast(tagPivots, fine)
	if err != nil {
		return nil, err
	}

	// Every node counts its local sublist sizes with one scan of the
	// sorted file, then the global sizes are agreed via AllGather.
	sizes, err := w.countSublists(fine)
	if err != nil {
		return nil, err
	}
	sizeKeys, err := keysFromCounts(sizes)
	if err != nil {
		return nil, err
	}
	w.pstats.SampleKeys += int64(len(sizeKeys))
	all, err := w.allGather(tagOverSizes, sizeKeys)
	if err != nil {
		return nil, err
	}
	global := make([]int64, len(sizes))
	for i := range all {
		global[i%len(sizes)] += int64(all[i])
	}
	assign, err := sampling.AssignSublists(global, cfg.Perf)
	if err != nil {
		return nil, err
	}
	// The processor pivots are the fine pivots at the assignment cuts.
	pivots := make([]record.Key, p-1)
	cut := 0
	for proc := 0; proc < p-1; proc++ {
		cut += len(assign[proc])
		if cut-1 < len(fine) {
			pivots[proc] = fine[cut-1]
		} else {
			pivots[proc] = ^record.Key(0)
		}
	}
	return pivots, nil
}

// selectPivotsQuantile implements the QuantileSketch strategy: stream
// the sorted file through an ε-sketch, gather the compressed sketches
// on node 0 as (values, weights) pairs, merge, and answer the pivot
// quantiles from the merged sketch.
func (w *worker) selectPivotsQuantile(li int64) ([]record.Key, error) {
	n, cfg := w.n, w.cfg
	p, id := n.P(), n.ID()
	if p == 1 {
		return nil, nil
	}
	eps := cfg.QuantileEps
	if eps <= 0 {
		eps = 0.01
	}
	sk, err := quantile.New(eps)
	if err != nil {
		return nil, err
	}
	if li > 0 {
		f, err := n.FS().Open(w.sortedName())
		if err != nil {
			return nil, err
		}
		r := diskio.NewReader(f, cfg.BlockKeys, n.Acct())
		buf := make([]record.Key, cfg.BlockKeys)
		for {
			cnt, rerr := r.ReadKeys(buf)
			sk.InsertAll(buf[:cnt])
			n.ChargeCompute(int64(cnt))
			if rerr != nil || cnt == 0 {
				break
			}
		}
		if err := f.Close(); err != nil {
			return nil, err
		}
	}
	vals, weights := sk.Export()
	w.pstats.Rounds = 1
	w.pstats.SampleKeys = 2 * int64(len(vals))
	if w.hier() {
		// Sketches combine pairwise up the reduction tree: each inner
		// node merges its children's summaries into its own and forwards
		// one ε-sketch, so the root receives O(r) sketches instead of p.
		// GK merging is order-sensitive, so the pivots can differ from
		// the flat run's — the topology is an outcome parameter for this
		// strategy (both partitionings satisfy the sketch error bound,
		// and the global sorted output is identical either way).
		enc, err := encodeSketch(vals, weights)
		if err != nil {
			return nil, err
		}
		agg, err := n.TreeReduce(w.collRadix(), tagSamples, enc,
			func(acc, child []record.Key) ([]record.Key, error) {
				av, aw := decodeSketch(acc)
				cv, cw := decodeSketch(child)
				sa, err := quantile.FromExport(eps, av, aw)
				if err != nil {
					return nil, err
				}
				sc, err := quantile.FromExport(eps, cv, cw)
				if err != nil {
					return nil, err
				}
				n.ChargeCompute(int64(sa.TupleCount()+sc.TupleCount()) * 8)
				sa.Merge(sc)
				mv, mw := sa.Export()
				return encodeSketch(mv, mw)
			})
		if err != nil {
			return nil, err
		}
		var pivots []record.Key
		if id == 0 {
			rv, rw := decodeSketch(agg)
			merged, err := quantile.FromExport(eps, rv, rw)
			if err != nil {
				return nil, err
			}
			n.ChargeCompute(int64(merged.TupleCount()) * 8)
			pivots = w.quantilePivots(merged)
		}
		return w.bcast(tagPivots, pivots)
	}
	wk, err := quantile.WeightsToKeys(weights)
	if err != nil {
		return nil, err
	}
	gv, err := n.Gather(0, tagSamples, vals)
	if err != nil {
		return nil, err
	}
	gw, err := n.Gather(0, tagOverSizes, wk)
	if err != nil {
		return nil, err
	}
	var pivots []record.Key
	if id == 0 {
		merged, err := quantile.New(eps)
		if err != nil {
			return nil, err
		}
		for i := range gv {
			ws := make([]int64, len(gw[i]))
			for j, wt := range gw[i] {
				ws[j] = int64(wt)
			}
			s, err := quantile.FromExport(eps, gv[i], ws)
			if err != nil {
				return nil, fmt.Errorf("node %d sketch: %w", i, err)
			}
			merged.Merge(s)
		}
		n.ChargeCompute(int64(merged.TupleCount()) * 8)
		pivots = w.quantilePivots(merged)
	}
	return n.Bcast(0, tagPivots, pivots)
}

// quantilePivots answers the p-1 perf-weighted pivot quantiles from the
// merged sketch.
func (w *worker) quantilePivots(merged *quantile.Summary) []record.Key {
	p := w.n.P()
	sum := w.cfg.Perf.Sum()
	pivots := make([]record.Key, p-1)
	var cum int64
	for j := 0; j < p-1; j++ {
		cum += int64(w.cfg.Perf[j])
		pv, qerr := merged.Query(float64(cum) / float64(sum))
		if qerr != nil {
			// Empty global input: zero pivots are valid.
			pv = 0
		}
		pivots[j] = pv
	}
	return pivots
}

// encodeSketch flattens a sketch export into one key slice for the
// reduction tree — (value, weight) pairs interleaved.  Weights normally
// fit a Key because they never exceed the (32-bit-keyed) dataset size,
// but a wider weight is surfaced as an error rather than truncated.
func encodeSketch(vals []record.Key, weights []int64) ([]record.Key, error) {
	wk, err := quantile.WeightsToKeys(weights)
	if err != nil {
		return nil, err
	}
	out := make([]record.Key, 0, 2*len(vals))
	for i, v := range vals {
		out = append(out, v, wk[i])
	}
	return out, nil
}

// keysFromCounts converts sublist-size counters to wire keys for the
// size agreement, surfacing 32-bit overflow instead of wrapping.
func keysFromCounts(counts []int64) ([]record.Key, error) {
	out := make([]record.Key, len(counts))
	for i, c := range counts {
		if c < 0 || c > int64(^record.Key(0)) {
			return nil, fmt.Errorf("sublist size %d overflows the 32-bit wire format", c)
		}
		out[i] = record.Key(c)
	}
	return out, nil
}

func decodeSketch(enc []record.Key) ([]record.Key, []int64) {
	vals := make([]record.Key, 0, len(enc)/2)
	weights := make([]int64, 0, len(enc)/2)
	for i := 0; i+1 < len(enc); i += 2 {
		vals = append(vals, enc[i])
		weights = append(weights, int64(enc[i+1]))
	}
	return vals, weights
}

// countSublists scans the sorted file once and counts how many keys
// fall in each of the len(fine)+1 sublists.
func (w *worker) countSublists(fine []record.Key) ([]int64, error) {
	n, cfg := w.n, w.cfg
	f, err := n.FS().Open(w.sortedName())
	if err != nil {
		return nil, err
	}
	defer f.Close()
	r := diskio.NewReader(f, cfg.BlockKeys, n.Acct())
	sizes := make([]int64, len(fine)+1)
	seg := 0
	buf := make([]record.Key, cfg.BlockKeys)
	for {
		cnt, rerr := r.ReadKeys(buf)
		for _, key := range buf[:cnt] {
			for seg < len(fine) && key > fine[seg] {
				seg++
			}
			sizes[seg]++
		}
		n.ChargeCompute(int64(cnt))
		if rerr != nil || cnt == 0 {
			break
		}
	}
	return sizes, nil
}

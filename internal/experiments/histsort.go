package experiments

import (
	"fmt"

	"hetsort/internal/cluster"
	"hetsort/internal/extsort"
	"hetsort/internal/perf"
	"hetsort/internal/record"
	"hetsort/internal/stats"
)

// HistsortAblation runs the adversarial pivot-strategy ablation behind
// BENCH_histsort.json: the four hostile generators (heavy-dup, zipf-s2,
// staircase, sampler-killer) crossed with the four pivot strategies
// (regular sampling, random pivots, quantile sketch, histogram
// refinement) at p = 16 (flat), 64 and 256 (tree), on the paper's
// loaded vector repeated.  Each point records virtual time, the S(max)
// sublist expansion, the number of key-valued samples shipped through
// the step-2 collectives, and the refinement round count.
//
// The experiment is self-checking:
//
//   - every strategy's output hashes identically per (p, generator) —
//     pivot selection may move the cuts, never the sorted bytes;
//   - per generator, the histogram strategy's worst-over-p expansion
//     stays at or below regular sampling's (the refinement tolerance
//     holds where position sampling drifts);
//   - per (p, generator), the histogram strategy ships strictly fewer
//     sample keys than regular sampling — candidate broadcasts replace
//     the p*sum(perf) sample gather (which degrades to shipping whole
//     portions when they are too small for the regular spacing);
//   - the one-shot strategies report exactly one pivot round, the
//     histogram strategy at least one.
type HistsortRow struct {
	P         int    `json:"p"`
	Topology  string `json:"topology"`
	Generator string `json:"generator"`
	Strategy  string `json:"strategy"`
	// N is the total input size of the point.
	N    int64   `json:"n"`
	VSec float64 `json:"vsec"`
	// Expansion is the S(max) weighted sublist expansion.
	Expansion float64 `json:"expansion"`
	// SampleKeys counts the key-valued samples shipped through the
	// step-2 collectives (extsort.Result.PivotSampleKeys).
	SampleKeys int64 `json:"sample_keys"`
	// Rounds is the number of step-2 collective rounds.
	Rounds    int    `json:"rounds"`
	OutputSHA string `json:"output_sha256"`
}

// histsortTolerance is the refinement tolerance the ablation pins, so
// the committed baseline numbers are reproducible.
const histsortTolerance = 0.02

var histsortGenerators = []record.Distribution{
	record.HeavyDup, record.ZipfS2, record.Staircase, record.SamplerKiller,
}

var histsortStrategies = []extsort.Strategy{
	extsort.RegularSampling, extsort.RandomPivots, extsort.QuantileSketch, extsort.Histogram,
}

// HistsortString renders the rows.
func HistsortString(rows []HistsortRow) string {
	t := &stats.Table{
		Title:   "Adversarial pivot ablation: histogram refinement vs one-shot strategies, {1,1,4,4} repeated",
		Headers: []string{"p", "topo", "generator", "strategy", "vsec", "S(max)", "samples", "rounds", "output sha256"},
	}
	for _, r := range rows {
		t.AddRow(fmt.Sprintf("%d", r.P), r.Topology, r.Generator, r.Strategy,
			fmt.Sprintf("%.4f", r.VSec), fmt.Sprintf("%.4f", r.Expansion),
			fmt.Sprintf("%d", r.SampleKeys), fmt.Sprintf("%d", r.Rounds), r.OutputSHA[:12])
	}
	return t.String()
}

// HistsortAblation runs the sweep and enforces the gates.
func HistsortAblation(o Options) ([]HistsortRow, error) {
	o = o.withDefaults()
	// The fixed small machine of the scaling sweep: the ablation scales
	// p and the input shape, not the per-node machine.
	block, mem, tapes, msg := 64, 4096, 4, 1024
	points := []struct {
		p     int
		topo  extsort.Topology
		radix int
	}{
		{16, extsort.TopologyFlat, 0},
		{64, extsort.TopologyTree, 4},
		{256, extsort.TopologyTree, 4},
	}
	var rows []HistsortRow
	// worst[gen][strategy] tracks the worst-over-p expansion.
	worst := map[string]map[string]float64{}
	for _, pt := range points {
		v := make(perf.Vector, 0, pt.p)
		for len(v) < pt.p {
			v = append(v, PaperVector...)
		}
		n := v.NearestValidSize(int64(512 * pt.p))
		for _, gen := range histsortGenerators {
			var genRows []HistsortRow
			for _, strat := range histsortStrategies {
				c, err := cluster.New(cluster.Config{
					Slowdowns: v.Slowdowns(),
					Net:       cluster.FastEthernet(),
					BlockKeys: block,
				})
				if err != nil {
					return nil, err
				}
				sum, err := extsort.DistributeInput(c, v, gen, n, o.Seed, block, "input")
				if err != nil {
					return nil, fmt.Errorf("histsort p=%d %s %s: %w", pt.p, gen, strat, err)
				}
				cfg := extsort.Config{
					Perf: v, BlockKeys: block, MemoryKeys: mem, Tapes: tapes,
					MessageKeys: msg, Topology: pt.topo, Radix: pt.radix,
					Strategy: strat, HistTolerance: histsortTolerance,
				}
				res, err := extsort.Sort(c, cfg, "input", "output")
				if err != nil {
					return nil, fmt.Errorf("histsort p=%d %s %s: %w", pt.p, gen, strat, err)
				}
				if err := extsort.VerifyOutput(c, "output", block, sum); err != nil {
					return nil, fmt.Errorf("histsort p=%d %s %s verify: %w", pt.p, gen, strat, err)
				}
				sha, err := clusterOutputSHA(c, block)
				if err != nil {
					return nil, err
				}
				row := HistsortRow{
					P: pt.p, Topology: topoName(pt.topo), Generator: gen.String(),
					Strategy: strat.String(), N: n, VSec: res.Time,
					Expansion: res.SublistExpansion(v), SampleKeys: res.PivotSampleKeys,
					Rounds: res.PivotRounds, OutputSHA: sha,
				}
				genRows = append(genRows, row)
				if worst[row.Generator] == nil {
					worst[row.Generator] = map[string]float64{}
				}
				if row.Expansion > worst[row.Generator][row.Strategy] {
					worst[row.Generator][row.Strategy] = row.Expansion
				}
			}
			if err := gateHistsortPoint(genRows); err != nil {
				return nil, err
			}
			rows = append(rows, genRows...)
		}
	}
	// Worst-over-p expansion gate: refinement must hold the balance at
	// least as well as position sampling on every hostile generator.
	for _, gen := range histsortGenerators {
		hist := worst[gen.String()][extsort.Histogram.String()]
		reg := worst[gen.String()][extsort.RegularSampling.String()]
		if hist > reg+1e-9 {
			return nil, fmt.Errorf("histsort: %s worst-case expansion %.6f exceeds regular sampling's %.6f",
				gen, hist, reg)
		}
	}
	return rows, nil
}

// gateHistsortPoint enforces the per-(p, generator) gates over one
// strategy sweep.
func gateHistsortPoint(rows []HistsortRow) error {
	byStrat := map[string]HistsortRow{}
	for _, r := range rows {
		byStrat[r.Strategy] = r
		if r.OutputSHA != rows[0].OutputSHA {
			return fmt.Errorf("histsort p=%d %s: %s output hash %s differs from %s's %s",
				r.P, r.Generator, r.Strategy, r.OutputSHA[:12], rows[0].Strategy, rows[0].OutputSHA[:12])
		}
	}
	hist := byStrat[extsort.Histogram.String()]
	reg := byStrat[extsort.RegularSampling.String()]
	if hist.SampleKeys >= reg.SampleKeys {
		return fmt.Errorf("histsort p=%d %s: histogram shipped %d sample keys, not fewer than regular sampling's %d",
			hist.P, hist.Generator, hist.SampleKeys, reg.SampleKeys)
	}
	if hist.Rounds < 1 {
		return fmt.Errorf("histsort p=%d %s: histogram reports %d rounds", hist.P, hist.Generator, hist.Rounds)
	}
	for _, r := range rows {
		if r.Strategy != hist.Strategy && r.Rounds != 1 {
			return fmt.Errorf("histsort p=%d %s: one-shot strategy %s reports %d rounds",
				r.P, r.Generator, r.Strategy, r.Rounds)
		}
	}
	return nil
}

func topoName(t extsort.Topology) string {
	switch t {
	case extsort.TopologyTree:
		return "tree"
	case extsort.TopologyGrid:
		return "grid"
	default:
		return "flat"
	}
}

package extsort

import (
	"testing"

	"hetsort/internal/cluster"
	"hetsort/internal/diskio"
	"hetsort/internal/perf"
	"hetsort/internal/record"
)

func TestHistogramStrategySortsAndBalances(t *testing.T) {
	for _, v := range []perf.Vector{perf.Homogeneous(4), {1, 1, 4, 4}} {
		t.Run(v.String(), func(t *testing.T) {
			c := newCluster(t, v)
			cfg := testConfig(v)
			cfg.Strategy = Histogram
			res := runSort(t, c, v, cfg, record.Uniform, v.NearestValidSize(40000), 17)
			// Refinement stops once every pivot rank is within
			// tol = 5% of the smallest share, so the expansion must
			// sit inside that band (plus the rare-duplicate slack).
			if exp := res.SublistExpansion(v); exp > 1.10 {
				t.Fatalf("histogram expansion %v outside the tolerance band", exp)
			}
			if res.PivotRounds < 1 {
				t.Fatalf("histogram reports %d refinement rounds", res.PivotRounds)
			}
			if res.PivotSampleKeys <= 0 {
				t.Fatalf("histogram reports %d sample keys", res.PivotSampleKeys)
			}
		})
	}
}

func TestHistogramAllDistributions(t *testing.T) {
	v := perf.Vector{1, 2}
	for _, d := range record.Distributions() {
		t.Run(d.String(), func(t *testing.T) {
			c := newCluster(t, v)
			cfg := testConfig(v)
			cfg.Strategy = Histogram
			runSort(t, c, v, cfg, d, v.NearestValidSize(12000), 23)
		})
	}
}

func TestHistogramShipsFewerSamplesThanRegular(t *testing.T) {
	// The point of the strategy: candidate broadcasts replace the
	// p*sum(perf) regular samples, so the key-valued sample volume
	// must shrink even after paying for every refinement round.
	v := perf.Vector{1, 1, 4, 4, 1, 1, 4, 4, 1, 1, 4, 4, 1, 1, 4, 4}
	n := v.NearestValidSize(64000)
	run := func(s Strategy) *Result {
		c := newCluster(t, v)
		cfg := testConfig(v)
		cfg.Strategy = s
		return runSort(t, c, v, cfg, record.Uniform, n, 29)
	}
	reg := run(RegularSampling)
	hist := run(Histogram)
	if hist.PivotSampleKeys >= reg.PivotSampleKeys {
		t.Fatalf("histogram shipped %d sample keys, regular sampling %d",
			hist.PivotSampleKeys, reg.PivotSampleKeys)
	}
	if reg.PivotRounds != 1 {
		t.Fatalf("regular sampling reports %d rounds", reg.PivotRounds)
	}
	if hist.PivotRounds < 1 {
		t.Fatalf("histogram reports %d rounds", hist.PivotRounds)
	}
}

func TestHistogramPivotsAgreeAcrossTopologies(t *testing.T) {
	// The count combiner is plain int64 addition, so flat gathers,
	// tree reductions and grid reductions must agree bit-for-bit on
	// every round's aggregated histogram — and therefore on the
	// final pivots.
	v := perf.Vector{1, 1, 2, 2, 4, 4, 1, 2}
	n := v.NearestValidSize(30000)
	run := func(topo Topology) []record.Key {
		c := newCluster(t, v)
		cfg := testConfig(v)
		cfg.Strategy = Histogram
		cfg.Topology = topo
		res := runSort(t, c, v, cfg, record.Zipf, n, 31)
		return res.Pivots
	}
	flat := run(TopologyFlat)
	tree := run(TopologyTree)
	grid := run(TopologyGrid)
	if len(flat) != len(tree) || len(flat) != len(grid) {
		t.Fatalf("pivot counts differ: flat %d tree %d grid %d",
			len(flat), len(tree), len(grid))
	}
	for i := range flat {
		if flat[i] != tree[i] || flat[i] != grid[i] {
			t.Fatalf("pivot %d differs across topologies: flat %d tree %d grid %d",
				i, flat[i], tree[i], grid[i])
		}
	}
}

func TestHistogramDegenerateInputs(t *testing.T) {
	// The same degenerate shapes the other strategies are tested on:
	// empty input, a single key, fewer keys than nodes, and
	// all-duplicates (where refinement cannot shrink any interval and
	// must fall back to midpoint subdivision, then collapse).
	v := perf.Vector{1, 1, 2, 2}
	write := func(t *testing.T, c *cluster.Cluster, cfg Config, parts [][]record.Key) record.Checksum {
		t.Helper()
		var all []record.Key
		for i, part := range parts {
			if err := diskio.WriteFile(c.Node(i).FS(), "input", part, cfg.BlockKeys, diskio.Accounting{}); err != nil {
				t.Fatal(err)
			}
			all = append(all, part...)
		}
		return record.ChecksumOf(all)
	}
	cases := []struct {
		name  string
		parts func() [][]record.Key
	}{
		{"empty", func() [][]record.Key {
			return [][]record.Key{nil, nil, nil, nil}
		}},
		{"single-key", func() [][]record.Key {
			return [][]record.Key{{7}, nil, nil, nil}
		}},
		{"fewer-keys-than-nodes", func() [][]record.Key {
			return [][]record.Key{{9}, {3}, nil, nil}
		}},
		{"all-duplicates", func() [][]record.Key {
			parts := make([][]record.Key, 4)
			for i := range parts {
				keys := make([]record.Key, 2048)
				for j := range keys {
					keys[j] = 42
				}
				parts[i] = keys
			}
			return parts
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := newCluster(t, v)
			cfg := testConfig(v)
			cfg.Strategy = Histogram
			parts := tc.parts()
			sum := write(t, c, cfg, parts)
			res, err := Sort(c, cfg, "input", "output")
			if err != nil {
				t.Fatal(err)
			}
			if err := VerifyOutput(c, "output", cfg.BlockKeys, sum); err != nil {
				t.Fatal(err)
			}
			var want, got int64
			for _, part := range parts {
				want += int64(len(part))
			}
			for _, s := range res.PartitionSizes {
				got += s
			}
			if got != want {
				t.Fatalf("output holds %d keys, input had %d", got, want)
			}
		})
	}
}

func TestHistogramCrashResumeByteIdentical(t *testing.T) {
	// Crash+resume must replay the recorded pivots rather than
	// re-refine, so the resumed output is byte-identical to an
	// uninterrupted histogram run.
	v := perf.Vector{1, 1, 4, 4}
	n := v.NearestValidSize(1 << 14)
	base := testConfig(v)
	base.Strategy = Histogram
	base.Checkpoint = true
	const seed = 43

	refC := newCluster(t, v)
	refSum, err := DistributeInput(refC, v, record.Zipf, n, seed, base.BlockKeys, "input")
	if err != nil {
		t.Fatal(err)
	}
	refCfg := base
	refCfg.InputSum = refSum
	if _, err := Sort(refC, refCfg, "input", "output"); err != nil {
		t.Fatal(err)
	}
	want := collectOutput(t, refC, base.BlockKeys)

	points := []string{StepNames[1], "committed:" + StepNames[1], StepNames[3]}
	for pi, point := range points {
		point := point
		crashNode := pi % len(v)
		t.Run(point, func(t *testing.T) {
			c := newCluster(t, v)
			sum, err := DistributeInput(c, v, record.Zipf, n, seed, base.BlockKeys, "input")
			if err != nil {
				t.Fatal(err)
			}
			cfg := base
			cfg.InputSum = sum
			if err := c.ScheduleCrash(crashNode, -1, point); err != nil {
				t.Fatal(err)
			}
			if _, err := Sort(c, cfg, "input", "output"); !cluster.IsCrash(err) {
				t.Fatalf("crash at %q did not surface: %v", point, err)
			}
			if _, _, err := Resume(c, cfg, "input", "output"); err != nil {
				t.Fatalf("resume after crash at %q: %v", point, err)
			}
			if err := VerifyOutput(c, "output", cfg.BlockKeys, sum); err != nil {
				t.Fatalf("resumed output: %v", err)
			}
			out := collectOutput(t, c, cfg.BlockKeys)
			if len(out) != len(want) {
				t.Fatalf("resumed output has %d keys, reference %d", len(out), len(want))
			}
			for i := range out {
				if out[i] != want[i] {
					t.Fatalf("resumed output diverges at key %d: %d != %d", i, out[i], want[i])
				}
			}
		})
	}
}

func TestTinyPortionsAtWideScaleFallBack(t *testing.T) {
	// p=1024 with two keys per node: the regular-sampling spacing is
	// zero on every node, so step 2 must take the sample-everything
	// fallback (gated on the structured SpacingError) and still sort.
	if testing.Short() {
		t.Skip("p=1024 run in -short mode")
	}
	v := perf.Homogeneous(1024)
	for _, strat := range []Strategy{RegularSampling, Histogram} {
		t.Run(strat.String(), func(t *testing.T) {
			c := newCluster(t, v)
			cfg := testConfig(v)
			cfg.Strategy = strat
			cfg.Topology = TopologyTree
			runSort(t, c, v, cfg, record.Uniform, 2048, 37)
		})
	}
}

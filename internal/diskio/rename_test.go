package diskio

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"hetsort/internal/record"
)

func TestRenameBothBackends(t *testing.T) {
	for name, mk := range fsFactories(t) {
		t.Run(name, func(t *testing.T) {
			fs := mk()
			keys := []record.Key{9, 8, 7}
			if err := WriteFile(fs, "old", keys, 4, Accounting{}); err != nil {
				t.Fatal(err)
			}
			if err := fs.Rename("old", "new"); err != nil {
				t.Fatal(err)
			}
			if _, err := fs.Open("old"); err == nil {
				t.Fatal("old name still opens")
			}
			got, err := ReadFileAll(fs, "new", 4, Accounting{})
			if err != nil || len(got) != 3 || got[0] != 9 {
				t.Fatalf("renamed content: %v %v", got, err)
			}
		})
	}
}

func TestRenameReplacesTarget(t *testing.T) {
	for name, mk := range fsFactories(t) {
		t.Run(name, func(t *testing.T) {
			fs := mk()
			WriteFile(fs, "a", []record.Key{1}, 4, Accounting{})
			WriteFile(fs, "b", []record.Key{2, 2}, 4, Accounting{})
			if err := fs.Rename("a", "b"); err != nil {
				t.Fatal(err)
			}
			got, _ := ReadFileAll(fs, "b", 4, Accounting{})
			if len(got) != 1 || got[0] != 1 {
				t.Fatalf("target not replaced: %v", got)
			}
		})
	}
}

func TestRenameMissingSource(t *testing.T) {
	fs := NewMemFS()
	if err := fs.Rename("ghost", "x"); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("want ErrNotExist, got %v", err)
	}
	d, err := NewDirFS(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Rename("ghost", "x"); err == nil {
		t.Fatal("DirFS rename of missing source accepted")
	}
}

func TestRenameChargesNoIO(t *testing.T) {
	// Rename must be a metadata operation: the tests in polyphase rely
	// on it not inflating the PDM I/O counts.
	fs := NewMemFS()
	WriteFile(fs, "a", make([]record.Key, 100), 8, Accounting{})
	if err := fs.Rename("a", "b"); err != nil {
		t.Fatal(err)
	}
	// Nothing to assert on a Counter because Rename takes none — the
	// signature itself guarantees it.  Assert content integrity.
	n, err := CountKeys(fs, "b")
	if err != nil || n != 100 {
		t.Fatalf("CountKeys=%d,%v", n, err)
	}
}

func TestFaultFSRenameBudget(t *testing.T) {
	ffs := NewFaultFS(NewMemFS(), 0)
	if err := ffs.Rename("a", "b"); !errors.Is(err, ErrInjected) {
		t.Fatalf("want ErrInjected, got %v", err)
	}
}

func TestDirFSRenameIntoSubdir(t *testing.T) {
	d, err := NewDirFS(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteFile(d, "f", []record.Key{5}, 4, Accounting{}); err != nil {
		t.Fatal(err)
	}
	if err := d.Rename("f", "sub/dir/f"); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFileAll(d, "sub/dir/f", 4, Accounting{})
	if err != nil || len(got) != 1 {
		t.Fatalf("%v %v", got, err)
	}
}

func TestDirFSRenameRejectsEscape(t *testing.T) {
	d, err := NewDirFS(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	WriteFile(d, "f", []record.Key{5}, 4, Accounting{})
	if err := d.Rename("f", "../escape"); err == nil {
		t.Fatal("escaping rename accepted")
	}
	if err := d.Rename("../escape", "f"); err == nil {
		t.Fatal("escaping source accepted")
	}
}

func TestDirFSRenameSyncsParentDirs(t *testing.T) {
	// Regression: an "atomic" manifest commit is only durable once the
	// parent directory's entry change is fsynced — os.Rename alone can
	// be lost on crash.  Rename must sync the destination's parent and,
	// for cross-directory renames, the source's parent too.
	orig := SyncDir
	defer func() { SyncDir = orig }()
	var synced []string
	SyncDir = func(dir string) error {
		synced = append(synced, dir)
		return nil
	}

	root := t.TempDir()
	d, err := NewDirFS(root)
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteFile(d, "m.tmp", []record.Key{1}, 4, Accounting{}); err != nil {
		t.Fatal(err)
	}
	if err := d.Rename("m.tmp", "m"); err != nil {
		t.Fatal(err)
	}
	if len(synced) != 1 || synced[0] != root {
		t.Fatalf("same-dir rename synced %v, want just [%s]", synced, root)
	}

	synced = nil
	if err := d.Rename("m", "sub/m"); err != nil {
		t.Fatal(err)
	}
	if len(synced) != 2 {
		t.Fatalf("cross-dir rename synced %v, want destination and source parents", synced)
	}
	wantDst := filepath.Join(root, "sub")
	if synced[0] != wantDst || synced[1] != root {
		t.Fatalf("cross-dir rename synced %v, want [%s %s]", synced, wantDst, root)
	}
}

func TestSyncDirDefaultWorks(t *testing.T) {
	// The real hook must fsync an actual directory without error.
	if err := SyncDir(t.TempDir()); err != nil {
		t.Fatal(err)
	}
	if err := SyncDir(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Fatal("syncing a missing directory should fail")
	}
}

// Package vtime defines the virtual-time accounting interface shared by
// the disk layer, the sequential sorts and the simulated cluster.
//
// The reproduction replaces the paper's wall-clock measurements on a real
// Alpha cluster with deterministic virtual time: every elementary unit of
// work (a comparison/move, a block transfer, a seek) is charged to a
// Meter, and the cluster's nodes advance their clocks by the charged cost
// scaled by the node's load factor.  This mirrors the paper's model of
// heterogeneity — "processors of the homogeneous cluster are loaded
// differently but the initial loads stay constant during the experiment".
package vtime

// Meter receives work charges.  Implementations decide how charges map
// to time (the cluster node multiplies by its cost model and slowdown).
type Meter interface {
	// ChargeCompute charges n elementary CPU operations (comparisons,
	// moves, heap adjustments).
	ChargeCompute(n int64)
	// ChargeIOBlocks charges the transfer of n disk blocks.
	ChargeIOBlocks(n int64)
	// ChargeSeek charges n random disk repositionings.
	ChargeSeek(n int64)
}

// Nop discards all charges.  Useful in tests and for callers that only
// want I/O counts.
type Nop struct{}

// ChargeCompute implements Meter.
func (Nop) ChargeCompute(int64) {}

// ChargeIOBlocks implements Meter.
func (Nop) ChargeIOBlocks(int64) {}

// ChargeSeek implements Meter.
func (Nop) ChargeSeek(int64) {}

// CostModel converts work units into virtual seconds.  The defaults are
// calibrated (see DefaultCostModel) so that a speed-1 node external-sorts
// 2^21 integers in roughly the 23 virtual seconds the paper's fastest
// node (helmvige) needed, which keeps reproduced tables directly
// comparable to the paper's.
type CostModel struct {
	// ComputeSec is the cost of one elementary CPU operation.
	ComputeSec float64
	// IOBlockSecPerKey is the transfer cost per key in a block
	// (so a block of B keys costs B*IOBlockSecPerKey).
	IOBlockSecPerKey float64
	// SeekSec is the cost of one random repositioning.
	SeekSec float64
}

// DefaultCostModel returns the calibrated cost model.  Calibration
// rationale: sorting 2^21 keys with polyphase merge sort does about
// 2^21*21 ≈ 44e6 comparisons plus ~3 read+write passes over 8 MiB.
// Year-2000 hardware in the paper needed ≈23 s for this; splitting that
// roughly 40/60 between compute and I/O gives the constants below.
func DefaultCostModel() CostModel {
	return CostModel{
		ComputeSec:       1.6e-7, // ≈6M elementary ops per second
		IOBlockSecPerKey: 9.0e-7, // ≈4.4 MB/s effective disk streaming
		SeekSec:          8.0e-3, // 8 ms per random seek
	}
}

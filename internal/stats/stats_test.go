package stats

import (
	"errors"
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("empty mean")
	}
	if got := Mean([]float64{1, 2, 3}); got != 2 {
		t.Errorf("Mean=%v", got)
	}
}

func TestStdDev(t *testing.T) {
	if StdDev([]float64{5}) != 0 {
		t.Error("single-sample stddev")
	}
	got := StdDev([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if math.Abs(got-2.13809) > 1e-4 {
		t.Errorf("StdDev=%v", got)
	}
}

func TestStdDevNonNegativeProperty(t *testing.T) {
	f := func(xs []float64) bool {
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e100 {
				return true
			}
		}
		return StdDev(xs) >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMinMax(t *testing.T) {
	min, max := MinMax([]float64{3, -1, 7, 2})
	if min != -1 || max != 7 {
		t.Fatalf("MinMax=%v,%v", min, max)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on empty")
		}
	}()
	MinMax(nil)
}

func TestSummarize(t *testing.T) {
	s, err := Summarize([]float64{1, 3})
	if err != nil {
		t.Fatal(err)
	}
	if s.Trials != 2 || s.Mean != 2 || s.Min != 1 || s.Max != 3 {
		t.Fatalf("summary %+v", s)
	}
	if _, err := Summarize(nil); err == nil {
		t.Fatal("empty summarize accepted")
	}
	if !strings.Contains(s.String(), "n=2") {
		t.Fatalf("String=%q", s.String())
	}
}

func TestRepeat(t *testing.T) {
	s, err := Repeat(5, func(i int) (float64, error) { return float64(i), nil })
	if err != nil {
		t.Fatal(err)
	}
	if s.Trials != 5 || s.Mean != 2 {
		t.Fatalf("%+v", s)
	}
	boom := errors.New("boom")
	if _, err := Repeat(3, func(i int) (float64, error) {
		if i == 1 {
			return 0, boom
		}
		return 0, nil
	}); !errors.Is(err, boom) {
		t.Fatalf("err=%v", err)
	}
	if _, err := Repeat(0, nil); err == nil {
		t.Fatal("zero trials accepted")
	}
}

func TestTableRendering(t *testing.T) {
	tb := &Table{Title: "Table X", Headers: []string{"Input", "Time (s)"}}
	tb.AddRow(2097152, 22.92146)
	tb.AddRow(4194304, 51.17832)
	out := tb.String()
	if !strings.Contains(out, "Table X") || !strings.Contains(out, "2097152") {
		t.Fatalf("render:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title, header, rule, two data rows
		t.Fatalf("want 5 lines, got %d:\n%s", len(lines), out)
	}
	// Columns aligned: both data lines same length.
	if len(lines[3]) != len(lines[4]) {
		t.Fatalf("misaligned rows:\n%s", out)
	}
}

package experiments

import "testing"

// TestFullScaleCalibrationPoint pins the virtual-time calibration: at
// the paper's actual 2^21-integer size, a speed-1 node should land near
// helmvige's 22.92 s and a loaded node near rossweisse's 95.40 s.
func TestFullScaleCalibrationPoint(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale point skipped in -short mode")
	}
	o := Options{Trials: 1}.withDefaults()
	fast, err := sequentialSortTime(o, 1, 1<<21, 42)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("speed-1 node, 2^21 keys: %.2f virtual s (paper helmvige: 22.92)", fast)
	if fast < 15 || fast > 35 {
		t.Fatalf("calibration drifted: %.2f s, paper 22.92 s", fast)
	}
	slow, err := sequentialSortTime(o, 4, 1<<21, 42)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("loaded node, 2^21 keys: %.2f virtual s (paper rossweisse: 95.40)", slow)
	if r := slow / fast; r < 3.9 || r > 4.1 {
		t.Fatalf("load ratio %.2f, expected 4", r)
	}
}

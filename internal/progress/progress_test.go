// External test package: the tests drive whole sorts through the
// hetsort facade (which itself imports progress), so an internal test
// package would be an import cycle.
package progress_test

import (
	"path/filepath"
	"strings"
	"testing"

	"hetsort"
	"hetsort/internal/pdm"
	"hetsort/internal/progress"
	"hetsort/internal/record"
)

func genKeys(n int, seed int64, parts int) []hetsort.Key {
	d, err := record.ParseDistribution("uniform")
	if err != nil {
		panic(err)
	}
	return d.Generate(n, seed, parts)
}

// baseConfig is a small 4-node machine every test starts from.
func baseConfig() hetsort.Config {
	return hetsort.Config{
		Perf:        []int{1, 1, 1, 1},
		BlockKeys:   64,
		MemoryKeys:  1024,
		Tapes:       4,
		MessageKeys: 512,
	}
}

// TestStragglerDetectsSlowNode is the acceptance scenario: a declared
// 1:1:1:1 cluster where node 0's machine is actually 3x slower must
// rank node 0 first and classify it as a slow node, deterministically.
func TestStragglerDetectsSlowNode(t *testing.T) {
	cfg := baseConfig()
	cfg.Loads = []float64{3, 1, 1, 1}
	keys := genKeys(16384, 7, len(cfg.Perf))
	_, rep, err := hetsort.Sort(keys, cfg)
	if err != nil {
		t.Fatal(err)
	}
	sr, err := rep.Stragglers()
	if err != nil {
		t.Fatal(err)
	}
	if sr.Flagged == 0 {
		t.Fatalf("stretched node not flagged:\n%s", sr)
	}
	top := sr.Ranked[0]
	if top.Node != 0 {
		t.Fatalf("node %d ranked first, want the stretched node 0:\n%s", top.Node, sr)
	}
	if top.Kind != progress.KindSlowNode {
		t.Fatalf("node 0 classified %q, want %q:\n%s", top.Kind, progress.KindSlowNode, sr)
	}
	for _, d := range sr.Ranked[1:] {
		if d.Kind == progress.KindSlowNode {
			t.Errorf("node %d also classified slow-node (ratio %.2f); only node 0 is stretched:\n%s",
				d.Node, d.Ratio, sr)
		}
	}
}

// TestAnalyzeOverloadedPartition checks the other diagnosis: a node
// whose machine runs at declared speed but whose partition blew past
// its perf share reads as an overloaded partition, not a slow node.
func TestAnalyzeOverloadedPartition(t *testing.T) {
	mk := func(blocks int64) pdm.IOStats { return pdm.IOStats{Reads: blocks, Writes: blocks} }
	st := progress.RunStats{
		Perf: []int{1, 1, 1, 1},
		// Busy time proportional to work done: observed speeds all equal.
		Busy:           []float64{2, 1, 1, 1},
		IO:             []pdm.IOStats{mk(200), mk(100), mk(100), mk(100)},
		PartitionSizes: []int64{2000, 666, 667, 667},
	}
	sr, err := progress.Analyze(st)
	if err != nil {
		t.Fatal(err)
	}
	top := sr.Ranked[0]
	if top.Node != 0 || top.Kind != progress.KindOverloadedPartition {
		t.Fatalf("got node %d kind %q first, want node 0 %q:\n%s",
			top.Node, top.Kind, progress.KindOverloadedPartition, sr)
	}
}

// reconcile asserts a final snapshot against its run's report: done,
// internally consistent, and byte-exact against the PDM counters.
func reconcile(t *testing.T, s *progress.Snapshot, rep *hetsort.Report, blockKeys int) {
	t.Helper()
	if s == nil {
		t.Fatal("nil final snapshot")
	}
	if !s.Done {
		t.Fatal("final snapshot not marked done")
	}
	if len(s.Nodes) != len(rep.NodeIO) {
		t.Fatalf("snapshot has %d nodes, report %d", len(s.Nodes), len(rep.NodeIO))
	}
	for i := range s.Nodes {
		np := &s.Nodes[i]
		if np.IO != rep.NodeIO[i] {
			t.Errorf("node %d: snapshot IO %+v != report PDM counters %+v", i, np.IO, rep.NodeIO[i])
		}
		var sum pdm.IOStats
		for _, cell := range np.StepIO {
			sum = sum.Add(cell)
		}
		if sum != np.IO {
			t.Errorf("node %d: IO %+v != sum of step cells %+v", i, np.IO, sum)
		}
		if want := np.IO.Total() * int64(blockKeys); np.KeysMoved != want {
			t.Errorf("node %d: KeysMoved %d != Total()*B = %d", i, np.KeysMoved, want)
		}
	}
}

// TestSnapshotReconcilesAcrossTopologies runs the tree and grid
// redistribution variants and demands the same exact reconciliation
// the flat path gives.
func TestSnapshotReconcilesAcrossTopologies(t *testing.T) {
	for _, tc := range []struct {
		name, topo string
		radix      int
	}{
		{"flat", hetsort.TopologyFlat, 0},
		{"tree", hetsort.TopologyTree, 2},
		{"grid", hetsort.TopologyGrid, 0},
	} {
		t.Run(tc.name, func(t *testing.T) {
			cfg := baseConfig()
			cfg.Topology, cfg.Radix = tc.topo, tc.radix
			tr := hetsort.NewProgressTracker()
			cfg.Progress = tr
			if tr.Snapshot() != nil {
				t.Fatal("unbound tracker returned a snapshot")
			}
			keys := genKeys(8192, 11, len(cfg.Perf))
			_, rep, err := hetsort.Sort(keys, cfg)
			if err != nil {
				t.Fatal(err)
			}
			s := tr.Snapshot()
			reconcile(t, s, rep, cfg.BlockKeys)
			if s.Run != 1 {
				t.Errorf("run generation %d, want 1", s.Run)
			}
		})
	}
}

// TestCrashResumeProgress threads ONE tracker through a crash and the
// resume, as the check harness and hetsortd recovery do: sequence
// numbers stay monotonic across the boundary, the run generation
// bumps, and the final totals equal the resumed report's counters
// exactly — committed phases are never double-counted.
func TestCrashResumeProgress(t *testing.T) {
	dir := t.TempDir()
	cfg := baseConfig()
	cfg.WorkDir = filepath.Join(dir, "disks")
	cfg.Checkpoint = hetsort.CheckpointConfig{Enabled: true, CrashPhase: 4, CrashNode: 2}
	tr := hetsort.NewProgressTracker()
	cfg.Progress = tr

	keys := genKeys(8192, 13, len(cfg.Perf))
	_, _, err := hetsort.Sort(keys, cfg)
	if err == nil {
		t.Fatal("injected crash did not fire")
	}
	if !hetsort.IsCrash(err) {
		t.Fatalf("expected a crash, got: %v", err)
	}
	crashed := tr.Snapshot()
	if crashed == nil || crashed.Run != 1 {
		t.Fatalf("post-crash snapshot %+v, want run generation 1", crashed)
	}
	if crashed.Done {
		t.Fatal("crashed run marked done")
	}

	cfg.Checkpoint = hetsort.CheckpointConfig{Enabled: true}
	rep, err := hetsort.Resume(filepath.Join(dir, "resumed.u32"), cfg)
	if err != nil {
		t.Fatal(err)
	}
	final := tr.Snapshot()
	reconcile(t, final, rep, cfg.BlockKeys)
	if final.Run != 2 {
		t.Errorf("run generation %d after resume, want 2", final.Run)
	}
	if final.Seq <= crashed.Seq {
		t.Errorf("seq %d after resume not beyond pre-resume seq %d", final.Seq, crashed.Seq)
	}
	// The crashed attempt got as far as phase 4 before dying; a resume
	// that re-counted its committed phases would show more step-1 I/O
	// than the report — reconcile() above already proved it does not.
}

// TestTableRenders sanity-checks the -progress text table.
func TestTableRenders(t *testing.T) {
	cfg := baseConfig()
	tr := hetsort.NewProgressTracker()
	cfg.Progress = tr
	if _, _, err := hetsort.Sort(genKeys(4096, 17, len(cfg.Perf)), cfg); err != nil {
		t.Fatal(err)
	}
	table := tr.Snapshot().Table()
	for _, want := range []string{"node", "step", "done", "t="} {
		if !strings.Contains(table, want) {
			t.Errorf("table missing %q:\n%s", want, table)
		}
	}
}

package polyphase

import (
	"fmt"
	"io"
	"slices"

	"hetsort/internal/diskio"
	"hetsort/internal/record"
	"hetsort/internal/vtime"
)

// RunFormation selects how initial sorted runs are produced.
type RunFormation int

const (
	// ReplacementSelection streams the input through a selection heap
	// of MemoryKeys entries, producing runs that average twice the
	// memory size on random input (Knuth §5.4.1).  This is the classic
	// tape-era technique and the package default.
	ReplacementSelection RunFormation = iota
	// LoadSort reads memory-sized loads and sorts each in core ("each
	// memory load is sorted into a single run", paper §2), producing
	// runs of exactly MemoryKeys keys.
	LoadSort
	// Guidesort sorts memory loads like LoadSort but keeps a one-key
	// "guide" — the largest key emitted so far — and extends the current
	// run across load boundaries whenever the next sorted load starts at
	// or above it.  One comparison per load replaces replacement
	// selection's per-key heap traffic, giving a PDM-optimal single pass
	// that still exploits presortedness (Guidesort's pass structure).
	Guidesort
)

func (rf RunFormation) String() string {
	switch rf {
	case ReplacementSelection:
		return "replacement-selection"
	case Guidesort:
		return "guidesort"
	default:
		return "load-sort"
	}
}

// runSink receives each formed run: length in keys, and the keys are
// delivered through the provided writer callback sequence.
type runSink interface {
	// beginRun announces a new run; subsequent emit calls belong to it
	// until endRun.
	beginRun() error
	emit(k record.Key) error
	endRun() error
}

// formRuns reads the whole input file and emits sorted runs to sink.
// memoryKeys bounds the in-core working set.  Returns the number of runs
// and keys processed.
func formRuns(
	fs diskio.FS, inputName string, blockKeys, memoryKeys int,
	how RunFormation, acct diskio.Accounting, ov diskio.Overlap, sink runSink,
) (runs int64, keys int64, err error) {
	in, err := fs.Open(inputName)
	if err != nil {
		return 0, 0, fmt.Errorf("polyphase: opening input: %w", err)
	}
	defer in.Close()
	r := diskio.NewBlockReader(in, blockKeys, acct, ov)
	defer r.Release() // joins any prefetch goroutine before in closes
	meter := acct.Meter
	if meter == nil {
		meter = vtime.Nop{}
	}
	switch how {
	case ReplacementSelection:
		return formRunsReplacement(r, memoryKeys, meter, sink)
	case LoadSort:
		return formRunsLoadSort(r, memoryKeys, meter, sink)
	case Guidesort:
		return formRunsGuidesort(r, memoryKeys, meter, sink)
	default:
		return 0, 0, fmt.Errorf("polyphase: unknown run formation %d", how)
	}
}

func formRunsReplacement(r diskio.BlockReader, memoryKeys int, meter vtime.Meter, sink runSink) (int64, int64, error) {
	h := newSelectionHeap(memoryKeys, meter)
	var total int64
	// Prime the heap.
	for h.len() < memoryKeys {
		k, err := r.ReadKey()
		if err == io.EOF {
			break
		}
		if err != nil {
			return 0, 0, err
		}
		h.push(selectionItem{key: k, run: 0})
		total++
	}
	if h.len() == 0 {
		return 0, 0, nil
	}
	var runs int64
	current := int64(0)
	inRun := false
	var lastOut record.Key
	for h.len() > 0 {
		it := h.peek()
		if it.run != current {
			// Current run exhausted; start the next one.
			if inRun {
				if err := sink.endRun(); err != nil {
					return runs, total, err
				}
				inRun = false
			}
			current = it.run
		}
		if !inRun {
			if err := sink.beginRun(); err != nil {
				return runs, total, err
			}
			runs++
			inRun = true
		}
		if err := sink.emit(it.key); err != nil {
			return runs, total, err
		}
		lastOut = it.key
		// Refill from input: a key >= lastOut can extend the current
		// run; a smaller key is demoted to the next run.
		next, err := r.ReadKey()
		switch err {
		case nil:
			total++
			meter.ChargeCompute(1)
			if next >= lastOut {
				h.replaceTop(selectionItem{key: next, run: current})
			} else {
				h.replaceTop(selectionItem{key: next, run: current + 1})
			}
		case io.EOF:
			h.pop()
		default:
			return runs, total, err
		}
	}
	if inRun {
		if err := sink.endRun(); err != nil {
			return runs, total, err
		}
	}
	return runs, total, nil
}

func formRunsLoadSort(r diskio.BlockReader, memoryKeys int, meter vtime.Meter, sink runSink) (int64, int64, error) {
	load := make([]record.Key, memoryKeys)
	var runs, total int64
	for {
		n, err := r.ReadKeys(load)
		if n > 0 {
			chunk := load[:n]
			slices.Sort(chunk)
			meter.ChargeCompute(nLogN(int64(n)))
			if err := sink.beginRun(); err != nil {
				return runs, total, err
			}
			runs++
			total += int64(n)
			for _, k := range chunk {
				if serr := sink.emit(k); serr != nil {
					return runs, total, serr
				}
			}
			if serr := sink.endRun(); serr != nil {
				return runs, total, serr
			}
		}
		if err == io.EOF || n == 0 {
			return runs, total, nil
		}
		if err != nil {
			return runs, total, err
		}
	}
}

// formRunsGuidesort sorts memory loads and coalesces consecutive loads
// into one run when the guide comparison allows it: if the new load's
// smallest key is at least the largest key already emitted, the run
// simply continues.  On sorted or near-sorted input the whole file
// becomes a single run for one comparison per load; on random input it
// degrades gracefully to LoadSort's run lengths.
func formRunsGuidesort(r diskio.BlockReader, memoryKeys int, meter vtime.Meter, sink runSink) (int64, int64, error) {
	load := make([]record.Key, memoryKeys)
	var runs, total int64
	inRun := false
	var lastMax record.Key
	endIfOpen := func() error {
		if !inRun {
			return nil
		}
		inRun = false
		return sink.endRun()
	}
	for {
		n, err := r.ReadKeys(load)
		if n > 0 {
			chunk := load[:n]
			slices.Sort(chunk)
			meter.ChargeCompute(nLogN(int64(n)))
			if inRun {
				// The guide comparison: does this load extend the run?
				meter.ChargeCompute(1)
				if chunk[0] < lastMax {
					if serr := endIfOpen(); serr != nil {
						return runs, total, serr
					}
				}
			}
			if !inRun {
				if serr := sink.beginRun(); serr != nil {
					return runs, total, serr
				}
				runs++
				inRun = true
			}
			total += int64(n)
			for _, k := range chunk {
				if serr := sink.emit(k); serr != nil {
					return runs, total, serr
				}
			}
			lastMax = chunk[n-1]
		}
		if err == io.EOF || n == 0 {
			return runs, total, endIfOpen()
		}
		if err != nil {
			return runs, total, err
		}
	}
}

// nLogN approximates the comparison count of an in-core sort of n keys.
func nLogN(n int64) int64 {
	if n <= 1 {
		return n
	}
	var lg int64
	for v := n; v > 1; v >>= 1 {
		lg++
	}
	return n * lg
}

package trace

import (
	"strings"
	"sync"
	"testing"
)

func TestKindStrings(t *testing.T) {
	for k, want := range map[Kind]string{
		PhaseBegin: "phase-begin", PhaseEnd: "phase-end",
		MessageSent: "send", MessageReceived: "recv", Mark: "mark",
	} {
		if k.String() != want {
			t.Errorf("%d -> %q want %q", k, k.String(), want)
		}
	}
	if Kind(99).String() == "" {
		t.Error("unknown kind")
	}
}

func TestAddAndEventsSorted(t *testing.T) {
	var l Log
	l.Add(Event{Node: 1, Clock: 2.0, Kind: Mark, Label: "b"})
	l.Add(Event{Node: 0, Clock: 1.0, Kind: Mark, Label: "a"})
	l.Add(Event{Node: 0, Clock: 2.0, Kind: Mark, Label: "c"})
	ev := l.Events()
	if len(ev) != 3 || l.Len() != 3 {
		t.Fatalf("events %v", ev)
	}
	if ev[0].Label != "a" || ev[1].Label != "c" || ev[2].Label != "b" {
		t.Fatalf("order %v", ev)
	}
}

func TestConcurrentAdd(t *testing.T) {
	var l Log
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				l.Add(Event{Node: n, Clock: float64(j)})
			}
		}(i)
	}
	wg.Wait()
	if l.Len() != 800 {
		t.Fatalf("lost events: %d", l.Len())
	}
}

func TestSpans(t *testing.T) {
	var l Log
	l.Add(Event{Node: 0, Clock: 1, Kind: PhaseBegin, Label: "sort"})
	l.Add(Event{Node: 1, Clock: 2, Kind: PhaseBegin, Label: "sort"})
	l.Add(Event{Node: 0, Clock: 5, Kind: PhaseEnd, Label: "sort"})
	l.Add(Event{Node: 1, Clock: 7, Kind: PhaseEnd, Label: "sort"})
	l.Add(Event{Node: 0, Clock: 9, Kind: PhaseBegin, Label: "dangling"})
	spans := l.Spans()
	if len(spans) != 2 {
		t.Fatalf("spans %v", spans)
	}
	if spans[0].Duration() != 4 || spans[1].Duration() != 5 {
		t.Fatalf("durations %v", spans)
	}
}

func TestReset(t *testing.T) {
	var l Log
	l.Add(Event{})
	l.Reset()
	if l.Len() != 0 {
		t.Fatal("reset failed")
	}
}

func TestTimelineRendering(t *testing.T) {
	var l Log
	l.Add(Event{Node: 2, Clock: 0.5, Kind: MessageSent, Label: "tag7", Detail: "to:1 keys:10"})
	out := l.Timeline()
	for _, frag := range []string{"node2", "send", "tag7", "to:1 keys:10"} {
		if !strings.Contains(out, frag) {
			t.Errorf("timeline missing %q:\n%s", frag, out)
		}
	}
}

func TestGanttRendering(t *testing.T) {
	var l Log
	if !strings.Contains(l.Gantt(40), "no phases") {
		t.Error("empty gantt")
	}
	l.Add(Event{Node: 0, Clock: 0, Kind: PhaseBegin, Label: "a"})
	l.Add(Event{Node: 0, Clock: 5, Kind: PhaseEnd, Label: "a"})
	l.Add(Event{Node: 1, Clock: 5, Kind: PhaseBegin, Label: "b"})
	l.Add(Event{Node: 1, Clock: 10, Kind: PhaseEnd, Label: "b"})
	out := l.Gantt(40)
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 2 {
		t.Fatalf("gantt:\n%s", out)
	}
	// The two equal-length phases should render equal-length bars.
	c0 := strings.Count(lines[0], "=")
	c1 := strings.Count(lines[1], "=")
	if c0 == 0 || c1 == 0 || c0-c1 > 1 || c1-c0 > 1 {
		t.Fatalf("bars %d vs %d:\n%s", c0, c1, out)
	}
}

package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// This file exports a Log in two machine-readable formats: the Chrome
// trace_event JSON that Perfetto and chrome://tracing load directly, and
// a flat JSONL event stream for ad-hoc tooling (jq, spreadsheets).
//
// The Chrome mapping: the cluster is one process (pid 0), every node is
// a thread (tid = node id) so each gets its own track; phase spans
// become complete ("X") slices, point events become thread-scoped
// instants ("i"), and each redistribution message becomes a flow
// arrow — an "s" (flow start) at the sender paired with an "f" (flow
// end) at the receiver.  Virtual seconds are scaled to the format's
// microseconds.

// chromeEvent is one entry of the trace_event "traceEvents" array.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	ID   string         `json:"id,omitempty"`
	BP   string         `json:"bp,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

const usecPerVirtualSec = 1e6

// flowKey identifies one directed link and tag; the cluster's per-link
// FIFO delivery means the i-th send on a key pairs with its i-th recv.
type flowKey struct {
	from, to int
	tag      string
}

// WriteChromeTrace writes the log as Chrome trace_event JSON, loadable
// in Perfetto (ui.perfetto.dev) or chrome://tracing.  One track per
// node, phase spans as slices (open spans are flagged in args), point
// events as instants, and message send/receive pairs as flow arrows.
func WriteChromeTrace(w io.Writer, l *Log) error {
	events := l.Events()
	seen := map[int]bool{}
	var nodes []int
	for _, e := range events {
		if !seen[e.Node] {
			seen[e.Node] = true
			nodes = append(nodes, e.Node)
		}
	}
	sort.Ints(nodes)
	out := []chromeEvent{{
		Name: "process_name", Ph: "M", Pid: 0, Tid: 0,
		Args: map[string]any{"name": "hetsort virtual cluster"},
	}}
	for _, n := range nodes {
		out = append(out, chromeEvent{
			Name: "thread_name", Ph: "M", Pid: 0, Tid: n,
			Args: map[string]any{"name": fmt.Sprintf("node %d", n)},
		})
	}

	for _, s := range l.Spans() {
		ev := chromeEvent{
			Name: s.Label, Cat: "phase", Ph: "X",
			Ts: s.Begin * usecPerVirtualSec, Dur: s.Duration() * usecPerVirtualSec,
			Pid: 0, Tid: s.Node,
		}
		if s.Open {
			ev.Args = map[string]any{"open": true}
		}
		out = append(out, ev)
	}

	// Flow arrows: per (from, to, tag) the i-th MessageSent pairs with
	// the i-th MessageReceived (links deliver in FIFO order).  Sends
	// whose receive never happened (a crashed peer) get no arrow — the
	// format requires every flow id to have both ends.
	type pending struct {
		ts   float64
		keys int
	}
	sends := map[flowKey][]pending{}
	flowID := 0
	for _, e := range events {
		switch e.Kind {
		case MessageSent:
			var to, keys int
			if _, err := fmt.Sscanf(e.Detail, "to:%d keys:%d", &to, &keys); err != nil {
				continue
			}
			k := flowKey{e.Node, to, e.Label}
			sends[k] = append(sends[k], pending{e.Clock, keys})
		case MessageReceived:
			var from, keys int
			if _, err := fmt.Sscanf(e.Detail, "from:%d keys:%d", &from, &keys); err != nil {
				continue
			}
			k := flowKey{from, e.Node, e.Label}
			if len(sends[k]) == 0 {
				continue
			}
			snd := sends[k][0]
			sends[k] = sends[k][1:]
			flowID++
			id := fmt.Sprintf("msg%d", flowID)
			name := fmt.Sprintf("%s %d->%d", e.Label, from, e.Node)
			args := map[string]any{"keys": keys}
			out = append(out,
				chromeEvent{Name: name, Cat: "message", Ph: "s",
					Ts: snd.ts * usecPerVirtualSec, Pid: 0, Tid: from, ID: id, Args: args},
				chromeEvent{Name: name, Cat: "message", Ph: "f", BP: "e",
					Ts: e.Clock * usecPerVirtualSec, Pid: 0, Tid: e.Node, ID: id, Args: args})
		case Mark, Checkpoint, Recovery, Pipeline:
			args := map[string]any{}
			if e.Detail != "" {
				args["detail"] = e.Detail
			}
			out = append(out, chromeEvent{
				Name: fmt.Sprintf("%s: %s", e.Kind, e.Label), Cat: e.Kind.String(), Ph: "i",
				Ts: e.Clock * usecPerVirtualSec, Pid: 0, Tid: e.Node, Args: args,
			})
		}
	}

	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	enc.SetIndent("", " ")
	return enc.Encode(chromeTrace{TraceEvents: out, DisplayTimeUnit: "ms"})
}

// jsonlEvent is the flat per-event schema of WriteJSONL.
type jsonlEvent struct {
	Seq    int64   `json:"seq"`
	Node   int     `json:"node"`
	Clock  float64 `json:"clock"`
	Kind   string  `json:"kind"`
	Label  string  `json:"label"`
	Detail string  `json:"detail,omitempty"`
}

// WriteJSONL writes the log as one JSON object per line in event order.
func WriteJSONL(w io.Writer, l *Log) error {
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	for _, e := range l.Events() {
		if err := enc.Encode(jsonlEvent{
			Seq: e.Seq, Node: e.Node, Clock: e.Clock,
			Kind: e.Kind.String(), Label: e.Label, Detail: e.Detail,
		}); err != nil {
			return err
		}
	}
	return nil
}

// ValidateChromeTrace checks that data is structurally valid Chrome
// trace_event JSON as produced by WriteChromeTrace: a non-empty
// traceEvents array whose entries carry a name, a known phase type and
// pid/tid, where complete slices have non-negative timestamps and
// durations and every flow arrow has both of its ends.
func ValidateChromeTrace(data []byte) error {
	var t struct {
		TraceEvents []map[string]json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &t); err != nil {
		return fmt.Errorf("trace: not valid JSON: %w", err)
	}
	if len(t.TraceEvents) == 0 {
		return fmt.Errorf("trace: empty traceEvents array")
	}
	flows := map[string]int{} // id -> starts minus ends seen
	for i, ev := range t.TraceEvents {
		var name, ph string
		if err := need(ev, "name", &name); err != nil {
			return fmt.Errorf("trace: event %d: %w", i, err)
		}
		if err := need(ev, "ph", &ph); err != nil {
			return fmt.Errorf("trace: event %d: %w", i, err)
		}
		var pid, tid float64
		if err := need(ev, "pid", &pid); err != nil {
			return fmt.Errorf("trace: event %d: %w", i, err)
		}
		if err := need(ev, "tid", &tid); err != nil {
			return fmt.Errorf("trace: event %d: %w", i, err)
		}
		switch ph {
		case "M":
		case "X":
			var ts, dur float64
			if err := need(ev, "ts", &ts); err != nil {
				return fmt.Errorf("trace: event %d (%s): %w", i, name, err)
			}
			if raw, ok := ev["dur"]; ok {
				if err := json.Unmarshal(raw, &dur); err != nil {
					return fmt.Errorf("trace: event %d (%s): bad dur: %w", i, name, err)
				}
			}
			if ts < 0 || dur < 0 {
				return fmt.Errorf("trace: event %d (%s): negative ts=%v dur=%v", i, name, ts, dur)
			}
		case "i", "s", "f":
			var ts float64
			if err := need(ev, "ts", &ts); err != nil {
				return fmt.Errorf("trace: event %d (%s): %w", i, name, err)
			}
			if ph != "i" {
				var id string
				if err := need(ev, "id", &id); err != nil {
					return fmt.Errorf("trace: event %d (%s): %w", i, name, err)
				}
				if ph == "s" {
					flows[id]++
				} else {
					flows[id]--
				}
			}
		default:
			return fmt.Errorf("trace: event %d (%s): unknown phase type %q", i, name, ph)
		}
	}
	for id, n := range flows {
		if n != 0 {
			return fmt.Errorf("trace: flow %q has unmatched ends (balance %+d)", id, n)
		}
	}
	return nil
}

// need unmarshals a required field of a raw trace event into dst.
func need(ev map[string]json.RawMessage, field string, dst any) error {
	raw, ok := ev[field]
	if !ok {
		return fmt.Errorf("missing %q", field)
	}
	if err := json.Unmarshal(raw, dst); err != nil {
		return fmt.Errorf("bad %q: %w", field, err)
	}
	return nil
}

package storage

import (
	"bytes"
	"errors"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"hetsort/internal/diskio"
	"hetsort/internal/record"
)

func backends(t *testing.T) map[string]Backend {
	t.Helper()
	d, err := NewDir(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return map[string]Backend{"dir": d, "object": NewObject()}
}

func TestObjectAPIBothBackends(t *testing.T) {
	for name, b := range backends(t) {
		t.Run(name, func(t *testing.T) {
			if err := b.Put("jobs/j1/spec.json", []byte(`{"a":1}`)); err != nil {
				t.Fatal(err)
			}
			if err := b.Put("jobs/j2/spec.json", []byte(`{"a":2}`)); err != nil {
				t.Fatal(err)
			}
			if err := b.Put("inputs/data", []byte("xyzw")); err != nil {
				t.Fatal(err)
			}
			got, err := b.Get("jobs/j1/spec.json")
			if err != nil || string(got) != `{"a":1}` {
				t.Fatalf("get: %q %v", got, err)
			}
			sz, err := b.Stat("inputs/data")
			if err != nil || sz != 4 {
				t.Fatalf("stat: %d %v", sz, err)
			}
			names, err := b.List("jobs/")
			if err != nil {
				t.Fatal(err)
			}
			want := []string{"jobs/j1/spec.json", "jobs/j2/spec.json"}
			if !reflect.DeepEqual(names, want) {
				t.Fatalf("list: %v want %v", names, want)
			}
			// Put replaces atomically; Get sees the new content.
			if err := b.Put("inputs/data", []byte("replaced")); err != nil {
				t.Fatal(err)
			}
			got, _ = b.Get("inputs/data")
			if string(got) != "replaced" {
				t.Fatalf("replaced content: %q", got)
			}
			if err := b.Delete("inputs/data"); err != nil {
				t.Fatal(err)
			}
			if _, err := b.Get("inputs/data"); !errors.Is(err, ErrNotExist) {
				t.Fatalf("get deleted: %v", err)
			}
			if err := b.Delete("inputs/data"); !errors.Is(err, ErrNotExist) {
				t.Fatalf("delete missing: %v", err)
			}
			if _, err := b.Stat("ghost"); !errors.Is(err, ErrNotExist) {
				t.Fatalf("stat missing: %v", err)
			}
		})
	}
}

func TestInvalidNamesRejected(t *testing.T) {
	for name, b := range backends(t) {
		t.Run(name, func(t *testing.T) {
			for _, bad := range []string{"", ".", "..", "../x", "/abs", "a/../../b", "a//b"} {
				if err := b.Put(bad, []byte("x")); err == nil {
					t.Errorf("Put(%q) accepted", bad)
				}
			}
		})
	}
}

func TestFSViewSharesNamespace(t *testing.T) {
	for name, b := range backends(t) {
		t.Run(name, func(t *testing.T) {
			fs, err := b.FS("jobs/j1/node0")
			if err != nil {
				t.Fatal(err)
			}
			keys := []record.Key{5, 3, 9}
			if err := diskio.WriteFile(fs, "output", keys, 2, diskio.Accounting{}); err != nil {
				t.Fatal(err)
			}
			// The file is visible as an object under the prefix...
			data, err := b.Get("jobs/j1/node0/output")
			if err != nil {
				t.Fatal(err)
			}
			if len(data) != len(keys)*record.KeySize {
				t.Fatalf("object size %d", len(data))
			}
			// ...and object content round-trips through the FS reader.
			got, err := diskio.ReadFileAll(fs, "output", 2, diskio.Accounting{})
			if err != nil || !reflect.DeepEqual(got, keys) {
				t.Fatalf("read back: %v %v", got, err)
			}
			// FS-level rename, remove and names work.
			if err := fs.Rename("output", "renamed"); err != nil {
				t.Fatal(err)
			}
			if _, err := b.Get("jobs/j1/node0/output"); err == nil {
				t.Fatal("old object name still resolves after FS rename")
			}
			names, err := fs.Names()
			if err != nil || !reflect.DeepEqual(names, []string{"renamed"}) {
				t.Fatalf("names: %v %v", names, err)
			}
			if err := fs.Remove("renamed"); err != nil {
				t.Fatal(err)
			}
			if _, err := fs.Open("renamed"); !errors.Is(err, os.ErrNotExist) {
				t.Fatalf("open removed: %v", err)
			}
		})
	}
}

func TestFSViewSeekAndCount(t *testing.T) {
	for name, b := range backends(t) {
		t.Run(name, func(t *testing.T) {
			fs, err := b.FS("w")
			if err != nil {
				t.Fatal(err)
			}
			keys := make([]record.Key, 100)
			for i := range keys {
				keys[i] = record.Key(i)
			}
			if err := diskio.WriteFile(fs, "f", keys, 8, diskio.Accounting{}); err != nil {
				t.Fatal(err)
			}
			n, err := diskio.CountKeys(fs, "f")
			if err != nil || n != 100 {
				t.Fatalf("CountKeys=%d,%v", n, err)
			}
			f, err := fs.Open("f")
			if err != nil {
				t.Fatal(err)
			}
			defer f.Close()
			k, err := diskio.ReadKeyAt(f, 42, diskio.Accounting{})
			if err != nil || k != 42 {
				t.Fatalf("ReadKeyAt=%d,%v", k, err)
			}
		})
	}
}

func TestObjectPutIsolatesOpenReaders(t *testing.T) {
	o := NewObject()
	if err := o.Put("ns/f", []byte("version-one")); err != nil {
		t.Fatal(err)
	}
	fs, _ := o.FS("ns")
	f, err := fs.Open("f")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := o.Put("ns/f", []byte("version-two!")); err != nil {
		t.Fatal(err)
	}
	got, err := io.ReadAll(f)
	if err != nil || !bytes.Equal(got, []byte("version-one")) {
		t.Fatalf("open reader saw %q, %v", got, err)
	}
	now, _ := o.Get("ns/f")
	if !bytes.Equal(now, []byte("version-two!")) {
		t.Fatalf("store content %q", now)
	}
}

func TestDirPutAtomicOnDisk(t *testing.T) {
	root := t.TempDir()
	d, err := NewDir(root)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Put("a/b/c", []byte("data")); err != nil {
		t.Fatal(err)
	}
	// No temp residue next to the object.
	entries, err := os.ReadDir(filepath.Join(root, "a", "b"))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Name() != "c" {
		t.Fatalf("directory entries: %v", entries)
	}
}

func TestFaultyPermanentAndTransient(t *testing.T) {
	inner := NewObject()
	perm := NewFaulty(inner, 2)
	if err := perm.Put("a", nil); err != nil {
		t.Fatal(err)
	}
	if err := perm.Put("b", nil); err != nil {
		t.Fatal(err)
	}
	if err := perm.Put("c", nil); !errors.Is(err, ErrInjected) {
		t.Fatalf("third op: %v", err)
	}
	if _, err := perm.Get("a"); !errors.Is(err, ErrInjected) {
		t.Fatalf("permanent fault recovered: %v", err)
	}
	if perm.Injected() != 2 {
		t.Fatalf("injected=%d", perm.Injected())
	}

	trans := &Faulty{Inner: inner, FailAfter: 1, FailCount: 2}
	if _, err := trans.Get("a"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, err := trans.Get("a"); !errors.Is(err, ErrInjected) {
			t.Fatalf("fault %d not injected: %v", i, err)
		}
	}
	if _, err := trans.Get("a"); err != nil {
		t.Fatalf("transient fault did not clear: %v", err)
	}
	// The FS view bypasses the object-op budget by design.
	if _, err := perm.FS("ns"); err != nil {
		t.Fatal(err)
	}
}

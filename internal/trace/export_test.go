package trace

import (
	"bytes"
	"strings"
	"testing"
)

// fixtureLog builds a small deterministic two-node log: a closed phase
// on each node, one message between them, an instant, and an unclosed
// phase on node 1.
func fixtureLog() *Log {
	var l Log
	l.Add(Event{Node: 0, Clock: 0, Kind: PhaseBegin, Label: "1:sequential-sort"})
	l.Add(Event{Node: 1, Clock: 0, Kind: PhaseBegin, Label: "1:sequential-sort"})
	l.Add(Event{Node: 0, Clock: 1.5, Kind: PhaseEnd, Label: "1:sequential-sort"})
	l.Add(Event{Node: 1, Clock: 2.0, Kind: PhaseEnd, Label: "1:sequential-sort"})
	l.Add(Event{Node: 0, Clock: 2.25, Kind: MessageSent, Label: "tag202", Detail: "to:1 keys:64"})
	l.Add(Event{Node: 0, Clock: 2.5, Kind: Checkpoint, Label: "phase-1", Detail: "phase:1 clock:2.500000 files:1"})
	l.Add(Event{Node: 1, Clock: 2.75, Kind: MessageReceived, Label: "tag202", Detail: "from:0 keys:64"})
	l.Add(Event{Node: 1, Clock: 3.0, Kind: PhaseBegin, Label: "2:pivot-selection"})
	return &l
}

const goldenChrome = `{
 "traceEvents": [
  {
   "name": "process_name",
   "ph": "M",
   "ts": 0,
   "pid": 0,
   "tid": 0,
   "args": {
    "name": "hetsort virtual cluster"
   }
  },
  {
   "name": "thread_name",
   "ph": "M",
   "ts": 0,
   "pid": 0,
   "tid": 0,
   "args": {
    "name": "node 0"
   }
  },
  {
   "name": "thread_name",
   "ph": "M",
   "ts": 0,
   "pid": 0,
   "tid": 1,
   "args": {
    "name": "node 1"
   }
  },
  {
   "name": "1:sequential-sort",
   "cat": "phase",
   "ph": "X",
   "ts": 0,
   "dur": 1500000,
   "pid": 0,
   "tid": 0
  },
  {
   "name": "1:sequential-sort",
   "cat": "phase",
   "ph": "X",
   "ts": 0,
   "dur": 2000000,
   "pid": 0,
   "tid": 1
  },
  {
   "name": "2:pivot-selection",
   "cat": "phase",
   "ph": "X",
   "ts": 3000000,
   "pid": 0,
   "tid": 1,
   "args": {
    "open": true
   }
  },
  {
   "name": "checkpoint: phase-1",
   "cat": "checkpoint",
   "ph": "i",
   "ts": 2500000,
   "pid": 0,
   "tid": 0,
   "args": {
    "detail": "phase:1 clock:2.500000 files:1"
   }
  },
  {
   "name": "tag202 0->1",
   "cat": "message",
   "ph": "s",
   "ts": 2250000,
   "pid": 0,
   "tid": 0,
   "id": "msg1",
   "args": {
    "keys": 64
   }
  },
  {
   "name": "tag202 0->1",
   "cat": "message",
   "ph": "f",
   "ts": 2750000,
   "pid": 0,
   "tid": 1,
   "id": "msg1",
   "bp": "e",
   "args": {
    "keys": 64
   }
  }
 ],
 "displayTimeUnit": "ms"
}
`

func TestWriteChromeTraceGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, fixtureLog()); err != nil {
		t.Fatal(err)
	}
	if got := buf.String(); got != goldenChrome {
		t.Errorf("chrome trace mismatch:\n--- got ---\n%s\n--- want ---\n%s", got, goldenChrome)
	}
	if err := ValidateChromeTrace(buf.Bytes()); err != nil {
		t.Fatalf("golden output fails its own validator: %v", err)
	}
}

const goldenJSONL = `{"seq":1,"node":0,"clock":0,"kind":"phase-begin","label":"1:sequential-sort"}
{"seq":2,"node":1,"clock":0,"kind":"phase-begin","label":"1:sequential-sort"}
{"seq":3,"node":0,"clock":1.5,"kind":"phase-end","label":"1:sequential-sort"}
{"seq":4,"node":1,"clock":2,"kind":"phase-end","label":"1:sequential-sort"}
{"seq":5,"node":0,"clock":2.25,"kind":"send","label":"tag202","detail":"to:1 keys:64"}
{"seq":6,"node":0,"clock":2.5,"kind":"checkpoint","label":"phase-1","detail":"phase:1 clock:2.500000 files:1"}
{"seq":7,"node":1,"clock":2.75,"kind":"recv","label":"tag202","detail":"from:0 keys:64"}
{"seq":8,"node":1,"clock":3,"kind":"phase-begin","label":"2:pivot-selection"}
`

func TestWriteJSONLGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, fixtureLog()); err != nil {
		t.Fatal(err)
	}
	if got := buf.String(); got != goldenJSONL {
		t.Errorf("jsonl mismatch:\n--- got ---\n%s\n--- want ---\n%s", got, goldenJSONL)
	}
}

func TestValidateChromeTraceRejects(t *testing.T) {
	cases := map[string]string{
		"not json":       `{"traceEvents": [`,
		"empty":          `{"traceEvents": []}`,
		"missing name":   `{"traceEvents": [{"ph":"M","pid":0,"tid":0}]}`,
		"missing ph":     `{"traceEvents": [{"name":"x","pid":0,"tid":0}]}`,
		"unknown ph":     `{"traceEvents": [{"name":"x","ph":"Q","pid":0,"tid":0}]}`,
		"negative dur":   `{"traceEvents": [{"name":"x","ph":"X","pid":0,"tid":0,"ts":1,"dur":-2}]}`,
		"missing ts":     `{"traceEvents": [{"name":"x","ph":"X","pid":0,"tid":0}]}`,
		"unmatched flow": `{"traceEvents": [{"name":"x","ph":"s","pid":0,"tid":0,"ts":1,"id":"m1"}]}`,
		"flow sans id":   `{"traceEvents": [{"name":"x","ph":"f","pid":0,"tid":0,"ts":1}]}`,
	}
	for label, data := range cases {
		if err := ValidateChromeTrace([]byte(data)); err == nil {
			t.Errorf("%s: accepted", label)
		}
	}
	ok := `{"traceEvents": [{"name":"x","ph":"X","pid":0,"tid":0,"ts":1,"dur":2}]}`
	if err := ValidateChromeTrace([]byte(ok)); err != nil {
		t.Errorf("minimal valid trace rejected: %v", err)
	}
}

func TestFlowPairingIsFIFOPerLink(t *testing.T) {
	var l Log
	// Two messages on the same (from, to, tag): FIFO pairing must give
	// the first recv the first send's timestamp.
	l.Add(Event{Node: 0, Clock: 1, Kind: MessageSent, Label: "tag9", Detail: "to:1 keys:10"})
	l.Add(Event{Node: 0, Clock: 2, Kind: MessageSent, Label: "tag9", Detail: "to:1 keys:20"})
	l.Add(Event{Node: 1, Clock: 3, Kind: MessageReceived, Label: "tag9", Detail: "from:0 keys:10"})
	l.Add(Event{Node: 1, Clock: 4, Kind: MessageReceived, Label: "tag9", Detail: "from:0 keys:20"})
	// A send whose receiver died: no arrow, but the trace stays valid.
	l.Add(Event{Node: 0, Clock: 5, Kind: MessageSent, Label: "tag9", Detail: "to:1 keys:30"})
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, &l); err != nil {
		t.Fatal(err)
	}
	if err := ValidateChromeTrace(buf.Bytes()); err != nil {
		t.Fatalf("trace with an orphan send invalid: %v", err)
	}
	out := buf.String()
	if strings.Count(out, `"ph": "s"`) != 2 || strings.Count(out, `"ph": "f"`) != 2 {
		t.Fatalf("expected two complete flows:\n%s", out)
	}
	if !strings.Contains(out, `"ts": 1000000,`) || !strings.Contains(out, `"ts": 2000000,`) {
		t.Fatalf("flow starts not at send timestamps:\n%s", out)
	}
}

// Package dewitt implements the baseline the paper's section 2 singles
// out as "the closest algorithm in spirit to parallel sampling
// techniques ... for the D disk model": the randomized two-step
// distribution sort of DeWitt, Naughton and Schneider (PDIS 1991),
// parallel sorting on a shared-nothing architecture using probabilistic
// splitting.
//
//  1. Each node draws a random sample of its *unsorted* disk-resident
//     portion; a designated node sorts the gathered sample and selects
//     p-1 splitters (probabilistic splitting), here at the cumulative
//     perf quantiles so the comparison against Algorithm 1 is fair on
//     heterogeneous clusters.
//  2. Each node streams its portion once, routing every key to its
//     bucket node; receivers accumulate memory-loads, sort each load
//     in core and write it out as a small sorted run.
//  3. Each node merge-sorts its runs externally.
//
// Compared with the paper's Algorithm 1 this saves the up-front full
// external sort (one read+write pass less over the data) but pays with
// random-sample splitters: the load balance depends on the sample
// rather than on regular positions in sorted portions.
package dewitt

import (
	"fmt"
	"io"
	"sort"

	"hetsort/internal/cluster"
	"hetsort/internal/diskio"
	"hetsort/internal/pdm"
	"hetsort/internal/perf"
	"hetsort/internal/polyphase"
	"hetsort/internal/record"
	"hetsort/internal/sampling"
)

// Message tags.
const (
	tagSample = 400 + iota
	tagSplitters
	tagData
	tagBarrier
)

// Config parameterises the baseline.
type Config struct {
	// Perf is the performance vector (all ones = the original
	// homogeneous algorithm).
	Perf perf.Vector
	// BlockKeys, MemoryKeys and Tapes mirror extsort.Config.
	BlockKeys  int
	MemoryKeys int
	Tapes      int
	// MessageKeys is the routing batch size per destination.
	MessageKeys int
	// SampleFactor scales the per-node sample: node i draws
	// SampleFactor*p*perf[i] random keys (default 32, the "sufficient
	// number of random pivots" knob of the probabilistic splitting).
	SampleFactor int
	// Seed feeds the samplers.
	Seed int64
}

func (c *Config) applyDefaults(p int) {
	if len(c.Perf) == 0 {
		c.Perf = perf.Homogeneous(p)
	}
	if c.BlockKeys <= 0 {
		c.BlockKeys = 2048
	}
	if c.MemoryKeys <= 0 {
		c.MemoryKeys = 1 << 16
	}
	if c.Tapes <= 0 {
		c.Tapes = 15
	}
	if c.MessageKeys <= 0 {
		c.MessageKeys = 8192
	}
	if c.SampleFactor <= 0 {
		c.SampleFactor = 32
	}
}

// Result reports one run.
type Result struct {
	Time           float64
	PartitionSizes []int64
	NodeClocks     []float64
	NodeIO         []pdm.IOStats
	Splitters      []record.Key
}

// Sort runs the two-step distribution sort.  Every node must hold its
// unsorted portion in inputName on its private FS; on success every
// node holds its sorted bucket in outputName (concatenation in rank
// order is globally sorted).
func Sort(c *cluster.Cluster, cfg Config, inputName, outputName string) (*Result, error) {
	p := c.P()
	cfg.applyDefaults(p)
	if err := cfg.Perf.Validate(); err != nil {
		return nil, err
	}
	if len(cfg.Perf) != p {
		return nil, fmt.Errorf("dewitt: perf length %d != cluster size %d", len(cfg.Perf), p)
	}
	splitOut := make([][]record.Key, p)
	// One whole portion can queue on a link during the exchange; size
	// the queues so sends never block (see cluster.LinkBound).
	var maxPortion int64
	for i := 0; i < p; i++ {
		if li, err := diskio.CountKeys(c.Node(i).FS(), inputName); err == nil && li > maxPortion {
			maxPortion = li
		}
	}
	c.EnsureLinkCapacity(cluster.LinkBound(maxPortion, cfg.MessageKeys))
	err := c.Run(func(n *cluster.Node) error {
		s, err := nodeMain(n, cfg, inputName, outputName)
		splitOut[n.ID()] = s
		return err
	})
	if err != nil {
		return nil, err
	}
	res := &Result{
		PartitionSizes: make([]int64, p),
		NodeClocks:     make([]float64, p),
		NodeIO:         make([]pdm.IOStats, p),
		Splitters:      splitOut[0],
		Time:           c.MaxClock(),
	}
	for i := 0; i < p; i++ {
		res.NodeClocks[i] = c.Node(i).Clock()
		res.NodeIO[i] = c.Node(i).IOStats()
		sz, err := diskio.CountKeys(c.Node(i).FS(), outputName)
		if err != nil {
			return nil, err
		}
		res.PartitionSizes[i] = sz
	}
	return res, nil
}

func nodeMain(n *cluster.Node, cfg Config, inputName, outputName string) ([]record.Key, error) {
	p, id := n.P(), n.ID()

	// Step 1: probabilistic splitting from random samples.
	li, err := diskio.CountKeys(n.FS(), inputName)
	if err != nil {
		return nil, err
	}
	count := cfg.SampleFactor * p * cfg.Perf[id]
	var samples []record.Key
	if li > 0 && p > 1 {
		f, err := n.FS().Open(inputName)
		if err != nil {
			return nil, err
		}
		for _, idx := range sampling.RandomSampleIndices(li, count, cfg.Seed+int64(id)*977) {
			k, rerr := diskio.ReadKeyAt(f, idx, n.Acct())
			if rerr != nil {
				f.Close()
				return nil, rerr
			}
			samples = append(samples, k)
		}
		if err := f.Close(); err != nil {
			return nil, err
		}
	}
	gathered, err := n.Gather(0, tagSample, samples)
	if err != nil {
		return nil, err
	}
	var splitters []record.Key
	if id == 0 {
		var cands []record.Key
		for _, g := range gathered {
			cands = append(cands, g...)
		}
		n.ChargeCompute(int64(len(cands)) * 16)
		splitters, err = sampling.SelectPivotsWeighted(cands, cfg.Perf)
		if err != nil {
			return nil, err
		}
	}
	splitters, err = n.Bcast(0, tagSplitters, splitters)
	if err != nil {
		return nil, err
	}

	// Step 2a: route every key to its bucket in batched messages.
	if err := distribute(n, cfg, inputName, splitters); err != nil {
		return nil, err
	}
	// Step 2b: receive and write small sorted runs.
	runs, err := receiveRuns(n, cfg)
	if err != nil {
		return nil, err
	}
	// Step 3: external merge of the runs.
	pcfg := polyphase.Config{
		FS:         n.FS(),
		BlockKeys:  cfg.BlockKeys,
		MemoryKeys: cfg.MemoryKeys,
		Tapes:      cfg.Tapes,
		Acct:       n.Acct(),
		TempPrefix: "dewitt.m.",
	}
	if err := polyphase.MergeFiles(pcfg, runs, outputName); err != nil {
		return nil, err
	}
	for _, r := range runs {
		if err := n.FS().Remove(r); err != nil {
			return nil, err
		}
	}
	return splitters, nil
}

// distribute streams the input once, batching keys per destination.
func distribute(n *cluster.Node, cfg Config, inputName string, splitters []record.Key) error {
	p := n.P()
	f, err := n.FS().Open(inputName)
	if err != nil {
		return err
	}
	defer f.Close()
	r := diskio.NewReader(f, cfg.BlockKeys, n.Acct())
	out := make([][]record.Key, p)
	for i := range out {
		out[i] = make([]record.Key, 0, cfg.MessageKeys)
	}
	buf := make([]record.Key, cfg.BlockKeys)
	for {
		cnt, rerr := r.ReadKeys(buf)
		for _, k := range buf[:cnt] {
			dst := sort.Search(len(splitters), func(j int) bool { return splitters[j] >= k })
			out[dst] = append(out[dst], k)
			if len(out[dst]) == cfg.MessageKeys {
				if err := n.Send(dst, tagData, out[dst]); err != nil {
					return err
				}
				out[dst] = out[dst][:0]
			}
		}
		n.ChargeCompute(int64(cnt) * 3) // binary search per key
		if rerr == io.EOF || cnt == 0 {
			break
		}
		if rerr != nil {
			return rerr
		}
	}
	for dst := 0; dst < p; dst++ {
		if len(out[dst]) > 0 {
			if err := n.Send(dst, tagData, out[dst]); err != nil {
				return err
			}
		}
		if err := n.Send(dst, tagData, nil); err != nil { // end of stream
			return err
		}
	}
	return nil
}

// receiveRuns drains every peer, accumulating memory loads, sorting
// each in core and writing it as a run file.
func receiveRuns(n *cluster.Node, cfg Config) ([]string, error) {
	load := make([]record.Key, 0, cfg.MemoryKeys)
	var runs []string
	flush := func() error {
		if len(load) == 0 {
			return nil
		}
		sort.Slice(load, func(i, j int) bool { return load[i] < load[j] })
		n.ChargeCompute(nLogN(int64(len(load))))
		name := fmt.Sprintf("dewitt.run%d", len(runs))
		if err := diskio.WriteFile(n.FS(), name, load, cfg.BlockKeys, n.Acct()); err != nil {
			return err
		}
		runs = append(runs, name)
		load = load[:0]
		return nil
	}
	for from := 0; from < n.P(); from++ {
		for {
			keys, err := n.Recv(from, tagData)
			if err != nil {
				return nil, err
			}
			if len(keys) == 0 {
				break
			}
			for len(keys) > 0 {
				room := cfg.MemoryKeys - len(load)
				take := len(keys)
				if take > room {
					take = room
				}
				load = append(load, keys[:take]...)
				keys = keys[take:]
				if len(load) == cfg.MemoryKeys {
					if err := flush(); err != nil {
						return nil, err
					}
				}
			}
		}
	}
	if err := flush(); err != nil {
		return nil, err
	}
	return runs, nil
}

func nLogN(n int64) int64 {
	if n <= 1 {
		return n
	}
	var lg int64
	for v := n; v > 1; v >>= 1 {
		lg++
	}
	return n * lg
}

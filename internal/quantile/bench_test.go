package quantile

import (
	"testing"

	"hetsort/internal/record"
)

func BenchmarkInsert(b *testing.B) {
	keys := record.Uniform.Generate(1<<16, 1, 1)
	b.SetBytes(record.KeySize)
	s, _ := New(0.01)
	for i := 0; i < b.N; i++ {
		s.Insert(keys[i%len(keys)])
	}
}

func BenchmarkQuery(b *testing.B) {
	s, _ := New(0.01)
	s.InsertAll(record.Uniform.Generate(1<<16, 1, 1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Query(0.5); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMerge(b *testing.B) {
	base := record.Uniform.Generate(1<<14, 1, 1)
	for i := 0; i < b.N; i++ {
		a, _ := New(0.01)
		c, _ := New(0.01)
		a.InsertAll(base)
		c.InsertAll(base)
		a.Merge(c)
	}
}

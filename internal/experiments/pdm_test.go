package experiments

import (
	"strings"
	"testing"
)

// TestPDMAblation runs A10 end to end at test scale.  The ablation is
// self-checking (byte-identical outputs, equal block I/Os where the
// change is timing- or compute-only, strict virtual-time improvements),
// so the test mostly asserts the row shape the BENCH_pdm.json baseline
// and the regression gate rely on.
func TestPDMAblation(t *testing.T) {
	rows, err := PDMAblation(fastOptions())
	if err != nil {
		t.Fatal(err)
	}
	parts := map[string]int{}
	byVariant := map[string]PDMRow{}
	for _, r := range rows {
		parts[r.Part]++
		byVariant[r.Part+"/"+r.Variant] = r
		if r.OutputSHA == "" || r.BlockIOs <= 0 || r.VSec <= 0 {
			t.Fatalf("row %s/%s incomplete: %+v", r.Part, r.Variant, r)
		}
	}
	if parts["disks"] != 7 {
		t.Fatalf("disks part has %d variants, want 7", parts["disks"])
	}
	if parts["run-formation"] != 4 {
		t.Fatalf("run-formation part has %d variants, want 4", parts["run-formation"])
	}
	if r := byVariant["disks/d4-independent"]; r.Access != "independent" || r.D != 4 {
		t.Fatalf("d4-independent row mislabelled: %+v", r)
	}
	if r := byVariant["run-formation/guidesort"]; r.RunFormer != "guidesort" {
		t.Fatalf("guidesort row mislabelled: %+v", r)
	}
	out := PDMString(rows)
	for _, frag := range []string{"d4-crash-resume", "galloping", "guidesort"} {
		if !strings.Contains(out, frag) {
			t.Errorf("PDMString missing %q", frag)
		}
	}
}

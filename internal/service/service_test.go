package service

import (
	"bytes"
	"encoding/json"
	"errors"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"hetsort/internal/record"
	"hetsort/internal/storage"
)

// testConfig is a small, fast machine: 4 heterogeneous nodes, tiny
// blocks, generous budgets.
func testConfig() Config {
	return Config{
		Machine: MachineConfig{
			Perf:      []int{1, 1, 4, 4},
			BlockKeys: 64,
		},
		MaxJobs:  2,
		MaxQueue: 2,
	}
}

// testSpec generates count keys deterministically and sorts them with
// small memory.
func testSpec(count, seed int64) JobSpec {
	return JobSpec{
		Gen:         &GenSpec{Count: count, Seed: seed},
		MemoryKeys:  1024,
		Tapes:       4,
		MessageKeys: 128,
	}
}

func TestJobLifecycle(t *testing.T) {
	s, err := New(testConfig(), storage.NewObject())
	if err != nil {
		t.Fatal(err)
	}
	id, err := s.Submit(testSpec(2000, 7))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Wait(id); err != nil {
		t.Fatal(err)
	}
	st, err := s.Status(id)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateDone {
		t.Fatalf("state %s (%s)", st.State, st.Error)
	}
	if st.Keys != 2000 || st.Root == "" || st.Time <= 0 {
		t.Fatalf("status: %+v", st)
	}
	if root, err := VerifyJob(s.Store(), id); err != nil || root != st.Root {
		t.Fatalf("verify: %q %v (want %q)", root, err, st.Root)
	}
	s.Stop()
}

func TestVerifyDetectsTampering(t *testing.T) {
	store := storage.NewObject()
	s, err := New(testConfig(), store)
	if err != nil {
		t.Fatal(err)
	}
	id, _ := s.Submit(testSpec(2000, 7))
	s.Wait(id)
	s.Stop()
	// Corrupt one output byte; the recomputed root must change.
	name := "jobs/" + id + "/node0/output"
	body, err := store.Get(name)
	if err != nil {
		t.Fatal(err)
	}
	body[0] ^= 0xff
	if err := store.Put(name, body); err != nil {
		t.Fatal(err)
	}
	if _, err := VerifyJob(store, id); err == nil {
		t.Fatal("verify accepted a tampered output")
	}
}

func TestAdmissionQueueBackpressure(t *testing.T) {
	cfg := testConfig()
	cfg.MaxJobs = 1
	cfg.MaxQueue = 1
	s, err := New(cfg, storage.NewObject())
	if err != nil {
		t.Fatal(err)
	}
	var ids []string
	for i := 0; i < 2; i++ {
		id, err := s.Submit(testSpec(2000, int64(i)))
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		ids = append(ids, id)
	}
	// Slot + queue are full; the third submission must bounce.  The two
	// admitted jobs run fast, so a race toward completion could in
	// principle free the queue — but Submit holds the lock, and the
	// first job cannot finish before its goroutine even starts; in
	// practice the window is far larger than this test's runtime.
	if _, err := s.Submit(testSpec(2000, 99)); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("third submit: %v", err)
	}
	for _, id := range ids {
		s.Wait(id)
		if st, _ := s.Status(id); st.State != StateDone {
			t.Fatalf("job %s: %s (%s)", id, st.State, st.Error)
		}
	}
	s.Stop()
}

func TestAdmissionBudget(t *testing.T) {
	cfg := testConfig()
	cfg.Machine.DiskBytes = 1 << 20 // 1 MiB: fits small jobs only
	s, err := New(cfg, storage.NewObject())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Stop()
	// 4× input must exceed 1 MiB: 300k keys = 1.2 MB input.
	if _, err := s.Submit(testSpec(300_000, 1)); !errors.Is(err, ErrBudget) {
		t.Fatalf("oversized job: %v", err)
	}
	// Memory budget: each node wants MemoryKeys·4 bytes.
	cfg = testConfig()
	cfg.Machine.MemoryBytes = 1024 // under 4 nodes × 1024 keys × 4 B
	s2, err := New(cfg, storage.NewObject())
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Stop()
	if _, err := s2.Submit(testSpec(2000, 1)); !errors.Is(err, ErrBudget) {
		t.Fatalf("over-memory job: %v", err)
	}
}

// TestAdmissionLinkMemoryTopology: the flat all-to-all pins p² link
// buffers of MessageKeys each, which demand() now charges against the
// machine memory; the same spec routed through the tree topology pins
// only O(p·r) and must fit the same budget — the 422-instead-of-OOM
// contract.
func TestAdmissionLinkMemoryTopology(t *testing.T) {
	cfg := testConfig()
	// Workspace: 4 nodes × 1024 keys × 4 B = 16 KiB.  Flat links:
	// 4·4·65536·4 B = 4 MiB > budget.  Tree links: 4·2·65536·4 = 2 MiB.
	cfg.Machine.MemoryBytes = 3 << 20
	s, err := New(cfg, storage.NewObject())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Stop()
	spec := testSpec(2000, 1)
	spec.MessageKeys = 1 << 16
	if _, err := s.Submit(spec); !errors.Is(err, ErrBudget) {
		t.Fatalf("flat wide-message job: %v, want ErrBudget", err)
	}
	spec.Topology = "tree"
	spec.Radix = 2
	id, err := s.Submit(spec)
	if err != nil {
		t.Fatalf("tree variant of the same spec: %v", err)
	}
	if err := s.Wait(id); err != nil {
		t.Fatal(err)
	}
	st, _ := s.Status(id)
	if st.State != StateDone {
		t.Fatalf("tree job: %s (%s)", st.State, st.Error)
	}
	if root, err := VerifyJob(s.Store(), id); err != nil || root != st.Root {
		t.Fatalf("verify: %q %v (want %q)", root, err, st.Root)
	}
	// An unknown topology must be rejected at validation.
	spec.Topology = "torus"
	if _, err := s.Submit(spec); err == nil || errors.Is(err, ErrBudget) {
		t.Fatalf("unknown topology: %v", err)
	}
}

func TestSpecValidation(t *testing.T) {
	s, err := New(testConfig(), storage.NewObject())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Stop()
	bad := []JobSpec{
		{},
		{Input: "inputs/missing"},
		{Gen: &GenSpec{Count: 0}},
		{Gen: &GenSpec{Count: 10, Dist: "no-such-dist"}},
		{Input: "inputs/x", Gen: &GenSpec{Count: 10}},
		{Gen: &GenSpec{Count: 10}, CrashPhase: 9},
	}
	for i, sp := range bad {
		if _, err := s.Submit(sp); err == nil {
			t.Errorf("bad spec %d accepted", i)
		}
	}
}

func TestCancelQueuedJob(t *testing.T) {
	cfg := testConfig()
	cfg.MaxJobs = 1
	s, err := New(cfg, storage.NewObject())
	if err != nil {
		t.Fatal(err)
	}
	first, err := s.Submit(testSpec(20000, 1))
	if err != nil {
		t.Fatal(err)
	}
	queued, err := s.Submit(testSpec(2000, 2))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Cancel(queued); err != nil {
		t.Fatal(err)
	}
	s.Wait(queued)
	if st, _ := s.Status(queued); st.State != StateCanceled {
		t.Fatalf("queued job after cancel: %s", st.State)
	}
	s.Wait(first)
	if st, _ := s.Status(first); st.State != StateDone {
		t.Fatalf("first job: %s (%s)", st.State, st.Error)
	}
	s.Stop()
}

// TestCancelPromotionWindow pins the race between Cancel and job
// promotion: finish() dequeues the next job and hands it to an executor
// goroutine, but the in-memory state stays "queued" until run() flips
// it.  A Cancel landing in that window must not close the job's done
// channel (the executor closes it; a second close panics the daemon)
// and must still take effect — the job ends canceled, not done.
func TestCancelPromotionWindow(t *testing.T) {
	s, err := New(testConfig(), storage.NewObject())
	if err != nil {
		t.Fatal(err)
	}
	// Hand-build the window deterministically: a job that is in s.jobs
	// with state "queued" but absent from s.queue, exactly as finish()
	// leaves a promoted job before its goroutine starts.
	spec := testSpec(2000, 1)
	j := &job{
		id:     "job-9999",
		spec:   spec,
		status: JobStatus{ID: "job-9999", State: StateQueued},
		done:   make(chan struct{}),
	}
	if err := saveSpec(s.store, j.id, &spec); err != nil {
		t.Fatal(err)
	}
	s.mu.Lock()
	s.jobs[j.id] = j
	s.order = append(s.order, j.id)
	s.running++
	s.mu.Unlock()
	if err := s.Cancel(j.id); err != nil {
		t.Fatal(err)
	}
	select {
	case <-j.done:
		t.Fatal("Cancel closed the done channel of a job it did not dequeue")
	default:
	}
	j.statusMu.Lock()
	canceled := j.canceled
	j.statusMu.Unlock()
	if !canceled {
		t.Fatal("Cancel did not flag the promoted job")
	}
	// The executor now starts; it must close done exactly once and land
	// the job in canceled — not run it to done over the acknowledged
	// cancel.
	s.mu.Lock()
	s.start(j)
	s.mu.Unlock()
	s.Wait(j.id)
	if st := j.State(); st != StateCanceled {
		t.Fatalf("promoted job after window cancel: %s", st)
	}
	if st, err := loadStatus(s.store, j.id); err != nil || st.State != StateCanceled {
		t.Fatalf("durable state %+v (%v), want canceled", st, err)
	}
	s.Stop()
}

// TestSubmitHugeGenCount pins the admission overflow: a gen count large
// enough that 4·count·KeySize wraps int64 must be rejected as over
// budget, not admitted with a tiny overflowed demand and then OOM the
// daemon at generation time.
func TestSubmitHugeGenCount(t *testing.T) {
	s, err := New(testConfig(), storage.NewObject())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Stop()
	for _, count := range []int64{1 << 60, math.MaxInt64} {
		if _, err := s.Submit(testSpec(count, 1)); !errors.Is(err, ErrBudget) {
			t.Fatalf("gen.count %d: %v, want ErrBudget", count, err)
		}
	}
}

// TestStopClosesQueuedJobs pins the Stop/Wait deadlock: a job still
// queued at Stop has no executor to close its done channel, so Stop
// must close it itself — and a restarted daemon must still pick the job
// up from its durable "queued" status and run it to done.
func TestStopClosesQueuedJobs(t *testing.T) {
	cfg := testConfig()
	cfg.MaxJobs = 1
	store := storage.NewObject()
	s, err := New(cfg, store)
	if err != nil {
		t.Fatal(err)
	}
	first, err := s.Submit(testSpec(100_000, 1))
	if err != nil {
		t.Fatal(err)
	}
	queued, err := s.Submit(testSpec(2000, 2))
	if err != nil {
		t.Fatal(err)
	}
	s.Stop()
	done := make(chan struct{})
	go func() {
		s.Wait(queued)
		s.Wait(first)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("Wait on a job blocked after Stop")
	}
	// Recovery: whatever Stop interrupted resumes, whatever stayed
	// queued restarts fresh; every job ends done.
	s2, err := New(cfg, store)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{first, queued} {
		s2.Wait(id)
		if st, _ := s2.Status(id); st.State != StateDone {
			t.Fatalf("job %s after restart: %s (%s)", id, st.State, st.Error)
		}
	}
	s2.Stop()
}

// TestHTTPEndToEnd drives the whole API over a real HTTP server against
// the object-store backend: upload an input object, submit, poll,
// download the result, check the trace and metrics.
func TestHTTPEndToEnd(t *testing.T) {
	s, err := New(testConfig(), storage.NewObject())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Stop()
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	// Upload 2000 keys as an object.
	keys := record.Uniform.Generate(2000, 42, 4)
	body := record.EncodeKeys(nil, keys)
	req, _ := http.NewRequest(http.MethodPut, srv.URL+"/objects/inputs/data.u32", bytes.NewReader(body))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("upload: %s", resp.Status)
	}
	// Uploads outside inputs/ are rejected.
	req, _ = http.NewRequest(http.MethodPut, srv.URL+"/objects/jobs/x/spec.json", strings.NewReader("{}"))
	resp, _ = http.DefaultClient.Do(req)
	resp.Body.Close()
	if resp.StatusCode != http.StatusForbidden {
		t.Fatalf("upload outside inputs/: %s", resp.Status)
	}

	// Submit a job over the uploaded object.
	spec, _ := json.Marshal(JobSpec{Input: "inputs/data.u32", MemoryKeys: 1024, Tapes: 4, MessageKeys: 128})
	resp, err = http.Post(srv.URL+"/jobs", "application/json", bytes.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	var sub struct {
		ID string `json:"id"`
	}
	json.NewDecoder(resp.Body).Decode(&sub)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted || sub.ID == "" {
		t.Fatalf("submit: %s id=%q", resp.Status, sub.ID)
	}

	// Poll via the library (the HTTP status endpoint is exercised below
	// once terminal).
	s.Wait(sub.ID)
	resp, err = http.Get(srv.URL + "/jobs/" + sub.ID)
	if err != nil {
		t.Fatal(err)
	}
	var st JobStatus
	json.NewDecoder(resp.Body).Decode(&st)
	resp.Body.Close()
	if st.State != StateDone || st.Root == "" {
		t.Fatalf("status: %+v", st)
	}

	// The result endpoint streams the sorted keys.
	resp, err = http.Get(srv.URL + "/jobs/" + sub.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	out, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	got := record.DecodeKeys(nil, out)
	if len(got) != len(keys) {
		t.Fatalf("result has %d keys, want %d", len(got), len(keys))
	}
	for i := 1; i < len(got); i++ {
		if got[i] < got[i-1] {
			t.Fatalf("result not sorted at %d", i)
		}
	}
	if record.ChecksumOf(got) != record.ChecksumOf(keys) {
		t.Fatal("result is not a permutation of the input")
	}

	// Trace and metrics endpoints respond.
	resp, err = http.Get(srv.URL + "/jobs/" + sub.ID + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	tr, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !bytes.Contains(tr, []byte("traceEvents")) {
		t.Fatalf("trace: %s (%d bytes)", resp.Status, len(tr))
	}
	resp, err = http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mets, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !bytes.Contains(mets, []byte("hetsortd_jobs_done_total 1")) {
		t.Fatalf("metrics:\n%s", mets)
	}

	// Listing includes the job; unknown jobs 404.
	resp, _ = http.Get(srv.URL + "/jobs")
	var list []JobStatus
	json.NewDecoder(resp.Body).Decode(&list)
	resp.Body.Close()
	if len(list) != 1 || list[0].ID != sub.ID {
		t.Fatalf("list: %+v", list)
	}
	resp, _ = http.Get(srv.URL + "/jobs/no-such-job")
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job: %s", resp.Status)
	}
}

// TestFaultyBackendFailsJob wires the fault-injecting store under the
// service: the job must fail cleanly, not wedge the daemon.
func TestFaultyBackendFailsJob(t *testing.T) {
	store := storage.NewFaulty(storage.NewObject(), 3)
	s, err := New(testConfig(), store)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Stop()
	id, err := s.Submit(testSpec(2000, 1))
	if err != nil {
		// Also acceptable: the submission itself hits the dead store.
		return
	}
	s.Wait(id)
	st, _ := s.Status(id)
	if st.State == StateDone {
		t.Fatal("job completed against a dead object store")
	}
}

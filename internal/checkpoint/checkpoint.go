// Package checkpoint makes Algorithm 1 crash-tolerant: each node
// records its progress through the five phases in a durable manifest on
// its private disk, and a recovery planner turns the surviving manifests
// back into a resume plan after a failure.
//
// A manifest is committed at every phase boundary — the natural
// consistency points of a regular-sampling sort — and records the
// completed phase, the virtual clock at commit, the durable files that
// phase depends on (with their key counts), the broadcast pivots once
// known, and a fingerprint of the sort configuration.  Manifests are
// written with the classic durable-replace protocol: serialise to a
// temporary file, fsync when the filesystem supports it, then atomically
// Rename over the live name.  A SHA-256 checksum over the body detects
// torn or corrupted manifests on load, so a half-written manifest can
// never be mistaken for a commit.
package checkpoint

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"strings"

	"hetsort/internal/diskio"
	"hetsort/internal/merkle"
	"hetsort/internal/record"
)

// ManifestName is the live manifest file on each node's private FS.
const ManifestName = "hetsort.ckpt"

// manifestTemp is the scratch name the durable-replace protocol writes
// before the atomic rename.
const manifestTemp = ManifestName + ".tmp"

// magic heads every manifest; bump the suffix on incompatible changes.
const magic = "hetsort-checkpoint-v1"

// Version is the manifest schema version written by this package.
const Version = 1

// ErrCorrupt reports a manifest whose checksum or structure does not
// verify — a torn write or disk corruption.  Callers must treat the
// node as having no usable checkpoint.
var ErrCorrupt = errors.New("checkpoint: manifest corrupt")

// Phases is the number of commit points in Algorithm 1.
const Phases = 5

// FileInfo names a durable file a committed phase depends on, with its
// expected length in keys so recovery can detect truncation.  When the
// run is Merkle-anchored (Manifest.Root non-empty), SHA256 carries the
// hex content hash that forms the file's leaf in the manifest's Merkle
// tree.
type FileInfo struct {
	Name   string `json:"name"`
	Keys   int64  `json:"keys"`
	SHA256 string `json:"sha256,omitempty"`
}

// Manifest is one node's durable progress record.
type Manifest struct {
	// Version is the manifest schema version.
	Version int `json:"version"`
	// Node and P identify the writer and the cluster size.
	Node int `json:"node"`
	P    int `json:"p"`
	// Phase is the number of completed (committed) phases, 0..Phases.
	Phase int `json:"phase"`
	// Clock is the node's virtual clock at the commit, replayed on
	// resume so recovered runs report honest virtual times.
	Clock float64 `json:"clock"`
	// Sig fingerprints the sort configuration; resume refuses to mix
	// manifests from a differently-parameterised run.
	Sig string `json:"sig"`
	// Input is the global input multiset checksum, identical on every
	// node, so a resumed run can verify its final output.
	Input record.Checksum `json:"input"`
	// Pivots holds the broadcast pivots once Phase >= 2.  Recovery
	// hands them to nodes that died before receiving the broadcast,
	// sparing a re-gather.
	Pivots []record.Key `json:"pivots,omitempty"`
	// Files lists the durable files this phase depends on.
	Files []FileInfo `json:"files,omitempty"`
	// Root, when non-empty, is the hex Merkle root over Files: each
	// file's content hash (FileInfo.SHA256) is a leaf bound to its name,
	// so one 32-byte value anchors every artifact the committed phase
	// depends on.  Optional — plain checkpointed runs leave it empty and
	// skip the hashing I/O.
	Root string `json:"root,omitempty"`
}

// HashFile computes the SHA-256 of the named file's content, charging
// acct for the block reads it performs (blockKeys keys per block) so the
// hashing cost shows up honestly in the PDM counters and virtual time.
func HashFile(fs diskio.FS, name string, blockKeys int, acct diskio.Accounting) (string, error) {
	f, err := fs.Open(name)
	if err != nil {
		return "", fmt.Errorf("checkpoint: hashing %s: %w", name, err)
	}
	defer f.Close()
	if blockKeys <= 0 {
		blockKeys = 2048
	}
	h := sha256.New()
	buf := make([]byte, blockKeys*record.KeySize)
	var off int64
	for {
		n, err := f.Read(buf)
		if n > 0 {
			h.Write(buf[:n])
			acct.ChargeRead(diskio.DiskAt(f, off), 1)
			off += int64(n)
		}
		if err == io.EOF {
			break
		}
		if err != nil {
			return "", fmt.Errorf("checkpoint: hashing %s: %w", name, err)
		}
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}

// Merkleize fills in each dependency's content hash and the manifest's
// Merkle root, reading every file in m.Files from fs (costs charged to
// acct).  Call before Save on the manifests that should anchor their
// artifacts; the hetsortd service does this at the final phase so a
// job's output set verifies against one root.
func (m *Manifest) Merkleize(fs diskio.FS, blockKeys int, acct diskio.Accounting) error {
	leaves := make([]merkle.Leaf, 0, len(m.Files))
	for i := range m.Files {
		hash, err := HashFile(fs, m.Files[i].Name, blockKeys, acct)
		if err != nil {
			return err
		}
		m.Files[i].SHA256 = hash
		var sum merkle.Sum
		if _, err := hex.Decode(sum[:], []byte(hash)); err != nil {
			return fmt.Errorf("checkpoint: bad hash for %s: %w", m.Files[i].Name, err)
		}
		leaves = append(leaves, merkle.Leaf{Name: m.Files[i].Name, Sum: sum})
	}
	t, err := merkle.New(leaves)
	if err != nil {
		return fmt.Errorf("checkpoint: building manifest tree: %w", err)
	}
	root := t.Root()
	m.Root = hex.EncodeToString(root[:])
	return nil
}

// VerifyRoot recomputes the Merkle root from the recorded per-file
// hashes and checks it against m.Root.  It reads no file content — use
// Validate (which re-hashes) for end-to-end artifact verification.
func (m *Manifest) VerifyRoot() error {
	if m.Root == "" {
		return nil
	}
	leaves := make([]merkle.Leaf, 0, len(m.Files))
	for _, fi := range m.Files {
		var sum merkle.Sum
		if len(fi.SHA256) != 2*merkle.HashSize {
			return fmt.Errorf("%w: file %s has root but no valid hash", ErrCorrupt, fi.Name)
		}
		if _, err := hex.Decode(sum[:], []byte(fi.SHA256)); err != nil {
			return fmt.Errorf("%w: file %s has root but no valid hash", ErrCorrupt, fi.Name)
		}
		leaves = append(leaves, merkle.Leaf{Name: fi.Name, Sum: sum})
	}
	t, err := merkle.New(leaves)
	if err != nil {
		return fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	root := t.Root()
	if got := hex.EncodeToString(root[:]); got != m.Root {
		return fmt.Errorf("%w: merkle root %s does not match recorded %s", ErrCorrupt, got, m.Root)
	}
	return nil
}

// Save durably commits m to fs using temp-write + sync + atomic rename,
// charging one metadata block write and one seek to acct (the cost that
// makes checkpoint overhead visible in the PDM counters).
func Save(fs diskio.FS, m *Manifest, acct diskio.Accounting) error {
	m.Version = Version
	body, err := json.Marshal(m)
	if err != nil {
		return fmt.Errorf("checkpoint: encoding manifest: %w", err)
	}
	sum := sha256.Sum256(body)
	f, err := fs.Create(manifestTemp)
	if err != nil {
		return fmt.Errorf("checkpoint: creating manifest temp: %w", err)
	}
	header := fmt.Sprintf("%s sha256=%s\n", magic, hex.EncodeToString(sum[:]))
	if _, err := io.WriteString(f, header); err != nil {
		f.Close()
		return fmt.Errorf("checkpoint: writing manifest: %w", err)
	}
	if _, err := f.Write(body); err != nil {
		f.Close()
		return fmt.Errorf("checkpoint: writing manifest: %w", err)
	}
	// fsync before rename when the FS supports it (DirFS does), so the
	// rename never publishes an unflushed manifest.
	if s, ok := f.(interface{ Sync() error }); ok {
		if err := s.Sync(); err != nil {
			f.Close()
			return fmt.Errorf("checkpoint: syncing manifest: %w", err)
		}
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("checkpoint: closing manifest: %w", err)
	}
	if err := fs.Rename(manifestTemp, ManifestName); err != nil {
		return fmt.Errorf("checkpoint: publishing manifest: %w", err)
	}
	// The manifest is metadata, not striped key data: attribute its one
	// block write and the publishing seek to member disk 0.
	acct.ChargeWrite(0, 1)
	acct.ChargeSeek(0, 1)
	return nil
}

// Load reads and verifies the manifest on fs.  A missing manifest
// surfaces as os.ErrNotExist; a torn or mangled one as ErrCorrupt.
func Load(fs diskio.FS) (*Manifest, error) {
	f, err := fs.Open(ManifestName)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	raw, err := io.ReadAll(f)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: reading manifest: %w", err)
	}
	nl := strings.IndexByte(string(raw), '\n')
	if nl < 0 {
		return nil, fmt.Errorf("%w: missing header", ErrCorrupt)
	}
	header, body := string(raw[:nl]), raw[nl+1:]
	want, ok := strings.CutPrefix(header, magic+" sha256=")
	if !ok {
		return nil, fmt.Errorf("%w: bad magic %q", ErrCorrupt, header)
	}
	sum := sha256.Sum256(body)
	if hex.EncodeToString(sum[:]) != want {
		return nil, fmt.Errorf("%w: checksum mismatch (torn write?)", ErrCorrupt)
	}
	var m Manifest
	if err := json.Unmarshal(body, &m); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	if m.Version != Version {
		return nil, fmt.Errorf("checkpoint: manifest version %d, want %d", m.Version, Version)
	}
	return &m, nil
}

// Remove deletes the manifest (after a fully completed run, or to start
// over).  Missing manifests are not an error.
func Remove(fs diskio.FS) error {
	err := fs.Remove(ManifestName)
	if err != nil && errors.Is(err, os.ErrNotExist) {
		return nil
	}
	return err
}

// Validate checks that every file the manifest depends on exists on fs
// with the recorded length, and — for Merkle-anchored manifests — that
// its content re-hashes to the recorded leaf and the leaves still
// produce the recorded root.
func (m *Manifest) Validate(fs diskio.FS) error {
	for _, fi := range m.Files {
		n, err := diskio.CountKeys(fs, fi.Name)
		if err != nil {
			return fmt.Errorf("checkpoint: node %d phase %d dependency %s: %w", m.Node, m.Phase, fi.Name, err)
		}
		if n != fi.Keys {
			return fmt.Errorf("checkpoint: node %d phase %d dependency %s has %d keys, manifest says %d",
				m.Node, m.Phase, fi.Name, n, fi.Keys)
		}
		if fi.SHA256 != "" {
			got, err := HashFile(fs, fi.Name, 0, diskio.Accounting{})
			if err != nil {
				return err
			}
			if got != fi.SHA256 {
				return fmt.Errorf("checkpoint: node %d phase %d dependency %s content hash %s, manifest says %s",
					m.Node, m.Phase, fi.Name, got, fi.SHA256)
			}
		}
	}
	return m.VerifyRoot()
}

// Recovery is the cluster-wide resume plan assembled from the per-node
// manifests: what each node has committed, where its clock stood, and
// the globally agreed pivots if any node got far enough to know them.
type Recovery struct {
	// Done[i] is node i's committed phase count (0..Phases).
	Done []int
	// Clocks[i] is node i's virtual clock at its last commit.
	Clocks []float64
	// Pivots are the broadcast pivots, non-nil once any node committed
	// phase 2 (pivot selection is a collective, so one survivor's copy
	// is everyone's copy).
	Pivots []record.Key
	// Input is the global input checksum recorded at the start of the
	// original run.
	Input record.Checksum
}

// MinDone returns the least-advanced node's committed phase.
func (r *Recovery) MinDone() int {
	m := Phases
	for _, d := range r.Done {
		if d < m {
			m = d
		}
	}
	return m
}

// Complete reports whether every node already committed all phases (the
// crashed run died after the work was done).
func (r *Recovery) Complete() bool { return r.MinDone() >= Phases }

// Plan loads, verifies and cross-checks the manifests of all nodes and
// returns the resume plan.  sig must match the fingerprint recorded by
// the interrupted run, so a resume cannot silently change the sort
// parameters mid-flight.
func Plan(disks []diskio.FS, sig string) (*Recovery, error) {
	p := len(disks)
	r := &Recovery{
		Done:   make([]int, p),
		Clocks: make([]float64, p),
	}
	for i, fs := range disks {
		m, err := Load(fs)
		if err != nil {
			if errors.Is(err, os.ErrNotExist) {
				return nil, fmt.Errorf("checkpoint: node %d has no manifest (was the run checkpointed?): %w", i, err)
			}
			return nil, fmt.Errorf("checkpoint: node %d: %w", i, err)
		}
		if m.Node != i {
			return nil, fmt.Errorf("checkpoint: manifest on node %d claims node %d", i, m.Node)
		}
		if m.P != p {
			return nil, fmt.Errorf("checkpoint: node %d manifest is for a %d-node cluster, resuming on %d", i, m.P, p)
		}
		if m.Sig != sig {
			return nil, fmt.Errorf("checkpoint: node %d manifest was written by a different configuration\n  manifest: %s\n  resume:   %s", i, m.Sig, sig)
		}
		if m.Phase < 0 || m.Phase > Phases {
			return nil, fmt.Errorf("checkpoint: node %d manifest has impossible phase %d", i, m.Phase)
		}
		if err := m.Validate(fs); err != nil {
			return nil, err
		}
		if i == 0 {
			r.Input = m.Input
		} else if !m.Input.Equal(r.Input) {
			return nil, fmt.Errorf("checkpoint: node %d input checksum %v disagrees with node 0's %v", i, m.Input, r.Input)
		}
		r.Done[i] = m.Phase
		r.Clocks[i] = m.Clock
		if m.Phase >= 2 && r.Pivots == nil {
			r.Pivots = append([]record.Key(nil), m.Pivots...)
		}
	}
	return r, nil
}

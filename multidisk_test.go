package hetsort

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"hetsort/internal/pdm"
)

// TestSortMultiDiskEquivalence: the PDM D parameter is timing-only at
// the sort's interface — output, I/O counts and partitions are
// identical at any D and access mode, per-disk counters sum to the node
// counters, and D=4 finishes strictly faster than D=1.
func TestSortMultiDiskEquivalence(t *testing.T) {
	keys := make([]Key, 32768)
	for i := range keys {
		keys[i] = Key(2654435761 * uint32(i+7))
	}
	base := Config{MemoryKeys: 4096, BlockKeys: 128, Tapes: 5, MessageKeys: 512}
	run := func(mut func(*Config)) ([]Key, *Report) {
		cfg := base
		mut(&cfg)
		sorted, rep, err := Sort(keys, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return sorted, rep
	}
	s1, r1 := run(func(c *Config) {})
	s4, r4 := run(func(c *Config) { c.Disks = 4 })
	sInd, rInd := run(func(c *Config) { c.Disks = 4; c.DiskAccess = DiskAccessIndependent })

	for name, s := range map[string][]Key{"D=4": s4, "D=4-independent": sInd} {
		if len(s) != len(s1) {
			t.Fatalf("%s returned %d keys, D=1 %d", name, len(s), len(s1))
		}
		for i := range s1 {
			if s[i] != s1[i] {
				t.Fatalf("%s output differs from D=1 at key %d", name, i)
			}
		}
	}
	for i := range r1.NodeIO {
		if r1.NodeIO[i] != r4.NodeIO[i] || r1.NodeIO[i] != rInd.NodeIO[i] {
			t.Fatalf("node %d I/O differs across D: %v / %v / %v",
				i, r1.NodeIO[i], r4.NodeIO[i], rInd.NodeIO[i])
		}
	}
	if r1.DiskIO != nil {
		t.Fatal("Report.DiskIO populated at D=1")
	}
	if len(r4.DiskIO) != len(r4.NodeIO) {
		t.Fatalf("Report.DiskIO has %d nodes, want %d", len(r4.DiskIO), len(r4.NodeIO))
	}
	for i, dio := range r4.DiskIO {
		if len(dio) != 4 {
			t.Fatalf("node %d has %d disk entries, want 4", i, len(dio))
		}
		var sum pdm.IOStats
		for _, s := range dio {
			sum = sum.Add(s)
		}
		if sum != r4.NodeIO[i] {
			t.Fatalf("node %d per-disk sum %v != node I/O %v", i, sum, r4.NodeIO[i])
		}
	}
	if r4.Time >= r1.Time {
		t.Fatalf("D=4 (%v virtual s) not faster than D=1 (%v)", r4.Time, r1.Time)
	}
}

// TestSortGuidesortFormer: the guidesort run former produces the same
// partitions as the default former (pivots depend only on the sorted
// file) and a valid sorted output.
func TestSortGuidesortFormer(t *testing.T) {
	keys := make([]Key, 20000)
	for i := range keys {
		keys[i] = Key(1664525*uint32(i) + 1013904223)
	}
	base := Config{MemoryKeys: 4096, BlockKeys: 128, Tapes: 5, MessageKeys: 512}
	sortedDef, repDef, err := Sort(keys, base)
	if err != nil {
		t.Fatal(err)
	}
	gs := base
	gs.RunFormation = RunGuidesort
	sortedGS, repGS, err := Sort(keys, gs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range sortedDef {
		if sortedDef[i] != sortedGS[i] {
			t.Fatalf("guidesort output differs at key %d", i)
		}
	}
	for i := range repDef.PartitionSizes {
		if repDef.PartitionSizes[i] != repGS.PartitionSizes[i] {
			t.Fatalf("guidesort changed the partitioning: %v vs %v",
				repGS.PartitionSizes, repDef.PartitionSizes)
		}
	}
}

// TestSortFileMultiDiskCrashResume: striped node disks survive the full
// fault-tolerance cycle — a D=4 overlapped checkpointed run crashes,
// resumes, and finishes byte-identical to both an uninterrupted D=4 run
// and a plain D=1 run; resuming under a different D is refused (the
// striped on-disk layout is part of the resume fingerprint).
func TestSortFileMultiDiskCrashResume(t *testing.T) {
	dir := t.TempDir()
	inPath := filepath.Join(dir, "in.u32")
	writeKeyFile(t, inPath, 40000)

	cfg := Config{
		Perf: []int{1, 1, 4, 4}, MemoryKeys: 4096, BlockKeys: 128, Tapes: 5, MessageKeys: 512,
		Disks: 4, Overlap: true,
	}

	// Cross-D byte equality: a single-disk run is the reference.
	d1Cfg := cfg
	d1Cfg.Disks = 1
	d1Cfg.WorkDir = filepath.Join(dir, "d1")
	d1Out := filepath.Join(dir, "d1.u32")
	if _, err := SortFile(inPath, d1Out, d1Cfg); err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile(d1Out)
	if err != nil {
		t.Fatal(err)
	}

	refCfg := cfg
	refCfg.WorkDir = filepath.Join(dir, "ref")
	refCfg.Checkpoint.Enabled = true
	refOut := filepath.Join(dir, "ref.u32")
	refRep, err := SortFile(inPath, refOut, refCfg)
	if err != nil {
		t.Fatal(err)
	}
	refBytes, err := os.ReadFile(refOut)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(refBytes, want) {
		t.Fatal("D=4 output differs from D=1 output")
	}
	for i, dio := range refRep.DiskIO {
		var sum pdm.IOStats
		for _, s := range dio {
			sum = sum.Add(s)
		}
		if sum != refRep.NodeIO[i] {
			t.Fatalf("node %d per-disk sum %v != node I/O %v (overlapped run)", i, sum, refRep.NodeIO[i])
		}
	}

	runCfg := cfg
	runCfg.WorkDir = filepath.Join(dir, "work")
	runCfg.Checkpoint.Enabled = true
	runCfg.Checkpoint.CrashNode = 2
	runCfg.Checkpoint.CrashPhase = 4
	outPath := filepath.Join(dir, "out.u32")
	if _, err := SortFile(inPath, outPath, runCfg); !IsCrash(err) {
		t.Fatalf("want an injected crash, got %v", err)
	}

	// Resuming with a different disk count must be refused.
	wrongCfg := cfg
	wrongCfg.Disks = 2
	wrongCfg.WorkDir = filepath.Join(dir, "work")
	wrongCfg.Checkpoint.Enabled = true
	if _, err := Resume(outPath, wrongCfg); err == nil {
		t.Fatal("resume with mismatched disk count accepted")
	}

	resCfg := cfg
	resCfg.WorkDir = filepath.Join(dir, "work")
	resCfg.Checkpoint.Enabled = true
	resRep, err := Resume(outPath, resCfg)
	if err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("resumed D=4 output differs from the reference")
	}
	for i, dio := range resRep.DiskIO {
		var sum pdm.IOStats
		for _, s := range dio {
			sum = sum.Add(s)
		}
		if sum != resRep.NodeIO[i] {
			t.Fatalf("node %d per-disk sum %v != node I/O %v (resumed run)", i, sum, resRep.NodeIO[i])
		}
	}
}

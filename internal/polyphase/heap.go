// Package polyphase implements the sequential external sorts the paper
// uses: polyphase merge sort (Knuth, The Art of Computer Programming
// vol. 3, §5.4.2) for step 1 of Algorithm 1, and a balanced k-way
// external merge used for the final merge of already-sorted partition
// files (step 5) and as a baseline.
//
// Polyphase merging "uses 2m files to get a 2m-1 way merge without a
// separate redistribution of runs after every pass", as the paper puts
// it: runs are distributed over T-1 tapes following the generalized
// Fibonacci ("perfect") distribution, padded with dummy runs, and each
// merge phase runs until one tape empties and becomes the next output.
package polyphase

import (
	"hetsort/internal/record"
	"hetsort/internal/vtime"
)

// selectionItem is an entry in the replacement-selection heap: keys
// tagged with the run generation they belong to, ordered by (run, key).
type selectionItem struct {
	key record.Key
	run int64
}

// selectionHeap is a min-heap over (run, key) pairs for replacement
// selection: keys of the current run sort before keys demoted to the
// next run.
type selectionHeap struct {
	items []selectionItem
	meter vtime.Meter
}

func newSelectionHeap(capacity int, meter vtime.Meter) *selectionHeap {
	if meter == nil {
		meter = vtime.Nop{}
	}
	return &selectionHeap{items: make([]selectionItem, 0, capacity), meter: meter}
}

func (h *selectionHeap) len() int { return len(h.items) }

func (h *selectionHeap) less(a, b selectionItem) bool {
	if a.run != b.run {
		return a.run < b.run
	}
	return a.key < b.key
}

func (h *selectionHeap) push(it selectionItem) {
	h.items = append(h.items, it)
	i := len(h.items) - 1
	var ops int64
	for i > 0 {
		parent := (i - 1) / 2
		ops++
		if !h.less(h.items[i], h.items[parent]) {
			break
		}
		h.items[parent], h.items[i] = h.items[i], h.items[parent]
		i = parent
	}
	h.meter.ChargeCompute(ops + 1)
}

func (h *selectionHeap) peek() selectionItem { return h.items[0] }

func (h *selectionHeap) pop() selectionItem {
	top := h.items[0]
	last := len(h.items) - 1
	h.items[0] = h.items[last]
	h.items = h.items[:last]
	h.siftDown(0)
	return top
}

func (h *selectionHeap) replaceTop(it selectionItem) {
	h.items[0] = it
	h.siftDown(0)
}

func (h *selectionHeap) siftDown(i int) {
	n := len(h.items)
	var ops int64
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && h.less(h.items[l], h.items[smallest]) {
			smallest = l
		}
		if r < n && h.less(h.items[r], h.items[smallest]) {
			smallest = r
		}
		ops += 2
		if smallest == i {
			break
		}
		h.items[i], h.items[smallest] = h.items[smallest], h.items[i]
		i = smallest
	}
	h.meter.ChargeCompute(ops + 1)
}

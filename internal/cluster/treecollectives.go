package cluster

import "hetsort/internal/record"

// Tree collectives: r-ary reduction-tree counterparts of the flat
// collectives in collectives.go, always rooted at node 0.  The flat
// Gather funnels p−1 messages into one node — O(p) fan-in and O(p·s)
// root work — which is exactly what collapses first at p=1024.  Here
// the cluster is decomposed recursively into contiguous rank blocks:
// a block [lo,hi) splits into at most r sub-blocks of ⌈(hi−lo)/r⌉
// ranks, each sub-block's lowest rank acts as its leader, and data
// moves only between a block leader and its ≤ r−1 sub-leaders.  Every
// node therefore talks to O(r) peers per level and O(r·log_r p) peers
// in total, and no link ever carries more than a sub-block's worth of
// messages.
//
// As with the flat collectives, all nodes must call the same
// collective with consistent arguments, and peer orderings are fixed
// (ascending sub-blocks, ascending ranks within them) so the virtual
// clocks stay deterministic.

// treeRadix clamps a radix to the meaningful minimum.
func treeRadix(r int) int {
	if r < 2 {
		return 2
	}
	return r
}

// blockOf returns the sub-block [mylo,myhi) of [lo,hi) containing rank
// id, given sub-blocks of size sub.
func blockOf(id, lo, hi, sub int) (mylo, myhi int) {
	mylo = lo + (id-lo)/sub*sub
	myhi = mylo + sub
	if myhi > hi {
		myhi = hi
	}
	return mylo, myhi
}

// TreeGather gathers each node's keys to node 0 up an r-ary tree.
// Node 0 returns the per-node slices indexed by rank (its own
// contribution included, as a copy); others return nil.  Equivalent to
// Gather(0, tag, keys) message-for-message at the root's result, but
// each sub-leader forwards its block's contributions as one message
// per rank, so no node receives from more than r−1 peers.
func (n *Node) TreeGather(radix, tag int, keys []record.Key) ([][]record.Key, error) {
	r := treeRadix(radix)
	var rec func(lo, hi int) ([][]record.Key, error)
	rec = func(lo, hi int) ([][]record.Key, error) {
		if hi-lo == 1 {
			return [][]record.Key{append([]record.Key(nil), keys...)}, nil
		}
		sub := (hi - lo + r - 1) / r
		mylo, myhi := blockOf(n.id, lo, hi, sub)
		got, err := rec(mylo, myhi)
		if err != nil {
			return nil, err
		}
		if n.id == mylo && mylo != lo {
			// Sub-leader: forward the block's contributions to the
			// leader, one message per rank, ascending.
			for _, part := range got {
				if err := n.Send(lo, tag, part); err != nil {
					return nil, err
				}
			}
			return nil, nil
		}
		if n.id != lo {
			return nil, nil
		}
		out := make([][]record.Key, hi-lo)
		copy(out, got) // own sub-block is [lo, myhi)
		for s := lo + sub; s < hi; s += sub {
			end := s + sub
			if end > hi {
				end = hi
			}
			for rank := s; rank < end; rank++ {
				part, err := n.Recv(s, tag)
				if err != nil {
					return nil, err
				}
				out[rank-lo] = part
			}
		}
		return out, nil
	}
	return rec(0, n.P())
}

// TreeBcast distributes keys from node 0 down the r-ary tree; every
// node returns the broadcast payload.  Only node 0's keys argument is
// consulted.
func (n *Node) TreeBcast(radix, tag int, keys []record.Key) ([]record.Key, error) {
	r := treeRadix(radix)
	data := keys
	var rec func(lo, hi int) error
	rec = func(lo, hi int) error {
		if hi-lo == 1 {
			return nil
		}
		sub := (hi - lo + r - 1) / r
		mylo, myhi := blockOf(n.id, lo, hi, sub)
		if n.id == lo {
			for s := lo + sub; s < hi; s += sub {
				if err := n.Send(s, tag, data); err != nil {
					return err
				}
			}
		} else if n.id == mylo {
			got, err := n.Recv(lo, tag)
			if err != nil {
				return err
			}
			data = got
		}
		return rec(mylo, myhi)
	}
	if err := rec(0, n.P()); err != nil {
		return nil, err
	}
	if n.id == 0 {
		return append([]record.Key(nil), keys...), nil
	}
	return data, nil
}

// TreeBarrier synchronises all nodes through the r-ary tree, consuming
// tags tag and tag+1, with the same contract as Barrier: no node
// returns before every node has entered.
func (n *Node) TreeBarrier(radix, tag int) error {
	if _, err := n.TreeGather(radix, tag, nil); err != nil {
		return err
	}
	_, err := n.TreeBcast(radix, tag+1, nil)
	return err
}

// TreeAllGather gathers every node's keys up the tree and broadcasts
// the rank-order concatenation back down; every node returns the same
// concatenated slice.  Consumes tags tag and tag+1, like AllGather.
func (n *Node) TreeAllGather(radix, tag int, keys []record.Key) ([]record.Key, error) {
	parts, err := n.TreeGather(radix, tag, keys)
	if err != nil {
		return nil, err
	}
	var flat []record.Key
	if n.id == 0 {
		for _, p := range parts {
			flat = append(flat, p...)
		}
	}
	return n.TreeBcast(radix, tag+1, flat)
}

// TreeReduce folds every node's keys into node 0 up the r-ary tree:
// each block leader starts from its own sub-result and combines its
// sub-leaders' contributions in ascending rank order, so one merged
// message crosses each tree edge instead of the flat Gather's one per
// rank.  combine must be associative over this bracketing for the
// result to be topology-independent; non-associative combines (the GK
// quantile merge) still give a deterministic result, just not the flat
// one.  Node 0 returns the fold; others return nil.  combine may
// charge virtual compute time via the node it closes over.
func (n *Node) TreeReduce(radix, tag int, keys []record.Key, combine func(acc, child []record.Key) ([]record.Key, error)) ([]record.Key, error) {
	r := treeRadix(radix)
	var rec func(lo, hi int) ([]record.Key, error)
	rec = func(lo, hi int) ([]record.Key, error) {
		if hi-lo == 1 {
			return append([]record.Key(nil), keys...), nil
		}
		sub := (hi - lo + r - 1) / r
		mylo, myhi := blockOf(n.id, lo, hi, sub)
		acc, err := rec(mylo, myhi)
		if err != nil {
			return nil, err
		}
		if n.id == mylo && mylo != lo {
			return nil, n.Send(lo, tag, acc)
		}
		if n.id != lo {
			return nil, nil
		}
		for s := lo + sub; s < hi; s += sub {
			child, err := n.Recv(s, tag)
			if err != nil {
				return nil, err
			}
			if acc, err = combine(acc, child); err != nil {
				return nil, err
			}
		}
		return acc, nil
	}
	return rec(0, n.P())
}

package check

import (
	"fmt"
	"strings"

	"hetsort"
	"hetsort/internal/pdm"
	"hetsort/internal/perf"
	"hetsort/internal/progress"
	"hetsort/internal/record"
	"hetsort/internal/vtime"
)

// Invariant is one machine-checked contract evaluated against every
// harness outcome.
type Invariant struct {
	// Name is the stable identifier (-invariant filters match on it).
	Name string
	// Doc is the one-line contract statement.
	Doc string
	// Applies reports whether the invariant is meaningful for the case
	// (nil = always).  Non-applicable invariants are skipped, not
	// counted as passes.
	Applies func(*Case) bool
	// Check evaluates the invariant over the outcome.
	Check func(*Outcome) error
}

// ioSlack is the additive margin (in block transfers) every step budget
// grants for partial tail blocks, tape bookkeeping and collective
// metadata.  It keeps the budgets meaningful — a step that regresses to
// an extra pass over the data blows through it immediately — without
// flagging legitimate rounding.
const ioSlack = 48

// Registry returns the full invariant registry in evaluation order.
func Registry() []Invariant {
	return []Invariant{
		{
			Name: "error",
			Doc:  "every run of the case completes without error",
			Check: func(o *Outcome) error {
				for i := range o.Runs {
					if err := o.Runs[i].Err; err != nil {
						return fmt.Errorf("run %q: %w", o.Runs[i].Label, err)
					}
				}
				return nil
			},
		},
		{
			Name:  "sorted",
			Doc:   "every run's output is non-decreasing",
			Check: eachRun(checkSorted),
		},
		{
			Name:  "permutation",
			Doc:   "every run's output is a permutation of the input (multiset checksum)",
			Check: eachRun(checkPermutation),
		},
		{
			Name: "equivalence",
			Doc:  "Pipeline, Overlap, Topology and checkpoint/crash-resume are execution strategies: all runs produce byte-identical output",
			Check: func(o *Outcome) error {
				base := &o.Runs[0]
				if base.Err != nil {
					return nil // the error invariant reports it
				}
				for i := 1; i < len(o.Runs); i++ {
					r := &o.Runs[i]
					if r.Err != nil {
						continue
					}
					if !equalKeys(base.Output, r.Output) {
						return fmt.Errorf("run %q output differs from %q: lengths %d vs %d, first diff at %d",
							r.Label, base.Label, len(r.Output), len(base.Output), firstDiff(base.Output, r.Output))
					}
				}
				return nil
			},
		},
		{
			Name:    "disk",
			Doc:     "the PDM D parameter is timing-only: per-disk counters sum exactly to the node counters, DiskIO is absent at D <= 1, and the disks axis leaves every node's block transfers and seeks unchanged",
			Applies: appliesPSRS,
			Check:   checkDisk,
		},
		{
			Name:    "balance",
			Doc:     "Theorem 1: with regular sampling, node i's final partition holds at most 2*share_i keys (+ the worst duplicate multiplicity, which ties route to one node)",
			Applies: appliesBalance,
			Check:   eachRun(checkBalance),
		},
		{
			Name:    "hist-balance",
			Doc:     "histogram refinement: node i's final partition holds at most share_i + 2*(tol + maxdup) + p keys — a tighter band than Theorem 1's 2*share_i regular-sampling bound",
			Applies: appliesHistBalance,
			Check:   eachRun(checkHistBalance),
		},
		{
			Name:    "step-io",
			Doc:     "each Algorithm-1 step stays within its PDM block-I/O budget (DESIGN.md step bounds, with a fixed documented slack)",
			Applies: appliesPSRS,
			Check:   eachRun(checkStepIO),
		},
		{
			Name:  "attribution",
			Doc:   "per node, compute+disk+network+idle virtual time sums exactly to the clock, and no category is negative",
			Check: eachRun(checkAttribution),
		},
		{
			Name:    "progress",
			Doc:     "live snapshots are monotone (seq strictly increasing, run generation non-decreasing, per-node clock and per-step I/O cells non-decreasing within a generation) and the final snapshot reconciles exactly with the report's PDM counters",
			Applies: appliesPSRS, // the DeWitt baseline executor never binds a tracker
			Check:   eachRun(checkProgress),
		},
	}
}

// Select returns the invariants whose names match the comma-separated
// filter (substring match; empty selects all).
func Select(filter string) []Invariant {
	all := Registry()
	filter = strings.TrimSpace(filter)
	if filter == "" {
		return all
	}
	var toks []string
	for _, t := range strings.Split(filter, ",") {
		if t = strings.TrimSpace(t); t != "" {
			toks = append(toks, t)
		}
	}
	var out []Invariant
	for _, inv := range all {
		for _, t := range toks {
			if strings.Contains(inv.Name, t) {
				out = append(out, inv)
				break
			}
		}
	}
	return out
}

// eachRun lifts a per-run check over all non-errored runs of an
// outcome, labelling failures with the run.
func eachRun(check func(*Case, *Run) error) func(*Outcome) error {
	return func(o *Outcome) error {
		for i := range o.Runs {
			r := &o.Runs[i]
			if r.Err != nil {
				continue
			}
			if err := check(o.Case, r); err != nil {
				return fmt.Errorf("run %q: %w", r.Label, err)
			}
		}
		return nil
	}
}

func checkSorted(_ *Case, r *Run) error {
	for i := 1; i < len(r.Output); i++ {
		if r.Output[i] < r.Output[i-1] {
			return fmt.Errorf("output[%d]=%d < output[%d]=%d", i, r.Output[i], i-1, r.Output[i-1])
		}
	}
	return nil
}

func checkPermutation(c *Case, r *Run) error {
	if len(r.Output) != len(c.Keys) {
		return fmt.Errorf("output has %d keys, input %d", len(r.Output), len(c.Keys))
	}
	want := record.ChecksumOf(c.Keys)
	got := record.ChecksumOf(r.Output)
	if !got.Equal(want) {
		return fmt.Errorf("output %v is not a permutation of input %v", got, want)
	}
	return nil
}

// appliesPSRS gates invariants that presume Algorithm 1's structure.
func appliesPSRS(c *Case) bool {
	return c.Config.Algorithm == "" || c.Config.Algorithm == hetsort.AlgorithmExternalPSRS
}

// appliesBalance gates the Theorem-1 bound to its hypotheses: external
// PSRS with the regular-sampling pivot rule, on portions large enough
// for the regular sample spacing to exist on every node (the paper's
// operating regime; tiny portions fall back to exhaustive sampling,
// where the bound is trivially tighter but the shares round away).
func appliesBalance(c *Case) bool {
	if !appliesPSRS(c) {
		return false
	}
	if s := c.Config.PivotStrategy; s != "" && s != hetsort.PivotRegularSampling {
		return false
	}
	v := vectorOf(c.Config)
	shares := v.Shares(int64(len(c.Keys)))
	for i, s := range shares {
		if s/(int64(v[i])*int64(len(v))) < 1 {
			return false
		}
	}
	return true
}

func checkBalance(c *Case, r *Run) error {
	if r.Report == nil {
		return nil
	}
	v := vectorOf(r.Config)
	shares := v.Shares(int64(len(c.Keys)))
	mult := maxMultiplicity(c.Keys)
	for i, got := range r.Report.PartitionSizes {
		bound := 2*shares[i] + mult
		if got > bound {
			return fmt.Errorf("node %d holds %d keys > 2*share(%d)+maxdup(%d)=%d (Theorem 1 violated)",
				i, got, shares[i], mult, bound)
		}
	}
	return nil
}

// appliesHistBalance gates the refinement bound to the histogram pivot
// strategy.  Unlike Theorem 1 it needs no minimum portion size: the
// rank histograms are exact regardless of how the keys are spread, so
// the bound holds down to degenerate inputs.
func appliesHistBalance(c *Case) bool {
	return appliesPSRS(c) && c.Config.PivotStrategy == hetsort.PivotHistogram
}

// checkHistBalance verifies the refinement contract: every pivot's
// global rank ends within tol of its cumulative share target (or, on a
// duplicate plateau, within the worst multiplicity of it), so node i's
// partition — the difference of two adjacent ranks — stays within
// share_i + 2*(tol + maxdup), plus p for the largest-remainder
// rounding of the targets themselves.
func checkHistBalance(c *Case, r *Run) error {
	if r.Report == nil {
		return nil
	}
	v := vectorOf(r.Config)
	shares := v.Shares(int64(len(c.Keys)))
	minShare := int64(0)
	for i, s := range shares {
		if i == 0 || s < minShare {
			minShare = s
		}
	}
	htol := r.Config.HistTolerance
	if htol == 0 {
		htol = 0.05 // extsort's applyDefaults value
	}
	tol := int64(htol * float64(minShare))
	if tol < 1 {
		tol = 1
	}
	mult := maxMultiplicity(c.Keys)
	for i, got := range r.Report.PartitionSizes {
		bound := shares[i] + 2*(tol+mult) + int64(len(v))
		if got > bound {
			return fmt.Errorf("node %d holds %d keys > share(%d)+2*(tol(%d)+maxdup(%d))+p(%d)=%d (histogram refinement bound violated)",
				i, got, shares[i], tol, mult, len(v), bound)
		}
	}
	return nil
}

// checkStepIO verifies each node's per-step PDM block transfers against
// the DESIGN.md budgets.  Resumed runs are exempt: recovery legitimately
// redoes committed work.  Hierarchical-topology runs are exempt too: the
// budgets restate flat Algorithm 1, and multi-round redistribution
// deliberately trades ceil(log_r p)-1 extra disk passes over the
// received data for O(r) fan-in (DESIGN.md §10).
func checkStepIO(c *Case, r *Run) error {
	if r.Report == nil || r.Resumed || !flatTopology(r.Config) {
		return nil
	}
	cfg := withDefaults(r.Config)
	v := vectorOf(cfg)
	p := len(v)
	n := int64(len(c.Keys))
	shares := v.Shares(n)
	pp := pdm.Params{N: maxInt64(n, 1), M: int64(cfg.MemoryKeys), B: int64(cfg.BlockKeys), D: 1, P: int64(p)}
	for i := 0; i < p; i++ {
		li, qi := shares[i], r.Report.PartitionSizes[i]
		budgets := stepBudgets(pp, cfg, p, li, qi, r.Report.PivotRounds)
		for s := 0; s < 5; s++ {
			if len(r.Report.StepIO[s]) <= i {
				continue
			}
			got := r.Report.StepIO[s][i].Total()
			if got > budgets[s] {
				return fmt.Errorf("node %d step %s: %d block transfers exceed budget %d (l_i=%d q_i=%d B=%d M=%d T=%d)",
					i, stepName(s), got, budgets[s], li, qi, cfg.BlockKeys, cfg.MemoryKeys, cfg.Tapes)
			}
		}
	}
	return nil
}

// stepBudgets computes the five per-step block-transfer budgets for one
// node holding l_i input keys and ending with q_i keys.  They restate
// the paper's step costs (DESIGN.md §1) in checkable form:
//
//	step 1  2·(l_i/B)·(1+passes)      polyphase sort of the portion
//	step 2  l_i/B + samples           pivot sampling (sketch = full scan)
//	step 3  2·(l_i/B) + p             one split pass into p segments
//	step 4  l_i/B + 2·(q_i/B) + 2p    send own segments, land received
//	step 5  merge budget of q_i       p-file external merge (0 if fused)
//
// each plus ioSlack.  Polyphase passes are bounded with fan-in 2 — the
// loosest tape count — so the budget is valid for every Tapes setting.
// The histogram strategy re-scans the sorted file once per refinement
// round, so its step-2 budget is rounds full passes (rounds comes from
// the report's PivotRounds; the other strategies report 1).
func stepBudgets(pp pdm.Params, cfg hetsort.Config, p int, li, qi int64, rounds int) [5]int64 {
	lb := ceilDiv(li, pp.B)
	qb := ceilDiv(qi, pp.B)
	runs := ceilDiv(maxInt64(li, 1), int64(cfg.MemoryKeys))
	passes := pdm.LogCeil(runs, 2)
	var b [5]int64
	b[0] = 2*lb*(2+passes) + ioSlack
	b[1] = lb + int64(8*p*vectorOf(cfg).Max()) + ioSlack
	if cfg.PivotStrategy == hetsort.PivotHistogram && rounds > 1 {
		b[1] = lb*int64(rounds) + ioSlack
	}
	b[2] = 2*lb + int64(p) + ioSlack
	b[3] = lb + 2*qb + int64(2*p) + ioSlack
	b[4] = pp.MergeIOs(qi, int64(p), int64(cfg.Tapes)) + ioSlack
	return b
}

// checkDisk verifies the multi-disk accounting contract on every run
// (per-disk counters sum to the node counters; no per-disk view at
// D <= 1) and, across runs, that the "disks/*" equivalence variants
// moved exactly the same blocks as the base run — D changes when I/O
// happens, never how much of it.
func checkDisk(o *Outcome) error {
	for i := range o.Runs {
		r := &o.Runs[i]
		if r.Err != nil || r.Report == nil {
			continue
		}
		if r.Config.Disks <= 1 {
			if r.Report.DiskIO != nil {
				return fmt.Errorf("run %q: Report.DiskIO populated at D=1", r.Label)
			}
			continue
		}
		if len(r.Report.DiskIO) != len(r.Report.NodeIO) {
			return fmt.Errorf("run %q: DiskIO covers %d nodes, report has %d",
				r.Label, len(r.Report.DiskIO), len(r.Report.NodeIO))
		}
		for n, dio := range r.Report.DiskIO {
			if len(dio) != r.Config.Disks {
				return fmt.Errorf("run %q: node %d has %d disk entries, want %d",
					r.Label, n, len(dio), r.Config.Disks)
			}
			var sum pdm.IOStats
			for _, s := range dio {
				sum = sum.Add(s)
			}
			if sum != r.Report.NodeIO[n] {
				return fmt.Errorf("run %q: node %d per-disk sum %+v != node counters %+v",
					r.Label, n, sum, r.Report.NodeIO[n])
			}
		}
	}
	base := &o.Runs[0]
	if base.Err != nil || base.Report == nil {
		return nil
	}
	for i := 1; i < len(o.Runs); i++ {
		r := &o.Runs[i]
		if r.Err != nil || r.Report == nil || !strings.HasPrefix(r.Label, "disks/") {
			continue
		}
		if len(r.Report.NodeIO) != len(base.Report.NodeIO) {
			return fmt.Errorf("run %q: %d nodes, base has %d",
				r.Label, len(r.Report.NodeIO), len(base.Report.NodeIO))
		}
		for n := range r.Report.NodeIO {
			if r.Report.NodeIO[n] != base.Report.NodeIO[n] {
				return fmt.Errorf("run %q: node %d PDM I/O %+v differs from base %+v (D must be timing-only)",
					r.Label, n, r.Report.NodeIO[n], base.Report.NodeIO[n])
			}
		}
	}
	return nil
}

func checkAttribution(_ *Case, r *Run) error {
	if r.Report == nil {
		return nil
	}
	for i, tb := range r.Report.NodeBreakdown {
		b := vtime.Breakdown{Compute: tb.Compute, Disk: tb.Disk, Network: tb.Network,
			Idle: tb.Idle, Overlapped: tb.Overlapped}
		if err := b.Validate(); err != nil {
			return fmt.Errorf("node %d: %w", i, err)
		}
		if err := vtime.CheckAttribution(r.Report.NodeClocks[i], b); err != nil {
			return fmt.Errorf("node %d: %w", i, err)
		}
	}
	for s := range r.Report.StepBreakdown {
		for i, tb := range r.Report.StepBreakdown[s] {
			b := vtime.Breakdown{Compute: tb.Compute, Disk: tb.Disk, Network: tb.Network,
				Idle: tb.Idle, Overlapped: tb.Overlapped}
			if err := b.Validate(); err != nil {
				return fmt.Errorf("node %d step %s: %w", i, stepName(s), err)
			}
		}
	}
	return nil
}

// checkProgress validates the sampler's snapshot stream: sequence
// numbers strictly increase (also across a crash-resume boundary), the
// run generation never goes backwards, and within one generation each
// node's clock and per-step I/O cells are monotone non-decreasing —
// the counters are cumulative atomics, so any decrease means a sampler
// read tore or a reset leaked into a live run.  The final snapshot
// must be marked done and its per-node I/O must equal the report's
// PDM counters exactly (post-run verification reads are deliberately
// not charged, so the figures reconcile to the block).
func checkProgress(_ *Case, r *Run) error {
	if r.FinalProgress == nil {
		return fmt.Errorf("no final progress snapshot recorded")
	}
	var prev *progress.Snapshot
	for _, s := range r.Progress {
		for i := range s.Nodes {
			np := &s.Nodes[i]
			var sum pdm.IOStats
			for _, cell := range np.StepIO {
				sum = sum.Add(cell)
			}
			if sum != np.IO {
				return fmt.Errorf("seq %d node %d: IO %+v != sum of step cells %+v", s.Seq, i, np.IO, sum)
			}
		}
		if prev != nil {
			if s.Seq <= prev.Seq {
				return fmt.Errorf("seq %d follows %d: not strictly increasing", s.Seq, prev.Seq)
			}
			if s.Run < prev.Run {
				return fmt.Errorf("run generation went backwards: %d after %d (seq %d)", s.Run, prev.Run, s.Seq)
			}
			if s.Run == prev.Run && len(s.Nodes) == len(prev.Nodes) {
				for i := range s.Nodes {
					a, b := &prev.Nodes[i], &s.Nodes[i]
					if b.Clock < a.Clock {
						return fmt.Errorf("node %d clock decreased %.9f -> %.9f (seq %d -> %d)",
							i, a.Clock, b.Clock, prev.Seq, s.Seq)
					}
					for ph := range b.StepIO {
						x, y := a.StepIO[ph], b.StepIO[ph]
						if y.Reads < x.Reads || y.Writes < x.Writes || y.Seeks < x.Seeks {
							return fmt.Errorf("node %d step %s I/O cell decreased %+v -> %+v (seq %d -> %d)",
								i, progress.StepName(ph), x, y, prev.Seq, s.Seq)
						}
					}
				}
			}
		}
		prev = s
	}
	f := r.FinalProgress
	if !f.Done {
		return fmt.Errorf("final snapshot (seq %d) not marked done", f.Seq)
	}
	if r.Report == nil {
		return nil
	}
	if len(f.Nodes) != len(r.Report.NodeIO) {
		return fmt.Errorf("final snapshot has %d nodes, report %d", len(f.Nodes), len(r.Report.NodeIO))
	}
	for i := range f.Nodes {
		if f.Nodes[i].IO != r.Report.NodeIO[i] {
			return fmt.Errorf("node %d: final snapshot IO %+v != report PDM counters %+v",
				i, f.Nodes[i].IO, r.Report.NodeIO[i])
		}
	}
	return nil
}

// vectorOf resolves a config's perf vector the way hetsort.Sort does.
func vectorOf(cfg hetsort.Config) perf.Vector {
	if len(cfg.Perf) > 0 {
		return perf.Vector(cfg.Perf)
	}
	n := cfg.Nodes
	if n <= 0 {
		n = 4
	}
	return perf.Homogeneous(n)
}

// withDefaults fills the machine parameters the way extsort does.
func withDefaults(cfg hetsort.Config) hetsort.Config {
	if cfg.BlockKeys <= 0 {
		cfg.BlockKeys = 2048
	}
	if cfg.MemoryKeys <= 0 {
		cfg.MemoryKeys = 1 << 16
	}
	if cfg.Tapes <= 0 {
		cfg.Tapes = 15
	}
	if cfg.MessageKeys <= 0 {
		cfg.MessageKeys = 8192
	}
	return cfg
}

// maxMultiplicity returns the count of the most frequent key (0 for an
// empty input).  Keys equal to a pivot all land in one partition, so the
// Theorem-1 bound relaxes by exactly this much under duplicates (the
// paper's §3.1 duplicates discussion).
func maxMultiplicity(keys []hetsort.Key) int64 {
	if len(keys) == 0 {
		return 0
	}
	counts := make(map[hetsort.Key]int64, len(keys))
	var most int64
	for _, k := range keys {
		counts[k]++
		if counts[k] > most {
			most = counts[k]
		}
	}
	return most
}

func stepName(s int) string {
	names := [5]string{"1:sequential-sort", "2:pivot-selection", "3:partitioning", "4:redistribution", "5:final-merge"}
	return names[s]
}

func ceilDiv(a, b int64) int64 {
	if b <= 0 {
		return a
	}
	return (a + b - 1) / b
}

func maxInt64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

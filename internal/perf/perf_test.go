package perf

import (
	"testing"
	"testing/quick"
)

func TestValidate(t *testing.T) {
	if err := (Vector{}).Validate(); err == nil {
		t.Error("empty vector accepted")
	}
	if err := (Vector{1, 0}).Validate(); err == nil {
		t.Error("zero entry accepted")
	}
	if err := (Vector{1, -2}).Validate(); err == nil {
		t.Error("negative entry accepted")
	}
	if err := (Vector{1, 1, 4, 4}).Validate(); err != nil {
		t.Errorf("paper vector rejected: %v", err)
	}
}

func TestHomogeneous(t *testing.T) {
	v := Homogeneous(4)
	if len(v) != 4 || !v.IsHomogeneous() {
		t.Fatalf("Homogeneous(4)=%v", v)
	}
	if (Vector{2, 2, 2}).IsHomogeneous() != true {
		t.Error("all-2 vector is homogeneous")
	}
	if (Vector{1, 2}).IsHomogeneous() {
		t.Error("1,2 not homogeneous")
	}
}

func TestGCDLCM(t *testing.T) {
	cases := []struct{ a, b, gcd, lcm int64 }{
		{8, 12, 4, 24},
		{1, 1, 1, 1},
		{7, 13, 1, 91},
		{0, 5, 5, 0},
		{6, 0, 6, 0},
	}
	for _, c := range cases {
		if g := GCD(c.a, c.b); g != c.gcd {
			t.Errorf("GCD(%d,%d)=%d want %d", c.a, c.b, g, c.gcd)
		}
		if l := LCM(c.a, c.b); l != c.lcm {
			t.Errorf("LCM(%d,%d)=%d want %d", c.a, c.b, l, c.lcm)
		}
	}
}

func TestPaperWorkedExample(t *testing.T) {
	// "with k=1, perf={8,5,3,1} we have lcm=120 and thus
	//  n = 120 + 3*120 + 5*120 + 8*120 = 2040"
	v := Vector{8, 5, 3, 1}
	if got := v.LCM(); got != 120 {
		t.Fatalf("LCM=%d want 120", got)
	}
	if got := v.InputSize(1); got != 2040 {
		t.Fatalf("InputSize(1)=%d want 2040", got)
	}
}

func TestPaperTable3Sizes(t *testing.T) {
	// perf={1,1,4,4}: lcm=4, quantum=40.  The paper picks 16777220 as
	// the valid size near 2^24, with shares 1677722 (slow) and
	// 6710888 (fast).
	v := Vector{1, 1, 4, 4}
	if !v.ValidSize(16777220) {
		t.Fatal("16777220 should satisfy Equation 2")
	}
	if v.ValidSize(1 << 24) {
		t.Fatal("2^24 should not satisfy Equation 2 for {1,1,4,4}")
	}
	if got := v.NearestValidSize(1 << 24); got != 16777220 {
		t.Fatalf("NearestValidSize(2^24)=%d want 16777220", got)
	}
	shares := v.Shares(16777220)
	want := []int64{1677722, 1677722, 6710888, 6710888}
	for i := range want {
		if shares[i] != want[i] {
			t.Fatalf("shares=%v want %v", shares, want)
		}
	}
}

func TestSharesSumProperty(t *testing.T) {
	f := func(raw []uint8, nRaw uint32) bool {
		if len(raw) == 0 {
			return true
		}
		if len(raw) > 8 {
			raw = raw[:8]
		}
		v := make(Vector, len(raw))
		for i, r := range raw {
			v[i] = int(r%16) + 1
		}
		n := int64(nRaw % 1_000_000)
		shares := v.Shares(n)
		var sum int64
		for _, s := range shares {
			if s < 0 {
				return false
			}
			sum += s
		}
		return sum == n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSharesProportionalWhenValid(t *testing.T) {
	v := Vector{3, 2, 1}
	n := v.InputSize(5)
	shares := v.Shares(n)
	if shares[0] != 3*shares[2] || shares[1] != 2*shares[2] {
		t.Fatalf("shares not proportional: %v", shares)
	}
}

func TestSharesFallbackMonotone(t *testing.T) {
	// Non-Equation-2 size: faster nodes must never receive less.
	v := Vector{4, 4, 1, 1}
	shares := v.Shares(1003)
	if shares[0] < shares[2] || shares[1] < shares[3] {
		t.Fatalf("fallback shares not monotone: %v", shares)
	}
}

func TestSlowdowns(t *testing.T) {
	v := Vector{1, 1, 4, 4}
	got := v.Slowdowns()
	want := []float64{4, 4, 1, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Slowdowns=%v want %v", got, want)
		}
	}
	for _, s := range Homogeneous(3).Slowdowns() {
		if s != 1 {
			t.Fatal("homogeneous slowdowns must be 1")
		}
	}
}

func TestFromTimes(t *testing.T) {
	// Table 2 shape: fast nodes ~235 s, loaded nodes ~950 s at 2^24.
	v, err := FromTimes([]float64{235.7, 212.8, 909.3, 951.2})
	if err != nil {
		t.Fatal(err)
	}
	want := Vector{4, 4, 1, 1}
	for i := range want {
		if v[i] != want[i] {
			t.Fatalf("FromTimes=%v want %v", v, want)
		}
	}
}

func TestFromTimesErrors(t *testing.T) {
	if _, err := FromTimes(nil); err == nil {
		t.Error("empty times accepted")
	}
	if _, err := FromTimes([]float64{1, 0}); err == nil {
		t.Error("zero time accepted")
	}
	if _, err := FromTimes([]float64{1, -3}); err == nil {
		t.Error("negative time accepted")
	}
}

func TestFromTimesHomogeneousNoise(t *testing.T) {
	// Near-equal times must give the all-ones vector despite noise.
	v, err := FromTimes([]float64{100, 104, 98, 101})
	if err != nil {
		t.Fatal(err)
	}
	if !v.IsHomogeneous() || v[0] != 1 {
		t.Fatalf("noisy homogeneous calibration gave %v", v)
	}
}

func TestQuantumAndNearest(t *testing.T) {
	v := Vector{2, 3}
	// lcm=6, sum=5 -> quantum 30.
	if v.Quantum() != 30 {
		t.Fatalf("Quantum=%d", v.Quantum())
	}
	if v.NearestValidSize(1) != 30 {
		t.Fatal("NearestValidSize below quantum")
	}
	if v.NearestValidSize(31) != 60 {
		t.Fatal("NearestValidSize rounding")
	}
	if v.NearestValidSize(60) != 60 {
		t.Fatal("NearestValidSize exact")
	}
}

func TestMaxAndSum(t *testing.T) {
	v := Vector{8, 5, 3, 1}
	if v.Max() != 8 || v.Sum() != 17 {
		t.Fatalf("Max=%d Sum=%d", v.Max(), v.Sum())
	}
}

func TestString(t *testing.T) {
	if (Vector{1, 2}).String() != "[1 2]" {
		t.Fatalf("String=%q", Vector{1, 2}.String())
	}
}

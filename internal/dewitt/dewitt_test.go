package dewitt

import (
	"testing"

	"hetsort/internal/cluster"
	"hetsort/internal/extsort"
	"hetsort/internal/perf"
	"hetsort/internal/record"
	"hetsort/internal/sampling"
)

func testConfig(v perf.Vector) Config {
	return Config{
		Perf:        v,
		BlockKeys:   64,
		MemoryKeys:  1024,
		Tapes:       6,
		MessageKeys: 256,
		Seed:        5,
	}
}

func newCluster(t *testing.T, v perf.Vector) *cluster.Cluster {
	t.Helper()
	c, err := cluster.New(cluster.Config{Slowdowns: v.Slowdowns(), BlockKeys: 64})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func runSort(t *testing.T, c *cluster.Cluster, v perf.Vector, cfg Config,
	dist record.Distribution, n int64, seed int64) *Result {
	t.Helper()
	sum, err := extsort.DistributeInput(c, v, dist, n, seed, cfg.BlockKeys, "input")
	if err != nil {
		t.Fatal(err)
	}
	res, err := Sort(c, cfg, "input", "output")
	if err != nil {
		t.Fatal(err)
	}
	if err := extsort.VerifyOutput(c, "output", cfg.BlockKeys, sum); err != nil {
		t.Fatal(err)
	}
	return res
}

func TestHomogeneousSort(t *testing.T) {
	v := perf.Homogeneous(4)
	c := newCluster(t, v)
	res := runSort(t, c, v, testConfig(v), record.Uniform, 40000, 1)
	if res.Time <= 0 {
		t.Fatal("no time")
	}
	var total int64
	for _, s := range res.PartitionSizes {
		total += s
	}
	if total != 40000 {
		t.Fatalf("partitions sum %d", total)
	}
	if len(res.Splitters) != 3 {
		t.Fatalf("splitters %v", res.Splitters)
	}
}

func TestHeterogeneousSort(t *testing.T) {
	v := perf.Vector{1, 1, 4, 4}
	c := newCluster(t, v)
	res := runSort(t, c, v, testConfig(v), record.Uniform, v.NearestValidSize(40000), 2)
	slow := float64(res.PartitionSizes[0]+res.PartitionSizes[1]) / 2
	fast := float64(res.PartitionSizes[2]+res.PartitionSizes[3]) / 2
	if ratio := fast / slow; ratio < 2.5 || ratio > 6 {
		t.Fatalf("fast/slow ratio %v far from 4: %v", ratio, res.PartitionSizes)
	}
}

func TestAllDistributions(t *testing.T) {
	v := perf.Vector{1, 2}
	for _, d := range record.Distributions() {
		t.Run(d.String(), func(t *testing.T) {
			c := newCluster(t, v)
			runSort(t, c, v, testConfig(v), d, v.NearestValidSize(12000), 3)
		})
	}
}

func TestSingleNode(t *testing.T) {
	v := perf.Homogeneous(1)
	c := newCluster(t, v)
	res := runSort(t, c, v, testConfig(v), record.Uniform, 8000, 4)
	if res.PartitionSizes[0] != 8000 {
		t.Fatalf("single node holds %d", res.PartitionSizes[0])
	}
}

func TestConfigErrors(t *testing.T) {
	v := perf.Homogeneous(2)
	c := newCluster(t, v)
	if _, err := Sort(c, Config{Perf: perf.Vector{1}}, "in", "out"); err == nil {
		t.Fatal("perf length mismatch accepted")
	}
	if _, err := Sort(c, Config{Perf: perf.Vector{0, 1}}, "in", "out"); err == nil {
		t.Fatal("invalid perf accepted")
	}
	if _, err := Sort(c, testConfig(v), "missing", "out"); err == nil {
		t.Fatal("missing input accepted")
	}
}

func TestFewerIOsThanAlgorithm1(t *testing.T) {
	// The structural advantage of the baseline: no up-front external
	// sort, so it moves strictly fewer blocks than Algorithm 1.
	v := perf.Homogeneous(2)
	const n = 32768

	cD := newCluster(t, v)
	resD := runSort(t, cD, v, testConfig(v), record.Uniform, n, 7)
	var dIO int64
	for _, io := range resD.NodeIO {
		dIO += io.Total()
	}

	cA := newCluster(t, v)
	sum, err := extsort.DistributeInput(cA, v, record.Uniform, n, 7, 64, "input")
	if err != nil {
		t.Fatal(err)
	}
	resA, err := extsort.Sort(cA, extsort.Config{
		Perf: v, BlockKeys: 64, MemoryKeys: 1024, Tapes: 6, MessageKeys: 256,
	}, "input", "output")
	if err != nil {
		t.Fatal(err)
	}
	if err := extsort.VerifyOutput(cA, "output", 64, sum); err != nil {
		t.Fatal(err)
	}
	var aIO int64
	for _, io := range resA.NodeIO {
		aIO += io.Total()
	}
	if dIO >= aIO {
		t.Fatalf("DeWitt I/O %d should undercut Algorithm 1's %d", dIO, aIO)
	}
}

func TestWorseBalanceThanRegularSampling(t *testing.T) {
	// The price of probabilistic splitting: across seeds, the average
	// expansion of the baseline should not beat Algorithm 1's
	// regular sampling (the paper's section-3 argument for PSRS).
	v := perf.Homogeneous(4)
	const n = 40000
	var dSum, aSum float64
	const trials = 3
	for s := int64(0); s < trials; s++ {
		cD := newCluster(t, v)
		cfg := testConfig(v)
		cfg.SampleFactor = 4 // modest sample, as in the original paper
		cfg.Seed = s * 131
		resD := runSort(t, cD, v, cfg, record.Uniform, n, 100+s)
		dSum += sampling.SublistExpansion(resD.PartitionSizes)

		cA := newCluster(t, v)
		sum, err := extsort.DistributeInput(cA, v, record.Uniform, n, 100+s, 64, "input")
		if err != nil {
			t.Fatal(err)
		}
		resA, err := extsort.Sort(cA, extsort.Config{
			Perf: v, BlockKeys: 64, MemoryKeys: 1024, Tapes: 6, MessageKeys: 256,
		}, "input", "output")
		if err != nil {
			t.Fatal(err)
		}
		if err := extsort.VerifyOutput(cA, "output", 64, sum); err != nil {
			t.Fatal(err)
		}
		aSum += sampling.SublistExpansion(resA.PartitionSizes)
	}
	if dSum/trials < aSum/trials-0.02 {
		t.Fatalf("probabilistic splitting (%v) implausibly beat regular sampling (%v)",
			dSum/trials, aSum/trials)
	}
}

func TestDeterministic(t *testing.T) {
	v := perf.Vector{1, 3}
	run := func() *Result {
		c := newCluster(t, v)
		return runSort(t, c, v, testConfig(v), record.Uniform, v.NearestValidSize(16000), 11)
	}
	a, b := run(), run()
	if a.Time != b.Time {
		t.Fatalf("times differ: %v vs %v", a.Time, b.Time)
	}
}

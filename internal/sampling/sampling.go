// Package sampling implements the pivot-selection machinery of the
// paper: regular sampling (PSRS, Shi & Schaeffer) generalized to
// heterogeneous performance vectors, the Li–Sevcik overpartitioning
// alternative, partition-boundary computation, and the sublist-expansion
// load-balance metric reported in Table 3.
package sampling

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"slices"
	"sort"

	"hetsort/internal/perf"
	"hetsort/internal/record"
)

// RegularSampleIndices returns the sample positions the paper's step 2
// uses on a locally sorted portion of n keys: with spacing off, the
// indices off-1, 2*off-1, ... while they fit (the fseek loop of
// section 4).  For node i the caller passes off = l_i / (perf[i]*p),
// which makes the spacing equal to unit/p on every node — "between any
// two consecutive pivots there is the same number of sorted elements".
func RegularSampleIndices(n, spacing int64) []int64 {
	if spacing <= 0 || n <= 0 {
		return nil
	}
	var idx []int64
	for i := spacing - 1; i+spacing <= n; i += spacing {
		idx = append(idx, i)
	}
	return idx
}

// SpacingError reports that a node's portion cannot support regular
// sampling: the spacing l_i/(perf[i]·p) rounds to zero, which happens at
// large p × small portions (each node would owe more samples than it
// holds keys).  Callers typically fall back to shipping the whole
// portion as samples; the structured fields let them say exactly which
// node hit the wall and why.
type SpacingError struct {
	Node    int   // node id (-1 when unknown to the caller)
	Portion int64 // the node's key count l_i
	Perf    int   // the node's perf entry
	P       int   // cluster size
}

func (e *SpacingError) Error() string {
	return fmt.Sprintf("sampling: node %d portion %d too small for regular sampling (needs >= perf*p = %d*%d = %d keys)",
		e.Node, e.Portion, e.Perf, e.P, int64(e.Perf)*int64(e.P))
}

// HeteroSpacing returns node i's sample spacing l_i/(perf[i]*p) and the
// number of samples that produces.  It returns a *SpacingError when the
// portion is too small to sample regularly.
func HeteroSpacing(node int, li int64, perfI, p int) (spacing int64, count int, err error) {
	if perfI <= 0 || p <= 0 {
		return 0, 0, fmt.Errorf("sampling: bad perf=%d p=%d", perfI, p)
	}
	spacing = li / (int64(perfI) * int64(p))
	if spacing <= 0 {
		return 0, 0, &SpacingError{Node: node, Portion: li, Perf: perfI, P: p}
	}
	return spacing, len(RegularSampleIndices(li, spacing)), nil
}

// RegularSamples picks the regularly spaced samples out of a sorted
// in-core slice (the in-core analogue of the fseek loop).
func RegularSamples(sorted []record.Key, spacing int64) []record.Key {
	idx := RegularSampleIndices(int64(len(sorted)), spacing)
	out := make([]record.Key, len(idx))
	for i, j := range idx {
		out[i] = sorted[j]
	}
	return out
}

// CombineSorted merges two sorted sample slices into one sorted slice —
// the combining step of the hierarchical pivot aggregation, where each
// inner tree node folds its children's samples before forwarding.  The
// result is the sorted multiset union, so the root's candidate multiset
// is exactly what a flat gather would have delivered.
func CombineSorted(a, b []record.Key) []record.Key {
	out := make([]record.Key, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if b[j] < a[i] {
			out = append(out, b[j])
			j++
		} else {
			out = append(out, a[i])
			i++
		}
	}
	out = append(out, a[i:]...)
	return append(out, b[j:]...)
}

// SelectPivots sorts the gathered candidates and picks p-1 pivots "in a
// regular way": the candidates at positions j*len/p for j = 1..p-1.
// This is step 2's final act on the designated node in the homogeneous
// case.
func SelectPivots(candidates []record.Key, p int) ([]record.Key, error) {
	return SelectPivotsWeighted(candidates, perf.Homogeneous(p))
}

// SelectPivotsRegular picks the p-1 pivots from candidates produced by
// the *regular* sampling scheme (node i contributes p*perf[i]-1 samples
// at local quantiles k/(p*perf[i])).  The target quantile for pivot j
// is the cumulative performance fraction cum_j/Σperf; when that target
// is not on any node's sample grid, the largest grid point below it is
// chosen.  Rounding *down* under-fills the slow nodes and lets the
// excess land on the fast ones — exactly the behaviour visible in the
// paper's Table 3, where the fast nodes run ~9% above their optimum
// (S(max)=1.094) while the loaded nodes sit below theirs.  Since the
// fast nodes have spare capacity, this direction also minimises the
// makespan.
func SelectPivotsRegular(candidates []record.Key, v perf.Vector) ([]record.Key, error) {
	if err := v.Validate(); err != nil {
		return nil, err
	}
	p := len(v)
	if p == 1 {
		return nil, nil
	}
	if len(candidates) == 0 {
		return make([]record.Key, p-1), nil
	}
	sorted := append([]record.Key(nil), candidates...)
	slices.Sort(sorted)
	sum := float64(v.Sum())
	pivots := make([]record.Key, p-1)
	var cum int64
	for j := 0; j < p-1; j++ {
		cum += int64(v[j])
		q := float64(cum) / sum
		// Largest sample-grid quantile <= q over the node grids.
		var qLower float64
		for _, pf := range v {
			g := float64(p * pf)
			if ql := math.Floor(q*g+1e-9) / g; ql > qLower {
				qLower = ql
			}
		}
		// Rank of that grid point in the combined candidate multiset.
		var rank int64
		for _, pf := range v {
			g := float64(p * pf)
			rank += int64(math.Floor(qLower*g + 1e-9))
		}
		idx := int(rank) - 1
		if idx < 0 {
			idx = 0
		}
		if idx >= len(sorted) {
			idx = len(sorted) - 1
		}
		pivots[j] = sorted[idx]
	}
	return pivots, nil
}

// SelectPivotsWeighted generalizes pivot selection to a perf vector: the
// j-th pivot sits at the cumulative-performance quantile
// (perf[0]+...+perf[j]) / Σperf of the sorted candidates, so that
// partition j holds ≈ perf[j]/Σperf of the data — processor j's optimal
// share.  With an all-ones vector this is exactly homogeneous PSRS pivot
// selection.
func SelectPivotsWeighted(candidates []record.Key, v perf.Vector) ([]record.Key, error) {
	if err := v.Validate(); err != nil {
		return nil, err
	}
	p := len(v)
	if p == 1 {
		return nil, nil
	}
	if len(candidates) == 0 {
		// Degenerate inputs (near-empty data): any pivots are correct,
		// if unbalanced; zeros route everything to the last node.
		return make([]record.Key, p-1), nil
	}
	sorted := append([]record.Key(nil), candidates...)
	slices.Sort(sorted)
	sum := v.Sum()
	pivots := make([]record.Key, p-1)
	var cum int64
	for j := 0; j < p-1; j++ {
		cum += int64(v[j])
		// With the regular-sampling scheme, node i contributes
		// p*perf[i]-1 candidates at equal global gaps of s keys, so
		// candidate rank r sits near global rank (r+1)*s and the total
		// satisfies T+p = n/s.  The pivot for cumulative share cum/Σ
		// therefore sits at rank cum*(T+p)/Σ - 1.
		idx := int(cum*int64(len(sorted)+p)/sum) - 1
		if idx < 0 {
			idx = 0
		}
		if idx >= len(sorted) {
			idx = len(sorted) - 1
		}
		pivots[j] = sorted[idx]
	}
	return pivots, nil
}

// RandomSampleIndices returns count distinct random positions in [0,n),
// sorted ascending — the Li–Sevcik alternative to regular positions.
func RandomSampleIndices(n int64, count int, seed int64) []int64 {
	if n <= 0 || count <= 0 {
		return nil
	}
	if int64(count) > n {
		count = int(n)
	}
	r := rand.New(rand.NewSource(seed))
	seen := make(map[int64]bool, count)
	out := make([]int64, 0, count)
	for len(out) < count {
		i := r.Int63n(n)
		if !seen[i] {
			seen[i] = true
			out = append(out, i)
		}
	}
	slices.Sort(out)
	return out
}

// Boundaries returns the p-1 cut points that split the sorted slice by
// the pivots: cut[j] is the index of the first key greater than
// pivots[j], so segment j is sorted[cut[j-1]:cut[j]] (with implicit
// cut[-1]=0 and cut[p-1]=len).  Keys equal to a pivot go to the lower
// segment, the convention of the PSRS papers.
func Boundaries(sorted []record.Key, pivots []record.Key) []int {
	cuts := make([]int, len(pivots))
	for j, pv := range pivots {
		cuts[j] = sort.Search(len(sorted), func(i int) bool { return sorted[i] > pv })
	}
	return cuts
}

// SegmentSizes converts cut points over a portion of length n into the
// p segment lengths.
func SegmentSizes(cuts []int, n int) []int64 {
	sizes := make([]int64, len(cuts)+1)
	prev := 0
	for j, c := range cuts {
		sizes[j] = int64(c - prev)
		prev = c
	}
	sizes[len(cuts)] = int64(n - prev)
	return sizes
}

// SublistExpansion is the load-balance metric of Blelloch et al. used in
// Table 3: the ratio of the maximum partition size to the mean.  1.0 is
// perfect balance.
func SublistExpansion(sizes []int64) float64 {
	if len(sizes) == 0 {
		return 0
	}
	var sum, max int64
	for _, s := range sizes {
		sum += s
		if s > max {
			max = s
		}
	}
	if sum == 0 {
		return 0
	}
	mean := float64(sum) / float64(len(sizes))
	return float64(max) / mean
}

// WeightedExpansion generalizes sublist expansion to heterogeneous
// clusters: each node's final partition is compared to its *optimal*
// share total*perf[i]/Σperf, and the worst ratio is returned (the
// paper's S(max) column for the {1,1,4,4} rows compares the fast nodes'
// partitions to their optimum 6710888).
func WeightedExpansion(sizes []int64, v perf.Vector) (float64, error) {
	if len(sizes) != len(v) {
		return 0, errors.New("sampling: sizes and perf vector length mismatch")
	}
	if err := v.Validate(); err != nil {
		return 0, err
	}
	var total int64
	for _, s := range sizes {
		total += s
	}
	if total == 0 {
		return 0, nil
	}
	sum := float64(v.Sum())
	worst := 0.0
	for i, s := range sizes {
		opt := float64(total) * float64(v[i]) / sum
		if r := float64(s) / opt; r > worst {
			worst = r
		}
	}
	return worst, nil
}

// TheoreticalBound returns the PSRS guarantee for the largest final
// partition on node i: twice its optimal share (the "PSRS Theorem" the
// paper invokes for step 5), plus d for inputs with d duplicates of the
// worst key (section 3.1's U+d bound).
func TheoreticalBound(total int64, v perf.Vector, i int, duplicates int64) float64 {
	opt := float64(total) * float64(v[i]) / float64(v.Sum())
	return 2*opt + float64(duplicates)
}

// Package cluster simulates the paper's computing platform: a cluster of
// p nodes, each with its own processor, disk and clock, connected by a
// commodity network.  Nodes execute real Go code (goroutine per node) on
// real data, while a deterministic virtual clock accounts for time:
//
//   - local work (comparisons, block transfers, seeks) advances the
//     node's own clock, scaled by the node's slowdown factor — this is
//     how "processors at different speed" are modelled, matching the
//     paper's constant-initial-load assumption;
//   - messages are timestamped: the receiver's clock becomes
//     max(receiver clock, sender completion + latency + size/bandwidth),
//     the standard conservative rule for distributed simulation.
//
// The network is parameterised by latency and bandwidth, with presets
// for the paper's two interconnects (Fast Ethernet and Myrinet).
package cluster

import "fmt"

// NetModel is a latency/bandwidth model of an interconnect.
type NetModel struct {
	// Name labels the model in reports.
	Name string
	// LatencySec is the per-message latency in seconds (software
	// overhead plus wire latency).
	LatencySec float64
	// BytesPerSec is the point-to-point bandwidth.
	BytesPerSec float64
}

// TransferSec returns the virtual time to move a message of n bytes
// from send start to arrival.
func (m NetModel) TransferSec(n int64) float64 {
	if m.BytesPerSec <= 0 {
		return m.LatencySec
	}
	return m.LatencySec + float64(n)/m.BytesPerSec
}

func (m NetModel) String() string {
	return fmt.Sprintf("%s(lat=%.0fus bw=%.1fMB/s)", m.Name, m.LatencySec*1e6, m.BytesPerSec/1e6)
}

// FastEthernet models the paper's default interconnect: 100 Mb/s
// switched Fast Ethernet driven by MPI, with the high per-message
// software latency typical of year-2000 TCP stacks.
func FastEthernet() NetModel {
	return NetModel{Name: "fast-ethernet", LatencySec: 120e-6, BytesPerSec: 11e6}
}

// Myrinet models the paper's second interconnect: 1.28 Gb/s Myrinet
// with OS-bypass messaging (much lower latency, ~10x bandwidth).
func Myrinet() NetModel {
	return NetModel{Name: "myrinet", LatencySec: 12e-6, BytesPerSec: 140e6}
}

// Ideal is a zero-cost network, useful to isolate compute/disk effects.
func Ideal() NetModel {
	return NetModel{Name: "ideal", LatencySec: 0, BytesPerSec: 0}
}

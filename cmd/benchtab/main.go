// Command benchtab regenerates every table, figure and in-text result
// of the paper's evaluation and prints the measured (virtual-time)
// values side by side with the paper's numbers.
//
// Usage:
//
//	benchtab                     # whole suite at the default 1/64 scale
//	benchtab -shift 0 -trials 30 # the paper's full input sizes and repetitions (slow)
//	benchtab -experiment table3  # a single experiment
//
// Experiments: table1, table2, calibration, packets, table3, speedups,
// figure1, all.
package main

import (
	"flag"
	"fmt"
	"os"

	"hetsort/internal/experiments"
)

func main() {
	var (
		shift  = flag.Uint("shift", 6, "right-shift applied to the paper's input sizes (0 = full scale)")
		trials = flag.Int("trials", 5, "repetitions per measurement (paper: 30)")
		onDisk = flag.Bool("ondisk", false, "use real temporary directories for node disks")
		tmp    = flag.String("tmpdir", "", "root directory for -ondisk")
		which  = flag.String("experiment", "all", "experiment to run: table1, table2, calibration, packets, table3, speedups, figure1, distributions, ablations, checkpoint, all")
		seed   = flag.Int64("seed", 1, "base input seed")
	)
	flag.Parse()

	o := experiments.Options{
		SizeShift: *shift,
		Trials:    *trials,
		OnDisk:    *onDisk,
		TempDir:   *tmp,
		Seed:      *seed,
	}
	fmt.Printf("hetsort benchtab: size shift 2^-%d, %d trials per point\n\n", *shift, *trials)

	run := func(name string, f func() error) {
		if *which != "all" && *which != name {
			return
		}
		if err := f(); err != nil {
			fmt.Fprintf(os.Stderr, "benchtab: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Println()
	}

	run("table1", func() error {
		fmt.Print(experiments.Table1String(experiments.Table1(o)))
		return nil
	})
	run("table2", func() error {
		rows, err := experiments.Table2(o)
		if err != nil {
			return err
		}
		fmt.Print(experiments.Table2String(rows))
		return nil
	})
	run("calibration", func() error {
		cal, err := experiments.Calibrate(o)
		if err != nil {
			return err
		}
		fmt.Printf("Calibration (paper section 5 protocol):\n  per-node times: %.3f s\n  derived perf vector: %v (paper: [1 1 4 4])\n",
			cal.Times, cal.Vector)
		return nil
	})
	run("packets", func() error {
		rows, err := experiments.RunPacketSweep(o)
		if err != nil {
			return err
		}
		fmt.Print(experiments.PacketSweepString(rows))
		return nil
	})
	run("table3", func() error {
		rows, err := experiments.Table3(o)
		if err != nil {
			return err
		}
		fmt.Print(experiments.Table3String(rows))
		return nil
	})
	run("speedups", func() error {
		s, err := experiments.ComputeSpeedups(o)
		if err != nil {
			return err
		}
		fmt.Print(s.String())
		return nil
	})
	run("figure1", func() error {
		rows, err := experiments.Figure1PDM(o)
		if err != nil {
			return err
		}
		fmt.Print(experiments.Figure1String(rows))
		return nil
	})
	run("distributions", func() error {
		rows, err := experiments.DistributionSweep(o)
		if err != nil {
			return err
		}
		fmt.Print(experiments.DistributionSweepString(rows))
		return nil
	})
	run("ablations", func() error {
		rows, err := experiments.Ablations(o)
		if err != nil {
			return err
		}
		fmt.Print(experiments.AblationsString(rows))
		return nil
	})
	run("checkpoint", func() error {
		rows, err := experiments.CheckpointAblation(o)
		if err != nil {
			return err
		}
		fmt.Print(experiments.AblationsString(rows))
		return nil
	})
}

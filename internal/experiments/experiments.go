// Package experiments regenerates every table, figure and in-text
// result of the paper's evaluation (section 5) on the simulated
// cluster, printing measured values side by side with the paper's.
//
// The paper's experiments ran on four Alpha 21164 nodes, two of them
// artificially loaded 4x, over Fast Ethernet and Myrinet, on inputs of
// 2^21..2^25 integers with 30 repetitions.  We reproduce the same
// experiment definitions; Options.SizeShift scales the input sizes down
// (dividing by 2^shift) so the suite runs in seconds while preserving
// every comparison the paper makes.  Absolute virtual times at shift 0
// are calibrated to land near the paper's wall-clock numbers.
package experiments

import (
	"fmt"

	"hetsort/internal/cluster"
	"hetsort/internal/diskio"
	"hetsort/internal/extsort"
	"hetsort/internal/perf"
	"hetsort/internal/polyphase"
	"hetsort/internal/record"
	"hetsort/internal/stats"
)

// PaperVector is the perf vector the paper calibrates for its cluster:
// nodes 0,1 are the loaded (4x slower) machines, nodes 2,3 the fast
// ones, so the vector reads {1,1,4,4} exactly as in the paper.
var PaperVector = perf.Vector{1, 1, 4, 4}

// Options scales and parameterises the whole suite.
type Options struct {
	// SizeShift right-shifts every paper input size (default 6:
	// 2^21 -> 32768 keys, 2^25 -> 524288 keys).  Shift 0 reproduces
	// the paper's full sizes (slow: tens of millions of real keys).
	SizeShift uint
	// Trials is the number of repetitions per measurement (paper: 30;
	// default 5).  Each trial uses a different input seed.
	Trials int
	// BlockKeys is the disk block size B (default 2048 keys = 8 KiB,
	// scaled down with SizeShift to keep n/B meaningful, min 64).
	BlockKeys int
	// MemoryKeys is the per-node memory M (default 2^20 scaled by
	// SizeShift, min Tapes*BlockKeys*2).
	MemoryKeys int
	// Tapes is the polyphase file count (default 15, as the paper).
	Tapes int
	// MessageKeys is the redistribution message size (default 8192
	// integers = the paper's 32 Kb).
	MessageKeys int
	// OnDisk uses real temporary directories instead of in-memory
	// filesystems.
	OnDisk bool
	// TempDir is the root for OnDisk mode.
	TempDir string
	// Seed offsets every trial's input seed.
	Seed int64
}

func (o Options) withDefaults() Options {
	if o.Trials <= 0 {
		o.Trials = 5
	}
	if o.SizeShift == 0 && o.BlockKeys == 0 {
		// Full scale: the paper's parameters.
		o.BlockKeys = 2048
	}
	if o.Tapes <= 0 {
		o.Tapes = 15
	}
	if o.BlockKeys <= 0 {
		o.BlockKeys = 2048 >> min(o.SizeShift, 5)
		if o.BlockKeys < 64 {
			o.BlockKeys = 64
		}
	}
	if o.MemoryKeys <= 0 {
		o.MemoryKeys = int(int64(1<<20) >> o.SizeShift)
		if floor := o.Tapes * o.BlockKeys * 2; o.MemoryKeys < floor {
			o.MemoryKeys = floor
		}
	}
	if o.MessageKeys <= 0 {
		o.MessageKeys = 8192 >> min(o.SizeShift, 5)
		if o.MessageKeys < o.BlockKeys {
			o.MessageKeys = o.BlockKeys
		}
	}
	return o
}

func min(a, b uint) uint {
	if a < b {
		return a
	}
	return b
}

// scale applies SizeShift to a paper-scale size.
func (o Options) scale(paperSize int64) int64 {
	s := paperSize >> o.SizeShift
	if s < 1 {
		s = 1
	}
	return s
}

// disks returns the per-node FS factory.
func (o Options) disks() (func(int) diskio.FS, error) {
	if !o.OnDisk {
		return func(int) diskio.FS { return diskio.NewMemFS() }, nil
	}
	root := o.TempDir
	if root == "" {
		root = "hetsort-experiments"
	}
	return func(id int) diskio.FS {
		fs, err := diskio.NewDirFS(fmt.Sprintf("%s/node%d", root, id))
		if err != nil {
			panic(err)
		}
		return fs
	}, nil
}

// newCluster builds the paper's 4-node loaded cluster with the given
// interconnect.
func (o Options) newCluster(net cluster.NetModel) (*cluster.Cluster, error) {
	disks, err := o.disks()
	if err != nil {
		return nil, err
	}
	return cluster.New(cluster.Config{
		Slowdowns: PaperVector.Slowdowns(),
		Net:       net,
		BlockKeys: o.BlockKeys,
		Disks:     disks,
	})
}

// extsortConfig assembles the Algorithm-1 configuration for a vector.
func (o Options) extsortConfig(v perf.Vector) extsort.Config {
	return extsort.Config{
		Perf:        v,
		BlockKeys:   o.BlockKeys,
		MemoryKeys:  o.MemoryKeys,
		Tapes:       o.Tapes,
		MessageKeys: o.MessageKeys,
	}
}

// polyCfg assembles a sequential-sort configuration on fs charged to
// acct.
func (o Options) polyCfg(fs diskio.FS, acct diskio.Accounting) polyphase.Config {
	return polyphase.Config{
		FS:         fs,
		BlockKeys:  o.BlockKeys,
		MemoryKeys: o.MemoryKeys,
		Tapes:      o.Tapes,
		Acct:       acct,
		TempPrefix: "tmp.",
	}
}

// runParallel distributes a fresh input and runs Algorithm 1 once,
// verifying the output, and returns the result.
func (o Options) runParallel(c *cluster.Cluster, v perf.Vector, n int64, seed int64) (*extsort.Result, error) {
	c.ResetClocks()
	cfg := o.extsortConfig(v)
	sum, err := extsort.DistributeInput(c, v, record.Uniform, n, seed, o.BlockKeys, "input")
	if err != nil {
		return nil, err
	}
	res, err := extsort.Sort(c, cfg, "input", "output")
	if err != nil {
		return nil, err
	}
	if err := extsort.VerifyOutput(c, "output", o.BlockKeys, sum); err != nil {
		return nil, err
	}
	return res, nil
}

// trialSummary repeats a measured quantity over Options.Trials seeds.
func (o Options) trialSummary(f func(seed int64) (float64, error)) (stats.Summary, error) {
	return stats.Repeat(o.Trials, func(i int) (float64, error) {
		return f(o.Seed + int64(i)*7919)
	})
}

// Package merkle builds Merkle trees over named artifacts, so one root
// hash anchors every file a sort run produced.  The service records the
// root of a job's artifacts (spec + per-node sorted partitions) when the
// job completes; `hetsortd verify` recomputes the tree from the storage
// backend and compares roots, detecting any bit of drift in any
// artifact — including a missing or extra one, since the artifact *name*
// is hashed into its leaf.
//
// Construction is deterministic: leaves are sorted by name, leaf and
// interior hashes are domain-separated (a leaf can never be confused
// with an interior node), and an odd node is promoted unpaired to the
// next level (never duplicated, avoiding the classic CVE-2012-2459
// ambiguity).  Audit proofs allow verifying a single artifact against
// the root without re-reading the others.
package merkle

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"
)

// HashSize is the size of every hash in the tree.
const HashSize = sha256.Size

// Sum is one SHA-256 hash.
type Sum = [HashSize]byte

// Domain-separation prefixes: a leaf hash and an interior hash can
// never collide, and the empty tree has its own tag.
const (
	tagLeaf  = 0x00
	tagNode  = 0x01
	tagEmpty = 0x02
)

// Leaf is one named artifact: its name and the SHA-256 of its content.
type Leaf struct {
	Name string
	Sum  Sum
}

// LeafHash returns the tree leaf hash of l: H(0x00 || len(name) ||
// name || contentSum).  Hashing the name binds the artifact's identity,
// so renaming (or swapping two same-content artifacts) changes the root.
func LeafHash(l Leaf) Sum {
	h := sha256.New()
	var pre [1 + binary.MaxVarintLen64]byte
	pre[0] = tagLeaf
	n := binary.PutUvarint(pre[1:], uint64(len(l.Name)))
	h.Write(pre[:1+n])
	h.Write([]byte(l.Name))
	h.Write(l.Sum[:])
	var out Sum
	h.Sum(out[:0])
	return out
}

func nodeHash(left, right Sum) Sum {
	h := sha256.New()
	h.Write([]byte{tagNode})
	h.Write(left[:])
	h.Write(right[:])
	var out Sum
	h.Sum(out[:0])
	return out
}

// EmptyRoot is the root of a tree with no leaves.
func EmptyRoot() Sum { return sha256.Sum256([]byte{tagEmpty}) }

// Tree is an immutable Merkle tree over a set of leaves.
type Tree struct {
	leaves []Leaf  // sorted by name
	levels [][]Sum // levels[0] = leaf hashes, last = [root]
}

// New builds the tree.  Leaves are copied and sorted by name; duplicate
// names are rejected (two artifacts cannot share an identity).
func New(leaves []Leaf) (*Tree, error) {
	ls := append([]Leaf(nil), leaves...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Name < ls[j].Name })
	for i := 1; i < len(ls); i++ {
		if ls[i].Name == ls[i-1].Name {
			return nil, fmt.Errorf("merkle: duplicate leaf name %q", ls[i].Name)
		}
	}
	t := &Tree{leaves: ls}
	level := make([]Sum, len(ls))
	for i, l := range ls {
		level[i] = LeafHash(l)
	}
	t.levels = append(t.levels, level)
	for len(level) > 1 {
		next := make([]Sum, 0, (len(level)+1)/2)
		for i := 0; i < len(level); i += 2 {
			if i+1 < len(level) {
				next = append(next, nodeHash(level[i], level[i+1]))
			} else {
				// Odd node: promoted unpaired, never duplicated.
				next = append(next, level[i])
			}
		}
		t.levels = append(t.levels, next)
		level = next
	}
	return t, nil
}

// Root returns the root hash (EmptyRoot for a leafless tree).
func (t *Tree) Root() Sum {
	if len(t.leaves) == 0 {
		return EmptyRoot()
	}
	return t.levels[len(t.levels)-1][0]
}

// Leaves returns the leaves in tree (name) order.
func (t *Tree) Leaves() []Leaf { return t.leaves }

// ProofStep is one sibling on the audit path from a leaf to the root.
type ProofStep struct {
	// Sum is the sibling subtree hash to combine with.
	Sum Sum
	// Left reports whether the sibling sits to the left of the running
	// hash (H(sibling || acc)) rather than to the right (H(acc || sibling)).
	Left bool
}

// Proof returns the audit path for the named leaf.
func (t *Tree) Proof(name string) ([]ProofStep, error) {
	idx := sort.Search(len(t.leaves), func(i int) bool { return t.leaves[i].Name >= name })
	if idx >= len(t.leaves) || t.leaves[idx].Name != name {
		return nil, fmt.Errorf("merkle: no leaf named %q", name)
	}
	var proof []ProofStep
	for lvl := 0; lvl < len(t.levels)-1; lvl++ {
		level := t.levels[lvl]
		sib := idx ^ 1
		if sib < len(level) {
			proof = append(proof, ProofStep{Sum: level[sib], Left: sib < idx})
		}
		// An odd promoted node keeps its hash and halves its index like
		// everyone else; it just contributes no step at this level.
		idx /= 2
	}
	return proof, nil
}

// VerifyProof replays an audit path: it recombines the leaf with the
// proof steps and reports whether the result equals root.
func VerifyProof(root Sum, leaf Leaf, proof []ProofStep) bool {
	acc := LeafHash(leaf)
	for _, st := range proof {
		if st.Left {
			acc = nodeHash(st.Sum, acc)
		} else {
			acc = nodeHash(acc, st.Sum)
		}
	}
	return acc == root
}

package extsort

import (
	"fmt"
	"math"

	"hetsort/internal/record"
)

// Topology selects the communication structure of steps 2 and 4.  The
// flat structure is Algorithm 1 as written: one O(p·s) gather for the
// samples and one p×p all-to-all round for the redistribution.  Both
// collapse long before p=1024 — the designated node's fan-in and the
// per-link buffer memory grow with p and p² respectively — so the
// hierarchical structures trade extra rounds (and one extra disk pass
// per round) for O(r) fan-in per node per round, the multi-pass
// all-to-all of Rahn/Sanders/Singler's distributed external sort.
// The output is byte-identical to the flat path for the exact pivot
// strategies (regular sampling, random pivots, overpartitioning); the
// QuantileSketch strategy's GK merge is not associative, so its tree
// aggregation keeps the global sorted output identical while per-node
// partition boundaries may differ from the flat run's.
type Topology int

const (
	// TopologyFlat is the paper's direct structure: star collectives
	// and a single all-to-all redistribution round.
	TopologyFlat Topology = iota
	// TopologyTree aggregates samples up an r-ary reduction tree and
	// redistributes through ⌈log_r p⌉ rounds of r-way exchanges.
	TopologyTree
	// TopologyGrid is the 2-round √p×√p special case: redistribution
	// first routes to the destination's "column" block, then within
	// it; collectives use a 2-level tree of radix ⌈√p⌉.
	TopologyGrid
)

func (t Topology) String() string {
	switch t {
	case TopologyFlat:
		return "flat"
	case TopologyTree:
		return "tree"
	case TopologyGrid:
		return "grid"
	default:
		return fmt.Sprintf("topology(%d)", int(t))
	}
}

// ParseTopology maps the public string names onto the enum ("" = flat).
func ParseTopology(s string) (Topology, error) {
	switch s {
	case "", "flat":
		return TopologyFlat, nil
	case "tree":
		return TopologyTree, nil
	case "grid":
		return TopologyGrid, nil
	}
	return TopologyFlat, fmt.Errorf("extsort: unknown topology %q (want flat, tree or grid)", s)
}

// gridRadix is the block fan-out of the grid topology: ⌈√p⌉.
func gridRadix(p int) int {
	g := int(math.Ceil(math.Sqrt(float64(p))))
	if g < 2 {
		g = 2
	}
	return g
}

// collectiveRadix is the fan-in of the step-2 reduction tree: the
// configured radix for trees, ⌈√p⌉ for grids (matching the grid's
// 2-level block structure).
func collectiveRadix(p int, topo Topology, radix int) int {
	if topo == TopologyGrid {
		return gridRadix(p)
	}
	if radix < 2 {
		return 2
	}
	return radix
}

// topoLevels returns the strictly decreasing block sizes the
// redistribution refines through: levels[0] = p, levels[len-1] = 1,
// and round t refines blocks of levels[t] ranks into sub-blocks of
// levels[t+1].  Every inner level is a power of the radix (⌈√p⌉ for
// the grid), so the levels are *nested*: a rank's level-(t+1) block
// boundary is always also a level-t boundary (blocks align at absolute
// multiples of their size, the last block of each level ragged), which
// the round invariant — every node of dest's current block holds a
// bucket for dest — depends on.
func topoLevels(p int, topo Topology, radix int) []int {
	if p <= 1 {
		return []int{1}
	}
	r := radix
	if topo == TopologyGrid {
		r = gridRadix(p)
	}
	if r < 2 {
		r = 2
	}
	lv := []int{1}
	for s := r; s < p; s *= r {
		lv = append(lv, s)
	}
	lv = append(lv, p)
	// Reverse into decreasing order.
	for i, j := 0, len(lv)-1; i < j; i, j = i+1, j-1 {
		lv[i], lv[j] = lv[j], lv[i]
	}
	return lv
}

// routeStep returns the representative node that id's bucket for dest
// travels to in a round refining blocks of s ranks into sub-blocks of
// sub ranks: the node of dest's sub-block at id's offset within the
// block (mod sub), clamped into the sub-block.  Spreading by the
// sender's offset balances the merge work over the sub-block; the
// clamp handles the ragged last sub-block when p is not a power of the
// radix.  When dest lies in id's own sub-block the route is id itself —
// the bucket stays local (nested levels make the block start a
// multiple of sub, so the offset formula yields id exactly).
func routeStep(id, dest, s, sub, p int) int {
	lo := dest / sub * sub
	end := lo + sub
	if end > p {
		end = p
	}
	bs := id / s * s
	rep := lo + (id-bs)%sub
	if rep >= end {
		rep = end - 1
	}
	return rep
}

// roundInNeighbors returns, ascending, the block peers whose buckets
// for q's sub-block route to q in the round refining s into sub.
func roundInNeighbors(q, s, sub, p int) []int {
	bs := q / s * s
	hi := bs + s
	if hi > p {
		hi = p
	}
	slo := q / sub * sub
	var in []int
	for i := bs; i < hi; i++ {
		if i != q && routeStep(i, slo, s, sub, p) == q {
			in = append(in, i)
		}
	}
	return in
}

// PeakFanIn returns the worst per-node count of concurrently open
// incoming redistribution streams (in-neighbors plus the node's own
// bucket): p for the flat all-to-all, the worst round in-degree + 1
// for the hierarchical structures — O(r·log_r p) never materializes;
// each round's O(r) fan-in is what a node holds open at once.
func PeakFanIn(p int, topo Topology, radix int) int {
	if topo == TopologyFlat || p <= 1 {
		return p
	}
	lv := topoLevels(p, topo, radix)
	peak := 1
	for t := 0; t+1 < len(lv); t++ {
		s, sub := lv[t], lv[t+1]
		indeg := make([]int, p)
		for i := 0; i < p; i++ {
			bs := i / s * s
			hi := bs + s
			if hi > p {
				hi = p
			}
			for lo := bs; lo < hi; lo += sub {
				if rep := routeStep(i, lo, s, sub, p); rep != i {
					indeg[rep]++
				}
			}
		}
		for _, d := range indeg {
			if d+1 > peak {
				peak = d + 1
			}
		}
	}
	return peak
}

// LinkMemoryBytes estimates the resident link-buffer memory a run of
// this configuration pins across the cluster: every node buffers up to
// its peak fan-in of concurrently open incoming streams, one
// MessageKeys message each.  For the flat topology that is
// p²·MessageKeys·KeySize — the O(p²) scaling that turns into an OOM at
// large p — while tree/grid stay at p·(r+1)·MessageKeys·KeySize.  The
// hetsortd admission check charges this against the machine's memory
// budget so an over-subscribed flat job is rejected with a 422 instead
// of exhausting the host.
func (c Config) LinkMemoryBytes(p int) int64 {
	cc := c
	cc.applyDefaults(p)
	fan := int64(PeakFanIn(p, cc.Topology, cc.Radix))
	per := satMulInt64(int64(cc.MessageKeys), record.KeySize)
	return satMulInt64(int64(p), satMulInt64(fan, per))
}

// satMulInt64 multiplies non-negative operands, saturating at MaxInt64
// so admission estimates never overflow into a small value.
func satMulInt64(a, b int64) int64 {
	if a == 0 || b == 0 {
		return 0
	}
	if a > math.MaxInt64/b {
		return math.MaxInt64
	}
	return a * b
}

// collectiveEdgeBounds returns per-link message-capacity bounds for the
// radix-rc collective tree rooted at node 0: a gather/reduce edge
// (child leader → block leader) queues up to the child block's rank
// count per collective (TreeGather forwards one message per rank), and
// back-to-back collectives (the quantile strategy gathers values then
// weights) can double that before the leader drains; broadcast edges
// carry single messages.  Keys are from*p+to.
func collectiveEdgeBounds(p, rc int) map[int]int {
	edges := make(map[int]int)
	bump := func(from, to, v int) {
		if v > edges[from*p+to] {
			edges[from*p+to] = v
		}
	}
	var rec func(lo, hi int)
	rec = func(lo, hi int) {
		if hi-lo <= 1 {
			return
		}
		sub := (hi - lo + rc - 1) / rc
		for s := lo; s < hi; s += sub {
			end := s + sub
			if end > hi {
				end = hi
			}
			if s != lo {
				bump(s, lo, 2*(end-s)+16)
				bump(lo, s, 16)
			}
			rec(s, end)
		}
	}
	rec(0, p)
	return edges
}

// hierLinkBound builds the per-link capacity hint for a hierarchical
// run: collective-tree edges get their block-size bounds, and each
// round edge (sender → representative) gets room for the whole
// dataset's worth of messages plus one end-of-stream sentinel per
// destination in the target sub-block.  The dataset-sized bound is the
// only statically safe one — an all-duplicate input funnels every key
// through one destination's sub-block — but it is charged per *used*
// link, and a node only has O(r) out-links per round, so the resident
// capacity stays O(p·r·log_r p · N/msg) slots instead of the flat
// path's O(p²) channels.
func hierLinkBound(p int, topo Topology, radix, messageKeys int, totalKeys int64) func(from, to int) int {
	lv := topoLevels(p, topo, radix)
	coll := collectiveEdgeBounds(p, collectiveRadix(p, topo, radix))
	if messageKeys <= 0 {
		messageKeys = 1
	}
	dataMsgs := int((totalKeys + int64(messageKeys) - 1) / int64(messageKeys))
	return func(from, to int) int {
		b := coll[from*p+to]
		for t := 0; t+1 < len(lv); t++ {
			s, sub := lv[t], lv[t+1]
			if from == to || from/s != to/s {
				continue
			}
			slo := to / sub * sub
			if routeStep(from, slo, s, sub, p) != to {
				continue
			}
			end := slo + sub
			if bhi := from/s*s + s; end > bhi {
				end = bhi
			}
			if end > p {
				end = p
			}
			if v := dataMsgs + (end - slo) + 16; v > b {
				b = v
			}
		}
		return b
	}
}

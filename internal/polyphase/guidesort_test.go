package polyphase

import (
	"bytes"
	"sort"
	"testing"
	"testing/quick"

	"hetsort/internal/diskio"
	"hetsort/internal/pdm"
	"hetsort/internal/record"
)

// bandedKeys builds bands of perBand keys with disjoint, ascending key
// ranges and pseudo-random order inside each band.  When perBand equals
// the run former's memory size, every load is one band, so Guidesort's
// guide comparison succeeds at every load boundary and the merge
// kernel's galloping fast path fires on every inter-run block.
func bandedKeys(bands, perBand int, seed uint64) []record.Key {
	keys := make([]record.Key, 0, bands*perBand)
	x := seed*2862933555777941757 + 3037000493
	for b := 0; b < bands; b++ {
		base := record.Key(b) << 20
		for i := 0; i < perBand; i++ {
			x = x*6364136223846793005 + 1442695040888963407
			keys = append(keys, base+record.Key(x>>44)&0xfffff)
		}
	}
	return keys
}

func TestGuidesortSortsAllDistributions(t *testing.T) {
	for _, d := range record.Distributions() {
		t.Run(d.String(), func(t *testing.T) {
			cfg := testConfig(diskio.NewMemFS(), nil)
			cfg.RunFormation = Guidesort
			sortAndVerify(t, cfg, d.Generate(3000, 11, 4))
		})
	}
}

// TestGuidesortCoalescesBandedLoads: on banded input whose bands match
// the memory size, Guidesort forms a single run where LoadSort forms one
// run per band.
func TestGuidesortCoalescesBandedLoads(t *testing.T) {
	const bands, m = 6, 128
	keys := bandedKeys(bands, m, 5)
	form := func(how RunFormation) [][]record.Key {
		fs := newMemInput(t, keys)
		var runs [][]record.Key
		sink := &collectSink{runs: &runs}
		n, total, err := formRuns(fs, "input", 16, m, how, accounting(), diskio.Overlap{}, sink)
		if err != nil {
			t.Fatal(err)
		}
		if n != int64(len(runs)) || total != int64(len(keys)) {
			t.Fatalf("%v: n=%d runs=%d total=%d", how, n, len(runs), total)
		}
		return runs
	}
	if ls := form(LoadSort); len(ls) != bands {
		t.Fatalf("LoadSort formed %d runs, want %d", len(ls), bands)
	}
	gs := form(Guidesort)
	if len(gs) != 1 {
		t.Fatalf("Guidesort formed %d runs on banded input, want 1", len(gs))
	}
	if !record.IsSorted(gs[0]) {
		t.Fatal("coalesced run not sorted")
	}
	if !record.ChecksumOf(gs[0]).Equal(record.ChecksumOf(keys)) {
		t.Fatal("coalesced run lost keys")
	}
}

// TestGuidesortRunsNeverExceedLoadSort: the guide comparison can only
// merge adjacent loads, so Guidesort's run count is bounded by
// LoadSort's on any input, and each run stays sorted.
func TestGuidesortRunsNeverExceedLoadSort(t *testing.T) {
	for _, d := range record.Distributions() {
		keys := d.Generate(2500, 3, 2)
		count := func(how RunFormation) int {
			fs := newMemInput(t, keys)
			var runs [][]record.Key
			sink := &collectSink{runs: &runs}
			if _, _, err := formRuns(fs, "input", 16, 128, how, accounting(), diskio.Overlap{}, sink); err != nil {
				t.Fatal(err)
			}
			for _, r := range runs {
				if !record.IsSorted(r) {
					t.Fatalf("%v/%v produced an unsorted run", d, how)
				}
			}
			return len(runs)
		}
		if gs, ls := count(Guidesort), count(LoadSort); gs > ls {
			t.Fatalf("%v: Guidesort %d runs > LoadSort %d", d, gs, ls)
		}
	}
}

// TestGuidesortComputeBelowReplacement: Guidesort's pass charges
// n*log2(M) + one guide comparison per load, strictly below replacement
// selection's per-key heap traffic.
func TestGuidesortComputeBelowReplacement(t *testing.T) {
	keys := record.Uniform.Generate(8192, 17, 1)
	charge := func(how RunFormation) int64 {
		fs := newMemInput(t, keys)
		var charged int64
		acct := diskio.Accounting{Meter: &captureMeter{compute: &charged}}
		var runs [][]record.Key
		sink := &collectSink{runs: &runs}
		if _, _, err := formRuns(fs, "input", 64, 512, how, acct, diskio.Overlap{}, sink); err != nil {
			t.Fatal(err)
		}
		return charged
	}
	gs, rs := charge(Guidesort), charge(ReplacementSelection)
	if gs >= rs {
		t.Fatalf("Guidesort charged %d compute ops, replacement selection %d; want strictly less", gs, rs)
	}
}

// TestAllFormersByteIdenticalOutput: the three run formers must produce
// byte-identical sorted output through the full polyphase sort.
func TestAllFormersByteIdenticalOutput(t *testing.T) {
	keys := bandedKeys(9, 100, 23) // deliberately unaligned with M
	var want []byte
	for _, rf := range []RunFormation{ReplacementSelection, LoadSort, Guidesort} {
		cfg := testConfig(diskio.NewMemFS(), nil)
		cfg.RunFormation = rf
		sortAndVerify(t, cfg, keys)
		out, err := diskio.ReadFileAll(cfg.FS, "output", cfg.BlockKeys, cfg.Acct)
		if err != nil {
			t.Fatal(err)
		}
		enc := record.EncodeKeys(nil, out)
		if want == nil {
			want = enc
		} else if !bytes.Equal(enc, want) {
			t.Fatalf("%v output differs from replacement-selection output", rf)
		}
	}
}

// TestGallopingIdentityAndCompute: disabling galloping must not change
// one byte of output or one PDM I/O count, and galloping must charge
// strictly less compute on gallop-friendly (banded) input.
func TestGallopingIdentityAndCompute(t *testing.T) {
	keys := bandedKeys(12, 128, 41)
	run := func(noGallop bool) ([]byte, pdm.IOStats, int64) {
		var c pdm.Counter
		var charged int64
		cfg := testConfig(diskio.NewMemFS(), &c)
		cfg.Acct.Meter = &captureMeter{compute: &charged}
		cfg.RunFormation = LoadSort // disjoint runs -> maximal galloping
		cfg.NoGallop = noGallop
		sortAndVerify(t, cfg, keys)
		out, err := diskio.ReadFileAll(cfg.FS, "output", cfg.BlockKeys, diskio.Accounting{})
		if err != nil {
			t.Fatal(err)
		}
		return record.EncodeKeys(nil, out), c.Snapshot(), charged
	}
	gBytes, gIO, gCompute := run(false)
	nBytes, nIO, nCompute := run(true)
	if !bytes.Equal(gBytes, nBytes) {
		t.Fatal("galloping changed the output bytes")
	}
	if gIO != nIO {
		t.Fatalf("galloping changed I/O counts: %v vs %v", gIO, nIO)
	}
	if gCompute >= nCompute {
		t.Fatalf("galloping charged %d compute ops, baseline %d; want strictly less", gCompute, nCompute)
	}
}

// obsMeter captures the merge kernel's observer counters.
type obsMeter struct {
	compute                   int64
	keys, chunks, fast, comps int64
}

func (m *obsMeter) ChargeCompute(n int64) { m.compute += n }
func (m *obsMeter) ChargeIOBlocks(int64)  {}
func (m *obsMeter) ChargeSeek(int64)      {}
func (m *obsMeter) ObserveMerge(k, c, f, cm int64) {
	m.keys += k
	m.chunks += c
	m.fast += f
	m.comps += cm
}

// TestMergeGallopSkipsReplays: merging disjoint multi-block runs, the
// galloping kernel must move blocks with far fewer tree comparisons
// than the replay-per-block baseline, at identical output.
func TestMergeGallopSkipsReplays(t *testing.T) {
	mk := func() []MergeSource {
		var srcs []MergeSource
		for s := 0; s < 4; s++ {
			keys := make([]record.Key, 64)
			for i := range keys {
				keys[i] = record.Key(s*1000 + i)
			}
			srcs = append(srcs, &sliceSource{keys: keys, blk: 8})
		}
		return srcs
	}
	run := func(opt MergeOptions) ([]record.Key, *obsMeter) {
		m := &obsMeter{}
		var out []record.Key
		if err := MergeOpt(mk(), m, func(c []record.Key) error {
			out = append(out, c...)
			return nil
		}, opt); err != nil {
			t.Fatal(err)
		}
		return out, m
	}
	gOut, g := run(MergeOptions{})
	nOut, n := run(MergeOptions{NoGallop: true})
	if len(gOut) != len(nOut) {
		t.Fatalf("gallop emitted %d keys, baseline %d", len(gOut), len(nOut))
	}
	for i := range gOut {
		if gOut[i] != nOut[i] {
			t.Fatalf("outputs differ at key %d", i)
		}
	}
	if g.keys != n.keys {
		t.Fatalf("observer keys differ: %d vs %d", g.keys, n.keys)
	}
	if g.comps >= n.comps {
		t.Fatalf("gallop made %d comparisons, baseline %d; want strictly less", g.comps, n.comps)
	}
	if g.compute >= n.compute {
		t.Fatalf("gallop charged %d compute, baseline %d; want strictly less", g.compute, n.compute)
	}
	if g.fast == 0 {
		t.Fatal("no fast-path chunks observed on disjoint runs")
	}
}

// TestMergeGallopKernelProperty: galloping never changes the merged
// sequence and never charges more compute, on arbitrary sorted sources.
func TestMergeGallopKernelProperty(t *testing.T) {
	f := func(raw [][]record.Key, blk uint8) bool {
		b := int(blk%7) + 1
		mk := func() []MergeSource {
			var srcs []MergeSource
			for _, r := range raw {
				r := append([]record.Key(nil), r...)
				sort.Slice(r, func(i, j int) bool { return r[i] < r[j] })
				srcs = append(srcs, &sliceSource{keys: r, blk: b})
			}
			return srcs
		}
		run := func(opt MergeOptions) ([]record.Key, int64) {
			var charged int64
			m := &captureMeter{compute: &charged}
			var out []record.Key
			if err := MergeOpt(mk(), m, func(c []record.Key) error {
				out = append(out, c...)
				return nil
			}, opt); err != nil {
				return nil, -1
			}
			return out, charged
		}
		gOut, gc := run(MergeOptions{})
		nOut, nc := run(MergeOptions{NoGallop: true})
		if gc < 0 || nc < 0 || len(gOut) != len(nOut) || gc > nc {
			return false
		}
		for i := range gOut {
			if gOut[i] != nOut[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

package checkpoint

import (
	"strings"
	"testing"

	"hetsort/internal/diskio"
	"hetsort/internal/pdm"
	"hetsort/internal/record"
)

func merkleManifest(t *testing.T) (*Manifest, diskio.FS) {
	t.Helper()
	fs := diskio.NewMemFS()
	if err := diskio.WriteFile(fs, "output", []record.Key{1, 2, 3}, 4, diskio.Accounting{}); err != nil {
		t.Fatal(err)
	}
	if err := diskio.WriteFile(fs, "part", []record.Key{9}, 4, diskio.Accounting{}); err != nil {
		t.Fatal(err)
	}
	m := &Manifest{
		Node: 0, P: 1, Phase: Phases, Sig: "s",
		Files: []FileInfo{{Name: "output", Keys: 3}, {Name: "part", Keys: 1}},
	}
	if err := m.Merkleize(fs, 4, diskio.Accounting{}); err != nil {
		t.Fatal(err)
	}
	return m, fs
}

func TestMerkleizeAnchorsFiles(t *testing.T) {
	m, fs := merkleManifest(t)
	if m.Root == "" || len(m.Root) != 64 {
		t.Fatalf("root %q", m.Root)
	}
	for _, fi := range m.Files {
		if len(fi.SHA256) != 64 {
			t.Fatalf("file %s hash %q", fi.Name, fi.SHA256)
		}
	}
	// The anchored manifest round-trips and validates end to end.
	if err := Save(fs, m, diskio.Accounting{}); err != nil {
		t.Fatal(err)
	}
	got, err := Load(fs)
	if err != nil {
		t.Fatal(err)
	}
	if got.Root != m.Root {
		t.Fatalf("root %s after reload, want %s", got.Root, m.Root)
	}
	if err := got.Validate(fs); err != nil {
		t.Fatal(err)
	}
}

func TestValidateDetectsContentTampering(t *testing.T) {
	m, fs := merkleManifest(t)
	// Same length, different content: the key-count check cannot see
	// it, the content hash must.
	if err := diskio.WriteFile(fs, "output", []record.Key{1, 2, 4}, 4, diskio.Accounting{}); err != nil {
		t.Fatal(err)
	}
	err := m.Validate(fs)
	if err == nil || !strings.Contains(err.Error(), "content hash") {
		t.Fatalf("tampered content: %v", err)
	}
}

func TestVerifyRootDetectsLeafSwap(t *testing.T) {
	m, _ := merkleManifest(t)
	// Swapping two files' recorded hashes must break the root: the
	// leaves bind name to content.
	m.Files[0].SHA256, m.Files[1].SHA256 = m.Files[1].SHA256, m.Files[0].SHA256
	if err := m.VerifyRoot(); err == nil {
		t.Fatal("leaf swap accepted")
	}
}

func TestVerifyRootSkipsUnanchored(t *testing.T) {
	m := &Manifest{Files: []FileInfo{{Name: "f", Keys: 1}}}
	if err := m.VerifyRoot(); err != nil {
		t.Fatalf("unanchored manifest: %v", err)
	}
}

func TestHashFileChargesReads(t *testing.T) {
	fs := diskio.NewMemFS()
	keys := make([]record.Key, 100)
	if err := diskio.WriteFile(fs, "f", keys, 8, diskio.Accounting{}); err != nil {
		t.Fatal(err)
	}
	var c pdm.Counter
	if _, err := HashFile(fs, "f", 8, diskio.Accounting{Counter: &c}); err != nil {
		t.Fatal(err)
	}
	// 100 keys at 8 keys/block: hashing bills its read pass.
	if got := c.Snapshot().Reads; got < 13 {
		t.Fatalf("hashing charged %d reads", got)
	}
}

func TestHashFileDeterministic(t *testing.T) {
	fs := diskio.NewMemFS()
	if err := diskio.WriteFile(fs, "f", []record.Key{5, 6, 7}, 4, diskio.Accounting{}); err != nil {
		t.Fatal(err)
	}
	a, err := HashFile(fs, "f", 4, diskio.Accounting{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := HashFile(fs, "f", 1, diskio.Accounting{}) // block size must not matter
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("hash depends on block size: %s vs %s", a, b)
	}
}

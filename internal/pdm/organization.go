package pdm

// This file models Figure 1 of the paper: the two canonical PDM
// organisations.  In organisation (a) a single CPU drives all D disks; in
// organisation (b) each of the D disks is attached to its own processor
// (the realistic layout for a cluster, and the one Algorithm 1 assumes
// with D=1 per node).  Striping turns D disks into one logical disk with
// block size D*B, which simplifies programming but can cost an extra
// log-factor because the effective number of memory blocks m shrinks.

// Organization identifies one of the two PDM layouts of Figure 1.
type Organization int

const (
	// SingleCPU is organisation (a): P=1, D disks on a common CPU.
	SingleCPU Organization = iota
	// PerProcessorDisk is organisation (b): P=D, one disk per processor.
	PerProcessorDisk
)

func (o Organization) String() string {
	switch o {
	case SingleCPU:
		return "P=1, D disks on one CPU"
	case PerProcessorDisk:
		return "P=D, one disk per processor"
	default:
		return "unknown organisation"
	}
}

// AccessMode distinguishes how the D disks are driven.
type AccessMode int

const (
	// Striped treats the D disks as one logical disk with logical
	// block size D*B; every I/O moves one stripe.
	Striped AccessMode = iota
	// Independent drives the D disks independently; reads may hit any
	// subset, writes are striped (the discipline Theorem 1 assumes).
	Independent
)

func (a AccessMode) String() string {
	if a == Striped {
		return "striped"
	}
	return "independent"
}

// SortIOs returns the number of parallel I/O steps an optimal sort needs
// under the given access mode.  With striping the model collapses to a
// single disk with block size D*B, so the radix of the log drops from
// m = M/B to M/(D*B); with independent access the full Theorem-1 bound
// applies.  The returned unit is "parallel I/O steps" (each step moves up
// to D blocks).
func (p Params) SortIOs(mode AccessMode) int64 {
	switch mode {
	case Striped:
		logicalB := p.D * p.B
		n := ceilDiv(p.N, logicalB)
		m := p.M / logicalB
		// Degenerate regime: with M < 2*D*B the memory cannot hold two
		// logical blocks, so the striped merge degree m is 0 or 1 and
		// log_m is undefined.  The best a striped sort can still do is a
		// binary merge over partial stripes, so clamp the radix to 2
		// explicitly rather than relying on LogCeil's silent floor.
		if m < 2 {
			m = 2
		}
		passes := LogCeil(n, m)
		if passes < 1 {
			passes = 1
		}
		return n * passes
	case Independent:
		return p.SortBound()
	default:
		panic("pdm: unknown access mode")
	}
}

// StripedPenalty returns the ratio of striped to independent parallel
// I/O steps for these parameters; >= 1, and grows when M/(D*B) is small.
func (p Params) StripedPenalty() float64 {
	ind := p.SortIOs(Independent)
	if ind == 0 {
		return 1
	}
	return float64(p.SortIOs(Striped)) / float64(ind)
}

package extsort

import (
	"fmt"
	"io"

	"hetsort/internal/cluster"
	"hetsort/internal/diskio"
	"hetsort/internal/perf"
	"hetsort/internal/record"
)

// DistributeInput generates n keys of the given distribution and writes
// each node's perf-proportional portion to the file name on its private
// disk (the initial configuration of Algorithm 1: "disk i has l_i, a
// portion of size (n/Σperf)*perf[i] of the unsorted list").  It returns
// the input checksum for later verification.  Generation is not charged
// to the clocks — the paper's timings likewise exclude the initial
// distribution.
func DistributeInput(c *cluster.Cluster, v perf.Vector, dist record.Distribution,
	n int64, seed int64, blockKeys int, name string) (record.Checksum, error) {
	if err := v.Validate(); err != nil {
		return record.Checksum{}, err
	}
	if len(v) != c.P() {
		return record.Checksum{}, fmt.Errorf("extsort: perf length %d != cluster size %d", len(v), c.P())
	}
	keys := dist.Generate(int(n), seed, c.P())
	shares := v.Shares(n)
	var off int64
	for i := 0; i < c.P(); i++ {
		portion := keys[off : off+shares[i]]
		off += shares[i]
		if err := diskio.WriteFile(c.Node(i).FS(), name, portion, blockKeys, diskio.Accounting{}); err != nil {
			return record.Checksum{}, fmt.Errorf("extsort: writing node %d input: %w", i, err)
		}
	}
	return record.ChecksumOf(keys), nil
}

// VerifyOutput checks the global postcondition: every node's output
// file is sorted, the last key of node i does not exceed the first key
// of node i+1, and the multiset of keys matches the input checksum.
// Verification I/O is not charged to the clocks.
func VerifyOutput(c *cluster.Cluster, name string, blockKeys int, want record.Checksum) error {
	var got record.Checksum
	prevLast := record.Key(0)
	havePrev := false
	for i := 0; i < c.P(); i++ {
		f, err := c.Node(i).FS().Open(name)
		if err != nil {
			return fmt.Errorf("extsort: node %d output: %w", i, err)
		}
		r := diskio.NewReader(f, blockKeys, diskio.Accounting{})
		var prev record.Key
		first := true
		for {
			k, err := r.ReadKey()
			if err == io.EOF {
				break
			}
			if err != nil {
				f.Close()
				return err
			}
			if first {
				if havePrev && k < prevLast {
					f.Close()
					return fmt.Errorf("extsort: boundary violation: node %d starts at %d below node %d's last %d",
						i, k, i-1, prevLast)
				}
				first = false
			} else if k < prev {
				f.Close()
				return fmt.Errorf("extsort: node %d output not sorted (%d after %d)", i, k, prev)
			}
			prev = k
			got.Update([]record.Key{k})
		}
		if err := f.Close(); err != nil {
			return err
		}
		if !first {
			prevLast = prev
			havePrev = true
		}
	}
	if !got.Equal(want) {
		return fmt.Errorf("extsort: output multiset %v != input %v", got, want)
	}
	return nil
}

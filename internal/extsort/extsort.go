// Package extsort is the paper's primary contribution: Algorithm 1, a
// PSRS scheme for external sorting on heterogeneous clusters.  Each node
// owns a disk-resident portion sized by the perf vector; the five steps
// are
//
//  1. sequential external sort of the portion (polyphase merge sort);
//  2. regularly spaced pivot candidates read from the sorted file
//     (perf-proportional counts), gathered on node 0, which selects and
//     broadcasts p-1 pivots;
//  3. partitioning of the sorted file into p contiguous segment files;
//  4. redistribution: segment j travels to node j in fixed-size
//     messages (a multiple of the block size);
//  5. final merge of the p received sorted files with the external
//     merge of step 1's sorter.
//
// The concatenation of the nodes' output files in rank order is the
// globally sorted sequence, and the PSRS theorem bounds every node's
// final load by twice its optimal share.
package extsort

import (
	"errors"
	"fmt"
	"io"
	"os"

	"hetsort/internal/checkpoint"
	"hetsort/internal/cluster"
	"hetsort/internal/diskio"
	"hetsort/internal/pdm"
	"hetsort/internal/perf"
	"hetsort/internal/polyphase"
	"hetsort/internal/progress"
	"hetsort/internal/record"
	"hetsort/internal/sampling"
	"hetsort/internal/trace"
	"hetsort/internal/vtime"
)

// Message tags.
const (
	tagSamples = 200 + iota
	tagPivots
	tagData
	tagDone
	tagOverSizes
	tagBarrierBase = 300 // barriers use tagBarrierBase + 2*step
)

// Step names index the per-step metrics in Result.
var StepNames = [5]string{
	"1:sequential-sort",
	"2:pivot-selection",
	"3:partitioning",
	"4:redistribution",
	"5:final-merge",
}

// Config parameterises Algorithm 1.
type Config struct {
	// Perf is the performance vector; data shares, sample counts and
	// pivot quantiles all follow it.  All ones = homogeneous external
	// PSRS.
	Perf perf.Vector
	// BlockKeys is the disk block size B in keys (default 2048 = 8 KiB).
	BlockKeys int
	// MemoryKeys is each node's internal memory M in keys (default 1<<16).
	MemoryKeys int
	// Tapes is the polyphase file count (default 15, the paper's
	// "15 intermediate files").
	Tapes int
	// MessageKeys is the redistribution message size in keys (default
	// 8192, the paper's best-performing 32 Kb packets).
	MessageKeys int
	// RunFormation selects the run former for step 1.
	RunFormation polyphase.RunFormation
	// Disks is the PDM D parameter per node (default 1).  It must match
	// the cluster's DisksPerNode: with D > 1 every node file is striped
	// unit-by-unit across D member disks, so the on-disk layout — and
	// hence the resume fingerprint — depends on it.
	Disks int
	// NoGalloping disables the merge kernel's multi-block galloping
	// fast path everywhere (steps 1 and 5 and the pipelined merges).
	// Compute-only: output bytes and PDM I/O counts are unchanged, so
	// it too is excluded from the resume fingerprint.  Used as the
	// ablation baseline.
	NoGalloping bool
	// Strategy selects the pivot scheme for step 2 (default
	// RegularSampling, the paper's Algorithm 1).
	Strategy Strategy
	// OverFactor is the sublists-per-processor factor k when Strategy
	// is Overpartitioning (default 4).
	OverFactor int
	// QuantileEps is the sketch error bound for QuantileSketch
	// (default 0.01).
	QuantileEps float64
	// HistTolerance is the Histogram strategy's convergence tolerance
	// as a fraction of the smallest perf share (default 0.05): the
	// refinement stops once every pivot's global rank is within
	// HistTolerance·min_share keys of its target.
	HistTolerance float64
	// Seed feeds the random samplers of the non-regular strategies.
	Seed int64
	// KeepIntermediates retains segment and received files for
	// debugging when true.
	KeepIntermediates bool
	// Pipeline fuses steps 4 and 5: each node merges the incoming
	// redistribution streams directly into its output file as messages
	// arrive, never materialising the p received files — saving their
	// write and re-read (up to 2·l_i/B block I/Os per node).  The
	// output is byte-identical to the barrier path.  When the p
	// message buffers do not fit in MemoryKeys the node falls back to
	// the barrier path (traced as a Pipeline "fallback" event); when
	// Checkpoint is set the streams are additionally teed to the
	// receive files, which the phase-4 manifest needs durable — that
	// still saves the l_i/B re-read.  Pipeline is an execution
	// strategy, not an outcome parameter: it is deliberately excluded
	// from the resume fingerprint, so an interrupted run may be
	// resumed with either setting.
	Pipeline bool
	// Overlap turns on asynchronous disk I/O: readers prefetch blocks
	// ahead of the consumer and writers flush behind it, so disk
	// transfer time hides behind concurrent compute up to the stream's
	// in-flight depth (vtime.OverlapMeter's windowed model).  The PDM
	// I/O *counts* and the output bytes are identical to the synchronous
	// path — only virtual time changes — and like Pipeline it is an
	// execution strategy excluded from the resume fingerprint.
	Overlap bool
	// OverlapDepth is the number of blocks kept in flight per
	// overlapped stream (0 = max(2, the node's DisksPerNode)).
	OverlapDepth int
	// Checkpoint makes the five phase boundaries durable commit points:
	// each node writes a manifest (see internal/checkpoint) to its
	// private FS after every phase, segment files are retained until
	// they can no longer be needed by a recovery, and an interrupted
	// run can be continued with Resume.
	Checkpoint bool
	// InputSum is the global input multiset checksum stamped into the
	// manifests so a resumed run can verify its final output (only
	// meaningful with Checkpoint).
	InputSum record.Checksum
	// Topology selects the communication structure for pivot
	// aggregation (step 2) and redistribution (step 4): TopologyFlat is
	// Algorithm 1 as written; TopologyTree and TopologyGrid bound every
	// node's fan-in at O(r) per round by aggregating samples up an
	// r-ary reduction tree and routing partitions through ⌈log_r p⌉
	// rounds of r-way exchanges (2 rounds for the √p×√p grid).  Unlike
	// Pipeline/Overlap, the topology is an outcome parameter for the
	// QuantileSketch strategy (its sketch merge is order-sensitive, so
	// per-node partitions may differ from the flat run's even though
	// the global sorted output is identical) and the phase-4 artifacts
	// differ, so it is part of the resume fingerprint.
	Topology Topology
	// Radix is the tree fan-in r (default 4).  The grid topology
	// derives its ⌈√p⌉ radix from p and ignores this.
	Radix int
	// Merkle upgrades the final checkpoint manifest to a Merkle-anchored
	// one: each node hashes the artifacts its phase-5 manifest depends on
	// and records a Merkle root over them, so the run's outputs verify
	// against one 32-byte value (hetsortd anchors every job this way).
	// The hashing re-reads the output once, charged as phase-0 I/O.  Like
	// Pipeline and Overlap it is an execution strategy excluded from the
	// resume fingerprint — it changes no output byte.  Requires
	// Checkpoint.
	Merkle bool
	// Progress, when set, is bound to the cluster at the start of the
	// run so other goroutines can sample live per-node, per-step
	// snapshots while Algorithm 1 executes (see internal/progress).  It
	// is a pure observation channel: sampling reads only atomics and
	// changes no virtual-time charge, no output byte, and — like
	// Pipeline/Overlap/Merkle — it is excluded from the resume
	// fingerprint.  The same tracker may span Sort and a later Resume;
	// rebinding keeps its snapshot sequence monotonic.
	Progress *progress.Tracker
}

// sig fingerprints the parameters that must match between an
// interrupted run and its resume.
func (c Config) sig(inputName, outputName string) string {
	return fmt.Sprintf("extsort-v1 perf=%v B=%d M=%d T=%d msg=%d rf=%d strat=%d over=%d eps=%g htol=%g seed=%d topo=%d r=%d d=%d in=%s out=%s",
		[]int(c.Perf), c.BlockKeys, c.MemoryKeys, c.Tapes, c.MessageKeys,
		c.RunFormation, c.Strategy, c.OverFactor, c.QuantileEps, c.HistTolerance, c.Seed,
		c.Topology, c.Radix, c.Disks, inputName, outputName)
}

// ApplyDefaults fills zero-valued fields with the paper's defaults for
// a p-node cluster (8 KiB blocks, 2^16-key memory, 15 tapes, 8K-integer
// messages, homogeneous perf).
func (c *Config) ApplyDefaults(p int) { c.applyDefaults(p) }

func (c *Config) applyDefaults(p int) {
	if len(c.Perf) == 0 {
		c.Perf = perf.Homogeneous(p)
	}
	if c.BlockKeys <= 0 {
		c.BlockKeys = 2048
	}
	if c.MemoryKeys <= 0 {
		c.MemoryKeys = 1 << 16
	}
	if c.Tapes <= 0 {
		c.Tapes = 15
	}
	if c.MessageKeys <= 0 {
		c.MessageKeys = 8192
	}
	if c.Radix <= 0 {
		c.Radix = 4
	}
	if c.Disks <= 0 {
		c.Disks = 1
	}
	if c.HistTolerance == 0 {
		c.HistTolerance = 0.05
	}
}

// Validate checks the configuration against cluster size p.
func (c Config) Validate(p int) error {
	if err := c.Perf.Validate(); err != nil {
		return err
	}
	if len(c.Perf) != p {
		return fmt.Errorf("extsort: perf vector length %d != cluster size %d", len(c.Perf), p)
	}
	if c.Tapes < 3 {
		return fmt.Errorf("extsort: Tapes=%d must be >= 3", c.Tapes)
	}
	if c.MemoryKeys < c.Tapes*c.BlockKeys {
		return fmt.Errorf("extsort: MemoryKeys=%d < Tapes*BlockKeys=%d", c.MemoryKeys, c.Tapes*c.BlockKeys)
	}
	if c.MessageKeys <= 0 {
		return fmt.Errorf("extsort: MessageKeys=%d must be positive", c.MessageKeys)
	}
	switch c.Topology {
	case TopologyFlat, TopologyTree, TopologyGrid:
	default:
		return fmt.Errorf("extsort: unknown topology %d", c.Topology)
	}
	if c.Radix < 2 {
		return fmt.Errorf("extsort: Radix=%d must be >= 2", c.Radix)
	}
	// Written as negated in-range checks so NaN — for which every
	// comparison is false — is rejected instead of slipping through to
	// the sketch or refiner.
	if c.QuantileEps != 0 && !(c.QuantileEps > 0 && c.QuantileEps < 1) {
		return fmt.Errorf("extsort: QuantileEps=%v must be in (0, 1)", c.QuantileEps)
	}
	if c.HistTolerance != 0 && !(c.HistTolerance > 0 && c.HistTolerance < 1) {
		return fmt.Errorf("extsort: HistTolerance=%v must be in (0, 1)", c.HistTolerance)
	}
	// The paper recommends message sizes that are multiples of the
	// block size (step 4), but its own packet-size experiment goes down
	// to 8-integer messages, so smaller values are permitted.
	return nil
}

// Result reports one Algorithm-1 run.
type Result struct {
	// Time is the virtual makespan.
	Time float64
	// NodeClocks is each node's final clock.
	NodeClocks []float64
	// PartitionSizes is the final number of keys per node.
	PartitionSizes []int64
	// StepTimes[s] is the cluster-wide duration of step s (barrier to
	// barrier, max over nodes).
	StepTimes [5]float64
	// NodeIO is each node's total I/O.
	NodeIO []pdm.IOStats
	// DiskIO[i][d] is node i's I/O on member disk d; nil per node when
	// the node has a single disk.  Summing over d reproduces NodeIO[i].
	DiskIO [][]pdm.IOStats
	// StepIO[s][i] is node i's I/O during step s.
	StepIO [5][]pdm.IOStats
	// NodeAttr[i] splits node i's final clock into compute, disk,
	// network and idle-wait virtual time.  The categories sum to
	// NodeClocks[i] (vtime.CheckAttribution holds for every node).
	NodeAttr []vtime.Breakdown
	// StepAttr[s][i] is node i's attribution during step s, barrier to
	// barrier (so the barrier wait counts as the step's idle time).
	StepAttr [5][]vtime.Breakdown
	// Pivots are the broadcast pivots (diagnostics).
	Pivots []record.Key
	// PivotRounds is the number of step-2 collective rounds: 1 for the
	// one-shot strategies, the refinement round count for Histogram.
	PivotRounds int
	// PivotSampleKeys counts the key-valued samples entering the
	// step-2 collectives — the "samples shipped" axis of the
	// histogram-vs-sampling tradeoff.  Per strategy: regular/random
	// sampling and overpartitioning count every node's sampled keys
	// (plus the agreed sublist sizes for overpartitioning);
	// QuantileSketch counts the exported (value, weight) pairs;
	// Histogram counts the candidate splitters broadcast per round.
	// Count vectors (integer metadata, not key samples) are excluded.
	PivotSampleKeys int64
}

// pivotStats carries one node's step-2 accounting out of the strategy.
type pivotStats struct {
	Rounds     int
	SampleKeys int64
}

// SublistExpansion returns the Table-3 S(max) metric for the run: the
// worst ratio of a node's final partition to its perf-optimal share.
func (r *Result) SublistExpansion(v perf.Vector) float64 {
	e, err := sampling.WeightedExpansion(r.PartitionSizes, v)
	if err != nil {
		return 0
	}
	return e
}

// MeanPartition returns the mean final partition size over the nodes
// with the given perf value (the paper's "Mean" column reports the fast
// nodes' mean in the heterogeneous rows).
func (r *Result) MeanPartition(v perf.Vector, class int) float64 {
	var sum, cnt int64
	for i, s := range r.PartitionSizes {
		if v[i] == class {
			sum += s
			cnt++
		}
	}
	if cnt == 0 {
		return 0
	}
	return float64(sum) / float64(cnt)
}

// MaxPartition returns the largest final partition among nodes of the
// given perf class.
func (r *Result) MaxPartition(v perf.Vector, class int) int64 {
	var max int64
	for i, s := range r.PartitionSizes {
		if v[i] == class && s > max {
			max = s
		}
	}
	return max
}

// Sort runs Algorithm 1.  Every node must already hold its portion in
// the file inputName on its private FS; on success every node holds its
// sorted partition in outputName.
func Sort(c *cluster.Cluster, cfg Config, inputName, outputName string) (*Result, error) {
	p := c.P()
	if err := cfg.resolveDisks(c); err != nil {
		return nil, err
	}
	cfg.applyDefaults(p)
	if err := cfg.Validate(p); err != nil {
		return nil, err
	}
	return runWorkers(c, cfg, inputName, outputName, nil)
}

// resolveDisks aligns Config.Disks with the cluster's per-node disk
// count: unset adopts the cluster's D (so the resume fingerprint always
// records the real striping layout), an explicit mismatch is an error.
func (c *Config) resolveDisks(cl *cluster.Cluster) error {
	d := cl.Node(0).Disks()
	if c.Disks <= 0 {
		c.Disks = d
	}
	if c.Disks != d {
		return fmt.Errorf("extsort: Config.Disks=%d does not match the cluster's %d disks per node", c.Disks, d)
	}
	return nil
}

// Resume continues an interrupted checkpointed Sort from the manifests
// on the node disks: it loads and validates every node's manifest,
// replays each node's virtual clock to its last commit, re-runs only the
// phases that did not commit (needy nodes re-receive their lost
// redistribution segments from the senders' retained partition files),
// and returns the completed result together with the original run's
// input checksum for verification.  All recovery I/O is charged to the
// PDM counters.  The configuration must match the interrupted run's.
func Resume(c *cluster.Cluster, cfg Config, inputName, outputName string) (*Result, record.Checksum, error) {
	p := c.P()
	if err := cfg.resolveDisks(c); err != nil {
		return nil, record.Checksum{}, err
	}
	cfg.applyDefaults(p)
	if err := cfg.Validate(p); err != nil {
		return nil, record.Checksum{}, err
	}
	cfg.Checkpoint = true // resuming implies checkpointing the rest of the run
	disks := make([]diskio.FS, p)
	for i := range disks {
		disks[i] = c.Node(i).FS()
	}
	plan, err := checkpoint.Plan(disks, cfg.sig(inputName, outputName))
	if err != nil {
		return nil, record.Checksum{}, err
	}
	cfg.InputSum = plan.Input
	c.ResetClocks()
	res, err := runWorkers(c, cfg, inputName, outputName, plan)
	if err != nil {
		return nil, record.Checksum{}, err
	}
	return res, plan.Input, nil
}

// runWorkers executes the five phases on every node, fresh (plan nil) or
// resuming from a recovery plan.
func runWorkers(c *cluster.Cluster, cfg Config, inputName, outputName string, plan *checkpoint.Recovery) (*Result, error) {
	p := c.P()
	res := &Result{
		NodeClocks:     make([]float64, p),
		PartitionSizes: make([]int64, p),
		NodeIO:         make([]pdm.IOStats, p),
		DiskIO:         make([][]pdm.IOStats, p),
		NodeAttr:       make([]vtime.Breakdown, p),
	}
	for s := range res.StepIO {
		res.StepIO[s] = make([]pdm.IOStats, p)
		res.StepAttr[s] = make([]vtime.Breakdown, p)
	}
	stepEnds := make([][5]float64, p) // per node, clock at each barrier
	pivotsOut := make([][]record.Key, p)
	statsOut := make([]pivotStats, p)

	// Size the link queues from the dataset: step 4's send-all-then-
	// receive-all exchange queues at most one whole segment (≤ l_i
	// keys) per link, so sends never block and the exchange order
	// cannot deadlock, barrier or pipelined.  Flat runs set one uniform
	// bound (every link can carry a whole portion); hierarchical runs
	// install a per-link hint instead, so only the O(r) links each node
	// actually uses per round are sized for bulk data and the rest of
	// the p² mesh stays unallocated.
	var maxPortion, totalKeys int64
	for i := 0; i < p; i++ {
		if li, err := diskio.CountKeys(c.Node(i).FS(), inputName); err == nil {
			totalKeys += li
			if li > maxPortion {
				maxPortion = li
			}
		}
	}
	if cfg.Topology != TopologyFlat && p > 1 {
		c.EnsureLinkCapacityFunc(hierLinkBound(p, cfg.Topology, cfg.Radix, cfg.MessageKeys, totalKeys))
	} else {
		c.EnsureLinkCapacity(cluster.LinkBound(maxPortion, cfg.MessageKeys))
	}
	if cfg.Progress != nil {
		cfg.Progress.Bind(c, cfg.Perf, totalKeys, cfg.BlockKeys)
	}

	err := c.Run(func(n *cluster.Node) error {
		w := worker{n: n, cfg: cfg, input: inputName, output: outputName,
			plan: plan, sig: cfg.sig(inputName, outputName)}
		return w.run(&stepEnds[n.ID()], &res.StepIO, &res.StepAttr, &pivotsOut[n.ID()], &statsOut[n.ID()])
	})
	if err != nil {
		return nil, err
	}

	for i := 0; i < p; i++ {
		res.NodeClocks[i] = c.Node(i).Clock()
		res.NodeIO[i] = c.Node(i).IOStats()
		res.DiskIO[i] = c.Node(i).DiskIO()
		res.NodeAttr[i] = c.Node(i).Attribution()
		sz, err := diskio.CountKeys(c.Node(i).FS(), outputName)
		if err != nil {
			return nil, fmt.Errorf("extsort: counting node %d output: %w", i, err)
		}
		res.PartitionSizes[i] = sz
	}
	res.Time = c.MaxClock()
	res.Pivots = pivotsOut[0]
	for _, st := range statsOut {
		if st.Rounds > res.PivotRounds {
			res.PivotRounds = st.Rounds
		}
		res.PivotSampleKeys += st.SampleKeys
	}
	// Step durations: max end over nodes, minus max previous end.
	prev := 0.0
	for s := 0; s < 5; s++ {
		var end float64
		for i := 0; i < p; i++ {
			if stepEnds[i][s] > end {
				end = stepEnds[i][s]
			}
		}
		res.StepTimes[s] = end - prev
		prev = end
	}
	if cfg.Progress != nil {
		cfg.Progress.MarkDone()
	}
	return res, nil
}

// worker carries one node's state through the five steps.
type worker struct {
	n      *cluster.Node
	cfg    Config
	input  string
	output string

	// Checkpoint state: plan is non-nil when resuming, sig fingerprints
	// the configuration, pivots carries the agreed pivots from phase 2
	// on so every later manifest re-records them.
	plan   *checkpoint.Recovery
	sig    string
	pivots []record.Key

	// pstats accumulates this node's step-2 sample/round accounting.
	pstats pivotStats
}

// done returns how many phases this node had committed before the run
// (0 for a fresh run).
func (w *worker) done() int {
	if w.plan == nil {
		return 0
	}
	return w.plan.Done[w.n.ID()]
}

// commit durably records that `phase` phases are complete, listing the
// files the state depends on.  No-op without checkpointing.  The
// "committed:<step>" crash point right after the save lets tests kill a
// node between its commit and the following barrier.
func (w *worker) commit(phase int, files []checkpoint.FileInfo) error {
	if !w.cfg.Checkpoint {
		return nil
	}
	n := w.n
	m := &checkpoint.Manifest{
		Node:   n.ID(),
		P:      n.P(),
		Phase:  phase,
		Clock:  n.Clock(),
		Sig:    w.sig,
		Input:  w.cfg.InputSum,
		Pivots: w.pivots,
		Files:  files,
	}
	// Manifest I/O is charged to phase 0 (checkpointing is bookkeeping,
	// not an Algorithm-1 step), and its virtual latency is observed.
	step := n.Counter().CurrentPhase()
	n.SetIOPhase(0)
	start := n.Clock()
	var err error
	if w.cfg.Merkle && phase == checkpoint.Phases {
		// Anchor the finished run: hash the final manifest's artifact
		// set and bind it under one Merkle root.
		err = m.Merkleize(n.FS(), w.cfg.BlockKeys, n.Acct())
	}
	if err == nil {
		err = checkpoint.Save(n.FS(), m, n.Acct())
	}
	n.Metrics().Histogram("checkpoint.commit.vsec").Observe(n.Clock() - start)
	n.SetIOPhase(step)
	if err != nil {
		return err
	}
	label := "start"
	if phase > 0 {
		label = StepNames[phase-1]
	}
	n.TraceEvent(trace.Checkpoint, label, fmt.Sprintf("phase:%d clock:%.6f files:%d", phase, n.Clock(), len(files)))
	n.CrashPoint("committed:" + label)
	return nil
}

// skipPhase records that a resumed node is skipping an already
// committed phase.
func (w *worker) skipPhase(step int) {
	w.n.TraceEvent(trace.Recovery, StepNames[step], "skipped (already committed)")
}

func (w *worker) run(stepEnds *[5]float64, stepIO *[5][]pdm.IOStats, stepAttr *[5][]vtime.Breakdown, pivotsOut *[]record.Key, pstatsOut *pivotStats) error {
	n := w.n
	id := n.ID()
	done := w.done()
	// begin/mark bracket one step: block I/O is attributed to the step's
	// phase cell and the clock attribution delta is recorded barrier to
	// barrier, so waiting at the barrier counts as the step's idle time.
	var attrBefore vtime.Breakdown
	begin := func(step int) pdm.IOStats {
		n.SetIOPhase(step + 1)
		attrBefore = n.Attribution()
		return n.IOStats()
	}
	mark := func(step int, before pdm.IOStats) error {
		if err := w.barrier(tagBarrierBase + 2*step); err != nil {
			return err
		}
		stepEnds[step] = n.Clock()
		stepIO[step][id] = n.IOStats().Sub(before)
		stepAttr[step][id] = n.Attribution().Sub(attrBefore)
		n.SetIOPhase(0)
		return nil
	}

	if w.plan != nil {
		// Replay the clock to the last commit, so a resumed run reports
		// the honest virtual completion time of the whole sort.
		n.AdvanceClock(w.plan.Clocks[id])
		w.pivots = w.plan.Pivots
		n.TraceEvent(trace.Recovery, "resume", fmt.Sprintf("phases-done:%d clock:%.6f", done, w.plan.Clocks[id]))
	} else if w.cfg.Checkpoint {
		// Phase-0 manifest: the run exists and the input is durable.
		li, err := diskio.CountKeys(n.FS(), w.input)
		if err != nil {
			return fmt.Errorf("checkpointing input on node %d: %w", id, err)
		}
		if err := w.commit(0, []checkpoint.FileInfo{{Name: w.input, Keys: li}}); err != nil {
			return err
		}
	}

	// Step 1: sequential external sort.
	before := begin(0)
	endPhase := n.TracePhase(StepNames[0])
	if done >= 1 {
		w.skipPhase(0)
	} else {
		keys, err := w.sequentialSort()
		if err != nil {
			return fmt.Errorf("step 1 on node %d: %w", id, err)
		}
		n.CrashPoint(StepNames[0])
		if err := w.commit(1, []checkpoint.FileInfo{{Name: w.sortedName(), Keys: keys}}); err != nil {
			return err
		}
	}
	endPhase()
	if err := mark(0, before); err != nil {
		return err
	}

	// Step 2: pivot selection.  When resuming after any node committed
	// phase 2, the pivots were already selected and broadcast (the
	// collective completed), so every node adopts the manifest copy
	// without a re-gather; otherwise all nodes re-run the collective.
	before = begin(1)
	endPhase = n.TracePhase(StepNames[1])
	var pivots []record.Key
	switch {
	case done >= 2:
		pivots = w.pivots
		w.skipPhase(1)
	case w.plan != nil && w.plan.Pivots != nil:
		pivots = w.plan.Pivots
		n.TraceEvent(trace.Recovery, StepNames[1], "pivots adopted from a peer's manifest")
		w.pivots = pivots
		li, err := diskio.CountKeys(n.FS(), w.sortedName())
		if err != nil {
			return fmt.Errorf("step 2 on node %d: %w", id, err)
		}
		n.CrashPoint(StepNames[1])
		if err := w.commit(2, []checkpoint.FileInfo{{Name: w.sortedName(), Keys: li}}); err != nil {
			return err
		}
	default:
		li, err := diskio.CountKeys(n.FS(), w.sortedName())
		if err != nil {
			return fmt.Errorf("step 2 on node %d: %w", id, err)
		}
		switch w.cfg.Strategy {
		case RegularSampling:
			pivots, err = w.selectPivots(li)
		case Overpartitioning:
			pivots, err = w.selectPivotsOver(li)
		case RandomPivots:
			pivots, err = w.selectPivotsRandom(li)
		case QuantileSketch:
			pivots, err = w.selectPivotsQuantile(li)
		case Histogram:
			pivots, err = w.selectPivotsHistogram(li)
		default:
			err = fmt.Errorf("unknown strategy %d", w.cfg.Strategy)
		}
		if err != nil {
			return fmt.Errorf("step 2 on node %d: %w", id, err)
		}
		w.pivots = pivots
		n.CrashPoint(StepNames[1])
		if err := w.commit(2, []checkpoint.FileInfo{{Name: w.sortedName(), Keys: li}}); err != nil {
			return err
		}
	}
	endPhase()
	*pivotsOut = pivots
	*pstatsOut = w.pstats
	if err := mark(1, before); err != nil {
		return err
	}

	// Step 3: partitioning.
	before = begin(2)
	endPhase = n.TracePhase(StepNames[2])
	if done >= 3 {
		w.skipPhase(2)
	} else {
		segSizes, err := w.partition(pivots)
		if err != nil {
			return fmt.Errorf("step 3 on node %d: %w", id, err)
		}
		n.CrashPoint(StepNames[2])
		files := make([]checkpoint.FileInfo, len(segSizes))
		for j, sz := range segSizes {
			files[j] = checkpoint.FileInfo{Name: w.segName(j), Keys: sz}
		}
		if err := w.commit(3, files); err != nil {
			return err
		}
		if w.cfg.Checkpoint && !w.cfg.KeepIntermediates {
			// The sorted file is only removed once the segments are
			// durably committed, so a crash mid-partition can redo it.
			if err := n.FS().Remove(w.sortedName()); err != nil && !errors.Is(err, os.ErrNotExist) {
				return fmt.Errorf("step 3 on node %d: %w", id, err)
			}
		}
	}
	endPhase()
	if err := mark(2, before); err != nil {
		return err
	}

	// Step 4: redistribution.  Needy nodes (phase 4 not committed)
	// re-receive everything; every node — including ones already past
	// phase 4 — re-sends its retained segments to the needy receivers,
	// which is exactly the recovery of the lost in-flight messages.
	before = begin(3)
	endPhase = n.TracePhase(StepNames[3])
	needy := make([]bool, n.P())
	for j := range needy {
		needy[j] = w.plan == nil || w.plan.Done[j] < 4
	}
	// With Pipeline, a needy node fuses step 5 into this step: the
	// incoming streams are merged straight into the output file while
	// the messages arrive.  The fused work (receive, merge compute,
	// output writes) is all attributed to step 4's window; step 5 then
	// only commits and cleans up.  The fallback keeps the barrier path
	// when the fan-in's message buffers would not fit in memory — for
	// the flat all-to-all that fan-in is p, for the hierarchical
	// topologies it is the O(r) final-round in-degree.
	pipelined := w.cfg.Pipeline && needy[id]
	var recvNames []string
	var counts []int64
	merged := false
	if w.hier() {
		if pipelined && !w.cfg.hierPipelineFits(w.hierFinalFanIn()) {
			pipelined = false
			n.TraceEvent(trace.Pipeline, "fallback",
				fmt.Sprintf("fan-in %d x %d-key messages exceeds MemoryKeys=%d", w.hierFinalFanIn(), w.cfg.MessageKeys, w.cfg.MemoryKeys))
		}
		var err error
		recvNames, counts, merged, err = w.redistributeHier(needy, pipelined)
		if err != nil {
			return fmt.Errorf("step 4 on node %d: %w", id, err)
		}
	} else {
		if pipelined && !w.cfg.pipelineFits(n.P()) {
			pipelined = false
			n.TraceEvent(trace.Pipeline, "fallback",
				fmt.Sprintf("fan-in %d x %d-key messages exceeds MemoryKeys=%d", n.P(), w.cfg.MessageKeys, w.cfg.MemoryKeys))
		}
		if err := w.sendSegments(needy); err != nil {
			return fmt.Errorf("step 4 on node %d: %w", id, err)
		}
		recvNames = make([]string, n.P())
		for i := range recvNames {
			recvNames[i] = w.recvName(i)
		}
		if needy[id] {
			n.Metrics().Gauge("redist.fanin.streams").Set(float64(n.P()))
			var err error
			if pipelined {
				counts, err = w.pipelineMerge(recvNames)
				merged = err == nil
			} else {
				counts, err = w.receiveSegments(recvNames)
			}
			if err != nil {
				return fmt.Errorf("step 4 on node %d: %w", id, err)
			}
		}
	}
	if needy[id] {
		n.CrashPoint(StepNames[3])
		if done < 4 && w.cfg.Checkpoint {
			var files []checkpoint.FileInfo
			for j := 0; j < n.P(); j++ {
				// Own segments stay durable for peers' recoveries...
				sz, err := diskio.CountKeys(n.FS(), w.segName(j))
				if err != nil {
					return fmt.Errorf("step 4 on node %d: %w", id, err)
				}
				files = append(files, checkpoint.FileInfo{Name: w.segName(j), Keys: sz})
			}
			for i, name := range recvNames {
				// ...and the final-merge inputs (the flat path's p
				// received files; the hierarchical path's own last-round
				// bucket plus its O(r) received files).
				files = append(files, checkpoint.FileInfo{Name: name, Keys: counts[i]})
			}
			if err := w.commit(4, files); err != nil {
				return err
			}
		}
	} else {
		w.skipPhase(3)
	}
	endPhase()
	if err := mark(3, before); err != nil {
		return err
	}

	// Step 5: final merge (already performed in-stream when pipelined;
	// then this window only holds the commit and cleanup).
	before = begin(4)
	endPhase = n.TracePhase(StepNames[4])
	cleanup := func() error {
		// Once phase 5 is committed no recovery can need the segments
		// or received files: a peer at phase 5 implies every node
		// committed phase 4 (the barrier ordering guarantees it).
		if !w.cfg.Checkpoint || w.cfg.KeepIntermediates {
			return nil
		}
		for j := 0; j < n.P(); j++ {
			if err := n.FS().Remove(w.segName(j)); err != nil && !errors.Is(err, os.ErrNotExist) {
				return err
			}
		}
		for _, name := range recvNames {
			if err := n.FS().Remove(name); err != nil && !errors.Is(err, os.ErrNotExist) {
				return err
			}
		}
		if w.hier() {
			// A crashed hierarchical run can orphan round buckets for
			// destinations that were no longer needy on the retry.
			if err := w.cleanStaleRounds(); err != nil {
				return err
			}
		}
		return nil
	}
	if done >= 5 {
		// A node that crashed after its phase-5 commit but before its
		// cleanup re-runs the (idempotent) sweep here.
		if err := cleanup(); err != nil {
			return fmt.Errorf("step 5 cleanup on node %d: %w", id, err)
		}
		w.skipPhase(4)
	} else {
		if !merged {
			if err := w.finalMerge(recvNames); err != nil {
				return fmt.Errorf("step 5 on node %d: %w", id, err)
			}
		}
		n.CrashPoint(StepNames[4])
		outKeys, err := diskio.CountKeys(n.FS(), w.output)
		if err != nil {
			return fmt.Errorf("step 5 on node %d: %w", id, err)
		}
		if err := w.commit(5, []checkpoint.FileInfo{{Name: w.output, Keys: outKeys}}); err != nil {
			return err
		}
		if err := cleanup(); err != nil {
			return fmt.Errorf("step 5 cleanup on node %d: %w", id, err)
		}
	}
	endPhase()
	return mark(4, before)
}

func (w *worker) sortedName() string { return "hetsort.sorted" }

// overlap resolves the node's overlapped-I/O mode: depth defaults to the
// node's disk parallelism (minimum 2, double buffering).
func (w *worker) overlap() diskio.Overlap {
	if !w.cfg.Overlap {
		return diskio.Overlap{}
	}
	depth := w.cfg.OverlapDepth
	if depth <= 0 {
		depth = w.n.Disks()
	}
	return diskio.Overlap{Enabled: true, Depth: depth}
}

func (w *worker) polyCfg(prefix string) polyphase.Config {
	return polyphase.Config{
		FS:           w.n.FS(),
		BlockKeys:    w.cfg.BlockKeys,
		MemoryKeys:   w.cfg.MemoryKeys,
		Tapes:        w.cfg.Tapes,
		RunFormation: w.cfg.RunFormation,
		Acct:         w.n.Acct(),
		Overlap:      w.overlap(),
		TempPrefix:   prefix,
		NoGallop:     w.cfg.NoGalloping,
	}
}

func (w *worker) sequentialSort() (int64, error) {
	st, err := polyphase.Sort(w.polyCfg("hetsort.s1."), w.input, w.sortedName())
	return st.Keys, err
}

// selectPivots implements step 2: sample the sorted file at regular
// positions (perf-proportional count), gather on node 0, select the
// p-1 weighted pivots, broadcast.
func (w *worker) selectPivots(li int64) ([]record.Key, error) {
	n, cfg := w.n, w.cfg
	p, id := n.P(), n.ID()
	if p == 1 {
		return nil, nil
	}
	var samples []record.Key
	if li > 0 {
		spacing, _, serr := sampling.HeteroSpacing(id, li, cfg.Perf[id], p)
		if serr != nil {
			var spErr *sampling.SpacingError
			if !errors.As(serr, &spErr) {
				return nil, fmt.Errorf("strategy %s: %w", cfg.Strategy, serr)
			}
			// Portion too small for regular spacing: sample everything.
			samples, serr = diskio.ReadFileAll(n.FS(), w.sortedName(), cfg.BlockKeys, n.Acct())
			if serr != nil {
				return nil, fmt.Errorf("strategy %s small-portion fallback (%v): %w", cfg.Strategy, spErr, serr)
			}
		} else {
			f, err := n.FS().Open(w.sortedName())
			if err != nil {
				return nil, err
			}
			for _, idx := range sampling.RegularSampleIndices(li, spacing) {
				k, err := diskio.ReadKeyAt(f, idx, n.Acct())
				if err != nil {
					f.Close()
					return nil, err
				}
				samples = append(samples, k)
			}
			if err := f.Close(); err != nil {
				return nil, err
			}
		}
	}
	w.pstats.Rounds = 1
	w.pstats.SampleKeys = int64(len(samples))
	var pivots []record.Key
	if w.hier() {
		// Aggregate up the radix-r reduction tree: each inner node merges
		// its children's sorted sample slices into one sorted slice before
		// forwarding, so no node's fan-in exceeds r−1 and the root does
		// O(s·log_r p) merge work instead of an O(s·log s) sort.  The
		// candidate multiset reaching the root is exactly the flat
		// gather's, and SelectPivotsRegular depends only on the multiset,
		// so the pivots are bit-identical to the flat run's.
		merged, err := n.TreeReduce(w.collRadix(), tagSamples, samples,
			func(acc, child []record.Key) ([]record.Key, error) {
				n.ChargeCompute(int64(len(acc) + len(child)))
				return sampling.CombineSorted(acc, child), nil
			})
		if err != nil {
			return nil, err
		}
		if id == 0 {
			n.ChargeCompute(int64(len(merged)) * 16)
			pivots, err = sampling.SelectPivotsRegular(merged, cfg.Perf)
			if err != nil {
				return nil, err
			}
		}
		return w.bcast(tagPivots, pivots)
	}
	gathered, err := n.Gather(0, tagSamples, samples)
	if err != nil {
		return nil, err
	}
	if id == 0 {
		var cands []record.Key
		for _, g := range gathered {
			cands = append(cands, g...)
		}
		n.ChargeCompute(int64(len(cands)) * 16) // in-core sort of a small sample
		pivots, err = sampling.SelectPivotsRegular(cands, cfg.Perf)
		if err != nil {
			return nil, err
		}
	}
	return n.Bcast(0, tagPivots, pivots)
}

// partition implements step 3: one streaming pass over the sorted file,
// splitting it into p contiguous segment files at the pivots.
func (w *worker) partition(pivots []record.Key) ([]int64, error) {
	n, cfg := w.n, w.cfg
	p := n.P()
	in, err := n.FS().Open(w.sortedName())
	if err != nil {
		return nil, err
	}
	defer in.Close()
	r := diskio.NewBlockReader(in, cfg.BlockKeys, n.Acct(), w.overlap())
	defer r.Release() // joins any prefetch goroutine before in closes

	sizes := make([]int64, p)
	seg := 0
	outFile, err := n.FS().Create(w.segName(0))
	if err != nil {
		return nil, err
	}
	out := diskio.NewBlockWriter(outFile, cfg.BlockKeys, n.Acct(), w.overlap())
	closeSeg := func() error {
		werr := out.Close()
		ferr := outFile.Close()
		out, outFile = nil, nil
		if werr != nil {
			return werr
		}
		return ferr
	}
	defer func() {
		// Error-path cleanup: the write-behind drainer must be joined
		// before its file handle goes away.
		if out != nil {
			out.Close()
			outFile.Close()
		}
	}()
	buf := make([]record.Key, cfg.BlockKeys)
	for {
		cnt, rerr := r.ReadKeys(buf)
		for _, k := range buf[:cnt] {
			for seg < len(pivots) && k > pivots[seg] {
				if err := closeSeg(); err != nil {
					return nil, err
				}
				seg++
				outFile, err = n.FS().Create(w.segName(seg))
				if err != nil {
					return nil, err
				}
				out = diskio.NewBlockWriter(outFile, cfg.BlockKeys, n.Acct(), w.overlap())
			}
			if err := out.WriteKey(k); err != nil {
				return nil, err
			}
			sizes[seg]++
		}
		n.ChargeCompute(int64(cnt)) // one comparison per key against the current pivot
		if rerr == io.EOF || cnt == 0 {
			break
		}
		if rerr != nil {
			return nil, rerr
		}
	}
	if err := closeSeg(); err != nil {
		return nil, err
	}
	// Create the remaining (empty) segment files.
	for s := seg + 1; s < p; s++ {
		f, err := n.FS().Create(w.segName(s))
		if err != nil {
			return nil, err
		}
		if err := f.Close(); err != nil {
			return nil, err
		}
	}
	if !w.cfg.KeepIntermediates && !w.cfg.Checkpoint {
		// With checkpointing the sorted file survives until the segment
		// files are durably committed (see run).
		if err := n.FS().Remove(w.sortedName()); err != nil {
			return nil, err
		}
	}
	return sizes, nil
}

func (w *worker) segName(j int) string  { return fmt.Sprintf("hetsort.seg%d", j) }
func (w *worker) recvName(i int) string { return fmt.Sprintf("hetsort.recv%d", i) }

// sendSegments implements the sending half of step 4: segment j is
// shipped to node j in MessageKeys-sized messages, terminated by a
// zero-length sentinel.  Only needy receivers (phase 4 not yet
// committed) are sent to — on a fresh run that is everyone; on a resumed
// run the retained segments are re-read and re-sent only to the nodes
// whose in-flight messages died with the crash.  Buffered links make the
// sends non-blocking, so a simple send-all-then-receive-all order cannot
// deadlock.  Payloads are pooled buffers whose ownership transfers with
// the message (SendOwned), so redistribution allocates nothing steady-
// state and self-sends move no bytes at all.
func (w *worker) sendSegments(needy []bool) error {
	n, cfg := w.n, w.cfg
	p := n.P()
	resend := w.plan != nil && w.plan.Done[n.ID()] >= 4
	for j := 0; j < p; j++ {
		if !needy[j] {
			continue
		}
		if resend {
			n.TraceEvent(trace.Recovery, "resend", fmt.Sprintf("seg%d -> node %d", j, j))
		}
		f, err := n.FS().Open(w.segName(j))
		if err != nil {
			return err
		}
		r := diskio.NewBlockReader(f, cfg.BlockKeys, n.Acct(), w.overlap())
		for {
			buf := n.AcquireBuf(cfg.MessageKeys)
			cnt, rerr := r.ReadKeys(buf)
			if cnt > 0 {
				if err := n.SendOwned(j, tagData, buf[:cnt]); err != nil {
					r.Release()
					f.Close()
					return err
				}
			} else {
				n.ReleaseBuf(buf)
			}
			if rerr == io.EOF || cnt == 0 {
				break
			}
			if rerr != nil {
				r.Release()
				f.Close()
				return rerr
			}
		}
		r.Release()
		if err := f.Close(); err != nil {
			return err
		}
		// Zero-length message with the data tag terminates the stream.
		if err := n.SendOwned(j, tagData, nil); err != nil {
			return err
		}
		if !cfg.KeepIntermediates && !cfg.Checkpoint {
			// Without checkpointing a sent segment is dead weight; with
			// it, segments are retained until phase 5 commits so a
			// recovered peer can ask for them again.
			if err := n.FS().Remove(w.segName(j)); err != nil {
				return err
			}
		}
	}
	return nil
}

// receiveSegments implements the receiving half of step 4: drain each
// peer in rank order, writing its stream to a private file.  Keys from
// one peer arrive sorted (the segment was a slice of a sorted file), so
// recv_i is sorted.  Returns the key count received from each peer.
func (w *worker) receiveSegments(names []string) ([]int64, error) {
	n, cfg := w.n, w.cfg
	p := n.P()
	counts := make([]int64, p)
	for i := 0; i < p; i++ {
		f, err := n.FS().Create(names[i])
		if err != nil {
			return nil, err
		}
		wr := diskio.NewBlockWriter(f, cfg.BlockKeys, n.Acct(), w.overlap())
		for {
			keys, err := n.Recv(i, tagData)
			if err != nil {
				wr.Close()
				f.Close()
				return nil, err
			}
			if len(keys) == 0 {
				break
			}
			werr := wr.WriteKeys(keys)
			n.ReleaseBuf(keys)
			if werr != nil {
				wr.Close()
				f.Close()
				return nil, werr
			}
		}
		counts[i] = wr.KeysWritten()
		if err := wr.Close(); err != nil {
			f.Close()
			return nil, err
		}
		if err := f.Close(); err != nil {
			return nil, err
		}
	}
	return counts, nil
}

// finalMerge implements step 5: external merge of the p received files.
func (w *worker) finalMerge(recvNames []string) error {
	if err := polyphase.MergeFiles(w.polyCfg("hetsort.s5."), recvNames, w.output); err != nil {
		return err
	}
	if !w.cfg.KeepIntermediates && !w.cfg.Checkpoint {
		// With checkpointing the received files survive until phase 5
		// commits (see run), so a crash during the merge can redo it.
		for _, name := range recvNames {
			if err := w.n.FS().Remove(name); err != nil {
				return err
			}
		}
	}
	return nil
}

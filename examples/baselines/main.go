// Baselines compares the paper's Algorithm 1 against the prior-work
// baseline (DeWitt et al. probabilistic splitting) and against the
// pivot-strategy variants, all on the same loaded heterogeneous
// cluster.  It prints the trade-off the paper's sections 2-3 discuss:
// the baseline saves the up-front external sort (fewer block I/Os) but
// regular sampling balances the load deterministically.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"hetsort"
)

func main() {
	perf := []int{1, 1, 4, 4}
	n, err := hetsort.ValidSize(perf, 1<<20)
	if err != nil {
		log.Fatal(err)
	}
	r := rand.New(rand.NewSource(11))
	keys := make([]hetsort.Key, n)
	for i := range keys {
		keys[i] = r.Uint32()
	}

	base := hetsort.Config{
		Perf:       perf,
		MemoryKeys: 1 << 14,
		BlockKeys:  512,
		Tapes:      8,
	}

	type variant struct {
		label string
		mod   func(hetsort.Config) hetsort.Config
	}
	variants := []variant{
		{"Algorithm 1 (regular sampling)", func(c hetsort.Config) hetsort.Config { return c }},
		{"Algorithm 1 + overpartitioning", func(c hetsort.Config) hetsort.Config {
			c.PivotStrategy = hetsort.PivotOverpartitioning
			return c
		}},
		{"Algorithm 1 + random pivots", func(c hetsort.Config) hetsort.Config {
			c.PivotStrategy = hetsort.PivotRandom
			return c
		}},
		{"DeWitt et al. baseline", func(c hetsort.Config) hetsort.Config {
			c.Algorithm = hetsort.AlgorithmDeWitt
			return c
		}},
	}

	fmt.Printf("sorting %d keys on a loaded {1,1,4,4} cluster:\n\n", n)
	fmt.Printf("%-32s %10s %10s %12s\n", "variant", "vtime(s)", "S(max)", "block I/Os")
	for _, v := range variants {
		_, rep, err := hetsort.Sort(keys, v.mod(base))
		if err != nil {
			log.Fatalf("%s: %v", v.label, err)
		}
		fmt.Printf("%-32s %10.3f %10.4f %12d\n",
			v.label, rep.Time, rep.SublistExpansion, rep.ReadBlocks+rep.WriteBlocks)
	}
	fmt.Println("\nAlgorithm 1 pays one extra pass (the up-front external sort) but its")
	fmt.Println("regular sampling bounds every node's load deterministically; the")
	fmt.Println("baseline's balance depends on its random sample.")
}

package check

import (
	"fmt"
	"io"
	"math/rand"

	"hetsort"
	"hetsort/internal/perf"
	"hetsort/internal/record"
)

// Options parameterises a sweep.
type Options struct {
	// Seeds is the number of randomized cases beyond the deterministic
	// corner list (default 32; -quick uses 8).
	Seeds int
	// BaseSeed offsets the seed sequence, so a nightly run with a
	// date-derived base explores fresh territory while staying
	// reproducible from its printed seeds.
	BaseSeed int64
	// Quick trims the sweep for PR gates: fewer seeds, smaller inputs,
	// crash/resume only on a subset of cases.
	Quick bool
	// Invariants filters the registry (comma-separated substrings;
	// empty = all).
	Invariants string
	// Scratch enables the crash/resume equivalence variant (a
	// directory for durable node disks; empty skips that variant).
	Scratch string
	// MaxShrinkRuns bounds the shrinker's re-executions per failure.
	MaxShrinkRuns int
	// Progress, when non-nil, receives one line per case.
	Progress io.Writer
}

// Summary reports one sweep.
type Summary struct {
	Cases     int       `json:"cases"`
	Runs      int       `json:"runs"`
	Seeds     []int64   `json:"seeds"`
	Failures  []Failure `json:"-"`
	FailCount int       `json:"failures"`
	// FailureText carries the rendered failures (message + shrunk
	// repro) for the JSON summary.
	FailureText []string `json:"failure_text,omitempty"`
}

// Sweep runs the deterministic corner cases plus opts.Seeds randomized
// cases, checks every invariant on each, and shrinks any failure to a
// minimal repro.  The error return is reserved for harness breakage;
// invariant violations are reported in the summary.
func Sweep(opts Options) *Summary {
	if opts.Seeds <= 0 {
		if opts.Quick {
			opts.Seeds = 8
		} else {
			opts.Seeds = 32
		}
	}
	sum := &Summary{}
	cases := CornerCases(opts.Quick)
	for i := 0; i < opts.Seeds; i++ {
		seed := opts.BaseSeed + int64(i)
		cases = append(cases, GenerateCase(seed, opts.Quick))
		sum.Seeds = append(sum.Seeds, seed)
	}
	// With neither equivalence nor error selected, Check skips the
	// variant runs; mirror that in the run accounting.
	invs := Select(opts.Invariants)
	variants := selected(invs, "equivalence") || selected(invs, "error") || selected(invs, "disk")
	for i, c := range cases {
		ro := RunOptions{Scratch: opts.Scratch, QuickTopology: opts.Quick}
		if opts.Quick && i%4 != 0 {
			// Quick mode: the durable crash/resume variant only on
			// every fourth case — it is the slowest axis (real disks,
			// two runs).
			ro.Scratch = ""
		}
		fails := Check(c, ro, opts.Invariants)
		sum.Cases++
		if variants {
			sum.Runs += runsPerCase(c, ro)
		} else {
			sum.Runs++
		}
		for _, f := range fails {
			shrunk := Shrink(f.Case, f.Invariant, RunOptions{Scratch: ro.Scratch}, opts.MaxShrinkRuns)
			// Re-derive the (possibly sharper) error from the shrunk case.
			err := f.Err
			if re := Check(shrunk, RunOptions{Scratch: ro.Scratch}, f.Invariant); len(re) > 0 {
				err = re[0].Err
			}
			f.Case = shrunk
			f.Err = err
			f.Repro = Repro(shrunk, f.Invariant, err)
			sum.Failures = append(sum.Failures, f)
		}
		if opts.Progress != nil {
			status := "ok"
			if len(fails) > 0 {
				status = fmt.Sprintf("FAIL (%d invariant(s))", len(fails))
			}
			fmt.Fprintf(opts.Progress, "%-44s n=%-7d %s\n", c.Name, len(c.Keys), status)
		}
	}
	sum.FailCount = len(sum.Failures)
	for _, f := range sum.Failures {
		sum.FailureText = append(sum.FailureText, f.String()+"\n"+f.Repro)
	}
	return sum
}

// runsPerCase predicts how many runs Execute performs for accounting.
func runsPerCase(c *Case, ro RunOptions) int {
	if c.Config.Algorithm != "" && c.Config.Algorithm != hetsort.AlgorithmExternalPSRS {
		return 1
	}
	runs := 5 // base + pipeline + overlap + pipeline+overlap + cross-D disks
	if flatTopology(c.Config) {
		runs += 4 // tree/r2 + grid + tree/r4 + tree/r16
		if ro.QuickTopology {
			runs -= 2
		}
	} else {
		runs++ // the flat reference run
	}
	if !c.Config.Checkpoint.Enabled {
		runs++
	}
	if ro.Scratch != "" {
		runs += 2 // crash run + resume
	}
	return runs
}

// smallMachine is the harness's default machine: small blocks and
// memory so even a few thousand keys are genuinely out of core and
// every Algorithm-1 step moves real blocks.
func smallMachine(cfg *hetsort.Config) {
	cfg.BlockKeys = 16
	cfg.MemoryKeys = 512
	cfg.Tapes = 4
	cfg.MessageKeys = 64
}

// CornerCases returns the deterministic always-run list: the degenerate
// sizes and adversarial distributions every sweep must cover (n=0, n=1,
// n<p, n not a multiple of lcm(perf), all-equal keys, pre-sorted,
// reverse-sorted), crossed with the pivot strategies at a fixed small
// machine.
func CornerCases(quick bool) []*Case {
	var cases []*Case
	add := func(name string, keys []hetsort.Key, mutate func(*hetsort.Config)) {
		cfg := hetsort.Config{}
		smallMachine(&cfg)
		if mutate != nil {
			mutate(&cfg)
		}
		cases = append(cases, &Case{Name: "corner/" + name, Keys: keys, Config: cfg})
	}

	allEqual := func(n int) []hetsort.Key {
		keys := make([]hetsort.Key, n)
		for i := range keys {
			keys[i] = 7777777
		}
		return keys
	}
	seq := func(n int, reverse bool) []hetsort.Key {
		keys := make([]hetsort.Key, n)
		for i := range keys {
			if reverse {
				keys[i] = hetsort.Key(n - i)
			} else {
				keys[i] = hetsort.Key(i)
			}
		}
		return keys
	}

	add("empty", nil, nil)
	add("single", []hetsort.Key{42}, nil)
	add("n<p", []hetsort.Key{3, 1, 2}, nil) // 3 keys on 4 nodes
	add("all-equal", allEqual(600), nil)
	add("sorted", seq(600, false), nil)
	add("reverse", seq(600, true), nil)
	// n not a multiple of lcm(perf): perf {1,1,4,4} has practical
	// quantum 20; 1009 is prime, so every node's share rounds.
	add("off-quantum", record.Uniform.Generate(1009, 11, 4), func(cfg *hetsort.Config) {
		cfg.Perf = []int{1, 1, 4, 4}
	})
	// The degenerate sizes again under each non-default pivot strategy.
	for _, strat := range []string{hetsort.PivotOverpartitioning, hetsort.PivotRandom, hetsort.PivotQuantileSketch, hetsort.PivotHistogram} {
		strat := strat
		add("empty/"+strat, nil, func(cfg *hetsort.Config) { cfg.PivotStrategy = strat })
		add("n<p/"+strat, []hetsort.Key{9, 1}, func(cfg *hetsort.Config) { cfg.PivotStrategy = strat })
		add("all-equal/"+strat, allEqual(500), func(cfg *hetsort.Config) { cfg.PivotStrategy = strat })
	}
	// Hierarchical bases: duplicate-heavy routing through the tree, and
	// n<p under the grid (Execute adds the flat reference run for the
	// equivalence compare).
	add("all-equal/tree-r2", allEqual(600), func(cfg *hetsort.Config) {
		cfg.Topology = hetsort.TopologyTree
		cfg.Radix = 2
	})
	add("n<p/grid", []hetsort.Key{3, 1, 2}, func(cfg *hetsort.Config) {
		cfg.Topology = hetsort.TopologyGrid
	})
	// Multi-disk bases: duplicates and degenerate sizes on striped and
	// independent D-disk nodes (Execute adds the single-disk reference
	// run for the cross-D equivalence compare).
	add("all-equal/d4", allEqual(600), func(cfg *hetsort.Config) { cfg.Disks = 4 })
	add("n<p/d2-independent", []hetsort.Key{3, 1, 2}, func(cfg *hetsort.Config) {
		cfg.Disks = 2
		cfg.DiskAccess = hetsort.DiskAccessIndependent
	})
	if !quick {
		add("off-quantum/tree-r4", record.Uniform.Generate(1009, 13, 8), func(cfg *hetsort.Config) {
			cfg.Perf = []int{1, 1, 4, 4, 1, 1, 4, 4}
			cfg.Topology = hetsort.TopologyTree
			cfg.Radix = 4
		})
		add("all-equal/hetero", allEqual(2040), func(cfg *hetsort.Config) { cfg.Perf = []int{8, 5, 3, 1} })
		add("sorted/load-sort", seq(2000, false), func(cfg *hetsort.Config) {
			cfg.RunFormation = hetsort.RunLoadSort
		})
		add("reverse/guidesort", seq(2000, true), func(cfg *hetsort.Config) {
			cfg.RunFormation = hetsort.RunGuidesort
		})
		// D crossed with a hierarchical topology: multi-round
		// redistribution over striped node disks.
		add("off-quantum/d4/tree-r4", record.Uniform.Generate(1009, 17, 8), func(cfg *hetsort.Config) {
			cfg.Perf = []int{1, 1, 4, 4, 1, 1, 4, 4}
			cfg.Topology = hetsort.TopologyTree
			cfg.Radix = 4
			cfg.Disks = 4
		})
		add("reverse/dewitt", seq(2000, true), func(cfg *hetsort.Config) {
			cfg.Algorithm = hetsort.AlgorithmDeWitt
		})
	}
	return cases
}

// GenerateCase draws one deterministic random point of the Config ×
// input cross-product from the seed.
func GenerateCase(seed int64, quick bool) *Case {
	r := rand.New(rand.NewSource(seed))
	cfg := hetsort.Config{Seed: seed}
	smallMachine(&cfg)

	perfChoices := [][]int{nil, {1, 2}, {1, 1, 4, 4}, {8, 5, 3, 1}, {2, 2, 2}, {3, 1}}
	cfg.Perf = perfChoices[r.Intn(len(perfChoices))]
	p := len(cfg.Perf)
	if p == 0 {
		p = 4
		cfg.Nodes = 4
	}

	strategies := []string{"", hetsort.PivotOverpartitioning, hetsort.PivotRandom,
		hetsort.PivotQuantileSketch, hetsort.PivotHistogram}
	cfg.PivotStrategy = strategies[r.Intn(len(strategies))]
	if cfg.PivotStrategy == hetsort.PivotHistogram && r.Intn(2) == 0 {
		cfg.HistTolerance = []float64{0.01, 0.1, 0.5}[r.Intn(3)]
	}
	switch r.Intn(3) {
	case 1:
		cfg.RunFormation = hetsort.RunLoadSort
	case 2:
		cfg.RunFormation = hetsort.RunGuidesort
	}
	// Disks: mostly the single-disk default, with striped and
	// independent multi-disk points so the disk invariant and the
	// cross-D equivalence variant also start from a D > 1 base.
	switch r.Intn(4) {
	case 0:
		cfg.Disks = 2
	case 1:
		cfg.Disks = 4
		if r.Intn(2) == 1 {
			cfg.DiskAccess = hetsort.DiskAccessIndependent
		}
	}
	// Topology: mostly flat (the default), with hierarchical points so
	// the equivalence axis also starts from a non-flat base (Execute
	// then adds the flat reference run).
	switch r.Intn(6) {
	case 0:
		cfg.Topology = hetsort.TopologyTree
		cfg.Radix = []int{2, 4, 16}[r.Intn(3)]
	case 1:
		cfg.Topology = hetsort.TopologyGrid
	}
	if r.Intn(8) == 0 {
		// Occasionally sweep the DeWitt baseline (PSRS-only axes and
		// invariants auto-skip).
		cfg.Algorithm = hetsort.AlgorithmDeWitt
		cfg.PivotStrategy = ""
		cfg.Topology, cfg.Radix = "", 0
	}
	if r.Intn(4) == 0 {
		cfg.Network = hetsort.NetworkIdeal
	}
	// Vary the machine a little while keeping extsort's constraints
	// (MemoryKeys >= Tapes*BlockKeys).
	blocks := []int{8, 16, 32}
	cfg.BlockKeys = blocks[r.Intn(len(blocks))]
	tapes := []int{3, 4, 6}
	cfg.Tapes = tapes[r.Intn(len(tapes))]
	mems := []int{256, 512, 1024}
	cfg.MemoryKeys = mems[r.Intn(len(mems))]
	if min := cfg.Tapes * cfg.BlockKeys; cfg.MemoryKeys < min {
		cfg.MemoryKeys = min
	}
	msgs := []int{16, 64, 256}
	cfg.MessageKeys = msgs[r.Intn(len(msgs))]

	// Input size: degenerate, small, Equation-2-exact, or off-quantum.
	v := perf.Vector(cfg.Perf)
	if len(v) == 0 {
		v = perf.Homogeneous(p)
	}
	var n int
	switch r.Intn(6) {
	case 0:
		n = r.Intn(p) // includes 0 and n<p
	case 1:
		n = p + r.Intn(64)
	case 2:
		n = int(v.NearestValidSize(int64(500 + r.Intn(2000)))) // Equation-2 exact
	default:
		n = 300 + r.Intn(3500)
		if !quick {
			n = 300 + r.Intn(12000)
		}
	}

	dists := []record.Distribution{record.Uniform, record.Zipf, record.Sorted,
		record.Reverse, record.Staggered, record.Bucket, record.Gaussian, record.NearlySorted,
		record.HeavyDup, record.ZipfS2, record.Staircase, record.SamplerKiller}
	dist := dists[r.Intn(len(dists))]
	keys := dist.Generate(n, seed, p)
	if r.Intn(8) == 0 {
		// All-equal input: the hardest duplicate case.
		for i := range keys {
			keys[i] = 123456789
		}
	}

	name := fmt.Sprintf("seed%d/%s/p%d/%s/n=%d", seed, dist, p, stratName(cfg), n)
	if !flatTopology(cfg) {
		name += "/" + cfg.Topology
		if cfg.Topology == hetsort.TopologyTree {
			name += fmt.Sprintf("-r%d", cfg.Radix)
		}
	}
	if cfg.Disks > 1 {
		name += fmt.Sprintf("/d%d", cfg.Disks)
		if cfg.DiskAccess == hetsort.DiskAccessIndependent {
			name += "-ind"
		}
	}
	return &Case{Name: name, Seed: seed, Keys: keys, Config: cfg}
}

func stratName(cfg hetsort.Config) string {
	if cfg.Algorithm == hetsort.AlgorithmDeWitt {
		return "dewitt"
	}
	if cfg.PivotStrategy == "" {
		return "regular"
	}
	return cfg.PivotStrategy
}

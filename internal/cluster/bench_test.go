package cluster

import (
	"testing"

	"hetsort/internal/record"
)

func BenchmarkPointToPoint(b *testing.B) {
	c, err := New(Config{Slowdowns: []float64{1, 1}})
	if err != nil {
		b.Fatal(err)
	}
	payload := make([]record.Key, 8192)
	b.SetBytes(int64(len(payload)) * record.KeySize)
	b.ResetTimer()
	err = c.Run(func(n *Node) error {
		// Ping-pong so the link buffer never overflows at large b.N.
		for i := 0; i < b.N; i++ {
			if n.ID() == 0 {
				if err := n.Send(1, 1, payload); err != nil {
					return err
				}
				if _, err := n.Recv(1, 2); err != nil {
					return err
				}
			} else {
				if _, err := n.Recv(0, 1); err != nil {
					return err
				}
				if err := n.Send(0, 2, nil); err != nil {
					return err
				}
			}
		}
		return nil
	})
	if err != nil {
		b.Fatal(err)
	}
}

func BenchmarkBarrier(b *testing.B) {
	c, err := New(Config{Slowdowns: []float64{1, 1, 1, 1}})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	err = c.Run(func(n *Node) error {
		for i := 0; i < b.N; i++ {
			if err := n.Barrier(i * 2); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		b.Fatal(err)
	}
}

func BenchmarkAllGather(b *testing.B) {
	c, err := New(Config{Slowdowns: []float64{1, 1, 1, 1}})
	if err != nil {
		b.Fatal(err)
	}
	payload := make([]record.Key, 1024)
	b.SetBytes(int64(len(payload)) * record.KeySize * 4)
	b.ResetTimer()
	err = c.Run(func(n *Node) error {
		for i := 0; i < b.N; i++ {
			if _, err := n.AllGather(i*2, payload); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		b.Fatal(err)
	}
}

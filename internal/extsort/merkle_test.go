package extsort

import (
	"testing"

	"hetsort/internal/checkpoint"
	"hetsort/internal/cluster"
	"hetsort/internal/perf"
	"hetsort/internal/record"
)

// TestMerkleRunAnchorsFinalManifests: with Merkle enabled, every node's
// final checkpoint manifest carries per-file hashes and a root, and the
// manifest validates against the disk contents.
func TestMerkleRunAnchorsFinalManifests(t *testing.T) {
	v := perf.Vector{1, 1, 4, 4}
	n := v.NearestValidSize(1 << 13)
	c := newCluster(t, v)
	cfg := testConfig(v)
	cfg.Checkpoint = true
	cfg.Merkle = true
	var err error
	cfg.InputSum, err = DistributeInput(c, v, record.Uniform, n, 7, cfg.BlockKeys, "input")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Sort(c, cfg, "input", "output"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < c.P(); i++ {
		m, err := checkpoint.Load(c.Node(i).FS())
		if err != nil {
			t.Fatalf("node %d: %v", i, err)
		}
		if m.Phase != checkpoint.Phases {
			t.Fatalf("node %d manifest at phase %d", i, m.Phase)
		}
		if m.Root == "" {
			t.Fatalf("node %d manifest has no merkle root", i)
		}
		for _, fi := range m.Files {
			if fi.SHA256 == "" {
				t.Fatalf("node %d file %s unhashed", i, fi.Name)
			}
		}
		if err := m.Validate(c.Node(i).FS()); err != nil {
			t.Fatalf("node %d: %v", i, err)
		}
	}
}

// TestMerkleExcludedFromResumeSig: Merkle is an execution strategy, not
// part of the plan identity — a run checkpointed without it can be
// resumed with it on (and the resumed final manifest is then anchored).
func TestMerkleExcludedFromResumeSig(t *testing.T) {
	v := perf.Vector{1, 1, 4, 4}
	n := v.NearestValidSize(1 << 13)
	c := newCluster(t, v)
	cfg := testConfig(v)
	cfg.Checkpoint = true
	var err error
	cfg.InputSum, err = DistributeInput(c, v, record.Uniform, n, 7, cfg.BlockKeys, "input")
	if err != nil {
		t.Fatal(err)
	}
	if err := c.ScheduleCrash(1, -1, StepNames[3]); err != nil {
		t.Fatal(err)
	}
	if _, err := Sort(c, cfg, "input", "output"); !cluster.IsCrash(err) {
		t.Fatalf("injected crash did not surface: %v", err)
	}
	cfg.Merkle = true
	if _, _, err := Resume(c, cfg, "input", "output"); err != nil {
		t.Fatalf("resume with Merkle toggled on: %v", err)
	}
	if err := VerifyOutput(c, "output", cfg.BlockKeys, cfg.InputSum); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < c.P(); i++ {
		m, err := checkpoint.Load(c.Node(i).FS())
		if err != nil {
			t.Fatalf("node %d: %v", i, err)
		}
		if m.Root == "" {
			t.Fatalf("node %d final manifest unanchored after merkle resume", i)
		}
	}
}

package cluster

import (
	"strings"
	"testing"

	"hetsort/internal/record"
	"hetsort/internal/vtime"
)

func mustNew(t *testing.T, slowdowns ...float64) *Cluster {
	t.Helper()
	c, err := New(Config{Slowdowns: slowdowns})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("empty cluster must be rejected")
	}
	if _, err := New(Config{Slowdowns: []float64{1, 0.5}}); err == nil {
		t.Fatal("slowdown < 1 must be rejected")
	}
}

func TestDefaults(t *testing.T) {
	c := mustNew(t, 1, 1)
	if c.P() != 2 {
		t.Fatalf("P=%d", c.P())
	}
	if c.Net().Name != "fast-ethernet" {
		t.Fatalf("default net %q", c.Net().Name)
	}
	if c.Node(0).FS() == nil {
		t.Fatal("default disks missing")
	}
}

func TestRunAllNodesExecute(t *testing.T) {
	c := mustNew(t, 1, 1, 1, 1)
	seen := make([]bool, 4)
	err := c.Run(func(n *Node) error {
		seen[n.ID()] = true
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range seen {
		if !s {
			t.Fatalf("node %d did not run", i)
		}
	}
}

func TestRunJoinsErrors(t *testing.T) {
	c := mustNew(t, 1, 1)
	err := c.Run(func(n *Node) error {
		if n.ID() == 1 {
			return errTest
		}
		return nil
	})
	if err == nil || !strings.Contains(err.Error(), "node 1") {
		t.Fatalf("err=%v", err)
	}
}

var errTest = &testError{}

type testError struct{}

func (*testError) Error() string { return "boom" }

func TestRunRecoversPanic(t *testing.T) {
	c := mustNew(t, 1)
	err := c.Run(func(n *Node) error { panic("kaboom") })
	if err == nil || !strings.Contains(err.Error(), "kaboom") {
		t.Fatalf("err=%v", err)
	}
}

func TestSendRecvPayloadAndTag(t *testing.T) {
	c := mustNew(t, 1, 1)
	err := c.Run(func(n *Node) error {
		if n.ID() == 0 {
			return n.Send(1, 7, []record.Key{1, 2, 3})
		}
		got, err := n.Recv(0, 7)
		if err != nil {
			return err
		}
		if len(got) != 3 || got[0] != 1 || got[2] != 3 {
			t.Errorf("payload %v", got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRecvTagMismatch(t *testing.T) {
	c := mustNew(t, 1, 1)
	err := c.Run(func(n *Node) error {
		if n.ID() == 0 {
			return n.Send(1, 7, nil)
		}
		_, err := n.Recv(0, 8)
		return err
	})
	if err == nil || !strings.Contains(err.Error(), "expected tag") {
		t.Fatalf("err=%v", err)
	}
}

func TestSendCopiesPayload(t *testing.T) {
	c := mustNew(t, 1, 1)
	err := c.Run(func(n *Node) error {
		if n.ID() == 0 {
			buf := []record.Key{42}
			if err := n.Send(1, 0, buf); err != nil {
				return err
			}
			buf[0] = 99 // must not affect the in-flight message
			return nil
		}
		got, err := n.Recv(0, 0)
		if err != nil {
			return err
		}
		if got[0] != 42 {
			t.Errorf("payload aliased sender buffer: %v", got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestInvalidRanks(t *testing.T) {
	c := mustNew(t, 1)
	err := c.Run(func(n *Node) error {
		if err := n.Send(5, 0, nil); err == nil {
			t.Error("Send to invalid rank accepted")
		}
		if _, err := n.Recv(-1, 0); err == nil {
			t.Error("Recv from invalid rank accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestClockAdvancesOnTransfer(t *testing.T) {
	c := mustNew(t, 1, 1)
	const keys = 100000
	err := c.Run(func(n *Node) error {
		if n.ID() == 0 {
			return n.Send(1, 0, make([]record.Key, keys))
		}
		_, err := n.Recv(0, 0)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	bytes := int64(keys) * record.KeySize
	wantMin := c.Net().TransferSec(bytes)
	if got := c.Node(1).Clock(); got < wantMin {
		t.Fatalf("receiver clock %v < transfer time %v", got, wantMin)
	}
	if got := c.Node(0).Clock(); got <= 0 {
		t.Fatal("sender clock did not advance for transmit occupancy")
	}
}

func TestSelfSendIsFree(t *testing.T) {
	c := mustNew(t, 1)
	err := c.Run(func(n *Node) error {
		if err := n.Send(0, 3, []record.Key{9}); err != nil {
			return err
		}
		got, err := n.Recv(0, 3)
		if err != nil {
			return err
		}
		if got[0] != 9 {
			t.Errorf("self payload %v", got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if c.Node(0).Clock() != 0 {
		t.Fatalf("self-send should cost nothing, clock=%v", c.Node(0).Clock())
	}
}

func TestSlowdownScalesLocalWork(t *testing.T) {
	c, err := New(Config{Slowdowns: []float64{1, 4}})
	if err != nil {
		t.Fatal(err)
	}
	err = c.Run(func(n *Node) error {
		n.ChargeCompute(1000)
		n.ChargeIOBlocks(10)
		n.ChargeSeek(2)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	fast, slow := c.Node(0).Clock(), c.Node(1).Clock()
	ratio := slow / fast
	if ratio < 3.99 || ratio > 4.01 {
		t.Fatalf("slowdown ratio %v want 4", ratio)
	}
}

func TestMeterChargesMatchCostModel(t *testing.T) {
	cost := vtime.CostModel{ComputeSec: 1, IOBlockSecPerKey: 2, SeekSec: 5}
	c, err := New(Config{Slowdowns: []float64{1}, Cost: cost, BlockKeys: 3})
	if err != nil {
		t.Fatal(err)
	}
	c.Run(func(n *Node) error {
		n.ChargeCompute(2)   // 2
		n.ChargeIOBlocks(1)  // 1*3*2 = 6
		n.ChargeSeek(1)      // 5
		n.AdvanceClock(0.25) // fixed
		return nil
	})
	if got, want := c.Node(0).Clock(), 13.25; got != want {
		t.Fatalf("clock=%v want %v", got, want)
	}
}

func TestNetModelTransfer(t *testing.T) {
	m := NetModel{Name: "x", LatencySec: 0.001, BytesPerSec: 1000}
	if got := m.TransferSec(500); got != 0.501 {
		t.Fatalf("TransferSec=%v", got)
	}
	if got := Ideal().TransferSec(1 << 30); got != 0 {
		t.Fatalf("ideal transfer should be free, got %v", got)
	}
}

func TestPresetsOrdering(t *testing.T) {
	fe, my := FastEthernet(), Myrinet()
	if my.LatencySec >= fe.LatencySec {
		t.Fatal("Myrinet latency should beat Fast Ethernet")
	}
	if my.BytesPerSec <= fe.BytesPerSec {
		t.Fatal("Myrinet bandwidth should beat Fast Ethernet")
	}
}

func TestGather(t *testing.T) {
	c := mustNew(t, 1, 1, 1, 1)
	err := c.Run(func(n *Node) error {
		parts, err := n.Gather(0, 1, []record.Key{record.Key(n.ID() * 10)})
		if err != nil {
			return err
		}
		if n.ID() == 0 {
			for i, p := range parts {
				if len(p) != 1 || p[0] != record.Key(i*10) {
					t.Errorf("part %d = %v", i, p)
				}
			}
		} else if parts != nil {
			t.Errorf("non-root got parts")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBcast(t *testing.T) {
	c := mustNew(t, 1, 1, 1)
	err := c.Run(func(n *Node) error {
		var in []record.Key
		if n.ID() == 2 {
			in = []record.Key{5, 6}
		}
		got, err := n.Bcast(2, 1, in)
		if err != nil {
			return err
		}
		if len(got) != 2 || got[0] != 5 || got[1] != 6 {
			t.Errorf("node %d bcast got %v", n.ID(), got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllGather(t *testing.T) {
	c := mustNew(t, 1, 1, 1)
	err := c.Run(func(n *Node) error {
		got, err := n.AllGather(1, []record.Key{record.Key(n.ID())})
		if err != nil {
			return err
		}
		if len(got) != 3 || got[0] != 0 || got[1] != 1 || got[2] != 2 {
			t.Errorf("node %d allgather %v", n.ID(), got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBarrierSynchronisesClocks(t *testing.T) {
	c := mustNew(t, 1, 1, 1, 1)
	err := c.Run(func(n *Node) error {
		// Node 3 does a lot of local work before the barrier.
		if n.ID() == 3 {
			n.AdvanceClock(100)
		}
		if err := n.Barrier(10); err != nil {
			return err
		}
		if n.Clock() < 100 {
			t.Errorf("node %d clock %v below barrier max 100", n.ID(), n.Clock())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestDeterministicClocks(t *testing.T) {
	run := func() []float64 {
		c := mustNew(t, 1, 2, 3, 4)
		err := c.Run(func(n *Node) error {
			n.ChargeCompute(int64(1000 * (n.ID() + 1)))
			if err := n.Barrier(0); err != nil {
				return err
			}
			// Ring exchange.
			next := (n.ID() + 1) % n.P()
			prev := (n.ID() + n.P() - 1) % n.P()
			if err := n.Send(next, 2, make([]record.Key, 100*(n.ID()+1))); err != nil {
				return err
			}
			_, err := n.Recv(prev, 2)
			return err
		})
		if err != nil {
			t.Fatal(err)
		}
		clocks := make([]float64, c.P())
		for i := range clocks {
			clocks[i] = c.Node(i).Clock()
		}
		return clocks
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("clock %d differs across identical runs: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestResetClocks(t *testing.T) {
	c := mustNew(t, 1, 1)
	c.Run(func(n *Node) error {
		n.ChargeCompute(100)
		n.Counter().AddRead(5)
		return nil
	})
	if c.MaxClock() == 0 {
		t.Fatal("clock should have advanced")
	}
	c.ResetClocks()
	if c.MaxClock() != 0 || c.Node(0).IOStats().Total() != 0 {
		t.Fatal("ResetClocks incomplete")
	}
}

func TestMaxClock(t *testing.T) {
	c := mustNew(t, 1, 1, 1)
	c.Run(func(n *Node) error {
		n.AdvanceClock(float64(n.ID()) * 2)
		return nil
	})
	if got := c.MaxClock(); got != 4 {
		t.Fatalf("MaxClock=%v want 4", got)
	}
}

func TestAcctChargesNodeAndCounter(t *testing.T) {
	c := mustNew(t, 1)
	err := c.Run(func(n *Node) error {
		acct := n.Acct()
		acct.Counter.AddRead(1)
		acct.Meter.ChargeIOBlocks(1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if c.Node(0).IOStats().Reads != 1 {
		t.Fatal("counter not wired")
	}
	if c.Node(0).Clock() == 0 {
		t.Fatal("meter not wired")
	}
}

func TestLinkBufferOverflowDetected(t *testing.T) {
	c, err := New(Config{Slowdowns: []float64{1, 1}, LinkBuffer: 2})
	if err != nil {
		t.Fatal(err)
	}
	err = c.Run(func(n *Node) error {
		if n.ID() != 0 {
			return nil
		}
		// Self-sends queue without a concurrent receiver, so the third
		// enqueue deterministically overflows the 2-slot link.
		for i := 0; i < 3; i++ {
			if err := n.Send(0, 0, nil); err != nil {
				return err
			}
		}
		return nil
	})
	if err == nil || !strings.Contains(err.Error(), "full") {
		t.Fatalf("want link-full error, got %v", err)
	}
}

func TestDisksPerNodeSpeedsIO(t *testing.T) {
	run := func(d int) float64 {
		c, err := New(Config{Slowdowns: []float64{1}, DisksPerNode: d})
		if err != nil {
			t.Fatal(err)
		}
		c.Run(func(n *Node) error {
			if n.Disks() != d {
				t.Errorf("Disks()=%d want %d", n.Disks(), d)
			}
			n.ChargeIOBlocks(100)
			return nil
		})
		return c.MaxClock()
	}
	one, four := run(1), run(4)
	if ratio := one / four; ratio < 3.99 || ratio > 4.01 {
		t.Fatalf("D=4 should cut I/O time 4x, got ratio %v", ratio)
	}
}

func TestDisksPerNodeDoesNotAffectCompute(t *testing.T) {
	c, err := New(Config{Slowdowns: []float64{1}, DisksPerNode: 8})
	if err != nil {
		t.Fatal(err)
	}
	c.Run(func(n *Node) error {
		n.ChargeCompute(1000)
		return nil
	})
	c2, _ := New(Config{Slowdowns: []float64{1}})
	c2.Run(func(n *Node) error {
		n.ChargeCompute(1000)
		return nil
	})
	if c.MaxClock() != c2.MaxClock() {
		t.Fatal("disk count changed compute cost")
	}
}

// Package psrs implements the paper's in-core foundation (section 3):
// Parallel Sorting by Regular Sampling on the simulated cluster, in both
// the homogeneous (Shi & Schaeffer) and heterogeneous (Cérin & Gaudiot)
// forms, plus an overpartitioning variant (Li & Sevcik) used as the
// ablation baseline.  The external Algorithm 1 in package extsort
// follows the same four canonical phases with disks in the loop.
package psrs

import (
	"fmt"
	"slices"

	"hetsort/internal/cluster"
	"hetsort/internal/perf"
	"hetsort/internal/record"
	"hetsort/internal/sampling"
)

// Message tags for the algorithm's communication steps.
const (
	tagSamples = 100 + iota
	tagPivots
	tagPartition
	tagOver
	tagQVals
	tagQWeights
)

// Strategy selects the pivot-selection scheme.
type Strategy int

const (
	// RegularSampling is PSRS: samples at regular positions of the
	// locally sorted portions, perf-proportional counts.
	RegularSampling Strategy = iota
	// Overpartitioning is Li & Sevcik: random samples, k*p sublists,
	// greedy assignment.  Kept simple: k fixed by Config.OverFactor.
	Overpartitioning
	// Quantiles is the variant of the paper's reference [29]: pivots
	// from merged ε-approximate quantile summaries of the unsorted
	// portions, removing the sampled-after-sort dependency and the
	// p^2-sample memory cost on the designated node.
	Quantiles
)

func (s Strategy) String() string {
	switch s {
	case RegularSampling:
		return "regular-sampling"
	case Overpartitioning:
		return "overpartitioning"
	case Quantiles:
		return "quantiles"
	default:
		return fmt.Sprintf("strategy(%d)", int(s))
	}
}

// Config parameterises an in-core parallel sort.
type Config struct {
	// Perf is the performance vector (all ones = homogeneous).
	Perf perf.Vector
	// Strategy selects pivot selection (default RegularSampling).
	Strategy Strategy
	// OverFactor is Li & Sevcik's k (sublists per processor) when
	// Strategy is Overpartitioning (default 4).
	OverFactor int
	// QuantileEps is the sketch error bound for the Quantiles
	// strategy (default 0.01).
	QuantileEps float64
	// Seed feeds the random sampling of overpartitioning.
	Seed int64
}

// Result reports a parallel in-core sort.
type Result struct {
	// Sorted holds each node's final sorted partition; the
	// concatenation in rank order is the globally sorted output.
	Sorted [][]record.Key
	// PartitionSizes is the number of keys each node ended up with.
	PartitionSizes []int64
	// Time is the virtual makespan in seconds.
	Time float64
	// NodeClocks is each node's final virtual clock.
	NodeClocks []float64
}

// Sort runs the configured parallel sort over the cluster.  portions[i]
// is node i's initial (unsorted, in-memory) data; it is not modified.
func Sort(c *cluster.Cluster, cfg Config, portions [][]record.Key) (*Result, error) {
	p := c.P()
	if len(cfg.Perf) == 0 {
		cfg.Perf = perf.Homogeneous(p)
	}
	if err := cfg.Perf.Validate(); err != nil {
		return nil, err
	}
	if len(cfg.Perf) != p || len(portions) != p {
		return nil, fmt.Errorf("psrs: perf (%d) and portions (%d) must match cluster size %d",
			len(cfg.Perf), len(portions), p)
	}
	if cfg.OverFactor <= 0 {
		cfg.OverFactor = 4
	}
	out := make([][]record.Key, p)
	err := c.Run(func(n *cluster.Node) error {
		var sorted []record.Key
		var err error
		switch cfg.Strategy {
		case RegularSampling:
			sorted, err = sortRegular(n, cfg, portions[n.ID()])
		case Overpartitioning:
			sorted, err = sortOver(n, cfg, portions[n.ID()])
		case Quantiles:
			sorted, err = sortQuantiles(n, cfg, portions[n.ID()])
		default:
			err = fmt.Errorf("psrs: unknown strategy %d", cfg.Strategy)
		}
		out[n.ID()] = sorted
		return err
	})
	if err != nil {
		return nil, err
	}
	res := &Result{
		Sorted:         out,
		PartitionSizes: make([]int64, p),
		NodeClocks:     make([]float64, p),
	}
	for i := range out {
		res.PartitionSizes[i] = int64(len(out[i]))
		res.NodeClocks[i] = c.Node(i).Clock()
	}
	res.Time = c.MaxClock()
	return res, nil
}

// localSort sorts a copy of the portion, charging n log n compute.
func localSort(n *cluster.Node, portion []record.Key) []record.Key {
	local := append([]record.Key(nil), portion...)
	slices.Sort(local)
	n.ChargeCompute(nLogN(int64(len(local))))
	return local
}

// sortRegular is PSRS phases 1-4 generalized to perf vectors.
func sortRegular(n *cluster.Node, cfg Config, portion []record.Key) ([]record.Key, error) {
	p, id := n.P(), n.ID()
	local := localSort(n, portion)

	// Phase 2: perf-proportional regular samples, gathered on node 0.
	var samples []record.Key
	if p > 1 {
		spacing, _, err := sampling.HeteroSpacing(id, int64(len(local)), cfg.Perf[id], p)
		if err != nil {
			// Portion too small for regular spacing: sample everything.
			samples = append([]record.Key(nil), local...)
		} else {
			samples = sampling.RegularSamples(local, spacing)
		}
	}
	gathered, err := n.Gather(0, tagSamples, samples)
	if err != nil {
		return nil, err
	}
	var pivots []record.Key
	if id == 0 {
		var cands []record.Key
		for _, g := range gathered {
			cands = append(cands, g...)
		}
		n.ChargeCompute(nLogN(int64(len(cands))))
		pivots, err = sampling.SelectPivotsRegular(cands, cfg.Perf)
		if err != nil {
			return nil, err
		}
	}
	pivots, err = n.Bcast(0, tagPivots, pivots)
	if err != nil {
		return nil, err
	}

	// Phase 3: partition the sorted portion at the pivots (binary
	// search: charge log per pivot).
	cuts := sampling.Boundaries(local, pivots)
	n.ChargeCompute(int64(len(pivots)) * nLogN(2)) // ~log(len) each; cheap

	// Phase 4: exchange partition j -> node j, then merge.
	return exchangeAndMerge(n, local, cuts)
}

// exchangeAndMerge sends segment j of local (delimited by cuts) to node
// j, receives this node's segments from everyone, and k-way merges them.
func exchangeAndMerge(n *cluster.Node, local []record.Key, cuts []int) ([]record.Key, error) {
	p, id := n.P(), n.ID()
	prev := 0
	for j := 0; j < p; j++ {
		end := len(local)
		if j < len(cuts) {
			end = cuts[j]
		}
		if err := n.Send(j, tagPartition, local[prev:end]); err != nil {
			return nil, err
		}
		prev = end
	}
	parts := make([][]record.Key, p)
	for j := 0; j < p; j++ {
		got, err := n.Recv(j, tagPartition)
		if err != nil {
			return nil, err
		}
		parts[j] = got
	}
	_ = id
	return mergeParts(n, parts), nil
}

// mergeParts k-way merges sorted slices, charging log(p) per output key.
func mergeParts(n *cluster.Node, parts [][]record.Key) []record.Key {
	var total int
	for _, q := range parts {
		total += len(q)
	}
	out := make([]record.Key, 0, total)
	type head struct {
		k        record.Key
		src, pos int
	}
	var heads []head
	for s, q := range parts {
		if len(q) > 0 {
			heads = append(heads, head{k: q[0], src: s, pos: 0})
		}
	}
	// Simple heap-free selection for small p would be fine, but use a
	// proper heap so compute charges scale like a real merge.
	less := func(a, b head) bool { return a.k < b.k }
	siftDown := func(i int) {
		for {
			l, r, sm := 2*i+1, 2*i+2, i
			if l < len(heads) && less(heads[l], heads[sm]) {
				sm = l
			}
			if r < len(heads) && less(heads[r], heads[sm]) {
				sm = r
			}
			if sm == i {
				return
			}
			heads[i], heads[sm] = heads[sm], heads[i]
			i = sm
		}
	}
	for i := len(heads)/2 - 1; i >= 0; i-- {
		siftDown(i)
	}
	var ops int64
	for len(heads) > 0 {
		h := heads[0]
		out = append(out, h.k)
		q := parts[h.src]
		if h.pos+1 < len(q) {
			heads[0] = head{k: q[h.pos+1], src: h.src, pos: h.pos + 1}
		} else {
			heads[0] = heads[len(heads)-1]
			heads = heads[:len(heads)-1]
		}
		siftDown(0)
		ops += 2
	}
	n.ChargeCompute(ops)
	return out
}

// nLogN approximates comparison counts for charging compute time.
func nLogN(n int64) int64 {
	if n <= 1 {
		return n
	}
	var lg int64
	for v := n; v > 1; v >>= 1 {
		lg++
	}
	return n * lg
}

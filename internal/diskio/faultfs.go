package diskio

import (
	"errors"
	"sync/atomic"
)

// ErrInjected is the sentinel returned by FaultFS when the configured
// operation budget is exhausted.
var ErrInjected = errors.New("diskio: injected fault")

// FaultFS wraps another FS and fails file operations after a fixed
// number of successful byte-level operations, for exercising error paths
// in the sorters.  FailAfter counts Read/Write/Seek calls across all
// files opened through the wrapper.
//
// By default every operation past the budget fails forever (a permanent
// disk failure).  Setting FailCount > 0 selects the transient mode: only
// the next FailCount operations fail, after which the device recovers
// and operations succeed again — the model of a controller hiccup or a
// transient NFS error that a bounded retry policy (see RetryFS) should
// absorb.
type FaultFS struct {
	Inner FS
	// FailAfter is the number of file operations allowed before
	// injection starts.  Zero fails immediately; negative never fails.
	FailAfter int64
	// FailCount, when positive, bounds the number of injected failures:
	// after FailCount operations have failed, subsequent operations
	// succeed again (transient fault).  Zero or negative keeps the
	// permanent-failure behaviour.
	FailCount int64

	ops      atomic.Int64
	injected atomic.Int64
}

// NewFaultFS wraps inner so that file operations start failing after n
// successful ones (permanently; set FailCount for a transient fault).
func NewFaultFS(inner FS, n int64) *FaultFS {
	return &FaultFS{Inner: inner, FailAfter: n}
}

// NewTransientFaultFS wraps inner so that after n successful operations
// the next k operations fail with ErrInjected, and every operation after
// that succeeds again.
func NewTransientFaultFS(inner FS, n, k int64) *FaultFS {
	return &FaultFS{Inner: inner, FailAfter: n, FailCount: k}
}

// Ops returns the number of operations observed so far.
func (f *FaultFS) Ops() int64 { return f.ops.Load() }

// Injected returns the number of operations that failed with an
// injected error so far (for asserting that a retry path actually
// exercised the fault).
func (f *FaultFS) Injected() int64 { return f.injected.Load() }

func (f *FaultFS) allow() error {
	if f.FailAfter < 0 {
		return nil
	}
	over := f.ops.Add(1) - f.FailAfter
	if over <= 0 {
		return nil
	}
	if f.FailCount > 0 && over > f.FailCount {
		return nil // transient fault has passed
	}
	f.injected.Add(1)
	return ErrInjected
}

// Create implements FS.
func (f *FaultFS) Create(name string) (File, error) {
	if err := f.allow(); err != nil {
		return nil, err
	}
	inner, err := f.Inner.Create(name)
	if err != nil {
		return nil, err
	}
	return &faultFile{File: inner, fs: f}, nil
}

// Open implements FS.
func (f *FaultFS) Open(name string) (File, error) {
	if err := f.allow(); err != nil {
		return nil, err
	}
	inner, err := f.Inner.Open(name)
	if err != nil {
		return nil, err
	}
	return &faultFile{File: inner, fs: f}, nil
}

// Remove implements FS.
func (f *FaultFS) Remove(name string) error {
	if err := f.allow(); err != nil {
		return err
	}
	return f.Inner.Remove(name)
}

// Rename implements FS.
func (f *FaultFS) Rename(oldName, newName string) error {
	if err := f.allow(); err != nil {
		return err
	}
	return f.Inner.Rename(oldName, newName)
}

// Names implements FS.
func (f *FaultFS) Names() ([]string, error) { return f.Inner.Names() }

type faultFile struct {
	File
	fs *FaultFS
}

func (f *faultFile) Read(p []byte) (int, error) {
	if err := f.fs.allow(); err != nil {
		return 0, err
	}
	return f.File.Read(p)
}

func (f *faultFile) Write(p []byte) (int, error) {
	if err := f.fs.allow(); err != nil {
		return 0, err
	}
	return f.File.Write(p)
}

func (f *faultFile) Seek(offset int64, whence int) (int64, error) {
	if err := f.fs.allow(); err != nil {
		return 0, err
	}
	return f.File.Seek(offset, whence)
}

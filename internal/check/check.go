// Package check is the repo's cross-configuration correctness harness:
// a deterministic randomized sweeper that executes the full Config
// cross-product (algorithm × pivot strategy × run formation × Pipeline ×
// Overlap × checkpoint/crash-resume) against seeded inputs and verifies
// a registry of machine-checked invariants on every run — the paper's
// guarantees (the PSRS ≤2× load-balance theorem, the step I/O budgets of
// Algorithm 1) plus the simulator's own contracts (permutation
// checksums, byte-identity across execution strategies, the virtual-time
// attribution identity).
//
// A failing case is shrunk — keys first, then config axes toward the
// zero value — and printed as a ready-to-paste Go reproduction, so every
// future perf PR can run `hetcheck -quick` and get a minimal repro for
// anything it broke.
package check

import (
	"fmt"
	"os"
	"path/filepath"
	"time"

	"hetsort"
	"hetsort/internal/progress"
	"hetsort/internal/record"
)

// Case is one harness execution: a seeded input plus a configuration.
// The same Case always produces the same runs — all randomness is
// derived from Seed.
type Case struct {
	// Name identifies the case in summaries ("seed42/uniform/n=1000").
	Name string
	// Seed is the generation seed the case was derived from (echoed in
	// repros; 0 for hand-built cases).
	Seed int64
	// Keys is the input.
	Keys []hetsort.Key
	// Config is the base configuration.  Pipeline, Overlap, Checkpoint
	// and Topology are equivalence axes: the runner executes the base
	// run plus variants toggling them, and the equivalence invariant
	// demands identical output from all of them.
	Config hetsort.Config
}

// Run is one execution of a Case under one point of the equivalence
// axes.
type Run struct {
	// Label names the axis point ("base", "pipeline", "overlap",
	// "pipeline+overlap", "tree/r2", "grid", "checkpoint",
	// "crash@3+resume").
	Label string
	// Config is the exact configuration the run used.
	Config hetsort.Config
	// Output is the sorted result.
	Output []hetsort.Key
	// Report is the run's report (nil if the run errored).
	Report *hetsort.Report
	// Resumed marks outputs produced by a crash-interrupted run
	// completed with Resume (step-wise budgets do not apply: recovery
	// legitimately redoes work).
	Resumed bool
	// Progress holds the live snapshots a host-time sampler collected
	// while the run executed, in sample order; the last element is
	// FinalProgress.  The progress invariant checks their monotonicity.
	Progress []*progress.Snapshot
	// FinalProgress is the post-run snapshot (taken after Sort/Resume
	// returned), reconciled byte-exactly against Report.NodeIO.
	FinalProgress *progress.Snapshot
	// Err is the run error, if any.
	Err error
}

// Outcome is everything the invariants inspect: the case and all of its
// runs.  Runs[0] is always the base run.
type Outcome struct {
	Case *Case
	Runs []Run
}

// RunOptions controls how a case is executed.
type RunOptions struct {
	// Scratch, when non-empty, is a directory the runner may use for
	// durable node disks; it enables the crash/resume equivalence
	// variant.  Empty skips that variant.
	Scratch string
	// NoVariants executes only the base run (used while shrinking,
	// where only the failing invariant needs to be reproduced, and by
	// callers that filtered equivalence out).
	NoVariants bool
	// QuickTopology trims the topology equivalence variants to the
	// cheap pair (tree radix 2 and grid) for PR-gate sweeps.
	QuickTopology bool
	// CrashPhase pins the injected crash phase for the resume variant
	// (1..5); 0 derives one from the case seed.
	CrashPhase int
}

// Execute runs the case: the base configuration first, then — unless
// NoVariants — the equivalence variants along the Pipeline, Overlap and
// checkpoint/crash-resume axes.  Run errors are recorded, not returned:
// an error is itself an invariant violation ("error").
func Execute(c *Case, opts RunOptions) *Outcome {
	o := &Outcome{Case: c}
	base := c.Config
	o.Runs = append(o.Runs, execute("base", c.Keys, base))
	if opts.NoVariants {
		return o
	}
	psrs := base.Algorithm == "" || base.Algorithm == hetsort.AlgorithmExternalPSRS
	if psrs {
		for _, v := range []struct {
			label             string
			pipeline, overlap bool
		}{
			{"pipeline", !base.Pipeline, base.Overlap},
			{"overlap", base.Pipeline, !base.Overlap},
			{"pipeline+overlap", !base.Pipeline, !base.Overlap},
		} {
			cfg := base
			cfg.Pipeline, cfg.Overlap = v.pipeline, v.overlap
			o.Runs = append(o.Runs, execute(v.label, c.Keys, cfg))
		}
		// Topology is an equivalence axis too: hierarchical pivot
		// aggregation and multi-round redistribution must reproduce the
		// flat output byte for byte.  A flat base fans out across the
		// tree radixes and the grid; a hierarchical base gets the flat
		// reference run instead.
		if flatTopology(base) {
			topos := []struct {
				label, topo string
				radix       int
			}{
				{"tree/r2", hetsort.TopologyTree, 2},
				{"grid", hetsort.TopologyGrid, 0},
				{"tree/r4", hetsort.TopologyTree, 4},
				{"tree/r16", hetsort.TopologyTree, 16},
			}
			if opts.QuickTopology {
				topos = topos[:2]
			}
			for _, tv := range topos {
				cfg := base
				cfg.Topology, cfg.Radix = tv.topo, tv.radix
				o.Runs = append(o.Runs, execute(tv.label, c.Keys, cfg))
			}
		} else {
			cfg := base
			cfg.Topology, cfg.Radix = hetsort.TopologyFlat, 0
			o.Runs = append(o.Runs, execute("flat", c.Keys, cfg))
		}
		// Disks is an equivalence axis too: the PDM D parameter is
		// timing-only, so a multi-disk node must reproduce the
		// single-disk output (and I/O counts — the disk invariant
		// checks those) byte for byte.  A single-disk base gets a
		// striped D=4 variant; a multi-disk base gets the single-disk
		// reference run.
		if base.Disks <= 1 {
			cfg := base
			cfg.Disks = 4
			o.Runs = append(o.Runs, execute("disks/d4", c.Keys, cfg))
		} else {
			cfg := base
			cfg.Disks, cfg.DiskAccess = 0, ""
			o.Runs = append(o.Runs, execute("disks/d1", c.Keys, cfg))
		}
		if !base.Checkpoint.Enabled {
			cfg := base
			cfg.Checkpoint = hetsort.CheckpointConfig{Enabled: true}
			o.Runs = append(o.Runs, execute("checkpoint", c.Keys, cfg))
		}
		if opts.Scratch != "" {
			o.Runs = append(o.Runs, executeCrashResume(c, opts))
		}
	}
	return o
}

// execute performs one in-memory sort run with a live progress sampler
// attached, so every harness run also exercises the introspection path.
func execute(label string, keys []hetsort.Key, cfg hetsort.Config) Run {
	tr := hetsort.NewProgressTracker()
	cfg.Progress = tr
	smp := startSampler(tr)
	out, rep, err := hetsort.Sort(keys, cfg)
	run := Run{Label: label, Config: cfg, Output: out, Report: rep, Err: err}
	run.Progress, run.FinalProgress = smp.finish()
	return run
}

// progressSampler polls a tracker on a host-time cadence from a
// separate goroutine — the same shape as hetsortd's SSE loop — so the
// snapshots genuinely race the run they observe.
type progressSampler struct {
	tr    *progress.Tracker
	stop  chan struct{}
	done  chan struct{}
	snaps []*progress.Snapshot
}

func startSampler(tr *progress.Tracker) *progressSampler {
	s := &progressSampler{tr: tr, stop: make(chan struct{}), done: make(chan struct{})}
	go s.loop()
	return s
}

func (s *progressSampler) loop() {
	defer close(s.done)
	tick := time.NewTicker(500 * time.Microsecond)
	defer tick.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-tick.C:
			if snap := s.tr.Snapshot(); snap != nil {
				s.snaps = append(s.snaps, snap)
			}
		}
	}
}

// finish stops the sampler and returns the collected snapshots plus a
// final post-run snapshot (appended, so it is also the last element).
func (s *progressSampler) finish() ([]*progress.Snapshot, *progress.Snapshot) {
	close(s.stop)
	<-s.done
	final := s.tr.Snapshot()
	if final != nil {
		s.snaps = append(s.snaps, final)
	}
	return s.snaps, final
}

// executeCrashResume runs the case with durable checkpoints, kills one
// node at one phase boundary, resumes the run from the manifests, and
// returns the resumed output.  The phase and victim are derived from
// the case seed so every sweep exercises a different boundary.
func executeCrashResume(c *Case, opts RunOptions) Run {
	cfg := c.Config
	p := nodes(cfg)
	phase := opts.CrashPhase
	if phase < 1 || phase > 5 {
		phase = int(mix(c.Seed)%5) + 1
	}
	victim := int(mix(c.Seed>>3) % uint64(p))
	label := fmt.Sprintf("crash@%d+resume", phase)

	dir, err := os.MkdirTemp(opts.Scratch, "case")
	if err != nil {
		return Run{Label: label, Config: cfg, Err: err}
	}
	defer os.RemoveAll(dir)
	cfg.WorkDir = filepath.Join(dir, "disks")
	cfg.Checkpoint = hetsort.CheckpointConfig{Enabled: true, CrashPhase: phase, CrashNode: victim}

	// One tracker spans the crashed attempt AND the resume: Seq must
	// stay monotonic across the boundary while the Run generation bumps
	// (the progress invariant checks both).
	tr := hetsort.NewProgressTracker()
	cfg.Progress = tr
	smp := startSampler(tr)
	run := func() Run {
		_, _, err := hetsort.Sort(c.Keys, cfg)
		if err == nil {
			return Run{Label: label, Config: cfg,
				Err: fmt.Errorf("injected crash at phase %d on node %d did not fire", phase, victim)}
		}
		if !hetsort.IsCrash(err) {
			return Run{Label: label, Config: cfg, Err: fmt.Errorf("expected an injected crash, got: %w", err)}
		}

		resumeCfg := cfg
		resumeCfg.Checkpoint = hetsort.CheckpointConfig{Enabled: true}
		outPath := filepath.Join(dir, "resumed.u32")
		rep, err := hetsort.Resume(outPath, resumeCfg)
		if err != nil {
			return Run{Label: label, Config: resumeCfg, Err: fmt.Errorf("resume after crash@%d: %w", phase, err), Resumed: true}
		}
		raw, err := os.ReadFile(outPath)
		if err != nil {
			return Run{Label: label, Config: resumeCfg, Err: err, Resumed: true}
		}
		if len(raw)%record.KeySize != 0 {
			return Run{Label: label, Config: resumeCfg, Resumed: true,
				Err: fmt.Errorf("resumed output is %d bytes, not a multiple of %d", len(raw), record.KeySize)}
		}
		out := record.DecodeKeys(make([]hetsort.Key, 0, len(raw)/record.KeySize), raw)
		return Run{Label: label, Config: resumeCfg, Output: out, Report: rep, Resumed: true}
	}()
	run.Progress, run.FinalProgress = smp.finish()
	return run
}

// Failure is one invariant violation on one case.
type Failure struct {
	Case      *Case
	Invariant string
	Err       error
	// Repro is a ready-to-paste Go test reproducing the failure,
	// filled in by Shrink.
	Repro string
}

func (f Failure) String() string {
	return fmt.Sprintf("%s: invariant %q violated: %v", f.Case.Name, f.Invariant, f.Err)
}

// Check executes a case and evaluates the selected invariants (all of
// them for an empty filter).  Scratch enables the crash/resume variant.
func Check(c *Case, opts RunOptions, filter string) []Failure {
	invs := Select(filter)
	if len(invs) == 0 {
		return nil
	}
	if !selected(invs, "equivalence") && !selected(invs, "error") && !selected(invs, "disk") {
		// Variants exist to be compared (equivalence, the cross-D half
		// of disk) and to surface run errors; with all three filtered
		// out the base run suffices.
		opts.NoVariants = true
	}
	o := Execute(c, opts)
	var fails []Failure
	for _, inv := range invs {
		if inv.Applies != nil && !inv.Applies(c) {
			continue
		}
		if err := inv.Check(o); err != nil {
			fails = append(fails, Failure{Case: c, Invariant: inv.Name, Err: err})
		}
	}
	return fails
}

// Recheck is the entry point repro snippets call: it rebuilds a case
// from bare keys and config, runs it with all equivalence variants that
// need no scratch directory, and evaluates the named invariants
// (comma-separated; empty = all).
func Recheck(keys []hetsort.Key, cfg hetsort.Config, invariants string) []Failure {
	c := &Case{Name: "recheck", Keys: keys, Config: cfg}
	return Check(c, RunOptions{}, invariants)
}

func selected(invs []Invariant, name string) bool {
	for _, inv := range invs {
		if inv.Name == name {
			return true
		}
	}
	return false
}

// flatTopology reports whether a config runs the flat single-round
// redistribution (the default).
func flatTopology(cfg hetsort.Config) bool {
	return cfg.Topology == "" || cfg.Topology == hetsort.TopologyFlat
}

// nodes returns the cluster size a config resolves to.
func nodes(cfg hetsort.Config) int {
	if len(cfg.Perf) > 0 {
		return len(cfg.Perf)
	}
	if cfg.Nodes > 0 {
		return cfg.Nodes
	}
	return 4
}

// mix is a splitmix64 step: cheap, deterministic derivation of
// per-purpose values from a case seed.
func mix(seed int64) uint64 {
	z := uint64(seed) + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// equalKeys reports whether two outputs are identical key for key.
func equalKeys(a, b []hetsort.Key) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// firstDiff locates the first differing index of two equal-length
// outputs (-1 if only the lengths differ).
func firstDiff(a, b []hetsort.Key) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return i
		}
	}
	return -1
}

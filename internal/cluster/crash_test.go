package cluster

import (
	"errors"
	"strings"
	"testing"

	"hetsort/internal/record"
)

func TestScheduledCrashAtClock(t *testing.T) {
	c := mustNew(t, 1, 1)
	if err := c.ScheduleCrash(0, 5, ""); err != nil {
		t.Fatal(err)
	}
	err := c.Run(func(n *Node) error {
		if n.ID() == 0 {
			for i := 0; i < 100; i++ {
				n.AdvanceClock(1)
			}
			t.Error("node 0 survived past its scheduled crash")
		}
		return nil
	})
	if !IsCrash(err) {
		t.Fatalf("want crash error, got %v", err)
	}
	var ce *CrashError
	if !errors.As(err, &ce) {
		t.Fatal("CrashError not extractable")
	}
	if ce.Node != 0 || ce.Clock < 5 {
		t.Fatalf("crash at node %d clock %v", ce.Node, ce.Clock)
	}
}

func TestScheduledCrashAtPoint(t *testing.T) {
	c := mustNew(t, 1, 1)
	if err := c.ScheduleCrash(1, -1, "phase-3"); err != nil {
		t.Fatal(err)
	}
	err := c.Run(func(n *Node) error {
		n.CrashPoint("phase-2") // wrong point: must not fire
		n.CrashPoint("phase-3")
		return nil
	})
	var ce *CrashError
	if !errors.As(err, &ce) {
		t.Fatalf("want crash error, got %v", err)
	}
	if ce.Node != 1 || ce.Point != "phase-3" {
		t.Fatalf("crash = %+v", ce)
	}
}

func TestCrashScheduleIsOneShot(t *testing.T) {
	c := mustNew(t, 1)
	if err := c.ScheduleCrash(0, -1, "p"); err != nil {
		t.Fatal(err)
	}
	if err := c.Run(func(n *Node) error { n.CrashPoint("p"); return nil }); !IsCrash(err) {
		t.Fatalf("first run should crash, got %v", err)
	}
	// The schedule cleared when it fired: the same point is now safe.
	if err := c.Run(func(n *Node) error { n.CrashPoint("p"); return nil }); err != nil {
		t.Fatalf("second run should survive, got %v", err)
	}
}

func TestClearCrashes(t *testing.T) {
	c := mustNew(t, 1)
	if err := c.ScheduleCrash(0, 0, "p"); err != nil {
		t.Fatal(err)
	}
	c.ClearCrashes()
	err := c.Run(func(n *Node) error {
		n.AdvanceClock(1)
		n.CrashPoint("p")
		return nil
	})
	if err != nil {
		t.Fatalf("cleared crash still fired: %v", err)
	}
}

func TestScheduleCrashInvalidRank(t *testing.T) {
	c := mustNew(t, 1, 1)
	if err := c.ScheduleCrash(2, 1, ""); err == nil {
		t.Fatal("rank 2 on a 2-node cluster must be rejected")
	}
	if err := c.ScheduleCrash(-1, 1, ""); err == nil {
		t.Fatal("rank -1 must be rejected")
	}
}

// TestCrashAbortsBlockedPeer checks that an injected crash behaves like
// any node failure: peers blocked on the dead node abort instead of
// hanging, and the joined error still identifies the crash.
func TestCrashAbortsBlockedPeer(t *testing.T) {
	c := mustNew(t, 1, 1)
	if err := c.ScheduleCrash(0, -1, "die"); err != nil {
		t.Fatal(err)
	}
	err := c.Run(func(n *Node) error {
		if n.ID() == 0 {
			n.CrashPoint("die") // never sends
			return nil
		}
		_, rerr := n.Recv(0, 1)
		return rerr
	})
	if !IsCrash(err) {
		t.Fatalf("crash not surfaced: %v", err)
	}
	if !strings.Contains(err.Error(), "aborted") {
		t.Fatalf("peer abort not surfaced: %v", err)
	}
}

// TestClusterReusableAfterCrash is the recovery-coordinator contract:
// after a run dies from an injected crash with messages still in
// flight, the same Cluster must run again correctly (links drained,
// abort machinery re-armed) — and must be able to crash again, proving
// the abort reset is per-run, not once per cluster.
func TestClusterReusableAfterCrash(t *testing.T) {
	c := mustNew(t, 1, 1)
	if err := c.ScheduleCrash(0, -1, "die"); err != nil {
		t.Fatal(err)
	}
	err := c.Run(func(n *Node) error {
		if n.ID() == 0 {
			// Leave a stale message in flight, then die.
			if err := n.Send(1, 5, []record.Key{7}); err != nil {
				return err
			}
			n.CrashPoint("die")
		}
		return nil // node 1 returns without receiving
	})
	if !IsCrash(err) {
		t.Fatalf("first run: want crash, got %v", err)
	}

	c.ResetClocks()
	err = c.Run(func(n *Node) error {
		if n.ID() == 0 {
			return n.Send(1, 9, []record.Key{42})
		}
		got, rerr := n.Recv(0, 9)
		if rerr != nil {
			return rerr
		}
		if len(got) != 1 || got[0] != 42 {
			t.Errorf("stale message leaked into recovery run: %v", got)
		}
		return nil
	})
	if err != nil {
		t.Fatalf("recovery run: %v", err)
	}

	// A third run can abort again: the abort channel and once are fresh.
	if err := c.ScheduleCrash(1, -1, "die-again"); err != nil {
		t.Fatal(err)
	}
	err = c.Run(func(n *Node) error {
		if n.ID() == 1 {
			n.CrashPoint("die-again")
			return nil
		}
		_, rerr := n.Recv(1, 3)
		return rerr
	})
	if !IsCrash(err) || !strings.Contains(err.Error(), "aborted") {
		t.Fatalf("third run: want crash + abort, got %v", err)
	}
}

package extsort

import (
	"testing"

	"hetsort/internal/perf"
	"hetsort/internal/record"
)

func TestStrategyStrings(t *testing.T) {
	if RegularSampling.String() != "regular-sampling" ||
		Overpartitioning.String() != "overpartitioning" ||
		RandomPivots.String() != "random-pivots" {
		t.Fatal("strategy strings")
	}
	if Strategy(42).String() == "" {
		t.Fatal("unknown strategy string")
	}
}

func TestAllStrategiesSortCorrectly(t *testing.T) {
	for _, strat := range []Strategy{RegularSampling, Overpartitioning, RandomPivots} {
		for _, v := range []perf.Vector{perf.Homogeneous(4), {1, 1, 4, 4}} {
			t.Run(strat.String()+"/"+v.String(), func(t *testing.T) {
				c := newCluster(t, v)
				cfg := testConfig(v)
				cfg.Strategy = strat
				cfg.Seed = 7
				runSort(t, c, v, cfg, record.Uniform, v.NearestValidSize(20000), 3)
			})
		}
	}
}

func TestUnknownStrategyRejected(t *testing.T) {
	v := perf.Homogeneous(2)
	c := newCluster(t, v)
	cfg := testConfig(v)
	cfg.Strategy = Strategy(42)
	if _, err := DistributeInput(c, v, record.Uniform, 4096, 1, cfg.BlockKeys, "input"); err != nil {
		t.Fatal(err)
	}
	if _, err := Sort(c, cfg, "input", "output"); err == nil {
		t.Fatal("unknown strategy accepted")
	}
}

func TestRegularBeatsRandomPivotsOnBalance(t *testing.T) {
	// The point of sampling "in a regular way": random pivots give
	// visibly worse sublist expansion on the same input.
	v := perf.Homogeneous(4)
	n := int64(40000)
	run := func(s Strategy) float64 {
		c := newCluster(t, v)
		cfg := testConfig(v)
		cfg.Strategy = s
		cfg.Seed = 99
		res := runSort(t, c, v, cfg, record.Uniform, n, 13)
		return res.SublistExpansion(v)
	}
	reg := run(RegularSampling)
	rnd := run(RandomPivots)
	if reg > 1.15 {
		t.Fatalf("regular sampling expansion %v should be near 1", reg)
	}
	if rnd <= reg {
		t.Logf("note: random pivots happened to balance well this seed (%v vs %v)", rnd, reg)
	}
}

func TestOverpartitioningBalancesHeterogeneous(t *testing.T) {
	v := perf.Vector{1, 1, 4, 4}
	c := newCluster(t, v)
	cfg := testConfig(v)
	cfg.Strategy = Overpartitioning
	cfg.OverFactor = 8
	cfg.Seed = 3
	res := runSort(t, c, v, cfg, record.Uniform, v.NearestValidSize(40000), 5)
	// Overpartitioning with a large k should keep the weighted
	// expansion within the Li-Sevcik ~1.3 band.
	if exp := res.SublistExpansion(v); exp > 1.6 {
		t.Fatalf("overpartitioning expansion %v too high", exp)
	}
}

func TestOverpartitioningStepTimesStillAccounted(t *testing.T) {
	v := perf.Homogeneous(2)
	c := newCluster(t, v)
	cfg := testConfig(v)
	cfg.Strategy = Overpartitioning
	res := runSort(t, c, v, cfg, record.Uniform, 16000, 11)
	// The extra sampling seeks and counting scan make step 2 pricier
	// than under regular sampling (at tiny test sizes the seek costs
	// even rival the sort), but it must not dominate the run.
	if res.StepTimes[1] <= 0 {
		t.Fatal("step 2 time missing")
	}
	if res.StepTimes[1] > res.Time/2 {
		t.Fatalf("pivot selection (%v) dominates the whole run (%v)",
			res.StepTimes[1], res.Time)
	}
}

func TestQuantileSketchStrategy(t *testing.T) {
	for _, v := range []perf.Vector{perf.Homogeneous(4), {1, 1, 4, 4}} {
		t.Run(v.String(), func(t *testing.T) {
			c := newCluster(t, v)
			cfg := testConfig(v)
			cfg.Strategy = QuantileSketch
			cfg.QuantileEps = 0.005
			res := runSort(t, c, v, cfg, record.Uniform, v.NearestValidSize(40000), 17)
			// Sketch pivots are not grid-limited: heterogeneous balance
			// should beat the regular-sampling quantization band.
			if exp := res.SublistExpansion(v); exp > 1.12 {
				t.Fatalf("quantile-sketch expansion %v too high", exp)
			}
		})
	}
}

func TestQuantileSketchExtraPassAccounted(t *testing.T) {
	// The sketch pass reads the sorted file once more: step 2 reads
	// ~l/B blocks instead of a handful of sampled keys.
	v := perf.Homogeneous(2)
	c := newCluster(t, v)
	cfg := testConfig(v)
	cfg.Strategy = QuantileSketch
	const n = 32768
	res := runSort(t, c, v, cfg, record.Uniform, n, 19)
	blocks := int64(n/2) / int64(cfg.BlockKeys)
	for i := 0; i < 2; i++ {
		got := res.StepIO[1][i].Reads
		if got < blocks || got > blocks+4 {
			t.Fatalf("node %d step-2 reads %d want ~%d (full sketch pass)", i, got, blocks)
		}
	}
}

func TestQuantileSketchAllDistributions(t *testing.T) {
	v := perf.Vector{1, 2}
	for _, d := range record.Distributions() {
		t.Run(d.String(), func(t *testing.T) {
			c := newCluster(t, v)
			cfg := testConfig(v)
			cfg.Strategy = QuantileSketch
			runSort(t, c, v, cfg, d, v.NearestValidSize(12000), 23)
		})
	}
}

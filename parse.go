package hetsort

import (
	"fmt"
	"strconv"
	"strings"

	"hetsort/internal/perf"
)

// ParsePerf parses a comma-separated perf vector such as "1,1,4,4".
// Entries must be positive integers.
func ParsePerf(s string) ([]int, error) {
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, fmt.Errorf("hetsort: bad perf entry %q: %w", p, err)
		}
		if v <= 0 {
			return nil, fmt.Errorf("hetsort: perf entry %d must be positive", v)
		}
		out = append(out, v)
	}
	return out, nil
}

// ParseLoads parses a comma-separated load vector such as "4,4,1,1".
// Entries must be finite and >= 1 — NaN and ±Inf are rejected (a `v < 1`
// test alone would let NaN through, since every NaN comparison is
// false, and a non-finite load poisons every virtual clock downstream).
func ParseLoads(s string) ([]float64, error) {
	parts := strings.Split(s, ",")
	out := make([]float64, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return nil, fmt.Errorf("hetsort: bad load %q: %w", p, err)
		}
		out = append(out, v)
	}
	if err := perf.ValidateLoads(out); err != nil {
		return nil, fmt.Errorf("hetsort: %w", err)
	}
	return out, nil
}

package cluster

import (
	"io"

	"hetsort/internal/record"
)

// Stream presents the sequence of same-tagged messages from one peer as
// an incrementally consumable sorted key stream: Buffered, Discard and
// Fill mirror polyphase.MergeSource, so a receiving node can merge
// redistribution traffic straight off the wire without first spooling
// it to disk (the fused steps 4+5 of Algorithm 1).  A zero-length
// message is the end-of-stream sentinel, exactly as in the barrier
// exchange.
//
// The Stream owns each message payload while it is buffered and returns
// it to the cluster's pool when the next Fill replaces it; callers must
// Close the stream to release the final buffer.
type Stream struct {
	n        *Node
	from     int
	tag      int
	buf      []record.Key
	pos      int
	done     bool
	received int64

	// Tee, when non-nil, observes every message payload on arrival,
	// before any of it is consumed.  The extsort checkpoint fallback
	// uses it to spill the stream to a durable receive file while the
	// in-memory merge proceeds.
	Tee func([]record.Key) error
}

// OpenStream starts consuming messages with the given tag from peer
// `from` on this node.
func (n *Node) OpenStream(from, tag int) *Stream {
	return &Stream{n: n, from: from, tag: tag}
}

// Buffered returns the unconsumed keys of the current message.
func (s *Stream) Buffered() []record.Key { return s.buf[s.pos:] }

// Discard consumes the first n buffered keys.
func (s *Stream) Discard(n int) { s.pos += n }

// Fill blocks for the next message once the buffer is empty.  It
// returns io.EOF after the sender's zero-length sentinel.
func (s *Stream) Fill() error {
	if s.pos < len(s.buf) {
		return nil
	}
	if s.done {
		return io.EOF
	}
	s.release()
	keys, err := s.n.Recv(s.from, s.tag)
	if err != nil {
		return err
	}
	if s.Tee != nil && len(keys) > 0 {
		if err := s.Tee(keys); err != nil {
			s.n.ReleaseBuf(keys)
			return err
		}
	}
	if len(keys) == 0 {
		s.done = true
		return io.EOF
	}
	s.buf, s.pos = keys, 0
	s.received += int64(len(keys))
	return nil
}

// Received returns the number of keys delivered so far (sentinel
// excluded).
func (s *Stream) Received() int64 { return s.received }

// Close releases the stream's current buffer back to the pool.
func (s *Stream) Close() {
	s.release()
	s.pos = 0
}

func (s *Stream) release() {
	if s.buf != nil {
		s.n.ReleaseBuf(s.buf)
		s.buf = nil
	}
}

package psrs

import (
	"testing"
	"testing/quick"

	"hetsort/internal/cluster"
	"hetsort/internal/perf"
	"hetsort/internal/record"
	"hetsort/internal/sampling"
)

func newCluster(t *testing.T, v perf.Vector) *cluster.Cluster {
	t.Helper()
	c, err := cluster.New(cluster.Config{Slowdowns: v.Slowdowns()})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// splitPortions deals keys into per-node portions following the perf
// vector's shares.
func splitPortions(keys []record.Key, v perf.Vector) [][]record.Key {
	shares := v.Shares(int64(len(keys)))
	out := make([][]record.Key, len(v))
	off := int64(0)
	for i, s := range shares {
		out[i] = keys[off : off+s]
		off += s
	}
	return out
}

func verifyGlobalSort(t *testing.T, res *Result, input []record.Key) {
	t.Helper()
	var flat []record.Key
	for _, part := range res.Sorted {
		if !record.IsSorted(part) {
			t.Fatal("a node's partition is not locally sorted")
		}
		flat = append(flat, part...)
	}
	if !record.IsSorted(flat) {
		t.Fatal("concatenation across ranks is not globally sorted")
	}
	if !record.ChecksumOf(flat).Equal(record.ChecksumOf(input)) {
		t.Fatal("output is not a permutation of the input")
	}
}

func TestHomogeneousRegularSort(t *testing.T) {
	v := perf.Homogeneous(4)
	c := newCluster(t, v)
	keys := record.Uniform.Generate(4096, 1, 4)
	res, err := Sort(c, Config{Perf: v}, splitPortions(keys, v))
	if err != nil {
		t.Fatal(err)
	}
	verifyGlobalSort(t, res, keys)
	if res.Time <= 0 {
		t.Fatal("virtual time did not advance")
	}
}

func TestHeterogeneousRegularSort(t *testing.T) {
	v := perf.Vector{1, 1, 4, 4}
	c := newCluster(t, v)
	n := v.NearestValidSize(20000)
	keys := record.Uniform.Generate(int(n), 2, 4)
	res, err := Sort(c, Config{Perf: v}, splitPortions(keys, v))
	if err != nil {
		t.Fatal(err)
	}
	verifyGlobalSort(t, res, keys)
	exp, err := sampling.WeightedExpansion(res.PartitionSizes, v)
	if err != nil {
		t.Fatal(err)
	}
	// PSRS guarantees 2x; in practice a few percent (paper: ~1.09).
	if exp > 1.5 {
		t.Fatalf("weighted expansion %v too high", exp)
	}
}

func TestPSRSTwoTimesBound(t *testing.T) {
	// The PSRS theorem: no node ends with more than twice its optimal
	// share (plus duplicates).  Check across distributions.
	v := perf.Vector{1, 2}
	c := newCluster(t, v)
	for _, d := range record.Distributions() {
		if d == record.Zipf {
			continue // duplicate-dominated; covered separately with the U+d bound
		}
		n := v.NearestValidSize(6000)
		keys := d.Generate(int(n), 5, 2)
		c.ResetClocks()
		res, err := Sort(c, Config{Perf: v}, splitPortions(keys, v))
		if err != nil {
			t.Fatalf("%v: %v", d, err)
		}
		verifyGlobalSort(t, res, keys)
		total := int64(len(keys))
		for i, sz := range res.PartitionSizes {
			bound := sampling.TheoreticalBound(total, v, i, 0)
			if float64(sz) > bound+1 {
				t.Fatalf("%v: node %d has %d keys, bound %v", d, i, sz, bound)
			}
		}
	}
}

func TestDuplicateHeavyRespectsUPlusDBound(t *testing.T) {
	v := perf.Homogeneous(4)
	c := newCluster(t, v)
	keys := record.Zipf.Generate(8000, 3, 4)
	res, err := Sort(c, Config{Perf: v}, splitPortions(keys, v))
	if err != nil {
		t.Fatal(err)
	}
	verifyGlobalSort(t, res, keys)
	// d = multiplicity of the most frequent key.
	freq := map[record.Key]int64{}
	var d int64
	for _, k := range keys {
		freq[k]++
		if freq[k] > d {
			d = freq[k]
		}
	}
	total := int64(len(keys))
	for i, sz := range res.PartitionSizes {
		bound := sampling.TheoreticalBound(total, v, i, d)
		if float64(sz) > bound+1 {
			t.Fatalf("node %d has %d keys, U+d bound %v (d=%d)", i, sz, bound, d)
		}
	}
}

func TestOverpartitioningSort(t *testing.T) {
	for _, v := range []perf.Vector{perf.Homogeneous(4), {1, 1, 4, 4}} {
		c := newCluster(t, v)
		n := v.NearestValidSize(16000)
		keys := record.Uniform.Generate(int(n), 7, 4)
		res, err := Sort(c, Config{Perf: v, Strategy: Overpartitioning, Seed: 11},
			splitPortions(keys, v))
		if err != nil {
			t.Fatalf("%v: %v", v, err)
		}
		verifyGlobalSort(t, res, keys)
	}
}

func TestRegularBeatsOverpartitioningOnBalance(t *testing.T) {
	// The paper's section 3.3 argument: Li & Sevcik's sublist
	// expansion (~1.3) is much worse than PSRS (~few percent).
	v := perf.Homogeneous(8)
	keys := record.Uniform.Generate(64000, 13, 8)
	run := func(s Strategy) float64 {
		c := newCluster(t, v)
		res, err := Sort(c, Config{Perf: v, Strategy: s, Seed: 3, OverFactor: 2},
			splitPortions(keys, v))
		if err != nil {
			t.Fatal(err)
		}
		verifyGlobalSort(t, res, keys)
		return sampling.SublistExpansion(res.PartitionSizes)
	}
	reg := run(RegularSampling)
	over := run(Overpartitioning)
	if reg > 1.1 {
		t.Fatalf("regular sampling expansion %v should be near 1", reg)
	}
	if over < reg {
		t.Logf("note: overpartitioning beat regular sampling this seed (%v < %v)", over, reg)
	}
}

func TestHeterogeneityShortensMakespan(t *testing.T) {
	// On a loaded cluster ({1,1,4,4} speeds), distributing data by the
	// perf vector must beat equal distribution.
	keys := record.Uniform.Generate(40960, 17, 4)
	hetero := perf.Vector{1, 1, 4, 4}
	slow := hetero.Slowdowns() // {4,4,1,1}

	cHomo, err := cluster.New(cluster.Config{Slowdowns: slow})
	if err != nil {
		t.Fatal(err)
	}
	homoPerf := perf.Homogeneous(4)
	resHomo, err := Sort(cHomo, Config{Perf: homoPerf}, splitPortions(keys, homoPerf))
	if err != nil {
		t.Fatal(err)
	}
	verifyGlobalSort(t, resHomo, keys)

	cHet, err := cluster.New(cluster.Config{Slowdowns: slow})
	if err != nil {
		t.Fatal(err)
	}
	resHet, err := Sort(cHet, Config{Perf: hetero}, splitPortions(keys, hetero))
	if err != nil {
		t.Fatal(err)
	}
	verifyGlobalSort(t, resHet, keys)

	if resHet.Time >= resHomo.Time {
		t.Fatalf("heterogeneous distribution (%.3fs) should beat homogeneous (%.3fs) on a loaded cluster",
			resHet.Time, resHomo.Time)
	}
}

func TestSingleNode(t *testing.T) {
	v := perf.Homogeneous(1)
	c := newCluster(t, v)
	keys := record.Uniform.Generate(1000, 3, 1)
	res, err := Sort(c, Config{Perf: v}, [][]record.Key{keys})
	if err != nil {
		t.Fatal(err)
	}
	verifyGlobalSort(t, res, keys)
}

func TestConfigErrors(t *testing.T) {
	v := perf.Homogeneous(2)
	c := newCluster(t, v)
	if _, err := Sort(c, Config{Perf: perf.Vector{1}}, make([][]record.Key, 2)); err == nil {
		t.Fatal("perf length mismatch accepted")
	}
	if _, err := Sort(c, Config{Perf: perf.Vector{1, 0}}, make([][]record.Key, 2)); err == nil {
		t.Fatal("invalid perf accepted")
	}
	if _, err := Sort(c, Config{Perf: v, Strategy: Strategy(99)}, make([][]record.Key, 2)); err == nil {
		t.Fatal("unknown strategy accepted")
	}
}

func TestDefaultPerfIsHomogeneous(t *testing.T) {
	v := perf.Homogeneous(2)
	c := newCluster(t, v)
	keys := record.Uniform.Generate(2048, 9, 2)
	res, err := Sort(c, Config{}, splitPortions(keys, v))
	if err != nil {
		t.Fatal(err)
	}
	verifyGlobalSort(t, res, keys)
}

func TestSortPropertyRandomInputs(t *testing.T) {
	v := perf.Vector{1, 2, 3}
	f := func(seed int64, sizeRaw uint16) bool {
		n := v.NearestValidSize(int64(sizeRaw%5000) + int64(v.PracticalQuantum()))
		keys := record.Uniform.Generate(int(n), seed, 3)
		c, err := cluster.New(cluster.Config{Slowdowns: v.Slowdowns()})
		if err != nil {
			return false
		}
		res, err := Sort(c, Config{Perf: v}, splitPortions(keys, v))
		if err != nil {
			return false
		}
		var flat []record.Key
		for _, part := range res.Sorted {
			flat = append(flat, part...)
		}
		return record.IsSorted(flat) &&
			record.ChecksumOf(flat).Equal(record.ChecksumOf(keys))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestStrategyStrings(t *testing.T) {
	if RegularSampling.String() != "regular-sampling" || Overpartitioning.String() != "overpartitioning" {
		t.Fatal("strategy strings")
	}
}

package experiments

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"

	"hetsort/internal/cluster"
	"hetsort/internal/diskio"
	"hetsort/internal/extsort"
	"hetsort/internal/perf"
	"hetsort/internal/record"
	"hetsort/internal/stats"
)

// ScalingPoints is the cluster-size grid of the topology scaling
// experiment.  Each point repeats the paper's loaded vector {1,1,4,4},
// so the heterogeneity the pivot aggregation must handle grows with p.
var ScalingPoints = []int{4, 16, 64, 256, 1024}

// ScalingRow is one (p, topology) measurement.
type ScalingRow struct {
	P        int    `json:"p"`
	Topology string `json:"topology"`
	Radix    int    `json:"radix,omitempty"`
	N        int64  `json:"n"`
	// VSec is the sort's virtual completion time.
	VSec float64 `json:"vsec"`
	// PeakOpenStreams is the worst per-node redistribution fan-in (the
	// deterministic protocol gauge: merge inputs held open at once).
	// Flat is p; the tree stays O(r·log_r p).
	PeakOpenStreams int `json:"peak_open_streams"`
	// MaxLinkQueueHWM is the worst per-link incoming queue high-water
	// mark over all nodes and links.
	MaxLinkQueueHWM int64 `json:"max_link_queue_hwm"`
	// Rounds is the number of redistribution rounds (1 for flat,
	// ceil(log_r p) for the tree, 2 for the grid).
	Rounds int `json:"rounds"`
	// LinksCreated is how many of the p² possible links materialized.
	LinksCreated int `json:"links_created"`
	// OutputSHA is the SHA-256 of the concatenated per-node output
	// bytes; rows of the same p must agree across topologies.
	OutputSHA string `json:"output_sha256"`
}

// scalingVariants is the topology set every point runs: the flat
// baseline plus the radix-4 tree and the 2-round grid.
var scalingVariants = []struct {
	name  string
	topo  extsort.Topology
	radix int
}{
	{"flat", extsort.TopologyFlat, 0},
	{"tree", extsort.TopologyTree, 4},
	{"grid", extsort.TopologyGrid, 0},
}

// ScalingSweep measures redistribution scaling from p=4 up to maxP
// (capped at 1024): virtual time, peak open streams and per-link queue
// high-water marks for the flat, tree and grid topologies, with ~512
// keys per node.  Byte-equality of the outputs across topologies is
// asserted in-experiment at every p; a mismatch is an error, not a row.
func ScalingSweep(o Options, maxP int) ([]ScalingRow, error) {
	o = o.withDefaults()
	if maxP <= 0 {
		maxP = ScalingPoints[len(ScalingPoints)-1]
	}
	// A fixed small machine: the experiment scales p, not the per-node
	// load, so every point keeps roughly 512 keys per node.
	block, mem, tapes, msg := 64, 4096, 4, 1024
	var rows []ScalingRow
	for _, p := range ScalingPoints {
		if p > maxP {
			break
		}
		v := make(perf.Vector, 0, p)
		for len(v) < p {
			v = append(v, PaperVector...)
		}
		n := v.NearestValidSize(int64(512 * p))
		flatSHA := ""
		for _, vr := range scalingVariants {
			disks, err := o.disks()
			if err != nil {
				return nil, err
			}
			c, err := cluster.New(cluster.Config{
				Slowdowns: v.Slowdowns(),
				Net:       cluster.FastEthernet(),
				BlockKeys: block,
				Disks:     disks,
			})
			if err != nil {
				return nil, err
			}
			cfg := extsort.Config{
				Perf: v, BlockKeys: block, MemoryKeys: mem, Tapes: tapes,
				MessageKeys: msg, Topology: vr.topo, Radix: vr.radix,
			}
			sum, err := extsort.DistributeInput(c, v, record.Uniform, n, o.Seed, block, "input")
			if err != nil {
				return nil, fmt.Errorf("experiments: scaling p=%d %s: %w", p, vr.name, err)
			}
			res, err := extsort.Sort(c, cfg, "input", "output")
			if err != nil {
				return nil, fmt.Errorf("experiments: scaling p=%d %s: %w", p, vr.name, err)
			}
			if err := extsort.VerifyOutput(c, "output", block, sum); err != nil {
				return nil, fmt.Errorf("experiments: scaling p=%d %s: %w", p, vr.name, err)
			}
			row := ScalingRow{P: p, Topology: vr.name, Radix: vr.radix, N: n, VSec: res.Time}
			var hwm int64
			fan, rounds := 0.0, 1.0
			for i := 0; i < p; i++ {
				if g := c.Node(i).Metrics().Gauge("redist.fanin.streams").Value(); g > fan {
					fan = g
				}
				if g := c.Node(i).Metrics().Gauge("redist.rounds").Value(); g > rounds {
					rounds = g
				}
				if h := c.LinkQueueHWM(i); h > hwm {
					hwm = h
				}
			}
			row.PeakOpenStreams = int(fan)
			row.Rounds = int(rounds)
			row.MaxLinkQueueHWM = hwm
			row.LinksCreated = c.LinksCreated()
			sha, err := outputSHA(c, block)
			if err != nil {
				return nil, err
			}
			row.OutputSHA = sha
			if vr.name == "flat" {
				flatSHA = sha
			} else if sha != flatSHA {
				return nil, fmt.Errorf("experiments: scaling p=%d: %s output %s differs from flat %s",
					p, vr.name, sha[:12], flatSHA[:12])
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// outputSHA hashes the concatenated per-node sorted outputs.
func outputSHA(c *cluster.Cluster, block int) (string, error) {
	h := sha256.New()
	var buf [4]byte
	for i := 0; i < c.P(); i++ {
		keys, err := diskio.ReadFileAll(c.Node(i).FS(), "output", block, diskio.Accounting{})
		if err != nil {
			return "", fmt.Errorf("experiments: hashing node %d output: %w", i, err)
		}
		for _, k := range keys {
			binary.LittleEndian.PutUint32(buf[:], uint32(k))
			h.Write(buf[:])
		}
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}

// ScalingString renders the sweep.
func ScalingString(rows []ScalingRow) string {
	t := &stats.Table{
		Title:   "Topology scaling sweep, {1,1,4,4} repeated, ~512 keys/node",
		Headers: []string{"P", "Topology", "VSec", "PeakStreams", "LinkQueueHWM", "Rounds", "Links", "SHA"},
	}
	for _, r := range rows {
		name := r.Topology
		if r.Radix > 0 {
			name = fmt.Sprintf("%s/r%d", r.Topology, r.Radix)
		}
		t.AddRow(r.P, name, fmt.Sprintf("%.3f", r.VSec), r.PeakOpenStreams,
			r.MaxLinkQueueHWM, r.Rounds, r.LinksCreated, r.OutputSHA[:12])
	}
	return t.String()
}

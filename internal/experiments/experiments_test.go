package experiments

import (
	"strings"
	"testing"
)

// fastOptions shrinks everything so the whole suite runs in seconds.
func fastOptions() Options {
	return Options{SizeShift: 9, Trials: 2, Tapes: 6}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.Trials != 5 || o.Tapes != 15 || o.BlockKeys != 2048 || o.MessageKeys != 8192 {
		t.Fatalf("full-scale defaults wrong: %+v", o)
	}
	s := Options{SizeShift: 6}.withDefaults()
	if s.BlockKeys <= 0 || s.MemoryKeys < s.Tapes*s.BlockKeys {
		t.Fatalf("scaled defaults inconsistent: %+v", s)
	}
}

func TestScale(t *testing.T) {
	o := Options{SizeShift: 4}
	if o.scale(1<<21) != 1<<17 {
		t.Fatal("scale shift")
	}
	if o.scale(1) != 1 {
		t.Fatal("scale floor")
	}
}

func TestTable1(t *testing.T) {
	rows := Table1(fastOptions())
	if len(rows) != 4 {
		t.Fatalf("rows=%d", len(rows))
	}
	if rows[0].Slowdown != 4 || rows[2].Slowdown != 1 {
		t.Fatalf("load factors wrong: %+v", rows)
	}
	out := Table1String(rows)
	for _, frag := range []string{"helmvige", "rossweisse", "fast-ethernet", "myrinet"} {
		if !strings.Contains(out, frag) {
			t.Errorf("Table1String missing %q", frag)
		}
	}
}

func TestTable2ShapeAndRatios(t *testing.T) {
	o := fastOptions()
	rows, err := Table2(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4*len(Table2PaperSizes) {
		t.Fatalf("rows=%d", len(rows))
	}
	byNode := map[string][]Table2Row{}
	for _, r := range rows {
		byNode[r.Node] = append(byNode[r.Node], r)
		if r.Time.Mean <= 0 {
			t.Fatalf("non-positive time: %+v", r)
		}
	}
	// Loaded nodes ~4x slower at every size.
	for i := range Table2PaperSizes {
		fast := byNode["helmvige"][i].Time.Mean
		slow := byNode["rossweisse"][i].Time.Mean
		if ratio := slow / fast; ratio < 3.5 || ratio > 4.5 {
			t.Fatalf("size %d: slow/fast ratio %v not ~4", i, ratio)
		}
	}
	// Times grow superlinearly-ish with size.
	h := byNode["helmvige"]
	for i := 1; i < len(h); i++ {
		if h[i].Time.Mean <= h[i-1].Time.Mean {
			t.Fatalf("times not increasing with size: %v then %v", h[i-1].Time.Mean, h[i].Time.Mean)
		}
	}
	out := Table2String(rows)
	if !strings.Contains(out, "helmvige") || !strings.Contains(out, "Paper") {
		t.Fatalf("render:\n%s", out)
	}
}

func TestCalibrationRecoversPaperVector(t *testing.T) {
	cal, err := Calibrate(fastOptions())
	if err != nil {
		t.Fatal(err)
	}
	want := PaperVector
	if len(cal.Vector) != len(want) {
		t.Fatalf("vector %v", cal.Vector)
	}
	for i := range want {
		if cal.Vector[i] != want[i] {
			t.Fatalf("calibrated %v want %v (times %v)", cal.Vector, want, cal.Times)
		}
	}
}

func TestTable3Shape(t *testing.T) {
	rows, err := Table3(fastOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows=%d", len(rows))
	}
	homo, hetFE, hetMy := rows[0], rows[1], rows[2]
	// Heterogeneous distribution must clearly beat homogeneous on the
	// loaded cluster (paper: 303.94 -> 155.41, factor ~2).
	if ratio := homo.Time.Mean / hetFE.Time.Mean; ratio < 1.4 {
		t.Fatalf("hetero improvement %v below paper shape (~2x)", ratio)
	}
	// Myrinet changes little (paper: 155.41 vs 155.43).
	if diff := (hetFE.Time.Mean - hetMy.Time.Mean) / hetFE.Time.Mean; diff < -0.05 || diff > 0.25 {
		t.Fatalf("Myrinet effect %v%% out of shape", 100*diff)
	}
	// Load balance near optimal.
	for _, r := range rows {
		if r.SMax > 1.35 || r.SMax < 0.99 {
			t.Fatalf("%s: S(max)=%v out of range", r.Label, r.SMax)
		}
	}
	out := Table3String(rows)
	if !strings.Contains(out, "Myrinet") {
		t.Fatalf("render:\n%s", out)
	}
}

func TestPacketSweepShape(t *testing.T) {
	o := fastOptions()
	rows, err := RunPacketSweep(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(PacketSizes) {
		t.Fatalf("rows=%d", len(rows))
	}
	// Tiny packets must be clearly slower than the 8K best (paper:
	// 133.61 vs 32.6, factor ~4 at full scale; scaled runs compress
	// the gap but the ordering must hold).
	small := rows[0].Time.Mean
	var best float64
	for _, r := range rows {
		if best == 0 || r.Time.Mean < best {
			best = r.Time.Mean
		}
	}
	if small <= best {
		t.Fatalf("8-int packets (%v) should be slower than best (%v)", small, best)
	}
	if ratio := small / best; ratio < 1.5 {
		t.Fatalf("packet-size effect ratio %v too weak", ratio)
	}
	out := PacketSweepString(rows)
	if !strings.Contains(out, "MsgKeys") {
		t.Fatalf("render:\n%s", out)
	}
}

func TestSpeedupsShape(t *testing.T) {
	s, err := ComputeSpeedups(fastOptions())
	if err != nil {
		t.Fatal(err)
	}
	// Qualitative shape of section 5: hetero beats homo; gains vs the
	// slow sequential exceed gains vs the fast sequential; parallel
	// homogeneous gains ~3 against the slow sequential.
	if s.HeteroVsHomo < 1.3 {
		t.Fatalf("HeteroVsHomo=%v", s.HeteroVsHomo)
	}
	if s.HeteroVsSlowSeq <= s.HeteroVsFastSeq {
		t.Fatalf("slow-seq gain %v should exceed fast-seq gain %v",
			s.HeteroVsSlowSeq, s.HeteroVsFastSeq)
	}
	if s.HomogeneousGain < 1.5 {
		t.Fatalf("HomogeneousGain=%v", s.HomogeneousGain)
	}
	if !strings.Contains(s.String(), "Paper") {
		t.Fatal("render")
	}
}

func TestFigure1PDM(t *testing.T) {
	rows, err := Figure1PDM(fastOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) < 2 {
		t.Fatalf("rows=%d", len(rows))
	}
	for _, r := range rows {
		if r.Penalty < 1 {
			t.Fatalf("D=%d penalty %v < 1", r.D, r.Penalty)
		}
		if r.StripedIOs < r.IndependentIOs {
			t.Fatalf("D=%d striped %d < independent %d", r.D, r.StripedIOs, r.IndependentIOs)
		}
	}
	if !strings.Contains(Figure1String(rows), "Striped") {
		t.Fatal("render")
	}
}

func TestOnDiskMode(t *testing.T) {
	o := fastOptions()
	o.OnDisk = true
	o.TempDir = t.TempDir()
	rows, err := Table3(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows=%d", len(rows))
	}
}

func TestPacketSweepRatioMatchesPaperShape(t *testing.T) {
	// The paper's 133.61/32.6 = 4.1x ratio between 8-int and 8K-int
	// messages.  At reduced scale the per-message overhead shrinks
	// with the message count, so accept a broad band around it.
	o := fastOptions()
	o.SizeShift = 5
	o.Trials = 1
	rows, err := RunPacketSweep(o)
	if err != nil {
		t.Fatal(err)
	}
	var t8, t8k float64
	for _, r := range rows {
		switch r.MessageKeys {
		case 8:
			t8 = r.Time.Mean
		case 8192:
			t8k = r.Time.Mean
		}
	}
	if ratio := t8 / t8k; ratio < 2.5 || ratio > 7 {
		t.Fatalf("8-int vs 8K-int ratio %v out of the paper's shape (~4.1)", ratio)
	}
}

func TestAblations(t *testing.T) {
	rows, err := Ablations(fastOptions())
	if err != nil {
		t.Fatal(err)
	}
	byID := map[string][]AblationRow{}
	for _, r := range rows {
		byID[r.ID] = append(byID[r.ID], r)
		if r.Value < 0 {
			t.Fatalf("negative metric: %+v", r)
		}
	}
	for _, id := range []string{"A1", "A2", "A3", "A4", "A5", "A6"} {
		if len(byID[id]) == 0 {
			t.Fatalf("ablation %s missing", id)
		}
	}
	// A5: virtual time must strictly decrease with more disks.
	var a5 []float64
	for _, r := range byID["A5"] {
		a5 = append(a5, r.Value)
	}
	for i := 1; i < len(a5); i++ {
		if a5[i] >= a5[i-1] {
			t.Fatalf("A5 times not decreasing with disks: %v", a5)
		}
	}
	// A6: the baseline must do fewer block I/Os than Algorithm 1.
	var a1IO, dwIO float64
	for _, r := range byID["A6"] {
		if r.Metric == "blockIOs" {
			if r.Variant == "algorithm1" {
				a1IO = r.Value
			} else {
				dwIO = r.Value
			}
		}
	}
	if dwIO >= a1IO {
		t.Fatalf("A6: dewitt I/O %v >= algorithm1 %v", dwIO, a1IO)
	}
	if !strings.Contains(AblationsString(rows), "A4") {
		t.Fatal("render")
	}
}

func TestDistributionSweep(t *testing.T) {
	rows, err := DistributionSweep(fastOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 8 {
		t.Fatalf("rows=%d", len(rows))
	}
	// The paper's invariance claim: non-degenerate inputs should take
	// broadly similar time (within 2x of each other).
	var min, max float64
	for _, r := range rows {
		if r.Time.Mean <= 0 {
			t.Fatalf("%v: no time", r.Distribution)
		}
		if min == 0 || r.Time.Mean < min {
			min = r.Time.Mean
		}
		if r.Time.Mean > max {
			max = r.Time.Mean
		}
	}
	if max/min > 2.5 {
		t.Fatalf("time spread %vx across distributions — invariance claim broken", max/min)
	}
	if !strings.Contains(DistributionSweepString(rows), "zipf") {
		t.Fatal("render")
	}
}

func TestPipelineAblation(t *testing.T) {
	o := fastOptions()
	o.Trials = 1
	rows, err := PipelineAblation(o)
	if err != nil {
		t.Fatal(err)
	}
	// Three variants x three metrics.  Byte-identity and the strict I/O
	// reduction are asserted inside PipelineAblation itself; here we
	// check the rendered shape.
	if len(rows) != 9 {
		t.Fatalf("rows=%d", len(rows))
	}
	variants := map[string]bool{}
	for _, r := range rows {
		if r.ID != "A8" {
			t.Fatalf("unexpected ID %q", r.ID)
		}
		variants[r.Variant] = true
	}
	for _, v := range []string{"barrier", "pipelined", "pipelined+ckpt"} {
		if !variants[v] {
			t.Fatalf("variant %s missing", v)
		}
	}
	if !strings.Contains(AblationsString(rows), "A8") {
		t.Fatal("render")
	}
}

func TestOverlapAblation(t *testing.T) {
	o := fastOptions()
	o.Trials = 1
	rows, err := OverlapAblation(o)
	if err != nil {
		t.Fatal(err)
	}
	// Two variants x four metrics.  Byte-identity, the exact I/O-count
	// match and the strict virtual-time win are asserted inside
	// OverlapAblation itself; here we check the rendered shape.
	if len(rows) != 8 {
		t.Fatalf("rows=%d", len(rows))
	}
	byMetric := map[string]map[string]float64{}
	for _, r := range rows {
		if byMetric[r.Metric] == nil {
			byMetric[r.Metric] = map[string]float64{}
		}
		byMetric[r.Metric][r.Variant] = r.Value
	}
	if byMetric["hiddenDiskSec"]["synchronous"] != 0 {
		t.Fatalf("synchronous run hid %v disk seconds", byMetric["hiddenDiskSec"]["synchronous"])
	}
	if byMetric["hiddenDiskSec"]["overlapped"] <= 0 {
		t.Fatal("overlapped run hid no disk time")
	}
	if !strings.Contains(AblationsString(rows), "A9") {
		t.Fatal("render")
	}
}

func TestRunAttribution(t *testing.T) {
	rep, err := RunAttribution(fastOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Nodes) != len(PaperVector) {
		t.Fatalf("%d nodes in report", len(rep.Nodes))
	}
	for _, n := range rep.Nodes {
		if n.Clock <= 0 || n.Breakdown.Total() <= 0 {
			t.Fatalf("empty attribution for node %d: %+v", n.Node, n)
		}
		for s, skew := range n.StepSkew {
			if skew < 0 || skew > 10 {
				t.Fatalf("node %d step %d skew %v out of range", n.Node, s, skew)
			}
		}
	}
	out := AttributionString(rep)
	for _, frag := range []string{"Compute", "Disk", "Network", "Idle", "skew", "1:sequential-sort"} {
		if !strings.Contains(out, frag) {
			t.Fatalf("report missing %q:\n%s", frag, out)
		}
	}
}

package progress

import (
	"fmt"
	"sort"
	"strings"

	"hetsort/internal/pdm"
)

// Classification thresholds.  A node whose declared-to-observed
// relative-speed ratio reaches SlowNodeRatio is flagged slow (the perf
// vector over-promised it, or a co-tenant is contending for its
// machine); a node whose final partition exceeds OverloadExpansion
// times its perf share is flagged overloaded (Theorem 1 bounds the
// expansion at 2·share plus duplicate multiplicity, so values past 1.5
// already mean the pivots did a poor job for this node).
const (
	SlowNodeRatio     = 1.25
	OverloadExpansion = 1.5
)

// Kind classifies a node's divergence from the perf model.
type Kind string

const (
	KindOK                  Kind = "ok"
	KindSlowNode            Kind = "slow-node"
	KindOverloadedPartition Kind = "overloaded-partition"
)

// RunStats is the post-run evidence the straggler analyzer consumes —
// all of it already present on a hetsort Report.
type RunStats struct {
	// Perf is the declared perf vector the decomposition trusted.
	Perf []int
	// Busy is each node's non-idle virtual seconds (clock minus
	// idle-wait): the denominator for observed throughput, so barrier
	// waits caused by *other* nodes don't dilute a node's own speed.
	Busy []float64
	// IO is each node's total PDM block transfers — the work proxy.
	IO []pdm.IOStats
	// PartitionSizes is the final per-node key count (Theorem-1 data);
	// optional, enables the overloaded-partition classification.
	PartitionSizes []int64
}

// Divergence is one node's scorecard.
type Divergence struct {
	Node int `json:"node"`
	// DeclaredSpeed and ObservedSpeed are relative speeds normalized so
	// the fastest node is 1.0: declared from the perf vector, observed
	// from block transfers per busy virtual second.
	DeclaredSpeed float64 `json:"declared_speed"`
	ObservedSpeed float64 `json:"observed_speed"`
	// Ratio is declared/observed: 1.0 means the node ran exactly as
	// fast, relative to its peers, as the perf vector promised; 3.0
	// means it delivered a third of its declared relative speed.
	Ratio float64 `json:"ratio"`
	// Expansion is the node's final partition over its perf share
	// (the paper's per-node S metric; 0 when partition data is absent).
	Expansion float64 `json:"expansion"`
	Kind      Kind    `json:"kind"`
	Severity  float64 `json:"severity"`
	Detail    string  `json:"detail"`
}

// StragglerReport ranks every node by how badly it diverges from the
// declared perf model, worst first.
type StragglerReport struct {
	Ranked  []Divergence `json:"ranked"`
	Flagged int          `json:"flagged"` // nodes with Kind != ok
}

// Analyze compares observed per-node throughput against the declared
// perf vector and classifies each node's divergence, distinguishing a
// machine that is slower than declared (mis-calibration, contention)
// from one that was handed too large a partition (skew): an overloaded
// node does proportionally more work in proportionally more busy time,
// so its throughput ratio stays near 1 while its expansion grows.
func Analyze(st RunStats) (*StragglerReport, error) {
	p := len(st.Perf)
	if p == 0 {
		return nil, fmt.Errorf("progress: empty perf vector")
	}
	if len(st.Busy) != p || len(st.IO) != p {
		return nil, fmt.Errorf("progress: inconsistent run stats: perf %d entries, busy %d, io %d",
			p, len(st.Busy), len(st.IO))
	}

	maxPerf := 0
	var perfSum int64
	for _, f := range st.Perf {
		if f <= 0 {
			return nil, fmt.Errorf("progress: non-positive perf entry %d", f)
		}
		if f > maxPerf {
			maxPerf = f
		}
		perfSum += int64(f)
	}

	thr := make([]float64, p)
	var maxThr float64
	for i := range thr {
		if st.Busy[i] > 0 {
			thr[i] = float64(st.IO[i].Total()) / st.Busy[i]
		}
		if thr[i] > maxThr {
			maxThr = thr[i]
		}
	}

	var totalPart int64
	for _, q := range st.PartitionSizes {
		totalPart += q
	}

	rep := &StragglerReport{Ranked: make([]Divergence, p)}
	for i := 0; i < p; i++ {
		d := &rep.Ranked[i]
		d.Node = i
		d.DeclaredSpeed = float64(st.Perf[i]) / float64(maxPerf)
		if maxThr > 0 {
			d.ObservedSpeed = thr[i] / maxThr
		}
		if d.ObservedSpeed > 0 {
			d.Ratio = d.DeclaredSpeed / d.ObservedSpeed
		} else {
			// A node that moved no blocks (degenerate share) has
			// nothing to compare; treat it as on-model.
			d.Ratio = 1
		}
		if len(st.PartitionSizes) == p && totalPart > 0 {
			share := float64(st.Perf[i]) / float64(perfSum) * float64(totalPart)
			if share > 0 {
				d.Expansion = float64(st.PartitionSizes[i]) / share
			}
		}
		switch {
		case d.Ratio >= SlowNodeRatio && d.Ratio >= d.Expansion:
			d.Kind = KindSlowNode
			d.Severity = d.Ratio
			d.Detail = fmt.Sprintf(
				"ran at %.0f%% of its declared relative speed (declared %.2f, observed %.2f): mis-calibrated perf entry or a contended tenant",
				100/d.Ratio, d.DeclaredSpeed, d.ObservedSpeed)
		case d.Expansion >= OverloadExpansion:
			d.Kind = KindOverloadedPartition
			d.Severity = d.Expansion
			d.Detail = fmt.Sprintf(
				"final partition is %.2fx its perf share (Theorem 1 allows up to 2x plus duplicates): skewed pivots or duplicate-heavy keys",
				d.Expansion)
		default:
			d.Kind = KindOK
			d.Severity = d.Ratio
			if d.Expansion > d.Severity {
				d.Severity = d.Expansion
			}
		}
	}
	sort.SliceStable(rep.Ranked, func(a, b int) bool {
		return rep.Ranked[a].Severity > rep.Ranked[b].Severity
	})
	for _, d := range rep.Ranked {
		if d.Kind != KindOK {
			rep.Flagged++
		}
	}
	return rep, nil
}

// String renders the ranked divergence table, worst node first.
func (r *StragglerReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "straggler analysis: %d of %d nodes diverge from the perf model\n",
		r.Flagged, len(r.Ranked))
	fmt.Fprintf(&b, "%-5s %-22s %9s %9s %7s %7s  %s\n",
		"node", "kind", "declared", "observed", "ratio", "S(i)", "detail")
	for i := range r.Ranked {
		d := &r.Ranked[i]
		fmt.Fprintf(&b, "%-5d %-22s %9.2f %9.2f %7.2f %7.2f  %s\n",
			d.Node, string(d.Kind), d.DeclaredSpeed, d.ObservedSpeed,
			d.Ratio, d.Expansion, d.Detail)
	}
	return b.String()
}

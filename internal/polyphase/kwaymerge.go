package polyphase

import (
	"fmt"
	"io"

	"hetsort/internal/diskio"
)

// MergeFiles merges the pre-sorted key files named by inputs into
// outputName using balanced (Tapes-1)-way merging, possibly in several
// passes.  This is the "external merge algorithm for mono-processor
// system" the paper re-uses for step 5 of Algorithm 1 (each node merges
// the p partition files it received).  Inputs are left untouched;
// intermediate files are created under cfg.TempPrefix and removed.
func MergeFiles(cfg Config, inputs []string, outputName string) error {
	if err := cfg.Validate(); err != nil {
		return err
	}
	switch len(inputs) {
	case 0:
		f, err := cfg.FS.Create(outputName)
		if err != nil {
			return err
		}
		return f.Close()
	case 1:
		// Single input: one counted copy pass (the file may be needed
		// again by the caller, so do not rename it away).
		return copyFile(cfg, inputs[0], outputName)
	}
	fan := cfg.Tapes - 1
	level := 0
	current := append([]string(nil), inputs...)
	var scratch []string
	defer func() {
		for _, name := range scratch {
			cfg.FS.Remove(name)
		}
	}()
	for len(current) > fan {
		var next []string
		for i := 0; i < len(current); i += fan {
			end := i + fan
			if end > len(current) {
				end = len(current)
			}
			name := fmt.Sprintf("%smerge%d_%d", cfg.TempPrefix, level, i/fan)
			if err := mergeGroup(cfg, current[i:end], name); err != nil {
				return err
			}
			scratch = append(scratch, name)
			next = append(next, name)
		}
		current = next
		level++
	}
	return mergeGroup(cfg, current, outputName)
}

// mergeGroup streams a single k-way merge of the sorted inputs into out
// through the loser-tree kernel.
func mergeGroup(cfg Config, inputs []string, out string) error {
	files := make([]diskio.File, len(inputs))
	srcs := make([]MergeSource, len(inputs))
	readers := make([]diskio.BlockReader, len(inputs))
	defer func() {
		// Release before Close: a prefetching reader's goroutine must
		// be joined before its file handle goes away.
		for _, r := range readers {
			if r != nil {
				r.Release()
			}
		}
		for _, f := range files {
			if f != nil {
				f.Close()
			}
		}
	}()
	for i, name := range inputs {
		f, err := cfg.FS.Open(name)
		if err != nil {
			return fmt.Errorf("polyphase: merge open %s: %w", name, err)
		}
		files[i] = f
		readers[i] = diskio.NewBlockReader(f, cfg.BlockKeys, cfg.Acct, cfg.Overlap)
		srcs[i] = readers[i]
	}
	of, err := cfg.FS.Create(out)
	if err != nil {
		return err
	}
	defer of.Close()
	w := diskio.NewBlockWriter(of, cfg.BlockKeys, cfg.Acct, cfg.Overlap)
	defer w.Close()

	if err := MergeOpt(srcs, cfg.Acct.Meter, w.WriteKeys, MergeOptions{NoGallop: cfg.NoGallop}); err != nil {
		return err
	}
	if err := w.Close(); err != nil {
		return err
	}
	return of.Close()
}

// copyFile copies src to dst through counted block I/O.
func copyFile(cfg Config, src, dst string) error {
	in, err := cfg.FS.Open(src)
	if err != nil {
		return err
	}
	defer in.Close()
	out, err := cfg.FS.Create(dst)
	if err != nil {
		return err
	}
	defer out.Close()
	r := diskio.NewBlockReader(in, cfg.BlockKeys, cfg.Acct, cfg.Overlap)
	defer r.Release()
	w := diskio.NewBlockWriter(out, cfg.BlockKeys, cfg.Acct, cfg.Overlap)
	defer w.Close()
	buf := make([]uint32, cfg.BlockKeys)
	for {
		n, err := r.ReadKeys(buf)
		if n > 0 {
			if werr := w.WriteKeys(buf[:n]); werr != nil {
				return werr
			}
		}
		if err == io.EOF || n == 0 {
			break
		}
		if err != nil {
			return err
		}
	}
	if err := w.Close(); err != nil {
		return err
	}
	return out.Close()
}

package experiments

import (
	"fmt"

	"hetsort/internal/cluster"
	"hetsort/internal/extsort"
	"hetsort/internal/record"
)

// CheckpointAblation runs A7: the cost of crash tolerance on the
// paper's loaded cluster.  Three variants of the same uniform sort on
// perf {1,1,4,4}: checkpointing off, checkpointing on (the pure
// overhead of the five durable manifest commits), and checkpointing on
// with a node killed during redistribution and the run finished by the
// recovery planner (overhead plus the redone work).  Block I/Os for the
// crashed variant sum the interrupted and resumed runs; its virtual
// time is the resumed run's, whose clocks replay from the manifests, so
// all three times are comparable end-to-end figures.
func CheckpointAblation(o Options) ([]AblationRow, error) {
	o = o.withDefaults()
	var rows []AblationRow
	add := func(variant, metric string, val float64) {
		rows = append(rows, AblationRow{ID: "A7", Variant: variant, Metric: metric, Value: val})
	}
	v := PaperVector
	n := v.NearestValidSize(o.scale(1 << 22))

	for _, ckpt := range []bool{false, true} {
		c, err := o.newCluster(cluster.FastEthernet())
		if err != nil {
			return nil, err
		}
		c.ResetClocks()
		sum, err := extsort.DistributeInput(c, v, record.Uniform, n, o.Seed, o.BlockKeys, "input")
		if err != nil {
			return nil, err
		}
		cfg := o.extsortConfig(v)
		cfg.Checkpoint = ckpt
		cfg.InputSum = sum
		res, err := extsort.Sort(c, cfg, "input", "output")
		if err != nil {
			return nil, fmt.Errorf("A7 checkpoint=%v: %w", ckpt, err)
		}
		if err := extsort.VerifyOutput(c, "output", o.BlockKeys, sum); err != nil {
			return nil, fmt.Errorf("A7 checkpoint=%v verify: %w", ckpt, err)
		}
		variant := "off"
		if ckpt {
			variant = "on"
		}
		var io int64
		for _, s := range res.NodeIO {
			io += s.Total()
		}
		add(variant, "vsec", res.Time)
		add(variant, "blockIOs", float64(io))
	}

	// Crash node 1 (one of the loaded nodes) mid-redistribution, then
	// recover from the manifests.
	{
		c, err := o.newCluster(cluster.FastEthernet())
		if err != nil {
			return nil, err
		}
		c.ResetClocks()
		sum, err := extsort.DistributeInput(c, v, record.Uniform, n, o.Seed, o.BlockKeys, "input")
		if err != nil {
			return nil, err
		}
		cfg := o.extsortConfig(v)
		cfg.Checkpoint = true
		cfg.InputSum = sum
		if err := c.ScheduleCrash(1, -1, extsort.StepNames[3]); err != nil {
			return nil, err
		}
		if _, err := extsort.Sort(c, cfg, "input", "output"); err == nil {
			return nil, fmt.Errorf("A7: injected crash did not interrupt the sort")
		} else if !cluster.IsCrash(err) {
			return nil, fmt.Errorf("A7: sort failed for a non-crash reason: %w", err)
		}
		var crashedIO int64
		for i := 0; i < c.P(); i++ {
			crashedIO += c.Node(i).IOStats().Total()
		}
		c.ClearCrashes()
		res, want, err := extsort.Resume(c, cfg, "input", "output")
		if err != nil {
			return nil, fmt.Errorf("A7 resume: %w", err)
		}
		if err := extsort.VerifyOutput(c, "output", o.BlockKeys, want); err != nil {
			return nil, fmt.Errorf("A7 resume verify: %w", err)
		}
		var resumedIO int64
		for _, s := range res.NodeIO {
			resumedIO += s.Total()
		}
		add("on+crash+resume", "vsec", res.Time)
		add("on+crash+resume", "blockIOs", float64(crashedIO+resumedIO))
	}
	return rows, nil
}

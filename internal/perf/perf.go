// Package perf implements the paper's model of heterogeneity: a vector
// of p positive integers giving the relative performance of each node
// ("one processor running 8 times faster than the slowest", etc.), the
// Equation-2 input sizing built on the least common multiple of those
// integers, the proportional data distribution, and the calibration
// protocol that fills the vector by timing the sequential external sort
// on each node.
package perf

import (
	"errors"
	"fmt"
	"math"
)

// Vector is the paper's perf array: perf[i] is the relative speed of
// node i (larger = faster), as a positive integer.  A vector of all ones
// is the homogeneous case.
type Vector []int

// Validate checks that the vector is non-empty with positive entries.
func (v Vector) Validate() error {
	if len(v) == 0 {
		return errors.New("perf: empty vector")
	}
	for i, s := range v {
		if s <= 0 {
			return fmt.Errorf("perf: perf[%d]=%d must be positive", i, s)
		}
	}
	return nil
}

// Homogeneous returns the all-ones vector of length p.
func Homogeneous(p int) Vector {
	v := make(Vector, p)
	for i := range v {
		v[i] = 1
	}
	return v
}

// IsHomogeneous reports whether all entries are equal.
func (v Vector) IsHomogeneous() bool {
	for _, s := range v[1:] {
		if s != v[0] {
			return false
		}
	}
	return true
}

// Sum returns the total of the entries.
func (v Vector) Sum() int64 {
	var s int64
	for _, e := range v {
		s += int64(e)
	}
	return s
}

// Max returns the largest entry.
func (v Vector) Max() int {
	m := v[0]
	for _, e := range v[1:] {
		if e > m {
			m = e
		}
	}
	return m
}

// GCD returns the greatest common divisor of a and b.
func GCD(a, b int64) int64 {
	for b != 0 {
		a, b = b, a%b
	}
	if a < 0 {
		return -a
	}
	return a
}

// LCM returns the least common multiple of a and b.
func LCM(a, b int64) int64 {
	if a == 0 || b == 0 {
		return 0
	}
	return a / GCD(a, b) * b
}

// LCM returns lcm(perf, p): the least common multiple of all entries
// (the paper's lcm(perf, p)).
func (v Vector) LCM() int64 {
	l := int64(1)
	for _, e := range v {
		l = LCM(l, int64(e))
	}
	return l
}

// Quantum returns Σ_i perf[i] * lcm(perf): the smallest valid input
// size (Equation 2 with k=1).  With perf={8,5,3,1} this is 2040, the
// paper's worked example.
func (v Vector) Quantum() int64 { return v.Sum() * v.LCM() }

// InputSize returns the Equation-2 input size for multiplier k:
// n = k * Σ_i perf[i] * lcm(perf, p).
func (v Vector) InputSize(k int64) int64 { return k * v.Quantum() }

// PracticalQuantum returns lcm(Σperf, lcm(perf)): the weakest size unit
// that keeps every node's share integral and lcm-divisible.  This is
// the condition the paper actually applies in its evaluation: Table 3
// uses N=16777220 for perf={1,1,4,4}, which is a multiple of 20 (this
// quantum) but not of 40 (the literal Equation-2 quantum).
func (v Vector) PracticalQuantum() int64 { return LCM(v.Sum(), v.LCM()) }

// ValidSize reports whether n is a positive multiple of the practical
// quantum, i.e. whether shares come out exactly proportional.
func (v Vector) ValidSize(n int64) bool {
	q := v.PracticalQuantum()
	return n > 0 && n%q == 0
}

// NearestValidSize returns the smallest valid size >= n (the way the
// paper turned 2^24 into 16777220 for perf={1,1,4,4}).
func (v Vector) NearestValidSize(n int64) int64 {
	q := v.PracticalQuantum()
	if n <= q {
		return q
	}
	k := (n + q - 1) / q
	return k * q
}

// Shares splits an Equation-2 input size n into per-node portions
// l_i = (n / Σperf) * perf[i], which are exact integers when n is valid.
// For sizes that do not satisfy Equation 2 it falls back to a
// largest-remainder apportionment that still sums to n (the paper points
// at load-balancing techniques "as in [32]" for this case).
func (v Vector) Shares(n int64) []int64 {
	sum := v.Sum()
	out := make([]int64, len(v))
	if n%sum == 0 {
		unit := n / sum
		for i, s := range v {
			out[i] = unit * int64(s)
		}
		return out
	}
	// Largest-remainder method.
	var assigned int64
	rems := make([]float64, len(v))
	for i, s := range v {
		exact := float64(n) * float64(s) / float64(sum)
		fl := math.Floor(exact)
		out[i] = int64(fl)
		rems[i] = exact - fl
		assigned += out[i]
	}
	for assigned < n {
		best := 0
		for i := 1; i < len(v); i++ {
			if rems[i] > rems[best] {
				best = i
			}
		}
		out[best]++
		rems[best] = -1
		assigned++
	}
	return out
}

// ValidateLoads checks a load (slowdown) vector: every entry must be a
// finite float >= 1.  The condition is written as !(l >= 1) rather than
// l < 1 so that NaN — for which every comparison is false — is rejected
// instead of slipping through and poisoning every derived virtual time.
func ValidateLoads(loads []float64) error {
	if len(loads) == 0 {
		return errors.New("perf: empty load vector")
	}
	for i, l := range loads {
		if !(l >= 1) || math.IsInf(l, 1) {
			return fmt.Errorf("perf: load[%d]=%v must be a finite value >= 1", i, l)
		}
	}
	return nil
}

// Slowdowns converts the vector to per-node cost multipliers for the
// simulator: the fastest class runs at factor 1, a node half as fast at
// factor 2, etc.
func (v Vector) Slowdowns() []float64 {
	m := float64(v.Max())
	out := make([]float64, len(v))
	for i, s := range v {
		out[i] = m / float64(s)
	}
	return out
}

// FromTimes builds a perf vector from per-node sequential sort times
// (the calibration protocol of paper section 5): each node's entry is
// the ratio of the slowest time to its own time, rounded to the nearest
// positive integer.  The slowest node gets 1.
func FromTimes(times []float64) (Vector, error) {
	if len(times) == 0 {
		return nil, errors.New("perf: no times")
	}
	slowest := times[0]
	for _, t := range times {
		if t <= 0 {
			return nil, fmt.Errorf("perf: non-positive time %v", t)
		}
		if t > slowest {
			slowest = t
		}
	}
	v := make(Vector, len(times))
	for i, t := range times {
		r := int(math.Round(slowest / t))
		if r < 1 {
			r = 1
		}
		v[i] = r
	}
	return v, nil
}

func (v Vector) String() string {
	return fmt.Sprintf("%v", []int(v))
}

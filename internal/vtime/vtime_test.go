package vtime

import "testing"

func TestNopImplementsMeter(t *testing.T) {
	var m Meter = Nop{}
	// Must be callable without effect or panic.
	m.ChargeCompute(1 << 40)
	m.ChargeIOBlocks(-5)
	m.ChargeSeek(0)
}

func TestDefaultCostModelCalibration(t *testing.T) {
	cm := DefaultCostModel()
	if cm.ComputeSec <= 0 || cm.IOBlockSecPerKey <= 0 || cm.SeekSec <= 0 {
		t.Fatalf("non-positive costs: %+v", cm)
	}
	// The calibration target: polyphase-sorting 2^21 keys costs about
	// 2^21*21 comparisons worth of compute plus ~3 read+write passes,
	// and must land in the paper's ~23 s ballpark.
	n := float64(1 << 21)
	est := n*21*cm.ComputeSec + 6*n*cm.IOBlockSecPerKey
	if est < 10 || est > 40 {
		t.Fatalf("calibration estimate %v s far from the paper's 22.92 s", est)
	}
	// A seek must cost orders of magnitude more than one key transfer
	// (the premise of out-of-core algorithm design).
	if cm.SeekSec < 100*cm.IOBlockSecPerKey {
		t.Fatal("seeks should dwarf streaming transfers")
	}
}

type capture struct {
	compute, blocks, seeks int64
}

func (c *capture) ChargeCompute(n int64)  { c.compute += n }
func (c *capture) ChargeIOBlocks(n int64) { c.blocks += n }
func (c *capture) ChargeSeek(n int64)     { c.seeks += n }

func TestMeterInterfaceContract(t *testing.T) {
	var m Meter = &capture{}
	m.ChargeCompute(3)
	m.ChargeIOBlocks(2)
	m.ChargeSeek(1)
	c := m.(*capture)
	if c.compute != 3 || c.blocks != 2 || c.seeks != 1 {
		t.Fatalf("capture %+v", c)
	}
}

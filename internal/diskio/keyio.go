package diskio

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"

	"hetsort/internal/pdm"
	"hetsort/internal/record"
	"hetsort/internal/vtime"
)

// Block buffers are recycled across Readers and Writers: a sort opens
// and closes thousands of short-lived block streams (one per run, per
// tape, per segment), and the per-stream block allocations dominated the
// allocation profile.  The pools hand back any buffer with enough
// capacity; block sizes within one run are uniform, so hit rates are
// high.
var (
	byteBufPool sync.Pool // []byte block buffers
	keyBufPool  sync.Pool // []record.Key decode buffers

	poolHits   atomic.Int64 // buffers served from a pool
	poolMisses atomic.Int64 // fresh allocations (empty pool or too small)
)

// PoolStats reports the process-wide block-buffer pool behaviour: hits
// (a pooled buffer with enough capacity was reused) and misses (a fresh
// buffer had to be allocated).  The pools are shared by every simulated
// node, so these are process-level observability numbers, not per-node
// virtual-time quantities.
func PoolStats() (hits, misses int64) {
	return poolHits.Load(), poolMisses.Load()
}

// ResetPoolStats zeroes the pool counters (between benchmark runs).
func ResetPoolStats() {
	poolHits.Store(0)
	poolMisses.Store(0)
}

func getByteBuf(n int) []byte {
	if v := byteBufPool.Get(); v != nil {
		if b := v.([]byte); cap(b) >= n {
			poolHits.Add(1)
			return b[:n]
		}
	}
	poolMisses.Add(1)
	return make([]byte, n)
}

func putByteBuf(b []byte) {
	if cap(b) > 0 {
		byteBufPool.Put(b[:0]) //nolint:staticcheck // slice header alloc is fine
	}
}

func getKeyBuf(n int) []record.Key {
	if v := keyBufPool.Get(); v != nil {
		if b := v.([]record.Key); cap(b) >= n {
			poolHits.Add(1)
			return b[:0]
		}
	}
	poolMisses.Add(1)
	return make([]record.Key, 0, n)
}

func putKeyBuf(b []record.Key) {
	if cap(b) > 0 {
		keyBufPool.Put(b[:0]) //nolint:staticcheck
	}
}

// Accounting bundles the sinks every block transfer reports to: the
// PDM I/O counter (complexity accounting), the virtual-time meter
// (simulated-clock accounting), and optionally one counter per member
// disk of a striped node.  Any field may be nil/empty.  Every transfer
// bumps both the node Counter and the serving disk's counter, so the
// per-disk counters always sum exactly to the node counter.
type Accounting struct {
	Counter *pdm.Counter
	Meter   vtime.Meter
	// Disks holds one counter per member disk; transfers on files that
	// implement Placed are attributed to the disk serving the block's
	// offset, everything else to disk 0.
	Disks []*pdm.Counter
}

// disk returns the per-disk counter for d, clamping unknown indices to
// disk 0 so plain files on a multi-disk node still account somewhere.
func (a Accounting) disk(d int) *pdm.Counter {
	if len(a.Disks) == 0 {
		return nil
	}
	if d < 0 || d >= len(a.Disks) {
		d = 0
	}
	return a.Disks[d]
}

func (a Accounting) read(d int, blocks int64) {
	if a.Counter != nil {
		a.Counter.AddRead(blocks)
	}
	if c := a.disk(d); c != nil {
		c.AddRead(blocks)
	}
	if dm, ok := a.Meter.(vtime.DiskMeter); ok {
		dm.ChargeDiskIOBlocks(d, blocks)
	} else if a.Meter != nil {
		a.Meter.ChargeIOBlocks(blocks)
	}
}

func (a Accounting) write(d int, blocks int64) {
	if a.Counter != nil {
		a.Counter.AddWrite(blocks)
	}
	if c := a.disk(d); c != nil {
		c.AddWrite(blocks)
	}
	if dm, ok := a.Meter.(vtime.DiskMeter); ok {
		dm.ChargeDiskIOBlocks(d, blocks)
	} else if a.Meter != nil {
		a.Meter.ChargeIOBlocks(blocks)
	}
}

func (a Accounting) seek(d int, n int64) {
	if a.Counter != nil {
		a.Counter.AddSeek(n)
	}
	if c := a.disk(d); c != nil {
		c.AddSeek(n)
	}
	if dm, ok := a.Meter.(vtime.DiskMeter); ok {
		dm.ChargeDiskSeek(d, n)
	} else if a.Meter != nil {
		a.Meter.ChargeSeek(n)
	}
}

// ChargeRead, ChargeWrite and ChargeSeek record block transfers and
// seeks performed outside the package's readers and writers (manifest
// saves, hashing passes), attributed to member disk d (use 0 when the
// placement is unknown).  They keep the node counter, the per-disk
// counters and the meter in lockstep, like every internal transfer.
func (a Accounting) ChargeRead(d int, blocks int64)  { a.read(d, blocks) }
func (a Accounting) ChargeWrite(d int, blocks int64) { a.write(d, blocks) }
func (a Accounting) ChargeSeek(d int, n int64)       { a.seek(d, n) }

// DiskAt reports which member disk serves the byte at off in f: files
// that implement Placed answer for themselves, everything else lives
// entirely on disk 0.
func DiskAt(f File, off int64) int {
	if p, ok := f.(Placed); ok {
		return p.DiskAt(off)
	}
	return 0
}

// Writer streams keys to a file in blocks of BlockSize keys, charging
// the accounting sinks one block write per block (a final partial block
// counts as one whole transfer, as in the PDM).
type Writer struct {
	f      File
	acct   Accounting
	placed Placed // non-nil when f knows its disk placement
	off    int64  // byte offset of the next block written
	block  int    // keys per block
	buf    []byte
	n      int   // keys buffered
	total  int64 // keys written overall
	closed bool
	err    error
}

var errWriterClosed = fmt.Errorf("diskio: write on closed Writer")

// NewWriter returns a Writer on f with the given block size in keys.
func NewWriter(f File, blockKeys int, acct Accounting) *Writer {
	if blockKeys <= 0 {
		panic("diskio: block size must be positive")
	}
	w := &Writer{
		f:     f,
		acct:  acct,
		block: blockKeys,
		buf:   getByteBuf(blockKeys * record.KeySize)[:0],
	}
	w.placed, w.off = placement(f)
	return w
}

// WriteKeys appends keys to the stream.
func (w *Writer) WriteKeys(keys []record.Key) error {
	if w.err != nil {
		return w.err
	}
	if w.closed {
		return errWriterClosed
	}
	for len(keys) > 0 {
		room := w.block - w.n
		take := len(keys)
		if take > room {
			take = room
		}
		w.buf = record.EncodeKeys(w.buf, keys[:take])
		w.n += take
		w.total += int64(take)
		keys = keys[take:]
		if w.n == w.block {
			if err := w.flushBlock(); err != nil {
				return err
			}
		}
	}
	return nil
}

// WriteKey appends a single key.
func (w *Writer) WriteKey(k record.Key) error {
	return w.WriteKeys([]record.Key{k})
}

func (w *Writer) flushBlock() error {
	if w.n == 0 {
		return nil
	}
	if _, err := w.f.Write(w.buf); err != nil {
		w.err = fmt.Errorf("diskio: writing block: %w", err)
		return w.err
	}
	d := 0
	if w.placed != nil {
		d = w.placed.DiskAt(w.off)
	}
	w.off += int64(len(w.buf))
	w.acct.write(d, 1)
	w.buf = w.buf[:0]
	w.n = 0
	return nil
}

// KeysWritten returns the number of keys accepted so far.
func (w *Writer) KeysWritten() int64 { return w.total }

// Close flushes the final partial block and returns the block buffer to
// the pool.  It does not close the underlying file handle; the caller
// owns it.  Close is idempotent.
func (w *Writer) Close() error {
	if w.closed {
		return w.err
	}
	err := w.err
	if err == nil {
		err = w.flushBlock()
	}
	w.closed = true
	putByteBuf(w.buf)
	w.buf = nil
	return err
}

// Reader streams keys from a file in blocks of BlockSize keys, charging
// one block read per block fetched.
type Reader struct {
	f      File
	acct   Accounting
	placed Placed // non-nil when f knows its disk placement
	off    int64  // byte offset of the next block read
	block  int
	buf    []byte
	keys   []record.Key
	pos    int
	err    error
}

// placement inspects f for striped disk placement: the Placed view and
// the handle's current byte position (so readers and writers opened
// mid-file attribute blocks to the right member disk).  Plain files get
// a nil Placed; their blocks all land on disk 0.
func placement(f File) (Placed, int64) {
	p, ok := f.(Placed)
	if !ok {
		return nil, 0
	}
	off, err := f.Seek(0, io.SeekCurrent)
	if err != nil {
		return nil, 0
	}
	return p, off
}

// NewReader returns a Reader on f with the given block size in keys.
func NewReader(f File, blockKeys int, acct Accounting) *Reader {
	if blockKeys <= 0 {
		panic("diskio: block size must be positive")
	}
	r := &Reader{
		f:     f,
		acct:  acct,
		block: blockKeys,
		buf:   getByteBuf(blockKeys * record.KeySize),
		keys:  getKeyBuf(blockKeys),
	}
	r.placed, r.off = placement(f)
	return r
}

func (r *Reader) fill() error {
	if r.err != nil {
		return r.err
	}
	n, err := io.ReadFull(r.f, r.buf)
	if n > 0 {
		if n%record.KeySize != 0 {
			r.err = fmt.Errorf("diskio: truncated key at end of %s", r.f.Name())
			return r.err
		}
		d := 0
		if r.placed != nil {
			d = r.placed.DiskAt(r.off)
		}
		r.off += int64(n)
		r.acct.read(d, 1)
		r.keys = record.DecodeKeys(r.keys[:0], r.buf[:n])
		r.pos = 0
		return nil
	}
	if err == io.ErrUnexpectedEOF {
		err = io.EOF
	}
	if err == nil {
		err = io.EOF
	}
	r.err = err
	return err
}

// Buffered returns the keys decoded but not yet consumed.  The slice is
// valid until the next Fill, ReadKey or ReadKeys call.
func (r *Reader) Buffered() []record.Key { return r.keys[r.pos:] }

// Discard consumes the first n buffered keys.
func (r *Reader) Discard(n int) { r.pos += n }

// Fill decodes the next block once the buffer is empty, charging one
// block read; io.EOF when the file is exhausted.  Together with
// Buffered and Discard this satisfies polyphase.MergeSource.
func (r *Reader) Fill() error {
	if r.pos < len(r.keys) {
		return nil
	}
	return r.fill()
}

// Release returns the Reader's block buffers to the pool.  The Reader
// must not be used afterwards; further reads fail cleanly.
func (r *Reader) Release() {
	putByteBuf(r.buf)
	putKeyBuf(r.keys)
	r.buf, r.keys, r.pos = nil, nil, 0
	if r.err == nil {
		r.err = fmt.Errorf("diskio: read on released Reader")
	}
}

// ReadKey returns the next key, or io.EOF when the stream is exhausted.
func (r *Reader) ReadKey() (record.Key, error) {
	if r.pos >= len(r.keys) {
		if err := r.fill(); err != nil {
			return 0, err
		}
	}
	k := r.keys[r.pos]
	r.pos++
	return k, nil
}

// ReadKeys fills dst with up to len(dst) keys and returns how many were
// read.  It returns io.EOF (with n possibly > 0 on a short final read
// being impossible: EOF is only returned with n==0 once exhausted).
func (r *Reader) ReadKeys(dst []record.Key) (int, error) {
	n := 0
	for n < len(dst) {
		if r.pos >= len(r.keys) {
			if err := r.fill(); err != nil {
				if n > 0 && err == io.EOF {
					return n, nil
				}
				return n, err
			}
		}
		c := copy(dst[n:], r.keys[r.pos:])
		r.pos += c
		n += c
	}
	return n, nil
}

// ReadKeyAt reads the key at index idx (in keys) from f, charging one
// seek and one block read.  The file position afterwards is undefined.
// This is the access pattern of the pivot-sampling step (paper step 2).
func ReadKeyAt(f File, idx int64, acct Accounting) (record.Key, error) {
	if _, err := f.Seek(idx*record.KeySize, io.SeekStart); err != nil {
		return 0, fmt.Errorf("diskio: seek to key %d: %w", idx, err)
	}
	d := DiskAt(f, idx*record.KeySize)
	acct.seek(d, 1)
	var buf [record.KeySize]byte
	if _, err := io.ReadFull(f, buf[:]); err != nil {
		return 0, fmt.Errorf("diskio: read key %d: %w", idx, err)
	}
	acct.read(d, 1)
	return record.GetKey(buf[:]), nil
}

// WriteFile creates name on fs and writes all keys to it in blocks.
func WriteFile(fs FS, name string, keys []record.Key, blockKeys int, acct Accounting) error {
	f, err := fs.Create(name)
	if err != nil {
		return err
	}
	w := NewWriter(f, blockKeys, acct)
	if err := w.WriteKeys(keys); err != nil {
		f.Close()
		return err
	}
	if err := w.Close(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadFileAll opens name on fs and reads every key.
func ReadFileAll(fs FS, name string, blockKeys int, acct Accounting) ([]record.Key, error) {
	f, err := fs.Open(name)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	r := NewReader(f, blockKeys, acct)
	var out []record.Key
	buf := make([]record.Key, blockKeys)
	for {
		n, err := r.ReadKeys(buf)
		out = append(out, buf[:n]...)
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
		if n == 0 {
			return out, nil
		}
	}
}

// CountKeys returns the number of keys stored in name by seeking to the
// end (no block transfers are charged; file length is metadata).
func CountKeys(fs FS, name string) (int64, error) {
	f, err := fs.Open(name)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	sz, err := f.Seek(0, io.SeekEnd)
	if err != nil {
		return 0, err
	}
	if sz%record.KeySize != 0 {
		return 0, fmt.Errorf("diskio: %s has ragged size %d", name, sz)
	}
	return sz / record.KeySize, nil
}

package polyphase

import (
	"errors"
	"fmt"
	"io"

	"hetsort/internal/diskio"
	"hetsort/internal/record"
)

// Config parameterises the external sorts in this package.
type Config struct {
	// FS is the filesystem holding the input, output and tape files.
	FS diskio.FS
	// BlockKeys is the PDM block size B in keys.
	BlockKeys int
	// MemoryKeys is the internal memory budget M in keys; run
	// formation uses it as the working-set size.  Must be at least
	// Tapes*BlockKeys so one block per tape fits during merging.
	MemoryKeys int
	// Tapes is the total number of tape files T (the paper used 15
	// intermediate files, i.e. a 14-way polyphase merge).  At least 3.
	Tapes int
	// RunFormation selects the initial run former (default
	// ReplacementSelection).
	RunFormation RunFormation
	// NoGallop disables the merge kernel's multi-block galloping fast
	// path (see MergeOptions).  Output bytes and PDM I/O counts are
	// unchanged; only compute charges grow.  Used as the ablation
	// baseline.
	NoGallop bool
	// Acct receives I/O counts and virtual-time charges.
	Acct diskio.Accounting
	// Overlap selects asynchronous prefetch and write-behind for the
	// tape streams (PDM I/O counts are unchanged; only virtual time
	// hides behind compute).
	Overlap diskio.Overlap
	// TempPrefix prefixes tape file names so concurrent sorts on a
	// shared FS do not collide.
	TempPrefix string
}

// Validate checks the configuration.
func (c Config) Validate() error {
	switch {
	case c.FS == nil:
		return errors.New("polyphase: nil FS")
	case c.BlockKeys <= 0:
		return fmt.Errorf("polyphase: BlockKeys=%d must be positive", c.BlockKeys)
	case c.Tapes < 3:
		return fmt.Errorf("polyphase: Tapes=%d must be at least 3", c.Tapes)
	case c.MemoryKeys < c.Tapes*c.BlockKeys:
		return fmt.Errorf("polyphase: MemoryKeys=%d too small for %d tapes of %d-key blocks",
			c.MemoryKeys, c.Tapes, c.BlockKeys)
	}
	return nil
}

// Stats reports what a Sort did.
type Stats struct {
	Keys       int64 // keys sorted
	Runs       int64 // initial runs formed
	Phases     int64 // polyphase merge phases
	MergeSteps int64 // individual run merges performed
}

// tape is one of the T files, with in-memory run-boundary metadata.
// Readers are always Released (joining any prefetch goroutine) before
// the underlying file closes, and writers are always Closed (joining
// any write-behind drainer) even on error paths.
type tape struct {
	fs      diskio.FS
	name    string
	block   int
	acct    diskio.Accounting
	overlap diskio.Overlap

	runs    []int64 // FIFO of run lengths in keys
	dummies int64

	rf diskio.File
	r  diskio.BlockReader
	wf diskio.File
	w  diskio.BlockWriter
}

func (t *tape) total() int64 { return int64(len(t.runs)) + t.dummies }

func (t *tape) becomeOutput() error {
	if t.rf != nil {
		t.r.Release()
		if err := t.rf.Close(); err != nil {
			return err
		}
		t.rf, t.r = nil, nil
	}
	f, err := t.fs.Create(t.name)
	if err != nil {
		return err
	}
	t.wf = f
	t.w = diskio.NewBlockWriter(f, t.block, t.acct, t.overlap)
	t.runs = t.runs[:0]
	return nil
}

func (t *tape) finishOutput() error {
	if t.w == nil {
		return nil
	}
	if err := t.w.Close(); err != nil {
		return err
	}
	if err := t.wf.Close(); err != nil {
		return err
	}
	t.w, t.wf = nil, nil
	f, err := t.fs.Open(t.name)
	if err != nil {
		return err
	}
	t.rf = f
	t.r = diskio.NewBlockReader(f, t.block, t.acct, t.overlap)
	return nil
}

func (t *tape) close() {
	if t.rf != nil {
		t.r.Release()
		t.rf.Close()
		t.rf, t.r = nil, nil
	}
	if t.wf != nil {
		t.w.Close()
		t.wf.Close()
		t.w, t.wf = nil, nil
	}
}

// distributor implements runSink, routing formed runs onto the T-1 input
// tapes following the generalized-Fibonacci perfect distribution with a
// largest-deficit placement policy, and tracking the dummy-run deficit.
type distributor struct {
	tapes  []*tape // the T-1 input tapes
	target []int64 // a[i]: perfect-distribution target at current level
	placed []int64 // real runs placed on tape i
	cur    int     // tape receiving the current run
	curLen int64
}

func newDistributor(inputs []*tape) *distributor {
	d := &distributor{
		tapes:  inputs,
		target: make([]int64, len(inputs)),
		placed: make([]int64, len(inputs)),
	}
	for i := range d.target {
		d.target[i] = 1
	}
	return d
}

// levelUp advances the perfect distribution one level:
// a'[i] = a[0] + a[i+1] (with a[k] = 0).
func (d *distributor) levelUp() {
	k := len(d.target)
	a0 := d.target[0]
	next := make([]int64, k)
	for i := 0; i < k; i++ {
		if i+1 < k {
			next[i] = a0 + d.target[i+1]
		} else {
			next[i] = a0
		}
	}
	d.target = next
}

// pick returns the tape with the largest remaining deficit, levelling up
// first if every tape met its target.
func (d *distributor) pick() int {
	for {
		best, bestDef := -1, int64(0)
		for i := range d.tapes {
			if def := d.target[i] - d.placed[i]; def > bestDef {
				best, bestDef = i, def
			}
		}
		if best >= 0 {
			return best
		}
		d.levelUp()
	}
}

func (d *distributor) beginRun() error {
	d.cur = d.pick()
	d.curLen = 0
	return nil
}

func (d *distributor) emit(k record.Key) error {
	return d.tapes[d.cur].w.WriteKey(k)
}

func (d *distributor) endRun() error {
	t := d.tapes[d.cur]
	t.runs = append(t.runs, d.curLen)
	d.placed[d.cur]++
	return nil
}

// finalize computes each tape's dummy count from the unmet targets.
func (d *distributor) finalize() {
	for i, t := range d.tapes {
		t.dummies = d.target[i] - d.placed[i]
	}
}

// Sort externally sorts the keys in inputName into outputName using
// polyphase merge sort.  The input file is left untouched; tape files
// are created under cfg.TempPrefix and removed on success.
func Sort(cfg Config, inputName, outputName string) (Stats, error) {
	if err := cfg.Validate(); err != nil {
		return Stats{}, err
	}
	tapes := make([]*tape, cfg.Tapes)
	for i := range tapes {
		tapes[i] = &tape{
			fs:      cfg.FS,
			name:    fmt.Sprintf("%stape%d", cfg.TempPrefix, i),
			block:   cfg.BlockKeys,
			acct:    cfg.Acct,
			overlap: cfg.Overlap,
		}
	}
	defer func() {
		for _, t := range tapes {
			t.close()
			cfg.FS.Remove(t.name) // best effort; may not exist
		}
	}()

	inputs := tapes[:cfg.Tapes-1]
	for _, t := range inputs {
		if err := t.becomeOutput(); err != nil {
			return Stats{}, err
		}
	}
	dist := newDistributor(inputs)
	sink := &countingSink{inner: dist, lenDst: &dist.curLen}
	runs, keys, err := formRuns(cfg.FS, inputName, cfg.BlockKeys, cfg.MemoryKeys,
		cfg.RunFormation, cfg.Acct, cfg.Overlap, sink)
	if err != nil {
		return Stats{}, fmt.Errorf("polyphase: run formation: %w", err)
	}
	dist.finalize()
	for _, t := range inputs {
		if err := t.finishOutput(); err != nil {
			return Stats{}, err
		}
	}
	stats := Stats{Keys: keys, Runs: runs}

	if runs == 0 {
		// Empty input: produce an empty output file.
		f, err := cfg.FS.Create(outputName)
		if err != nil {
			return stats, err
		}
		return stats, f.Close()
	}

	out := tapes[cfg.Tapes-1]
	if err := out.becomeOutput(); err != nil {
		return stats, err
	}

	for {
		final, err := finalTape(tapes)
		if err == nil {
			// Exactly one real run left: it is the sorted output.
			final.close()
			for _, t := range tapes {
				t.close()
			}
			if rerr := cfg.FS.Rename(final.name, outputName); rerr != nil {
				return stats, rerr
			}
			return stats, nil
		}
		steps, merr := mergePhase(tapes, out, cfg)
		if merr != nil {
			return stats, fmt.Errorf("polyphase: merge phase %d: %w", stats.Phases+1, merr)
		}
		stats.Phases++
		stats.MergeSteps += steps
		// The emptied input tape becomes the next output.
		if err := out.finishOutput(); err != nil {
			return stats, err
		}
		next := -1
		for i, t := range tapes {
			if t != out && t.total() == 0 {
				next = i
				break
			}
		}
		if next < 0 {
			return stats, errors.New("polyphase: internal error: no tape emptied during phase")
		}
		newOut := tapes[next]
		if err := newOut.becomeOutput(); err != nil {
			return stats, err
		}
		out = newOut
	}
}

// finalTape returns the tape holding the single remaining real run, or
// an error if the merge is not finished.
func finalTape(tapes []*tape) (*tape, error) {
	var holder *tape
	var realRuns int64
	for _, t := range tapes {
		if len(t.runs) > 0 {
			realRuns += int64(len(t.runs))
			holder = t
		}
	}
	if realRuns == 1 {
		return holder, nil
	}
	return nil, fmt.Errorf("polyphase: %d runs remain", realRuns)
}

// mergePhase merges runs from every non-output tape into out until one
// input tape is exhausted, returning the number of merge steps.
func mergePhase(tapes []*tape, out *tape, cfg Config) (int64, error) {
	var inputs []*tape
	for _, t := range tapes {
		if t != out {
			inputs = append(inputs, t)
		}
	}
	steps := int64(0)
	for _, t := range inputs {
		if t.total() == 0 {
			return 0, errors.New("polyphase: input tape empty at phase start")
		}
	}
	// The phase length is the run count of the shallowest input tape.
	phaseLen := inputs[0].total()
	for _, t := range inputs[1:] {
		if tt := t.total(); tt < phaseLen {
			phaseLen = tt
		}
	}
	for s := int64(0); s < phaseLen; s++ {
		if err := mergeStep(inputs, out, cfg); err != nil {
			return steps, err
		}
		steps++
	}
	return steps, nil
}

// runSource adapts one scheduled run on a tape to the merge kernel: it
// exposes the tape reader's buffer truncated to the run's remaining
// length, so the kernel never consumes into the next run on the tape.
type runSource struct {
	t         *tape
	remaining int64
}

func (s *runSource) Buffered() []record.Key {
	b := s.t.r.Buffered()
	if int64(len(b)) > s.remaining {
		b = b[:s.remaining]
	}
	return b
}

func (s *runSource) Discard(n int) {
	s.t.r.Discard(n)
	s.remaining -= int64(n)
}

func (s *runSource) Fill() error {
	if s.remaining == 0 {
		return io.EOF
	}
	if err := s.t.r.Fill(); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF // the run schedule promised more keys
		}
		return fmt.Errorf("reading run from %s: %w", s.t.name, err)
	}
	return nil
}

// mergeStep consumes one run (real or dummy) from every input tape and
// appends the merged result to out.
func mergeStep(inputs []*tape, out *tape, cfg Config) error {
	var srcs []MergeSource
	for _, t := range inputs {
		if t.dummies > 0 {
			t.dummies--
			continue
		}
		if len(t.runs) == 0 {
			return errors.New("polyphase: input tape under-ran its schedule")
		}
		length := t.runs[0]
		t.runs = t.runs[1:]
		srcs = append(srcs, &runSource{t: t, remaining: length})
	}
	if len(srcs) == 0 {
		// All contributions were dummies: the output gets a dummy.
		out.dummies++
		return nil
	}
	var outLen int64
	emit := func(chunk []record.Key) error {
		outLen += int64(len(chunk))
		return out.w.WriteKeys(chunk)
	}
	if err := MergeOpt(srcs, cfg.Acct.Meter, emit, MergeOptions{NoGallop: cfg.NoGallop}); err != nil {
		return err
	}
	out.runs = append(out.runs, outLen)
	return nil
}

// countingSink wraps a runSink and counts the keys of the current run
// into *lenDst (the distributor records the length at endRun).
type countingSink struct {
	inner  runSink
	lenDst *int64
}

func (c *countingSink) beginRun() error {
	if err := c.inner.beginRun(); err != nil {
		return err
	}
	*c.lenDst = 0
	return nil
}

func (c *countingSink) emit(k record.Key) error {
	if err := c.inner.emit(k); err != nil {
		return err
	}
	*c.lenDst++
	return nil
}

func (c *countingSink) endRun() error { return c.inner.endRun() }

package psrs

import (
	"testing"

	"hetsort/internal/cluster"
	"hetsort/internal/record"
)

func TestMergePartsCorrectness(t *testing.T) {
	c, err := cluster.New(cluster.Config{Slowdowns: []float64{1}})
	if err != nil {
		t.Fatal(err)
	}
	err = c.Run(func(n *cluster.Node) error {
		parts := [][]record.Key{
			{1, 4, 7},
			{},
			{2, 2, 9},
			{0},
			{3, 5, 6, 8},
		}
		got := mergeParts(n, parts)
		want := []record.Key{0, 1, 2, 2, 3, 4, 5, 6, 7, 8, 9}
		if len(got) != len(want) {
			t.Errorf("len=%d", len(got))
			return nil
		}
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("merge[%d]=%d want %d", i, got[i], want[i])
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if c.Node(0).Clock() == 0 {
		t.Fatal("merge charged no compute")
	}
}

func TestMergePartsAllEmpty(t *testing.T) {
	c, _ := cluster.New(cluster.Config{Slowdowns: []float64{1}})
	c.Run(func(n *cluster.Node) error {
		if got := mergeParts(n, [][]record.Key{{}, {}}); len(got) != 0 {
			t.Errorf("got %v", got)
		}
		return nil
	})
}

func TestLocalSortDoesNotMutate(t *testing.T) {
	c, _ := cluster.New(cluster.Config{Slowdowns: []float64{1}})
	c.Run(func(n *cluster.Node) error {
		portion := []record.Key{3, 1, 2}
		sorted := localSort(n, portion)
		if !record.IsSorted(sorted) {
			t.Error("not sorted")
		}
		if portion[0] != 3 {
			t.Error("portion mutated")
		}
		return nil
	})
}

func TestExchangeAndMergeRouting(t *testing.T) {
	// Two nodes; node 0 holds [0..9], node 1 holds [10..19]; cut at 5
	// for node 0 and at... each node's cuts route <=cut to node 0.
	c, _ := cluster.New(cluster.Config{Slowdowns: []float64{1, 1}})
	outs := make([][]record.Key, 2)
	err := c.Run(func(n *cluster.Node) error {
		var local []record.Key
		var cuts []int
		if n.ID() == 0 {
			local = []record.Key{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
			cuts = []int{5} // first 5 stay on node 0
		} else {
			local = []record.Key{10, 11, 12, 13, 14, 15, 16, 17, 18, 19}
			cuts = []int{0} // nothing for node 0
		}
		got, err := exchangeAndMerge(n, local, cuts)
		outs[n.ID()] = got
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(outs[0]) != 5 || len(outs[1]) != 15 {
		t.Fatalf("routing wrong: %d/%d", len(outs[0]), len(outs[1]))
	}
	if !record.IsSorted(outs[0]) || !record.IsSorted(outs[1]) {
		t.Fatal("outputs unsorted")
	}
	if outs[0][4] >= outs[1][0] {
		t.Fatal("boundary violated")
	}
}

func TestNLogN(t *testing.T) {
	cases := []struct{ n, want int64 }{
		{0, 0}, {1, 1}, {2, 2}, {4, 8}, {8, 24}, {1024, 10240},
	}
	for _, c := range cases {
		if got := nLogN(c.n); got != c.want {
			t.Errorf("nLogN(%d)=%d want %d", c.n, got, c.want)
		}
	}
}

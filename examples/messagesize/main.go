// Messagesize reproduces the paper's packet-size tuning as a library
// user would run it: sort the same input with redistribution messages
// from 8 integers to 32K integers and watch the time collapse once the
// per-message software overhead amortises.  The paper found 133.61 s at
// 8-integer packets vs 32.6 s at 8K for 2^21 keys and settled on 32 Kb
// messages for all later experiments.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"hetsort"
)

func main() {
	const n = 1 << 18 // scaled-down 2^21
	r := rand.New(rand.NewSource(5))
	keys := make([]hetsort.Key, n)
	for i := range keys {
		keys[i] = r.Uint32()
	}

	fmt.Println("message size sweep, homogeneous 4-node cluster, Fast Ethernet:")
	var best float64
	var bestMsg int
	for _, msg := range []int{8, 64, 512, 4096, 8192, 32768} {
		_, rep, err := hetsort.Sort(keys, hetsort.Config{
			Nodes:       4,
			Loads:       []float64{4, 4, 1, 1}, // the paper kept its loads on
			MessageKeys: msg,
			MemoryKeys:  1 << 14,
			BlockKeys:   512,
			Tapes:       8,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %6d-integer messages: %8.3f virtual s (redistribution step: %.3f s)\n",
			msg, rep.Time, rep.StepTimes[3])
		if best == 0 || rep.Time < best {
			best, bestMsg = rep.Time, msg
		}
	}
	fmt.Printf("best: %d-integer messages (the paper chose 8K = 32 Kb)\n", bestMsg)
}

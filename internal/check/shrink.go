package check

import (
	"fmt"
	"strings"

	"hetsort"
)

// Shrink minimises a failing case: input keys first (ddmin over
// shrinking chunk sizes), then the configuration axes toward their zero
// values (axis by axis, keeping a change only if the named invariant
// still fails).  maxRuns bounds the re-execution budget (<= 0 means
// 200).  The returned case still fails the invariant; the original is
// returned unchanged if nothing smaller does.
func Shrink(c *Case, invariant string, opts RunOptions, maxRuns int) *Case {
	if maxRuns <= 0 {
		maxRuns = 200
	}
	runsLeft := maxRuns
	fails := func(cand *Case) bool {
		if runsLeft <= 0 {
			return false
		}
		runsLeft--
		return len(Check(cand, opts, invariant)) > 0
	}

	cur := &Case{Name: c.Name + "/shrunk", Seed: c.Seed,
		Keys: append([]hetsort.Key(nil), c.Keys...), Config: c.Config}

	// Phase 1: ddmin over the keys.  Chunk size halves until single
	// keys; any chunk whose removal preserves the failure is dropped.
	for chunk := len(cur.Keys) / 2; chunk >= 1; chunk /= 2 {
		for start := 0; start+chunk <= len(cur.Keys); {
			cand := &Case{Name: cur.Name, Seed: cur.Seed, Config: cur.Config}
			cand.Keys = append(cand.Keys, cur.Keys[:start]...)
			cand.Keys = append(cand.Keys, cur.Keys[start+chunk:]...)
			if fails(cand) {
				cur.Keys = cand.Keys
				// Same start now addresses the next chunk.
			} else {
				start += chunk
			}
			if runsLeft <= 0 {
				return cur
			}
		}
	}

	// Phase 2: config axes toward the zero value, in a fixed order
	// from least to most behaviour-changing.  Each accepted transform
	// restarts the list (an earlier axis may shrink further once a
	// later one was zeroed).
	transforms := []func(hetsort.Config) (hetsort.Config, bool){
		axis("Trace", func(g *hetsort.Config) *bool { return &g.Trace }),
		axis("Overlap", func(g *hetsort.Config) *bool { return &g.Overlap }),
		axis("Pipeline", func(g *hetsort.Config) *bool { return &g.Pipeline }),
		func(g hetsort.Config) (hetsort.Config, bool) {
			if g.Checkpoint == (hetsort.CheckpointConfig{}) {
				return g, false
			}
			g.Checkpoint = hetsort.CheckpointConfig{}
			return g, true
		},
		stringAxis(func(g *hetsort.Config) *string { return &g.Network }),
		stringAxis(func(g *hetsort.Config) *string { return &g.RunFormation }),
		// DiskAccess before Disks: an access-mode-dependent failure
		// keeps both, a mode-independent one shrinks to striped first.
		stringAxis(func(g *hetsort.Config) *string { return &g.DiskAccess }),
		intAxis(func(g *hetsort.Config) *int { return &g.Disks }),
		// Radix before Topology: a radix-dependent failure keeps both,
		// a radix-independent one shrinks to the default radix first.
		intAxis(func(g *hetsort.Config) *int { return &g.Radix }),
		stringAxis(func(g *hetsort.Config) *string { return &g.Topology }),
		stringAxis(func(g *hetsort.Config) *string { return &g.PivotStrategy }),
		stringAxis(func(g *hetsort.Config) *string { return &g.Algorithm }),
		func(g hetsort.Config) (hetsort.Config, bool) {
			if g.Loads == nil {
				return g, false
			}
			g.Loads = nil
			return g, true
		},
		func(g hetsort.Config) (hetsort.Config, bool) {
			if g.QuantileEps == 0 {
				return g, false
			}
			g.QuantileEps = 0
			return g, true
		},
		func(g hetsort.Config) (hetsort.Config, bool) {
			if g.HistTolerance == 0 {
				return g, false
			}
			g.HistTolerance = 0
			return g, true
		},
		func(g hetsort.Config) (hetsort.Config, bool) {
			if g.Seed == 0 {
				return g, false
			}
			g.Seed = 0
			return g, true
		},
		func(g hetsort.Config) (hetsort.Config, bool) {
			// Flatten the perf vector to homogeneous of the same size.
			if len(g.Perf) == 0 {
				return g, false
			}
			g.Nodes = len(g.Perf)
			g.Perf = nil
			return g, true
		},
		func(g hetsort.Config) (hetsort.Config, bool) {
			// Fewer nodes (toward 2; 4 is the zero-value default).
			if len(g.Perf) > 0 || g.Nodes == 0 || g.Nodes <= 2 {
				return g, false
			}
			g.Nodes = 2
			return g, true
		},
		intAxis(func(g *hetsort.Config) *int { return &g.MessageKeys }),
		intAxis(func(g *hetsort.Config) *int { return &g.Tapes }),
		intAxis(func(g *hetsort.Config) *int { return &g.BlockKeys }),
		intAxis(func(g *hetsort.Config) *int { return &g.MemoryKeys }),
	}
	for changed := true; changed && runsLeft > 0; {
		changed = false
		for _, tf := range transforms {
			cfg, ok := tf(cur.Config)
			if !ok {
				continue
			}
			cand := &Case{Name: cur.Name, Seed: cur.Seed, Keys: cur.Keys, Config: cfg}
			if fails(cand) {
				cur.Config = cfg
				changed = true
			}
			if runsLeft <= 0 {
				break
			}
		}
	}
	return cur
}

func axis(_ string, field func(*hetsort.Config) *bool) func(hetsort.Config) (hetsort.Config, bool) {
	return func(g hetsort.Config) (hetsort.Config, bool) {
		if !*field(&g) {
			return g, false
		}
		*field(&g) = false
		return g, true
	}
}

func stringAxis(field func(*hetsort.Config) *string) func(hetsort.Config) (hetsort.Config, bool) {
	return func(g hetsort.Config) (hetsort.Config, bool) {
		if *field(&g) == "" {
			return g, false
		}
		*field(&g) = ""
		return g, true
	}
}

func intAxis(field func(*hetsort.Config) *int) func(hetsort.Config) (hetsort.Config, bool) {
	return func(g hetsort.Config) (hetsort.Config, bool) {
		if *field(&g) == 0 {
			return g, false
		}
		*field(&g) = 0
		return g, true
	}
}

// Repro renders a ready-to-paste Go test reproducing the failure.
func Repro(c *Case, invariant string, err error) string {
	var b strings.Builder
	fmt.Fprintf(&b, "// Repro for invariant %q (case %s, seed %d):\n", invariant, c.Name, c.Seed)
	fmt.Fprintf(&b, "//   %v\n", err)
	fmt.Fprintf(&b, "func TestHetcheckRepro(t *testing.T) {\n")
	fmt.Fprintf(&b, "\tkeys := %s\n", keysLiteral(c.Keys))
	fmt.Fprintf(&b, "\tcfg := %s\n", configLiteral(c.Config))
	fmt.Fprintf(&b, "\tfor _, f := range check.Recheck(keys, cfg, %q) {\n", invariant)
	fmt.Fprintf(&b, "\t\tt.Error(f)\n")
	fmt.Fprintf(&b, "\t}\n")
	fmt.Fprintf(&b, "}\n")
	return b.String()
}

func keysLiteral(keys []hetsort.Key) string {
	var b strings.Builder
	b.WriteString("[]uint32{")
	for i, k := range keys {
		if i > 0 {
			b.WriteString(", ")
		}
		if i > 0 && i%16 == 0 {
			b.WriteString("\n\t\t")
		}
		fmt.Fprintf(&b, "%d", k)
	}
	b.WriteString("}")
	return b.String()
}

// configLiteral renders only the non-zero fields of a Config.
func configLiteral(cfg hetsort.Config) string {
	var parts []string
	add := func(format string, args ...any) { parts = append(parts, fmt.Sprintf(format, args...)) }
	if len(cfg.Perf) > 0 {
		add("Perf: %#v", cfg.Perf)
	}
	if cfg.Nodes != 0 {
		add("Nodes: %d", cfg.Nodes)
	}
	if cfg.BlockKeys != 0 {
		add("BlockKeys: %d", cfg.BlockKeys)
	}
	if cfg.MemoryKeys != 0 {
		add("MemoryKeys: %d", cfg.MemoryKeys)
	}
	if cfg.Tapes != 0 {
		add("Tapes: %d", cfg.Tapes)
	}
	if cfg.MessageKeys != 0 {
		add("MessageKeys: %d", cfg.MessageKeys)
	}
	if cfg.Network != "" {
		add("Network: %q", cfg.Network)
	}
	if cfg.Disks != 0 {
		add("Disks: %d", cfg.Disks)
	}
	if cfg.DiskAccess != "" {
		add("DiskAccess: %q", cfg.DiskAccess)
	}
	if cfg.RunFormation != "" {
		add("RunFormation: %q", cfg.RunFormation)
	}
	if cfg.Algorithm != "" {
		add("Algorithm: %q", cfg.Algorithm)
	}
	if cfg.PivotStrategy != "" {
		add("PivotStrategy: %q", cfg.PivotStrategy)
	}
	if cfg.Topology != "" {
		add("Topology: %q", cfg.Topology)
	}
	if cfg.Radix != 0 {
		add("Radix: %d", cfg.Radix)
	}
	if cfg.QuantileEps != 0 {
		add("QuantileEps: %g", cfg.QuantileEps)
	}
	if cfg.HistTolerance != 0 {
		add("HistTolerance: %g", cfg.HistTolerance)
	}
	if cfg.WorkDir != "" {
		add("WorkDir: %q", cfg.WorkDir)
	}
	if len(cfg.Loads) > 0 {
		add("Loads: %#v", cfg.Loads)
	}
	if cfg.Seed != 0 {
		add("Seed: %d", cfg.Seed)
	}
	if cfg.Trace {
		add("Trace: true")
	}
	if cfg.Pipeline {
		add("Pipeline: true")
	}
	if cfg.Overlap {
		add("Overlap: true")
	}
	if cfg.Checkpoint != (hetsort.CheckpointConfig{}) {
		add("Checkpoint: hetsort.CheckpointConfig{Enabled: %v, CrashPhase: %d, CrashNode: %d}",
			cfg.Checkpoint.Enabled, cfg.Checkpoint.CrashPhase, cfg.Checkpoint.CrashNode)
	}
	return "hetsort.Config{" + strings.Join(parts, ", ") + "}"
}

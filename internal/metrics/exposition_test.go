package metrics

import (
	"math"
	"strings"
	"testing"
)

func TestQuantileEdgeCases(t *testing.T) {
	var empty Histogram
	for _, q := range []float64{0, 0.5, 1} {
		if got := empty.Quantile(q); got != 0 {
			t.Errorf("empty histogram Quantile(%g) = %g, want 0", q, got)
		}
	}

	var one Histogram
	one.Observe(3.5)
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := one.Quantile(q); got != 3.5 {
			t.Errorf("single-observation Quantile(%g) = %g, want the observation 3.5", q, got)
		}
	}

	var h Histogram
	for _, v := range []float64{1, 2, 4, 8} {
		h.Observe(v)
	}
	// q=0 still ranks the first observation (upper bound within one
	// power-of-two bucket); q=1 must cap at Max, not the bucket bound.
	if lo, hi := h.Quantile(0), h.Quantile(1); lo > hi || lo <= 0 || lo > 2 {
		t.Errorf("Quantile(0) = %g, want in (0, 2] and <= Quantile(1) = %g", lo, hi)
	}
	if got := h.Quantile(1); got != 8 {
		t.Errorf("Quantile(1) = %g, want Max 8", got)
	}
}

func TestObserveNaN(t *testing.T) {
	var h Histogram
	h.Observe(2)
	h.Observe(math.NaN())
	h.Observe(4)
	if s := h.Sum(); math.IsNaN(s) || s != 6 {
		t.Errorf("Sum = %g after a NaN observation, want 6 (NaN recorded as 0)", s)
	}
	if mn := h.Min(); math.IsNaN(mn) || mn != 0 {
		t.Errorf("Min = %g, want 0", mn)
	}
	if mx := h.Max(); math.IsNaN(mx) || mx != 4 {
		t.Errorf("Max = %g, want 4", mx)
	}
	if n := h.Count(); n != 3 {
		t.Errorf("Count = %d, want 3", n)
	}

	var seeded Histogram
	seeded.Observe(math.NaN()) // NaN as the FIRST observation must not wedge min/max
	seeded.Observe(5)
	if mx := seeded.Max(); mx != 5 {
		t.Errorf("Max = %g after NaN-seeded histogram, want 5", mx)
	}
}

func TestExpositionLintsClean(t *testing.T) {
	var h Histogram
	for _, v := range []float64{0.1, 0.5, 2, 2, 7} {
		h.Observe(v)
	}
	e := NewExposition("hetsortd")
	e.Counter("jobs_done_total", "Jobs that completed successfully.", 3, nil)
	e.Gauge("jobs_running", "Jobs currently executing.", 1, nil)
	e.Gauge("job_eta_vsec", "Projected remaining virtual seconds.", 0.25,
		[]Label{{Name: "job", Value: `weird"job\n` + "\nnewline"}})
	e.Histogram("job_vsec", "Virtual makespan of completed jobs.", &h, nil)

	var b strings.Builder
	if _, err := e.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	page := b.String()
	if err := LintExposition([]byte(page)); err != nil {
		t.Fatalf("exposition output fails its own linter:\n%s\n%v", page, err)
	}
	for _, want := range []string{
		"# TYPE hetsortd_jobs_done_total counter",
		"hetsortd_jobs_done_total 3\n",
		`hetsortd_job_vsec_bucket{le="+Inf"} 5`,
		"hetsortd_job_vsec_count 5",
		`\"`, `\\`, `\n`,
	} {
		if !strings.Contains(page, want) {
			t.Errorf("exposition page missing %q:\n%s", want, page)
		}
	}
	// Families must come out in stable lexical order.
	if i, j := strings.Index(page, "hetsortd_job_eta_vsec"), strings.Index(page, "hetsortd_jobs_done_total"); i > j {
		t.Errorf("families not in lexical order (job_eta_vsec at %d after jobs_done_total at %d)", i, j)
	}
}

func TestLintExpositionRejects(t *testing.T) {
	cases := map[string]string{
		"duplicate TYPE":      "# TYPE a counter\n# TYPE a counter\na 1\n",
		"TYPE after sample":   "a 1\n# TYPE a counter\n",
		"unknown type":        "# TYPE a exotic\na 1\n",
		"bad metric name":     "1bad 2\n",
		"unquoted label":      "a{x=y} 1\n",
		"bad value":           "a{x=\"y\"} one\n",
		"missing +Inf bucket": "# TYPE h histogram\nh_bucket{le=\"1\"} 2\nh_sum 2\nh_count 2\n",
		"non-cumulative buckets": "# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"2\"} 3\n" +
			"h_bucket{le=\"+Inf\"} 5\nh_sum 9\nh_count 5\n",
		"+Inf disagrees with count": "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 4\nh_sum 9\nh_count 5\n",
	}
	for name, page := range cases {
		if err := LintExposition([]byte(page)); err == nil {
			t.Errorf("%s: lint accepted invalid page:\n%s", name, page)
		}
	}
}

func TestSanitizeMetricName(t *testing.T) {
	for in, want := range map[string]string{
		"disk.blocks_read": "disk_blocks_read",
		"9lives":           "_9lives",
		"a:b":              "a:b",
	} {
		if got := SanitizeMetricName("", in); got != want {
			t.Errorf("SanitizeMetricName(%q) = %q, want %q", in, got, want)
		}
	}
	if got := SanitizeMetricName("hetsortd", "jobs"); got != "hetsortd_jobs" {
		t.Errorf("prefixed name = %q, want hetsortd_jobs", got)
	}
}

package storage

import (
	"errors"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"sync"

	"hetsort/internal/diskio"
)

// Object is an in-memory S3-style object store: a flat namespace of
// immutable-on-Put byte blobs.  Put swaps the whole object, so a reader
// that opened the previous version keeps reading it unchanged (read-
// after-replace isolation, like S3).  The FS view gives the sorts
// seekable read/write handles over objects in the same namespace.
//
// Object is the test and ephemeral-daemon backend; wrap it in Faulty to
// inject storage faults.
type Object struct {
	mu   sync.Mutex
	objs map[string]*blob
}

// blob is one stored object.  File handles hold the *blob, so a Put
// that replaces the map entry does not disturb open readers; writers
// opened through the FS view mutate the blob in place under the store
// lock (single-writer, like a POSIX file).
type blob struct {
	data []byte
}

// NewObject returns an empty in-memory object store.
func NewObject() *Object { return &Object{objs: make(map[string]*blob)} }

// Put implements Backend.
func (o *Object) Put(name string, data []byte) error {
	if err := ValidName(name); err != nil {
		return err
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	o.objs[name] = &blob{data: append([]byte(nil), data...)}
	return nil
}

// Get implements Backend.
func (o *Object) Get(name string) ([]byte, error) {
	o.mu.Lock()
	defer o.mu.Unlock()
	b, ok := o.objs[name]
	if !ok {
		return nil, fmt.Errorf("storage: get %s: %w", name, ErrNotExist)
	}
	return append([]byte(nil), b.data...), nil
}

// Stat implements Backend.
func (o *Object) Stat(name string) (int64, error) {
	o.mu.Lock()
	defer o.mu.Unlock()
	b, ok := o.objs[name]
	if !ok {
		return 0, fmt.Errorf("storage: stat %s: %w", name, ErrNotExist)
	}
	return int64(len(b.data)), nil
}

// List implements Backend.
func (o *Object) List(prefix string) ([]string, error) {
	o.mu.Lock()
	defer o.mu.Unlock()
	var names []string
	for n := range o.objs {
		if strings.HasPrefix(n, prefix) {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	return names, nil
}

// Delete implements Backend.
func (o *Object) Delete(name string) error {
	o.mu.Lock()
	defer o.mu.Unlock()
	if _, ok := o.objs[name]; !ok {
		return fmt.Errorf("storage: delete %s: %w", name, ErrNotExist)
	}
	delete(o.objs, name)
	return nil
}

// FS implements Backend: files created through the view are objects
// named prefix + "/" + filename.
func (o *Object) FS(prefix string) (diskio.FS, error) {
	if err := ValidName(prefix); err != nil {
		return nil, err
	}
	return &objectFS{store: o, prefix: prefix + "/"}, nil
}

// TotalBytes returns the sum of all object sizes (for tests asserting
// space bounds).
func (o *Object) TotalBytes() int64 {
	o.mu.Lock()
	defer o.mu.Unlock()
	var total int64
	for _, b := range o.objs {
		total += int64(len(b.data))
	}
	return total
}

// objectFS is a diskio.FS over one prefix of an Object store.
type objectFS struct {
	store  *Object
	prefix string
}

func (f *objectFS) key(name string) (string, error) {
	if err := ValidName(name); err != nil {
		return "", err
	}
	return f.prefix + name, nil
}

// Create implements diskio.FS.
func (f *objectFS) Create(name string) (diskio.File, error) {
	k, err := f.key(name)
	if err != nil {
		return nil, err
	}
	f.store.mu.Lock()
	defer f.store.mu.Unlock()
	b := &blob{}
	f.store.objs[k] = b
	return &objectFile{store: f.store, name: name, blob: b, writable: true}, nil
}

// Open implements diskio.FS.
func (f *objectFS) Open(name string) (diskio.File, error) {
	k, err := f.key(name)
	if err != nil {
		return nil, err
	}
	f.store.mu.Lock()
	defer f.store.mu.Unlock()
	b, ok := f.store.objs[k]
	if !ok {
		return nil, fmt.Errorf("storage: open %s: %w", name, os.ErrNotExist)
	}
	return &objectFile{store: f.store, name: name, blob: b}, nil
}

// Remove implements diskio.FS.
func (f *objectFS) Remove(name string) error {
	k, err := f.key(name)
	if err != nil {
		return err
	}
	f.store.mu.Lock()
	defer f.store.mu.Unlock()
	if _, ok := f.store.objs[k]; !ok {
		return fmt.Errorf("storage: remove %s: %w", name, os.ErrNotExist)
	}
	delete(f.store.objs, k)
	return nil
}

// Rename implements diskio.FS.
func (f *objectFS) Rename(oldName, newName string) error {
	ok, err := f.key(oldName)
	if err != nil {
		return err
	}
	nk, err := f.key(newName)
	if err != nil {
		return err
	}
	f.store.mu.Lock()
	defer f.store.mu.Unlock()
	b, exists := f.store.objs[ok]
	if !exists {
		return fmt.Errorf("storage: rename %s: %w", oldName, os.ErrNotExist)
	}
	delete(f.store.objs, ok)
	f.store.objs[nk] = b
	return nil
}

// Names implements diskio.FS.
func (f *objectFS) Names() ([]string, error) {
	f.store.mu.Lock()
	defer f.store.mu.Unlock()
	var names []string
	for n := range f.store.objs {
		if strings.HasPrefix(n, f.prefix) {
			names = append(names, strings.TrimPrefix(n, f.prefix))
		}
	}
	sort.Strings(names)
	return names, nil
}

// objectFile is a seekable handle on one blob, semantics matching
// diskio.MemFS files.
type objectFile struct {
	store    *Object
	name     string
	blob     *blob
	off      int64
	writable bool
	closed   bool
}

func (f *objectFile) Name() string { return f.name }

func (f *objectFile) Read(p []byte) (int, error) {
	if f.closed {
		return 0, os.ErrClosed
	}
	f.store.mu.Lock()
	defer f.store.mu.Unlock()
	if f.off >= int64(len(f.blob.data)) {
		return 0, io.EOF
	}
	n := copy(p, f.blob.data[f.off:])
	f.off += int64(n)
	return n, nil
}

func (f *objectFile) Write(p []byte) (int, error) {
	if f.closed {
		return 0, os.ErrClosed
	}
	if !f.writable {
		return 0, errors.New("storage: file opened read-only")
	}
	f.store.mu.Lock()
	defer f.store.mu.Unlock()
	b := f.blob.data
	end := f.off + int64(len(p))
	if end > int64(len(b)) {
		nb := make([]byte, end)
		copy(nb, b)
		b = nb
	}
	copy(b[f.off:end], p)
	f.blob.data = b
	f.off = end
	return len(p), nil
}

func (f *objectFile) Seek(offset int64, whence int) (int64, error) {
	if f.closed {
		return 0, os.ErrClosed
	}
	f.store.mu.Lock()
	defer f.store.mu.Unlock()
	var base int64
	switch whence {
	case io.SeekStart:
		base = 0
	case io.SeekCurrent:
		base = f.off
	case io.SeekEnd:
		base = int64(len(f.blob.data))
	default:
		return 0, fmt.Errorf("storage: bad whence %d", whence)
	}
	np := base + offset
	if np < 0 {
		return 0, errors.New("storage: negative seek position")
	}
	f.off = np
	return np, nil
}

func (f *objectFile) Close() error {
	f.closed = true
	return nil
}

package polyphase

import (
	"errors"
	"fmt"
	"sort"
	"testing"
	"testing/quick"

	"hetsort/internal/diskio"
	"hetsort/internal/pdm"
	"hetsort/internal/record"
)

func testConfig(fs diskio.FS, c *pdm.Counter) Config {
	return Config{
		FS:         fs,
		BlockKeys:  16,
		MemoryKeys: 128,
		Tapes:      4,
		Acct:       diskio.Accounting{Counter: c},
		TempPrefix: "tmp/",
	}
}

func sortAndVerify(t *testing.T, cfg Config, keys []record.Key) Stats {
	t.Helper()
	if err := diskio.WriteFile(cfg.FS, "input", keys, cfg.BlockKeys, cfg.Acct); err != nil {
		t.Fatal(err)
	}
	stats, err := Sort(cfg, "input", "output")
	if err != nil {
		t.Fatalf("Sort: %v", err)
	}
	got, err := diskio.ReadFileAll(cfg.FS, "output", cfg.BlockKeys, cfg.Acct)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(keys) {
		t.Fatalf("output has %d keys, want %d", len(got), len(keys))
	}
	if !record.IsSorted(got) {
		t.Fatal("output not sorted")
	}
	if !record.ChecksumOf(got).Equal(record.ChecksumOf(keys)) {
		t.Fatal("output is not a permutation of input")
	}
	return stats
}

func TestSortUniformBothFormers(t *testing.T) {
	for _, rf := range []RunFormation{ReplacementSelection, LoadSort} {
		t.Run(rf.String(), func(t *testing.T) {
			var c pdm.Counter
			cfg := testConfig(diskio.NewMemFS(), &c)
			cfg.RunFormation = rf
			keys := record.Uniform.Generate(5000, 42, 1)
			stats := sortAndVerify(t, cfg, keys)
			if stats.Keys != 5000 {
				t.Fatalf("stats.Keys=%d", stats.Keys)
			}
			if stats.Runs < 2 {
				t.Fatalf("expected multiple runs for out-of-core input, got %d", stats.Runs)
			}
		})
	}
}

func TestSortAllDistributions(t *testing.T) {
	for _, d := range record.Distributions() {
		t.Run(d.String(), func(t *testing.T) {
			cfg := testConfig(diskio.NewMemFS(), nil)
			sortAndVerify(t, cfg, d.Generate(3000, 7, 4))
		})
	}
}

func TestSortEdgeSizes(t *testing.T) {
	for _, n := range []int{0, 1, 2, 15, 16, 17, 127, 128, 129, 1000} {
		t.Run(fmt.Sprint(n), func(t *testing.T) {
			cfg := testConfig(diskio.NewMemFS(), nil)
			sortAndVerify(t, cfg, record.Uniform.Generate(n, int64(n), 1))
		})
	}
}

func TestSortInCoreInput(t *testing.T) {
	// Input smaller than memory: one run, no merge phase.
	cfg := testConfig(diskio.NewMemFS(), nil)
	stats := sortAndVerify(t, cfg, record.Uniform.Generate(100, 1, 1))
	if stats.Runs != 1 || stats.Phases != 0 {
		t.Fatalf("expected 1 run, 0 phases; got %+v", stats)
	}
}

func TestSortAllEqualKeys(t *testing.T) {
	cfg := testConfig(diskio.NewMemFS(), nil)
	keys := make([]record.Key, 2000)
	for i := range keys {
		keys[i] = 7
	}
	sortAndVerify(t, cfg, keys)
}

func TestSortAlreadySortedMakesFewRuns(t *testing.T) {
	// Replacement selection turns sorted input into a single run.
	cfg := testConfig(diskio.NewMemFS(), nil)
	stats := sortAndVerify(t, cfg, record.Sorted.Generate(5000, 1, 1))
	if stats.Runs != 1 {
		t.Fatalf("replacement selection on sorted input should give 1 run, got %d", stats.Runs)
	}
}

func TestSortReverseMakesManyRuns(t *testing.T) {
	cfg := testConfig(diskio.NewMemFS(), nil)
	stats := sortAndVerify(t, cfg, record.Reverse.Generate(5000, 1, 1))
	// Reverse input defeats replacement selection: runs of ~M keys.
	if stats.Runs < 30 {
		t.Fatalf("reverse input should yield ~n/M runs, got %d", stats.Runs)
	}
}

func TestReplacementSelectionRunLengthAdvantage(t *testing.T) {
	mk := func(rf RunFormation) Stats {
		cfg := testConfig(diskio.NewMemFS(), nil)
		cfg.RunFormation = rf
		return sortAndVerify(t, cfg, record.Uniform.Generate(20000, 9, 1))
	}
	rs := mk(ReplacementSelection)
	ls := mk(LoadSort)
	// Knuth: replacement selection averages runs of 2M, so about half
	// as many runs as memory-load sorting.
	if float64(rs.Runs) > 0.7*float64(ls.Runs) {
		t.Fatalf("replacement selection runs=%d not clearly fewer than load-sort runs=%d", rs.Runs, ls.Runs)
	}
}

func TestSortTapeCounts(t *testing.T) {
	for _, tapes := range []int{3, 4, 6, 8, 15} {
		t.Run(fmt.Sprint(tapes), func(t *testing.T) {
			cfg := testConfig(diskio.NewMemFS(), nil)
			cfg.Tapes = tapes
			cfg.MemoryKeys = tapes * cfg.BlockKeys * 2
			sortAndVerify(t, cfg, record.Uniform.Generate(8000, 3, 1))
		})
	}
}

func TestMoreTapesFewerPhases(t *testing.T) {
	run := func(tapes int) Stats {
		cfg := testConfig(diskio.NewMemFS(), nil)
		cfg.Tapes = tapes
		cfg.MemoryKeys = 256
		cfg.RunFormation = LoadSort
		return sortAndVerify(t, cfg, record.Uniform.Generate(40000, 5, 1))
	}
	if three, eight := run(3), run(8); three.Phases <= eight.Phases {
		t.Fatalf("3 tapes should need more phases than 8: %d vs %d", three.Phases, eight.Phases)
	}
}

func TestSortIOWithinPaperBudget(t *testing.T) {
	// The paper budgets step 1 at 2*l*(1+ceil(log_m l)) item I/Os; in
	// block terms 2*lb*(1+ceil(log_m lb)).  Our polyphase should be
	// within a small constant of it (polyphase phases touch only part
	// of the data, but the distribution pass plus final pass add up).
	var c pdm.Counter
	cfg := testConfig(diskio.NewMemFS(), &c)
	keys := record.Uniform.Generate(50000, 11, 1)
	if err := diskio.WriteFile(cfg.FS, "input", keys, cfg.BlockKeys, diskio.Accounting{}); err != nil {
		t.Fatal(err)
	}
	if _, err := Sort(cfg, "input", "output"); err != nil {
		t.Fatal(err)
	}
	params := pdm.Params{N: int64(len(keys)), M: int64(cfg.MemoryKeys), B: int64(cfg.BlockKeys), D: 1, P: 1}
	budget := params.SequentialSortIOs(int64(len(keys)))
	if got := c.Total(); got > 2*budget {
		t.Fatalf("I/Os %d exceed twice the paper budget %d", got, budget)
	}
	if got := c.Total(); got < params.ScanBound() {
		t.Fatalf("I/Os %d below a single scan %d — accounting broken", got, params.ScanBound())
	}
}

func TestSortCleansTapes(t *testing.T) {
	fs := diskio.NewMemFS()
	cfg := testConfig(fs, nil)
	sortAndVerify(t, cfg, record.Uniform.Generate(3000, 2, 1))
	names, _ := fs.Names()
	for _, n := range names {
		if n != "input" && n != "output" {
			t.Fatalf("leftover scratch file %q", n)
		}
	}
}

func TestSortPropertyRandomSizes(t *testing.T) {
	f := func(seed int64, sizeRaw uint16) bool {
		n := int(sizeRaw % 2048)
		cfg := testConfig(diskio.NewMemFS(), nil)
		keys := record.Uniform.Generate(n, seed, 1)
		if err := diskio.WriteFile(cfg.FS, "input", keys, cfg.BlockKeys, cfg.Acct); err != nil {
			return false
		}
		if _, err := Sort(cfg, "input", "output"); err != nil {
			return false
		}
		got, err := diskio.ReadFileAll(cfg.FS, "output", cfg.BlockKeys, cfg.Acct)
		if err != nil || !record.IsSorted(got) {
			return false
		}
		return record.ChecksumOf(got).Equal(record.ChecksumOf(keys))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestSortOnDirFS(t *testing.T) {
	d, err := diskio.NewDirFS(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig(d, nil)
	sortAndVerify(t, cfg, record.Uniform.Generate(10000, 13, 1))
}

func TestSortSurfacesDiskFaults(t *testing.T) {
	inner := diskio.NewMemFS()
	keys := record.Uniform.Generate(2000, 3, 1)
	if err := diskio.WriteFile(inner, "input", keys, 16, diskio.Accounting{}); err != nil {
		t.Fatal(err)
	}
	// Budget chosen to fail mid-merge rather than at setup.
	ffs := diskio.NewFaultFS(inner, 200)
	cfg := testConfig(ffs, nil)
	_, err := Sort(cfg, "input", "output")
	if !errors.Is(err, diskio.ErrInjected) {
		t.Fatalf("want injected fault surfaced, got %v", err)
	}
}

func TestConfigValidate(t *testing.T) {
	fs := diskio.NewMemFS()
	cases := []Config{
		{FS: nil, BlockKeys: 8, MemoryKeys: 64, Tapes: 4},
		{FS: fs, BlockKeys: 0, MemoryKeys: 64, Tapes: 4},
		{FS: fs, BlockKeys: 8, MemoryKeys: 64, Tapes: 2},
		{FS: fs, BlockKeys: 8, MemoryKeys: 16, Tapes: 4},
	}
	for i, c := range cases {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d should fail validation", i)
		}
	}
	good := Config{FS: fs, BlockKeys: 8, MemoryKeys: 64, Tapes: 4}
	if err := good.Validate(); err != nil {
		t.Errorf("good config rejected: %v", err)
	}
}

func TestDistributorFibonacciTargets(t *testing.T) {
	// For T=4 (3 input tapes) the perfect-distribution totals follow
	// the 3rd-order Fibonacci sequence: levels sum to 1,3,5,9,17,31...
	inputs := []*tape{{}, {}, {}}
	d := newDistributor(inputs)
	sums := []int64{}
	for l := 0; l < 6; l++ {
		var s int64
		for _, a := range d.target {
			s += a
		}
		sums = append(sums, s)
		d.levelUp()
	}
	want := []int64{3, 5, 9, 17, 31, 57}
	for i := range want {
		if sums[i] != want[i] {
			t.Fatalf("level %d total=%d want %d (%v)", i+1, sums[i], want[i], sums)
		}
	}
}

func TestMergeFilesBasic(t *testing.T) {
	fs := diskio.NewMemFS()
	cfg := testConfig(fs, nil)
	var all []record.Key
	var names []string
	for i := 0; i < 7; i++ {
		part := record.Uniform.Generate(500+i*37, int64(i), 1)
		sort.Slice(part, func(a, b int) bool { return part[a] < part[b] })
		name := fmt.Sprintf("part%d", i)
		if err := diskio.WriteFile(fs, name, part, cfg.BlockKeys, cfg.Acct); err != nil {
			t.Fatal(err)
		}
		names = append(names, name)
		all = append(all, part...)
	}
	if err := MergeFiles(cfg, names, "merged"); err != nil {
		t.Fatal(err)
	}
	got, err := diskio.ReadFileAll(fs, "merged", cfg.BlockKeys, cfg.Acct)
	if err != nil {
		t.Fatal(err)
	}
	if !record.IsSorted(got) {
		t.Fatal("merge output not sorted")
	}
	if !record.ChecksumOf(got).Equal(record.ChecksumOf(all)) {
		t.Fatal("merge lost or invented keys")
	}
}

func TestMergeFilesZeroAndOne(t *testing.T) {
	fs := diskio.NewMemFS()
	cfg := testConfig(fs, nil)
	if err := MergeFiles(cfg, nil, "empty"); err != nil {
		t.Fatal(err)
	}
	if n, _ := diskio.CountKeys(fs, "empty"); n != 0 {
		t.Fatalf("empty merge produced %d keys", n)
	}
	keys := []record.Key{3, 1, 2}
	sort.Slice(keys, func(a, b int) bool { return keys[a] < keys[b] })
	diskio.WriteFile(fs, "solo", keys, cfg.BlockKeys, cfg.Acct)
	if err := MergeFiles(cfg, []string{"solo"}, "copy"); err != nil {
		t.Fatal(err)
	}
	got, _ := diskio.ReadFileAll(fs, "copy", cfg.BlockKeys, cfg.Acct)
	if len(got) != 3 || !record.IsSorted(got) {
		t.Fatalf("single-input merge broken: %v", got)
	}
	// Original must survive.
	if _, err := fs.Open("solo"); err != nil {
		t.Fatal("single input was consumed")
	}
}

func TestMergeFilesMultiPass(t *testing.T) {
	// More inputs than the fan-in forces multiple passes.
	fs := diskio.NewMemFS()
	cfg := testConfig(fs, nil)
	cfg.Tapes = 3 // fan-in of 2
	var names []string
	var all []record.Key
	for i := 0; i < 9; i++ {
		part := record.Gaussian.Generate(100, int64(i), 1)
		sort.Slice(part, func(a, b int) bool { return part[a] < part[b] })
		name := fmt.Sprintf("p%d", i)
		diskio.WriteFile(fs, name, part, cfg.BlockKeys, cfg.Acct)
		names = append(names, name)
		all = append(all, part...)
	}
	if err := MergeFiles(cfg, names, "merged"); err != nil {
		t.Fatal(err)
	}
	got, _ := diskio.ReadFileAll(fs, "merged", cfg.BlockKeys, cfg.Acct)
	if !record.IsSorted(got) || !record.ChecksumOf(got).Equal(record.ChecksumOf(all)) {
		t.Fatal("multi-pass merge incorrect")
	}
	// Scratch files cleaned up.
	namesLeft, _ := fs.Names()
	for _, n := range namesLeft {
		if len(n) >= 4 && n[:4] == "tmp/" {
			t.Fatalf("leftover scratch %q", n)
		}
	}
}

func TestMergeFilesEmptyInputs(t *testing.T) {
	fs := diskio.NewMemFS()
	cfg := testConfig(fs, nil)
	diskio.WriteFile(fs, "a", nil, cfg.BlockKeys, cfg.Acct)
	diskio.WriteFile(fs, "b", []record.Key{5}, cfg.BlockKeys, cfg.Acct)
	diskio.WriteFile(fs, "c", nil, cfg.BlockKeys, cfg.Acct)
	if err := MergeFiles(cfg, []string{"a", "b", "c"}, "out"); err != nil {
		t.Fatal(err)
	}
	got, _ := diskio.ReadFileAll(fs, "out", cfg.BlockKeys, cfg.Acct)
	if len(got) != 1 || got[0] != 5 {
		t.Fatalf("got %v", got)
	}
}

func TestRunFormationStrings(t *testing.T) {
	if ReplacementSelection.String() != "replacement-selection" || LoadSort.String() != "load-sort" {
		t.Fatal("RunFormation strings")
	}
}

func TestSortInPlaceSameName(t *testing.T) {
	// Sorting a file onto its own name replaces it with the sorted
	// content (the final tape is renamed over it).
	fs := diskio.NewMemFS()
	cfg := testConfig(fs, nil)
	keys := record.Uniform.Generate(3000, 77, 1)
	if err := diskio.WriteFile(fs, "data", keys, cfg.BlockKeys, cfg.Acct); err != nil {
		t.Fatal(err)
	}
	if _, err := Sort(cfg, "data", "data"); err != nil {
		t.Fatal(err)
	}
	got, err := diskio.ReadFileAll(fs, "data", cfg.BlockKeys, cfg.Acct)
	if err != nil {
		t.Fatal(err)
	}
	if !record.IsSorted(got) || !record.ChecksumOf(got).Equal(record.ChecksumOf(keys)) {
		t.Fatal("in-place sort broken")
	}
}

package extsort

import (
	"fmt"
	"testing"
	"testing/quick"

	"hetsort/internal/cluster"
	"hetsort/internal/diskio"
	"hetsort/internal/perf"
	"hetsort/internal/record"
)

// TestEightNodeMixedGenerations runs Algorithm 1 on the paper's worked
// Equation-2 example vector {8,5,3,1} extended to 8 nodes.
func TestEightNodeMixedGenerations(t *testing.T) {
	v := perf.Vector{8, 5, 3, 1, 8, 5, 3, 1}
	c, err := cluster.New(cluster.Config{Slowdowns: v.Slowdowns(), BlockKeys: 64})
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig(v)
	n := v.NearestValidSize(60000)
	res := runSort(t, c, v, cfg, record.Uniform, n, 101)
	// Class-8 nodes must carry ~8x the class-1 nodes.
	slow := res.PartitionSizes[3] + res.PartitionSizes[7]
	fast := res.PartitionSizes[0] + res.PartitionSizes[4]
	if fast < 5*slow {
		t.Fatalf("class-8 nodes should dominate: %v", res.PartitionSizes)
	}
	// PSRS 2x bound per node.
	var total int64
	for _, s := range res.PartitionSizes {
		total += s
	}
	for i, s := range res.PartitionSizes {
		opt := float64(total) * float64(v[i]) / float64(v.Sum())
		if float64(s) > 2*opt+1 {
			t.Fatalf("node %d: %d keys > 2x optimal %v", i, s, opt)
		}
	}
}

func TestPivotsReportedAndSorted(t *testing.T) {
	v := perf.Homogeneous(4)
	c := newCluster(t, v)
	res := runSort(t, c, v, testConfig(v), record.Uniform, 20000, 103)
	if len(res.Pivots) != 3 {
		t.Fatalf("pivots %v", res.Pivots)
	}
	if !record.IsSorted(res.Pivots) {
		t.Fatal("pivots unsorted")
	}
}

func TestNodeClocksNonDecreasingAcrossSteps(t *testing.T) {
	v := perf.Vector{1, 2}
	c := newCluster(t, v)
	res := runSort(t, c, v, testConfig(v), record.Uniform, v.NearestValidSize(16000), 107)
	for i, clock := range res.NodeClocks {
		if clock <= 0 {
			t.Fatalf("node %d clock %v", i, clock)
		}
	}
	// Total I/O must cover at least 4 full passes over each node's
	// share of the data (sort in+out, partition in+out).
	for i, io := range res.NodeIO {
		if io.Total() == 0 {
			t.Fatalf("node %d recorded no I/O", i)
		}
	}
	_ = res
}

func TestRedistributionIOMatchesFinalPartitions(t *testing.T) {
	// Step 4 writes each node's *received* data: its block writes must
	// be about partitionSize/B.
	v := perf.Vector{1, 1, 4, 4}
	c := newCluster(t, v)
	cfg := testConfig(v)
	res := runSort(t, c, v, cfg, record.Uniform, v.NearestValidSize(40000), 109)
	for i := range res.PartitionSizes {
		wantBlocks := res.PartitionSizes[i] / int64(cfg.BlockKeys)
		got := res.StepIO[3][i].Writes
		if got < wantBlocks || got > wantBlocks+int64(c.P())+2 {
			t.Fatalf("node %d: step-4 writes %d vs expected ~%d", i, got, wantBlocks)
		}
	}
}

func TestSortedInputFastPath(t *testing.T) {
	// Already-sorted input: replacement selection forms one run, so
	// step 1 collapses to a single distribution pass.
	v := perf.Homogeneous(2)
	c := newCluster(t, v)
	resSorted := runSort(t, c, v, testConfig(v), record.Sorted, 16384, 113)
	c2 := newCluster(t, v)
	resReverse := runSort(t, c2, v, testConfig(v), record.Reverse, 16384, 113)
	if resSorted.StepTimes[0] >= resReverse.StepTimes[0] {
		t.Fatalf("sorted input step 1 (%v) should beat reverse input (%v)",
			resSorted.StepTimes[0], resReverse.StepTimes[0])
	}
}

func TestIdealNetworkLowerBound(t *testing.T) {
	v := perf.Homogeneous(4)
	run := func(net cluster.NetModel) float64 {
		c, err := cluster.New(cluster.Config{Slowdowns: v.Slowdowns(), Net: net, BlockKeys: 64})
		if err != nil {
			t.Fatal(err)
		}
		res := runSort(t, c, v, testConfig(v), record.Uniform, 20000, 127)
		return res.Time
	}
	ideal := run(cluster.Ideal())
	fe := run(cluster.FastEthernet())
	if ideal > fe {
		t.Fatalf("ideal network (%v) slower than Fast Ethernet (%v)", ideal, fe)
	}
}

func TestMultiDiskNodesSpeedUpIOSteps(t *testing.T) {
	v := perf.Homogeneous(2)
	run := func(d int) *Result {
		c, err := cluster.New(cluster.Config{Slowdowns: v.Slowdowns(), BlockKeys: 64, DisksPerNode: d})
		if err != nil {
			t.Fatal(err)
		}
		return runSort(t, c, v, testConfig(v), record.Uniform, 32768, 131)
	}
	one, four := run(1), run(4)
	if four.Time >= one.Time {
		t.Fatalf("D=4 (%v) should beat D=1 (%v)", four.Time, one.Time)
	}
	// Results must be identical — only timing changes.
	for i := range one.PartitionSizes {
		if one.PartitionSizes[i] != four.PartitionSizes[i] {
			t.Fatal("disk count changed the partitioning")
		}
	}
}

func TestStepIOReadWriteSplit(t *testing.T) {
	// Per step, reads and writes have characteristic shapes:
	// step 3 (partition) reads everything once and writes everything
	// once; step 5 (merge of p<=fan files) likewise.
	v := perf.Homogeneous(2)
	c := newCluster(t, v)
	cfg := testConfig(v)
	const n = 32768
	res := runSort(t, c, v, cfg, record.Uniform, n, 211)
	li := int64(n / 2)
	blocks := li / int64(cfg.BlockKeys)
	for i := 0; i < 2; i++ {
		p3 := res.StepIO[2][i]
		if p3.Reads < blocks || p3.Reads > blocks+4 {
			t.Errorf("node %d step3 reads %d want ~%d", i, p3.Reads, blocks)
		}
		if p3.Writes < blocks || p3.Writes > blocks+4 {
			t.Errorf("node %d step3 writes %d want ~%d", i, p3.Writes, blocks)
		}
		// Step 2 is seek-dominated: tiny transfer counts, nonzero seeks.
		p2 := res.StepIO[1][i]
		if p2.Seeks == 0 {
			t.Errorf("node %d step2 recorded no seeks", i)
		}
		if p2.Reads > 8 {
			t.Errorf("node %d step2 reads %d — sampling should be cheap", i, p2.Reads)
		}
	}
}

func TestLargeScaleStress(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test skipped in -short mode")
	}
	// A million keys across 4 heterogeneous nodes on real temp disks.
	v := perf.Vector{1, 2, 3, 4}
	root := t.TempDir()
	c, err := cluster.New(cluster.Config{
		Slowdowns: v.Slowdowns(),
		BlockKeys: 1024,
		Disks: func(id int) diskio.FS {
			d, derr := diskio.NewDirFS(fmt.Sprintf("%s/n%d", root, id))
			if derr != nil {
				t.Fatal(derr)
			}
			return d
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Perf: v, BlockKeys: 1024, MemoryKeys: 1 << 15, Tapes: 15, MessageKeys: 8192}
	n := v.NearestValidSize(1 << 20)
	sum, err := DistributeInput(c, v, record.Gaussian, n, 999, cfg.BlockKeys, "input")
	if err != nil {
		t.Fatal(err)
	}
	res, err := Sort(c, cfg, "input", "output")
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyOutput(c, "output", cfg.BlockKeys, sum); err != nil {
		t.Fatal(err)
	}
	if exp := res.SublistExpansion(v); exp > 2.0 {
		t.Fatalf("stress expansion %v breaks the PSRS bound", exp)
	}
}

func TestAllEqualKeysDegenerate(t *testing.T) {
	// Every key identical: pivots are all the same value, so the
	// entire input lands on node 0 (keys <= pivot go low).  Output
	// must still be globally correct; balance has no guarantee (the
	// paper's U+d bound with d=n is vacuous).
	v := perf.Homogeneous(2)
	c := newCluster(t, v)
	cfg := testConfig(v)
	keys := make([]record.Key, 8192)
	for i := range keys {
		keys[i] = 42
	}
	for i := 0; i < 2; i++ {
		if err := diskio.WriteFile(c.Node(i).FS(), "input", keys[:4096], cfg.BlockKeys, diskio.Accounting{}); err != nil {
			t.Fatal(err)
		}
	}
	res, err := Sort(c, cfg, "input", "output")
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyOutput(c, "output", cfg.BlockKeys, record.ChecksumOf(keys)); err != nil {
		t.Fatal(err)
	}
	var total int64
	for _, s := range res.PartitionSizes {
		total += s
	}
	if total != 8192 {
		t.Fatalf("total %d", total)
	}
}

func TestSortPropertyVariedGeometry(t *testing.T) {
	// Random disk geometries: block sizes, tape counts, message sizes.
	f := func(blockRaw, tapesRaw, msgRaw uint8, seed int64) bool {
		block := 16 << (blockRaw % 4) // 16..128
		tapes := 3 + int(tapesRaw%10) // 3..12
		msg := 32 << (msgRaw % 5)     // 32..512
		v := perf.Vector{1, 2}
		c, err := cluster.New(cluster.Config{Slowdowns: v.Slowdowns(), BlockKeys: block})
		if err != nil {
			return false
		}
		cfg := Config{
			Perf: v, BlockKeys: block, MemoryKeys: tapes * block * 4,
			Tapes: tapes, MessageKeys: msg,
		}
		n := v.NearestValidSize(6000)
		sum, err := DistributeInput(c, v, record.Uniform, n, seed, block, "input")
		if err != nil {
			return false
		}
		if _, err := Sort(c, cfg, "input", "output"); err != nil {
			return false
		}
		return VerifyOutput(c, "output", block, sum) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

package pdm

import (
	"fmt"
	"sync/atomic"
)

// Counter accumulates I/O operations in PDM units (block transfers).  It
// is safe for concurrent use; the disk layer charges it from every node
// goroutine.  The zero value is ready to use.
type Counter struct {
	readBlocks  atomic.Int64
	writeBlocks atomic.Int64
	seeks       atomic.Int64
}

// AddRead records n block reads.
func (c *Counter) AddRead(n int64) { c.readBlocks.Add(n) }

// AddWrite records n block writes.
func (c *Counter) AddWrite(n int64) { c.writeBlocks.Add(n) }

// AddSeek records n random repositionings (not counted in PDM transfers
// but useful to observe access patterns).
func (c *Counter) AddSeek(n int64) { c.seeks.Add(n) }

// Reads returns the number of block reads recorded so far.
func (c *Counter) Reads() int64 { return c.readBlocks.Load() }

// Writes returns the number of block writes recorded so far.
func (c *Counter) Writes() int64 { return c.writeBlocks.Load() }

// Seeks returns the number of seeks recorded so far.
func (c *Counter) Seeks() int64 { return c.seeks.Load() }

// Total returns reads+writes, the PDM I/O complexity measure.
func (c *Counter) Total() int64 { return c.Reads() + c.Writes() }

// Reset zeroes the counter.
func (c *Counter) Reset() {
	c.readBlocks.Store(0)
	c.writeBlocks.Store(0)
	c.seeks.Store(0)
}

// Snapshot returns an immutable copy of the current values.
func (c *Counter) Snapshot() IOStats {
	return IOStats{Reads: c.Reads(), Writes: c.Writes(), Seeks: c.Seeks()}
}

// IOStats is an immutable snapshot of a Counter.
type IOStats struct {
	Reads  int64
	Writes int64
	Seeks  int64
}

// Total returns reads+writes.
func (s IOStats) Total() int64 { return s.Reads + s.Writes }

// Add returns the element-wise sum of two snapshots.
func (s IOStats) Add(t IOStats) IOStats {
	return IOStats{Reads: s.Reads + t.Reads, Writes: s.Writes + t.Writes, Seeks: s.Seeks + t.Seeks}
}

// Sub returns the element-wise difference s-t; useful to measure one
// algorithm step with a shared counter.
func (s IOStats) Sub(t IOStats) IOStats {
	return IOStats{Reads: s.Reads - t.Reads, Writes: s.Writes - t.Writes, Seeks: s.Seeks - t.Seeks}
}

func (s IOStats) String() string {
	return fmt.Sprintf("IO{reads=%d writes=%d seeks=%d total=%d}", s.Reads, s.Writes, s.Seeks, s.Total())
}

package sampling

import (
	"fmt"

	"hetsort/internal/perf"
	"hetsort/internal/record"
)

// Overpartitioning (Li & Sevcik, "Parallel sorting by overpartitioning")
// replaces regular sampling's initial sort with random pivots, creating
// k*p sublists — more sublists than processors — that are then assigned
// to processors to even out the load.  The paper discusses it as the
// main competitor of PSRS (section 3.3) and re-uses its pivot-count
// analysis for the heterogeneous pivot rule, so we implement it as a
// baseline for the ablation benches.

// OverpartitionPivots sorts the candidates and picks k*p-1 pivots
// regularly, defining k*p sublists.
func OverpartitionPivots(candidates []record.Key, p, k int) ([]record.Key, error) {
	if p < 1 || k < 1 {
		return nil, fmt.Errorf("sampling: bad overpartition p=%d k=%d", p, k)
	}
	return SelectPivots(candidates, p*k)
}

// AssignSublists distributes the k*p sublists (given by their sizes) to
// p processors with the longest-processing-time greedy rule, weighted by
// the perf vector: each sublist goes to the processor with the smallest
// ratio of assigned load to relative speed.  It returns, per processor,
// the indices of the sublists it receives (each contiguous run of
// indices keeps the global order sortable: processor assignment here is
// by *consecutive blocks*, preserving the sorted concatenation order).
//
// Li & Sevcik assign chunks of consecutive sublists so that the
// concatenation across processors in rank order remains globally
// sorted; we follow that: the assignment is a partition of 0..kp-1 into
// p consecutive ranges, chosen to minimise the worst weighted load by
// sweeping cut positions greedily.
func AssignSublists(sizes []int64, v perf.Vector) ([][]int, error) {
	p := len(v)
	if err := v.Validate(); err != nil {
		return nil, err
	}
	if len(sizes) < p {
		return nil, fmt.Errorf("sampling: %d sublists for %d processors", len(sizes), p)
	}
	var total int64
	for _, s := range sizes {
		total += s
	}
	sum := float64(v.Sum())
	// Greedy sweep: processor i takes sublists until its weighted load
	// reaches its proportional share of the remainder.
	out := make([][]int, p)
	idx := 0
	for i := 0; i < p; i++ {
		targetShare := float64(total) * float64(v[i]) / sum
		var load int64
		remainingProcs := p - i - 1
		for idx < len(sizes)-remainingProcs {
			// Always take at least one sublist if any remain beyond
			// what later processors minimally need.
			if load > 0 && float64(load)+float64(sizes[idx])/2 > targetShare {
				break
			}
			out[i] = append(out[i], idx)
			load += sizes[idx]
			idx++
		}
	}
	// Any leftovers go to the last processor.
	for ; idx < len(sizes); idx++ {
		out[p-1] = append(out[p-1], idx)
	}
	return out, nil
}

// LoadsOf sums the sizes of each processor's assigned sublists.
func LoadsOf(assign [][]int, sizes []int64) []int64 {
	loads := make([]int64, len(assign))
	for i, idxs := range assign {
		for _, j := range idxs {
			loads[i] += sizes[j]
		}
	}
	return loads
}

// Loadedcluster reproduces the paper's motivating scenario: a cluster
// of identical machines where two nodes carry a constant 4x background
// load (the paper forked busy processes on siegrune and rossweisse).
//
// The example first runs the calibration protocol to discover the perf
// vector, then sorts the same input twice — once pretending the cluster
// is homogeneous (equal data shares) and once with the calibrated
// {1,1,4,4} vector — and reports the speedup the heterogeneity-aware
// distribution buys, the paper's central result (Table 3: 303.94 s ->
// 155.41 s).
package main

import (
	"fmt"
	"log"
	"math/rand"

	"hetsort"
)

func main() {
	// The machine: nodes 0 and 1 are loaded 4x, nodes 2 and 3 are free.
	loads := []float64{4, 4, 1, 1}

	// Step 1: calibrate, exactly as the paper does (sequential
	// external sort of equal portions, ratios to the slowest).
	perfVec, times, err := hetsort.Calibrate(hetsort.Config{
		Nodes: 4, Loads: loads, MemoryKeys: 1 << 14, BlockKeys: 512, Tapes: 8,
	}, 1<<17)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("calibration times: %.2f s -> perf vector %v\n", times, perfVec)

	// Step 2: build an input sized so the vector divides it exactly.
	n, err := hetsort.ValidSize(perfVec, 1<<20)
	if err != nil {
		log.Fatal(err)
	}
	r := rand.New(rand.NewSource(7))
	keys := make([]hetsort.Key, n)
	for i := range keys {
		keys[i] = r.Uint32()
	}

	run := func(perf []int, label string) float64 {
		rep, err2 := sortWith(keys, perf, loads)
		if err2 != nil {
			log.Fatal(err2)
		}
		fmt.Printf("%-28s %8.2f virtual s   S(max)=%.4f   partitions=%v\n",
			label, rep.Time, rep.SublistExpansion, rep.PartitionSizes)
		return rep.Time
	}
	tHomo := run([]int{1, 1, 1, 1}, "equal shares (naive):")
	tHet := run(perfVec, "perf-proportional shares:")
	fmt.Printf("speedup from heterogeneity-aware distribution: %.2fx (paper: ~1.96x)\n", tHomo/tHet)
}

func sortWith(keys []hetsort.Key, perf []int, loads []float64) (*hetsort.Report, error) {
	_, rep, err := hetsort.Sort(keys, hetsort.Config{
		Perf:       perf,
		Loads:      loads,
		MemoryKeys: 1 << 14,
		BlockKeys:  512,
		Tapes:      8,
	})
	return rep, err
}

package experiments

import (
	"fmt"

	"hetsort/internal/cluster"
	"hetsort/internal/extsort"
	"hetsort/internal/perf"
	"hetsort/internal/record"
	"hetsort/internal/stats"
)

// PacketSweep reproduces the paper's in-text packet-size experiment
// (E4): sorting 2^21 integers on the homogeneous 4-node configuration,
// "with packet size of 8 integers, we need 133.61 seconds ... with
// message size of 8K integers we sort in 32.6s ... It seems that 8K
// gives the best time performance."
type PacketRow struct {
	MessageKeys int
	Time        stats.Summary
	PaperTime   float64 // paper's seconds where reported, else 0
}

// PacketPaperTimes maps the paper's reported packet results at 2^21.
var PacketPaperTimes = map[int]float64{
	8:    133.61,
	8192: 32.6,
}

// PacketSizes is the sweep grid in keys (integers).
var PacketSizes = []int{8, 64, 512, 2048, 8192, 32768}

// RunPacketSweep measures the sweep on the loaded cluster with the
// homogeneous (equal-shares) configuration, matching the paper's setup:
// its 32.6 s best case at 2^21 sits above the fast nodes' 22.9 s
// sequential time because two machines stay loaded.
func RunPacketSweep(o Options) ([]PacketRow, error) {
	o = o.withDefaults()
	v := perf.Homogeneous(4)
	n := o.scale(1 << 21)
	c, err := o.newCluster(cluster.FastEthernet())
	if err != nil {
		return nil, err
	}
	var rows []PacketRow
	for _, msg := range PacketSizes {
		scaled := msg >> o.SizeShift
		if scaled < 1 {
			scaled = 1
		}
		cfg := o.extsortConfig(v)
		cfg.MessageKeys = scaled
		sum, err := o.trialSummary(func(seed int64) (float64, error) {
			c.ResetClocks()
			isum, derr := extsort.DistributeInput(c, v, record.Uniform, n, seed, o.BlockKeys, "input")
			if derr != nil {
				return 0, derr
			}
			res, serr := extsort.Sort(c, cfg, "input", "output")
			if serr != nil {
				return 0, serr
			}
			if verr := extsort.VerifyOutput(c, "output", o.BlockKeys, isum); verr != nil {
				return 0, verr
			}
			return res.Time, nil
		})
		if err != nil {
			return nil, fmt.Errorf("experiments: packet sweep msg=%d: %w", msg, err)
		}
		rows = append(rows, PacketRow{
			MessageKeys: msg,
			Time:        sum,
			PaperTime:   PacketPaperTimes[msg],
		})
	}
	return rows, nil
}

// PacketSweepString renders the sweep.
func PacketSweepString(rows []PacketRow) string {
	t := &stats.Table{
		Title:   "Packet-size sweep, homogeneous external PSRS at 2^21 keys (scaled)",
		Headers: []string{"MsgKeys", "Time(s)", "Dev", "PaperTime(s)"},
	}
	for _, r := range rows {
		paper := "-"
		if r.PaperTime > 0 {
			paper = fmt.Sprintf("%.2f", r.PaperTime)
		}
		t.AddRow(r.MessageKeys, r.Time.Mean, r.Time.StdDev, paper)
	}
	return t.String()
}

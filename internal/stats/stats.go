// Package stats provides the small statistics and repeated-trial
// machinery the experiment harness uses to report results the way the
// paper's tables do: mean execution time over repeated trials plus the
// standard deviation ("30 experiments" per Table 3 row).
package stats

import (
	"errors"
	"fmt"
	"math"
	"strings"
)

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// StdDev returns the sample standard deviation of xs (0 for fewer than
// two values).
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(xs)-1))
}

// MinMax returns the extremes of xs; it panics on empty input.
func MinMax(xs []float64) (min, max float64) {
	if len(xs) == 0 {
		panic("stats: MinMax of empty slice")
	}
	min, max = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < min {
			min = x
		}
		if x > max {
			max = x
		}
	}
	return min, max
}

// Summary condenses repeated measurements of one quantity.
type Summary struct {
	Trials int
	Mean   float64
	StdDev float64
	Min    float64
	Max    float64
}

// Summarize computes a Summary of xs.
func Summarize(xs []float64) (Summary, error) {
	if len(xs) == 0 {
		return Summary{}, errors.New("stats: no measurements")
	}
	min, max := MinMax(xs)
	return Summary{
		Trials: len(xs),
		Mean:   Mean(xs),
		StdDev: StdDev(xs),
		Min:    min,
		Max:    max,
	}, nil
}

func (s Summary) String() string {
	return fmt.Sprintf("%.5f ± %.5f (n=%d)", s.Mean, s.StdDev, s.Trials)
}

// Repeat runs trial(i) for i in [0, n) and summarizes the returned
// measurements.  The first error aborts.
func Repeat(n int, trial func(i int) (float64, error)) (Summary, error) {
	if n <= 0 {
		return Summary{}, errors.New("stats: trial count must be positive")
	}
	xs := make([]float64, 0, n)
	for i := 0; i < n; i++ {
		x, err := trial(i)
		if err != nil {
			return Summary{}, fmt.Errorf("stats: trial %d: %w", i, err)
		}
		xs = append(xs, x)
	}
	return Summarize(xs)
}

// Table renders rows of columns with right-aligned cells under a header,
// in the plain monospace style of the paper's tables.
type Table struct {
	Title   string
	Headers []string
	rows    [][]string
}

// AddRow appends a row; cells are formatted with %v.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.5g", v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	total := len(widths) - 1
	for _, w := range widths {
		total += w + 1
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, r := range t.rows {
		writeRow(r)
	}
	return b.String()
}
